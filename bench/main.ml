(* Benchmark harness: regenerates every experiment table (E1-E15, see
   EXPERIMENTS.md), optionally runs the Bechamel micro-benchmarks, and can
   emit / validate the machine-readable perf baseline (which also carries
   the E16 budget/parallel and E17 session telemetry).

     dune exec bench/main.exe                     # all tables
     dune exec bench/main.exe -- --micro          # tables + micro-benchmarks
     dune exec bench/main.exe -- E4 E5            # selected tables
     dune exec bench/main.exe -- --json BENCH_PR2.json --micro
         # micro-benchmarks + solver telemetry to a JSON baseline file
         # (tables are skipped unless named explicitly)
     dune exec bench/main.exe -- --check-json BENCH_PR2.json
         # validate a baseline file: well-formed, stable keys, numeric fields
     --quota SECONDS   Bechamel measurement quota per benchmark (default 0.25)
     --scale N         instance size for the E19 scale telemetry rows
                       (default 20000; the committed baseline uses 1000000)
*)

let micro_tests () =
  let open Bechamel in
  let t name f = (name, Test.make ~name (Staged.stage f)) in
  let ex15 = Workload.Paperdb.example15 in
  let ex19 = Workload.Paperdb.example19 in
  let fk = Workload.Gen.fk_workload ~seed:9 ~n_parent:4 ~n_child:6 ~orphan_rate:0.3 ~null_rate:0.1 () in
  let check = Workload.Gen.check_workload ~seed:9 ~n:200 ~viol_rate:0.2 ~null_rate:0.2 () in
  let clusters4 = Workload.Gen.clusters_workload ~padding:2 ~k:4 () in
  let pg19 =
    match Core.Proggen.repair_program ex19.Workload.Paperdb.d ex19.Workload.Paperdb.ics with
    | Ok pg -> pg
    | Error m -> failwith m
  in
  let ground19 = Asp.Grounder.ground pg19.Core.Proggen.program in
  let query =
    Query.Qsyntax.make ~head:[ "id"; "code" ]
      (Query.Qsyntax.Atom
         (Ic.Patom.make "Course" [ Ic.Term.var "id"; Ic.Term.var "code" ]))
  in
  [
    (* E1: paper-example repair computation *)
    t "E1.repairs.enumerate.ex15" (fun () ->
        Repair.Enumerate.repairs ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics);
    t "E1.repairs.program.ex19" (fun () ->
        Core.Engine.repairs ex19.Workload.Paperdb.d ex19.Workload.Paperdb.ics);
    (* E2/E8: engines on a synthetic FK workload *)
    t "E2.enumerate.fk" (fun () ->
        Repair.Enumerate.repairs fk.Workload.Gen.d fk.Workload.Gen.ics);
    t "E8.program.fk" (fun () ->
        Core.Engine.repairs fk.Workload.Gen.d fk.Workload.Gen.ics);
    (* E4: solving the ground program with and without shifting *)
    t "E4.solve.shifted" (fun () ->
        Asp.Solver.stable_models (Asp.Shift.ground ground19));
    t "E4.solve.disjunctive" (fun () ->
        Asp.Solver.stable_models ground19);
    (* E5: generation + grounding *)
    t "E5.generate.width6" (fun () ->
        Core.Proggen.repair_program (Workload.Gen.disjunctive_uic ~width:6).Workload.Gen.d
          (Workload.Gen.disjunctive_uic ~width:6).Workload.Gen.ics);
    (* E6: the satisfaction check itself on a wider instance *)
    t "E6.nullsat.check200" (fun () ->
        Semantics.Nullsat.check check.Workload.Gen.d check.Workload.Gen.ics);
    (* E7: CQA end-to-end *)
    t "E7.cqa.ex15" (fun () ->
        Query.Cqa.consistent_answers ex15.Workload.Paperdb.d
          ex15.Workload.Paperdb.ics query);
    (* E10: graph analysis *)
    t "E10.depgraph.ex19" (fun () ->
        Ic.Depgraph.is_ric_acyclic ex19.Workload.Paperdb.ics);
    (* E15: conflict-component decomposition, 4 shared-predicate clusters *)
    t "E15.repairs.monolithic.k4" (fun () ->
        Repair.Enumerate.repairs clusters4.Workload.Gen.d
          clusters4.Workload.Gen.ics);
    t "E15.repairs.decomposed.k4" (fun () ->
        Repair.Enumerate.repairs ~decompose:true clusters4.Workload.Gen.d
          clusters4.Workload.Gen.ics);
  ]

(* Runs every micro-benchmark and returns (name, ns/run) rows; a failed
   OLS analysis reports 0.0 so the row set is stable for the baseline
   format regardless of the quota. *)
let run_micro ~quota () =
  let open Bechamel in
  print_endline "\n--- micro-benchmarks (Bechamel, monotonic clock) ---";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let rows =
    List.map
      (fun (name, test) ->
        let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
        let est = ref 0.0 in
        Hashtbl.iter
          (fun _key raw ->
            match Analyze.one (Analyze.ols ~bootstrap:0 ~r_square:false
                                 ~predictors:[| Measure.run |]) instance raw with
            | ols -> (
                match Analyze.OLS.estimates ols with
                | Some [ e ] -> est := e
                | _ -> ())
            | exception _ -> ())
          results;
        if !est > 0.0 then Printf.printf "%-28s %12.0f ns/run\n" name !est
        else Printf.printf "%-28s (no estimate)\n" name;
        (name, !est))
      (micro_tests ())
  in
  flush stdout;
  rows

(* Solver-engine telemetry on example 19's ground program: the learning
   engine, the chronological counter engine and the sweep-based reference,
   shifted and disjunctive — the decision/propagation counts behind the E4
   micro-benchmarks, recorded in the baseline so propagation regressions
   are visible without re-deriving them from wall-clock noise.  The
   "counter" rows pin [`Dpll] so their numbers stay comparable across
   baselines now that [`Cdcl] is the default. *)
let solver_telemetry () =
  let ex19 = Workload.Paperdb.example19 in
  let pg19 =
    match Core.Proggen.repair_program ex19.Workload.Paperdb.d ex19.Workload.Paperdb.ics with
    | Ok pg -> pg
    | Error m -> failwith m
  in
  let ground19 = Asp.Grounder.ground pg19.Core.Proggen.program in
  let shifted19 = Asp.Shift.ground ground19 in
  let row name engine solve g =
    let stats = Asp.Solver.new_stats () in
    let models = solve ~stats g in
    (name, engine, List.length models, stats)
  in
  [
    row "E4.solve.shifted" "counter"
      (fun ~stats g -> Asp.Solver.stable_models ~search:`Dpll ~stats g)
      shifted19;
    row "E4.solve.shifted" "cdcl"
      (fun ~stats g -> Asp.Solver.stable_models ~search:`Cdcl ~stats g)
      shifted19;
    row "E4.solve.shifted" "naive"
      (fun ~stats g -> Asp.Solver.stable_models_naive ~stats g) shifted19;
    row "E4.solve.disjunctive" "counter"
      (fun ~stats g -> Asp.Solver.stable_models ~search:`Dpll ~stats g)
      ground19;
    row "E4.solve.disjunctive" "cdcl"
      (fun ~stats g -> Asp.Solver.stable_models ~search:`Cdcl ~stats g)
      ground19;
    row "E4.solve.disjunctive" "naive"
      (fun ~stats g -> Asp.Solver.stable_models_naive ~stats g) ground19;
  ]

(* CDCL telemetry (E21): the learning engine vs the chronological counter
   engine on the non-HCF combination-lock sweep of
   {!Experiments.lock_program}.  Rows flagged hard carry the headline
   claim — CDCL reaches the same models with at most half the decisions —
   as checked data under --check-json, not prose. *)
let cdcl_telemetry () = Experiments.lock_measurements ()

(* Conformance telemetry (E22): replay the full pinned suite and the
   generated corpus through the cross-tier runner — one row per case,
   with the tier count, per-tier wall-clocks and the identity verdict.
   Every future baseline must keep every verdict green: the conformance
   contract as checked data under --check-json. *)
let conform_telemetry () =
  let _, results = Conform.Runner.run (Conform.Suite.all @ Conform.Corpus.all) in
  List.map
    (fun (r : Conform.Runner.result_) ->
      ( r.Conform.Runner.case.Conform.Case.name,
        r.Conform.Runner.case.Conform.Case.family,
        List.map
          (fun (t : Conform.Runner.tier_result) ->
            (t.Conform.Runner.tier, t.Conform.Runner.ms))
          r.Conform.Runner.tiers,
        Conform.Runner.passed r ))
    results

(* Decomposition counters for the shared-predicate cluster workload (E15):
   component structure and per-component exploration, recorded so the
   product-to-sum collapse of the conflict-component search is visible as
   exact state counts, not wall-clock noise. *)
let decompose_telemetry () =
  List.map
    (fun k ->
      let w = Workload.Gen.clusters_workload ~padding:2 ~k () in
      let mono_states = ref 0 in
      ignore
        (Repair.Enumerate.search ~explored:mono_states w.Workload.Gen.d
           w.Workload.Gen.ics);
      let r = Repair.Enumerate.decomposed w.Workload.Gen.d w.Workload.Gen.ics in
      let plan = r.Repair.Enumerate.plan in
      let max_component_atoms =
        List.fold_left
          (fun acc (c : Repair.Decompose.component) ->
            max acc (Relational.Atom.Set.cardinal c.Repair.Decompose.atoms))
          0 plan.Repair.Decompose.components
      in
      ( k,
        List.length plan.Repair.Decompose.components,
        max_component_atoms,
        plan.Repair.Decompose.product_exact,
        Repair.Decompose.count_product
          (List.map List.length r.Repair.Enumerate.minimal),
        !mono_states,
        r.Repair.Enumerate.explored ))
    [ 1; 2; 4; 6 ]

(* Budget telemetry (E16): one budgeted end-to-end CQA run per engine,
   recording the per-stage consumption counters of the shared budget —
   solver decisions, search states, components solved, wall-clock — so the
   baseline shows where each engine spends its budget and a counter that
   silently stops ticking is caught by the non-zero guards of
   --check-json. *)
let budget_telemetry () =
  let w = Workload.Gen.clusters_workload ~padding:1 ~k:2 () in
  let query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Atom (Ic.Patom.make "S" [ Ic.Term.var "x" ]))
  in
  let row name method_ decompose =
    let stats = Budget.new_stats () in
    let budget = Budget.start ~stats Budget.unlimited in
    let outcome =
      match
        Query.Cqa.consistent_answers ~method_ ~budget ~decompose
          w.Workload.Gen.d w.Workload.Gen.ics query
      with
      | Ok _ -> "ok"
      | Error _ -> "error"
    in
    Budget.finish budget;
    (name, decompose, outcome, stats)
  in
  [
    row "E16.budget.mt.decomposed" Query.Cqa.ModelTheoretic true;
    row "E16.budget.lp.decomposed" Query.Cqa.LogicProgram true;
    row "E16.budget.lp.monolithic" Query.Cqa.LogicProgram false;
    row "E16.budget.cautious" Query.Cqa.CautiousProgram false;
  ]

(* Parallel telemetry (E16): the weighted cluster workload repaired with
   --jobs 1, 2 and 4 through the decomposed enumerator, recording
   wall-clock, the machine's core count and whether every run's repair
   list is identical to the sequential one — the determinism contract as
   a checked fact, and the speedup (when the machine has the cores for
   one) as data rather than anecdote. *)
let parallel_telemetry () =
  let cores = Parallel.Config.resolve 0 in
  let k = 4 and weight = 8 in
  let g = Workload.Gen.clusters_workload ~k ~weight () in
  let run jobs =
    let t0 = Unix.gettimeofday () in
    let reps =
      Repair.Enumerate.repairs ~decompose:true ~jobs g.Workload.Gen.d
        g.Workload.Gen.ics
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    (jobs, reps, ms)
  in
  let _, base_reps, _ = run 1 in
  (* the timed jobs=1 run repeats after the warm-up so every row pays the
     same allocation profile *)
  List.map
    (fun jobs ->
      let _, reps, ms = run jobs in
      ( k,
        weight,
        jobs,
        cores,
        List.length reps,
        ms,
        List.equal Relational.Instance.equal reps base_reps ))
    [ 1; 2; 4 ]

(* Session telemetry (E17): a scripted update/query mix on the cluster
   workload served by the incremental session engine, against a cold
   decomposed run per request on the same instance.  Records the cache
   counters, both wall-clocks and whether every session answer was
   byte-identical to its cold counterpart — the session's correctness
   contract as checked data.  The script keeps the hit rate high on
   purpose (a no-op insert, then removing and restoring one cluster):
   that is the serving pattern the cache exists for, and --check-json
   guards the > 0.5 rate so a cache that silently stops hitting fails the
   baseline. *)
let session_telemetry () =
  let k = 6 in
  let w = Workload.Gen.clusters_workload ~padding:2 ~k () in
  let query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Atom (Ic.Patom.make "S" [ Ic.Term.var "x" ]))
  in
  let a0 = Relational.Value.str "a0" in
  let deltas =
    [
      (* an update no constraint can see, over an existing constant: the
         plan refreshes in place and every component hits *)
      [ Delta.insert (Relational.Atom.make "Note" [ a0 ]) ];
      (* one cluster leaves and comes back: the other components keep
         their fingerprints across both re-plans *)
      [ Delta.delete (Relational.Atom.make "S" [ a0 ]) ];
      [ Delta.insert (Relational.Atom.make "S" [ a0 ]) ];
    ]
  in
  let s = Session.create ~engine:Session.Program w.Workload.Gen.d w.Workload.Gen.ics in
  let d = ref w.Workload.Gen.d in
  let incremental_ms = ref 0.0 and cold_ms = ref 0.0 in
  let identical = ref true in
  let timed acc f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    acc := !acc +. ((Unix.gettimeofday () -. t0) *. 1000.);
    r
  in
  let serve () =
    let s_reps = timed incremental_ms (fun () -> Session.repairs s) in
    let s_out = timed incremental_ms (fun () -> Session.cqa s query) in
    let c_reps =
      timed cold_ms (fun () ->
          Core.Engine.repairs ~decompose:true !d w.Workload.Gen.ics)
    in
    let c_out =
      timed cold_ms (fun () ->
          Query.Cqa.consistent_answers ~method_:Query.Cqa.LogicProgram
            ~decompose:true !d w.Workload.Gen.ics query)
    in
    (match (s_reps, c_reps) with
    | Ok a, Ok b ->
        if
          not
            (List.length a = List.length b
            && List.for_all2 Relational.Instance.equal a b)
        then identical := false
    | _ -> identical := false);
    match (s_out, c_out) with
    | Ok a, Ok b ->
        if
          not
            (Relational.Tuple.Set.equal a.Query.Cqa.consistent
               b.Query.Cqa.consistent
            && Relational.Tuple.Set.equal a.Query.Cqa.possible
                 b.Query.Cqa.possible
            && a.Query.Cqa.repair_count = b.Query.Cqa.repair_count)
        then identical := false
    | _ -> identical := false
  in
  serve ();
  List.iter
    (fun ops ->
      Session.apply s ops;
      d := Delta.apply ops !d;
      serve ())
    deltas;
  let st = Session.stats s in
  [
    ( Printf.sprintf "E17.session.clusters.k%d" k,
      k,
      st.Session.deltas,
      st.Session.requests,
      st.Session.cache_hits,
      st.Session.cache_misses,
      st.Session.cache_evictions,
      Session.hit_rate st,
      !incremental_ms,
      !cold_ms,
      !identical );
  ]

(* Routing telemetry (E18): the Auto method against both decomposed
   materializing engines on FD workloads plus one mixed-tier suite,
   recording the per-tier routing counters of the request budget, all
   three wall-clocks and whether the Auto outcome was identical to the
   decomposed enumerate oracle.  The FD rows are the fast-path claim as
   data: every component routes to the repair-less direct tier, and on
   the widest row --check-json guards the >= 10x speedup over decomposed
   enumeration.  The mixed suite (FD + RIC + bilateral + general
   existential over disjoint predicates) exercises all four tiers in one
   plan, so a router that silently collapses to a single tier fails the
   per-tier non-zero guards. *)
let routing_telemetry () =
  let key_query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Exists
         ( [ "y" ],
           Query.Qsyntax.Atom
             (Ic.Patom.make "R" [ Ic.Term.var "x"; Ic.Term.var "y" ]) ))
  in
  let mixed =
    (* disjoint predicates per tier: R (FD clusters -> direct),
       Course/Student (RIC -> shifted), P (bilateral loop -> disjunctive),
       A/B/C (general existential -> enumerate) *)
    let fd = Workload.Gen.fd_workload ~n:3 ~dup_rate:1.0 ~width:4 () in
    let bil = Workload.Gen.bilateral_loop ~n:3 () in
    let v = Ic.Term.var in
    let atom p ts = Ic.Patom.make p ts in
    let str = Relational.Value.str in
    let extra =
      Relational.Instance.of_list
        [
          ("Course", [ Relational.Value.int 21; str "C15" ]);
          ("Course", [ Relational.Value.int 34; str "C18" ]);
          ("Student", [ Relational.Value.int 21; str "Ann" ]);
          ("A", [ str "a" ]);
          ("B", [ str "a" ]);
        ]
    in
    {
      Workload.Gen.label = "mixed tiers";
      d =
        Relational.Instance.union fd.Workload.Gen.d
          (Relational.Instance.union bil.Workload.Gen.d extra);
      ics =
        fd.Workload.Gen.ics @ bil.Workload.Gen.ics
        @ [
            Ic.Constr.generic ~name:"enrolled"
              ~ante:[ atom "Course" [ v "id"; v "code" ] ]
              ~cons:[ atom "Student" [ v "id"; v "name" ] ]
              ();
            Ic.Constr.generic ~name:"ab_c"
              ~ante:[ atom "A" [ v "x" ]; atom "B" [ v "x" ] ]
              ~cons:[ atom "C" [ v "x"; v "y" ] ]
              ();
          ];
    }
  in
  let row name (w : Workload.Gen.t) =
    let run method_ budget =
      let t0 = Unix.gettimeofday () in
      let out =
        Query.Cqa.consistent_answers ~method_ ?budget ~decompose:true
          w.Workload.Gen.d w.Workload.Gen.ics key_query
      in
      (out, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let stats = Budget.new_stats () in
    let budget = Budget.start ~stats Budget.unlimited in
    let auto, auto_ms = run Query.Cqa.Auto (Some budget) in
    Budget.finish budget;
    let enum, enum_ms = run Query.Cqa.ModelTheoretic None in
    let _, prog_ms = run Query.Cqa.LogicProgram None in
    let identical =
      match (auto, enum) with
      | Ok a, Ok b ->
          Relational.Tuple.Set.equal a.Query.Cqa.consistent
            b.Query.Cqa.consistent
          && Relational.Tuple.Set.equal a.Query.Cqa.possible
               b.Query.Cqa.possible
          && Relational.Tuple.Set.equal a.Query.Cqa.standard
               b.Query.Cqa.standard
          && a.Query.Cqa.repair_count = b.Query.Cqa.repair_count
      | _ -> false
    in
    let tiers =
      Array.map
        (fun t -> Budget.routed stats t)
        [| Budget.Direct; Budget.Shifted; Budget.Disjunctive; Budget.Enumerated |]
    in
    (name, tiers, auto_ms, enum_ms, prog_ms, identical)
  in
  [
    row "E18.routing.fd.n4.w4" (Workload.Gen.fd_workload ~n:4 ~dup_rate:1.0 ~width:4 ());
    row "E18.routing.fd.n6.w8" (Workload.Gen.fd_workload ~n:6 ~dup_rate:1.0 ~width:8 ());
    row "E18.routing.fd.n4.w12" (Workload.Gen.fd_workload ~n:4 ~dup_rate:1.0 ~width:12 ());
    row "E18.routing.mixed" mixed;
  ]

(* E19: large-instance scaling of the columnar interned storage — wall
   clocks and tuples/sec for bulk load, full |=_N checking and consistent
   query answering, plus the incremental-vs-full delta check ratio and the
   resident set size.  Two rows per run: n/10 and n, so a --scale 1000000
   baseline carries both the 10^5 row the >= 10x delta guard engages on
   and the 10^6 row of the headline claim. *)
let scale_telemetry ~scale () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let rss_mb () =
    (* Linux-only telemetry; 0.0 where /proc is absent. *)
    try
      In_channel.with_open_text "/proc/self/status" (fun ic ->
          let rec go () =
            match In_channel.input_line ic with
            | None -> 0.0
            | Some line ->
                if String.length line > 6 && String.sub line 0 6 = "VmRSS:"
                then
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d" (fun kb -> float_of_int kb /. 1024.)
                else go ()
          in
          go ())
    with Sys_error _ | Scanf.Scan_failure _ | End_of_file -> 0.0
  in
  let query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Exists
         ( [ "y" ],
           Query.Qsyntax.Atom
             (Ic.Patom.make "S" [ Ic.Term.var "x"; Ic.Term.var "y" ]) ))
  in
  let row n =
    let w = Workload.Gen.scale_workload ~tuples:n () in
    let ics = w.Workload.Gen.ics in
    let atoms = Relational.Instance.atoms w.Workload.Gen.d in
    let d, load_ms = time (fun () -> Relational.Instance.of_atoms atoms) in
    let violations, check_ms =
      time (fun () -> Semantics.Nullsat.check d ics)
    in
    let outcome, cqa_ms =
      time (fun () ->
          Query.Cqa.consistent_answers ~method_:Query.Cqa.Auto d ics query)
    in
    let answers =
      match outcome with
      | Ok a -> Relational.Tuple.Set.cardinal a.Query.Cqa.consistent
      | Error _ -> 0
    in
    (* A small update batch against the loaded instance: one deleted parent
       and two fresh inserts, checked incrementally (probes seeded on the
       delta) against a full re-check of the updated instance.  One
       unmeasured warm-up pass first, so the ratio compares steady states
       rather than charging the incremental side the one-time lazy
       construction of the postings its seeds probe. *)
    let mk p vs = Relational.Atom.make p vs in
    let inserted =
      [
        mk "R" [ Relational.Value.int 999_999_999; Relational.Value.str "oz" ];
        mk "S" [ Relational.Value.int 2_000_000_000; Relational.Value.int 0 ];
      ]
    in
    let deleted = [ List.hd atoms ] in
    let before = Semantics.Nullsat.canonical_violations violations in
    let d' =
      List.fold_left
        (fun d a -> Relational.Instance.add a d)
        (List.fold_left
           (fun d a -> Relational.Instance.remove a d)
           d deleted)
        inserted
    in
    ignore (Semantics.Nullsat.check_delta ~before ~inserted ~deleted d' ics);
    let full, delta_full_ms =
      time (fun () ->
          Semantics.Nullsat.canonical_violations
            (Semantics.Nullsat.check d' ics))
    in
    let (incr, _stats), delta_incr_ms =
      time (fun () ->
          Semantics.Nullsat.check_delta ~before ~inserted ~deleted d' ics)
    in
    let identical =
      List.length full = List.length incr
      && List.for_all2
           (fun a b -> Semantics.Nullsat.compare_violation a b = 0)
           full incr
    in
    let tps ms = if ms > 0.0 then float_of_int n /. (ms /. 1000.) else 0.0 in
    ( Printf.sprintf "E19.scale.n%d" n,
      n,
      (load_ms, tps load_ms),
      (check_ms, tps check_ms),
      (cqa_ms, tps cqa_ms),
      (delta_full_ms, delta_incr_ms),
      identical,
      List.length violations,
      answers,
      rss_mb () )
  in
  [ row (max 1_000 (scale / 10)); row scale ]

(* Serve telemetry (E20): K concurrent clients replaying one identical
   update/query script against a single in-process [Serve.Server] over a
   temp Unix socket — the concurrent serving claim as checked data.  Every
   client runs its own session over the shared base, so every reply must be
   byte-identical to a cold private-protocol replay of the same script
   ([identical], guarded); the process-global component cache must show
   cross-session traffic (client 1 populates, clients 2..K hit entries they
   do not own — [cross_hits] >= 1 is deterministic for K >= 2, guarded by
   --check-json).  Latencies are measured per request at the client and
   reported as p50/p99 alongside the aggregate request rate. *)
let serve_telemetry ~clients () =
  let k = 6 in
  let w = Workload.Gen.clusters_workload ~padding:2 ~k () in
  let query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Atom (Ic.Patom.make "S" [ Ic.Term.var "x" ]))
  in
  let env =
    {
      Serve.Protocol.schema =
        Relational.Schema.of_list
          [ ("S", [ "x" ]); ("R", [ "x"; "y" ]); ("T", [ "x" ]);
            ("Note", [ "x" ]) ];
      queries = [ ("q1", query) ];
    }
  in
  (* the E17 session script, spelled as protocol lines: a no-op insert,
     then removing and restoring one cluster, with repairs/cqa probes
     between the updates *)
  let script =
    [
      "repairs"; "cqa q1";
      "insert Note(a0)"; "repairs"; "cqa q1";
      "delete S(a0)"; "repairs"; "cqa q1";
      "insert S(a0)"; "repairs"; "cqa q1";
    ]
  in
  let cfg =
    {
      Serve.Server.engine = Session.Program;
      jobs = Parallel.Config.resolve 0;
      cache_capacity = 4096;
      timeout_ms = None;
      want_stats = false;
      max_line = Serve.Protocol.default_max_line;
    }
  in
  let srv = Serve.Server.create cfg ~base:w.Workload.Gen.d ~ics:w.Workload.Gen.ics env in
  (* the oracle: the same script through a cold private protocol (its own
     session, its own cache) — what a lone [cqanull session] would print *)
  let expected =
    let cold_cfg =
      {
        Serve.Protocol.engine = Session.Program;
        jobs = 1;
        capacity = 4096;
        timeout_ms = None;
        want_stats = false;
        allow_load = false;
        max_line = Serve.Protocol.default_max_line;
        cache = None;
        extra_stats = None;
      }
    in
    let p = Serve.Protocol.create cold_cfg in
    ignore
      (Serve.Protocol.attach ~violations:(Serve.Server.violations srv) p
         ~base:w.Workload.Gen.d ~ics:w.Workload.Gen.ics env);
    List.map (fun line -> (Serve.Protocol.exec p line).Serve.Protocol.text)
      script
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cqanull-bench-%d.sock" (Unix.getpid ()))
  in
  let fd = Serve.Server.listen_unix sock in
  let server_thread = Thread.create (fun () -> Serve.Server.run srv fd) () in
  let n_script = List.length script in
  let latencies = Array.make (clients * n_script) 0.0 in
  let identical = Atomic.make true in
  let t0 = Unix.gettimeofday () in
  let client_thread idx =
    Thread.create
      (fun () ->
        match Serve.Client.connect ~retry_ms:5_000 (Unix.ADDR_UNIX sock) with
        | Error _ -> Atomic.set identical false
        | Ok c ->
            List.iteri
              (fun j line ->
                let r0 = Unix.gettimeofday () in
                let reply = Serve.Client.request c line in
                latencies.((idx * n_script) + j) <-
                  (Unix.gettimeofday () -. r0) *. 1000.;
                match reply with
                | Ok text when text = List.nth expected j -> ()
                | Ok _ | Error `Closed -> Atomic.set identical false)
              script;
            Serve.Client.close c)
      ()
  in
  let threads = List.init clients client_thread in
  List.iter Thread.join threads;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Serve.Server.request_stop srv;
  Thread.join server_thread;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let cs = Session.Cache.stats (Serve.Server.cache srv) in
  Array.sort compare latencies;
  let pct p =
    let n = Array.length latencies in
    latencies.(min (n - 1) (p * n / 100))
  in
  let requests = clients * n_script in
  [
    ( Printf.sprintf "E20.serve.k%d.c%d" k clients,
      clients,
      requests,
      wall_ms,
      (if wall_ms > 0.0 then float_of_int requests /. (wall_ms /. 1000.)
       else 0.0),
      pct 50,
      pct 99,
      cs.Session.Cache.hits,
      cs.Session.Cache.misses,
      cs.Session.Cache.evictions,
      cs.Session.Cache.cross_hits,
      Session.Cache.cross_hit_rate cs,
      Atomic.get identical );
  ]

let write_json path micro solver_rows decompose_rows budget_rows parallel_rows
    session_rows routing_rows scale_rows serve_rows cdcl_rows conform_rows =
  let open Table in
  let micro_rows =
    List.map
      (fun (name, est) ->
        Obj [ ("name", Str name); ("ns_per_run", Num est) ])
      micro
  in
  let telemetry_rows =
    List.map
      (fun (name, engine, models, (s : Asp.Solver.stats)) ->
        Obj
          [
            ("name", Str name);
            ("engine", Str engine);
            ("models", Int models);
            ("decisions", Int s.Asp.Solver.decisions);
            ("propagations", Int s.Asp.Solver.propagations);
            ("candidates", Int s.Asp.Solver.candidates);
            ("minimality_checks", Int s.Asp.Solver.minimality_checks);
            ("queue_pushes", Int s.Asp.Solver.queue_pushes);
            ("rules_touched", Int s.Asp.Solver.rules_touched);
            ("conflicts", Int s.Asp.Solver.conflicts);
            ("learned", Int s.Asp.Solver.learned);
            ("restarts", Int s.Asp.Solver.restarts);
            ("backjump_len", Int s.Asp.Solver.backjump_len);
            ("phase_saved", Int s.Asp.Solver.phase_saved);
          ])
      solver_rows
  in
  let cdcl_json =
    List.map
      (fun ( name, k, m, atoms, models, identical, hard,
             (sc : Asp.Solver.stats), (sd : Asp.Solver.stats) ) ->
        Obj
          [
            ("name", Str name);
            ("k", Int k);
            ("m", Int m);
            ("atoms", Int atoms);
            ("models", Int models);
            ("cdcl_decisions", Int sc.Asp.Solver.decisions);
            ("dpll_decisions", Int sd.Asp.Solver.decisions);
            ( "decision_ratio",
              Num
                (if sd.Asp.Solver.decisions > 0 then
                   float_of_int sc.Asp.Solver.decisions
                   /. float_of_int sd.Asp.Solver.decisions
                 else 0.0) );
            ("conflicts", Int sc.Asp.Solver.conflicts);
            ("learned", Int sc.Asp.Solver.learned);
            ("restarts", Int sc.Asp.Solver.restarts);
            ("backjump_len", Int sc.Asp.Solver.backjump_len);
            ("phase_saved", Int sc.Asp.Solver.phase_saved);
            ("hard", Str (if hard then "true" else "false"));
            ("identical", Str (if identical then "true" else "false"));
          ])
      cdcl_rows
  in
  let conform_json =
    List.map
      (fun (name, family, tier_ms, passed) ->
        Obj
          [
            ("name", Str name);
            ("family", Str family);
            ("tiers", Int (List.length tier_ms));
            ( "tier_ms",
              Obj (List.map (fun (t, ms) -> (t, Num ms)) tier_ms) );
            ("identical", Str (if passed then "true" else "false"));
          ])
      conform_rows
  in
  let decompose_json =
    List.map
      (fun (k, components, max_atoms, exact, count, mono_states, explored) ->
        Obj
          [
            ("k", Int k);
            ("components", Int components);
            ("max_component_atoms", Int max_atoms);
            ("product_exact", Str (if exact then "true" else "false"));
            ("repair_count", Int count);
            ("monolithic_states", Int mono_states);
            ("component_states", Arr (List.map (fun s -> Int s) explored));
          ])
      decompose_rows
  in
  let budget_json =
    List.map
      (fun (name, decompose, outcome, (s : Budget.stats)) ->
        Obj
          [
            ("name", Str name);
            ("decompose", Str (if decompose then "true" else "false"));
            ("outcome", Str outcome);
            ("decisions", Int (Atomic.get s.Budget.decisions));
            ("states", Int (Atomic.get s.Budget.states));
            ("components_solved", Int (Atomic.get s.Budget.components_solved));
            ("elapsed_ms", Int (Atomic.get s.Budget.elapsed_ms));
          ])
      budget_rows
  in
  let parallel_json =
    List.map
      (fun (k, weight, jobs, cores, repairs, wall_ms, identical) ->
        Obj
          [
            ("name", Str (Printf.sprintf "E16.parallel.k%d.w%d.j%d" k weight jobs));
            ("k", Int k);
            ("weight", Int weight);
            ("jobs", Int jobs);
            ("cores", Int cores);
            ("repairs", Int repairs);
            ("wall_ms", Num wall_ms);
            ("identical", Str (if identical then "true" else "false"));
          ])
      parallel_rows
  in
  let session_json =
    List.map
      (fun ( name, k, deltas, requests, hits, misses, evictions, hit_rate,
             incremental_ms, cold_ms, identical ) ->
        Obj
          [
            ("name", Str name);
            ("k", Int k);
            ("deltas", Int deltas);
            ("requests", Int requests);
            ("hits", Int hits);
            ("misses", Int misses);
            ("evictions", Int evictions);
            ("hit_rate", Num hit_rate);
            ("incremental_ms", Num incremental_ms);
            ("cold_ms", Num cold_ms);
            ("identical", Str (if identical then "true" else "false"));
          ])
      session_rows
  in
  let routing_json =
    List.map
      (fun (name, tiers, auto_ms, enum_ms, prog_ms, identical) ->
        Obj
          [
            ("name", Str name);
            ("routed_direct", Int tiers.(0));
            ("routed_shifted", Int tiers.(1));
            ("routed_disjunctive", Int tiers.(2));
            ("routed_enumerate", Int tiers.(3));
            ("auto_ms", Num auto_ms);
            ("enumerate_ms", Num enum_ms);
            ("program_ms", Num prog_ms);
            ( "speedup_vs_enumerate",
              Num (if auto_ms > 0.0 then enum_ms /. auto_ms else 0.0) );
            ("identical", Str (if identical then "true" else "false"));
          ])
      routing_rows
  in
  let scale_json =
    List.map
      (fun ( name, n, (load_ms, load_tps), (check_ms, check_tps),
             (cqa_ms, cqa_tps), (delta_full_ms, delta_incr_ms), identical,
             violations, answers, rss ) ->
        Obj
          [
            ("name", Str name);
            ("n", Int n);
            ("load_ms", Num load_ms);
            ("load_tps", Num load_tps);
            ("check_ms", Num check_ms);
            ("check_tps", Num check_tps);
            ("cqa_ms", Num cqa_ms);
            ("cqa_tps", Num cqa_tps);
            ("delta_full_ms", Num delta_full_ms);
            ("delta_incr_ms", Num delta_incr_ms);
            ( "delta_speedup",
              Num
                (if delta_incr_ms > 0.0 then delta_full_ms /. delta_incr_ms
                 else 0.0) );
            ("delta_identical", Str (if identical then "true" else "false"));
            ("violations", Int violations);
            ("answers", Int answers);
            ("rss_mb", Num rss);
          ])
      scale_rows
  in
  let serve_json =
    List.map
      (fun ( name, clients, requests, wall_ms, req_per_s, p50_ms, p99_ms,
             hits, misses, evictions, cross_hits, cross_hit_rate, identical ) ->
        Obj
          [
            ("name", Str name);
            ("clients", Int clients);
            ("requests", Int requests);
            ("wall_ms", Num wall_ms);
            ("req_per_s", Num req_per_s);
            ("p50_ms", Num p50_ms);
            ("p99_ms", Num p99_ms);
            ("hits", Int hits);
            ("misses", Int misses);
            ("evictions", Int evictions);
            ("cross_hits", Int cross_hits);
            ("cross_hit_rate", Num cross_hit_rate);
            ("identical", Str (if identical then "true" else "false"));
          ])
      serve_rows
  in
  let doc =
    Obj
      [
        ("schema", Str "cqanull-bench/10");
        ("tool", Str "bench/main.exe --json");
        ("unit", Str "ns/run");
        ("micro", Arr micro_rows);
        ("solver", Arr telemetry_rows);
        ("decompose", Arr decompose_json);
        ("budget", Arr budget_json);
        ("parallel", Arr parallel_json);
        ("session", Arr session_json);
        ("routing", Arr routing_json);
        ("scale", Arr scale_json);
        ("serve", Arr serve_json);
        ("cdcl", Arr cdcl_json);
        ("conform", Arr conform_json);
      ]
  in
  Out_channel.with_open_text path (fun oc -> output_string oc (emit doc));
  Printf.printf
    "wrote %s (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows, %d routing rows, %d scale rows, %d serve rows, %d cdcl rows, %d conform rows)\n"
    path
    (List.length micro_rows)
    (List.length telemetry_rows)
    (List.length decompose_json)
    (List.length budget_json)
    (List.length parallel_json)
    (List.length session_json)
    (List.length routing_json)
    (List.length scale_json)
    (List.length serve_json)
    (List.length cdcl_json)
    (List.length conform_json)

(* --check-json: the baseline format's self-test.  Guards the stable keys
   and the numeric fields so the file future PRs diff against cannot drift
   silently. *)
let check_json path =
  let fail msg =
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
  in
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail e
  in
  let doc = try Table.parse contents with Table.Json_error e -> fail e in
  let str_field obj key =
    match Table.member key obj with
    | Some (Table.Str s) -> s
    | _ -> fail (Printf.sprintf "missing or non-string field %S" key)
  in
  let num_field obj key =
    match Table.member key obj with
    | Some (Table.Num f) -> f
    | Some (Table.Int i) -> float_of_int i
    | _ -> fail (Printf.sprintf "missing or non-numeric field %S" key)
  in
  let int_field obj key =
    match Table.member key obj with
    | Some (Table.Int i) -> i
    | _ -> fail (Printf.sprintf "missing or non-integer field %S" key)
  in
  let arr_field obj key =
    match Table.member key obj with
    | Some (Table.Arr items) -> items
    | _ -> fail (Printf.sprintf "missing or non-array field %S" key)
  in
  let schema = str_field doc "schema" in
  (match schema with
  | "cqanull-bench/1" | "cqanull-bench/2" | "cqanull-bench/3"
  | "cqanull-bench/4" | "cqanull-bench/5" | "cqanull-bench/6"
  | "cqanull-bench/7" | "cqanull-bench/8" | "cqanull-bench/9"
  | "cqanull-bench/10" -> ()
  | s -> fail (Printf.sprintf "unknown schema %S" s));
  (* the version number behind "cqanull-bench/", for the cumulative
     section guards below (each section is guarded from the version that
     introduced it onward) *)
  let v = int_of_string (String.sub schema 14 (String.length schema - 14)) in
  ignore (str_field doc "tool");
  ignore (str_field doc "unit");
  let micro = arr_field doc "micro" in
  List.iter
    (fun row ->
      let name = str_field row "name" in
      let ns = num_field row "ns_per_run" in
      if ns < 0.0 then
        fail (Printf.sprintf "negative ns_per_run for %S" name))
    micro;
  let solver = arr_field doc "solver" in
  List.iter
    (fun row ->
      ignore (str_field row "name");
      (match str_field row "engine" with
      | "counter" | "naive" -> ()
      | "cdcl" when v >= 9 -> ()
      | e -> fail (Printf.sprintf "unknown engine %S" e));
      List.iter
        (fun key ->
          if int_field row key < 0 then
            fail (Printf.sprintf "negative field %S" key))
        ([ "models"; "decisions"; "propagations"; "candidates";
           "minimality_checks"; "queue_pushes"; "rules_touched" ]
        (* /9 adds the learning counters to every solver row *)
        @ (if v >= 9 then
             [ "conflicts"; "learned"; "restarts"; "backjump_len" ]
           else [])
        (* /10 adds the phase-saving counter *)
        @ if v >= 10 then [ "phase_saved" ] else []))
    solver;
  (* /2 adds the conflict-decomposition counters: the per-component state
     counts must sum to no more than the monolithic exploration *)
  let decompose = if v < 2 then [] else arr_field doc "decompose" in
  List.iter
    (fun row ->
      List.iter
        (fun key ->
          if int_field row key < 0 then
            fail (Printf.sprintf "negative field %S" key))
        [ "k"; "components"; "max_component_atoms"; "repair_count";
          "monolithic_states" ];
      (match str_field row "product_exact" with
      | "true" | "false" -> ()
      | s -> fail (Printf.sprintf "non-boolean product_exact %S" s));
      let states =
        List.map
          (function
            | Table.Int i when i >= 0 -> i
            | _ -> fail "non-integer component state count")
          (arr_field row "component_states")
      in
      if List.fold_left ( + ) 0 states > int_field row "monolithic_states" then
        fail
          (Printf.sprintf
             "decomposed exploration exceeds monolithic at k=%d"
             (int_field row "k")))
    decompose;
  (* /3 adds the per-stage budget counters: every row must show live
     consumption — at least one of decisions/states ticked, components
     solved on decomposed rows, and a started millisecond of wall-clock *)
  let budget = if v >= 3 then arr_field doc "budget" else [] in
  List.iter
    (fun row ->
      let name = str_field row "name" in
      (match str_field row "outcome" with
      | "ok" | "error" -> ()
      | s -> fail (Printf.sprintf "unknown outcome %S in %S" s name));
      let decompose_row =
        match str_field row "decompose" with
        | "true" -> true
        | "false" -> false
        | s -> fail (Printf.sprintf "non-boolean decompose %S in %S" s name)
      in
      List.iter
        (fun key ->
          if int_field row key < 0 then
            fail (Printf.sprintf "negative field %S in %S" key name))
        [ "decisions"; "states"; "components_solved"; "elapsed_ms" ];
      if int_field row "decisions" + int_field row "states" = 0 then
        fail (Printf.sprintf "no budget consumption recorded in %S" name);
      if decompose_row && int_field row "components_solved" = 0 then
        fail (Printf.sprintf "no components solved in decomposed row %S" name);
      if int_field row "elapsed_ms" < 1 then
        fail (Printf.sprintf "zero elapsed_ms in %S" name))
    budget;
  (* /4 adds the --jobs telemetry.  The section is exclusive to /4 in both
     directions — a /3-or-older file carrying it, or a /4 file without it,
     is schema drift and fails.  Every row must record a positive repair
     count and wall-clock, and the [identical] flag must hold: the
     deterministic-merge contract is checked data, not prose.  The >= 2x
     speedup of jobs=4 over jobs=1 is only guarded when the recording
     machine actually had >= 4 cores — on fewer cores there is no
     parallelism to measure and the honest numbers may even slow down
     (domains contending for one core). *)
  (if v < 4 then begin
     if Table.member "parallel" doc <> None then
       fail "section \"parallel\" requires schema cqanull-bench/4"
   end
   else
     let parallel = arr_field doc "parallel" in
     if parallel = [] then fail "empty parallel section";
     let row_ms jobs =
       List.find_map
         (fun row ->
           if int_field row "jobs" = jobs then Some (num_field row "wall_ms")
           else None)
         parallel
     in
     List.iter
       (fun row ->
         let name = str_field row "name" in
         List.iter
           (fun key ->
             if int_field row key < 1 then
               fail (Printf.sprintf "non-positive field %S in %S" key name))
           [ "k"; "weight"; "jobs"; "cores"; "repairs" ];
         if num_field row "wall_ms" <= 0.0 then
           fail (Printf.sprintf "non-positive wall_ms in %S" name);
         match str_field row "identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "parallel run %S diverged from the sequential output" name)
         | s -> fail (Printf.sprintf "non-boolean identical %S in %S" s name))
       parallel;
     let cores =
       match parallel with
       | row :: _ -> int_field row "cores"
       | [] -> assert false
     in
     match (row_ms 1, row_ms 4) with
     | None, _ -> fail "parallel section has no jobs=1 baseline row"
     | _, None -> fail "parallel section has no jobs=4 row"
     | Some ms1, Some ms4 ->
         if cores >= 4 && ms4 > ms1 /. 2.0 then
           fail
             (Printf.sprintf
                "jobs=4 speedup %.2fx below 2x on a %d-core machine"
                (ms1 /. ms4) cores));
  (* /5 adds the session telemetry.  Exclusive to /5 in both directions,
     like the parallel section.  Every row must show the cache actually
     serving (> 0.5 hit rate on the scripted mix) and the correctness
     contract holding — identical session and cold answers on every
     request. *)
  (if v < 5 then begin
     if Table.member "session" doc <> None then
       fail "section \"session\" requires schema cqanull-bench/5"
   end
   else
     let session = arr_field doc "session" in
     if session = [] then fail "empty session section";
     List.iter
       (fun row ->
         let name = str_field row "name" in
         List.iter
           (fun key ->
             if int_field row key < 0 then
               fail (Printf.sprintf "negative field %S in %S" key name))
           [ "k"; "deltas"; "requests"; "hits"; "misses"; "evictions" ];
         if int_field row "requests" < 1 then
           fail (Printf.sprintf "no requests served in %S" name);
         if num_field row "hit_rate" <= 0.5 then
           fail
             (Printf.sprintf "cache hit rate %.2f not above 0.5 in %S"
                (num_field row "hit_rate") name);
         if num_field row "incremental_ms" <= 0.0 then
           fail (Printf.sprintf "non-positive incremental_ms in %S" name);
         if num_field row "cold_ms" <= 0.0 then
           fail (Printf.sprintf "non-positive cold_ms in %S" name);
         match str_field row "identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "session run %S diverged from the cold answers" name)
         | s -> fail (Printf.sprintf "non-boolean identical %S in %S" s name))
       session);
  (* /6 adds the per-tier routing telemetry.  Exclusive to /6 in both
     directions, like the parallel and session sections.  Every row must
     route at least one component, report positive wall-clocks and hold
     the byte-identity contract with the enumerate oracle; at least one
     all-direct FD row must beat decomposed enumeration by >= 10x — the
     fast-path claim as a checked fact, not prose. *)
  (if v < 6 then begin
     if Table.member "routing" doc <> None then
       fail "section \"routing\" requires schema cqanull-bench/6"
   end
   else
     let routing = arr_field doc "routing" in
     if routing = [] then fail "empty routing section";
     List.iter
       (fun row ->
         let name = str_field row "name" in
         let tiers =
           List.map
             (fun key ->
               let n = int_field row key in
               if n < 0 then fail (Printf.sprintf "negative %S in %S" key name);
               n)
             [ "routed_direct"; "routed_shifted"; "routed_disjunctive";
               "routed_enumerate" ]
         in
         if List.fold_left ( + ) 0 tiers = 0 then
           fail (Printf.sprintf "no components routed in %S" name);
         List.iter
           (fun key ->
             if num_field row key <= 0.0 then
               fail (Printf.sprintf "non-positive %S in %S" key name))
           [ "auto_ms"; "enumerate_ms"; "program_ms" ];
         match str_field row "identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "routing row %S diverged from the enumerate oracle" name)
         | s -> fail (Printf.sprintf "non-boolean identical %S in %S" s name))
       routing;
     let fast_path_holds =
       List.exists
         (fun row ->
           int_field row "routed_direct" >= 1
           && int_field row "routed_shifted" = 0
           && int_field row "routed_disjunctive" = 0
           && int_field row "routed_enumerate" = 0
           && num_field row "speedup_vs_enumerate" >= 10.0)
         routing
     in
     if not fast_path_holds then
       fail
         "no all-direct routing row beats decomposed enumeration by >= 10x");
  (* /7 adds the large-instance scale telemetry.  Exclusive to /7 in both
     directions, like the earlier sections.  Every row must report positive
     wall-clocks and throughputs and hold the incremental-check contract
     ([delta_identical], checked data); rows at n >= 10^5 must additionally
     show the delta-seeded incremental check beating the full re-check by
     >= 10x — the indexed-maintenance claim as a checked fact, not prose.
     Smaller rows are exempt: at cram-sized instances both clocks sit in
     the sub-millisecond noise floor. *)
  (if v < 7 then begin
     if Table.member "scale" doc <> None then
       fail "section \"scale\" requires schema cqanull-bench/7"
   end
   else
     let scale = arr_field doc "scale" in
     if scale = [] then fail "empty scale section";
     List.iter
       (fun row ->
         let name = str_field row "name" in
         let n = int_field row "n" in
         if n < 1 then fail (Printf.sprintf "non-positive n in %S" name);
         List.iter
           (fun key ->
             if num_field row key <= 0.0 then
               fail (Printf.sprintf "non-positive %S in %S" key name))
           [ "load_ms"; "load_tps"; "check_ms"; "check_tps"; "cqa_ms";
             "cqa_tps"; "delta_full_ms"; "delta_incr_ms" ];
         List.iter
           (fun key ->
             if int_field row key < 0 then
               fail (Printf.sprintf "negative field %S in %S" key name))
           [ "violations"; "answers" ];
         if num_field row "rss_mb" < 0.0 then
           fail (Printf.sprintf "negative rss_mb in %S" name);
         (match str_field row "delta_identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "incremental check in %S diverged from the full re-check"
                  name)
         | s -> fail (Printf.sprintf "non-boolean delta_identical %S in %S" s name));
         if n >= 100_000 && num_field row "delta_speedup" < 10.0 then
           fail
             (Printf.sprintf
                "delta speedup %.2fx below 10x at n=%d in %S"
                (num_field row "delta_speedup") n name))
       scale);
  (* /8 adds the concurrent-serving telemetry.  Exclusive to /8 in both
     directions, like the earlier sections.  Every row must replay >= 2
     concurrent clients, report positive throughput and ordered positive
     percentiles (p99 >= p50 > 0), hold the byte-identity contract with
     the cold single-session replay ([identical], checked data), and show
     the process-global cache actually being shared across sessions —
     cross_hits >= 1 and a positive cross-session hit rate.  A server
     whose cache silently degrades to per-connection privacy fails the
     baseline even if every answer stays correct. *)
  (if v < 8 then begin
     if Table.member "serve" doc <> None then
       fail "section \"serve\" requires schema cqanull-bench/8"
   end
   else
     let serve = arr_field doc "serve" in
     if serve = [] then fail "empty serve section";
     List.iter
       (fun row ->
         let name = str_field row "name" in
         if int_field row "clients" < 2 then
           fail (Printf.sprintf "fewer than 2 clients in %S" name);
         if int_field row "requests" < 1 then
           fail (Printf.sprintf "no requests served in %S" name);
         List.iter
           (fun key ->
             if num_field row key <= 0.0 then
               fail (Printf.sprintf "non-positive %S in %S" key name))
           [ "wall_ms"; "req_per_s"; "p50_ms"; "p99_ms" ];
         if num_field row "p99_ms" < num_field row "p50_ms" then
           fail (Printf.sprintf "p99 below p50 in %S" name);
         List.iter
           (fun key ->
             if int_field row key < 0 then
               fail (Printf.sprintf "negative field %S in %S" key name))
           [ "hits"; "misses"; "evictions" ];
         if int_field row "cross_hits" < 1 then
           fail
             (Printf.sprintf
                "no cross-session cache hits in %S — the global cache is \
                 not shared"
                name);
         if num_field row "cross_hit_rate" <= 0.0 then
           fail
             (Printf.sprintf "non-positive cross_hit_rate in %S" name);
         match str_field row "identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "serve replay %S diverged from the cold single-session \
                   answers"
                  name)
         | s -> fail (Printf.sprintf "non-boolean identical %S in %S" s name))
       serve);
  (* /9 adds the CDCL decision-count sweep (E21).  Exclusive to /9 in both
     directions, like the earlier sections.  Every row must report the two
     engines reaching identical model sets ([identical], checked data) with
     positive decision counts; the sweep must carry at least one hard row,
     and on every hard row the learning engine must reach the same models
     with at most half the decisions of the chronological counter engine —
     the headline claim of the CDCL rewrite as a checked fact, not prose. *)
  (if v < 9 then begin
     if Table.member "cdcl" doc <> None then
       fail "section \"cdcl\" requires schema cqanull-bench/9"
   end
   else
     let cdcl = arr_field doc "cdcl" in
     if cdcl = [] then fail "empty cdcl section";
     let hard_rows = ref 0 in
     List.iter
       (fun row ->
         let name = str_field row "name" in
         List.iter
           (fun key ->
             if int_field row key < 0 then
               fail (Printf.sprintf "negative field %S in %S" key name))
           ([ "k"; "m"; "atoms"; "models"; "cdcl_decisions"; "dpll_decisions";
              "conflicts"; "learned"; "restarts"; "backjump_len" ]
           @ if v >= 10 then [ "phase_saved" ] else []);
         if int_field row "models" < 1 then
           fail (Printf.sprintf "no models enumerated in %S" name);
         if int_field row "dpll_decisions" < 1 then
           fail (Printf.sprintf "no dpll decisions recorded in %S" name);
         if num_field row "decision_ratio" < 0.0 then
           fail (Printf.sprintf "negative decision_ratio in %S" name);
         (match str_field row "identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "cdcl run %S diverged from the dpll model set" name)
         | s -> fail (Printf.sprintf "non-boolean identical %S in %S" s name));
         match str_field row "hard" with
         | "false" -> ()
         | "true" ->
             incr hard_rows;
             if
               2 * int_field row "cdcl_decisions"
               > int_field row "dpll_decisions"
             then
               fail
                 (Printf.sprintf
                    "cdcl decisions %d not <= 0.5x dpll decisions %d on hard \
                     row %S"
                    (int_field row "cdcl_decisions")
                    (int_field row "dpll_decisions")
                    name)
         | s -> fail (Printf.sprintf "non-boolean hard %S in %S" s name))
       cdcl;
     if !hard_rows = 0 then fail "cdcl section has no hard rows");
  (* /10 adds the conformance replay (E22).  Exclusive to /10 in both
     directions, like the earlier sections.  The replayed corpus must
     cover at least 5 scenario families and 20 cases; every row must
     report at least 4 engine tiers with non-negative per-tier
     wall-clocks, and every verdict must be identical across tiers — the
     conformance contract as checked data, not prose. *)
  (if v < 10 then begin
     if Table.member "conform" doc <> None then
       fail "section \"conform\" requires schema cqanull-bench/10"
   end
   else
     let conform = arr_field doc "conform" in
     if conform = [] then fail "empty conform section";
     let families = ref [] in
     List.iter
       (fun row ->
         let name = str_field row "name" in
         let family = str_field row "family" in
         if not (List.mem family !families) then
           families := family :: !families;
         let tiers = int_field row "tiers" in
         if tiers < 4 then
           fail (Printf.sprintf "fewer than 4 tiers in %S" name);
         (match Table.member "tier_ms" row with
         | Some (Table.Obj fields) ->
             if List.length fields <> tiers then
               fail (Printf.sprintf "tier_ms arity mismatch in %S" name);
             List.iter
               (fun (tier, x) ->
                 match x with
                 | Table.Num ms when ms >= 0.0 -> ()
                 | Table.Int ms when ms >= 0 -> ()
                 | _ ->
                     fail
                       (Printf.sprintf "negative tier_ms for %S in %S" tier
                          name))
               fields
         | _ -> fail (Printf.sprintf "missing tier_ms object in %S" name));
         match str_field row "identical" with
         | "true" -> ()
         | "false" ->
             fail
               (Printf.sprintf
                  "conformance case %S failed its cross-tier check" name)
         | s -> fail (Printf.sprintf "non-boolean identical %S in %S" s name))
       conform;
     if List.length !families < 5 then
       fail "conform section covers fewer than 5 families";
     if List.length conform < 20 then
       fail "conform section has fewer than 20 cases");
  match schema with
  | "cqanull-bench/1" ->
      Printf.printf "%s: ok (%d micro rows, %d solver rows)\n" path
        (List.length micro) (List.length solver)
  | "cqanull-bench/2" ->
      Printf.printf
        "%s: ok (%d micro rows, %d solver rows, %d decompose rows)\n" path
        (List.length micro) (List.length solver) (List.length decompose)
  | "cqanull-bench/3" ->
      Printf.printf
        "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows)\n"
        path (List.length micro) (List.length solver) (List.length decompose)
        (List.length budget)
  | _ ->
      let rows key =
        match Table.member key doc with
        | Some (Table.Arr rows) -> rows
        | _ -> []
      in
      if schema = "cqanull-bench/4" then
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
      else if schema = "cqanull-bench/5" then
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
          (List.length (rows "session"))
      else if schema = "cqanull-bench/6" then
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows, %d routing rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
          (List.length (rows "session"))
          (List.length (rows "routing"))
      else if schema = "cqanull-bench/7" then
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows, %d routing rows, %d scale rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
          (List.length (rows "session"))
          (List.length (rows "routing"))
          (List.length (rows "scale"))
      else if schema = "cqanull-bench/8" then
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows, %d routing rows, %d scale rows, %d serve rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
          (List.length (rows "session"))
          (List.length (rows "routing"))
          (List.length (rows "scale"))
          (List.length (rows "serve"))
      else if schema = "cqanull-bench/9" then
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows, %d routing rows, %d scale rows, %d serve rows, %d cdcl rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
          (List.length (rows "session"))
          (List.length (rows "routing"))
          (List.length (rows "scale"))
          (List.length (rows "serve"))
          (List.length (rows "cdcl"))
      else
        Printf.printf
          "%s: ok (%d micro rows, %d solver rows, %d decompose rows, %d budget rows, %d parallel rows, %d session rows, %d routing rows, %d scale rows, %d serve rows, %d cdcl rows, %d conform rows)\n"
          path (List.length micro) (List.length solver)
          (List.length decompose) (List.length budget)
          (List.length (rows "parallel"))
          (List.length (rows "session"))
          (List.length (rows "routing"))
          (List.length (rows "scale"))
          (List.length (rows "serve"))
          (List.length (rows "cdcl"))
          (List.length (rows "conform"))

(* --compare-json OLD NEW: regression guard over the micro rows both files
   share in the E1/E2 families.  Bechamel estimates from ~5ms cram quotas
   are noisy, so the tolerance is generous (10x) — the guard catches
   order-of-magnitude regressions (an accidentally quadratic comparator, a
   dropped index), not percent-level drift. *)
let compare_json ~tolerance old_path new_path =
  let fail msg =
    Printf.eprintf "%s\n" msg;
    exit 1
  in
  let load path =
    let contents =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error e -> fail (path ^ ": " ^ e)
    in
    try Table.parse contents
    with Table.Json_error e -> fail (path ^ ": " ^ e)
  in
  (* Parallel telemetry carries across baselines only when both files have
     it (the section is new in cqanull-bench/4): the jobs=1 wall-clock is
     guarded with the same generous tolerance as the micro rows, and
     diverged-output rows fail outright — determinism is not a perf
     number. *)
  let parallel_guard old_doc new_doc =
    match (Table.member "parallel" old_doc, Table.member "parallel" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        List.iter
          (fun row ->
            match Table.member "identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a diverged parallel row")
          new_rows;
        let seq_ms rows =
          List.find_map
            (fun row ->
              match (Table.member "jobs" row, Table.member "wall_ms" row) with
              | Some (Table.Int 1), Some (Table.Num ms) -> Some ms
              | Some (Table.Int 1), Some (Table.Int ms) ->
                  Some (float_of_int ms)
              | _ -> None)
            rows
        in
        (match (seq_ms old_rows, seq_ms new_rows) with
        | Some old_ms, Some new_ms ->
            Printf.printf "parallel jobs=1 %.1f -> %.1f wall_ms (%.2fx)\n"
              old_ms new_ms
              (if old_ms > 0.0 then new_ms /. old_ms else 0.0);
            if old_ms > 0.0 && new_ms > tolerance *. old_ms then
              fail
                (Printf.sprintf
                   "parallel jobs=1 wall-clock regressed beyond %.0fx tolerance"
                   tolerance)
        | _ -> ())
    | _ -> ()
  in
  (* Session telemetry carries across baselines only when both files have
     it (the section is new in cqanull-bench/5): the incremental
     wall-clock is guarded with the micro-row tolerance, and a new
     baseline with diverged session answers or a collapsed hit rate fails
     outright — both are contracts, not perf numbers. *)
  let session_guard old_doc new_doc =
    match (Table.member "session" old_doc, Table.member "session" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        List.iter
          (fun row ->
            (match Table.member "identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a diverged session row");
            match Table.member "hit_rate" row with
            | Some (Table.Num r) when r > 0.5 -> ()
            | _ -> fail "new baseline's session hit rate fell to 0.5 or below")
          new_rows;
        let inc_ms rows =
          List.find_map
            (fun row ->
              match Table.member "incremental_ms" row with
              | Some (Table.Num ms) -> Some ms
              | Some (Table.Int ms) -> Some (float_of_int ms)
              | _ -> None)
            rows
        in
        (match (inc_ms old_rows, inc_ms new_rows) with
        | Some old_ms, Some new_ms ->
            Printf.printf "session incremental %.1f -> %.1f ms (%.2fx)\n"
              old_ms new_ms
              (if old_ms > 0.0 then new_ms /. old_ms else 0.0);
            if old_ms > 0.0 && new_ms > tolerance *. old_ms then
              fail
                (Printf.sprintf
                   "session incremental wall-clock regressed beyond %.0fx \
                    tolerance"
                   tolerance)
        | _ -> ())
    | _ -> ()
  in
  (* Routing telemetry carries across baselines only when both files have
     it (the section is new in cqanull-bench/6): the auto wall-clock is
     guarded with the micro-row tolerance, and a new baseline whose
     routing rows diverged from the enumerate oracle or whose all-direct
     FD fast path no longer beats decomposed enumeration by >= 10x fails
     outright — both are contracts, not perf numbers. *)
  let routing_guard old_doc new_doc =
    match (Table.member "routing" old_doc, Table.member "routing" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        List.iter
          (fun row ->
            match Table.member "identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a diverged routing row")
          new_rows;
        let speedup row =
          match Table.member "speedup_vs_enumerate" row with
          | Some (Table.Num s) -> s
          | Some (Table.Int s) -> float_of_int s
          | _ -> 0.0
        in
        let all_direct row =
          List.for_all
            (fun key ->
              match Table.member key row with
              | Some (Table.Int 0) -> true
              | _ -> false)
            [ "routed_shifted"; "routed_disjunctive"; "routed_enumerate" ]
        in
        if
          not
            (List.exists
               (fun row -> all_direct row && speedup row >= 10.0)
               new_rows)
        then
          fail
            "new baseline's FD fast path no longer beats decomposed \
             enumeration by >= 10x";
        let auto_ms rows name =
          List.find_map
            (fun row ->
              match (Table.member "name" row, Table.member "auto_ms" row) with
              | Some (Table.Str n), Some (Table.Num ms) when n = name ->
                  Some ms
              | Some (Table.Str n), Some (Table.Int ms) when n = name ->
                  Some (float_of_int ms)
              | _ -> None)
            rows
        in
        List.iter
          (fun row ->
            match Table.member "name" row with
            | Some (Table.Str name) -> (
                match (auto_ms old_rows name, auto_ms new_rows name) with
                | Some old_ms, Some new_ms ->
                    Printf.printf "routing %-24s %.1f -> %.1f auto_ms (%.2fx)\n"
                      name old_ms new_ms
                      (if old_ms > 0.0 then new_ms /. old_ms else 0.0);
                    if old_ms > 0.0 && new_ms > tolerance *. old_ms then
                      fail
                        (Printf.sprintf
                           "routing %s auto wall-clock regressed beyond %.0fx \
                            tolerance"
                           name tolerance)
                | _ -> ())
            | _ -> ())
          old_rows
    | _ -> ()
  in
  (* Scale telemetry carries across baselines only when both files have it
     (the section is new in cqanull-bench/7): the load/check/cqa wall-clocks
     are guarded per shared row name with the micro-row tolerance, and a
     new baseline with a diverged incremental check, or one that lost the
     >= 10x delta speedup at n >= 10^5 the old baseline demonstrated, fails
     outright — both are contracts, not perf numbers. *)
  let scale_guard old_doc new_doc =
    match (Table.member "scale" old_doc, Table.member "scale" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        let num row key =
          match Table.member key row with
          | Some (Table.Num f) -> Some f
          | Some (Table.Int i) -> Some (float_of_int i)
          | _ -> None
        in
        List.iter
          (fun row ->
            match Table.member "delta_identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a diverged scale row")
          new_rows;
        let big_speedup rows =
          List.exists
            (fun row ->
              match (num row "n", num row "delta_speedup") with
              | Some n, Some s -> n >= 100_000.0 && s >= 10.0
              | _ -> false)
            rows
        in
        if big_speedup old_rows && not (big_speedup new_rows) then
          fail
            "new baseline's incremental check no longer beats the full \
             re-check by >= 10x at n >= 100000";
        let find rows name key =
          List.find_map
            (fun row ->
              match Table.member "name" row with
              | Some (Table.Str n) when n = name -> num row key
              | _ -> None)
            rows
        in
        List.iter
          (fun row ->
            match Table.member "name" row with
            | Some (Table.Str name) ->
                List.iter
                  (fun key ->
                    match (find old_rows name key, find new_rows name key) with
                    | Some old_ms, Some new_ms ->
                        Printf.printf "scale %-18s %-12s %.1f -> %.1f ms (%.2fx)\n"
                          name key old_ms new_ms
                          (if old_ms > 0.0 then new_ms /. old_ms else 0.0);
                        if old_ms > 0.0 && new_ms > tolerance *. old_ms then
                          fail
                            (Printf.sprintf
                               "scale %s %s regressed beyond %.0fx tolerance"
                               name key tolerance)
                    | _ -> ())
                  [ "load_ms"; "check_ms"; "cqa_ms" ]
            | _ -> ())
          old_rows
    | _ -> ()
  in
  (* Serve telemetry carries across baselines only when both files have it
     (the section is new in cqanull-bench/8): the p50 latency is guarded
     with the micro-row tolerance, and a new baseline with diverged
     concurrent answers or a cache that stopped crossing session
     boundaries fails outright — both are contracts, not perf numbers. *)
  let serve_guard old_doc new_doc =
    match (Table.member "serve" old_doc, Table.member "serve" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        let num row key =
          match Table.member key row with
          | Some (Table.Num f) -> Some f
          | Some (Table.Int i) -> Some (float_of_int i)
          | _ -> None
        in
        List.iter
          (fun row ->
            (match Table.member "identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a diverged serve row");
            match num row "cross_hits" with
            | Some c when c >= 1.0 -> ()
            | _ ->
                fail
                  "new baseline's server cache shows no cross-session hits")
          new_rows;
        let p50 rows =
          List.find_map (fun row -> num row "p50_ms") rows
        in
        (match
           ( List.find_map (fun row -> num row "req_per_s") old_rows,
             List.find_map (fun row -> num row "req_per_s") new_rows )
        with
        | Some old_rps, Some new_rps ->
            Printf.printf "serve %.1f -> %.1f req/s (%.2fx)\n" old_rps
              new_rps
              (if old_rps > 0.0 then new_rps /. old_rps else 0.0)
        | _ -> ());
        (match (p50 old_rows, p50 new_rows) with
        | Some old_ms, Some new_ms ->
            Printf.printf "serve p50 %.2f -> %.2f ms (%.2fx)\n" old_ms new_ms
              (if old_ms > 0.0 then new_ms /. old_ms else 0.0);
            if old_ms > 0.0 && new_ms > tolerance *. old_ms then
              fail
                (Printf.sprintf
                   "serve p50 latency regressed beyond %.0fx tolerance"
                   tolerance)
        | _ -> ())
    | _ -> ()
  in
  (* CDCL telemetry carries across baselines only when both files have it
     (the section is new in cqanull-bench/9): the deterministic decision
     counts are guarded per shared row with the same generous tolerance as
     the wall-clocks — a heuristic tweak may shift them, a 10x blow-up is
     a search regression — and two outright contracts on the new baseline:
     every row's model set identical across engines, and every hard row
     keeping the >= 2x decision advantage of the learning engine. *)
  let cdcl_guard old_doc new_doc =
    match (Table.member "cdcl" old_doc, Table.member "cdcl" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        let int_of row key =
          match Table.member key row with
          | Some (Table.Int i) -> Some i
          | _ -> None
        in
        List.iter
          (fun row ->
            (match Table.member "identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a diverged cdcl row");
            match
              (Table.member "hard" row, int_of row "cdcl_decisions",
               int_of row "dpll_decisions")
            with
            | Some (Table.Str "true"), Some c, Some d when 2 * c > d ->
                fail
                  "new baseline lost the 2x decision advantage on a hard \
                   cdcl row"
            | _ -> ())
          new_rows;
        let decisions rows name =
          List.find_map
            (fun row ->
              match Table.member "name" row with
              | Some (Table.Str n) when n = name -> int_of row "cdcl_decisions"
              | _ -> None)
            rows
        in
        List.iter
          (fun row ->
            match Table.member "name" row with
            | Some (Table.Str name) -> (
                match (decisions old_rows name, decisions new_rows name) with
                | Some old_d, Some new_d ->
                    Printf.printf "cdcl %-18s %d -> %d decisions (%.2fx)\n"
                      name old_d new_d
                      (if old_d > 0 then
                         float_of_int new_d /. float_of_int old_d
                       else 0.0);
                    if
                      old_d > 0
                      && float_of_int new_d > tolerance *. float_of_int old_d
                    then
                      fail
                        (Printf.sprintf
                           "cdcl %s decision count regressed beyond %.0fx \
                            tolerance"
                           name tolerance)
                | _ -> ())
            | _ -> ())
          old_rows
    | _ -> ()
  in
  let conform_guard old_doc new_doc =
    match (Table.member "conform" old_doc, Table.member "conform" new_doc) with
    | Some (Table.Arr old_rows), Some (Table.Arr new_rows) ->
        List.iter
          (fun row ->
            match Table.member "identical" row with
            | Some (Table.Str "true") -> ()
            | _ -> fail "new baseline has a failing conform row")
          new_rows;
        if List.length new_rows < List.length old_rows then
          fail "new baseline dropped conformance cases";
        Printf.printf "conform %d -> %d cases, all identical across tiers\n"
          (List.length old_rows) (List.length new_rows)
    | _ -> ()
  in
  let micro_map doc =
    match Table.member "micro" doc with
    | Some (Table.Arr rows) ->
        List.filter_map
          (fun row ->
            match (Table.member "name" row, Table.member "ns_per_run" row) with
            | Some (Table.Str n), Some (Table.Num ns) -> Some (n, ns)
            | Some (Table.Str n), Some (Table.Int ns) ->
                Some (n, float_of_int ns)
            | _ -> None)
          rows
    | _ -> fail "missing micro section"
  in
  let old_doc = load old_path and new_doc = load new_path in
  let old_rows = micro_map old_doc in
  let new_rows = micro_map new_doc in
  let guarded =
    List.filter
      (fun (n, _) ->
        String.length n >= 3
        && (String.sub n 0 3 = "E1." || String.sub n 0 3 = "E2."))
      old_rows
  in
  if guarded = [] then fail "no E1/E2 rows to compare";
  let regressions =
    List.filter_map
      (fun (name, old_ns) ->
        match List.assoc_opt name new_rows with
        | Some new_ns when old_ns > 0.0 && new_ns > tolerance *. old_ns ->
            Some (name, old_ns, new_ns)
        | _ -> None)
      guarded
  in
  List.iter
    (fun (name, old_ns) ->
      match List.assoc_opt name new_rows with
      | Some new_ns ->
          Printf.printf "%-28s %12.0f -> %12.0f ns/run (%.2fx)\n" name old_ns
            new_ns
            (if old_ns > 0.0 then new_ns /. old_ns else 0.0)
      | None -> Printf.printf "%-28s missing from %s\n" name new_path)
    guarded;
  parallel_guard old_doc new_doc;
  session_guard old_doc new_doc;
  routing_guard old_doc new_doc;
  scale_guard old_doc new_doc;
  serve_guard old_doc new_doc;
  cdcl_guard old_doc new_doc;
  conform_guard old_doc new_doc;
  match regressions with
  | [] ->
      Printf.printf "compare ok (%d guarded rows, tolerance %.0fx)\n"
        (List.length guarded) tolerance
  | _ ->
      fail
        (Printf.sprintf "%d regression(s) beyond %.0fx tolerance"
           (List.length regressions) tolerance)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc_names micro json check cmp quota scale clients = function
    | [] -> (List.rev acc_names, micro, json, check, cmp, quota, scale, clients)
    | "--micro" :: rest ->
        parse acc_names true json check cmp quota scale clients rest
    | "--json" :: file :: rest ->
        parse acc_names micro (Some file) check cmp quota scale clients rest
    | "--check-json" :: file :: rest ->
        parse acc_names micro json (Some file) cmp quota scale clients rest
    | "--compare-json" :: old_file :: new_file :: rest ->
        parse acc_names micro json check (Some (old_file, new_file)) quota
          scale clients rest
    | "--quota" :: q :: rest -> (
        match float_of_string_opt q with
        | Some q when q > 0.0 ->
            parse acc_names micro json check cmp q scale clients rest
        | _ ->
            Printf.eprintf "invalid --quota %S\n" q;
            exit 2)
    | "--scale" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 10 ->
            parse acc_names micro json check cmp quota n clients rest
        | _ ->
            Printf.eprintf "invalid --scale %S\n" n;
            exit 2)
    | "--clients" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 2 ->
            parse acc_names micro json check cmp quota scale n rest
        | _ ->
            Printf.eprintf "invalid --clients %S (need >= 2)\n" n;
            exit 2)
    | ("--json" | "--check-json" | "--quota" | "--scale" | "--clients") :: []
    | "--compare-json" :: ([] | [ _ ]) ->
        Printf.eprintf "missing argument\n";
        exit 2
    | name :: rest ->
        parse (name :: acc_names) micro json check cmp quota scale clients rest
  in
  let selected, micro, json, check, cmp, quota, scale, clients =
    parse [] false None None None 0.25 20_000 8 args
  in
  match (check, cmp) with
  | Some file, _ -> check_json file
  | None, Some (old_file, new_file) ->
      compare_json ~tolerance:10.0 old_file new_file
  | None, None ->
      let named =
        [ ("E1", List.nth Experiments.all 0); ("E2", List.nth Experiments.all 1);
          ("E3", List.nth Experiments.all 2); ("E4", List.nth Experiments.all 3);
          ("E5", List.nth Experiments.all 4); ("E6", List.nth Experiments.all 5);
          ("E7", List.nth Experiments.all 6); ("E8", List.nth Experiments.all 7);
          ("E9", List.nth Experiments.all 8); ("E10", List.nth Experiments.all 9);
          ("E11", List.nth Experiments.all 10); ("E12", List.nth Experiments.all 11);
          ("E13", List.nth Experiments.all 12); ("E14", List.nth Experiments.all 13);
          ("E15", List.nth Experiments.all 14); ("E18", List.nth Experiments.all 15);
          ("E21", List.nth Experiments.all 16);
          ("E22", List.nth Experiments.all 17) ]
      in
      print_endline
        "cqanull benchmark harness — reproduction tables for 'Semantically \
         Correct Query Answers in the Presence of Null Values' (EDBT 2006)";
      (match (selected, json) with
      | [], Some _ -> ()  (* JSON mode: tables only when named explicitly *)
      | [], None -> List.iter (fun (_, f) -> f ()) named
      | names, _ ->
          List.iter
            (fun n ->
              match List.assoc_opt n named with
              | Some f -> f ()
              | None ->
                  Printf.eprintf "unknown table %s (E1..E15, E18, E21, E22)\n" n)
            names);
      let micro_rows =
        if micro || json <> None then run_micro ~quota () else []
      in
      match json with
      | Some file ->
          write_json file micro_rows (solver_telemetry ())
            (decompose_telemetry ()) (budget_telemetry ())
            (parallel_telemetry ()) (session_telemetry ())
            (routing_telemetry ())
            (scale_telemetry ~scale ())
            (serve_telemetry ~clients ())
            (cdcl_telemetry ())
            (conform_telemetry ())
      | None -> ()
