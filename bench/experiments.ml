(* The experiment suite E1-E10 (see DESIGN.md section 4 and
   EXPERIMENTS.md).  The paper is a theory paper: each table reproduces
   either a worked example exactly or the measurable shape of a formal
   claim. *)

module Instance = Relational.Instance
module Value = Relational.Value
module Constr = Ic.Constr
module Enumerate = Repair.Enumerate
module Engine = Core.Engine
module Gen = Workload.Gen
module Paperdb = Workload.Paperdb

let v = Ic.Term.var
let atom p ts = Ic.Patom.make p ts

let engine_repairs d ics =
  match Engine.run d ics with
  | Ok report -> report
  | Error msg -> failwith ("engine: " ^ msg)

(* ------------------------------------------------------------------ *)
(* E1: the paper's examples — repair counts and engine agreement *)

let same_set a b =
  List.equal Instance.equal (List.sort Instance.compare a) (List.sort Instance.compare b)

let e1 () =
  let rows =
    List.map
      (fun (s : Paperdb.scenario) ->
        let enum = Enumerate.repairs s.Paperdb.d s.Paperdb.ics in
        let report = engine_repairs s.Paperdb.d s.Paperdb.ics in
        (* for conflicting NNC sets (example 20) the repair program computes
           Rep_d, as the paper notes at the end of Section 4 *)
        let reference =
          if Repair.Repd.conflicting_nncs s.Paperdb.ics = [] then enum
          else Repair.Repd.repairs_d s.Paperdb.d s.Paperdb.ics
        in
        let agree = same_set reference report.Engine.repairs in
        [
          s.Paperdb.label;
          string_of_int (Instance.cardinal s.Paperdb.d);
          string_of_int (List.length s.Paperdb.ics);
          string_of_int (List.length enum);
          string_of_int (List.length report.Engine.repairs);
          string_of_int report.Engine.stable_model_count;
          (match s.Paperdb.expected_repairs with
          | Some n -> string_of_int n
          | None -> "-");
          (if
             agree
             && match s.Paperdb.expected_repairs with
                | Some n -> n = List.length enum
                | None -> true
           then "yes"
           else "NO");
        ])
      Paperdb.all
  in
  Table.print ~title:"E1: paper examples (repair sets, Theorem 4 agreement)"
    ~header:
      [ "scenario"; "|D|"; "|IC|"; "Rep"; "program"; "models"; "paper"; "match" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: Theorem 4 on random FK workloads *)

let e2 () =
  let rows =
    List.map
      (fun (np, nc, seed) ->
        let w = Gen.fk_workload ~seed ~n_parent:np ~n_child:nc ~orphan_rate:0.4 ~null_rate:0.2 () in
        let enum, t_enum = Table.time (fun () -> Enumerate.repairs w.Gen.d w.Gen.ics) in
        let report, t_prog = Table.time (fun () -> engine_repairs w.Gen.d w.Gen.ics) in
        let agree = same_set enum report.Engine.repairs in
        [
          w.Gen.label;
          string_of_int (Instance.cardinal w.Gen.d);
          string_of_int (List.length enum);
          string_of_int (List.length report.Engine.repairs);
          Table.ms t_enum;
          Table.ms t_prog;
          (if agree then "yes" else "NO");
        ])
      [ (2, 2, 1); (3, 3, 2); (3, 4, 3); (4, 5, 4); (5, 6, 5); (6, 7, 6) ]
  in
  Table.print ~title:"E2: Theorem 4 on random key+FK+NNC workloads"
    ~header:[ "workload"; "|D|"; "Rep"; "program"; "enum ms"; "prog ms"; "agree" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: decidability contrast — null repairs vs arbitrary-constant repairs
   as the active domain grows (Theorem 2 vs the undecidability of [11]) *)

let e3 () =
  let ric = Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x"; v "y" ] ] () in
  let nnc = Constr.not_null ~pred:"Q" ~arity:2 ~pos:2 () in
  let base k =
    (* P(a) dangling, plus k spectator constants enlarging adom(D) *)
    Instance.of_list
      (("P", [ Value.str "a" ])
      :: List.init k (fun i -> ("U", [ Value.str (Printf.sprintf "c%d" i) ])))
  in
  let rows =
    List.map
      (fun k ->
        let d = base k in
        let null_reps = Enumerate.repairs d [ ric ] in
        (* the conflicting NNC forbids the null filler: Example 20 dynamics,
           i.e. the classic arbitrary-constant repairs of [2] restricted to
           the finite universe of Proposition 1 *)
        let classic_reps = Enumerate.repairs d [ ric; nnc ] in
        let repd = Repair.Repd.repairs_d d [ ric; nnc ] in
        [
          string_of_int (1 + k);
          string_of_int (List.length null_reps);
          string_of_int (List.length classic_reps);
          string_of_int (List.length repd);
        ])
      [ 0; 1; 2; 4; 8; 16; 32 ]
  in
  Table.print
    ~title:
      "E3: repairs vs active-domain size — null semantics stays constant, \
       arbitrary-constant repairs grow with the domain"
    ~header:[ "|adom|"; "null repairs"; "constant repairs"; "Rep_d" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: HCF vs non-HCF solving (Theorem 5, Corollary 1) *)

let e4 () =
  let run ?(shift = true) ?solver d ics =
    match Engine.run ~shift ?solver d ics with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let row label d ics =
    let (shifted, t_shift) = Table.time (fun () -> run ~shift:true d ics) in
    let (disjunctive, t_disj) = Table.time (fun () -> run ~shift:false d ics) in
    (* before/after of the occurrence-index rewrite: same search on the
       disjunctive program through the sweep-based reference engine *)
    let naive = run ~shift:false ~solver:`Naive d ics in
    [
      label;
      string_of_int shifted.Engine.ground_rules;
      (if shifted.Engine.hcf then "yes" else "no");
      (if shifted.Engine.static_hcf then "yes" else "no");
      string_of_int (List.length shifted.Engine.repairs);
      string_of_int shifted.Engine.solver.Asp.Solver.decisions;
      string_of_int disjunctive.Engine.solver.Asp.Solver.decisions;
      string_of_int shifted.Engine.solver.Asp.Solver.minimality_checks;
      string_of_int disjunctive.Engine.solver.Asp.Solver.minimality_checks;
      string_of_int disjunctive.Engine.solver.Asp.Solver.rules_touched;
      string_of_int naive.Engine.solver.Asp.Solver.rules_touched;
      Table.ms t_shift;
      Table.ms t_disj;
    ]
  in
  let rows =
    List.map
      (fun n ->
        let w = Gen.denial_workload ~seed:7 ~n ~viol_rate:0.3 () in
        row w.Gen.label w.Gen.d w.Gen.ics)
      [ 4; 8; 12; 16 ]
    @ List.map
        (fun n ->
          let w = Gen.bilateral_loop ~seed:7 ~n () in
          row w.Gen.label w.Gen.d w.Gen.ics)
        [ 2; 3; 4; 5 ]
  in
  Table.print
    ~title:
      "E4: HCF (denials, Corollary 1) vs non-HCF (bilateral loop) — shifted \
       normal solving avoids disjunctive minimality checks; touched(ctr/nv) \
       is rule visits of the counter engine vs the sweep-based reference"
    ~header:
      [
        "workload"; "grules"; "hcf"; "thm5"; "reps"; "dec(sh)"; "dec(disj)";
        "minchk(sh)"; "minchk(disj)"; "touched(ctr)"; "touched(nv)";
        "ms(sh)"; "ms(disj)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: the 2^n Q'/Q'' expansion of Definition 9 rule 2 *)

let e5 () =
  let rows =
    List.map
      (fun width ->
        let w = Gen.disjunctive_uic ~width in
        let (pg, t_gen) =
          Table.time (fun () ->
              match Core.Proggen.repair_program w.Gen.d w.Gen.ics with
              | Ok pg -> pg
              | Error m -> failwith m)
        in
        let facts, ic_rules, bookkeeping = Core.Proggen.rule_counts pg in
        let (ground, t_ground) =
          Table.time (fun () -> Asp.Grounder.ground pg.Core.Proggen.program)
        in
        [
          string_of_int width;
          string_of_int facts;
          string_of_int ic_rules;
          string_of_int bookkeeping;
          string_of_int (Asp.Ground.atom_count ground);
          string_of_int (Asp.Ground.rule_count ground);
          Table.ms t_gen;
          Table.ms t_ground;
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Table.print
    ~title:
      "E5: repair-program size vs consequent width (2^n partition rules, \
       Definition 9)"
    ~header:
      [ "width"; "facts"; "IC rules"; "bookkeeping"; "g.atoms"; "g.rules";
        "gen ms"; "ground ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: violation counts across the Section 3 semantics as nulls increase *)

let e6 () =
  let n_child = 20 in
  let rows =
    List.map
      (fun null_refs ->
        let w =
          Gen.fk_workload_det ~n_parent:10 ~n_child ~orphans:4 ~null_refs ()
        in
        let counts = Semantics.Report.violation_counts w.Gen.d w.Gen.ics in
        let get s = string_of_int (List.assoc s counts) in
        [
          Printf.sprintf "%d/%d" null_refs n_child;
          get Semantics.Report.ClassicFo;
          get Semantics.Report.NullAware;
          get Semantics.Report.Liberal10;
          get Semantics.Report.SqlSimple;
          get Semantics.Report.SqlPartial;
          get Semantics.Report.SqlFull;
        ])
      [ 0; 2; 4; 6; 8; 10 ]
  in
  Table.print
    ~title:
      "E6: violations per satisfaction semantics as null references increase \
       (4 orphans fixed; |=_N tracks sql-simple and ignores null refs; \
       classic/partial/full count them)"
    ~header:
      [ "null refs"; "classic"; "|=_N"; "liberal[10]"; "sql-simple";
        "sql-partial"; "sql-full" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: consistent vs standard answers as inconsistency grows (Def. 8) *)

let e7 () =
  let child_query =
    Query.Qsyntax.make ~head:[ "c" ]
      (Query.Qsyntax.Exists
         ([ "r" ], Query.Qsyntax.Atom (atom "S" [ v "c"; v "r" ])))
  in
  let n_child = 6 in
  let rows =
    List.map
      (fun orphans ->
        let w = Gen.fk_workload_det ~n_parent:4 ~n_child ~orphans ~null_refs:1 () in
        match
          Query.Cqa.consistent_answers ~method_:Query.Cqa.LogicProgram w.Gen.d
            w.Gen.ics child_query
        with
        | Error msg -> [ w.Gen.label; "error: " ^ msg ]
        | Ok o ->
            let c = Relational.Tuple.Set.cardinal o.Query.Cqa.consistent in
            let st = Relational.Tuple.Set.cardinal o.Query.Cqa.standard in
            let p = Relational.Tuple.Set.cardinal o.Query.Cqa.possible in
            [
              Printf.sprintf "%d/%d" orphans n_child;
              string_of_int o.Query.Cqa.repair_count;
              string_of_int st;
              string_of_int c;
              string_of_int p;
              (if st = 0 then "-" else Printf.sprintf "%.2f" (float_of_int c /. float_of_int st));
            ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Table.print
    ~title:
      "E7: CQA end-to-end — consistent answers shrink as orphaned children \
       accumulate (children query over the FK workload)"
    ~header:[ "orphans"; "repairs"; "standard"; "consistent"; "possible"; "retained" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: engine crossover — model-theoretic enumeration vs repair program *)

let e8 () =
  let rows =
    List.map
      (fun (np, nc) ->
        let w = Gen.fk_workload_det ~n_parent:np ~n_child:nc ~orphans:4 ~null_refs:1 () in
        let enum, t_enum =
          Table.time (fun () ->
              try `Ok (List.length (Enumerate.repairs ~max_states:400_000 w.Gen.d w.Gen.ics))
              with Enumerate.Budget_exceeded _ -> `Budget)
        in
        let prog, t_prog =
          Table.time (fun () -> List.length (engine_repairs w.Gen.d w.Gen.ics).Engine.repairs)
        in
        [
          string_of_int (np + nc);
          (match enum with `Ok n -> string_of_int n | `Budget -> "budget");
          string_of_int prog;
          Table.ms t_enum;
          Table.ms t_prog;
          Printf.sprintf "%.1fx"
            (if t_prog > 0.0 then t_enum /. t_prog else 0.0);
        ])
      [ (4, 6); (8, 12); (16, 24); (24, 36); (32, 48); (48, 72) ]
  in
  Table.print
    ~title:
      "E8: scaling with 4 fixed violations — conflict-driven enumeration vs \
       stable-model engine (the program pays grounding overhead that grows \
       with |D|; both repair sets stay equal)"
    ~header:[ "tuples"; "Rep(enum)"; "Rep(prog)"; "enum ms"; "prog ms"; "enum/prog" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: Rep vs Rep_d under a conflicting NNC (Example 20) *)

let e9 () =
  let s = Paperdb.example20 in
  let rows =
    List.map
      (fun extra ->
        let d =
          List.fold_left
            (fun d i ->
              Instance.add
                (Relational.Atom.make "U" [ Value.str (Printf.sprintf "u%d" i) ])
                d)
            s.Paperdb.d
            (List.init extra (fun i -> i))
        in
        let rep = Enumerate.repairs d s.Paperdb.ics in
        let repd = Repair.Repd.repairs_d d s.Paperdb.ics in
        [
          string_of_int (3 + extra);
          string_of_int (List.length rep);
          string_of_int (List.length repd);
        ])
      [ 0; 1; 2; 4; 8; 16 ]
  in
  Table.print
    ~title:
      "E9: Example 20 — |Rep| grows with the universe under a conflicting \
       NNC; Rep_d stays at the single deletion repair"
    ~header:[ "|adom|"; "|Rep|"; "|Rep_d|" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10: dependency-graph analysis (Definitions 1 and 11) *)

let e10 () =
  let suites =
    [
      ("example 2/3 acyclic", Paperdb.example18.Paperdb.ics |> List.tl);
      ("example 18 cyclic", Paperdb.example18.Paperdb.ics);
      ("example 19 (key+fk+nnc)", Paperdb.example19.Paperdb.ics);
      ( "example 24",
        [
          Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "R" [ v "x"; v "y" ] ] ();
          Constr.generic ~ante:[ atom "S" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
        ] );
      ( "symmetric (non-HCF)",
        [ Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "P" [ v "y"; v "x" ] ] () ] );
      ("denials only", (Gen.denial_workload ~n:4 ~viol_rate:0.5 ()).Gen.ics);
      ("uic chain + ric", (Gen.chain_workload ~n:3 ~broken:1 ()).Gen.ics);
    ]
  in
  let rows =
    List.map
      (fun (label, ics) ->
        let comps = Ic.Depgraph.uic_components ics in
        [
          label;
          string_of_int (List.length ics);
          string_of_int (List.length comps);
          (if Ic.Depgraph.is_ric_acyclic ics then "yes" else "no");
          string_of_int (List.length (Core.Hcfcheck.bilateral_predicates ics));
          (if Core.Hcfcheck.static_hcf ics then "yes" else "no");
        ])
      suites
  in
  Table.print
    ~title:"E10: constraint-set analysis (contracted graph, Theorem 5 condition)"
    ~header:[ "IC suite"; "|IC|"; "components"; "RIC-acyclic"; "bilateral"; "thm5 HCF" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: ablation — repairing independent IC components separately
   (the "local repairs" construction of the paper's future-work item (c)) *)

let e11 () =
  (* k independent copies of a tiny FK scenario, one orphan each: the
     repair set is the 2^k product either way; decomposition replaces one
     big ground program by k small ones *)
  let scenario k =
    let atoms =
      List.concat
        (List.init k (fun i ->
             [
               (Printf.sprintf "R%d" i, [ Value.str "p"; Value.str "d" ]);
               (Printf.sprintf "S%d" i, [ Value.str "c"; Value.str "orphan" ]);
             ]))
    in
    let ics =
      List.concat
        (List.init k (fun i ->
             [
               Ic.Builder.foreign_key
                 ~name:(Printf.sprintf "fk%d" i)
                 ~child:(Printf.sprintf "S%d" i) ~child_arity:2 ~child_cols:[ 2 ]
                 ~parent:(Printf.sprintf "R%d" i) ~parent_arity:2 ~parent_cols:[ 1 ] ();
             ]))
    in
    (Instance.of_list atoms, ics)
  in
  let rows =
    List.map
      (fun k ->
        let d, ics = scenario k in
        let mono, t_mono = Table.time (fun () -> engine_repairs d ics) in
        let dec, t_dec =
          Table.time (fun () ->
              match Core.Decompose.repairs d ics with
              | Ok r -> r
              | Error m -> failwith m)
        in
        let reps_dec, stats = dec in
        [
          string_of_int k;
          string_of_int (List.length mono.Engine.repairs);
          string_of_int (List.length reps_dec);
          string_of_int stats.Core.Decompose.component_count;
          Table.ms t_mono;
          Table.ms t_dec;
          Printf.sprintf "%.1fx" (if t_dec > 0.0 then t_mono /. t_dec else 0.0);
        ])
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  Table.print
    ~title:
      "E11: ablation — monolithic repair program vs independent-component        decomposition (k disjoint FK violations, 2^k repairs)"
    ~header:[ "k"; "Rep(mono)"; "Rep(dec)"; "components"; "mono ms"; "dec ms"; "mono/dec" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12: ablation — support propagation in the stable-model solver (the
   design choice recorded in DESIGN.md 5.1) *)

let e12 () =
  let rows =
    List.map
      (fun (np, nc) ->
        let w = Gen.fk_workload_det ~n_parent:np ~n_child:nc ~orphans:3 ~null_refs:1 () in
        match Core.Proggen.repair_program w.Gen.d w.Gen.ics with
        | Error m -> [ w.Gen.label; "error: " ^ m ]
        | Ok pg ->
            let ground = Asp.Grounder.ground pg.Core.Proggen.program in
            let solvable =
              if Asp.Hcf.is_hcf ground then Asp.Shift.ground ground else ground
            in
            let run support =
              let stats = Asp.Solver.new_stats () in
              let models, dt =
                Table.time (fun () ->
                    Asp.Solver.stable_models ~support_propagation:support ~stats solvable)
              in
              (List.length models, stats, dt)
            in
            let n_on, stats_on, t_on = run true in
            let n_off, stats_off, t_off = run false in
            [
              string_of_int (np + nc);
              string_of_int n_on;
              (if n_on = n_off then "yes" else "NO");
              string_of_int stats_on.Asp.Solver.candidates;
              string_of_int stats_off.Asp.Solver.candidates;
              Table.ms t_on;
              Table.ms t_off;
              Printf.sprintf "%.1fx" (if t_on > 0.0 then t_off /. t_on else 0.0);
            ])
      [ (3, 4); (4, 6); (5, 8); (6, 10) ]
  in
  Table.print
    ~title:
      "E12: ablation — stable-model solver with and without support        propagation (same models; candidate count collapses to the model        count with it)"
    ~header:
      [ "tuples"; "models"; "same"; "cand(on)"; "cand(off)"; "ms(on)"; "ms(off)"; "off/on" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13: ablation — relevance pruning of the repair program ([12]-style):
   a schema-wide constraint suite where most relations are empty *)

let e13 () =
  let scenario k_live k_dead =
    (* k_live FK pairs with data, k_dead FK pairs over empty relations *)
    let atoms =
      List.concat
        (List.init k_live (fun i ->
             [
               (Printf.sprintf "R%d" i, [ Value.str "p"; Value.str "d" ]);
               (Printf.sprintf "S%d" i, [ Value.str "c"; Value.str "orphan" ]);
             ]))
    in
    let ics =
      List.init (k_live + k_dead) (fun i ->
          Ic.Builder.foreign_key
            ~name:(Printf.sprintf "fk%d" i)
            ~child:(Printf.sprintf "S%d" i) ~child_arity:2 ~child_cols:[ 2 ]
            ~parent:(Printf.sprintf "R%d" i) ~parent_arity:2 ~parent_cols:[ 1 ] ())
    in
    (Instance.of_list atoms, ics)
  in
  let rows =
    List.map
      (fun k_dead ->
        let d, ics = scenario 2 k_dead in
        let build optimize =
          match Core.Proggen.repair_program ~optimize d ics with
          | Ok pg -> pg
          | Error m -> failwith m
        in
        let plain, t_plain =
          Table.time (fun () -> Asp.Grounder.ground (build false).Core.Proggen.program)
        in
        let optimized, t_opt =
          Table.time (fun () -> Asp.Grounder.ground (build true).Core.Proggen.program)
        in
        let models g = List.length (Asp.Solver.stable_models (Asp.Shift.ground g)) in
        [
          string_of_int k_dead;
          string_of_int (List.length (build false).Core.Proggen.program);
          string_of_int (List.length (build true).Core.Proggen.program);
          string_of_int (Asp.Ground.rule_count plain);
          string_of_int (Asp.Ground.rule_count optimized);
          (if models plain = models optimized then "yes" else "NO");
          Table.ms t_plain;
          Table.ms t_opt;
        ])
      [ 0; 4; 16; 64; 256 ]
  in
  Table.print
    ~title:
      "E13: ablation — [12]-style relevance pruning of Pi(D, IC) on a        schema with mostly-empty relations (2 live FK pairs + k dead ones)"
    ~header:
      [ "dead ICs"; "rules"; "rules(opt)"; "g.rules"; "g.rules(opt)"; "same models";
        "ms"; "ms(opt)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14: |=_N satisfaction checking is polynomial (remark after Def. 4:
   "the transformed constraint is domain independent, and then its
   satisfaction can be checked by restriction to the active domain") *)

let e14 () =
  let rows =
    List.map
      (fun n ->
        let fk =
          Gen.fk_workload_det ~n_parent:(n / 3) ~n_child:(2 * n / 3) ~orphans:(n / 20)
            ~null_refs:(n / 20) ()
        in
        let chk = Gen.check_workload ~seed:13 ~n ~viol_rate:0.05 ~null_rate:0.1 () in
        let vs_fk, t_fk =
          Table.time (fun () -> Semantics.Nullsat.check fk.Gen.d fk.Gen.ics)
        in
        let vs_chk, t_chk =
          Table.time (fun () -> Semantics.Nullsat.check chk.Gen.d chk.Gen.ics)
        in
        [
          string_of_int n;
          string_of_int (List.length vs_fk);
          Table.ms t_fk;
          string_of_int (List.length vs_chk);
          Table.ms t_chk;
        ])
      [ 500; 1000; 2000; 4000; 8000; 16000; 32000 ]
  in
  Table.print
    ~title:
      "E14: |=_N consistency checking scales polynomially (key+FK+NNC suite        and a check constraint; violations grow linearly, time stays        low-polynomial)"
    ~header:[ "tuples"; "fk viol"; "fk ms"; "check viol"; "check ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: tuple-level conflict-component decomposition (Repair.Decompose).
   Unlike E11's predicate-disjoint clusters, every cluster here shares the
   same predicates and constraints, so the IC-level decomposition of
   Core.Decompose cannot split them — only the conflict graph over ground
   tuples can.  The monolithic search explores the product of the
   per-cluster state spaces; the decomposed one their sum. *)

let e15 () =
  let rows =
    List.map
      (fun k ->
        let w = Gen.clusters_workload ~padding:2 ~k () in
        let mono_states = ref 0 in
        let mono, t_mono =
          Table.time (fun () ->
              Repair.Order.minimal_among ~d:w.Gen.d
                (Enumerate.search ~explored:mono_states w.Gen.d w.Gen.ics))
        in
        let dec, t_dec =
          Table.time (fun () -> Enumerate.decomposed w.Gen.d w.Gen.ics)
        in
        let dec_states = List.fold_left ( + ) 0 dec.Enumerate.explored in
        let plan = dec.Enumerate.plan in
        let count =
          Repair.Decompose.count_product
            (List.map List.length dec.Enumerate.minimal)
        in
        let agree =
          same_set mono (Enumerate.repairs ~decompose:true w.Gen.d w.Gen.ics)
          && List.length mono = count
        in
        [
          string_of_int k;
          string_of_int (List.length mono);
          string_of_int count;
          string_of_int (List.length plan.Repair.Decompose.components);
          string_of_int !mono_states;
          string_of_int dec_states;
          Table.ms t_mono;
          Table.ms t_dec;
          Printf.sprintf "%.1fx" (if t_dec > 0.0 then t_mono /. t_dec else 0.0);
          (if agree then "yes" else "NO");
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Table.print
    ~title:
      "E15: conflict-component decomposition over shared predicates        (k independent clusters, 2^k repairs; states explored collapse        from product to sum)"
    ~header:
      [ "k"; "Rep(mono)"; "Rep(dec)"; "components"; "mono states";
        "dec states"; "mono ms"; "dec ms"; "mono/dec"; "agree" ]
    rows

(* ------------------------------------------------------------------ *)
(* E18: the routing layer — the repair-less direct tier vs the decomposed
   materializing engines on FD workloads (E16/E17 are the budget/parallel
   and session telemetry sections of the JSON baseline; they have no
   table).  Width is the FD cluster width: the direct tier reads the w
   minimal repairs of a w-wide cluster off the conflict graph, the
   enumerate engine explores O(2^w) subsets, the program engine grounds
   and solves O(w^2) denial rules. *)

let e18 () =
  let key_query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Exists
         ([ "y" ], Query.Qsyntax.Atom (atom "R" [ v "x"; v "y" ])))
  in
  let rows =
    List.map
      (fun (n, width) ->
        let w = Gen.fd_workload ~n ~dup_rate:1.0 ~width () in
        let stats = Budget.new_stats () in
        let budget = Budget.start ~stats Budget.unlimited in
        let auto, t_auto =
          Table.time (fun () ->
              Query.Cqa.consistent_answers ~method_:Query.Cqa.Auto ~budget
                ~decompose:true w.Gen.d w.Gen.ics key_query)
        in
        Budget.finish budget;
        let enum, t_enum =
          Table.time (fun () ->
              Query.Cqa.consistent_answers ~method_:Query.Cqa.ModelTheoretic
                ~decompose:true w.Gen.d w.Gen.ics key_query)
        in
        let _, t_prog =
          Table.time (fun () ->
              Query.Cqa.consistent_answers ~method_:Query.Cqa.LogicProgram
                ~decompose:true w.Gen.d w.Gen.ics key_query)
        in
        let agree =
          match (auto, enum) with
          | Ok a, Ok b ->
              Relational.Tuple.Set.equal a.Query.Cqa.consistent
                b.Query.Cqa.consistent
              && Relational.Tuple.Set.equal a.Query.Cqa.possible
                   b.Query.Cqa.possible
              && a.Query.Cqa.repair_count = b.Query.Cqa.repair_count
          | _ -> false
        in
        let repair_count =
          match auto with Ok o -> o.Query.Cqa.repair_count | Error _ -> 0
        in
        [
          w.Gen.label;
          string_of_int (Instance.cardinal w.Gen.d);
          Printf.sprintf "%d/%d/%d/%d"
            (Budget.routed stats Budget.Direct)
            (Budget.routed stats Budget.Shifted)
            (Budget.routed stats Budget.Disjunctive)
            (Budget.routed stats Budget.Enumerated);
          string_of_int repair_count;
          Table.ms t_auto;
          Table.ms t_enum;
          Table.ms t_prog;
          Printf.sprintf "%.1fx" (if t_auto > 0.0 then t_enum /. t_auto else 0.0);
          Printf.sprintf "%.1fx" (if t_auto > 0.0 then t_prog /. t_auto else 0.0);
          (if agree then "yes" else "NO");
        ])
      [ (4, 4); (6, 6); (6, 8); (4, 10); (4, 12) ]
  in
  Table.print
    ~title:
      "E18: per-component routing — the repair-less direct tier vs the \
       decomposed materializing engines on FD workloads (routed d/s/j/e = \
       components per tier: direct/shifted/disjunctive/enumerate)"
    ~header:
      [ "workload"; "|D|"; "routed"; "repairs"; "auto ms"; "enum ms";
        "prog ms"; "enum/auto"; "prog/auto"; "agree" ]
    rows

(* ------------------------------------------------------------------ *)
(* E21: decision counts of the learning engine vs the chronological
   counter engine on a hard non-HCF family.  The "combination lock"
   program interleaves an enumeration block (k free choice pairs, first
   in rule order, so the chronological engine branches on them first)
   with a head-cycle pair (x v y. x :- y. y :- x. — the program fails
   Theorem 5's HCF condition outright) and a lock block: m choice pairs
   under 2^m - 1 denials that exclude every combination except one.
   Unit propagation cannot open the lock until m - 1 of its pairs are
   decided, so the chronological engine re-searches the lock inside
   every one of the 2^k enumeration branches; the CDCL engine refutes
   it once — its learned nogoods survive backtracking — and pays ~2^k
   + 2^m decisions in total.  Both engines must return the same 2^k
   stable models. *)

let lock_program ~k ~m =
  let g = Asp.Ground.create () in
  let gatom name = Asp.Ground.intern g { Asp.Ground.gpred = name; gargs = [] } in
  let rule h p n =
    Asp.Ground.add_rule g
      {
        Asp.Ground.ghead = Array.of_list h;
        gpos = Array.of_list p;
        gneg = Array.of_list n;
      }
  in
  let a = Array.init k (fun i -> gatom (Printf.sprintf "a%d" i)) in
  let b = Array.init k (fun i -> gatom (Printf.sprintf "b%d" i)) in
  for i = 0 to k - 1 do
    rule [ a.(i) ] [] [ b.(i) ];
    rule [ b.(i) ] [] [ a.(i) ]
  done;
  let x = gatom "x" and y = gatom "y" in
  rule [ x; y ] [] [];
  rule [ x ] [ y ] [];
  rule [ y ] [ x ] [];
  let p = Array.init m (fun i -> gatom (Printf.sprintf "p%d" i)) in
  let q = Array.init m (fun i -> gatom (Printf.sprintf "q%d" i)) in
  for i = 0 to m - 1 do
    rule [ p.(i) ] [] [ q.(i) ];
    rule [ q.(i) ] [] [ p.(i) ]
  done;
  (* the secret combination alternates, every other one is denied *)
  let secret i = i land 1 = 1 in
  for c = 0 to (1 lsl m) - 1 do
    let is_secret = ref true in
    for i = 0 to m - 1 do
      if (c lsr i) land 1 = 1 <> secret i then is_secret := false
    done;
    if not !is_secret then
      rule []
        (List.init m (fun i -> if (c lsr i) land 1 = 1 then p.(i) else q.(i)))
        []
  done;
  g

(* the sweep the cdcl telemetry records: rows with k >= 3 are the hard
   ones the check-json 0.5x decision guard engages on *)
let lock_sweep = [ (1, 2, false); (2, 3, false); (3, 4, true); (4, 4, true);
                   (6, 5, true); (8, 6, true) ]

let lock_measurements () =
  List.map
    (fun (k, m, hard) ->
      let g = lock_program ~k ~m in
      let run search =
        let stats = Asp.Solver.new_stats () in
        let models = Asp.Solver.stable_models ~search ~stats g in
        (models, stats)
      in
      let models_c, sc = run `Cdcl in
      let models_d, sd = run `Dpll in
      ( Printf.sprintf "E21.lock.k%dm%d" k m,
        k, m, Asp.Ground.atom_count g,
        List.length models_c,
        models_c = models_d,
        hard, sc, sd ))
    lock_sweep

let e21 () =
  let rows =
    List.map
      (fun (name, _k, _m, atoms, models, identical, hard,
            (sc : Asp.Solver.stats), (sd : Asp.Solver.stats)) ->
        [
          name;
          string_of_int atoms;
          string_of_int models;
          string_of_int sc.Asp.Solver.decisions;
          string_of_int sd.Asp.Solver.decisions;
          Printf.sprintf "%.3f"
            (if sd.Asp.Solver.decisions > 0 then
               float_of_int sc.Asp.Solver.decisions
               /. float_of_int sd.Asp.Solver.decisions
             else 0.0);
          string_of_int sc.Asp.Solver.conflicts;
          string_of_int sc.Asp.Solver.learned;
          string_of_int sc.Asp.Solver.restarts;
          string_of_int sc.Asp.Solver.backjump_len;
          (if hard then "yes" else "no");
          (if identical then "yes" else "NO");
        ])
      (lock_measurements ())
  in
  Table.print
    ~title:
      "E21: CDCL vs chronological DPLL on the non-HCF combination-lock \
       family — learned nogoods amortize the lock refutation across the \
       2^k enumeration branches the counter engine re-searches"
    ~header:
      [ "workload"; "atoms"; "models"; "dec(cdcl)"; "dec(dpll)"; "ratio";
        "conflicts"; "learned"; "restarts"; "backjump"; "hard"; "agree" ]
    rows

(* E22: the conformance corpus replayed through every applicable engine
   tier.  One row per scenario family: pinned cases, tier answers
   collected, total wall-clock across tiers, and whether every case in
   the family passed its byte-identity cross-check — the differential
   that backs `cqanull conform`. *)
let e22 () =
  let _summary, results =
    Conform.Runner.run (Conform.Suite.all @ Conform.Corpus.all)
  in
  let families =
    List.fold_left
      (fun acc r ->
        let f = r.Conform.Runner.case.Conform.Case.family in
        if List.mem f acc then acc else acc @ [ f ])
      [] results
  in
  let rows =
    List.map
      (fun family ->
        let rs =
          List.filter
            (fun r -> r.Conform.Runner.case.Conform.Case.family = family)
            results
        in
        let answers =
          List.fold_left
            (fun n r -> n + List.length r.Conform.Runner.tiers)
            0 rs
        in
        let ms =
          List.fold_left
            (fun t r ->
              List.fold_left
                (fun t (tr : Conform.Runner.tier_result) ->
                  t +. tr.Conform.Runner.ms)
                t r.Conform.Runner.tiers)
            0.0 rs
        in
        let ok = List.for_all Conform.Runner.passed rs in
        [
          family;
          string_of_int (List.length rs);
          string_of_int answers;
          Printf.sprintf "%.2f" ms;
          (if ok then "yes" else "NO");
        ])
      families
  in
  Table.print
    ~title:
      "E22: conformance corpus replay — every pinned scenario answered \
       through every applicable engine tier, outcomes cross-checked byte \
       for byte"
    ~header:[ "family"; "cases"; "tier answers"; "total ms"; "identical" ]
    rows

let all =
  [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e18;
    e21; e22 ]
