(* cqanull — consistent query answering over databases with null values.

   Subcommands: check, repairs, cqa, session, serve, connect, export,
   graph, solve. *)

open Cmdliner

let load_or_die file =
  match Lang.Load.of_file file with
  | Ok l -> l
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      exit 2

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Surface file with facts, constraints and queries.")

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run file all_semantics =
    let l = load_or_die file in
    let d = Lang.Load.final_instance l and ics = l.Lang.Load.ics in
    if all_semantics then begin
      let rows = Semantics.Report.compare_semantics d ics in
      List.iter (fun row -> Fmt.pr "%a@." Semantics.Report.pp_row row) rows;
      if Semantics.Nullsat.consistent d ics then 0 else 1
    end
    else begin
      match Semantics.Nullsat.check d ics with
      | [] ->
          Fmt.pr "consistent (%d tuples, %d constraints)@." (Relational.Instance.cardinal d)
            (List.length ics);
          0
      | violations ->
          List.iter (fun v -> Fmt.pr "%a@." Semantics.Nullsat.pp_violation v) violations;
          Fmt.pr "%d violation(s)@." (List.length violations);
          1
    end
  in
  let all_flag =
    Arg.(value & flag & info [ "all-semantics" ] ~doc:"Compare all six satisfaction semantics.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check the database against its constraints under |=_N.")
    Term.(const (fun f a -> Stdlib.exit (run f a)) $ file_arg $ all_flag)

(* ------------------------------------------------------------------ *)
(* repairs *)

let engine_conv =
  Arg.enum [ ("program", `Program); ("enumerate", `Enumerate) ]

(* Shared budget plumbing for the repairs/cqa subcommands: one budget per
   invocation (the whole run counts against the deadline), stats printed on
   demand. *)
let start_budget ~timeout_ms ~want_stats ~jobs =
  if timeout_ms = None && not want_stats then None
  else
    let stats = Budget.new_stats () in
    (* per-worker counter slots, installed before any pool spawns; the
       engines' pool-init hooks claim slots 1..jobs *)
    if want_stats && jobs > 1 then Budget.set_workers stats jobs;
    Some (Budget.start ~stats (Budget.make ?timeout_ms ()))

let report_budget ~want_stats budget =
  match budget with
  | None -> ()
  | Some b ->
      Budget.finish b;
      if want_stats then begin
        let stats = Budget.stats b in
        Fmt.pr "stats: %a@." Budget.pp_stats stats;
        if Budget.routed_total stats > 0 then
          Fmt.pr "routed: %a@." Budget.pp_routed stats;
        if Budget.search_total stats > 0 then
          Fmt.pr "cdcl: %a@." Budget.pp_search stats;
        Fmt.pr "%a" Budget.pp_degradations stats;
        Fmt.pr "%a" Budget.pp_workers stats
      end

let timeout_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout" ] ~docv:"MS"
        ~doc:"Wall-clock deadline for the whole run, in milliseconds; \
              exceeding it reports an error (or a partial outcome when \
              decomposing) instead of running forever.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the run's budget counters (solver decisions, search \
              states, components solved, elapsed wall-clock).")

let decompose_flag =
  Arg.(
    value & flag
    & info [ "decompose" ]
        ~doc:"Solve independently per conflict component and recombine \
              (not available with --engine cautious).")

let jobs_flag =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Solve conflict components on N worker domains (requires \
              --decompose to have any effect).  1 (the default) is fully \
              sequential; 0 autodetects the machine's recommended domain \
              count.  The recombination is deterministic, so the output is \
              identical for every N.")

let method_conv =
  Arg.enum
    [
      ("auto", `Auto);
      ("program", `Program);
      ("enumerate", `Enumerate);
      ("cautious", `Cautious);
    ]

let search_flag =
  Arg.(
    value
    & opt (Arg.enum [ ("cdcl", `Cdcl); ("dpll", `Dpll) ]) `Cdcl
    & info [ "search" ] ~docv:"MODE"
        ~doc:"Stable-model search mode: 'cdcl' (the default) learns clauses \
              from conflicts with watched-literal propagation and restarts; \
              'dpll' is the chronological counter-propagation baseline.  \
              Only the program-based engines consult it.")

let print_repairs d repairs =
  List.iteri
    (fun i r ->
      Fmt.pr "repair %d: %a@." (i + 1) Relational.Instance.pp_inline r;
      Fmt.pr "  delta: %a@." Relational.Instance.pp_inline
        (Relational.Instance.symdiff d r))
    repairs;
  Fmt.pr "%d repair(s)@." (List.length repairs)

let repairs_cmd =
  let run file engine repd save decompose jobs timeout_ms want_stats search =
    let jobs = Parallel.Config.resolve jobs in
    let l = load_or_die file in
    let d = Lang.Load.final_instance l and ics = l.Lang.Load.ics in
    (match Ic.Builder.non_conflicting ics with
    | Ok () -> ()
    | Error (nnc, ic) ->
        Fmt.epr
          "warning: NOT NULL-constraint '%s' conflicts with the existential \
           attribute of '%s' (Example 20 situation); consider --repd@."
          (Ic.Constr.label nnc) (Ic.Constr.label ic));
    let budget = start_budget ~timeout_ms ~want_stats ~jobs in
    let result =
      if repd then Ok (Repair.Repd.repairs_d d ics)
      else
        match engine with
        | `Enumerate -> (
            match Repair.Enumerate.repairs ?budget ~decompose ~jobs d ics with
            | reps -> Ok reps
            | exception Repair.Enumerate.Budget_exceeded n ->
                Error (Budget.message (Budget.States n))
            | exception Budget.Exhausted e -> Error (Budget.message e))
        | `Program -> (
            match
              Core.Engine.repairs ?budget ~decompose ~jobs ~search d ics
            with
            | Ok _ as ok -> ok
            | Error msg when timeout_ms = None ->
                Fmt.epr "repair program not applicable (%s); falling back to \
                         enumeration@." msg;
                Ok (Repair.Enumerate.repairs ?budget ~decompose ~jobs d ics)
            | Error _ as e -> e)
    in
    match result with
    | Error msg ->
        report_budget ~want_stats budget;
        Fmt.epr "error: %s@." msg;
        1
    | Ok repairs ->
        print_repairs d repairs;
        report_budget ~want_stats budget;
        (match save with
        | None -> ()
        | Some prefix ->
            List.iteri
              (fun i r ->
                let path = Printf.sprintf "%s_%d.cqa" prefix (i + 1) in
                Out_channel.with_open_text path (fun oc ->
                    output_string oc (Lang.Emit.file ~ics r));
                Fmt.pr "wrote %s@." path)
              repairs);
        0
  in
  let engine_flag =
    Arg.(
      value
      & opt engine_conv `Program
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Repair engine: 'program' (stable models of Pi(D,IC), Section 5) \
                or 'enumerate' (model-theoretic, Section 4).")
  in
  let repd_flag =
    Arg.(value & flag & info [ "repd" ] ~doc:"Compute the deletion-preferring class Rep_d.")
  in
  let save_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PREFIX"
          ~doc:"Write each repair (with the constraints) to PREFIX_<i>.cqa.")
  in
  Cmd.v
    (Cmd.info "repairs" ~doc:"Enumerate the repairs of the database.")
    Term.(
      const (fun f e r s dc j t st se ->
          Stdlib.exit (run f e r s dc j t st se))
      $ file_arg $ engine_flag $ repd_flag $ save_flag $ decompose_flag
      $ jobs_flag $ timeout_flag $ stats_flag $ search_flag)

(* ------------------------------------------------------------------ *)
(* cqa *)

let cqa_cmd =
  let run file query_name engine decompose jobs timeout_ms want_stats =
    let jobs = Parallel.Config.resolve jobs in
    let l = load_or_die file in
    let d = Lang.Load.final_instance l and ics = l.Lang.Load.ics in
    let queries =
      match query_name with
      | None -> l.Lang.Load.queries
      | Some n -> (
          match List.assoc_opt n l.Lang.Load.queries with
          | Some q -> [ (n, q) ]
          | None ->
              Fmt.epr "error: no query named %s@." n;
              exit 2)
    in
    if queries = [] then begin
      Fmt.epr "error: the file declares no queries@.";
      exit 2
    end;
    let method_ =
      match engine with
      | `Auto -> Query.Cqa.Auto
      | `Program -> Query.Cqa.LogicProgram
      | `Enumerate -> Query.Cqa.ModelTheoretic
      | `Cautious -> Query.Cqa.CautiousProgram
    in
    let budget = start_budget ~timeout_ms ~want_stats ~jobs in
    List.iter
      (fun (name, q) ->
        Fmt.pr "query %s: %a@." name Query.Qsyntax.pp q;
        (match Query.Qsafe.check q with
        | Ok () -> ()
        | Error msg -> Fmt.pr "  note: %s@." msg);
        match
          Query.Cqa.consistent_answers ~method_ ?budget ~decompose ~jobs d ics q
        with
        | Error msg -> Fmt.pr "  error: %s@." msg
        | Ok outcome -> Fmt.pr "%a@." Query.Cqa.pp_outcome outcome)
      queries;
    report_budget ~want_stats budget;
    0
  in
  let query_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"NAME" ~doc:"Only answer the named query.")
  in
  let engine_flag =
    Arg.(
      value & opt method_conv `Auto
      & info [ "method"; "engine" ] ~docv:"METHOD"
          ~doc:"'auto' (the default) routes each conflict component to the \
                cheapest sound engine: the repair-less direct computation \
                where the constraints allow it, the shifted repair program \
                where it is head-cycle-free, and enumeration last; \
                'program' and 'enumerate' materialize every repair with the \
                stable-model and model-theoretic engines respectively; \
                'cautious' reasons over the repair program without \
                materializing any (RIC-acyclic constraints only).")
  in
  Cmd.v
    (Cmd.info "cqa" ~doc:"Compute consistent answers (Definition 8) to the file's queries.")
    Term.(
      const (fun f q e dc j t st -> Stdlib.exit (run f q e dc j t st))
      $ file_arg $ query_flag $ engine_flag $ decompose_flag $ jobs_flag
      $ timeout_flag $ stats_flag)

(* ------------------------------------------------------------------ *)
(* session: a line-protocol serving loop over the incremental engine *)

let session_engine = function
  | `Program -> Session.Program
  | `Enumerate -> Session.Enumerate
  | `Auto -> Session.Auto

let session_cmd =
  let run file engine jobs timeout_ms want_stats capacity =
    let jobs = Parallel.Config.resolve jobs in
    let engine = session_engine engine in
    (* the REPL is the line protocol (shared with `cqanull serve`) wired
       to stdin/stdout; Protocol.exec never raises, so a bad line can
       never kill the loop *)
    let p =
      Serve.Protocol.create
        (Serve.Protocol.repl_config ~engine ~jobs ?timeout_ms ~want_stats
           ~capacity ())
    in
    let emit (r : Serve.Protocol.reply) =
      print_string r.Serve.Protocol.text;
      flush stdout
    in
    (match file with None -> () | Some f -> emit (Serve.Protocol.load p f));
    let rec loop () =
      match In_channel.input_line In_channel.stdin with
      | None -> 0
      | Some line ->
          let r = Serve.Protocol.exec p line in
          emit r;
          if r.Serve.Protocol.quit then 0 else loop ()
    in
    loop ()
  in
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Surface file to load before serving.")
  in
  let engine_flag =
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("program", `Program); ("enumerate", `Enumerate); ("auto", `Auto) ])
          `Program
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Repair engine behind the session cache: 'program' (stable \
                models), 'enumerate' (model-theoretic), or 'auto' (route \
                each component to the cheapest sound tier; the verdict is \
                cached with the component).")
  in
  let capacity_flag =
    Arg.(
      value
      & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Component-cache capacity in entries (LRU); 0 disables \
                caching.")
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:"Serve a database interactively: delta updates (insert/delete), \
             repairs and CQA with incremental maintenance and a \
             component-keyed solve cache.  Line protocol on stdin: load \
             FILE, insert R(..), delete R(..), cqa QUERY, repairs, check, \
             stats, quit.")
    Term.(
      const (fun f e j t st c -> Stdlib.exit (run f e j t st c))
      $ file_opt $ engine_flag $ jobs_flag $ timeout_flag $ stats_flag
      $ capacity_flag)

(* ------------------------------------------------------------------ *)
(* serve: the session protocol on a socket, many concurrent sessions *)

let socket_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N"
        ~doc:"Loopback TCP port (0 picks a free one).")

let serve_addr socket port =
  match (socket, port) with
  | Some _, Some _ | None, None ->
      Fmt.epr "error: pass exactly one of --socket PATH or --port N@.";
      exit 2
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp p

let serve_cmd =
  let run file socket port engine jobs timeout_ms want_stats capacity =
    let jobs = Parallel.Config.resolve jobs in
    let engine = session_engine engine in
    let l = load_or_die file in
    let base = Lang.Load.final_instance l in
    let server =
      Serve.Server.create
        {
          Serve.Server.engine;
          jobs;
          cache_capacity = capacity;
          timeout_ms;
          want_stats;
          max_line = Serve.Protocol.default_max_line;
        }
        ~base ~ics:l.Lang.Load.ics
        (Serve.Protocol.env_of_loaded l)
    in
    let fd, where =
      match
        match serve_addr socket port with
        | `Unix path -> (Serve.Server.listen_unix path, path)
        | `Tcp p ->
            let fd, actual = Serve.Server.listen_tcp p in
            (fd, Printf.sprintf "127.0.0.1:%d" actual)
      with
      | r -> r
      | exception Unix.Unix_error (e, _, arg) ->
          Fmt.epr "error: cannot listen (%s: %s)@." arg
            (Unix.error_message e);
          exit 2
    in
    Fmt.pr
      "serving %s on %s: %d tuples, %d constraints, %d queries, %d \
       violation(s) (jobs=%d, cache-capacity=%d)@."
      file where
      (Relational.Instance.cardinal base)
      (List.length l.Lang.Load.ics)
      (List.length l.Lang.Load.queries)
      (List.length (Serve.Server.violations server))
      jobs capacity;
    Serve.Server.run server fd;
    let st = Serve.Server.stats server in
    Fmt.pr "server stopped: %d connection(s), %d request(s)@."
      st.Serve.Server.connections st.Serve.Server.requests;
    Fmt.pr "%a@." Session.Cache.pp_stats st.Serve.Server.cache;
    0
  in
  let engine_flag =
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("program", `Program); ("enumerate", `Enumerate); ("auto", `Auto) ])
          `Program
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Repair engine behind every session (see 'session').")
  in
  let jobs_flag =
    Arg.(
      value
      & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains shared by all connections for request \
                compute; 0 (the default) autodetects.")
  in
  let capacity_flag =
    Arg.(
      value
      & opt int 4096
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Process-global component-cache capacity in entries (LRU), \
                shared by every session; 0 disables caching.")
  in
  let timeout_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout" ] ~docv:"MS"
          ~doc:"Per-request wall-clock deadline in milliseconds.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the session line protocol on a Unix or loopback TCP \
             socket: one shared read-only base database, one independent \
             session per connection (insert/delete/cqa/repairs/check/stats/\
             quit), a process-global component cache, request compute on a \
             shared domain pool.  Replies are terminated by a '.' frame \
             line; the extra command 'shutdown' stops the server.")
    Term.(
      const (fun f s p e j t st c -> Stdlib.exit (run f s p e j t st c))
      $ file_arg $ socket_flag $ port_flag $ engine_flag $ jobs_flag
      $ timeout_flag $ stats_flag $ capacity_flag)

(* ------------------------------------------------------------------ *)
(* connect: a lock-step scripted client for serve *)

let connect_cmd =
  let run socket port wait_ms =
    let addr =
      match serve_addr socket port with
      | `Unix path -> Unix.ADDR_UNIX path
      | `Tcp p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    in
    match Serve.Client.connect ~retry_ms:wait_ms addr with
    | Error msg ->
        Fmt.epr "error: cannot connect: %s@." msg;
        1
    | Ok c ->
        let rec loop () =
          match In_channel.input_line In_channel.stdin with
          | None ->
              Serve.Client.close c;
              0
          | Some line -> (
              match Serve.Client.request c line with
              | Error `Closed ->
                  Serve.Client.close c;
                  0
              | Ok text ->
                  print_string text;
                  flush stdout;
                  loop ())
        in
        loop ()
  in
  let wait_flag =
    Arg.(
      value
      & opt int 0
      & info [ "wait" ] ~docv:"MS"
          ~doc:"Keep retrying the connection for up to MS milliseconds \
                (covers a server still starting up).")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Connect to a running 'serve' instance: read request lines from \
             stdin, print each framed reply to stdout.")
    Term.(
      const (fun s p w -> Stdlib.exit (run s p w))
      $ socket_flag $ port_flag $ wait_flag)

(* ------------------------------------------------------------------ *)
(* export *)

let export_cmd =
  let run file dialect variant output validate =
    let l = load_or_die file in
    let variant =
      match variant with `Literal -> Core.Proggen.Literal | `Refined -> Core.Proggen.Refined
    in
    match
      Core.Proggen.repair_program ~variant (Lang.Load.final_instance l)
        l.Lang.Load.ics
    with
    | Error msg ->
        Fmt.epr "error: %s@." msg;
        1
    | Ok pg ->
        let text =
          match dialect with
          | `Dlv -> Core.Proggen.to_dlv pg
          | `Clingo -> Core.Proggen.to_clingo pg
          | `Dimacs | `Smtlib ->
              (* clause-level dialects ground the program first: both
                 serialize the classical clause view of the ground rules *)
              let ground = Asp.Grounder.ground pg.Core.Proggen.program in
              let pp =
                match dialect with
                | `Dimacs -> Asp.Smtexport.to_dimacs
                | _ -> Asp.Smtexport.to_smtlib
              in
              Fmt.str "%a" pp ground
        in
        let validation =
          if not validate then Ok ()
          else
            match dialect with
            | `Dimacs -> (
                match Asp.Smtexport.validate_dimacs text with
                | Ok (v, c) ->
                    Fmt.pr "valid dimacs: %d var(s), %d clause(s)@." v c;
                    Ok ()
                | Error msg -> Error (Fmt.str "invalid dimacs: %s" msg))
            | `Smtlib -> (
                match Asp.Smtexport.validate_smtlib text with
                | Ok n ->
                    Fmt.pr "valid smtlib: %d expression(s)@." n;
                    Ok ()
                | Error msg -> Error (Fmt.str "invalid smtlib: %s" msg))
            | `Dlv | `Clingo ->
                Error "--validate applies to the dimacs and smtlib dialects"
        in
        (match validation with
        | Error msg ->
            Fmt.epr "error: %s@." msg;
            1
        | Ok () ->
            (match output with
            | None -> print_string text
            | Some path ->
                Out_channel.with_open_text path (fun oc -> output_string oc text);
                Fmt.pr "wrote %s@." path);
            0)
  in
  let dialect_flag =
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("dlv", `Dlv); ("clingo", `Clingo); ("dimacs", `Dimacs);
               ("smtlib", `Smtlib);
             ])
          `Dlv
      & info [ "dialect" ] ~docv:"DIALECT"
          ~doc:"Target syntax: 'dlv' or 'clingo' print the repair program \
                for an external ASP solver; 'dimacs' (CNF) and 'smtlib' \
                (SMT-LIB 2) print the classical clause view of the ground \
                program for SAT/SMT cross-checks — stable-model conditions \
                are not encoded.")
  in
  let validate_flag =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:"Shape-check the export before printing it (dimacs/smtlib \
                only): header/clause agreement and literal ranges for \
                DIMACS, s-expression well-formedness for SMT-LIB.")
  in
  let variant_flag =
    Arg.(
      value
      & opt (Arg.enum [ ("literal", `Literal); ("refined", `Refined) ]) `Literal
      & info [ "variant" ] ~docv:"VARIANT"
          ~doc:"'literal' emits Definition 9 verbatim; 'refined' the corrected \
                aux rules (see DESIGN.md).")
  in
  let output_flag =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Print the repair program Pi(D, IC) for an external ASP solver \
             (dlv/clingo), or its ground classical clause view for SAT/SMT \
             tools (dimacs/smtlib).")
    Term.(
      const (fun f d v o va -> Stdlib.exit (run f d v o va))
      $ file_arg $ dialect_flag $ variant_flag $ output_flag $ validate_flag)

(* ------------------------------------------------------------------ *)
(* solve: run the internal ASP solver on a DLV/clingo-syntax file *)

let solve_cmd =
  let run file limit mode search want_stats =
    match Asp.Aspparse.parse_file file with
    | exception Asp.Aspparse.Parse_error (msg, line) ->
        Fmt.epr "parse error at line %d: %s@." line msg;
        1
    | exception Sys_error msg ->
        Fmt.epr "error: %s@." msg;
        1
    | program -> (
        match Asp.Grounder.ground program with
        | exception Asp.Grounder.Unsafe msg ->
            Fmt.epr "error: %s@." msg;
            1
        | ground -> (
            let solvable =
              if Asp.Hcf.is_hcf ground then Asp.Shift.ground ground else ground
            in
            let stats = Asp.Solver.new_stats () in
            let report () =
              if want_stats then begin
                Fmt.pr "search: %s@."
                  (match search with `Cdcl -> "cdcl" | `Dpll -> "dpll");
                Fmt.pr "stats: %a@." Asp.Solver.pp_stats stats;
                if search = `Cdcl then
                  Fmt.pr "cdcl: %a@." Asp.Solver.pp_search_stats stats
              end
            in
            let pp_atoms atoms =
              Fmt.pr "{%a}@."
                Fmt.(list ~sep:(any ", ") Asp.Ground.pp_gatom)
                atoms
            in
            match mode with
            | `Models ->
                let models =
                  Asp.Solver.stable_models_atoms ?limit ~search ~stats solvable
                in
                List.iter pp_atoms models;
                Fmt.pr "%d stable model(s)@." (List.length models);
                report ();
                if models = [] then 1 else 0
            | `Cautious ->
                pp_atoms
                  (List.map (Asp.Ground.atom_of solvable)
                     (Asp.Solver.cautious ~search ~stats solvable));
                report ();
                0
            | `Brave ->
                pp_atoms
                  (List.map (Asp.Ground.atom_of solvable)
                     (Asp.Solver.brave ~search ~stats solvable));
                report ();
                0))
  in
  let limit_flag =
    Arg.(value & opt (some int) None & info [ "n"; "limit" ] ~docv:"N" ~doc:"Stop after N models.")
  in
  let mode_flag =
    Arg.(
      value
      & vflag `Models
          [
            (`Cautious, info [ "cautious" ] ~doc:"Print atoms true in every stable model.");
            (`Brave, info [ "brave" ] ~doc:"Print atoms true in some stable model.");
          ])
  in
  let solve_stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the search mode and the solver counters (decisions, \
                propagations, candidates, and under cdcl the \
                conflict/learning counters).")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run the internal stable-model solver on a DLV/clingo-syntax program.")
    Term.(
      const (fun f l m s st -> Stdlib.exit (run f l m s st))
      $ file_arg $ limit_flag $ mode_flag $ search_flag $ solve_stats_flag)

(* ------------------------------------------------------------------ *)
(* conform: the scenario corpus and expected-verdict suite *)

let conform_cmd =
  let run family verbose list_only write_corpus =
    let cases = Conform.Suite.all @ Conform.Corpus.all in
    let cases =
      match family with
      | None -> cases
      | Some f -> (
          match
            List.filter (fun c -> c.Conform.Case.family = f) cases
          with
          | [] ->
              Fmt.epr "error: no conformance family named %s@." f;
              exit 2
          | l -> l)
    in
    match write_corpus with
    | Some dir ->
        let written = Conform.Corpus.write_corpus dir in
        List.iter (fun p -> Fmt.pr "wrote %s@." p) written;
        0
    | None ->
        if list_only then begin
          List.iter
            (fun (c : Conform.Case.t) ->
              Fmt.pr "%-22s %-15s %s@." c.Conform.Case.name
                c.Conform.Case.family c.Conform.Case.doc)
            cases;
          0
        end
        else begin
          let summary, results = Conform.Runner.run cases in
          List.iter
            (fun (fam : string) ->
              let of_fam =
                List.filter
                  (fun (r : Conform.Runner.result_) ->
                    r.Conform.Runner.case.Conform.Case.family = fam)
                  results
              in
              let ok = List.filter Conform.Runner.passed of_fam in
              Fmt.pr "family %-16s %2d case(s), %2d passed@." fam
                (List.length of_fam) (List.length ok);
              if verbose then
                List.iter
                  (fun (r : Conform.Runner.result_) ->
                    Fmt.pr "  %-20s %s (%d tier(s): %s)@."
                      r.Conform.Runner.case.Conform.Case.name
                      (if Conform.Runner.passed r then "ok" else "FAIL")
                      (List.length r.Conform.Runner.tiers)
                      (String.concat "+"
                         (List.map
                            (fun (t : Conform.Runner.tier_result) ->
                              t.Conform.Runner.tier)
                            r.Conform.Runner.tiers)))
                  of_fam)
            summary.Conform.Runner.families;
          List.iter
            (fun (r : Conform.Runner.result_) ->
              List.iter
                (fun msg ->
                  Fmt.pr "FAIL %s: %s@." r.Conform.Runner.case.Conform.Case.name
                    msg)
                r.Conform.Runner.failures)
            summary.Conform.Runner.failed;
          Fmt.pr "conform: %d/%d case(s) passed across %d families@."
            summary.Conform.Runner.ok summary.Conform.Runner.total
            (List.length summary.Conform.Runner.families);
          if summary.Conform.Runner.failed = [] then 0 else 1
        end
  in
  let family_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:"Only run the named scenario family (paper, ft-null-algebra, \
                fk_chain, fd_cluster, cyclic_ric, nnc_ric, session_stream).")
  in
  let verbose_flag =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print one line per case.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the cases without running them.")
  in
  let write_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-corpus" ] ~docv:"DIR"
          ~doc:"Materialize the generated scenario corpus under \
                DIR/<family>/<case>.cqa instead of running.")
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:"Run the conformance suite: paper examples, SQL-null algebra \
             equivalences and generated scenario families, answered through \
             every engine tier (auto, program, enumerate, program-dpll, \
             session, serve) with byte-identical outcomes and pinned \
             verdicts.")
    Term.(
      const (fun f v l w -> Stdlib.exit (run f v l w))
      $ family_flag $ verbose_flag $ list_flag $ write_flag)

(* ------------------------------------------------------------------ *)
(* fuzz: randomized cross-tier differential testing with minimization *)

let fuzz_cmd =
  let run seed cases oracle_name minimize out timeout_ms =
    let oracle =
      match Conform.Fuzz.oracle_named oracle_name with
      | Some o -> o
      | None ->
          Fmt.epr "error: no oracle named %s (differential, inconsistent)@."
            oracle_name;
          exit 2
    in
    let budget =
      Option.map
        (fun ms -> Budget.start (Budget.make ~timeout_ms:ms ()))
        timeout_ms
    in
    let r = Conform.Fuzz.run ~oracle ?budget ~seed ~cases () in
    match r.Conform.Fuzz.failure with
    | None when r.Conform.Fuzz.timed_out ->
        Fmt.pr
          "fuzz: deadline exceeded after %d case(s), oracle %s: all passed@."
          r.Conform.Fuzz.tested oracle.Conform.Fuzz.name;
        0
    | None ->
        Fmt.pr "fuzz: %d case(s), oracle %s, seeds %d..%d: all passed@."
          r.Conform.Fuzz.tested oracle.Conform.Fuzz.name seed
          (seed + cases - 1);
        0
    | Some (at, msg, sc) ->
        Fmt.pr "fuzz: FAILURE at seed %d (oracle %s): %s@." at
          oracle.Conform.Fuzz.name msg;
        if minimize then begin
          let min_sc, steps = Conform.Fuzz.minimize oracle sc in
          Fmt.pr "minimized: size %d -> %d in %d step(s)@."
            (Conform.Fuzz.size sc) (Conform.Fuzz.size min_sc) steps;
          Out_channel.with_open_text out (fun oc ->
              output_string oc (Conform.Fuzz.source min_sc));
          Fmt.pr "wrote %s@." out
        end;
        1
  in
  let seed_flag =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")
  in
  let cases_flag =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"K"
          ~doc:"Number of consecutive seeds to test (stops at the first \
                failure).")
  in
  let oracle_flag =
    Arg.(
      value
      & opt string "differential"
      & info [ "oracle" ] ~docv:"ORACLE"
          ~doc:"'differential' fails when the engine tiers disagree; \
                'inconsistent' fails when the final instance violates the \
                constraints (a demo oracle for exercising the minimizer).")
  in
  let minimize_flag =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Delta-debug the first failing scenario to a minimal \
                still-failing repro and write it as a .cqa file.")
  in
  let out_flag =
    Arg.(
      value
      & opt string "repro.cqa"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the minimized repro.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the engine tiers with random scenarios (facts, \
             constraints, update streams, queries); with --minimize, \
             delta-debug the first failure to a minimal .cqa repro.")
    Term.(
      const (fun s c o m out t -> Stdlib.exit (run s c o m out t))
      $ seed_flag $ cases_flag $ oracle_flag $ minimize_flag $ out_flag
      $ timeout_flag)

(* ------------------------------------------------------------------ *)
(* graph *)

let graph_cmd =
  let run file =
    let l = load_or_die file in
    let ics = l.Lang.Load.ics in
    let g = Ic.Depgraph.build ics in
    Fmt.pr "dependency graph G(IC):@.%a@.@." Ic.Depgraph.pp g;
    let c = Ic.Depgraph.contract ics in
    Fmt.pr "contracted graph GC(IC):@.%a@.@." Ic.Depgraph.pp_contracted c;
    (match Ic.Depgraph.ric_cycle ics with
    | None -> Fmt.pr "RIC-acyclic: yes (Theorem 4 applies)@."
    | Some cycle ->
        Fmt.pr "RIC-acyclic: NO — cycle through %a@."
          Fmt.(list ~sep:(any " -> ") (fun ppf c -> pf ppf "{%a}" (list ~sep:(any ",") string) c))
          cycle);
    (match Core.Hcfcheck.bilateral_predicates ics with
    | [] -> Fmt.pr "bilateral predicates: none@."
    | bilateral ->
        Fmt.pr "bilateral predicates: %a@." Fmt.(list ~sep:(any ", ") string) bilateral);
    if Core.Hcfcheck.static_hcf ics then
      Fmt.pr "Theorem 5: repair program is head-cycle-free (CQA in coNP)@."
    else
      Fmt.pr "Theorem 5 condition fails: repair program may be properly disjunctive@.";
    Fmt.pr "@.null propagation:@.%s@."
      (Core.Nullflow.report (Lang.Load.final_instance l) ics);
    0
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Analyze the constraint set: dependency graphs, RIC-acyclicity, HCF.")
    Term.(const (fun f -> Stdlib.exit (run f)) $ file_arg)

let () =
  let info =
    Cmd.info "cqanull" ~version:"1.0.0"
      ~doc:"Consistent query answers in the presence of null values (Bravo & \
            Bertossi, EDBT 2006)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; repairs_cmd; cqa_cmd; conform_cmd; fuzz_cmd;
            session_cmd; serve_cmd; connect_cmd; export_cmd; graph_cmd;
            solve_cmd;
          ]))
