(* The domain-pool subsystem and the jobs=1 / jobs=N determinism contract
   of the decomposed engines. *)

module Pool = Parallel.Pool
module Instance = Relational.Instance
module Gen = Workload.Gen
module Cqa = Query.Cqa

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_map_ordered () =
  let xs = List.init 50 Fun.id in
  let squares =
    Pool.with_pool ~jobs:3 (fun pool -> Pool.map pool (fun x -> x * x) xs)
  in
  Alcotest.(check (list int)) "ordered results" (List.map (fun x -> x * x) xs)
    squares

let test_map_edge_sizes () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map pool succ [ 6 ]);
      Alcotest.(check (list int)) "pair" [ 1; 2 ] (Pool.map pool succ [ 0; 1 ]))

let test_map_lowest_index_exception () =
  (* several tasks raise; whichever worker finishes first, the re-raised
     exception must be the lowest-index one *)
  match
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun i -> if i mod 5 = 0 then failwith (string_of_int i) else i)
          (List.init 23 (fun i -> i + 1)))
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure i -> Alcotest.(check string) "lowest index" "5" i

let test_pool_reusable_after_exception () =
  Pool.with_pool ~jobs:2 (fun pool ->
      (match Pool.map pool (fun _ -> failwith "boom") [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure _ -> ());
      Alcotest.(check (list int)) "pool still serves" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_tasks_run () =
  Pool.with_pool ~jobs:3 (fun pool ->
      ignore (Pool.map pool Fun.id (List.init 12 Fun.id));
      let counts = Pool.tasks_run pool in
      Alcotest.(check int) "three workers" 3 (List.length counts);
      Alcotest.(check int) "all tasks ran on the pool" 12
        (List.fold_left ( + ) 0 counts))

let test_config_resolve () =
  Alcotest.(check bool) "auto >= 1" true (Parallel.Config.resolve 0 >= 1);
  Alcotest.(check int) "explicit" 3 (Parallel.Config.resolve 3);
  Alcotest.(check int) "clamped" 1 (Parallel.Config.resolve (-2));
  Alcotest.(check int) "default sequential" 1 Parallel.Config.default.jobs

(* ------------------------------------------------------------------ *)
(* jobs=1 vs jobs=N determinism *)

let check_repair_lists msg expected actual =
  Alcotest.(check int)
    (msg ^ ": count") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      if not (Instance.equal e a) then
        Alcotest.failf "%s: repair %d differs: %a vs %a" msg i
          Instance.pp_inline e Instance.pp_inline a)
    (List.combine expected actual)

let test_repairs_identical_weighted () =
  let g = Gen.clusters_workload ~k:3 ~weight:4 () in
  let run jobs =
    Repair.Enumerate.repairs ~decompose:true ~jobs g.Gen.d g.Gen.ics
  in
  check_repair_lists "enumerate clusters" (run 1) (run 4);
  let erun jobs =
    match Core.Engine.repairs ~decompose:true ~jobs g.Gen.d g.Gen.ics with
    | Ok reps -> reps
    | Error msg -> Alcotest.failf "engine error: %s" msg
  in
  check_repair_lists "engine clusters" (erun 1) (erun 4)

let outcome_equal (a : Cqa.outcome) (b : Cqa.outcome) =
  Relational.Tuple.Set.equal a.Cqa.consistent b.Cqa.consistent
  && Relational.Tuple.Set.equal a.Cqa.possible b.Cqa.possible
  && Relational.Tuple.Set.equal a.Cqa.standard b.Cqa.standard
  && a.Cqa.repair_count = b.Cqa.repair_count
  && a.Cqa.exhausted = b.Cqa.exhausted

let q_s =
  Query.Qsyntax.make ~head:[ "x" ]
    (Query.Qsyntax.Atom (Ic.Patom.make "S" [ Ic.Term.var "x" ]))

let prop_enumerate_jobs_differential =
  QCheck.Test.make ~name:"decomposed repairs: jobs=4 = jobs=1 (300 cases)"
    ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = Gen.random_case ~seed () in
      let run jobs =
        Repair.Enumerate.repairs ~decompose:true ~jobs ~max_states:50_000
          g.Gen.d g.Gen.ics
      in
      List.equal Instance.equal (run 1) (run 4))

let prop_cqa_jobs_differential =
  QCheck.Test.make ~name:"decomposed CQA: jobs=4 = jobs=1 (150 cases)"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = Gen.random_case ~seed () in
      List.for_all
        (fun method_ ->
          let run jobs =
            Cqa.consistent_answers ~method_ ~decompose:true ~jobs
              ~max_effort:50_000 g.Gen.d g.Gen.ics q_s
          in
          match (run 1, run 4) with
          | Ok a, Ok b -> outcome_equal a b
          | Error a, Error b -> a = b
          | _ -> false)
        [ Cqa.ModelTheoretic; Cqa.LogicProgram ])

(* ------------------------------------------------------------------ *)
(* exhaustion under parallelism *)

let test_exhaustion_matches_sequential () =
  (* a shared budget with max_states = 0 trips the very first state of
     every component's search: both paths must degrade every component to
     its base slice and surface the same marker *)
  let g = Gen.clusters_workload ~k:3 ~weight:2 () in
  let run jobs =
    let budget = Budget.start (Budget.make ~max_states:0 ()) in
    Repair.Enumerate.decomposed ~budget ~jobs g.Gen.d g.Gen.ics
  in
  let r1 = run 1 and r4 = run 4 in
  (match (r1.Repair.Enumerate.exhausted, r4.Repair.Enumerate.exhausted) with
  | Some (Budget.States 0), Some (Budget.States 0) -> ()
  | e1, e4 ->
      Alcotest.failf "markers differ or missing: %a vs %a"
        Fmt.(option Budget.pp_exhausted)
        e1
        Fmt.(option Budget.pp_exhausted)
        e4);
  List.iter
    (fun (m1, m4) -> check_repair_lists "degraded component" m1 m4)
    (List.combine r1.Repair.Enumerate.minimal r4.Repair.Enumerate.minimal);
  Alcotest.(check (list int))
    "no exploration recorded" r1.Repair.Enumerate.explored
    r4.Repair.Enumerate.explored

let test_per_search_limit_matches_sequential () =
  (* the legacy max_states bound is per-component-search, so even the trip
     points are deterministic: the whole decomposed record must match *)
  let g = Gen.clusters_workload ~k:3 ~weight:3 () in
  let run jobs =
    Repair.Enumerate.decomposed ~max_states:5 ~jobs g.Gen.d g.Gen.ics
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "same marker" true
    (r1.Repair.Enumerate.exhausted = r4.Repair.Enumerate.exhausted);
  Alcotest.(check bool) "tripped" true (r1.Repair.Enumerate.exhausted <> None);
  Alcotest.(check (list int))
    "same exploration" r1.Repair.Enumerate.explored r4.Repair.Enumerate.explored;
  List.iter
    (fun (m1, m4) -> check_repair_lists "component repairs" m1 m4)
    (List.combine r1.Repair.Enumerate.minimal r4.Repair.Enumerate.minimal)

let test_worker_attribution () =
  (* with worker slots installed, all decomposed search work lands in the
     pool slots (the coordinator only merges) and sums to the global
     counters *)
  let g = Gen.clusters_workload ~k:4 ~weight:2 () in
  let stats = Budget.new_stats () in
  Budget.set_workers stats 2;
  let budget = Budget.start ~stats Budget.unlimited in
  let r = Repair.Enumerate.decomposed ~budget ~jobs:2 g.Gen.d g.Gen.ics in
  Alcotest.(check int) "all components solved" 4
    (List.length (List.filter (fun l -> l <> []) r.Repair.Enumerate.minimal));
  let sum sel =
    Array.fold_left (fun acc w -> acc + Atomic.get (sel w)) 0 stats.Budget.workers
  in
  Alcotest.(check int) "worker states sum to global"
    (Atomic.get stats.Budget.states)
    (sum (fun w -> w.Budget.w_states));
  Alcotest.(check int) "worker components sum to kept count" 4
    (sum (fun w -> w.Budget.w_components));
  Alcotest.(check int) "merge-side counter agrees" 4
    (Atomic.get stats.Budget.components_solved)

let prop_no_escape_parallel =
  QCheck.Test.make
    ~name:"tiny budgets with jobs=4 yield Ok/Error, never an exception"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 8))
    (fun (seed, limit) ->
      let g = Gen.random_case ~seed () in
      List.for_all
        (fun method_ ->
          let budget =
            Budget.start (Budget.make ~max_states:limit ~max_decisions:limit ())
          in
          match
            Cqa.consistent_answers ~method_ ~budget ~decompose:true ~jobs:4
              g.Gen.d g.Gen.ics q_s
          with
          | Ok _ | Error _ -> true
          | exception e ->
              QCheck.Test.fail_reportf "escaped: %s" (Printexc.to_string e))
        [ Cqa.ModelTheoretic; Cqa.LogicProgram ])

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered map" `Quick test_map_ordered;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "lowest-index exception" `Quick
            test_map_lowest_index_exception;
          Alcotest.test_case "reusable after exception" `Quick
            test_pool_reusable_after_exception;
          Alcotest.test_case "tasks run on workers" `Quick test_tasks_run;
          Alcotest.test_case "config resolve" `Quick test_config_resolve;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "weighted clusters identical" `Quick
            test_repairs_identical_weighted;
        ] );
      ( "exhaustion",
        [
          Alcotest.test_case "shared budget matches sequential" `Quick
            test_exhaustion_matches_sequential;
          Alcotest.test_case "per-search limit matches sequential" `Quick
            test_per_search_limit_matches_sequential;
          Alcotest.test_case "worker attribution" `Quick test_worker_attribution;
        ] );
      ( "qcheck",
        qcheck
          [
            prop_enumerate_jobs_differential;
            prop_cqa_jobs_differential;
            prop_no_escape_parallel;
          ] );
    ]
