The check subcommand reports |=_N violations and exits 1 on inconsistency:

  $ cqanull check example.cqa
  ric violated by Course(34, c18) under [C=c18, I=34]
  1 violation(s)
  [1]

All six satisfaction semantics side by side:

  $ cqanull check --all-semantics example.cqa
  ric: |=_N=VIOLATED  classic=VIOLATED  liberal[10]=VIOLATED  sql-simple=VIOLATED  sql-partial=VIOLATED  sql-full=VIOLATED
  [1]

The repairs subcommand (stable-model engine by default):

  $ cqanull repairs example.cqa
  repair 1: {Course(21, c15), Student(21, ann), Student(45, paul)}
    delta: {Course(34, c18)}
  repair 2: {Course(21, c15), Course(34, c18), Student(21, ann), Student(34, null), Student(45, paul)}
    delta: {Student(34, null)}
  2 repair(s)

The model-theoretic engine agrees:

  $ cqanull repairs --engine enumerate example.cqa | tail -n 1
  2 repair(s)

Consistent query answering over both queries in the file:

  $ cqanull cqa example.cqa --query courses
  query courses: {(I, C) | Course(I, C)}
  consistent: {(21, c15)}
  possible:   {(21, c15), (34, c18)}
  standard:   {(21, c15), (34, c18)}
  repairs:    2

Constraint-set analysis:

  $ cqanull graph example.cqa | grep -E 'RIC-acyclic|bilateral|Theorem 5|insertion'
  RIC-acyclic: yes (Theorem 4 applies)
  bilateral predicates: none
  Theorem 5: repair program is head-cycle-free (CQA in coNP)
  repair-insertion positions:     Student[2]

Exporting the repair program in DLV syntax (facts first):

  $ cqanull export example.cqa | head -n 5
  d_course(21,c15).
  d_course(34,c18).
  d_student(21,ann).
  d_student(45,paul).
  d_course_a(I,C,fa) v d_student_a(I,null,ta) :- d_course_a(I,C,ts), not aux_0(I), I != null.

The export round-trips through the internal solver:

  $ cqanull export example.cqa -o prog.dlv
  wrote prog.dlv
  $ cqanull solve prog.dlv | tail -n 1
  2 stable model(s)

Solving a hand-written disjunctive program, with cautious and brave modes:

  $ cqanull solve program.dlv
  {a, c}
  {b, c}
  2 stable model(s)
  $ cqanull solve --cautious program.dlv
  {c}
  $ cqanull solve --brave program.dlv
  {a, b, c}

Schema errors are reported with file and line and exit code 2:

  $ cqanull check badref.cqa
  error: badref.cqa:2: relation P has arity 1 but is used with 2 atoms
  [2]

Malformed syntax also points at the file, line and column:

  $ cat > malformed.cqa <<'EOF'
  > relation R(k, a).
  > R(1, 10).
  > constraint fd R(K,A), R(K,B) -> A = B.
  > EOF
  $ cqanull check malformed.cqa
  error: malformed.cqa:3:15: parse error: expected ':' after constraint (found 'R')
  [2]

Saving repairs to files that re-check as consistent:

  $ cqanull repairs example.cqa --save rep > /dev/null
  $ cqanull check rep_1.cqa
  consistent (3 tuples, 1 constraints)
  $ cqanull check rep_2.cqa
  consistent (5 tuples, 1 constraints)

CQA by cautious reasoning (no repairs materialized):

  $ cqanull cqa example.cqa --query courses --engine cautious | grep consistent
  consistent: {(21, c15)}

Decomposed CQA agrees with the monolithic run and reports budget stats
(elapsed wall-clock is nondeterministic, so it is masked).  The default
method is now auto, so the stats also show where the router sent the one
conflict component — the referential constraint makes it head-cycle-free
but not deletion-only, hence the shifted program tier.  The default
search mode is now the learning engine, whose VSIDS ordering takes one
more decision here than the chronological picker and reports its
conflict-analysis counters:

  $ cqanull cqa example.cqa --query courses --decompose --stats | sed 's/elapsed_ms=[0-9]*/elapsed_ms=N/'
  query courses: {(I, C) | Course(I, C)}
  consistent: {(21, c15)}
  possible:   {(21, c15), (34, c18)}
  standard:   {(21, c15), (34, c18)}
  repairs:    2
  stats: decisions=3 states=0 components_solved=1 elapsed_ms=N
  routed: direct=0 shifted=1 disjunctive=0 enumerate=0
  cdcl: conflicts=3 learned=4 restarts=0 backjump_len=4 phase_saved=2

Spelling the default out as --method auto gives the same routed answers:

  $ cqanull cqa example.cqa --query courses --method auto --stats | sed 's/elapsed_ms=[0-9]*/elapsed_ms=N/'
  query courses: {(I, C) | Course(I, C)}
  consistent: {(21, c15)}
  possible:   {(21, c15), (34, c18)}
  standard:   {(21, c15), (34, c18)}
  repairs:    2
  stats: decisions=3 states=0 components_solved=1 elapsed_ms=N
  routed: direct=0 shifted=1 disjunctive=0 enumerate=0
  cdcl: conflicts=3 learned=4 restarts=0 backjump_len=4 phase_saved=2

  $ cqanull repairs example.cqa --engine enumerate --decompose --stats | tail -n 2 | sed 's/elapsed_ms=[0-9]*/elapsed_ms=N/'
  2 repair(s)
  stats: decisions=0 states=3 components_solved=1 elapsed_ms=N

The cautious engine cannot decompose — a clear error, not a silent fallback:

  $ cqanull cqa example.cqa --query courses --engine cautious --decompose
  query courses: {(I, C) | Course(I, C)}
    error: the cautious-program method cannot decompose: it materializes no per-component repairs to recombine; use the model-theoretic or logic-program engine with ~decompose, or drop ~decompose

An exceeded deadline is an error with exit code 1, never a crash:

  $ cqanull cqa example.cqa --query courses --timeout 0
  query courses: {(I, C) | Course(I, C)}
    error: deadline (0 ms) exceeded

  $ cqanull repairs example.cqa --timeout 0
  error: deadline (0 ms) exceeded
  [1]

Parallel execution (--jobs) is byte-identical to the sequential run, and
--jobs 0 resolves to the machine's core count:

  $ cqanull repairs example.cqa --engine enumerate --decompose > seq.out
  $ cqanull repairs example.cqa --engine enumerate --decompose --jobs 4 > par.out
  $ diff seq.out par.out

  $ cqanull cqa example.cqa --query courses --decompose --jobs 0 | grep consistent
  consistent: {(21, c15)}

With --stats, --jobs N adds one consumption line per pool worker (this
single-component instance takes the sequential path, so the pool slots
stay idle — deterministically zero):

  $ cqanull repairs example.cqa --engine enumerate --decompose --stats --jobs 2 | tail -n 4 | sed 's/elapsed_ms=[0-9]*/elapsed_ms=N/'
  2 repair(s)
  stats: decisions=0 states=3 components_solved=1 elapsed_ms=N
    worker 1: decisions=0 states=0 components=0
    worker 2: decisions=0 states=0 components=0

A deadline still degrades deterministically under --jobs:

  $ cqanull repairs example.cqa --jobs 4 --timeout 0
  error: deadline (0 ms) exceeded
  [1]
