The session subcommand serves a loaded database over a line protocol:
update statements fold in incrementally, queries answer from the
component cache.  The scenario file's own insert/delete statements are
replayed through the engine on load (4 tuples + insert - delete = 4):

  $ cqanull session << 'EOF'
  > load ../../scenarios/example_session_updates.cqa
  > repairs
  > cqa students
  > insert Student(45, sue)
  > cqa students
  > delete Course(45, c22)
  > cqa students
  > stats
  > quit
  > EOF
  loaded ../../scenarios/example_session_updates.cqa: 4 tuples, 1 constraints, 2 queries, 2 violation(s)
  repair 1: {Course(21, c15), Student(21, ann)}
    delta: {Course(34, c18), Course(45, c22)}
  repair 2: {Course(21, c15), Course(45, c22), Student(21, ann), Student(45, null)}
    delta: {Course(34, c18), Student(45, null)}
  repair 3: {Course(21, c15), Course(34, c18), Student(21, ann), Student(34, null)}
    delta: {Course(45, c22), Student(34, null)}
  repair 4: {Course(21, c15), Course(34, c18), Course(45, c22), Student(21, ann), Student(34, null), Student(45, null)}
    delta: {Student(34, null), Student(45, null)}
  4 repair(s)
  query students: {(I, N) | Student(I, N)}
  consistent: {(21, ann)}
  possible:   {(21, ann), (34, null), (45, null)}
  standard:   {(21, ann)}
  repairs:    4
  ok: 5 tuples, 1 violation(s)
  query students: {(I, N) | Student(I, N)}
  consistent: {(21, ann), (45, sue)}
  possible:   {(21, ann), (34, null), (45, sue)}
  standard:   {(21, ann), (45, sue)}
  repairs:    2
  ok: 4 tuples, 1 violation(s)
  query students: {(I, N) | Student(I, N)}
  consistent: {(21, ann), (45, sue)}
  possible:   {(21, ann), (34, null), (45, sue)}
  standard:   {(21, ann), (45, sue)}
  repairs:    2
  session: deltas=3 requests=4 plan.reused=0 plan.rebuilt=3 ics.reused=0 ics.fast=1 ics.rescanned=2 cache.hits=4 cache.misses=2 cache.evictions=0 cache.entries=2

The untouched component (Course(34, c18)'s) was solved once and hit on
every later request — 4 hits against the 2 misses of the first request.

The database can be given as a positional argument, the engine is
selectable, inline queries parse as name(X): body, and updates are
schema-checked; per-request budget stats print with --stats (wall-clock
masked — it is the only nondeterministic field):

  $ cqanull session ../../scenarios/example_session_updates.cqa --engine enumerate --stats << 'EOF' | sed -E 's/elapsed_ms=[0-9]+/elapsed_ms=_/'
  > check
  > cqa q(I): Student(I, N)
  > insert Nosuch(1)
  > insert Course(21)
  > quit
  > EOF
  loaded ../../scenarios/example_session_updates.cqa: 4 tuples, 1 constraints, 2 queries, 2 violation(s)
  ric violated by Course(34, c18) under [C=c18, I=34]
  ric violated by Course(45, c22) under [C=c22, I=45]
  2 violation(s)
  query q: {(I) | Student(I, N)}
  consistent: {(21)}
  possible:   {(21), (34), (45)}
  standard:   {(21)}
  repairs:    4
  stats: decisions=0 states=6 components_solved=2 elapsed_ms=_
  error: unknown relation Nosuch
  error: relation Course expects arity 2, got 1

Unknown commands and missing queries report without killing the loop,
and a session without a database refuses requests:

  $ cqanull session ../../scenarios/example_session_updates.cqa << 'EOF'
  > bogus
  > cqa nosuchquery
  > quit
  > EOF
  loaded ../../scenarios/example_session_updates.cqa: 4 tuples, 1 constraints, 2 queries, 2 violation(s)
  error: unknown command 'bogus' (load, insert, delete, cqa, repairs, check, stats, quit)
  error: no query named nosuchquery (declare it in the file or pass name(X): body)

  $ echo repairs | cqanull session
  error: no database loaded (use: load FILE)
