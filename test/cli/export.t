The DIMACS export serializes the classical clause view of the repair
program — every stable model satisfies it, so an external SAT solver can
cross-check propagation-level behavior.  The comment block maps every
variable back to its ground atom, and the header counts are exact:

  $ cqanull export example.cqa --dialect dimacs
  c classical clause view of the ground program
  c (models of the CNF include all stable models)
  c var 1 = d_course(21,c15)
  c var 2 = d_course(34,c18)
  c var 3 = d_student(21,ann)
  c var 4 = d_student(45,paul)
  c var 5 = d_course_a(21,c15,fa)
  c var 6 = d_student_a(21,null,ta)
  c var 7 = d_course_a(21,c15,ts)
  c var 8 = aux_0(21)
  c var 9 = d_course_a(34,c18,fa)
  c var 10 = d_student_a(34,null,ta)
  c var 11 = d_course_a(34,c18,ts)
  c var 12 = d_student_a(21,ann,ts)
  c var 13 = aux_0(45)
  c var 14 = d_student_a(45,paul,ts)
  c var 15 = d_course_a(21,c15,tss)
  c var 16 = d_course_a(34,c18,tss)
  c var 17 = d_student_a(34,null,ts)
  c var 18 = d_student_a(21,null,ts)
  c var 19 = d_student_a(21,null,tss)
  c var 20 = d_student_a(34,null,tss)
  c var 21 = d_student_a(21,ann,tss)
  c var 22 = d_student_a(45,paul,tss)
  p cnf 22 20
  1 0
  2 0
  3 0
  4 0
  5 6 -7 8 0
  9 10 -11 0
  8 -12 0
  13 -14 0
  11 -2 0
  7 -1 0
  15 -7 5 0
  16 -11 9 0
  14 -4 0
  12 -3 0
  17 -10 0
  18 -6 0
  19 -18 0
  20 -17 0
  21 -12 0
  22 -14 0

The shape validator accepts its own output — one header, every clause
0-terminated with literals in range, exactly the advertised counts:

  $ cqanull export example.cqa --dialect dimacs --validate | head -n 1
  valid dimacs: 22 var(s), 20 clause(s)

The SMT-LIB export declares one Bool constant per atom (atom names
survive inside |...|-quoted symbols), asserts one disjunction per rule
and closes with (check-sat); the parser-side validator counts the
top-level s-expressions and checks the parentheses balance:

  $ cqanull export example.cqa --dialect smtlib --validate | head -n 4
  valid smtlib: 44 expression(s)
  ; classical clause view of the ground program
  (set-logic QF_UF)
  (declare-const |d_course(21,c15)| Bool)

  $ cqanull export example.cqa --dialect smtlib | grep -c '^(assert '
  20
  $ cqanull export example.cqa --dialect smtlib | grep -c '(check-sat)'
  1
  $ cqanull export example.cqa --dialect smtlib | grep -c '^(declare-const |'
  22

--validate only makes sense for the machine-checkable dialects:

  $ cqanull export example.cqa --dialect dlv --validate
  error: --validate applies to the dimacs and smtlib dialects
  [1]
