The perf-baseline emitter writes well-formed JSON with the stable keys the
trajectory depends on, and its --check-json self-test accepts it
(micro-benchmark quota lowered so the cram run stays fast; row counts are
structural and quota-independent):

  $ cqanull-bench --json baseline.json --micro --quota 0.005 --scale 30000 > /dev/null
  $ cqanull-bench --check-json baseline.json
  baseline.json: ok (12 micro rows, 6 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows, 4 routing rows, 2 scale rows, 1 serve rows, 6 cdcl rows, 37 conform rows)

Stable top-level keys, in order (anchored to top-level indentation, since
budget rows carry a "decompose" field of their own):

  $ grep -oE '^  "(schema|tool|unit|micro|solver|decompose|budget|parallel|session|routing|scale|serve|cdcl|conform)"' baseline.json
    "schema"
    "tool"
    "unit"
    "micro"
    "solver"
    "decompose"
    "budget"
    "parallel"
    "session"
    "routing"
    "scale"
    "serve"
    "cdcl"
    "conform"

The solver telemetry carries all three engines for each E4 benchmark and
every counter field is numeric — the counter rows stay pinned to the
chronological search so their decision counts remain comparable across
baselines, and the cdcl rows add the learning counters:

  $ grep -c '"engine": "counter"' baseline.json
  2
  $ grep -c '"engine": "cdcl"' baseline.json
  2
  $ grep -c '"engine": "naive"' baseline.json
  2
  $ grep -c '"rules_touched": [0-9]' baseline.json
  6

The decomposition counters cover k = 1, 2, 4, 6 shared-predicate clusters,
with per-component state counts and the product-exactness flag:

  $ grep -c '"component_states": \[' baseline.json
  4
  $ grep -c '"product_exact": "true"' baseline.json
  4

The budget telemetry shows live consumption for every engine — non-zero
per-stage counters and a started millisecond of wall-clock (guarded by
--check-json above):

  $ grep -c '"name": "E16.budget' baseline.json
  4
  $ grep -c '"elapsed_ms": 0' baseline.json
  0
  [1]

The parallel telemetry records jobs = 1, 2, 4 runs of the weighted
clusters workload, and every run's repairs were byte-identical to the
sequential baseline (the determinism contract, as checked data):

  $ grep -c '"name": "E16.parallel' baseline.json
  3

The session telemetry serves an update/query mix through the incremental
engine against cold runs per request: the cache must actually hit (> 0.5
rate, guarded by --check-json) and every answer must be byte-identical
to its cold counterpart — so together with the three parallel rows, four
identical flags:

  $ grep -c '"name": "E17.session' baseline.json
  1
  $ grep -A6 '"name": "E17.session' baseline.json | grep -oE '"(hits|misses)": [0-9]+'
  "hits": 40
  "misses": 6

The routing telemetry (E18) runs the Auto method against both decomposed
materializing engines: three all-direct FD rows (the widest must beat
decomposed enumeration by >= 10x, guarded by --check-json) and a mixed
suite that exercises all four tiers in one plan.  Every routing row's
Auto outcome must be byte-identical to the enumerate oracle — so with
the three parallel rows, the session row, the serve row (below), the
six cdcl rows (below) and the thirty-seven conformance rows (below),
fifty-two identical flags:

  $ grep -c '"name": "E18.routing' baseline.json
  4
  $ grep -c '"routed_direct": 0' baseline.json
  0
  [1]
  $ grep -A4 '"name": "E18.routing.mixed"' baseline.json | tail -3
        "routed_shifted": 1,
        "routed_disjunctive": 2,
        "routed_enumerate": 1,
  $ grep -c '"identical": "true"' baseline.json
  52

The scale telemetry (E19) pushes a generated FK+FD workload through the
columnar storage at the --scale size and a tenth of it: bulk load, full
|=_N check and Auto CQA wall-clocks with tuples/sec, the resident set,
and a small update batch checked both incrementally (probes seeded on
the delta atoms) and by a full re-check — the two must agree exactly
(delta_identical, guarded by --check-json; at n >= 100000 the checked-in
baseline must also show the >= 10x incremental speedup):

  $ grep -c '"name": "E19.scale' baseline.json
  2
  $ grep -oE '"name": "E19[^"]*"' baseline.json
  "name": "E19.scale.n3000"
  "name": "E19.scale.n30000"
  $ grep -c '"delta_identical": "true"' baseline.json
  2
  $ grep -c '"load_tps"' baseline.json
  2

The serve telemetry (E20) replays an identical update/query script from
--clients concurrent connections (default 8) against one in-process
server over a Unix socket: every reply must be byte-identical to a cold
single-session replay, and the process-global component cache must show
cross-session traffic — both guarded by --check-json:

  $ grep -oE '"name": "E20[^"]*"' baseline.json
  "name": "E20.serve.k6.c8"
  $ grep -oE '"clients": [0-9]+' baseline.json
  "clients": 8
  $ grep -c '"cross_hit_rate"' baseline.json
  1

The cdcl telemetry (E21) sweeps the combination-lock family — k free
choice pairs in front of an m-bit lock whose non-secret combinations are
all denied — through both search modes: the names, the four rows marked
hard (k >= 3, where chronological search re-refutes the lock inside
every enumeration branch while learned nogoods survive backtracking),
and a decision ratio per row.  Both modes must enumerate identical model
sets, and on every hard row cdcl must spend at most half the dpll
decisions — both guarded by --check-json:

  $ grep -oE '"name": "E21[^"]*"' baseline.json
  "name": "E21.lock.k1m2"
  "name": "E21.lock.k2m3"
  "name": "E21.lock.k3m4"
  "name": "E21.lock.k4m4"
  "name": "E21.lock.k6m5"
  "name": "E21.lock.k8m6"
  $ grep -c '"hard": "true"' baseline.json
  4
  $ grep -c '"decision_ratio"' baseline.json
  6

The conformance telemetry (E22) replays the full pinned suite — the
paper's Examples 4-13, the Franconi-Tessaris null-algebra equivalences
and the five generated scenario families — through every applicable
engine tier, one row per case with per-tier wall-clocks; every case
must answer through at least 4 tiers with byte-identical outcomes,
over at least 5 families and 20 cases (all guarded by --check-json):

  $ grep -c '"tiers": [0-9]' baseline.json
  37
  $ grep -oE '"family": "[^"]*"' baseline.json | sort -u
  "family": "cyclic_ric"
  "family": "fd_cluster"
  "family": "fk_chain"
  "family": "ft-null-algebra"
  "family": "nnc_ric"
  "family": "paper"
  "family": "session_stream"

The checked-in baselines all validate — the PR1 file under the original
schema, the PR2 file with the decomposition section, the PR3 file with the
budget counters:

  $ cqanull-bench --check-json ../../BENCH_PR1.json
  ../../BENCH_PR1.json: ok (10 micro rows, 4 solver rows)
  $ cqanull-bench --check-json ../../BENCH_PR2.json
  ../../BENCH_PR2.json: ok (12 micro rows, 4 solver rows, 4 decompose rows)
  $ cqanull-bench --check-json ../../BENCH_PR3.json
  ../../BENCH_PR3.json: ok (12 micro rows, 4 solver rows, 4 decompose rows, 4 budget rows)
  $ cqanull-bench --check-json ../../BENCH_PR4.json
  ../../BENCH_PR4.json: ok (12 micro rows, 4 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows)
  $ cqanull-bench --check-json ../../BENCH_PR5.json
  ../../BENCH_PR5.json: ok (12 micro rows, 4 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows)
  $ cqanull-bench --check-json ../../BENCH_PR6.json
  ../../BENCH_PR6.json: ok (12 micro rows, 4 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows, 4 routing rows)
  $ cqanull-bench --check-json ../../BENCH_PR7.json
  ../../BENCH_PR7.json: ok (12 micro rows, 4 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows, 4 routing rows, 2 scale rows)
  $ cqanull-bench --check-json ../../BENCH_PR8.json
  ../../BENCH_PR8.json: ok (12 micro rows, 4 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows, 4 routing rows, 2 scale rows, 1 serve rows)
  $ cqanull-bench --check-json ../../BENCH_PR9.json
  ../../BENCH_PR9.json: ok (12 micro rows, 6 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows, 4 routing rows, 2 scale rows, 1 serve rows, 6 cdcl rows)
  $ cqanull-bench --check-json ../../BENCH_PR10.json
  ../../BENCH_PR10.json: ok (12 micro rows, 6 solver rows, 4 decompose rows, 4 budget rows, 3 parallel rows, 1 session rows, 4 routing rows, 2 scale rows, 1 serve rows, 6 cdcl rows, 37 conform rows)

The committed PR7 baseline was recorded at --scale 1000000: its headline
row loads, checks and answers a million-tuple instance, and its 10^5 row
is the one the >= 10x incremental-check guard engages on:

  $ grep -oE '"name": "E19[^"]*"' ../../BENCH_PR7.json
  "name": "E19.scale.n100000"
  "name": "E19.scale.n1000000"

The committed PR8 baseline keeps the million-tuple scale rows and adds
the concurrent replay at 32 clients:

  $ grep -oE '"name": "E19[^"]*"' ../../BENCH_PR8.json
  "name": "E19.scale.n100000"
  "name": "E19.scale.n1000000"
  $ grep -oE '"name": "E20[^"]*"' ../../BENCH_PR8.json
  "name": "E20.serve.k6.c32"

The committed PR9 baseline keeps the full-scale rows and adds the lock
sweep; the solver runs are deterministic, so its decision counts hold
exactly at any quota:

  $ grep -oE '"name": "E20[^"]*"' ../../BENCH_PR9.json
  "name": "E20.serve.k6.c32"
  $ grep -cE '"name": "E21[^"]*"' ../../BENCH_PR9.json
  6

The committed PR10 baseline keeps the full-scale and 32-client rows and
adds the conformance replay — 37 cases, every one identical across
tiers:

  $ grep -oE '"name": "E20[^"]*"' ../../BENCH_PR10.json
  "name": "E20.serve.k6.c32"
  $ grep -c '"tiers": [0-9]' ../../BENCH_PR10.json
  37
  $ grep -c '"identical": "false"' ../../BENCH_PR10.json
  0
  [1]

The regression guard compares the E1/E2 micro rows of the two checked-in
baselines within a 10x tolerance:

  $ cqanull-bench --compare-json ../../BENCH_PR2.json ../../BENCH_PR3.json > compare.out
  $ tail -1 compare.out
  compare ok (3 guarded rows, tolerance 10x)

Across the schema bump the guard also covers the parallel section's jobs=1
wall-clock (both files must carry the section for it to engage):

  $ cqanull-bench --compare-json ../../BENCH_PR3.json ../../BENCH_PR4.json > compare34.out
  $ tail -1 compare34.out
  compare ok (3 guarded rows, tolerance 10x)

Across the /5 bump it additionally covers the session section's
incremental wall-clock, identical flag and hit rate (again only when both
files carry the section):

  $ cqanull-bench --compare-json ../../BENCH_PR4.json ../../BENCH_PR5.json > compare45.out
  $ tail -1 compare45.out
  compare ok (3 guarded rows, tolerance 10x)

Across the /6 bump it additionally covers the routing section — the auto
wall-clocks within tolerance, plus two outright contracts on the new
baseline: every routing row byte-identical to the enumerate oracle, and
an all-direct FD row at least 10x faster than decomposed enumeration
(again only when both files carry the section):

  $ cqanull-bench --compare-json ../../BENCH_PR5.json ../../BENCH_PR6.json > compare56.out
  $ tail -1 compare56.out
  compare ok (3 guarded rows, tolerance 10x)
  $ cqanull-bench --compare-json baseline.json baseline.json | grep -c '^routing E18'
  4

Across the /7 bump it additionally covers the scale section — the
load/check/cqa wall-clocks per shared row within tolerance, plus the
outright contracts on the new baseline (incremental check identical to
the full re-check; the >= 10x speedup at n >= 10^5 not lost):

  $ cqanull-bench --compare-json ../../BENCH_PR6.json ../../BENCH_PR7.json > compare67.out
  $ tail -1 compare67.out
  compare ok (3 guarded rows, tolerance 10x)
  $ cqanull-bench --compare-json baseline.json baseline.json | grep -c '^scale E19'
  6

Across the /8 bump it additionally covers the serve section — the p50
latency within tolerance, the request rate printed as data, plus the
outright contracts on the new baseline (concurrent replies identical to
the cold replay; the cache still crossing session boundaries):

  $ cqanull-bench --compare-json ../../BENCH_PR7.json ../../BENCH_PR8.json > compare78.out
  $ tail -1 compare78.out
  compare ok (3 guarded rows, tolerance 10x)
  $ cqanull-bench --compare-json baseline.json baseline.json | grep -c '^serve '
  2

Across the /9 bump it additionally covers the cdcl section — the decision
counts per shared lock workload within tolerance, plus the outright
contracts on the new baseline (both search modes still enumerating the
same model sets; the 2x decision advantage on the hard rows not lost).
The section guard engages only when both files carry it, so the PR8 ->
PR9 comparison stays on the older sections:

  $ cqanull-bench --compare-json ../../BENCH_PR8.json ../../BENCH_PR9.json > compare89.out
  $ tail -1 compare89.out
  compare ok (3 guarded rows, tolerance 10x)
  $ cqanull-bench --compare-json baseline.json baseline.json | grep -c '^cdcl '
  6

Across the /10 bump it additionally covers the conform section — the new
baseline must keep every conformance case identical across tiers and may
not drop cases.  The section guard engages only when both files carry
it, so the PR9 -> PR10 comparison stays on the older sections:

  $ cqanull-bench --compare-json ../../BENCH_PR9.json ../../BENCH_PR10.json > compare910.out
  $ tail -1 compare910.out
  compare ok (3 guarded rows, tolerance 10x)
  $ cqanull-bench --compare-json baseline.json baseline.json | grep '^conform '
  conform 37 -> 37 cases, all identical across tiers

Malformed input is rejected:

  $ echo '{"schema": "cqanull-bench/1", "micro": [' > broken.json
  $ cqanull-bench --check-json broken.json
  broken.json: expected a JSON value at offset 41
  [1]

An unknown schema version is rejected:

  $ echo '{"schema": "cqanull-bench/11", "tool": "x", "unit": "ns", "micro": [], "solver": []}' > badschema.json
  $ cqanull-bench --check-json badschema.json
  badschema.json: unknown schema "cqanull-bench/11"
  [1]

Schema drift around the parallel section is rejected in both directions — a
pre-/4 file must not carry the section, and a /4 file must populate it:

  $ echo '{"schema": "cqanull-bench/3", "tool": "x", "unit": "ns", "micro": [], "solver": [], "decompose": [], "budget": [], "parallel": []}' > drift.json
  $ cqanull-bench --check-json drift.json
  drift.json: section "parallel" requires schema cqanull-bench/4
  [1]

  $ echo '{"schema": "cqanull-bench/4", "tool": "x", "unit": "ns", "micro": [], "solver": [], "decompose": [], "budget": [], "parallel": []}' > empty.json
  $ cqanull-bench --check-json empty.json
  empty.json: empty parallel section
  [1]

Same in both directions for the session section new in /5:

  $ echo '{"schema": "cqanull-bench/4", "tool": "x", "unit": "ns", "micro": [], "solver": [], "decompose": [], "budget": [], "parallel": [{"name": "p", "k": 1, "weight": 1, "jobs": 1, "cores": 1, "repairs": 1, "wall_ms": 1.0, "identical": "true"}, {"name": "p4", "k": 1, "weight": 1, "jobs": 4, "cores": 1, "repairs": 1, "wall_ms": 1.0, "identical": "true"}], "session": []}' > drift5.json
  $ cqanull-bench --check-json drift5.json
  drift5.json: section "session" requires schema cqanull-bench/5
  [1]

  $ echo '{"schema": "cqanull-bench/5", "tool": "x", "unit": "ns", "micro": [], "solver": [], "decompose": [], "budget": [], "parallel": [{"name": "p", "k": 1, "weight": 1, "jobs": 1, "cores": 1, "repairs": 1, "wall_ms": 1.0, "identical": "true"}, {"name": "p4", "k": 1, "weight": 1, "jobs": 4, "cores": 1, "repairs": 1, "wall_ms": 1.0, "identical": "true"}], "session": []}' > empty5.json
  $ cqanull-bench --check-json empty5.json
  empty5.json: empty session section
  [1]

Same in both directions for the routing section new in /6, and the fast-path
guard rejects a /6 baseline whose all-direct FD row no longer beats
decomposed enumeration by 10x:

  $ echo '{"schema": "cqanull-bench/5", "routing": [], "tool": "x", "unit": "ns", "micro": [], "solver": [], "decompose": [], "budget": [], "parallel": [{"name": "p", "k": 1, "weight": 1, "jobs": 1, "cores": 1, "repairs": 1, "wall_ms": 1.0, "identical": "true"}, {"name": "p4", "k": 1, "weight": 1, "jobs": 4, "cores": 1, "repairs": 1, "wall_ms": 1.0, "identical": "true"}], "session": [{"name": "s", "k": 1, "deltas": 1, "requests": 2, "hits": 2, "misses": 0, "evictions": 0, "hit_rate": 1.0, "incremental_ms": 1.0, "cold_ms": 1.0, "identical": "true"}]}' > drift6.json
  $ cqanull-bench --check-json drift6.json
  drift6.json: section "routing" requires schema cqanull-bench/6
  [1]

  $ sed 's/"speedup_vs_enumerate": [0-9.]*/"speedup_vs_enumerate": 2.0/g' baseline.json > slow6.json
  $ cqanull-bench --check-json slow6.json
  slow6.json: no all-direct routing row beats decomposed enumeration by >= 10x
  [1]

Same in both directions for the scale section new in /7, and its two data
contracts: a baseline whose incremental check diverged from the full
re-check is rejected, as is one whose 10^5-row speedup fell below 10x:

  $ sed -e 's|"schema": "cqanull-bench/10"|"schema": "cqanull-bench/6"|' -e 's/"engine": "cdcl"/"engine": "counter"/' baseline.json > drift7.json
  $ cqanull-bench --check-json drift7.json
  drift7.json: section "scale" requires schema cqanull-bench/7
  [1]

  $ sed 's/"delta_identical": "true"/"delta_identical": "false"/' baseline.json > diverged7.json
  $ cqanull-bench --check-json diverged7.json
  diverged7.json: incremental check in "E19.scale.n3000" diverged from the full re-check
  [1]

  $ sed 's/"delta_speedup": [0-9.]*/"delta_speedup": 2.0/g' ../../BENCH_PR7.json > slow7.json
  $ cqanull-bench --check-json slow7.json
  slow7.json: delta speedup 2.00x below 10x at n=100000 in "E19.scale.n100000"
  [1]

Same in both directions for the serve section new in /8, and its sharing
contract: a baseline whose process-global cache shows no cross-session
hits is rejected — a server that silently degraded to per-connection
caches would still answer correctly, but it is not the system the schema
documents:

  $ sed -e 's|"schema": "cqanull-bench/10"|"schema": "cqanull-bench/7"|' -e 's/"engine": "cdcl"/"engine": "counter"/' baseline.json > drift8.json
  $ cqanull-bench --check-json drift8.json
  drift8.json: section "serve" requires schema cqanull-bench/8
  [1]

  $ sed 's/"cross_hits": [0-9]*/"cross_hits": 0/' baseline.json > nocross8.json
  $ cqanull-bench --check-json nocross8.json
  nocross8.json: no cross-session cache hits in "E20.serve.k6.c8" — the global cache is not shared
  [1]

Same in both directions for the cdcl section new in /9.  A solver row
under the learning engine is itself /9-only, so merely downgrading the
schema trips the engine whitelist; with those rows re-labelled the
section membership check is what rejects the file:

  $ sed 's|"schema": "cqanull-bench/10"|"schema": "cqanull-bench/8"|' baseline.json > cdclengine.json
  $ cqanull-bench --check-json cdclengine.json
  cdclengine.json: unknown engine "cdcl"
  [1]

  $ sed -e 's|"schema": "cqanull-bench/10"|"schema": "cqanull-bench/8"|' -e 's/"engine": "cdcl"/"engine": "counter"/' baseline.json > drift9.json
  $ cqanull-bench --check-json drift9.json
  drift9.json: section "cdcl" requires schema cqanull-bench/9
  [1]

And the /9 data contract: a baseline on which learning lost the 2x
decision advantage over chronological search on a hard lock row is
rejected — the sweep exists to keep that perf win checked in:

  $ sed 's/"cdcl_decisions": [0-9]*/"cdcl_decisions": 999/' baseline.json > slow9.json
  $ cqanull-bench --check-json slow9.json
  slow9.json: cdcl decisions 999 not <= 0.5x dpll decisions 71 on hard row "E21.lock.k3m4"
  [1]

Same in both directions for the conform section new in /10:

  $ sed -e 's|"schema": "cqanull-bench/10"|"schema": "cqanull-bench/9"|' baseline.json > drift10.json
  $ cqanull-bench --check-json drift10.json
  drift10.json: section "conform" requires schema cqanull-bench/10
  [1]

And the /10 data contract: a baseline with a conformance case whose
tiers diverged is rejected — cross-engine agreement on the pinned
corpus is checked data, not prose (the conform section is the last in
the file, so the flip below touches only its rows):

  $ sed '/^  "conform": \[/,$ s/"identical": "true"/"identical": "false"/' baseline.json > badconform.json
  $ cqanull-bench --check-json badconform.json
  badconform.json: conformance case "ex4_sat" failed its cross-tier check
  [1]
