The socket server: `cqanull serve` owns one read-only base database and a
process-global component cache; every connection gets its own session with
an O(delta) overlay.  `cqanull connect` is a lock-step scripted client for
the framed wire (each reply is terminated by a '.' line the client strips).
The socket lives under /tmp because sun_path is short; --jobs is pinned so
the server banner is machine-independent:

  $ DIR=$(mktemp -d /tmp/cqanull-serve-XXXXXX)
  $ cqanull serve example.cqa --socket "$DIR/s.sock" --jobs 2 > server.log 2>&1 &

The first client mixes reads and updates.  Its insert lands in its own
session overlay, never in the shared base; `stats` shows its session
counters plus the server's global cache line:

  $ cqanull connect --socket "$DIR/s.sock" --wait 5000 << 'EOF'
  > check
  > cqa students
  > insert Student(45, sue)
  > cqa students
  > repairs
  > stats
  > quit
  > EOF
  ric violated by Course(34, c18) under [C=c18, I=34]
  1 violation(s)
  query students: {(I, N) | Student(I, N)}
  consistent: {(21, ann), (45, paul)}
  possible:   {(21, ann), (34, null), (45, paul)}
  standard:   {(21, ann), (45, paul)}
  repairs:    2
  ok: 5 tuples, 1 violation(s)
  query students: {(I, N) | Student(I, N)}
  consistent: {(21, ann), (45, paul), (45, sue)}
  possible:   {(21, ann), (34, null), (45, paul), (45, sue)}
  standard:   {(21, ann), (45, paul), (45, sue)}
  repairs:    2
  repair 1: {Course(21, c15), Student(21, ann), Student(45, paul), Student(45, sue)}
    delta: {Course(34, c18)}
  repair 2: {Course(21, c15), Course(34, c18), Student(21, ann), Student(34, null), Student(45, paul), Student(45, sue)}
    delta: {Student(34, null)}
  2 repair(s)
  session: deltas=1 requests=3 plan.reused=0 plan.rebuilt=2 ics.reused=0 ics.fast=0 ics.rescanned=1 cache.hits=2 cache.misses=1 cache.evictions=0 cache.entries=1
  cache: sessions=1 entries=1/4096 hits=2 misses=1 evictions=0 cross.hits=0 cross.rate=0.00

A second client starts from the pristine base — the first client's insert
is invisible — and its `cqa` is answered from the component the first
client already solved: the process-global cache serving across sessions.
`shutdown` stops the whole server (where `quit` only ended a connection):

  $ cqanull connect --socket "$DIR/s.sock" --wait 5000 << 'EOF'
  > cqa students
  > shutdown
  > EOF
  query students: {(I, N) | Student(I, N)}
  consistent: {(21, ann), (45, paul)}
  possible:   {(21, ann), (34, null), (45, paul)}
  standard:   {(21, ann), (45, paul)}
  repairs:    2
  shutting down

  $ wait

The server's telemetry confirms the sharing: two sessions attached to one
cache, and the second client's probe is the cross-session hit:

  $ sed "s|$DIR|DIR|" server.log
  serving example.cqa on DIR/s.sock: 4 tuples, 1 constraints, 2 queries, 1 violation(s) (jobs=2, cache-capacity=4096)
  server stopped: 2 connection(s), 9 request(s)
  cache: sessions=2 entries=1/4096 hits=3 misses=1 evictions=0 cross.hits=1 cross.rate=0.33

  $ rm -rf "$DIR"

Exactly one of --socket and --port must be given, to both serve and
connect:

  $ cqanull serve example.cqa
  error: pass exactly one of --socket PATH or --port N
  [2]
  $ cqanull serve example.cqa --socket a.sock --port 7
  error: pass exactly one of --socket PATH or --port N
  [2]

A client that cannot reach its server reports the failure instead of
hanging:

  $ cqanull connect --socket nosuch.sock < /dev/null
  error: cannot connect: No such file or directory
  [1]
