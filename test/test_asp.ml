(* Tests for the ASP substrate: grounder, stable-model solver (checked
   against a brute-force implementation of the Gelfond-Lifschitz semantics),
   head-cycle-freeness and the shift transformation (Section 6), and the
   external-solver output parsers. *)

module S = Asp.Syntax
module Ground = Asp.Ground
module Grounder = Asp.Grounder
module Solver = Asp.Solver
module Hcf = Asp.Hcf
module Shift = Asp.Shift
module Printer = Asp.Printer
module Ext = Asp.Extsolver

let a0 name = S.atom name []
let models_of p = Solver.stable_models_atoms (Grounder.ground p)

let gatom name = { Ground.gpred = name; gargs = [] }

let model_names ms =
  List.map (List.map (fun (g : Ground.gatom) -> Fmt.str "%a" Ground.pp_gatom g)) ms

let check_models name expected p =
  Alcotest.(check (list (list string)))
    name
    (List.sort compare (List.map (List.sort compare) expected))
    (List.sort compare (model_names (models_of p)))

(* ------------------------------------------------------------------ *)
(* Basic propositional programs *)

let test_facts () =
  check_models "facts only" [ [ "a"; "b" ] ] [ S.fact (a0 "a"); S.fact (a0 "b") ]

let test_even_negation () =
  (* a :- not b.  b :- not a. *)
  let p =
    [
      S.rule [ a0 "a" ] ~body_neg:[ a0 "b" ];
      S.rule [ a0 "b" ] ~body_neg:[ a0 "a" ];
    ]
  in
  check_models "two stable models" [ [ "a" ]; [ "b" ] ] p

let test_odd_negation_no_model () =
  (* a :- not a. *)
  check_models "no stable model" [] [ S.rule [ a0 "a" ] ~body_neg:[ a0 "a" ] ]

let test_disjunction_minimal () =
  (* a v b. : minimality rules out {a,b} *)
  check_models "a v b" [ [ "a" ]; [ "b" ] ] [ S.rule [ a0 "a"; a0 "b" ] ]

let test_disjunction_with_dependency () =
  (* a v b.  a :- b.  : only {a} is stable *)
  let p = [ S.rule [ a0 "a"; a0 "b" ]; S.rule [ a0 "a" ] ~body_pos:[ a0 "b" ] ] in
  check_models "only {a}" [ [ "a" ] ] p

let test_constraint () =
  (* a v b. :- a. *)
  let p = [ S.rule [ a0 "a"; a0 "b" ]; S.constraint_ ~body_pos:[ a0 "a" ] () ] in
  check_models "constraint prunes" [ [ "b" ] ] p

let test_constraint_via_negation () =
  (* a :- not b. b :- not a. :- b. *)
  let p =
    [
      S.rule [ a0 "a" ] ~body_neg:[ a0 "b" ];
      S.rule [ a0 "b" ] ~body_neg:[ a0 "a" ];
      S.constraint_ ~body_pos:[ a0 "b" ] ();
    ]
  in
  check_models "kills b-model" [ [ "a" ] ] p

let test_non_hcf_loop () =
  (* a v b. a :- b. b :- a. : non-HCF; the single stable model is {a,b} *)
  let p =
    [
      S.rule [ a0 "a"; a0 "b" ];
      S.rule [ a0 "a" ] ~body_pos:[ a0 "b" ];
      S.rule [ a0 "b" ] ~body_pos:[ a0 "a" ];
    ]
  in
  check_models "non-HCF {a,b}" [ [ "a"; "b" ] ] p;
  let g = Grounder.ground p in
  Alcotest.(check bool) "detected non-HCF" false (Hcf.is_hcf g);
  (* shifting a non-HCF program is unsound: it loses the stable model *)
  let shifted = Shift.ground g in
  Alcotest.(check int) "shift loses the model" 0
    (List.length (Solver.stable_models shifted))

let test_shift_syntactic () =
  (* the non-ground shift of Section 6: p(X) v q(X) :- r(X). becomes two
     rules with the other disjunct negated *)
  let r =
    S.rule
      [ S.atom "p" [ S.var "X" ]; S.atom "q" [ S.var "X" ] ]
      ~body_pos:[ S.atom "r" [ S.var "X" ] ]
  in
  let shifted = Shift.program [ r ] in
  Alcotest.(check int) "two rules" 2 (List.length shifted);
  List.iter
    (fun (r' : S.rule) ->
      Alcotest.(check int) "single head" 1 (List.length r'.S.head);
      Alcotest.(check int) "one extra negation" 1 (List.length r'.S.body_neg))
    shifted;
  (* facts and constraints pass through unchanged *)
  let fact = S.fact (a0 "a") and constr = S.constraint_ ~body_pos:[ a0 "a" ] () in
  Alcotest.(check int) "non-disjunctive untouched" 2
    (List.length (Shift.program [ fact; constr ]));
  (* semantic agreement with the ground shift on an HCF program *)
  let p = [ S.fact (S.atom "r" [ S.cnum 1 ]); r ] in
  let direct = model_names (models_of p) in
  let via_syntactic = model_names (models_of (Shift.program p)) in
  Alcotest.(check (list (list string))) "same models"
    (List.sort compare direct)
    (List.sort compare via_syntactic)

let test_hcf_shift_equivalence () =
  (* a v b. :- a, b.  plus c :- a. : HCF, shift preserves the models *)
  let p =
    [
      S.rule [ a0 "a"; a0 "b" ];
      S.constraint_ ~body_pos:[ a0 "a"; a0 "b" ] ();
      S.rule [ a0 "c" ] ~body_pos:[ a0 "a" ];
    ]
  in
  let g = Grounder.ground p in
  Alcotest.(check bool) "HCF" true (Hcf.is_hcf g);
  let direct = Solver.stable_models_atoms g in
  let shifted = Solver.stable_models_atoms (Shift.ground g) in
  Alcotest.(check (list (list string))) "same models"
    (List.sort compare (model_names direct))
    (List.sort compare (model_names shifted))

(* ------------------------------------------------------------------ *)
(* Grounding with variables and built-ins *)

let test_grounding_join () =
  (* p(1). p(2). q(X,Y) :- p(X), p(Y), X != Y. *)
  let p =
    [
      S.fact (S.atom "p" [ S.cnum 1 ]);
      S.fact (S.atom "p" [ S.cnum 2 ]);
      S.rule
        [ S.atom "q" [ S.var "X"; S.var "Y" ] ]
        ~body_pos:[ S.atom "p" [ S.var "X" ]; S.atom "p" [ S.var "Y" ] ]
        ~body_builtin:[ S.builtin S.Neq (S.var "X") (S.var "Y") ];
    ]
  in
  check_models "join with disequality"
    [ [ "p(1)"; "p(2)"; "q(1,2)"; "q(2,1)" ] ]
    p

let test_grounding_negation_never_derivable () =
  (* r(X) :- p(X), not q(X). with q never derivable: the literal is dropped *)
  let p =
    [
      S.fact (S.atom "p" [ S.cnum 1 ]);
      S.rule
        [ S.atom "r" [ S.var "X" ] ]
        ~body_pos:[ S.atom "p" [ S.var "X" ] ]
        ~body_neg:[ S.atom "q" [ S.var "X" ] ];
    ]
  in
  check_models "not-q trivially true" [ [ "p(1)"; "r(1)" ] ] p

let test_grounding_stratified () =
  (* reach via edges; classic transitive closure *)
  let edge a b = S.fact (S.atom "edge" [ S.cnum a; S.cnum b ]) in
  let p =
    [
      edge 1 2;
      edge 2 3;
      S.rule
        [ S.atom "reach" [ S.var "X"; S.var "Y" ] ]
        ~body_pos:[ S.atom "edge" [ S.var "X"; S.var "Y" ] ];
      S.rule
        [ S.atom "reach" [ S.var "X"; S.var "Z" ] ]
        ~body_pos:
          [ S.atom "reach" [ S.var "X"; S.var "Y" ]; S.atom "edge" [ S.var "Y"; S.var "Z" ] ];
    ]
  in
  check_models "transitive closure"
    [ [ "edge(1,2)"; "edge(2,3)"; "reach(1,2)"; "reach(1,3)"; "reach(2,3)" ] ]
    p

let test_safety_rejected () =
  let p = [ S.rule [ S.atom "p" [ S.var "X" ] ] ] in
  Alcotest.(check bool) "unsafe rule raises" true
    (try
       ignore (Grounder.ground p);
       false
     with Grounder.Unsafe _ -> true)

let test_grounding_stats () =
  let g = Grounder.ground [ S.fact (a0 "a") ] in
  Alcotest.(check int) "one atom" 1 (Ground.atom_count g);
  Alcotest.(check int) "one rule" 1 (Ground.rule_count g)

(* ------------------------------------------------------------------ *)
(* Brute-force reference for the Gelfond-Lifschitz semantics *)

let subsets l =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] l

let atom_mem a m = List.exists (S.equal_atom a) m

(* classical satisfaction of a propositional rule *)
let rule_satisfied m (r : S.rule) =
  List.exists (fun h -> atom_mem h m) r.S.head
  || List.exists (fun p -> not (atom_mem p m)) r.S.body_pos
  || List.exists (fun x -> atom_mem x m) r.S.body_neg

let brute_stable (p : S.program) =
  let atoms =
    List.concat_map (fun (r : S.rule) -> r.S.head @ r.S.body_pos @ r.S.body_neg) p
    |> List.sort_uniq S.compare_atom
  in
  let is_model rules m = List.for_all (rule_satisfied m) rules in
  let gl_reduct m =
    List.filter_map
      (fun (r : S.rule) ->
        if List.exists (fun x -> atom_mem x m) r.S.body_neg then None
        else Some { r with S.body_neg = [] })
      p
  in
  let stable m =
    is_model p m
    &&
    let red = gl_reduct m in
    not
      (List.exists
         (fun m' ->
           List.length m' < List.length m
           && List.for_all (fun a -> atom_mem a m) m'
           && is_model red m')
         (subsets m))
  in
  subsets atoms |> List.filter stable
  |> List.map (fun m ->
         List.sort compare (List.map (fun a -> Fmt.str "%a" S.pp_atom a) m))
  |> List.sort compare

let rule_gen =
  QCheck.Gen.(
    let atom_gen = map a0 (oneofl [ "a"; "b"; "c"; "d"; "e" ]) in
    let atoms n = list_size (int_range 0 n) atom_gen in
    let* head = atoms 2 in
    let* pos = atoms 2 in
    let* neg = atoms 2 in
    return (S.rule head ~body_pos:pos ~body_neg:neg))

let program_gen = QCheck.Gen.(list_size (int_range 1 6) rule_gen)

let prop_solver_matches_bruteforce =
  QCheck.Test.make ~name:"solver = brute-force Gelfond-Lifschitz" ~count:300
    (QCheck.make
       ~print:(fun p -> Fmt.str "%a" S.pp_program p)
       program_gen)
    (fun p ->
      let brute = brute_stable p in
      let solver =
        List.sort compare (List.map (List.sort compare) (model_names (models_of p)))
      in
      brute = solver)

let prop_shift_preserves_hcf_models =
  QCheck.Test.make ~name:"shift preserves stable models of HCF programs" ~count:300
    (QCheck.make
       ~print:(fun p -> Fmt.str "%a" S.pp_program p)
       program_gen)
    (fun p ->
      let g = Grounder.ground p in
      QCheck.assume (Hcf.is_hcf g);
      let direct = List.sort compare (model_names (Solver.stable_models_atoms g)) in
      let shifted =
        List.sort compare (model_names (Solver.stable_models_atoms (Shift.ground g)))
      in
      direct = shifted)

let prop_stable_models_are_models =
  QCheck.Test.make ~name:"stable models satisfy the program" ~count:300
    (QCheck.make
       ~print:(fun p -> Fmt.str "%a" S.pp_program p)
       program_gen)
    (fun p ->
      models_of p
      |> List.for_all (fun m ->
             let m = List.map (fun (ga : Ground.gatom) -> a0 ga.Ground.gpred) m in
             List.for_all (rule_satisfied m) p))

let prop_minimality =
  QCheck.Test.make ~name:"no stable model strictly contains another" ~count:300
    (QCheck.make
       ~print:(fun p -> Fmt.str "%a" S.pp_program p)
       program_gen)
    (fun p ->
      (* stable models form an antichain under set inclusion *)
      let ms = List.map (List.map (fun (g : Ground.gatom) -> g.Ground.gpred)) (models_of p) in
      List.for_all
        (fun m1 ->
          List.for_all
            (fun m2 ->
              m1 = m2
              || not (List.for_all (fun x -> List.mem x m2) m1)
              || not (List.length m1 < List.length m2))
            ms)
        ms)

(* ------------------------------------------------------------------ *)
(* Counter-based engine vs the kept-around sweep-based reference, on
   random ground disjunctive programs built directly at the Ground layer
   (so duplicate literals, empty heads/bodies, and unused atoms are all in
   scope — shapes the syntax-level generator cannot produce). *)

let ground_program_gen =
  QCheck.Gen.(
    let* n_atoms = int_range 1 5 in
    let* n_rules = int_range 1 7 in
    let atom = int_range 0 (n_atoms - 1) in
    let atoms k = list_size (int_range 0 k) atom in
    let* rules =
      list_repeat n_rules
        (let* h = atoms 2 in
         let* p = atoms 2 in
         let* ng = atoms 2 in
         return (h, p, ng))
    in
    return (n_atoms, rules))

let build_ground (n_atoms, rules) =
  let g = Ground.create () in
  for i = 0 to n_atoms - 1 do
    ignore (Ground.intern g { Ground.gpred = Printf.sprintf "a%d" i; gargs = [] })
  done;
  List.iter
    (fun (h, p, ng) ->
      Ground.add_rule g
        {
          Ground.ghead = Array.of_list h;
          gpos = Array.of_list p;
          gneg = Array.of_list ng;
        })
    rules;
  g

let prop_counter_engine_matches_naive =
  QCheck.Test.make
    ~name:"counter-based solver = sweep-based reference (random ground programs)"
    ~count:1000
    (QCheck.make
       ~print:(fun gp -> Fmt.str "%a" Ground.pp (build_ground gp))
       ground_program_gen)
    (fun gp ->
      let g = build_ground gp in
      let s_counter = Solver.new_stats () in
      let s_naive = Solver.new_stats () in
      (* pinned to `Dpll: the candidate-count invariant below is specific to
         the chronological engine (CDCL differentials live in test_cdcl) *)
      let m_counter = Solver.stable_models ~search:`Dpll ~stats:s_counter g in
      let m_naive = Solver.stable_models_naive ~stats:s_naive g in
      let nonneg (s : Solver.stats) =
        s.Solver.decisions >= 0 && s.Solver.propagations >= 0
        && s.Solver.candidates >= 0 && s.Solver.minimality_checks >= 0
        && s.Solver.queue_pushes >= 0 && s.Solver.rules_touched >= 0
      in
      (* a second run accumulating into the same record only grows it *)
      let d0 = s_counter.Solver.decisions
      and p0 = s_counter.Solver.propagations
      and q0 = s_counter.Solver.queue_pushes
      and r0 = s_counter.Solver.rules_touched in
      ignore (Solver.stable_models ~search:`Dpll ~stats:s_counter g);
      m_counter = m_naive
      && List.for_all (Solver.is_stable_model g) m_counter
      && nonneg s_counter && nonneg s_naive
      && s_naive.Solver.queue_pushes = 0
      && s_counter.Solver.candidates >= 2 * List.length m_counter
      && s_counter.Solver.decisions >= d0
      && s_counter.Solver.propagations >= p0
      && s_counter.Solver.queue_pushes >= q0
      && s_counter.Solver.rules_touched >= r0)

let prop_counter_engine_support_ablation =
  QCheck.Test.make
    ~name:"counter-based solver: support propagation does not change models"
    ~count:300
    (QCheck.make
       ~print:(fun gp -> Fmt.str "%a" Ground.pp (build_ground gp))
       ground_program_gen)
    (fun gp ->
      let g = build_ground gp in
      Solver.stable_models ~search:`Dpll g
      = Solver.stable_models ~search:`Dpll ~support_propagation:false g)

(* ------------------------------------------------------------------ *)
(* is_stable_model *)

let test_is_stable_model () =
  let p = [ S.rule [ a0 "a"; a0 "b" ] ] in
  let g = Grounder.ground p in
  let id name = Option.get (Ground.find g (gatom name)) in
  Alcotest.(check bool) "{a} stable" true (Solver.is_stable_model g [ id "a" ]);
  Alcotest.(check bool) "{a,b} not stable" false
    (Solver.is_stable_model g (List.sort compare [ id "a"; id "b" ]));
  Alcotest.(check bool) "{} not a model" false (Solver.is_stable_model g [])

(* ------------------------------------------------------------------ *)
(* Budgets and limits *)

let big_choice_program n =
  (* n independent binary choices: 2^n stable models *)
  List.concat
    (List.init n (fun i ->
         let a = a0 (Printf.sprintf "a%d" i) and b = a0 (Printf.sprintf "b%d" i) in
         [ S.rule [ a ] ~body_neg:[ b ]; S.rule [ b ] ~body_neg:[ a ] ]))

let test_limit () =
  let g = Grounder.ground (big_choice_program 4) in
  Alcotest.(check int) "all models" 16 (List.length (Solver.stable_models g));
  Alcotest.(check int) "limited to 3" 3 (List.length (Solver.stable_models ~limit:3 g))

let test_budget_exceeded () =
  let g = Grounder.ground (big_choice_program 10) in
  Alcotest.(check bool) "budget raises" true
    (try
       ignore (Solver.stable_models ~max_decisions:5 g);
       false
     with Solver.Budget_exceeded 5 -> true)

let test_constants_in_rules () =
  (* heads may carry constants; builtins may compare against constants *)
  let p =
    [
      S.fact (S.atom "p" [ S.cnum 1 ]);
      S.fact (S.atom "p" [ S.cnum 5 ]);
      S.rule
        [ S.atom "big" [ S.var "X" ] ]
        ~body_pos:[ S.atom "p" [ S.var "X" ] ]
        ~body_builtin:[ S.builtin S.Gt (S.var "X") (S.cnum 3) ];
      S.rule [ S.atom "marker" [ S.csym "hit" ] ] ~body_pos:[ S.atom "big" [ S.cnum 5 ] ];
    ]
  in
  check_models "constants flow" [ [ "big(5)"; "marker(hit)"; "p(1)"; "p(5)" ] ] p

let test_num_sym_ordering () =
  (* DLV-style total order: numbers before symbols *)
  Alcotest.(check bool) "1 < a" true (S.eval_builtin S.Lt (S.Num 1) (S.Sym "a"));
  Alcotest.(check bool) "a >= 1" true (S.eval_builtin S.Geq (S.Sym "a") (S.Num 1));
  Alcotest.(check bool) "sym order" true (S.eval_builtin S.Lt (S.Sym "a") (S.Sym "b"))

(* ------------------------------------------------------------------ *)
(* Printer and external-solver parsing *)

let test_printer () =
  let r =
    S.rule
      [ S.atom "p" [ S.var "x" ]; S.atom "q" [ S.var "x" ] ]
      ~body_pos:[ S.atom "r" [ S.var "x"; S.csym "Ann" ] ]
      ~body_neg:[ S.atom "s" [ S.var "x" ] ]
      ~body_builtin:[ S.builtin S.Neq (S.var "x") (S.cnum 3) ]
  in
  Alcotest.(check string) "dlv dialect"
    "p(X) v q(X) :- r(X,\"Ann\"), not s(X), X != 3." (Printer.rule_to_string Printer.Dlv r);
  Alcotest.(check string) "clingo dialect"
    "p(X) | q(X) :- r(X,\"Ann\"), not s(X), X != 3."
    (Printer.rule_to_string Printer.Clingo r);
  Alcotest.(check string) "fact" "a." (Printer.rule_to_string Printer.Dlv (S.fact (a0 "a")));
  Alcotest.(check string) "constraint" ":- a."
    (Printer.rule_to_string Printer.Dlv (S.constraint_ ~body_pos:[ a0 "a" ] ()))

let test_parse_atom () =
  Alcotest.(check bool) "nullary" true
    (Ext.parse_atom "a" = Some { Ground.gpred = "a"; gargs = [] });
  Alcotest.(check bool) "args" true
    (Ext.parse_atom "p(1,x)"
    = Some { Ground.gpred = "p"; gargs = [ S.Num 1; S.Sym "x" ] });
  Alcotest.(check bool) "quoted" true
    (Ext.parse_atom "p(\"a,b\")" = Some { Ground.gpred = "p"; gargs = [ S.Sym "a,b" ] });
  Alcotest.(check bool) "malformed" true (Ext.parse_atom "p(" = None)

let test_parse_dlv () =
  let out = "{a, p(1)}\n{b}\n" in
  let ms = Ext.parse_dlv_output out in
  Alcotest.(check int) "two models" 2 (List.length ms);
  Alcotest.(check int) "first has 2 atoms" 2 (List.length (List.hd ms))

let test_parse_clingo () =
  let out = "clingo version 5\nSolving...\nAnswer: 1\na p(1)\nAnswer: 2\nb\nSATISFIABLE\n" in
  let ms = Ext.parse_clingo_output out in
  Alcotest.(check int) "two models" 2 (List.length ms);
  Alcotest.(check int) "second has 1 atom" 1 (List.length (List.nth ms 1))

let test_aspparse_basic () =
  let p = Asp.Aspparse.parse
    {|
    % a comment
    p(1). q(a, "B c").
    r(X) :- p(X), not q(X, X), X != 2.
    a v b :- r(1).
    :- a, b.
    |}
  in
  Alcotest.(check int) "five rules" 5 (List.length p);
  Alcotest.(check bool) "fact parsed" true (S.is_fact (List.hd p));
  Alcotest.(check bool) "constraint parsed" true (S.is_constraint (List.nth p 4));
  Alcotest.(check bool) "disjunctive head" true (S.is_disjunctive (List.nth p 3))

let test_aspparse_dialects () =
  (* clingo-style '|' and ';' disjunction and '<>' disequality *)
  let p = Asp.Aspparse.parse "a | b ; c.
d :- e, X <> Y.
" in
  Alcotest.(check int) "head width" 3 (List.length (List.hd p).S.head);
  match (List.nth p 1).S.body_builtin with
  | [ b ] -> Alcotest.(check bool) "neq" true (b.S.op = S.Neq)
  | _ -> Alcotest.fail "expected one builtin"

let test_aspparse_errors () =
  let bad s =
    match Asp.Aspparse.parse s with
    | _ -> false
    | exception Asp.Aspparse.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing dot" true (bad "a :- b");
  Alcotest.(check bool) "dangling operator" true (bad "a :- X !.");
  Alcotest.(check bool) "unterminated string" true (bad {|p("x).|})

let models_set p =
  List.sort compare (List.map (List.sort compare) (model_names (models_of p)))

let prop_print_parse_roundtrip_dlv =
  QCheck.Test.make ~name:"print/parse round-trip preserves stable models (dlv)"
    ~count:200
    (QCheck.make ~print:(fun p -> Fmt.str "%a" S.pp_program p) program_gen)
    (fun p ->
      let p' = Asp.Aspparse.roundtrip Printer.Dlv p in
      models_set p = models_set p')

let prop_print_parse_roundtrip_clingo =
  QCheck.Test.make ~name:"print/parse round-trip preserves stable models (clingo)"
    ~count:200
    (QCheck.make ~print:(fun p -> Fmt.str "%a" S.pp_program p) program_gen)
    (fun p ->
      let p' = Asp.Aspparse.roundtrip Printer.Clingo p in
      models_set p = models_set p')

let test_cautious_brave () =
  (* a v b. c :- a. c :- b. : cautious = {c}, brave = {a, b, c} *)
  let p =
    [
      S.rule [ a0 "a"; a0 "b" ];
      S.rule [ a0 "c" ] ~body_pos:[ a0 "a" ];
      S.rule [ a0 "c" ] ~body_pos:[ a0 "b" ];
    ]
  in
  let g = Grounder.ground p in
  let name i = Fmt.str "%a" Ground.pp_gatom (Ground.atom_of g i) in
  Alcotest.(check (list string)) "cautious" [ "c" ]
    (List.map name (Solver.cautious g));
  Alcotest.(check (list string)) "brave" [ "a"; "b"; "c" ]
    (List.sort compare (List.map name (Solver.brave g)))

(* End-to-end external-solver path: a fake dlv binary on PATH that answers
   with canned answer sets. *)
let test_ext_solve_fake_dlv () =
  let dir = Filename.temp_file "fakedlv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let script = Filename.concat dir "dlv" in
  Out_channel.with_open_text script (fun oc ->
      output_string oc "#!/bin/sh
printf '{a, p(1)}\n{b}\n'
");
  Unix.chmod script 0o755;
  let old_path = try Sys.getenv "PATH" with Not_found -> "" in
  Unix.putenv "PATH" (dir ^ ":" ^ old_path);
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PATH" old_path)
    (fun () ->
      (match Ext.detect () with
      | Ext.Dlv p ->
          Alcotest.(check bool) "fake dlv detected" true
            (String.length p > 0)
      | _ -> Alcotest.fail "expected dlv backend");
      let models = Ext.solve ~backend:(Ext.Dlv script) [ S.fact (a0 "ignored") ] in
      Alcotest.(check int) "two canned models" 2 (List.length models);
      Alcotest.(check bool) "first model has p(1)" true
        (List.exists
           (fun m ->
             List.exists
               (fun (g : Ground.gatom) ->
                 g.Ground.gpred = "p" && g.Ground.gargs = [ S.Num 1 ])
               m)
           models))

(* A failing external binary falls back to the internal solver. *)
let test_ext_solve_broken_dlv () =
  let dir = Filename.temp_file "brokendlv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let script = Filename.concat dir "dlv" in
  Out_channel.with_open_text script (fun oc -> output_string oc "#!/bin/sh
exit 3
");
  Unix.chmod script 0o755;
  let models = Ext.solve ~backend:(Ext.Dlv script) [ S.rule [ a0 "a"; a0 "b" ] ] in
  Alcotest.(check int) "fallback produced both models" 2 (List.length models)

let test_ext_solve_fallback () =
  (* no dlv/clingo in the container: Internal backend must kick in *)
  let ms = Ext.solve ~backend:Ext.Internal [ S.rule [ a0 "a"; a0 "b" ] ] in
  Alcotest.(check int) "two answer sets" 2 (List.length ms)

(* ------------------------------------------------------------------ *)

let test_var_dedup_order () =
  (* atom/rule variable lists deduplicate but keep first-occurrence order
     (the grounder's substitution ordering depends on it) *)
  let a =
    S.atom "P" [ S.Var "y"; S.Var "x"; S.Var "y"; S.Const (S.Sym "c"); S.Var "x" ]
  in
  Alcotest.(check (list string)) "atom vars" [ "y"; "x" ] (S.atom_vars a);
  let r = S.rule ~body_pos:[ S.atom "Q" [ S.Var "z"; S.Var "x" ] ] [ a ] in
  Alcotest.(check (list string)) "rule vars" [ "y"; "x"; "z" ] (S.rule_vars r);
  (* a wide duplicate-heavy list: the Hashtbl-backed dedup must agree with
     the specification (first occurrence kept, order preserved) *)
  let vars = List.init 200 (fun i -> S.Var (Printf.sprintf "v%d" (i mod 7))) in
  Alcotest.(check (list string))
    "wide dedup"
    [ "v0"; "v1"; "v2"; "v3"; "v4"; "v5"; "v6" ]
    (S.atom_vars (S.atom "W" vars))

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "asp"
    [
      ( "solver",
        [
          Alcotest.test_case "facts" `Quick test_facts;
          Alcotest.test_case "even negation" `Quick test_even_negation;
          Alcotest.test_case "odd negation" `Quick test_odd_negation_no_model;
          Alcotest.test_case "disjunction minimal" `Quick test_disjunction_minimal;
          Alcotest.test_case "disjunction dependency" `Quick
            test_disjunction_with_dependency;
          Alcotest.test_case "constraint" `Quick test_constraint;
          Alcotest.test_case "constraint via negation" `Quick
            test_constraint_via_negation;
          Alcotest.test_case "is_stable_model" `Quick test_is_stable_model;
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "budget" `Quick test_budget_exceeded;
          Alcotest.test_case "constants in rules" `Quick test_constants_in_rules;
          Alcotest.test_case "num/sym order" `Quick test_num_sym_ordering;
        ] );
      ( "hcf-shift",
        [
          Alcotest.test_case "non-HCF loop" `Quick test_non_hcf_loop;
          Alcotest.test_case "HCF shift equivalence" `Quick test_hcf_shift_equivalence;
          Alcotest.test_case "syntactic shift" `Quick test_shift_syntactic;
        ] );
      ( "grounder",
        [
          Alcotest.test_case "join" `Quick test_grounding_join;
          Alcotest.test_case "never-derivable negation" `Quick
            test_grounding_negation_never_derivable;
          Alcotest.test_case "transitive closure" `Quick test_grounding_stratified;
          Alcotest.test_case "safety" `Quick test_safety_rejected;
          Alcotest.test_case "stats" `Quick test_grounding_stats;
        ] );
      ( "printer-external",
        [
          Alcotest.test_case "printer" `Quick test_printer;
          Alcotest.test_case "parse atom" `Quick test_parse_atom;
          Alcotest.test_case "parse dlv" `Quick test_parse_dlv;
          Alcotest.test_case "parse clingo" `Quick test_parse_clingo;
          Alcotest.test_case "fallback solve" `Quick test_ext_solve_fallback;
          Alcotest.test_case "fake dlv end-to-end" `Quick test_ext_solve_fake_dlv;
          Alcotest.test_case "broken dlv falls back" `Quick test_ext_solve_broken_dlv;
          Alcotest.test_case "aspparse basic" `Quick test_aspparse_basic;
          Alcotest.test_case "aspparse dialects" `Quick test_aspparse_dialects;
          Alcotest.test_case "var dedup order" `Quick test_var_dedup_order;
          Alcotest.test_case "aspparse errors" `Quick test_aspparse_errors;
          Alcotest.test_case "cautious/brave" `Quick test_cautious_brave;
        ] );
      ( "properties",
        qcheck
          [
            prop_solver_matches_bruteforce;
            prop_print_parse_roundtrip_dlv;
            prop_print_parse_roundtrip_clingo;
            prop_shift_preserves_hcf_models;
            prop_stable_models_are_models;
            prop_minimality;
            prop_counter_engine_matches_naive;
            prop_counter_engine_support_ablation;
          ] );
    ]
