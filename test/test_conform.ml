(* Tests for the conformance subsystem: the pinned suite and generated
   corpus must pass the cross-tier runner, the fuzzer must be
   deterministic with always-loadable sources, and the delta-debugging
   shrinker must be sound (every accepted step parses, still fails the
   oracle, and is strictly smaller) and 1-minimal. *)

module Case = Conform.Case
module Runner = Conform.Runner
module Suite = Conform.Suite
module Corpus = Conform.Corpus
module Fuzz = Conform.Fuzz

let pp_failures (r : Runner.result_) =
  Printf.sprintf "%s: %s" r.Runner.case.Case.name
    (String.concat "; " r.Runner.failures)

let check_all_pass label cases =
  let summary, _ = Runner.run cases in
  let msgs = List.map pp_failures summary.Runner.failed in
  Alcotest.(check (list string)) (label ^ " failures") [] msgs;
  Alcotest.(check int) (label ^ " ok") summary.Runner.total summary.Runner.ok

let test_suite_passes () = check_all_pass "suite" Suite.all
let test_corpus_passes () = check_all_pass "corpus" Corpus.all

let test_suite_shape () =
  (* the pinned suite covers the paper examples and the null-algebra
     equivalences at the advertised sizes *)
  Alcotest.(check bool) "paper cases >= 15" true (List.length Suite.paper >= 15);
  Alcotest.(check bool) "ft cases >= 6" true (List.length Suite.ft >= 6);
  List.iter
    (fun (c : Case.t) ->
      Alcotest.(check bool)
        (c.Case.name ^ " pins an equivalence")
        true
        (c.Case.equiv <> None))
    Suite.ft

let test_corpus_families () =
  Alcotest.(check int) "five families" 5 (List.length Corpus.families);
  List.iter
    (fun (family, cases) ->
      Alcotest.(check bool) (family ^ " has cases") true (cases <> []))
    Corpus.families

let test_fuzz_deterministic () =
  let s1 = Fuzz.gen ~seed:11 () and s2 = Fuzz.gen ~seed:11 () in
  Alcotest.(check bool) "same seed, same scenario" true (s1 = s2);
  Alcotest.(check string) "same source" (Fuzz.source s1) (Fuzz.source s2)

(* Every generated scenario's surface rendering loads. *)
let prop_source_loads =
  QCheck.Test.make ~name:"fuzz sources always load" ~count:100
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let sc = Fuzz.gen ~seed () in
      match Lang.Load.of_string (Fuzz.source sc) with
      | Ok _ -> true
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

(* Shrinker soundness: along the accepted trail every step loads, still
   fails the oracle, and is strictly smaller than its predecessor; the
   fixed point is 1-minimal with respect to the edit set. *)
let prop_shrinker_sound =
  QCheck.Test.make ~name:"shrinker soundness" ~count:60
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let oracle = Fuzz.inconsistent in
      let sc = Fuzz.gen ~seed () in
      match oracle.Fuzz.fails sc with
      | None -> true (* nothing to shrink *)
      | Some _ ->
          let min_sc, trail = Fuzz.minimize_trace oracle sc in
          let ok_step prev step =
            (match Lang.Load.of_string (Fuzz.source step) with
            | Ok _ -> ()
            | Error msg ->
                QCheck.Test.fail_reportf "seed %d: step does not load: %s"
                  seed msg);
            if oracle.Fuzz.fails step = None then
              QCheck.Test.fail_reportf "seed %d: accepted step passes" seed;
            if Fuzz.size step >= Fuzz.size prev then
              QCheck.Test.fail_reportf "seed %d: step not smaller" seed;
            step
          in
          ignore (List.fold_left ok_step sc trail);
          (* the trail ends at the returned minimum *)
          (match trail with
          | [] -> ()
          | _ ->
              if List.nth trail (List.length trail - 1) <> min_sc then
                QCheck.Test.fail_reportf "seed %d: trail does not end at min"
                  seed);
          (* 1-minimality: no strictly-smaller one-edit candidate fails *)
          List.iter
            (fun c ->
              if
                Fuzz.size c < Fuzz.size min_sc
                && oracle.Fuzz.fails c <> None
              then QCheck.Test.fail_reportf "seed %d: min not 1-minimal" seed)
            (Fuzz.candidates min_sc);
          true)

let test_minimize_demo () =
  (* the pinned end-to-end demo: seed 1 fails the inconsistency oracle and
     shrinks to the 2-fact denial core *)
  let r = Fuzz.run ~oracle:Fuzz.inconsistent ~seed:1 ~cases:10 () in
  match r.Fuzz.failure with
  | None -> Alcotest.fail "seed 1 expected to fail the inconsistency oracle"
  | Some (seed, _, sc) ->
      Alcotest.(check int) "first failing seed" 1 seed;
      let min_sc, steps = Fuzz.minimize Fuzz.inconsistent sc in
      Alcotest.(check bool) "shrank" true (steps > 0);
      Alcotest.(check int) "minimal size" 4 (Fuzz.size min_sc);
      Alcotest.(check int) "two facts" 2 (List.length min_sc.Fuzz.facts);
      Alcotest.(check int) "one constraint" 1 (List.length min_sc.Fuzz.ics);
      Alcotest.(check int) "no updates" 0 (List.length min_sc.Fuzz.updates)

let test_differential_fuzz () =
  let r = Fuzz.run ~oracle:Fuzz.differential ~seed:1 ~cases:10 () in
  (match r.Fuzz.failure with
  | None -> ()
  | Some (seed, msg, _) ->
      Alcotest.failf "differential failure at seed %d: %s" seed msg);
  Alcotest.(check int) "all tested" 10 r.Fuzz.tested

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "conform"
    [
      ( "suite",
        [
          Alcotest.test_case "paper + ft cases pass all tiers" `Quick
            test_suite_passes;
          Alcotest.test_case "suite shape" `Quick test_suite_shape;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "generated families pass all tiers" `Quick
            test_corpus_passes;
          Alcotest.test_case "family shape" `Quick test_corpus_families;
        ] );
      ( "fuzz",
        Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic
        :: Alcotest.test_case "minimize demo" `Quick test_minimize_demo
        :: Alcotest.test_case "differential 10 seeds" `Quick
             test_differential_fuzz
        :: qcheck [ prop_source_loads; prop_shrinker_sound ] );
    ]
