(* Tests for the unified budget subsystem (Budget) and the contract it
   imposes on every CQA engine: exhaustion — of a decision/state limit or
   of the wall-clock deadline — is always an [Error] or a partial outcome,
   never an exception escaping a public API. *)

module Instance = Relational.Instance
module Gen = Workload.Gen
module Qsyntax = Query.Qsyntax
module Cqa = Query.Cqa

let v = Ic.Term.var
let atom p ts = Ic.Patom.make p ts

(* ------------------------------------------------------------------ *)
(* The Budget module itself *)

let test_limits () =
  let b = Budget.start (Budget.make ~max_decisions:2 ~max_states:1 ()) in
  Budget.tick_decision b;
  Budget.tick_decision b;
  (match Budget.tick_decision b with
  | () -> Alcotest.fail "third decision should exhaust"
  | exception Budget.Exhausted (Budget.Decisions 2) -> ()
  | exception Budget.Exhausted e ->
      Alcotest.failf "wrong marker: %a" Budget.pp_exhausted e);
  Alcotest.(check int) "decisions counted" 3
    (Atomic.get (Budget.stats b).Budget.decisions);
  let b = Budget.start (Budget.make ~max_states:1 ()) in
  Budget.tick_state b;
  (match Budget.tick_state b with
  | () -> Alcotest.fail "second state should exhaust"
  | exception Budget.Exhausted (Budget.States 1) -> ());
  (* exhaustion records the elapsed wall-clock, rounded up past zero *)
  Alcotest.(check bool) "elapsed recorded" true
    (Atomic.get (Budget.stats b).Budget.elapsed_ms >= 1)

let test_deadline () =
  let b = Budget.start (Budget.make ~timeout_ms:0 ()) in
  Unix.sleepf 0.002;
  (match Budget.check_deadline b with
  | () -> Alcotest.fail "deadline should have passed"
  | exception Budget.Exhausted (Budget.Deadline 0) -> ());
  let b = Budget.start Budget.unlimited in
  Budget.check_deadline b;
  Budget.tick_decision b;
  Budget.tick_state b;
  Budget.note_component b;
  Budget.finish b;
  let s = Budget.stats b in
  Alcotest.(check (list int)) "counters"
    [ 1; 1; 1 ]
    [
      Atomic.get s.Budget.decisions;
      Atomic.get s.Budget.states;
      Atomic.get s.Budget.components_solved;
    ];
  Alcotest.(check bool) "finish stamps elapsed" true
    (Atomic.get s.Budget.elapsed_ms >= 1)

let test_messages () =
  Alcotest.(check string) "decisions"
    "solver budget (5 decisions) exceeded"
    (Budget.message (Budget.Decisions 5));
  Alcotest.(check string) "states"
    "repair search budget (3 states) exceeded"
    (Budget.message (Budget.States 3));
  Alcotest.(check string) "deadline" "deadline (10 ms) exceeded"
    (Budget.message (Budget.Deadline 10))

(* ------------------------------------------------------------------ *)
(* Engine regression: tiny budgets and passed deadlines yield Ok/Error
   across all three methods, with and without decomposition — the
   historical escapes (Asp.Solver.Budget_exceeded out of
   Progcqa.consistent_answers, Enumerate.Budget_exceeded out of the
   decomposed paths) stay fixed. *)

let clusters = Gen.clusters_workload ~k:2 ()
let q_s = Qsyntax.make ~head:[ "x" ] (Qsyntax.Atom (atom "S" [ v "x" ]))

let methods =
  [
    ("model-theoretic", Cqa.ModelTheoretic);
    ("logic-program", Cqa.LogicProgram);
    ("cautious", Cqa.CautiousProgram);
    ("auto", Cqa.Auto);
  ]

let observe name f =
  match f () with
  | Ok _ | Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: exception escaped: %s" name (Printexc.to_string e)

let test_tiny_budgets () =
  List.iter
    (fun (mname, method_) ->
      List.iter
        (fun decompose ->
          let name = Printf.sprintf "%s decompose=%b" mname decompose in
          (* the legacy per-call limit *)
          observe (name ^ " max_effort") (fun () ->
              Cqa.consistent_answers ~method_ ~max_effort:1 ~decompose
                clusters.Gen.d clusters.Gen.ics q_s);
          (* 1-unit shared limits *)
          observe (name ^ " shared") (fun () ->
              let budget =
                Budget.start (Budget.make ~max_decisions:1 ~max_states:1 ())
              in
              Cqa.consistent_answers ~method_ ~budget ~decompose clusters.Gen.d
                clusters.Gen.ics q_s);
          (* passed deadline *)
          observe (name ^ " deadline") (fun () ->
              let budget = Budget.start (Budget.make ~timeout_ms:1 ()) in
              Unix.sleepf 0.003;
              Cqa.consistent_answers ~method_ ~budget ~decompose clusters.Gen.d
                clusters.Gen.ics q_s))
        [ false; true ])
    methods

let test_progcqa_budget_error () =
  (* the cautious engine converts the solver's budget exception into the
     engines' shared error message instead of letting it escape *)
  match
    Query.Progcqa.consistent_answers ~max_decisions:0 clusters.Gen.d
      clusters.Gen.ics q_s
  with
  | Error msg ->
      Alcotest.(check string) "message" "solver budget (0 decisions) exceeded"
        msg
  | Ok _ -> Alcotest.fail "expected a budget error"
  | exception e ->
      Alcotest.failf "exception escaped: %s" (Printexc.to_string e)

let test_cautious_decompose_rejected () =
  match
    Cqa.consistent_answers ~method_:Cqa.CautiousProgram ~decompose:true
      clusters.Gen.d clusters.Gen.ics q_s
  with
  | Error msg ->
      let prefix = "the cautious-program method cannot decompose" in
      Alcotest.(check string) "names the cause" prefix
        (String.sub msg 0 (String.length prefix))
  | Ok _ -> Alcotest.fail "cautious + decompose must be an error"

(* ------------------------------------------------------------------ *)
(* Graceful degradation: a budget sized to finish exactly one component
   yields a partial outcome carrying the solved prefix, not an error. *)

let test_partial_outcome () =
  let full =
    Repair.Enumerate.decomposed clusters.Gen.d clusters.Gen.ics
  in
  Alcotest.(check bool) "fixture has >= 2 components" true
    (List.length full.Repair.Enumerate.explored >= 2);
  Alcotest.(check bool) "fixture solves without budget" true
    (full.Repair.Enumerate.exhausted = None);
  let first_cost = List.hd full.Repair.Enumerate.explored in
  let stats = Budget.new_stats () in
  let budget = Budget.start ~stats (Budget.make ~max_states:first_cost ()) in
  match
    Cqa.consistent_answers ~method_:Cqa.ModelTheoretic ~budget ~decompose:true
      clusters.Gen.d clusters.Gen.ics q_s
  with
  | Ok o ->
      (match o.Cqa.exhausted with
      | Some (Budget.States n) ->
          Alcotest.(check int) "tripped at the shared limit" first_cost n
      | Some e -> Alcotest.failf "wrong marker: %a" Budget.pp_exhausted e
      | None -> Alcotest.fail "outcome should carry the exhausted marker");
      Alcotest.(check int) "one component completed" 1
        (Atomic.get stats.Budget.components_solved);
      Alcotest.(check bool) "repairs recombined" true (o.Cqa.repair_count >= 1)
  | Error msg -> Alcotest.failf "expected a partial outcome, got error: %s" msg
  | exception e ->
      Alcotest.failf "exception escaped: %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* qcheck: over random workloads, an exhausted budget never escapes as an
   exception from any method, with or without decomposition. *)

let qcheck_no_escape =
  QCheck.Test.make
    ~name:"exhausted budgets yield Ok/Error, never an exception (150 cases)"
    ~count:150
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, tiny) ->
      let w = Gen.random_case ~seed () in
      let q =
        Qsyntax.make ~head:[ "x" ] (Qsyntax.Atom (atom "P" [ v "x" ]))
      in
      List.for_all
        (fun (_, method_) ->
          List.for_all
            (fun decompose ->
              let budget =
                Budget.start
                  (Budget.make ~max_decisions:tiny ~max_states:tiny ())
              in
              match
                Cqa.consistent_answers ~method_ ~budget ~decompose w.Gen.d
                  w.Gen.ics q
              with
              | Ok _ | Error _ -> true
              | exception e ->
                  QCheck.Test.fail_reportf
                    "%s (%s, decompose=%b, budget=%d): exception escaped: %s"
                    w.Gen.label
                    (match method_ with
                    | Cqa.ModelTheoretic -> "mt"
                    | Cqa.LogicProgram -> "lp"
                    | Cqa.CautiousProgram -> "cautious"
                    | Cqa.Auto -> "auto")
                    decompose tiny (Printexc.to_string e))
            [ false; true ])
        methods)

let () =
  Alcotest.run "budget"
    [
      ( "unit",
        [
          Alcotest.test_case "limits" `Quick test_limits;
          Alcotest.test_case "deadline and counters" `Quick test_deadline;
          Alcotest.test_case "messages" `Quick test_messages;
        ] );
      ( "engines",
        [
          Alcotest.test_case "tiny budgets" `Quick test_tiny_budgets;
          Alcotest.test_case "progcqa budget error" `Quick
            test_progcqa_budget_error;
          Alcotest.test_case "cautious decompose rejected" `Quick
            test_cautious_decompose_rejected;
          Alcotest.test_case "partial outcome" `Quick test_partial_outcome;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_no_escape ]);
    ]
