(* Tests for the routing layer (Route.Direct / Route.Tier) and the Auto
   CQA method: byte-identity of the repair-less direct computation against
   the enumerate oracle, classification pins for the paper's examples, and
   the 1000-case qcheck differential over tier-stratified workloads. *)

module Value = Relational.Value
module Atom = Relational.Atom
module Instance = Relational.Instance
module Term = Ic.Term
module Patom = Ic.Patom
module Constr = Ic.Constr
module Decompose = Repair.Decompose
module Enumerate = Repair.Enumerate
module Gen = Workload.Gen

let v = Term.var
let atom p ts = Patom.make p ts
let vs = Value.str
let vn = Value.null

let instance = Alcotest.testable Instance.pp_inline Instance.equal

(* The oracle: the monolithic enumerate engine's minimal repairs of [d]. *)
let oracle d ics =
  Repair.Order.minimal_among ~d (Enumerate.search d ics)

let direct_repairs d ics =
  match Route.Direct.analyze ~base:d ics with
  | Error why -> Alcotest.failf "expected Direct to accept: %s" why
  | Ok a -> Route.Direct.minimal_repairs a

let direct_rejects why d ics =
  match Route.Direct.analyze ~base:d ics with
  | Ok _ -> Alcotest.failf "expected Direct to reject (%s)" why
  | Error _ -> ()

let check_identical name d ics =
  let expected = oracle d ics in
  let actual = direct_repairs d ics in
  Alcotest.(check (list instance)) name expected actual

(* ------------------------------------------------------------------ *)
(* Direct: byte-identity on accepting shapes *)

let fd =
  Ic.Builder.functional_dependency ~name:"fd" ~pred:"R" ~arity:2 ~lhs:[ 1 ]
    ~rhs:2 ()

let test_direct_fd_identity () =
  let d =
    Instance.of_list
      [
        ("R", [ vs "k1"; vs "a" ]);
        ("R", [ vs "k1"; vs "b" ]);
        ("R", [ vs "k1"; vs "c" ]);
        ("R", [ vs "k2"; vs "x" ]);
        ("R", [ vs "k3"; vs "y" ]);
        ("R", [ vs "k3"; vs "z" ]);
      ]
  in
  check_identical "fd clusters" d [ fd ];
  (match Route.Direct.analyze ~base:d [ fd ] with
  | Error why -> Alcotest.failf "unexpected reject: %s" why
  | Ok a ->
      Alcotest.(check int) "3 * 2 repairs" 6 (Route.Direct.repair_count a);
      Alcotest.(check int)
        "materialized count matches" 6
        (List.length (Route.Direct.minimal_repairs a)))

let test_direct_forced () =
  (* NNC forces R(k1, null) out of every repair; the remaining FD conflict
     on k1 is then the null-free pair (a, b). *)
  let d =
    Instance.of_list
      [
        ("R", [ vs "k1"; vn ]);
        ("R", [ vs "k1"; vs "a" ]);
        ("R", [ vs "k1"; vs "b" ]);
      ]
  in
  let nnc = Constr.not_null ~name:"nn" ~pred:"R" ~arity:2 ~pos:2 () in
  check_identical "forced null tuple" d [ fd; nnc ];
  match Route.Direct.analyze ~base:d [ fd; nnc ] with
  | Error why -> Alcotest.failf "unexpected reject: %s" why
  | Ok a ->
      Alcotest.(check bool)
        "null tuple forced" true
        (Atom.Set.mem (Atom.make "R" [ vs "k1"; vn ]) a.Route.Direct.forced);
      Alcotest.(check int) "two repairs" 2 (Route.Direct.repair_count a)

let test_direct_denial_identity () =
  let d =
    Instance.of_list
      [
        ("P", [ vs "a"; vs "b" ]);
        ("P", [ vs "b"; vs "a" ]);
        ("P", [ vs "c"; vs "c" ]);
        ("P", [ vs "d"; vs "e" ]);
      ]
  in
  let no_sym =
    Ic.Builder.denial ~name:"no_sym"
      [ atom "P" [ v "x"; v "y" ]; atom "P" [ v "y"; v "x" ] ]
  in
  (* P(c,c) matches the denial twice with itself only: forced out. *)
  check_identical "symmetric denial" d [ no_sym ];
  match Route.Direct.analyze ~base:d [ no_sym ] with
  | Error why -> Alcotest.failf "unexpected reject: %s" why
  | Ok a ->
      Alcotest.(check bool)
        "self-loop forced" true
        (Atom.Set.mem (Atom.make "P" [ vs "c"; vs "c" ]) a.Route.Direct.forced)

let test_direct_consistent () =
  let d = Instance.of_list [ ("R", [ vs "k1"; vs "a" ]) ] in
  check_identical "no violations, one repair" d [ fd ];
  Alcotest.(check (list instance)) "repair is d" [ d ] (direct_repairs d [ fd ])

(* ------------------------------------------------------------------ *)
(* Direct: rejection guards *)

let test_direct_rejects () =
  let uic =
    Constr.generic ~name:"p_q" ~ante:[ atom "P" [ v "x" ] ]
      ~cons:[ atom "Q" [ v "x" ] ] ()
  in
  direct_rejects "insertion-capable constraint"
    (Instance.of_list [ ("P", [ vs "a" ]) ])
    [ uic ];
  (* A null in a relevant position never violates under |=_N, so the FD
     pair R(k1, null) / R(k1, a) is conflict-free and Direct accepts it
     with a single repair — identical to the oracle. *)
  check_identical "null value satisfies the FD"
    (Instance.of_list [ ("R", [ vs "k1"; vn ]); ("R", [ vs "k1"; vs "a" ]) ])
    [ fd ];
  (* ... but a null in a NON-relevant position rides into the conflict
     pair, where <=_D covering could fire: rejected. *)
  let no_pq2 =
    Ic.Builder.denial ~name:"no_pq2" [ atom "P" [ v "x"; v "y" ]; atom "Q" [ v "x" ] ]
  in
  direct_rejects "null in conflict"
    (Instance.of_list [ ("P", [ vs "a"; vn ]); ("Q", [ vs "a" ]) ])
    [ no_pq2 ];
  (* ternary denial: non-binary conflict *)
  let tri =
    Ic.Builder.denial ~name:"tri"
      [ atom "P" [ v "x"; v "y" ]; atom "P" [ v "y"; v "z" ]; atom "P" [ v "z"; v "x" ] ]
  in
  direct_rejects "ternary conflict"
    (Instance.of_list
       [ ("P", [ vs "a"; vs "b" ]); ("P", [ vs "b"; vs "c" ]); ("P", [ vs "c"; vs "a" ]) ])
    [ tri ]

let test_direct_non_multipartite () =
  let no_pq =
    Ic.Builder.denial ~name:"no_pq" [ atom "P" [ v "x" ]; atom "Q" [ v "x" ] ]
  in
  let no_qs =
    Ic.Builder.denial ~name:"no_qs" [ atom "Q" [ v "x" ]; atom "S" [ v "x" ] ]
  in
  let no_ps =
    Ic.Builder.denial ~name:"no_ps" [ atom "P" [ v "x" ]; atom "S" [ v "x" ] ]
  in
  let no_st =
    Ic.Builder.denial ~name:"no_st" [ atom "S" [ v "x" ]; atom "T" [ v "x" ] ]
  in
  (* The 3-path P-Q-S is complete bipartite ({P,S} vs {Q}): accepted, and
     its two minimal hitting sets match the oracle. *)
  let d3 =
    Instance.of_list [ ("P", [ vs "a" ]); ("Q", [ vs "a" ]); ("S", [ vs "a" ]) ]
  in
  check_identical "3-path is K_1,2" d3 [ no_pq; no_qs ];
  (* ... the triangle is K_3 *)
  check_identical "triangle is K_3" d3 [ no_pq; no_qs; no_ps ];
  (* ... but the 4-path P-Q-S-T is NOT complete multipartite (P is
     non-adjacent to both S and T, yet S-T is an edge, so non-adjacency is
     not transitive): rejected. *)
  let d4 =
    Instance.of_list
      [ ("P", [ vs "a" ]); ("Q", [ vs "a" ]); ("S", [ vs "a" ]); ("T", [ vs "a" ]) ]
  in
  direct_rejects "4-path is not complete multipartite" d4 [ no_pq; no_qs; no_st ]

(* ------------------------------------------------------------------ *)
(* Tier classification pins *)

let verdict_tier d ics =
  let plan = Decompose.plan d ics in
  List.map (fun v -> v.Route.Tier.tier) (Route.Tier.plan plan)

let test_tier_pins () =
  (* FD conflicts (Example 13's key-violation shape): Direct *)
  let fd_case = Gen.fd_workload ~n:4 ~dup_rate:1.0 () in
  Alcotest.(check (list string))
    "fd workload routes direct"
    [ "direct"; "direct"; "direct"; "direct" ]
    (List.map Budget.tier_name (verdict_tier fd_case.Gen.d fd_case.Gen.ics));
  (* Example 2's RIC (Course/Student): inside Definition 9, statically
     HCF, but repairable by insertion: Shifted *)
  let ric_d =
    Instance.of_list
      [
        ("Course", [ Value.int 21; vs "C15" ]);
        ("Course", [ Value.int 34; vs "C18" ]);
        ("Student", [ Value.int 21; vs "Ann" ]);
      ]
  in
  let ric =
    Constr.generic ~name:"ric"
      ~ante:[ atom "Course" [ v "id"; v "code" ] ]
      ~cons:[ atom "Student" [ v "id"; v "name" ] ]
      ()
  in
  Alcotest.(check (list string))
    "RIC routes shifted" [ "shifted" ]
    (List.map Budget.tier_name (verdict_tier ric_d [ ric ]));
  (* The bilateral P(x,y) -> P(y,x) (Theorem 5's counter-shape):
     Disjunctive *)
  let bil = Gen.bilateral_loop ~n:3 () in
  let tiers = verdict_tier bil.Gen.d bil.Gen.ics in
  List.iter
    (fun t ->
      Alcotest.(check string) "bilateral routes disjunctive" "disjunctive"
        (Budget.tier_name t))
    tiers;
  (* General-existential constraint (outside Definition 9): Enumerated *)
  let gen_d = Instance.of_list [ ("P", [ vs "a" ]); ("Q", [ vs "a" ]) ] in
  let gen_ic =
    Constr.generic ~name:"pq_r"
      ~ante:[ atom "P" [ v "x" ]; atom "Q" [ v "x" ] ]
      ~cons:[ atom "R" [ v "x"; v "y" ] ]
      ()
  in
  Alcotest.(check (list string))
    "general existential routes enumerate" [ "enumerate" ]
    (List.map Budget.tier_name (verdict_tier gen_d [ gen_ic ]));
  (* Example 20: a NOT NULL constraint on the RIC's existential attribute
     makes the repair program's null-insertions infeasible — the program's
     repair set diverges from the model-theoretic one, so the component
     must route to enumeration, not to the shifted program. *)
  let p_r =
    Constr.generic ~name:"p_r"
      ~ante:[ atom "P" [ v "x" ] ]
      ~cons:[ atom "R" [ v "x"; v "y" ] ]
      ()
  in
  let nn_r2 = Constr.not_null ~name:"nn_r2" ~pred:"R" ~arity:2 ~pos:2 () in
  Alcotest.(check (list string))
    "Example 20 conflict routes enumerate" [ "enumerate" ]
    (List.map Budget.tier_name
       (verdict_tier (Instance.of_list [ ("P", [ vs "a" ]) ]) [ p_r; nn_r2 ]))

(* ------------------------------------------------------------------ *)
(* qcheck differential: Direct (when accepted) vs the enumerate oracle,
   component by component *)

let qcheck_direct_differential =
  QCheck.Test.make ~count:400 ~name:"direct accepted => identical to oracle"
    QCheck.(map (fun i -> i) small_nat)
    (fun seed ->
      let case = Gen.route_case ~seed () in
      let plan = Decompose.plan case.Gen.d case.Gen.ics in
      List.for_all
        (fun (c : Decompose.component) ->
          let base = Instance.union c.Decompose.sub c.Decompose.support in
          match Route.Direct.analyze ~base c.Decompose.ics with
          | Error _ -> true
          | Ok a ->
              let expected = oracle base c.Decompose.ics in
              let actual = Route.Direct.minimal_repairs a in
              List.length expected = List.length actual
              && List.for_all2 Instance.equal expected actual
              && Route.Direct.repair_count a = List.length actual)
        plan.Decompose.components)

(* ------------------------------------------------------------------ *)
(* qcheck differential: the Auto method against the monolithic
   model-theoretic oracle, full outcomes, over the tier-stratified
   mixed workloads of Gen.route_case *)

module Qsyntax = Query.Qsyntax
module Tuple = Relational.Tuple

let cqa_queries =
  [
    Qsyntax.make ~head:[ "x" ] (Qsyntax.Atom (atom "P" [ v "x" ]));
    Qsyntax.make ~head:[ "x" ]
      (Qsyntax.And
         ( Qsyntax.Atom (atom "R" [ v "x"; v "y" ]),
           Qsyntax.Atom (atom "S" [ v "x" ]) ));
    Qsyntax.make ~head:[ "x" ]
      (Qsyntax.And
         ( Qsyntax.Atom (atom "P" [ v "x" ]),
           Qsyntax.Not (Qsyntax.Atom (atom "Q" [ v "x" ])) ));
  ]

let same_outcome (a : Query.Cqa.outcome) (b : Query.Cqa.outcome) =
  Tuple.Set.equal a.Query.Cqa.consistent b.Query.Cqa.consistent
  && Tuple.Set.equal a.Query.Cqa.possible b.Query.Cqa.possible
  && Tuple.Set.equal a.Query.Cqa.standard b.Query.Cqa.standard
  && a.Query.Cqa.repair_count = b.Query.Cqa.repair_count
  && a.Query.Cqa.exhausted = b.Query.Cqa.exhausted

let qcheck_auto_differential =
  QCheck.Test.make ~count:1000
    ~name:"auto method = monolithic enumerate oracle (1000 cases)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let case = Gen.route_case ~seed () in
      List.for_all
        (fun q ->
          match
            ( Query.Cqa.consistent_answers ~method_:Query.Cqa.Auto
                ~max_effort:100_000 case.Gen.d case.Gen.ics q,
              Query.Cqa.consistent_answers ~method_:Query.Cqa.ModelTheoretic
                ~max_effort:100_000 case.Gen.d case.Gen.ics q )
          with
          | Ok auto, Ok oracle ->
              same_outcome auto oracle
              || QCheck.Test.fail_reportf "auto <> oracle on %s" case.Gen.label
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ ->
              QCheck.Test.fail_reportf "auto/oracle disagree on errors on %s"
                case.Gen.label)
        cqa_queries)

let () =
  Alcotest.run "route"
    [
      ( "direct",
        [
          Alcotest.test_case "fd identity" `Quick test_direct_fd_identity;
          Alcotest.test_case "forced deletions" `Quick test_direct_forced;
          Alcotest.test_case "denial identity" `Quick test_direct_denial_identity;
          Alcotest.test_case "consistent base" `Quick test_direct_consistent;
          Alcotest.test_case "rejections" `Quick test_direct_rejects;
          Alcotest.test_case "multipartite guard" `Quick
            test_direct_non_multipartite;
        ] );
      ("tier", [ Alcotest.test_case "pins" `Quick test_tier_pins ]);
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_direct_differential;
          QCheck_alcotest.to_alcotest qcheck_auto_differential;
        ] );
    ]
