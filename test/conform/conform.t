The conformance suite: paper examples, null-algebra equivalences and the
generated scenario families, answered through every engine tier.

  $ cqanull conform
  family paper            15 case(s), 15 passed
  family ft-null-algebra   7 case(s),  7 passed
  family fk_chain          3 case(s),  3 passed
  family fd_cluster        3 case(s),  3 passed
  family cyclic_ric        3 case(s),  3 passed
  family nnc_ric           3 case(s),  3 passed
  family session_stream    3 case(s),  3 passed
  conform: 37/37 case(s) passed across 7 families

A single family, case by case, with the tiers each case ran through.
The nnc_ric family is the Example 20 conflict shape, where the program
tiers are skipped (the repair program of Definition 9 is sound only for
non-conflicting constraint sets) and the Rep_d cardinality is pinned
instead.

  $ cqanull conform --family nnc_ric --list
  nnc_ric_forced         nnc_ric         NNC/RIC conflicts: 1 staff, 2 unassigned (constant fills vs deletion), 0 unaudited (two-way)
  nnc_ric_mixed          nnc_ric         NNC/RIC conflicts: 1 staff, 1 unassigned (constant fills vs deletion), 2 unaudited (two-way)
  nnc_ric_audit          nnc_ric         NNC/RIC conflicts: 2 staff, 0 unassigned (constant fills vs deletion), 3 unaudited (two-way)

  $ cqanull conform --family nnc_ric -v
  family nnc_ric           3 case(s),  3 passed
    nnc_ric_forced       ok (4 tier(s): auto+enumerate+session+serve)
    nnc_ric_mixed        ok (4 tier(s): auto+enumerate+session+serve)
    nnc_ric_audit        ok (4 tier(s): auto+enumerate+session+serve)
  conform: 3/3 case(s) passed across 1 families

An unknown family is an error.

  $ cqanull conform --family nosuch
  error: no conformance family named nosuch
  [2]

Materializing the corpus.

  $ cqanull conform --write-corpus corpus
  wrote corpus/fk_chain/fk_chain_clean.cqa
  wrote corpus/fk_chain/fk_chain_orphans.cqa
  wrote corpus/fk_chain/fk_chain_deep.cqa
  wrote corpus/fd_cluster/fd_cluster_single.cqa
  wrote corpus/fd_cluster/fd_cluster_pair.cqa
  wrote corpus/fd_cluster/fd_cluster_wide.cqa
  wrote corpus/cyclic_ric/cyclic_ric_clean.cqa
  wrote corpus/cyclic_ric/cyclic_ric_dangling.cqa
  wrote corpus/cyclic_ric/cyclic_ric_deep.cqa
  wrote corpus/nnc_ric/nnc_ric_forced.cqa
  wrote corpus/nnc_ric/nnc_ric_mixed.cqa
  wrote corpus/nnc_ric/nnc_ric_audit.cqa
  wrote corpus/session_stream/session_stream_clean.cqa
  wrote corpus/session_stream/session_stream_churn.cqa
  wrote corpus/session_stream/session_stream_revoke.cqa

  $ cat corpus/fd_cluster/fd_cluster_single.cqa
  % FD clusters: 3 row(s), 1 conflict(s) of width 2
  relation R(k, a).
  R(k0, v0).
  R(k1, v1).
  R(k2, v2).
  R(k0, w0_0).
  constraint fd: R(K, A), R(K, B) -> A = B.
  query vals(K, A): R(K, A).

Differential fuzzing: a handful of seeds through every tier.  A generous
--timeout leaves the run untouched (the deadline is checked between
cases); the smoke alias uses it to bound the seeded sweep.

  $ cqanull fuzz --seed 1 --cases 5 --timeout 60000
  fuzz: 5 case(s), oracle differential, seeds 1..5: all passed

The minimizing fuzzer, demonstrated with the inconsistency oracle: the
first failing scenario shrinks to its minimal violation core.

  $ cqanull fuzz --seed 1 --cases 10 --oracle inconsistent --minimize --out repro.cqa
  fuzz: FAILURE at seed 1 (oracle inconsistent): final instance is inconsistent (1 violation(s))
  minimized: size 12 -> 4 in 6 step(s)
  wrote repro.cqa
  [1]

  $ cat repro.cqa
  relation P(c1).
  relation Q(c1).
  relation R(c1, c2).
  relation S(c1).
  P(a).
  S(a).
  constraint no_ps: P(X), S(X) -> false.
  query r_rows(X, Y): R(X, Y).

The repro is a complete, loadable surface file that still exhibits the
violation.

  $ cqanull check repro.cqa
  no_ps violated by P(a), S(a) under [X=a]
  1 violation(s)
  [1]

An unknown oracle is an error.

  $ cqanull fuzz --oracle nosuch
  error: no oracle named nosuch (differential, inconsistent)
  [2]
