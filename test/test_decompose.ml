(* Tests for the conflict-component decomposition (Repair.Decompose): the
   plan itself, the decomposed enumerator and engines against their
   monolithic counterparts, and the differential qcheck suites. *)

module Value = Relational.Value
module Atom = Relational.Atom
module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Term = Ic.Term
module Patom = Ic.Patom
module Constr = Ic.Constr
module Decompose = Repair.Decompose
module Enumerate = Repair.Enumerate
module Gen = Workload.Gen
module Qsyntax = Query.Qsyntax

let v = Term.var
let atom p ts = Patom.make p ts
let vn = Value.null
let vs = Value.str

let instance = Alcotest.testable Instance.pp_inline Instance.equal

let check_repair_set name expected actual =
  let sort = List.sort Instance.compare in
  Alcotest.(check (list instance)) name (sort expected) (sort actual)

let same_repairs name d ics =
  check_repair_set name (Enumerate.repairs d ics)
    (Enumerate.repairs ~decompose:true d ics)

(* ------------------------------------------------------------------ *)
(* Fixtures from test_repair.ml (Examples 15-20) *)

let ex15_d =
  Instance.of_list
    [
      ("Course", [ Value.int 21; vs "C15" ]);
      ("Course", [ Value.int 34; vs "C18" ]);
      ("Student", [ Value.int 21; vs "Ann" ]);
      ("Student", [ Value.int 45; vs "Paul" ]);
    ]

let ex15_ric =
  Constr.generic
    ~ante:[ atom "Course" [ v "id"; v "code" ] ]
    ~cons:[ atom "Student" [ v "id"; v "name" ] ]
    ()

let ex18_d =
  Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("P", [ vn; vs "a" ]); ("T", [ vs "c" ]) ]

let ex18_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
    Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "P" [ v "y"; v "x" ] ] ();
  ]

let ex19_d =
  Instance.of_list
    [
      ("R", [ vs "a"; vs "b" ]);
      ("R", [ vs "a"; vs "c" ]);
      ("S", [ vs "e"; vs "f" ]);
      ("S", [ vn; vs "a" ]);
    ]

let ex19_ics =
  Ic.Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] ()
  @ [
      Ic.Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ]
        ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
      Constr.not_null ~pred:"R" ~arity:2 ~pos:1 ();
    ]

let ex20_d =
  Instance.of_list [ ("P", [ vs "a" ]); ("P", [ vs "b" ]); ("Q", [ vs "b"; vs "c" ]) ]

let ex20_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x"; v "y" ] ] ();
    Constr.not_null ~pred:"Q" ~arity:2 ~pos:2 ();
  ]

(* ------------------------------------------------------------------ *)
(* The plan *)

let test_plan_consistent () =
  let d = Instance.of_list [ ("Course", [ Value.int 21; vs "C15" ]); ("Student", [ Value.int 21; vs "Ann" ]) ] in
  let plan = Decompose.plan d [ ex15_ric ] in
  Alcotest.(check int) "no components" 0 (List.length plan.Decompose.components);
  Alcotest.(check bool) "core = D" true (Instance.equal plan.Decompose.core d)

let test_plan_clusters () =
  let w = Gen.clusters_workload ~padding:2 ~k:4 () in
  let plan = Decompose.plan w.Gen.d w.Gen.ics in
  Alcotest.(check int) "4 components" 4 (List.length plan.Decompose.components);
  Alcotest.(check bool) "product exact" true plan.Decompose.product_exact;
  (* the padded triples are untouched *)
  Alcotest.(check int) "core holds the padding" 6 (Instance.cardinal plan.Decompose.core);
  List.iter
    (fun (c : Decompose.component) ->
      Alcotest.(check int) "one original tuple per component" 1
        (Instance.cardinal c.Decompose.sub);
      Alcotest.(check int) "both constraints touch each component" 2
        (List.length c.Decompose.ics))
    plan.Decompose.components

let test_plan_support_atoms () =
  (* P(a) violates the RIC, and the UIC P(x) -> Q(x) is permanently
     satisfied by the core witness Q(a): the component search must carry
     Q(a) along or it would see a spurious violation. *)
  let d = Instance.of_list [ ("P", [ vs "a" ]); ("Q", [ vs "a" ]) ] in
  let ics =
    [
      Constr.generic ~name:"ric" ~ante:[ atom "P" [ v "x" ] ]
        ~cons:[ atom "R" [ v "x"; v "y" ] ]
        ();
      Constr.generic ~name:"uic" ~ante:[ atom "P" [ v "x" ] ]
        ~cons:[ atom "Q" [ v "x" ] ]
        ();
    ]
  in
  let plan = Decompose.plan d ics in
  Alcotest.(check int) "one component" 1 (List.length plan.Decompose.components);
  let c = List.hd plan.Decompose.components in
  Alcotest.(check bool) "Q(a) is support" true
    (Instance.mem (Atom.make "Q" [ vs "a" ]) c.Decompose.support);
  same_repairs "support keeps the repairs equal" d ics

let test_components_share_universe () =
  (* conflicting NNC (Example 20): insertions range over the universe of
     the whole instance, even from a component that does not mention every
     constant *)
  let plan = Decompose.plan ex20_d ex20_ics in
  same_repairs "Example 20 decomposed" ex20_d ex20_ics;
  Alcotest.(check bool) "universe covers c" true
    (List.mem (vs "c") plan.Decompose.universe)

(* ------------------------------------------------------------------ *)
(* Decomposed enumeration = monolithic on the paper's examples *)

let test_examples_differential () =
  same_repairs "Example 15" ex15_d [ ex15_ric ];
  same_repairs "Example 18 (RIC-cyclic)" ex18_d ex18_ics;
  same_repairs "Example 19 (key+FK+NNC)" ex19_d ex19_ics;
  same_repairs "Example 20 (conflicting NNC)" ex20_d ex20_ics

let test_clusters_differential () =
  let w = Gen.clusters_workload ~padding:1 ~k:3 () in
  same_repairs "3 clusters" w.Gen.d w.Gen.ics;
  let reps = Enumerate.repairs ~decompose:true w.Gen.d w.Gen.ics in
  Alcotest.(check int) "2^3 repairs" 8 (List.length reps)

let test_exploration_collapses () =
  (* the headline claim: k independent clusters cost the sum, not the
     product, of the per-cluster searches *)
  let w = Gen.clusters_workload ~k:4 () in
  let monolithic = ref 0 in
  ignore (Enumerate.search ~explored:monolithic w.Gen.d w.Gen.ics);
  let r = Enumerate.decomposed w.Gen.d w.Gen.ics in
  let decomposed = List.fold_left ( + ) 0 r.Enumerate.explored in
  Alcotest.(check bool)
    (Printf.sprintf "decomposed %d states <= monolithic %d / 5" decomposed !monolithic)
    true
    (decomposed * 5 <= !monolithic);
  Alcotest.(check int) "repair count factorizes" 16
    (Decompose.count_product (List.map List.length r.Enumerate.minimal))

(* ------------------------------------------------------------------ *)
(* Engine and CQA wiring *)

let test_engine_decomposed () =
  let w = Gen.clusters_workload ~k:3 () in
  let mono = Core.Engine.repairs w.Gen.d w.Gen.ics in
  let dec = Core.Engine.repairs ~decompose:true w.Gen.d w.Gen.ics in
  match (mono, dec) with
  | Ok m, Ok d -> check_repair_set "engine decomposed = monolithic" m d
  | _ -> Alcotest.fail "engine failed"

let q_single = Qsyntax.make ~head:[ "x" ] (Qsyntax.Atom (atom "S" [ v "x" ]))

let q_join =
  Qsyntax.make ~head:[ "x" ]
    (Qsyntax.And (Qsyntax.Atom (atom "R" [ v "x"; v "y" ]), Qsyntax.Atom (atom "T" [ v "x" ])))

let q_negated =
  Qsyntax.make ~head:[ "x" ]
    (Qsyntax.And (Qsyntax.Atom (atom "S" [ v "x" ]), Qsyntax.Not (Qsyntax.Atom (atom "T" [ v "x" ]))))

let check_same_outcome name d ics q =
  let tset = Alcotest.testable (Fmt.any "tuple-set") Tuple.Set.equal in
  match
    ( Query.Cqa.consistent_answers ~method_:Query.Cqa.ModelTheoretic d ics q,
      Query.Cqa.consistent_answers ~method_:Query.Cqa.ModelTheoretic
        ~decompose:true d ics q )
  with
  | Ok mono, Ok dec ->
      Alcotest.check tset (name ^ ": consistent") mono.Query.Cqa.consistent
        dec.Query.Cqa.consistent;
      Alcotest.check tset (name ^ ": possible") mono.Query.Cqa.possible
        dec.Query.Cqa.possible;
      Alcotest.(check int)
        (name ^ ": repair_count")
        mono.Query.Cqa.repair_count dec.Query.Cqa.repair_count
  | _ -> Alcotest.fail (name ^ ": CQA failed")

let test_cqa_decomposed () =
  let w = Gen.clusters_workload ~padding:1 ~k:3 () in
  check_same_outcome "single-atom" w.Gen.d w.Gen.ics q_single;
  check_same_outcome "join" w.Gen.d w.Gen.ics q_join;
  check_same_outcome "negated (fallback)" w.Gen.d w.Gen.ics q_negated

(* ------------------------------------------------------------------ *)
(* Differential qcheck suites over random schemas *)

let sorted_repairs ?max_states ~decompose d ics =
  List.sort Instance.compare (Enumerate.repairs ?max_states ~decompose d ics)

let diff_repairs_test =
  QCheck.Test.make ~name:"decomposed repairs = monolithic (500 random cases)"
    ~count:500
    QCheck.(int_bound 1_000_000) (fun seed ->
      let w = Gen.random_case ~seed () in
      match
        ( sorted_repairs ~max_states:50_000 ~decompose:false w.Gen.d w.Gen.ics,
          sorted_repairs ~max_states:50_000 ~decompose:true w.Gen.d w.Gen.ics )
      with
      | mono, dec ->
          if List.length mono <> List.length dec || not (List.for_all2 Instance.equal mono dec)
          then
            QCheck.Test.fail_reportf "repairs differ on %s:@.mono %a@.dec %a"
              w.Gen.label
              Fmt.(list ~sep:(any " | ") Instance.pp_inline)
              mono
              Fmt.(list ~sep:(any " | ") Instance.pp_inline)
              dec
          else true
      | exception Enumerate.Budget_exceeded _ -> true)

let diff_cqa_test =
  QCheck.Test.make ~name:"decomposed CQA = monolithic (200 random cases)"
    ~count:200
    QCheck.(int_bound 1_000_000) (fun seed ->
      let w = Gen.random_case ~seed () in
      List.for_all
        (fun q ->
          match
            ( Query.Cqa.consistent_answers ~method_:Query.Cqa.ModelTheoretic
                ~max_effort:50_000 w.Gen.d w.Gen.ics q,
              Query.Cqa.consistent_answers ~method_:Query.Cqa.ModelTheoretic
                ~max_effort:50_000 ~decompose:true w.Gen.d w.Gen.ics q )
          with
          | Ok _, Ok dec when dec.Query.Cqa.exhausted <> None ->
              (* the decomposed run degraded gracefully under the budget:
                 its partial answers need not match the monolithic ones *)
              true
          | Ok mono, Ok dec ->
              Tuple.Set.equal mono.Query.Cqa.consistent dec.Query.Cqa.consistent
              && Tuple.Set.equal mono.Query.Cqa.possible dec.Query.Cqa.possible
              && mono.Query.Cqa.repair_count = dec.Query.Cqa.repair_count
          | Error _, (Error _ | Ok _) -> true
          | _ -> false)
        [
          Qsyntax.make ~head:[ "x" ] (Qsyntax.Atom (atom "P" [ v "x" ]));
          Qsyntax.make ~head:[ "x" ]
            (Qsyntax.And
               ( Qsyntax.Atom (atom "R" [ v "x"; v "y" ]),
                 Qsyntax.Atom (atom "S" [ v "x" ]) ));
          Qsyntax.make ~head:[ "x" ]
            (Qsyntax.And
               ( Qsyntax.Atom (atom "P" [ v "x" ]),
                 Qsyntax.Not (Qsyntax.Atom (atom "Q" [ v "x" ])) ));
        ])

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "decompose"
    [
      ( "plan",
        [
          Alcotest.test_case "consistent instance" `Quick test_plan_consistent;
          Alcotest.test_case "clusters" `Quick test_plan_clusters;
          Alcotest.test_case "support atoms" `Quick test_plan_support_atoms;
          Alcotest.test_case "shared universe" `Quick test_components_share_universe;
        ] );
      ( "differential",
        [
          Alcotest.test_case "paper examples" `Quick test_examples_differential;
          Alcotest.test_case "clusters" `Quick test_clusters_differential;
          Alcotest.test_case "exploration collapses" `Quick test_exploration_collapses;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "engine" `Quick test_engine_decomposed;
          Alcotest.test_case "cqa" `Quick test_cqa_decomposed;
        ] );
      ("qcheck", qcheck [ diff_repairs_test; diff_cqa_test ]);
    ]
