(* The concurrent serving stack: the thread-safe LRU, the atomic instance
   memos, the shared-cache protocol differential across domains, the
   never-raise hardening contract and a socket round-trip.  Concurrency
   here is real — tests spawn domains and threads — but every assertion
   is about deterministic facts (coherent counters, byte-identical
   replies), not timing. *)

module Lru = Session.Lru
module Cache = Session.Cache
module Instance = Relational.Instance
module Value = Relational.Value
module Gen = Workload.Gen

let join_all ds = List.iter Domain.join ds

(* ------------------------------------------------------------------ *)
(* Satellite: the mutex-guarded LRU under domain-parallel fire. *)

let test_lru_concurrent () =
  let domains = 4 and probes = 1_000 and capacity = 16 in
  let c = Lru.create ~capacity in
  let ds =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            for j = 0 to probes - 1 do
              let key = Printf.sprintf "k%d" ((i + j) mod 64) in
              (match Lru.find c key with
              | Some _ -> ()
              | None -> Lru.add c key ((i * probes) + j));
              ignore (Lru.mem c key)
            done))
  in
  join_all ds;
  Alcotest.(check int) "counters coherent: hits + misses = probes"
    (domains * probes)
    (Lru.hits c + Lru.misses c);
  Alcotest.(check bool) "bounded" true (Lru.length c <= capacity);
  Alcotest.(check bool) "evictions non-negative" true (Lru.evictions c >= 0)

(* ------------------------------------------------------------------ *)
(* Satellite: the adom/nulls memos race-free under concurrent first use. *)

let test_instance_memo_concurrent () =
  let base =
    Instance.of_list
      [
        ("S", [ Value.str "a" ]);
        ("S", [ Value.null ]);
        ("R", [ Value.str "a"; Value.null ]);
        ("R", [ Value.str "b"; Value.int 3 ]);
      ]
  in
  let expected_adom = Instance.active_domain base in
  let expected_nulls = Instance.null_count base in
  (* a fresh copy per round so every round races on cold memos *)
  for _ = 1 to 20 do
    let d =
      Instance.of_list
        [
          ("S", [ Value.str "a" ]);
          ("S", [ Value.null ]);
          ("R", [ Value.str "a"; Value.null ]);
          ("R", [ Value.str "b"; Value.int 3 ]);
        ]
    in
    let ds =
      List.init 4 (fun _ ->
          Domain.spawn (fun () ->
              (Instance.active_domain d, Instance.null_count d)))
    in
    List.iter
      (fun dom ->
        let adom, nulls = Domain.join dom in
        Alcotest.(check int) "null_count agrees" expected_nulls nulls;
        Alcotest.(check bool) "active_domain agrees" true
          (List.length adom = List.length expected_adom
          && List.for_all2 Value.equal adom expected_adom))
      ds
  done

(* ------------------------------------------------------------------ *)
(* Tentpole: N domains, one shared base + one global cache, identical
   insert/delete/cqa streams — every reply byte-identical to a cold
   private-session replay, and the cache provably shared across
   sessions. *)

let serve_env () =
  let query =
    Query.Qsyntax.make ~head:[ "x" ]
      (Query.Qsyntax.Atom (Ic.Patom.make "S" [ Ic.Term.var "x" ]))
  in
  {
    Serve.Protocol.schema =
      Relational.Schema.of_list
        [ ("S", [ "x" ]); ("R", [ "x"; "y" ]); ("T", [ "x" ]);
          ("Note", [ "x" ]) ];
    queries = [ ("q1", query) ];
  }

let script =
  [
    "check"; "repairs"; "cqa q1";
    "insert Note(n0)"; "repairs";
    "delete S(a0)"; "repairs"; "cqa q1";
    "insert S(a0)"; "repairs"; "cqa q1";
  ]

let protocol_config ?cache () =
  {
    Serve.Protocol.engine = Session.Program;
    jobs = 1;
    capacity = 256;
    timeout_ms = None;
    want_stats = false;
    allow_load = false;
    max_line = Serve.Protocol.default_max_line;
    cache;
    extra_stats = None;
  }

let replay cfg ~violations ~base ~ics env =
  let p = Serve.Protocol.create cfg in
  ignore (Serve.Protocol.attach ~violations p ~base ~ics env);
  List.map (fun line -> (Serve.Protocol.exec p line).Serve.Protocol.text)
    script

let test_shared_cache_differential () =
  let w = Gen.clusters_workload ~padding:2 ~k:4 () in
  let base = w.Gen.d and ics = w.Gen.ics in
  let env = serve_env () in
  let violations =
    Semantics.Nullsat.canonical_violations (Semantics.Nullsat.check base ics)
  in
  let cold = replay (protocol_config ()) ~violations ~base ~ics env in
  let shared = Cache.create ~capacity:256 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            replay
              (protocol_config ~cache:shared ())
              ~violations ~base ~ics env))
  in
  List.iteri
    (fun i dom ->
      let replies = Domain.join dom in
      List.iteri
        (fun j reply ->
          Alcotest.(check string)
            (Printf.sprintf "domain %d reply %d byte-identical to cold" i j)
            (List.nth cold j) reply)
        replies)
    ds;
  let st = Cache.stats shared in
  Alcotest.(check bool) "cache served across sessions" true
    (st.Cache.cross_hits > 0);
  Alcotest.(check bool) "bounded" true (st.Cache.entries <= st.Cache.capacity);
  Alcotest.(check int) "all sessions attached" 4 st.Cache.sessions

(* ------------------------------------------------------------------ *)
(* Satellite: the never-raise contract — junk in, error replies out. *)

let test_protocol_never_raises () =
  let w = Gen.clusters_workload ~k:2 () in
  let env = serve_env () in
  let p = Serve.Protocol.create (protocol_config ()) in
  ignore (Serve.Protocol.attach p ~base:w.Gen.d ~ics:w.Gen.ics env);
  let junk =
    [
      "bogus";
      "insert";
      "insert Nosuch(1)";
      "insert S(";
      "insert S(a, b, c)";
      "delete";
      "cqa";
      "cqa nosuch";
      "cqa q(X: P(X)";
      "load /nonexistent.cqa";
      String.make (Serve.Protocol.default_max_line + 1) 'a';
      "\x00\x01\x02";
    ]
  in
  List.iter
    (fun line ->
      let r = Serve.Protocol.exec p line in
      Alcotest.(check bool)
        (Printf.sprintf "error reply for %S" (String.sub line 0 (min 16 (String.length line))))
        true
        (String.length r.Serve.Protocol.text >= 6
        && String.sub r.Serve.Protocol.text 0 6 = "error:");
      Alcotest.(check bool) "does not quit" false r.Serve.Protocol.quit)
    junk;
  (* blank lines and comments are silently accepted *)
  List.iter
    (fun line ->
      let r = Serve.Protocol.exec p line in
      Alcotest.(check string) "silent" "" r.Serve.Protocol.text)
    [ ""; "   "; "% a comment" ];
  (* a protocol with no session answers instead of crashing *)
  let empty = Serve.Protocol.create (protocol_config ()) in
  let r = Serve.Protocol.exec empty "repairs" in
  Alcotest.(check string) "no database loaded"
    "error: no database loaded (use: load FILE)\n" r.Serve.Protocol.text

(* ------------------------------------------------------------------ *)
(* The socket layer end to end: two clients over a Unix socket, replies
   framed and byte-identical to the cold replay, clean shutdown. *)

let test_socket_roundtrip () =
  let w = Gen.clusters_workload ~padding:1 ~k:2 () in
  let base = w.Gen.d and ics = w.Gen.ics in
  let env = serve_env () in
  let cfg =
    {
      Serve.Server.engine = Session.Program;
      jobs = 1;
      cache_capacity = 256;
      timeout_ms = None;
      want_stats = false;
      max_line = Serve.Protocol.default_max_line;
    }
  in
  let srv = Serve.Server.create cfg ~base ~ics env in
  let cold =
    replay (protocol_config ())
      ~violations:(Serve.Server.violations srv)
      ~base ~ics env
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cqanull-test-%d.sock" (Unix.getpid ()))
  in
  let fd = Serve.Server.listen_unix sock in
  let server = Thread.create (fun () -> Serve.Server.run srv fd) () in
  let run_client () =
    match Serve.Client.connect ~retry_ms:5_000 (Unix.ADDR_UNIX sock) with
    | Error e -> Alcotest.fail ("connect: " ^ e)
    | Ok c ->
        let replies =
          List.map
            (fun line ->
              match Serve.Client.request c line with
              | Ok text -> text
              | Error `Closed -> Alcotest.fail "server hung up mid-script")
            script
        in
        Serve.Client.close c;
        replies
  in
  let t1 = Thread.create run_client () in
  let t2 = Thread.create run_client () in
  Thread.join t1;
  Thread.join t2;
  (* replies checked via a third, sequential client so Alcotest failures
     land on the main thread *)
  (match Serve.Client.connect ~retry_ms:5_000 (Unix.ADDR_UNIX sock) with
  | Error e -> Alcotest.fail ("connect: " ^ e)
  | Ok c ->
      List.iteri
        (fun j line ->
          match Serve.Client.request c line with
          | Ok text ->
              Alcotest.(check string)
                (Printf.sprintf "reply %d byte-identical to cold" j)
                (List.nth cold j) text
          | Error `Closed -> Alcotest.fail "server hung up mid-script")
        script;
      (match Serve.Client.request c "shutdown" with
      | Ok text -> Alcotest.(check string) "shutdown ack" "shutting down\n" text
      | Error `Closed -> Alcotest.fail "no shutdown ack");
      Serve.Client.close c);
  Thread.join server;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let st = Serve.Server.stats srv in
  Alcotest.(check int) "three connections" 3 st.Serve.Server.connections;
  Alcotest.(check bool) "cache shared across socket sessions" true
    (st.Serve.Server.cache.Cache.cross_hits > 0)

let () =
  Alcotest.run "serve"
    [
      ( "lru",
        [ Alcotest.test_case "concurrent probes" `Quick test_lru_concurrent ]
      );
      ( "memo",
        [
          Alcotest.test_case "atomic publication" `Quick
            test_instance_memo_concurrent;
        ] );
      ( "shared-cache",
        [
          Alcotest.test_case "multi-domain differential" `Quick
            test_shared_cache_differential;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "never raises" `Quick test_protocol_never_raises;
        ] );
      ( "socket",
        [ Alcotest.test_case "round-trip" `Quick test_socket_roundtrip ] );
    ]
