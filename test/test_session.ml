(* Tests for the incremental session engine: Delta, the LRU cache,
   fingerprint stability, incremental violation maintenance
   (Nullsat.check_delta), cache invalidation/reuse, and the qcheck
   differential enforcing the correctness contract — session answers after
   any delta sequence are byte-identical to a cold one-shot run on the
   final instance. *)

module Value = Relational.Value
module Atom = Relational.Atom
module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Term = Ic.Term
module Patom = Ic.Patom
module Constr = Ic.Constr
module Nullsat = Semantics.Nullsat
module Decompose = Repair.Decompose
module Enumerate = Repair.Enumerate
module Gen = Workload.Gen
module Qsyntax = Query.Qsyntax
module Lru = Session.Lru

let v = Term.var
let patom p ts = Patom.make p ts
let vs = Value.str
let vn = Value.null
let instance = Alcotest.testable Instance.pp_inline Instance.equal

let ric =
  Constr.generic
    ~ante:[ patom "Course" [ v "id"; v "code" ] ]
    ~cons:[ patom "Student" [ v "id"; v "name" ] ]
    ()

let course i c = Atom.make "Course" [ Value.int i; vs c ]
let student i n = Atom.make "Student" [ Value.int i; vs n ]

let ex15 =
  Instance.of_atoms
    [ course 21 "C15"; course 34 "C18"; student 21 "Ann"; student 45 "Paul" ]

(* ------------------------------------------------------------------ *)
(* Delta *)

let test_delta_apply () =
  let d = ex15 in
  let ops = [ Delta.insert (course 50 "C99"); Delta.delete (student 45 "Paul") ] in
  let d' = Delta.apply ops d in
  Alcotest.(check bool) "inserted" true (Instance.mem (course 50 "C99") d');
  Alcotest.(check bool) "deleted" false (Instance.mem (student 45 "Paul") d');
  Alcotest.(check int) "cardinal" 4 (Instance.cardinal d')

let test_delta_effective () =
  let d = ex15 in
  (* inserting a present atom and deleting an absent one are no net ops;
     insert-then-delete of the same new atom cancels *)
  let ops =
    [
      Delta.insert (course 21 "C15");
      Delta.delete (course 99 "C0");
      Delta.insert (course 50 "C99");
      Delta.delete (course 50 "C99");
      Delta.delete (student 45 "Paul");
    ]
  in
  let inserted, deleted = Delta.effective ops d in
  Alcotest.(check (list string)) "net inserts" []
    (List.map Atom.to_string inserted);
  Alcotest.(check (list string)) "net deletes"
    [ Atom.to_string (student 45 "Paul") ]
    (List.map Atom.to_string deleted);
  Alcotest.(check instance) "apply matches effective"
    (Instance.remove (student 45 "Paul") d)
    (Delta.apply ops d)

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  ignore (Lru.find c "a");
  (* "b" is now least-recently-used: adding "c" evicts it *)
  Lru.add c "c" 3;
  Alcotest.(check bool) "a survives" true (Lru.mem c "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check bool) "c present" true (Lru.mem c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check int) "one hit" 1 (Lru.hits c);
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_lru_counters () =
  let c = Lru.create ~capacity:4 in
  Alcotest.(check (option int)) "miss" None (Lru.find c "x");
  Lru.add c "x" 7;
  Alcotest.(check (option int)) "hit" (Some 7) (Lru.find c "x");
  Lru.add c "x" 8;
  Alcotest.(check (option int)) "overwrite" (Some 8) (Lru.find c "x");
  Alcotest.(check int) "hits" 2 (Lru.hits c);
  Alcotest.(check int) "misses" 1 (Lru.misses c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check int) "counters survive clear" 2 (Lru.hits c)

let test_lru_disabled () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  Alcotest.(check int) "stores nothing" 0 (Lru.length c);
  Alcotest.(check (option int)) "always misses" None (Lru.find c "a")

(* ------------------------------------------------------------------ *)
(* Fingerprint stability *)

let test_fingerprint_reorder () =
  (* the same tuples loaded in a different order produce the same
     components with the same fingerprints (instances are sets and the
     fingerprint renders them sorted) *)
  let atoms =
    [ course 21 "C15"; course 34 "C18"; student 21 "Ann"; student 45 "Paul" ]
  in
  let d1 = Instance.of_atoms atoms and d2 = Instance.of_atoms (List.rev atoms) in
  let p1 = Decompose.plan d1 [ ric ] and p2 = Decompose.plan d2 [ ric ] in
  let fps p =
    List.map
      (Decompose.fingerprint ~universe:p.Decompose.universe
         ~nnc_positions:p.Decompose.nnc_positions)
      p.Decompose.components
  in
  Alcotest.(check (list string)) "identical fingerprints" (fps p1) (fps p2)

let test_fingerprint_discriminates () =
  (* adding an unrelated violation leaves the untouched component's
     fingerprint intact (the cache-hit property) while the new component
     fingerprints apart *)
  let p = Decompose.plan ex15 [ ric ] in
  let p' = Decompose.plan (Instance.add (course 50 "C99") ex15) [ ric ] in
  let fps = List.map Decompose.fingerprint p.Decompose.components in
  let fps' = List.map Decompose.fingerprint p'.Decompose.components in
  Alcotest.(check int) "one component before" 1 (List.length fps);
  Alcotest.(check int) "two components after" 2 (List.length fps');
  Alcotest.(check bool) "untouched component keeps its fingerprint" true
    (List.for_all (fun f -> List.mem f fps') fps);
  Alcotest.(check int) "new component fingerprints apart" 2
    (List.length (List.sort_uniq String.compare fps'))

(* ------------------------------------------------------------------ *)
(* Random deltas for the differential suites *)

let random_atom rng =
  let sym i = [| vs "a"; vs "b"; vs "c"; vn |].(i) in
  let one () = sym (Random.State.int rng 4) in
  match Random.State.int rng 4 with
  | 0 -> Atom.make "P" [ one () ]
  | 1 -> Atom.make "Q" [ one () ]
  | 2 -> Atom.make "R" [ one (); one () ]
  | _ -> Atom.make "S" [ one () ]

(* a batch of 1-3 ops: inserts of random atoms and deletes of random
   present atoms (plus the occasional no-op delete of a random atom) *)
let random_batch rng d =
  List.init
    (1 + Random.State.int rng 3)
    (fun _ ->
      if Random.State.bool rng then Delta.insert (random_atom rng)
      else
        let atoms = Instance.atoms d in
        if atoms <> [] && Random.State.bool rng then
          Delta.delete (List.nth atoms (Random.State.int rng (List.length atoms)))
        else Delta.delete (random_atom rng))

(* ------------------------------------------------------------------ *)
(* check_delta differential: incremental maintenance = full recheck *)

let diff_check_delta_test =
  QCheck.Test.make ~name:"check_delta = canonical full recheck (300 cases)"
    ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let w = Gen.random_case ~seed () in
      let rng = Random.State.make [| seed; 17 |] in
      let d = ref w.Gen.d in
      let before = ref (Nullsat.canonical_violations (Nullsat.check !d w.Gen.ics)) in
      let steps = 1 + Random.State.int rng 4 in
      let ok = ref true in
      for _ = 1 to steps do
        let ops = random_batch rng !d in
        let inserted, deleted = Delta.effective ops !d in
        let d' = Delta.apply ops !d in
        let incr, _stats =
          Nullsat.check_delta ~before:!before ~inserted ~deleted d' w.Gen.ics
        in
        let full = Nullsat.canonical_violations (Nullsat.check d' w.Gen.ics) in
        if
          not
            (List.equal
               (fun a b -> Nullsat.compare_violation a b = 0)
               incr full)
        then ok := false;
        d := d';
        before := incr
      done;
      if not !ok then
        QCheck.Test.fail_reportf "incremental violations diverge on %s"
          w.Gen.label
      else true)

(* The seeded tier-3 path specifically: FD/RIC workloads whose foreign
   key's consequent relation the delta touches, so check_delta cannot
   stay on the reused/fast tiers — deleting parents orphans children
   (orphaned-witness seeds), re-inserting them silences violations
   (kept-violation re-probes), and inserting children triggers insertion
   seeds.  Compared against the full canonical recheck on the generated
   key+FK+not-null workloads, including the large-instance generator the
   E19 bench rows use (at test-sized n). *)
let diff_check_delta_seeded_test =
  QCheck.Test.make ~name:"check_delta seeded tier = full recheck (200 cases)"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let w =
        match seed mod 3 with
        | 0 ->
            Gen.scale_workload ~seed ~tuples:(60 + (seed mod 120))
              ~null_rate:0.1 ()
        | 1 ->
            Gen.fk_workload ~seed ~n_parent:6 ~n_child:9 ~orphan_rate:0.3
              ~null_rate:0.2 ()
        | _ -> Gen.fd_workload ~seed ~n:6 ~dup_rate:0.5 ~width:4 ()
      in
      let rng = Random.State.make [| seed; 23 |] in
      let d = ref w.Gen.d in
      let before =
        ref (Nullsat.canonical_violations (Nullsat.check !d w.Gen.ics))
      in
      let ok = ref true in
      let rescans = ref 0 in
      for _ = 1 to 3 do
        (* bias the batch toward consequent relations: delete a present
           atom (often a parent), then re-insert a previously deleted or
           fresh one *)
        let atoms = Instance.atoms !d in
        let pick () = List.nth atoms (Random.State.int rng (List.length atoms)) in
        let ops =
          if atoms = [] then [ Delta.insert (random_atom rng) ]
          else
            [ Delta.delete (pick ()); Delta.delete (pick ());
              Delta.insert (pick ()) ]
        in
        let inserted, deleted = Delta.effective ops !d in
        let d' = Delta.apply ops !d in
        let incr, stats =
          Nullsat.check_delta ~before:!before ~inserted ~deleted d' w.Gen.ics
        in
        rescans := !rescans + stats.Nullsat.rescanned;
        let full = Nullsat.canonical_violations (Nullsat.check d' w.Gen.ics) in
        if
          not
            (List.equal
               (fun a b -> Nullsat.compare_violation a b = 0)
               incr full)
        then ok := false;
        d := d';
        before := incr
      done;
      if not !ok then
        QCheck.Test.fail_reportf "seeded incremental violations diverge on %s"
          w.Gen.label
      else true)

(* ------------------------------------------------------------------ *)
(* Session differential: byte-identity with cold runs on the final
   instance, after every batch of a random delta sequence *)

let queries =
  [
    Qsyntax.make ~head:[ "x" ] (Qsyntax.Atom (patom "P" [ v "x" ]));
    Qsyntax.make ~head:[ "x" ]
      (Qsyntax.And
         ( Qsyntax.Atom (patom "R" [ v "x"; v "y" ]),
           Qsyntax.Atom (patom "S" [ v "x" ]) ));
    Qsyntax.make ~head:[ "x" ]
      (Qsyntax.And
         ( Qsyntax.Atom (patom "P" [ v "x" ]),
           Qsyntax.Not (Qsyntax.Atom (patom "Q" [ v "x" ])) ));
  ]

let cold_repairs engine d ics =
  match engine with
  (* the routing engine's repair sets are byte-identical to the
     model-theoretic decomposed engine's, so Auto shares its oracle *)
  | Session.Enumerate | Session.Auto -> (
      match Enumerate.repairs ~max_states:50_000 ~decompose:true d ics with
      | reps -> Ok reps
      | exception Enumerate.Budget_exceeded n ->
          Error (Budget.message (Budget.States n)))
  | Session.Program ->
      Core.Engine.repairs ~max_decisions:50_000 ~decompose:true d ics

let same_outcome (a : Query.Cqa.outcome) (b : Query.Cqa.outcome) =
  Tuple.Set.equal a.Query.Cqa.consistent b.Query.Cqa.consistent
  && Tuple.Set.equal a.Query.Cqa.possible b.Query.Cqa.possible
  && Tuple.Set.equal a.Query.Cqa.standard b.Query.Cqa.standard
  && a.Query.Cqa.repair_count = b.Query.Cqa.repair_count
  && a.Query.Cqa.exhausted = b.Query.Cqa.exhausted

let method_of = function
  | Session.Enumerate -> Query.Cqa.ModelTheoretic
  | Session.Program -> Query.Cqa.LogicProgram
  | Session.Auto -> Query.Cqa.Auto

(* one random case: create the session, fold in [steps] random batches,
   and after each batch compare session repairs (byte order included) and
   session CQA against the cold engines on the current instance *)
let run_differential engine ~check_cqa seed =
  let w = Gen.random_case ~seed () in
  let rng = Random.State.make [| seed; 23 |] in
  let session =
    Session.create ~engine ~max_effort:50_000 ~capacity:64 w.Gen.d w.Gen.ics
  in
  let d = ref w.Gen.d in
  let steps = 1 + Random.State.int rng 3 in
  let failure = ref None in
  (try
     for _ = 1 to steps do
       let ops = random_batch rng !d in
       Session.apply session ops;
       d := Delta.apply ops !d;
       if not (Instance.equal (Session.instance session) !d) then (
         failure := Some "session instance diverged";
         raise Exit);
       (match (Session.repairs session, cold_repairs engine !d w.Gen.ics) with
       | Ok sr, Ok cr ->
           if
             not
               (List.length sr = List.length cr
               && List.for_all2 Instance.equal sr cr)
           then (
             failure := Some "repair lists differ";
             raise Exit)
       | Error _, Error _ -> ()
       | Ok _, Error _ | Error _, Ok _ ->
           failure := Some "one side errored";
           raise Exit);
       if check_cqa then
         List.iter
           (fun q ->
             match
               ( Session.cqa session q,
                 Query.Cqa.consistent_answers ~method_:(method_of engine)
                   ~max_effort:50_000 ~decompose:true !d w.Gen.ics q )
             with
             | Ok so, Ok co ->
                 if not (same_outcome so co) then (
                   failure := Some "cqa outcomes differ";
                   raise Exit)
             | Error _, Error _ -> ()
             | Ok _, Error _ | Error _, Ok _ ->
                 failure := Some "one cqa side errored";
                 raise Exit)
           queries
     done
   with Exit -> ());
  match !failure with
  | None -> true
  | Some what ->
      QCheck.Test.fail_reportf "session vs cold (%s): %s on %s"
        (match engine with
        | Session.Enumerate -> "enumerate"
        | Session.Program -> "program"
        | Session.Auto -> "auto")
        what w.Gen.label

let diff_session_enum_repairs =
  QCheck.Test.make
    ~name:"session repairs = cold decomposed, enumerate (150 cases)"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (run_differential Session.Enumerate ~check_cqa:false)

let diff_session_prog_repairs =
  QCheck.Test.make
    ~name:"session repairs = cold decomposed, program (100 cases)"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (run_differential Session.Program ~check_cqa:false)

let diff_session_enum_cqa =
  QCheck.Test.make
    ~name:"session cqa = cold decomposed cqa, enumerate (100 cases)"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (run_differential Session.Enumerate ~check_cqa:true)

let diff_session_prog_cqa =
  QCheck.Test.make
    ~name:"session cqa = cold decomposed cqa, program (60 cases)"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (run_differential Session.Program ~check_cqa:true)

let diff_session_auto_repairs =
  QCheck.Test.make
    ~name:"session repairs = cold decomposed, auto (100 cases)"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (run_differential Session.Auto ~check_cqa:false)

let diff_session_auto_cqa =
  QCheck.Test.make
    ~name:"session cqa = cold decomposed cqa, auto (60 cases)"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (run_differential Session.Auto ~check_cqa:true)

(* ------------------------------------------------------------------ *)
(* Cache behavior on the clusters workload *)

let test_cache_reuse () =
  let w = Gen.clusters_workload ~k:4 () in
  let s = Session.create ~engine:Session.Program w.Gen.d w.Gen.ics in
  (match Session.repairs s with
  | Ok reps -> Alcotest.(check int) "2^4 repairs" 16 (List.length reps)
  | Error msg -> Alcotest.fail msg);
  let st = Session.stats s in
  Alcotest.(check int) "first request misses all" 4 st.Session.cache_misses;
  Alcotest.(check int) "no hits yet" 0 st.Session.cache_hits;
  (match Session.repairs s with
  | Ok reps -> Alcotest.(check int) "same count" 16 (List.length reps)
  | Error msg -> Alcotest.fail msg);
  let st = Session.stats s in
  Alcotest.(check int) "second request hits all" 4 st.Session.cache_hits;
  Alcotest.(check int) "no new misses" 4 st.Session.cache_misses

let test_cache_invalidation () =
  let w = Gen.clusters_workload ~k:4 () in
  let s = Session.create ~engine:Session.Program w.Gen.d w.Gen.ics in
  (match Session.repairs s with Ok _ -> () | Error m -> Alcotest.fail m);
  (* delete cluster 0's S(a0): its component disappears, the other three
     keep their fingerprints — the next request hits 3 of 3 *)
  Session.apply s [ Delta.delete (Atom.make "S" [ vs "a0" ]) ];
  (match Session.repairs s with
  | Ok reps -> Alcotest.(check int) "2^3 repairs" 8 (List.length reps)
  | Error msg -> Alcotest.fail msg);
  let st = Session.stats s in
  Alcotest.(check int) "three hits after the delta" 3 st.Session.cache_hits;
  Alcotest.(check int) "no re-solve of untouched components" 4
    st.Session.cache_misses;
  Alcotest.(check int) "plan was rebuilt" 2 st.Session.plan_rebuilds

let test_plan_refresh () =
  let w = Gen.clusters_workload ~k:3 () in
  let s = Session.create ~engine:Session.Program w.Gen.d w.Gen.ics in
  (match Session.repairs s with Ok _ -> () | Error m -> Alcotest.fail m);
  (* an insert over a predicate no constraint mentions, carrying no new
     constant (the universe must stay fixed), cannot disturb the
     partition: the plan refreshes in place and every component hits *)
  Session.apply s [ Delta.insert (Atom.make "Note" [ vs "a0" ]) ];
  (match Session.repairs s with Ok _ -> () | Error m -> Alcotest.fail m);
  let st = Session.stats s in
  Alcotest.(check int) "plan reused" 1 st.Session.plan_reuses;
  Alcotest.(check int) "single rebuild (the first)" 1 st.Session.plan_rebuilds;
  Alcotest.(check int) "all components hit" 3 st.Session.cache_hits;
  Alcotest.(check int) "untouched constraints reused" 2 st.Session.ics_reused

let test_session_eviction () =
  let w = Gen.clusters_workload ~k:4 () in
  let s =
    Session.create ~engine:Session.Program ~capacity:2 w.Gen.d w.Gen.ics
  in
  (match Session.repairs s with Ok _ -> () | Error m -> Alcotest.fail m);
  let st = Session.stats s in
  Alcotest.(check int) "capacity bounds residency" 2 st.Session.cache_entries;
  Alcotest.(check int) "evictions happened" 2 st.Session.cache_evictions;
  (* a second request must re-solve the evicted components but still
     answers identically *)
  match (Session.repairs s, Session.repairs s) with
  | Ok a, Ok b ->
      Alcotest.(check int) "stable" (List.length a) (List.length b)
  | _ -> Alcotest.fail "eviction broke the session"

let test_session_consistent_instance () =
  let d = Instance.of_atoms [ course 21 "C15"; student 21 "Ann" ] in
  let s = Session.create d [ ric ] in
  Alcotest.(check bool) "consistent" true (Session.consistent s);
  match Session.repairs s with
  | Ok [ r ] -> Alcotest.(check instance) "sole repair is D" d r
  | Ok reps ->
      Alcotest.failf "expected 1 repair, got %d" (List.length reps)
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "session"
    [
      ( "delta",
        [
          Alcotest.test_case "apply" `Quick test_delta_apply;
          Alcotest.test_case "effective" `Quick test_delta_effective;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "counters" `Quick test_lru_counters;
          Alcotest.test_case "capacity 0 disables" `Quick test_lru_disabled;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "stable under reordering" `Quick
            test_fingerprint_reorder;
          Alcotest.test_case "discriminates content" `Quick
            test_fingerprint_discriminates;
        ] );
      ( "cache",
        [
          Alcotest.test_case "reuse across requests" `Quick test_cache_reuse;
          Alcotest.test_case "invalidation after delta" `Quick
            test_cache_invalidation;
          Alcotest.test_case "plan refresh fast path" `Quick test_plan_refresh;
          Alcotest.test_case "LRU eviction under pressure" `Quick
            test_session_eviction;
          Alcotest.test_case "consistent instance" `Quick
            test_session_consistent_instance;
        ] );
      ( "qcheck",
        qcheck
          [
            diff_check_delta_test;
            diff_check_delta_seeded_test;
            diff_session_enum_repairs;
            diff_session_prog_repairs;
            diff_session_enum_cqa;
            diff_session_prog_cqa;
            diff_session_auto_repairs;
            diff_session_auto_cqa;
          ] );
    ]
