The shipped paper scenarios load and produce the repair counts the paper
reports:

  $ cqanull repairs ../../scenarios/example15_course_student.cqa | tail -n 1
  2 repair(s)
  $ cqanull repairs ../../scenarios/example18_cyclic.cqa | tail -n 1
  4 repair(s)
  $ cqanull repairs ../../scenarios/example19_key_fk_nnc.cqa | tail -n 1
  4 repair(s)

The update-statement scenario repairs its final instance — the facts with
the trailing insert/delete lines applied (two dangling courses, 2 x 2
repairs):

  $ cqanull repairs ../../scenarios/example_session_updates.cqa | tail -n 1
  4 repair(s)

Example 20 under Rep_d keeps only the deletion repair:

  $ cqanull repairs ../../scenarios/example20_conflicting_nnc.cqa --engine enumerate --repd 2>/dev/null | tail -n 1
  1 repair(s)

Example 18's constraint set is flagged RIC-cyclic:

  $ cqanull graph ../../scenarios/example18_cyclic.cqa | grep RIC-acyclic
  RIC-acyclic: NO — cycle through {P,T}
