The shipped paper scenarios load and produce the repair counts the paper
reports:

  $ cqanull repairs ../../scenarios/example15_course_student.cqa | tail -n 1
  2 repair(s)
  $ cqanull repairs ../../scenarios/example18_cyclic.cqa | tail -n 1
  4 repair(s)
  $ cqanull repairs ../../scenarios/example19_key_fk_nnc.cqa | tail -n 1
  4 repair(s)

The update-statement scenario repairs its final instance — the facts with
the trailing insert/delete lines applied (two dangling courses, 2 x 2
repairs):

  $ cqanull repairs ../../scenarios/example_session_updates.cqa | tail -n 1
  4 repair(s)

Example 20 under Rep_d keeps only the deletion repair:

  $ cqanull repairs ../../scenarios/example20_conflicting_nnc.cqa --engine enumerate --repd 2>/dev/null | tail -n 1
  1 repair(s)

Example 18's constraint set is flagged RIC-cyclic:

  $ cqanull graph ../../scenarios/example18_cyclic.cqa | grep RIC-acyclic
  RIC-acyclic: NO — cycle through {P,T}

The two hard non-HCF families added with the CDCL engine (ROADMAP item 4
seed).  The cyclic-RIC chain: the RIC closes a cycle with the UIC, the
update statements break a fourth link, and the disjunctive program's
search shows the learning counters at work:

  $ cqanull repairs ../../scenarios/cyclic_ric_chain.cqa --stats | tail -n 3 | sed 's/elapsed_ms=[0-9]*/elapsed_ms=_/'
  16 repair(s)
  stats: decisions=71 states=0 components_solved=0 elapsed_ms=_
  cdcl: conflicts=41 learned=56 restarts=0 backjump_len=87 phase_saved=18

  $ cqanull graph ../../scenarios/cyclic_ric_chain.cqa | grep RIC-acyclic
  RIC-acyclic: NO — cycle through {P,T}

The NNC/RIC conflict chain: every unaudited Dept assignment is a two-way
choice, every unassigned or null-assigned Emp an NNC/RIC conflict forced
into deletion, so the three choices give 2^3 repairs:

  $ cqanull repairs ../../scenarios/nnc_ric_conflicts.cqa --stats 2>&1 | tail -n 3 | sed 's/elapsed_ms=[0-9]*/elapsed_ms=_/'
  8 repair(s)
  stats: decisions=170 states=0 components_solved=0 elapsed_ms=_
  cdcl: conflicts=43 learned=50 restarts=0 backjump_len=225 phase_saved=17

Both search modes agree on the repair sets:

  $ cqanull repairs ../../scenarios/cyclic_ric_chain.cqa --search dpll | tail -n 1
  16 repair(s)
  $ cqanull repairs ../../scenarios/nnc_ric_conflicts.cqa --search dpll 2>/dev/null | tail -n 1
  8 repair(s)
