(* Unit and property tests for the relational substrate. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Atom = Relational.Atom
module Instance = Relational.Instance
module Schema = Relational.Schema
module Projection = Relational.Projection

let v_null = Value.null
let vi = Value.int
let vs = Value.str

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_order () =
  Alcotest.(check bool) "null < int" true (Value.compare v_null (vi 0) < 0);
  Alcotest.(check bool) "int < str" true (Value.compare (vi 99) (vs "a") < 0);
  Alcotest.(check bool) "int order" true (Value.compare (vi 1) (vi 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (vs "a") (vs "b") < 0)

let test_value_equal () =
  Alcotest.(check bool) "null = null" true (Value.equal v_null v_null);
  Alcotest.(check bool) "null <> 0" false (Value.equal v_null (vi 0));
  Alcotest.(check bool) "null <> \"null\"? of_string" true
    (Value.equal (Value.of_string "null") v_null);
  Alcotest.(check bool) "of_string int" true (Value.equal (Value.of_string "42") (vi 42));
  Alcotest.(check bool) "of_string str" true (Value.equal (Value.of_string "ab") (vs "ab"))

let test_value_comparable () =
  Alcotest.(check bool) "null incomparable" false (Value.comparable v_null (vi 1));
  Alcotest.(check bool) "ints comparable" true (Value.comparable (vi 1) (vi 2))

let test_value_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Value.to_string v) true
        (Value.equal v (Value.of_string (Value.to_string v))))
    [ v_null; vi 0; vi (-3); vs "x"; vs "W04" ]

(* ------------------------------------------------------------------ *)
(* Tuple *)

let t vs = Tuple.make vs

let test_tuple_basic () =
  Alcotest.(check int) "arity" 3 (Tuple.arity (t [ vi 1; v_null; vs "a" ]));
  Alcotest.(check bool) "has_null" true (Tuple.has_null (t [ vi 1; v_null ]));
  Alcotest.(check bool) "no null" false (Tuple.has_null (t [ vi 1; vi 2 ]));
  Alcotest.(check bool) "all_non_null" true (Tuple.all_non_null (t [ vi 1 ]))

let test_tuple_compare () =
  Alcotest.(check int) "equal tuples" 0
    (Tuple.compare (t [ vi 1; vi 2 ]) (t [ vi 1; vi 2 ]));
  Alcotest.(check bool) "shorter first" true
    (Tuple.compare (t [ vi 1 ]) (t [ vi 1; vi 2 ]) < 0);
  Alcotest.(check bool) "lexicographic" true
    (Tuple.compare (t [ vi 1; vi 2 ]) (t [ vi 1; vi 3 ]) < 0)

let test_tuple_project () =
  let tu = t [ vs "a"; vs "b"; vs "c" ] in
  Alcotest.(check bool) "keep 1,3" true
    (Tuple.equal (Tuple.project [ 1; 3 ] tu) (t [ vs "a"; vs "c" ]));
  Alcotest.(check bool) "reorder" true
    (Tuple.equal (Tuple.project [ 3; 1 ] tu) (t [ vs "c"; vs "a" ]));
  Alcotest.(check bool) "empty projection" true
    (Tuple.equal (Tuple.project [] tu) (t []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Tuple.project: position 4 out of range 1..3") (fun () ->
      ignore (Tuple.project [ 4 ] tu))

(* ------------------------------------------------------------------ *)
(* Instance *)

let d0 =
  Instance.of_list
    [
      ("P", [ vs "a"; vs "b" ]);
      ("P", [ vs "b"; v_null ]);
      ("R", [ vs "a" ]);
    ]

let test_instance_basic () =
  Alcotest.(check int) "cardinal" 3 (Instance.cardinal d0);
  Alcotest.(check bool) "mem" true (Instance.mem (Atom.make "P" [ vs "a"; vs "b" ]) d0);
  Alcotest.(check bool) "not mem" false (Instance.mem (Atom.make "R" [ vs "b" ]) d0);
  Alcotest.(check (list string)) "preds" [ "P"; "R" ] (Instance.preds d0);
  Alcotest.(check int) "null count" 1 (Instance.null_count d0)

let test_instance_add_remove () =
  let a = Atom.make "Q" [ vi 7 ] in
  let d = Instance.add a d0 in
  Alcotest.(check bool) "added" true (Instance.mem a d);
  Alcotest.(check int) "card up" 4 (Instance.cardinal d);
  let d = Instance.add a d in
  Alcotest.(check int) "set semantics: no duplicates" 4 (Instance.cardinal d);
  let d = Instance.remove a d in
  Alcotest.(check bool) "removed" false (Instance.mem a d);
  Alcotest.(check bool) "back to original" true (Instance.equal d d0)

let test_instance_setops () =
  let d1 = Instance.of_list [ ("P", [ vs "a"; vs "b" ]) ] in
  let diff = Instance.diff d0 d1 in
  Alcotest.(check int) "diff" 2 (Instance.cardinal diff);
  let sd = Instance.symdiff d0 d1 in
  Alcotest.(check int) "symdiff" 2 (Instance.cardinal sd);
  Alcotest.(check bool) "subset" true (Instance.subset d1 d0);
  Alcotest.(check bool) "not subset" false (Instance.subset d0 d1);
  Alcotest.(check bool) "union" true
    (Instance.equal (Instance.union d1 d0) d0)

let test_instance_active_domain () =
  let adom = Instance.active_domain d0 in
  Alcotest.(check int) "adom size" 3 (List.length adom);
  Alcotest.(check bool) "null in adom" true
    (List.exists Value.is_null adom);
  Alcotest.(check int) "non-null adom" 2
    (List.length (Instance.active_domain_non_null d0))

let test_instance_symdiff_self () =
  Alcotest.(check bool) "symdiff with self empty" true
    (Instance.is_empty (Instance.symdiff d0 d0))

(* ------------------------------------------------------------------ *)
(* Schema *)

let schema =
  Schema.of_list [ ("P", [ "A"; "B" ]); ("R", [ "A" ]) ]

let test_schema_basic () =
  Alcotest.(check (option int)) "arity P" (Some 2) (Schema.arity schema "P");
  Alcotest.(check (option int)) "arity unknown" None (Schema.arity schema "X");
  Alcotest.(check (option int)) "attr position" (Some 2)
    (Schema.attr_position schema "P" "B");
  Alcotest.(check (option string)) "attr name" (Some "A")
    (Schema.attr_name schema "P" 1);
  Alcotest.(check bool) "check instance ok" true
    (Result.is_ok (Schema.check_instance schema d0));
  Alcotest.(check bool) "arity mismatch caught" true
    (Result.is_error
       (Schema.check_atom schema (Atom.make "P" [ vs "a" ])))

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate relation"
    (Invalid_argument "Schema.add_relation: duplicate relation P") (fun () ->
      ignore (Schema.add_relation schema ~name:"P" ~attrs:[ "X" ]))

(* ------------------------------------------------------------------ *)
(* Projection (Definition 3) *)

let test_projection_example10 () =
  (* Example 10: D = {P(a,b,a), P(b,c,a), R(a,5), R(a,2)}, A = {P[1], P[2],
     R[1], R[2]} keeps P's first two attributes. *)
  let d =
    Instance.of_list
      [
        ("P", [ vs "a"; vs "b"; vs "a" ]);
        ("P", [ vs "b"; vs "c"; vs "a" ]);
        ("R", [ vs "a"; vi 5 ]);
        ("R", [ vs "a"; vi 2 ]);
      ]
  in
  let da = Projection.project_instance [ ("P", [ 1; 2 ]); ("R", [ 1; 2 ]) ] d in
  let expected =
    Instance.of_list
      [
        ("P", [ vs "a"; vs "b" ]);
        ("P", [ vs "b"; vs "c" ]);
        ("R", [ vs "a"; vi 5 ]);
        ("R", [ vs "a"; vi 2 ]);
      ]
  in
  Alcotest.(check bool) "D^A as in Example 10" true (Instance.equal da expected)

let test_projection_collapses_duplicates () =
  let d =
    Instance.of_list
      [ ("P", [ vs "a"; vs "b" ]); ("P", [ vs "a"; vs "c" ]) ]
  in
  let da = Projection.project_instance [ ("P", [ 1 ]) ] d in
  Alcotest.(check int) "projection is a set" 1 (Instance.cardinal da)

let test_projection_zero_ary () =
  let d = Instance.of_list [ ("P", [ vs "a" ]) ] in
  let da = Projection.project_instance [ ("P", []) ] d in
  Alcotest.(check int) "zero-ary marker survives" 1 (Instance.cardinal da);
  Alcotest.(check bool) "marker atom" true
    (Instance.mem (Atom.make "P" []) da)

let test_restrict_to () =
  let r = Projection.restrict_to [ "R" ] d0 in
  Alcotest.(check (list string)) "only R" [ "R" ] (Instance.preds r)

(* ------------------------------------------------------------------ *)
(* Pretty *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let test_pretty_table () =
  let s = Relational.Pretty.table ~schema d0 "P" in
  Alcotest.(check bool) "mentions header" true (contains s "| A ");
  Alcotest.(check bool) "mentions null" true (contains s "null")

let test_pretty_atoms_line () =
  let s = Relational.Pretty.atoms_line d0 in
  Alcotest.(check bool) "contains null" true (contains s "null")

let test_hash_consistent () =
  let t1 = t [ vi 1; v_null ] and t2 = t [ vi 1; v_null ] in
  Alcotest.(check int) "equal tuples hash equal" (Tuple.hash t1) (Tuple.hash t2);
  Alcotest.(check int) "equal values hash equal" (Value.hash v_null) (Value.hash Value.null)

let test_pretty_empty_relation () =
  let s = Relational.Pretty.table Instance.empty "Nothing" in
  Alcotest.(check bool) "renders header line" true (contains s "Nothing")

let test_instance_compare_order () =
  let a = Instance.of_list [ ("P", [ vi 1 ]) ] in
  let b = Instance.of_list [ ("P", [ vi 2 ]) ] in
  Alcotest.(check bool) "compare consistent with equal" true
    (Instance.compare a a = 0 && Instance.compare a b <> 0);
  Alcotest.(check bool) "antisymmetric" true
    (Instance.compare a b = -Instance.compare b a)

(* ------------------------------------------------------------------ *)
(* Properties *)

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.null);
        (3, map Value.int (int_range 0 5));
        (3, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'e'));
      ])

let tuple_gen arity = QCheck.Gen.(map Tuple.make (list_size (return arity) value_gen))

let atom_gen =
  QCheck.Gen.(
    let* pred = oneofl [ ("P", 2); ("Q", 1); ("R", 3) ] in
    let name, arity = pred in
    map (fun t -> Atom.of_tuple name t) (tuple_gen arity))

let instance_gen = QCheck.Gen.(map Instance.of_atoms (list_size (int_range 0 12) atom_gen))

let instance_arb = QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) instance_gen

let prop_symdiff_commutes =
  QCheck.Test.make ~name:"symdiff commutes" ~count:200
    (QCheck.pair instance_arb instance_arb) (fun (a, b) ->
      Instance.equal (Instance.symdiff a b) (Instance.symdiff b a))

let prop_union_cardinal =
  QCheck.Test.make ~name:"inclusion-exclusion" ~count:200
    (QCheck.pair instance_arb instance_arb) (fun (a, b) ->
      Instance.cardinal (Instance.union a b)
      = Instance.cardinal a + Instance.cardinal b
        - Instance.cardinal (Instance.inter a b))

let prop_atoms_roundtrip =
  QCheck.Test.make ~name:"of_atoms . atoms = id" ~count:200 instance_arb
    (fun d -> Instance.equal d (Instance.of_atoms (Instance.atoms d)))

let prop_projection_cardinal =
  QCheck.Test.make ~name:"projection never grows" ~count:200 instance_arb
    (fun d ->
      let da = Projection.project_instance [ ("P", [ 1 ]); ("R", [ 2; 3 ]) ] d in
      Instance.cardinal da <= Instance.cardinal d)

let value_arb = QCheck.make ~print:Value.to_string value_gen

(* hash/equal coherence: the contract every Hashtbl keyed on values relies
   on.  The converse direction (unequal values hashing apart) is checked
   only for the tiny generator domain — not a requirement, but a collision
   across constructors there would make the hash useless in practice. *)
let prop_hash_equal_coherent =
  QCheck.Test.make ~name:"equal values hash equal" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_hash_discriminates_constructors =
  QCheck.Test.make ~name:"hash separates constructors on the test domain"
    ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.equal a b || Value.hash a <> Value.hash b)

(* ------------------------------------------------------------------ *)
(* Columnar storage vs the functional-set oracle (Instance.Naive).

   The columnar representation (interned segments + deletion/extra
   overlays) must be observationally identical to the old Tuple.Set-per-
   predicate maps it replaced, over the whole signature — including the
   printed form byte for byte and the sign of [compare], which the repair
   engine's canonical orders rest on.  The generator crosses the
   representation's regimes on purpose: a bulk [of_atoms] build (segment-
   backed once a predicate holds >= 8 rows), incremental additions (the
   extra overlay), and removals of both segment rows (the deletion
   overlay) and freshly added ones. *)

module Naive = Instance.Naive

let script_gen =
  QCheck.Gen.(
    let* base = list_size (int_range 0 40) atom_gen in
    let* extras = list_size (int_range 0 10) atom_gen in
    let* mask = list_repeat (List.length base) bool in
    let removes =
      List.filteri (fun i _ -> List.nth mask i) base
    in
    return (base, extras, removes))

let script_print (base, extras, removes) =
  Fmt.str "base=%a extras=%a removes=%a"
    Instance.pp_inline (Instance.of_atoms base)
    Instance.pp_inline (Instance.of_atoms extras)
    Instance.pp_inline (Instance.of_atoms removes)

let script_arb = QCheck.make ~print:script_print script_gen

let build_pair (base, extras, removes) =
  let d =
    List.fold_left (fun d a -> Instance.remove a d)
      (List.fold_left (fun d a -> Instance.add a d) (Instance.of_atoms base)
         extras)
      removes
  in
  let n =
    List.fold_left (fun d a -> Naive.remove a d)
      (List.fold_left (fun d a -> Naive.add a d) (Naive.of_atoms base) extras)
      removes
  in
  (d, n)

let to_naive d = Naive.of_atoms (Instance.atoms d)
let of_naive n = Instance.of_atoms (Naive.atoms n)

let same_observables probe_atoms d n =
  List.length (Instance.atoms d) = List.length (Naive.atoms n)
  && List.for_all2 Atom.equal (Instance.atoms d) (Naive.atoms n)
  && Atom.Set.equal (Instance.atom_set d) (Naive.atom_set n)
  && Instance.cardinal d = Naive.cardinal n
  && Instance.is_empty d = Naive.is_empty n
  && Instance.preds d = Naive.preds n
  && List.for_all
       (fun p -> Tuple.Set.equal (Instance.tuples d p) (Naive.tuples n p))
       [ "P"; "Q"; "R"; "Absent" ]
  && List.for_all (fun a -> Instance.mem a d = Naive.mem a n) probe_atoms
  && Instance.fold (fun a acc -> a :: acc) d []
     = Naive.fold (fun a acc -> a :: acc) n []
  && Instance.active_domain d = Naive.active_domain n
  && Instance.active_domain_non_null d = Naive.active_domain_non_null n
  && Instance.null_count d = Naive.null_count n
  && Fmt.str "%a" Instance.pp d = Fmt.str "%a" Naive.pp n
  && Fmt.str "%a" Instance.pp_inline d = Fmt.str "%a" Naive.pp_inline n

let prop_naive_differential =
  QCheck.Test.make ~name:"columnar = Naive oracle (unary ops, 500 cases)"
    ~count:500 script_arb (fun ((base, extras, removes) as s) ->
      let d, n = build_pair s in
      let probes = base @ extras @ removes in
      same_observables probes d n
      && (let keep a = Atom.pred a <> "Q" in
          same_observables probes (Instance.filter keep d) (Naive.filter keep n)))

let sign x = Stdlib.compare x 0

let prop_naive_differential_binary =
  QCheck.Test.make ~name:"columnar = Naive oracle (set ops, 500 cases)"
    ~count:500 (QCheck.pair script_arb script_arb) (fun (sa, sb) ->
      let da, na = build_pair sa and db, nb = build_pair sb in
      let check_op op nop =
        let r = op da db and nr = nop na nb in
        same_observables (Instance.atoms r) r nr
      in
      check_op Instance.union Naive.union
      && check_op Instance.diff Naive.diff
      && check_op Instance.inter Naive.inter
      && check_op Instance.symdiff Naive.symdiff
      && Instance.subset da db = Naive.subset na nb
      && Instance.subset (Instance.inter da db) da
      && Instance.equal da db = Naive.equal na nb
      && sign (Instance.compare da db) = sign (Naive.compare na nb)
      && sign (Instance.compare db da) = sign (Naive.compare nb na))

(* Mixed-origin operands: one side converted through the other
   representation's constructor, so segment-vs-overlay asymmetries in the
   binary fast paths (shared segment, segless, small-into-big) get hit
   against rebuilt operands too. *)
let prop_naive_differential_rebuilt =
  QCheck.Test.make ~name:"columnar = Naive oracle (rebuilt operands)"
    ~count:200 (QCheck.pair script_arb script_arb) (fun (sa, sb) ->
      let da, na = build_pair sa and db, _ = build_pair sb in
      let db' = of_naive (to_naive db) in
      Instance.equal db db'
      && same_observables (Instance.atoms da)
           (Instance.union da db')
           (Naive.union na (to_naive db'))
      && sign (Instance.compare da db') = sign (Naive.compare na (to_naive db')))

(* check_delta seeding aside, the index probes themselves must agree with
   a filter of the full scan — order included: segment postings ascending,
   then the extra overlay. *)
let prop_iter_matching =
  QCheck.Test.make ~name:"iter_matching = filtered scan" ~count:300
    (QCheck.pair script_arb (QCheck.make value_gen)) (fun (s, v) ->
      let d, _ = build_pair s in
      List.for_all
        (fun (p, arity) ->
          List.for_all
            (fun pos ->
              let probed = ref [] in
              Instance.iter_matching d p ~pos v (fun t ->
                  probed := t :: !probed);
              let scanned = ref [] in
              Instance.iter_rel d p (fun t ->
                  if Value.equal t.(pos) v then scanned := t :: !scanned);
              List.sort Tuple.compare !probed
              = List.sort Tuple.compare !scanned
              && Instance.exists_matching d p ~pos v (fun _ -> true)
                 = (!scanned <> []))
            (List.init arity (fun i -> i)))
        [ ("P", 2); ("Q", 1); ("R", 3) ])

(* Deterministic compaction crossing: a segment-backed relation pushed
   through > threshold incremental additions (forcing at least one
   rebuild), then partially deleted, stays identical to the oracle. *)
let test_compaction_crossing () =
  let mk i = Atom.make "P" [ vi i; (if i mod 7 = 0 then v_null else vi (i * 2)) ] in
  let base = List.init 2000 mk in
  let extras = List.init 1100 (fun i -> mk (10_000 + i)) in
  let removes = List.init 500 (fun i -> mk (i * 3)) in
  let d, n = build_pair (base, extras, removes) in
  Alcotest.(check int) "cardinal" (Naive.cardinal n) (Instance.cardinal d);
  Alcotest.(check int) "null_count" (Naive.null_count n) (Instance.null_count d);
  Alcotest.(check bool) "observables" true
    (same_observables (base @ extras) d n);
  let resurrected = Instance.add (mk 1) (Instance.remove (mk 1) d) in
  Alcotest.(check bool) "remove/re-add roundtrip" true
    (Instance.equal d resurrected)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "order" `Quick test_value_order;
          Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "comparable" `Quick test_value_comparable;
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basic" `Quick test_tuple_basic;
          Alcotest.test_case "compare" `Quick test_tuple_compare;
          Alcotest.test_case "project" `Quick test_tuple_project;
        ] );
      ( "instance",
        [
          Alcotest.test_case "basic" `Quick test_instance_basic;
          Alcotest.test_case "add/remove" `Quick test_instance_add_remove;
          Alcotest.test_case "set ops" `Quick test_instance_setops;
          Alcotest.test_case "active domain" `Quick test_instance_active_domain;
          Alcotest.test_case "symdiff self" `Quick test_instance_symdiff_self;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic" `Quick test_schema_basic;
          Alcotest.test_case "duplicate" `Quick test_schema_duplicate;
        ] );
      ( "projection",
        [
          Alcotest.test_case "example 10" `Quick test_projection_example10;
          Alcotest.test_case "collapses duplicates" `Quick
            test_projection_collapses_duplicates;
          Alcotest.test_case "zero-ary" `Quick test_projection_zero_ary;
          Alcotest.test_case "restrict" `Quick test_restrict_to;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "table" `Quick test_pretty_table;
          Alcotest.test_case "atoms line" `Quick test_pretty_atoms_line;
          Alcotest.test_case "empty relation" `Quick test_pretty_empty_relation;
          Alcotest.test_case "hash" `Quick test_hash_consistent;
          Alcotest.test_case "instance compare" `Quick test_instance_compare_order;
        ] );
      ( "properties",
        qcheck
          [
            prop_symdiff_commutes;
            prop_union_cardinal;
            prop_atoms_roundtrip;
            prop_projection_cardinal;
            prop_hash_equal_coherent;
            prop_hash_discriminates_constructors;
          ] );
      ( "columnar vs naive",
        Alcotest.test_case "compaction crossing" `Quick
          test_compaction_crossing
        :: qcheck
             [
               prop_naive_differential;
               prop_naive_differential_binary;
               prop_naive_differential_rebuilt;
               prop_iter_matching;
             ] );
    ]
