(* Differential suite for the CDCL search mode: the learning engine must
   enumerate exactly the same stable models as the chronological counter
   engine and the sweep-based reference, on random ground disjunctive
   programs built directly at the Ground layer (duplicate literals, empty
   heads/bodies, unused atoms all in scope).  Plus pinned end-to-end
   regressions through the repair engine on the paper's Examples 19/20. *)

open Asp

(* Same generator shape as test_asp's counter-vs-naive property: small
   universes keep brute-force checkable, dense rule shapes exercise the
   disjunctive/minimality paths. *)
let ground_program_gen =
  QCheck.Gen.(
    let* n_atoms = int_range 1 5 in
    let* n_rules = int_range 1 7 in
    let atom = int_range 0 (n_atoms - 1) in
    let atoms k = list_size (int_range 0 k) atom in
    let* rules =
      list_repeat n_rules
        (let* h = atoms 2 in
         let* p = atoms 2 in
         let* ng = atoms 2 in
         return (h, p, ng))
    in
    return (n_atoms, rules))

let build_ground (n_atoms, rules) =
  let g = Ground.create () in
  for i = 0 to n_atoms - 1 do
    ignore (Ground.intern g { Ground.gpred = Printf.sprintf "a%d" i; gargs = [] })
  done;
  List.iter
    (fun (h, p, ng) ->
      Ground.add_rule g
        {
          Ground.ghead = Array.of_list h;
          gpos = Array.of_list p;
          gneg = Array.of_list ng;
        })
    rules;
  g

let arb =
  QCheck.make
    ~print:(fun gp -> Fmt.str "%a" Ground.pp (build_ground gp))
    ground_program_gen

let prop_three_engines_agree =
  QCheck.Test.make
    ~name:"cdcl = dpll = sweep-based reference (random ground programs)"
    ~count:1000 arb
    (fun gp ->
      let g = build_ground gp in
      let s_cdcl = Solver.new_stats () in
      let m_cdcl = Solver.stable_models ~search:`Cdcl ~stats:s_cdcl g in
      let m_dpll = Solver.stable_models ~search:`Dpll g in
      let m_naive = Solver.stable_models_naive g in
      m_cdcl = m_dpll && m_cdcl = m_naive
      && List.for_all (Solver.is_stable_model g) m_cdcl
      (* every model reached the candidate check; every conflict except a
         final level-0 one (which ends the search unanalyzed) produced a
         nogood — model-blocking analyses add to [learned] on top *)
      && s_cdcl.Solver.candidates >= List.length m_cdcl
      && s_cdcl.Solver.learned >= s_cdcl.Solver.conflicts - 1
      && s_cdcl.Solver.conflicts >= 0
      && s_cdcl.Solver.restarts >= 0
      && s_cdcl.Solver.backjump_len >= 0)

let prop_cautious_brave_agree =
  QCheck.Test.make
    ~name:"cdcl cautious/brave = dpll cautious/brave" ~count:300 arb
    (fun gp ->
      let g = build_ground gp in
      Solver.cautious ~search:`Cdcl g = Solver.cautious ~search:`Dpll g
      && Solver.brave ~search:`Cdcl g = Solver.brave ~search:`Dpll g)

let prop_support_ablation =
  QCheck.Test.make
    ~name:"cdcl: support-clause materialization does not change models"
    ~count:300 arb
    (fun gp ->
      let g = build_ground gp in
      Solver.stable_models ~search:`Cdcl g
      = Solver.stable_models ~search:`Cdcl ~support_propagation:false g)

(* ------------------------------------------------------------------ *)
(* Enumeration mechanics under learning: limits and budgets behave like
   the chronological engine's. *)

let a0 name = Syntax.{ pred = name; args = [] }
let gatom name = Ground.{ gpred = name; gargs = [] }

let big_choice_program n =
  List.concat
    (List.init n (fun i ->
         let a = a0 (Printf.sprintf "a%d" i)
         and b = a0 (Printf.sprintf "b%d" i) in
         [
           Syntax.rule [ a ] ~body_neg:[ b ]; Syntax.rule [ b ] ~body_neg:[ a ];
         ]))

let test_limit () =
  let g = Grounder.ground (big_choice_program 4) in
  Alcotest.(check int) "all models" 16
    (List.length (Solver.stable_models ~search:`Cdcl g));
  Alcotest.(check int) "limited" 3
    (List.length (Solver.stable_models ~search:`Cdcl ~limit:3 g))

let test_budget_exceeded () =
  let g = Grounder.ground (big_choice_program 10) in
  Alcotest.check_raises "decision budget trips"
    (Solver.Budget_exceeded 5) (fun () ->
      ignore (Solver.stable_models ~search:`Cdcl ~max_decisions:5 g))

let test_restarts_complete () =
  (* enough conflicts to cross the Luby base: enumeration stays exact
     because blocking resolvents survive restarts *)
  let n = 6 in
  let g = Grounder.ground (big_choice_program n) in
  let stats = Solver.new_stats () in
  let ms = Solver.stable_models ~search:`Cdcl ~stats g in
  Alcotest.(check int) "2^n models" (1 lsl n) (List.length ms);
  Alcotest.(check bool) "no duplicates" true
    (List.sort_uniq compare ms = ms)

let test_search_stats_dpll_zero () =
  let g = Grounder.ground (big_choice_program 3) in
  let stats = Solver.new_stats () in
  ignore (Solver.stable_models ~search:`Dpll ~stats g);
  Alcotest.(check string) "dpll leaves the cdcl counters at zero"
    "conflicts=0 learned=0 restarts=0 backjump_len=0 phase_saved=0"
    (Fmt.str "%a" Solver.pp_search_stats stats)

let test_unsupported_atom () =
  (* an atom with no rule head is fixed false at level 0 by both engines *)
  let p = [ Syntax.rule [ a0 "a" ] ~body_neg:[ a0 "z" ] ] in
  let g = Grounder.ground p in
  let id name = Option.get (Ground.find g (gatom name)) in
  Alcotest.(check (list (list int)))
    "only {a}"
    [ [ id "a" ] ]
    (Solver.stable_models ~search:`Cdcl g)

(* ------------------------------------------------------------------ *)
(* Pinned end-to-end regressions: the repair engine on Examples 19/20 of
   the paper, solved through both search modes. *)

let vs = Relational.Value.str
let vn = Relational.Value.null

let ex19_d =
  Relational.Instance.of_list
    [
      ("R", [ vs "a"; vs "b" ]);
      ("R", [ vs "a"; vs "c" ]);
      ("S", [ vs "e"; vs "f" ]);
      ("S", [ vn; vs "a" ]);
    ]

let ex19_ics =
  Ic.Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] ()
  @ [
      Ic.Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ]
        ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
      Ic.Constr.not_null ~pred:"R" ~arity:2 ~pos:1 ();
    ]

let test_example19_repairs () =
  let run search =
    match Core.Engine.repairs ~search ex19_d ex19_ics with
    | Ok reps -> List.sort compare (List.map Relational.Instance.atoms reps)
    | Error msg -> Alcotest.failf "engine error: %s" msg
  in
  let cdcl = run `Cdcl in
  Alcotest.(check int) "the four repairs of Example 19" 4 (List.length cdcl);
  Alcotest.(check bool) "identical to dpll" true (cdcl = run `Dpll)

let test_example20_conflicting_nnc () =
  (* Example 20: the NNC on Q[2] conflicts with the RIC's existential
     attribute; the repair program over-approximates, and both search
     modes must agree on the model count and the extracted repair set *)
  let d =
    Relational.Instance.of_list
      [ ("P", [ vs "a" ]); ("P", [ vs "b" ]); ("Q", [ vs "b"; vs "c" ]) ]
  in
  let atom p ts = Ic.Patom.make p ts in
  let v = Ic.Term.var in
  let ics =
    [
      Ic.Constr.generic
        ~ante:[ atom "P" [ v "x" ] ]
        ~cons:[ atom "Q" [ v "x"; v "y" ] ]
        ();
      Ic.Constr.not_null ~pred:"Q" ~arity:2 ~pos:2 ();
    ]
  in
  let run search =
    match Core.Engine.run ~search d ics with
    | Ok r ->
        ( r.Core.Engine.stable_model_count,
          List.sort compare
            (List.map Relational.Instance.atoms r.Core.Engine.repairs) )
    | Error msg -> Alcotest.failf "engine error: %s" msg
  in
  Alcotest.(check bool) "cdcl = dpll on Example 20's program" true
    (run `Cdcl = run `Dpll)

let () =
  Alcotest.run "cdcl"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_three_engines_agree; prop_cautious_brave_agree;
            prop_support_ablation;
          ] );
      ( "mechanics",
        [
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "budget" `Quick test_budget_exceeded;
          Alcotest.test_case "restarts keep enumeration exact" `Quick
            test_restarts_complete;
          Alcotest.test_case "dpll zero cdcl counters" `Quick
            test_search_stats_dpll_zero;
          Alcotest.test_case "unsupported atom fixed false" `Quick
            test_unsupported_atom;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "example 19" `Quick test_example19_repairs;
          Alcotest.test_case "example 20 program" `Quick
            test_example20_conflicting_nnc;
        ] );
    ]
