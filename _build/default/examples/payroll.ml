(* Payroll audit: check constraints, a functional dependency and NOT
   NULL-constraints over an employee table with missing data (the setting of
   Examples 6 and 8), including the deletion-preferring class Rep_d when a
   NOT NULL-constraint conflicts with a referential constraint (Example 20).

     dune exec examples/payroll.exe *)

module Value = Relational.Value
module Instance = Relational.Instance
module Term = Ic.Term
module Builtin = Ic.Builtin

let atom p ts = Ic.Patom.make p ts
let v = Term.var

let section title = Fmt.pr "@.== %s ==@." title

let () =
  let d =
    Instance.of_list
      [
        ("Emp", [ Value.int 32; Value.null; Value.int 1000 ]);
        ("Emp", [ Value.int 41; Value.str "Paul"; Value.null ]);
        ("Emp", [ Value.int 7; Value.str "Lee"; Value.int 50 ]);
        (* FD violation: employee 41 in two departments *)
        ("Dept", [ Value.int 41; Value.str "sales" ]);
        ("Dept", [ Value.int 41; Value.str "hr" ]);
        ("Dept", [ Value.int 32; Value.str "eng" ]);
      ]
  in
  let schema =
    Relational.Schema.of_list
      [ ("Emp", [ "ID"; "Name"; "Salary" ]); ("Dept", [ "EmpID"; "Dept" ]) ]
  in
  let salary_check =
    Ic.Builder.check ~name:"salary_above_100"
      (atom "Emp" [ v "i"; v "n"; v "s" ])
      [ Builtin.cmp Builtin.Gt (Builtin.evar "s") (Builtin.eint 100) ]
  in
  let dept_fd =
    Ic.Builder.functional_dependency ~name:"one_dept" ~pred:"Dept" ~arity:2
      ~lhs:[ 1 ] ~rhs:2 ()
  in
  let emp_id_nn = Ic.Constr.not_null ~name:"emp_id_nn" ~pred:"Emp" ~arity:3 ~pos:1 () in
  let ics = [ salary_check; dept_fd; emp_id_nn ] in

  section "database";
  print_endline (Relational.Pretty.instance ~schema d);

  section "violations under |=_N";
  (* Emp(41, Paul, null): salary null is in the only relevant attribute of
     the check constraint, so DB2-style it passes; Emp(7, Lee, 50) fails. *)
  List.iter
    (fun viol -> Fmt.pr "%a@." Semantics.Nullsat.pp_violation viol)
    (Semantics.Nullsat.check d ics);

  section "repairs";
  let repairs = Repair.Enumerate.repairs d ics in
  List.iteri
    (fun i r ->
      Fmt.pr "repair %d: delta = %a@." (i + 1) Instance.pp_inline
        (Instance.symdiff d r))
    repairs;

  section "consistent answers: employees with a known-valid salary";
  let q =
    Query.Qsyntax.make ~name:"paid" ~head:[ "i" ]
      (Query.Qsyntax.Exists
         ( [ "n"; "s" ],
           Query.Qsyntax.And
             ( Query.Qsyntax.Atom (atom "Emp" [ v "i"; v "n"; v "s" ]),
               Query.Qsyntax.Not (Query.Qsyntax.IsNull (v "s")) ) ))
  in
  (match Query.Cqa.consistent_answers d ics q with
  | Error msg -> Fmt.pr "error: %s@." msg
  | Ok o -> Fmt.pr "%a@." Query.Cqa.pp_outcome o);

  (* Example 20: a NOT NULL-constraint on an attribute the repair process
     would want to fill with null. *)
  section "conflicting NNC (Example 20) and Rep_d";
  let d20 = Workload.Paperdb.example20.Workload.Paperdb.d in
  let ics20 = Workload.Paperdb.example20.Workload.Paperdb.ics in
  (match Ic.Builder.non_conflicting ics20 with
  | Ok () -> Fmt.pr "unexpectedly non-conflicting@."
  | Error (nnc, ic) ->
      Fmt.pr "conflict: %s is NOT NULL but existential in %s@."
        (Ic.Constr.label nnc) (Ic.Constr.label ic));
  let rep = Repair.Enumerate.repairs d20 ics20 in
  Fmt.pr "Rep   (%d): every non-null constant of the universe can fill the gap@."
    (List.length rep);
  List.iter (fun r -> Fmt.pr "  %a@." Instance.pp_inline r) rep;
  let repd = Repair.Repd.repairs_d d20 ics20 in
  Fmt.pr "Rep_d (%d): deletions preferred@." (List.length repd);
  List.iter (fun r -> Fmt.pr "  %a@." Instance.pp_inline r) repd
