examples/university.mli:
