examples/quickstart.mli:
