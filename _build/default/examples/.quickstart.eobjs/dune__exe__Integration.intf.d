examples/integration.mli:
