examples/integration.ml: Fmt Ic List Query Relational Semantics
