examples/payroll.mli:
