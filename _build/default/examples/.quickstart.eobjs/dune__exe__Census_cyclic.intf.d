examples/census_cyclic.mli:
