examples/university.ml: Core Fmt Ic Lang List Query Relational Semantics
