examples/census_cyclic.ml: Asp Core Fmt Ic List Query Relational Repair Semantics
