examples/quickstart.ml: Core Fmt Ic List Query Relational Repair Semantics
