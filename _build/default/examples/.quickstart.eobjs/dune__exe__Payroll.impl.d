examples/payroll.ml: Fmt Ic List Query Relational Repair Semantics Workload
