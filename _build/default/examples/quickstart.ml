(* Quickstart: the paper's running Course/Student example (Examples 14-15).

   Build a small inconsistent database, inspect its violations, enumerate
   its repairs with both engines, and answer a query consistently.

     dune exec examples/quickstart.exe *)

module Value = Relational.Value
module Instance = Relational.Instance
module Term = Ic.Term

let section title = Fmt.pr "@.== %s ==@." title

let () =
  (* 1. A database with a dangling foreign key: Course(34, C18) has no
        Student tuple. *)
  let d =
    Instance.of_list
      [
        ("Course", [ Value.int 21; Value.str "C15" ]);
        ("Course", [ Value.int 34; Value.str "C18" ]);
        ("Student", [ Value.int 21; Value.str "Ann" ]);
        ("Student", [ Value.int 45; Value.str "Paul" ]);
      ]
  in
  let schema =
    Relational.Schema.of_list
      [ ("Course", [ "ID"; "Code" ]); ("Student", [ "ID"; "Name" ]) ]
  in
  section "database";
  print_endline (Relational.Pretty.instance ~schema d);

  (* 2. The referential constraint Course(id, code) -> exists name.
        Student(id, name). *)
  let ric =
    Ic.Constr.generic ~name:"course_student"
      ~ante:[ Ic.Patom.make "Course" [ Term.var "id"; Term.var "code" ] ]
      ~cons:[ Ic.Patom.make "Student" [ Term.var "id"; Term.var "name" ] ]
      ()
  in
  section "constraint";
  Fmt.pr "%a@." Ic.Constr.pp ric;

  section "violations under |=_N";
  List.iter
    (fun v -> Fmt.pr "%a@." Semantics.Nullsat.pp_violation v)
    (Semantics.Nullsat.check d [ ric ]);

  (* 3. Repairs: delete the dangling course, or insert Student(34, null). *)
  section "repairs (model-theoretic, Section 4)";
  let repairs = Repair.Enumerate.repairs d [ ric ] in
  List.iteri
    (fun i r -> Fmt.pr "repair %d: %a@." (i + 1) Instance.pp_inline r)
    repairs;

  section "repairs (stable models of Pi(D, IC), Section 5)";
  (match Core.Engine.run d [ ric ] with
  | Error msg -> Fmt.pr "error: %s@." msg
  | Ok report ->
      List.iteri
        (fun i r -> Fmt.pr "repair %d: %a@." (i + 1) Instance.pp_inline r)
        report.Core.Engine.repairs;
      Fmt.pr "(%d ground rules, HCF: %b, solved as %s program)@."
        report.Core.Engine.ground_rules report.Core.Engine.hcf
        (if report.Core.Engine.shifted then "a shifted normal" else "a disjunctive"));

  (* 4. Consistent query answers (Definition 8). *)
  section "consistent answers to 'which courses exist?'";
  let q =
    Query.Qsyntax.make ~name:"courses" ~head:[ "id"; "code" ]
      (Query.Qsyntax.Atom (Ic.Patom.make "Course" [ Term.var "id"; Term.var "code" ]))
  in
  (match Query.Cqa.consistent_answers d [ ric ] q with
  | Error msg -> Fmt.pr "error: %s@." msg
  | Ok outcome -> Fmt.pr "%a@." Query.Cqa.pp_outcome outcome);

  (* 5. The repair program itself, as fed to DLV in the paper. *)
  section "repair program Pi(D, IC) in DLV syntax (Definition 9)";
  match Core.Proggen.repair_program ~variant:Core.Proggen.Literal d [ ric ] with
  | Error msg -> Fmt.pr "error: %s@." msg
  | Ok pg -> print_string (Core.Proggen.to_dlv pg)
