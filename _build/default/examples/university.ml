(* University registry: the paper's Course/Exp scenario (Example 5) plus a
   student enrolment table — exercises the null-aware satisfaction
   semantics, its comparison with the SQL:2003 match semantics, and CQA
   over a database loaded from the surface language.

     dune exec examples/university.exe *)

let data =
  {|
  % Example 5: the experience table records how often a professor taught a
  % course; Course references Exp through (ID, Code).
  relation Course(code, id, term).
  relation Exp(id, code, times).
  relation Enrol(student, code).

  Course(cs27, 21, w04).
  Course(cs18, 34, null).    % unknown term: irrelevant to the FK
  Course(cs50, null, w05).   % unknown professor: simple match accepts
  Course(cs41, 18, null).    % dangling: professor 18 has no Exp tuple

  Exp(21, cs27, 3).
  Exp(34, cs18, null).
  Exp(45, cs32, 2).

  Enrol(sue, cs27).
  Enrol(joe, cs41).
  Enrol(amy, cs99).          % enrolment in a course that does not exist

  constraint fk_course_exp: Course(C, I, T) -> Exp(I, C, W).
  constraint fk_enrol_course: Enrol(S, C) -> Course(C, I, T).

  query courses(C): exists I T. Course(C, I, T).
  query enrolled_ok(S): exists C I T. Enrol(S, C) & Course(C, I, T).
  query who_teaches(C, I): exists T. Course(C, I, T) & !isnull(I).
  |}

let section title = Fmt.pr "@.== %s ==@." title

let () =
  let loaded =
    match Lang.Load.of_string data with
    | Ok l -> l
    | Error msg ->
        Fmt.epr "load error: %s@." msg;
        exit 1
  in
  let d = loaded.Lang.Load.instance and ics = loaded.Lang.Load.ics in

  section "database";
  print_endline (Relational.Pretty.instance ~schema:loaded.Lang.Load.schema d);

  section "satisfaction across the semantics of Section 3";
  List.iter
    (fun row -> Fmt.pr "%a@." Semantics.Report.pp_row row)
    (Semantics.Report.compare_semantics d ics);
  Fmt.pr
    "(simple match and |=_N accept Course(cs50, null, w05); partial/full \
     reject it; all reject the dangling cs41)@.";

  section "dependency analysis";
  Fmt.pr "RIC-acyclic: %b, static HCF (Theorem 5): %b@."
    (Ic.Depgraph.is_ric_acyclic ics)
    (Core.Hcfcheck.static_hcf ics);

  section "repairs";
  (match Core.Engine.run d ics with
  | Error msg -> Fmt.pr "error: %s@." msg
  | Ok report ->
      List.iteri
        (fun i r ->
          Fmt.pr "repair %d: delta = %a@." (i + 1) Relational.Instance.pp_inline
            (Relational.Instance.symdiff d r))
        report.Core.Engine.repairs;
      Fmt.pr "%d repairs from %d stable models@."
        (List.length report.Core.Engine.repairs)
        report.Core.Engine.stable_model_count);

  section "consistent query answers";
  List.iter
    (fun (name, q) ->
      Fmt.pr "query %s:@." name;
      match Query.Cqa.consistent_answers d ics q with
      | Error msg -> Fmt.pr "  error: %s@." msg
      | Ok o -> Fmt.pr "%a@." Query.Cqa.pp_outcome o)
    loaded.Lang.Load.queries
