(* A RIC-cyclic constraint set (the shape of Example 18) over census-style
   data: every person mentioned as a household head must be registered, and
   every registered person must belong to some household.  Under the classic
   repair semantics of [2] this cycle makes CQA undecidable [11]; under the
   paper's null-based semantics the repairs are finitely many and finite.

     dune exec examples/census_cyclic.exe *)

module Value = Relational.Value
module Instance = Relational.Instance
module Term = Ic.Term

let atom p ts = Ic.Patom.make p ts
let v = Term.var

let section title = Fmt.pr "@.== %s ==@." title

let () =
  (* Household(head, address), Registered(person) *)
  let d =
    Instance.of_list
      [
        ("Household", [ Value.str "rod"; Value.str "oak_st" ]);
        ("Household", [ Value.null; Value.str "elm_st" ]);
        ("Registered", [ Value.str "rod" ]);
        ("Registered", [ Value.str "mary" ]);
      ]
  in
  (* every household head is registered (UIC);
     every registered person heads or belongs to a household — simplified to
     "appears as the head of some household" (RIC through the other
     direction closes the cycle) *)
  let uic =
    Ic.Constr.generic ~name:"head_registered"
      ~ante:[ atom "Household" [ v "h"; v "a" ] ]
      ~cons:[ atom "Registered" [ v "h" ] ]
      ()
  in
  let ric =
    Ic.Constr.generic ~name:"registered_housed"
      ~ante:[ atom "Registered" [ v "p" ] ]
      ~cons:[ atom "Household" [ v "p"; v "addr" ] ]
      ()
  in
  let ics = [ uic; ric ] in

  section "database";
  print_endline (Relational.Pretty.instance d);

  section "dependency graphs (Definition 1)";
  Fmt.pr "%a@.@." Ic.Depgraph.pp (Ic.Depgraph.build ics);
  Fmt.pr "contracted:@.%a@." Ic.Depgraph.pp_contracted (Ic.Depgraph.contract ics);
  (match Ic.Depgraph.ric_cycle ics with
  | Some cycle ->
      Fmt.pr "RIC-cyclic through %a — Theorem 4 does not apply, but the \
              null-based semantics keeps CQA decidable (Theorem 2)@."
        Fmt.(
          list ~sep:(any " -> ") (fun ppf c -> pf ppf "{%a}" (list ~sep:(any ",") string) c))
        cycle
  | None -> Fmt.pr "unexpectedly acyclic@.");

  section "violations";
  List.iter
    (fun viol -> Fmt.pr "%a@." Semantics.Nullsat.pp_violation viol)
    (Semantics.Nullsat.check d ics);
  Fmt.pr
    "(the null-headed household never violates head_registered: the head \
     attribute is relevant and null)@.";

  section "repairs: finite, with nulls closing the cycle";
  let repairs = Repair.Enumerate.repairs d ics in
  List.iteri
    (fun i r ->
      Fmt.pr "repair %d: %a@.  delta: %a@." (i + 1) Instance.pp_inline r
        Instance.pp_inline (Instance.symdiff d r))
    repairs;

  section "the same repairs from the logic program (refined variant)";
  (match Core.Engine.run d ics with
  | Error msg -> Fmt.pr "error: %s@." msg
  | Ok report ->
      List.iteri
        (fun i r -> Fmt.pr "repair %d: %a@." (i + 1) Instance.pp_inline r)
        report.Core.Engine.repairs;
      Fmt.pr "ground program: %d atoms, %d rules; solver: %a@."
        report.Core.Engine.ground_atoms report.Core.Engine.ground_rules
        Asp.Solver.pp_stats report.Core.Engine.solver);

  section "certain membership (Definition 8)";
  let member name =
    Query.Qsyntax.make ~head:[]
      (Query.Qsyntax.Atom (atom "Registered" [ Term.str name ]))
  in
  List.iter
    (fun name ->
      match Query.Cqa.certain d ics (member name) with
      | Ok b -> Fmt.pr "Registered(%s) certain: %b@." name b
      | Error msg -> Fmt.pr "error: %s@." msg)
    [ "rod"; "mary" ]
