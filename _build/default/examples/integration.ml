(* Virtual data integration: the paper's motivating scenario (Section 1).

   Two autonomous sources are merged under a global schema with global
   integrity constraints.  The sources cannot be repaired — they are not
   ours to change — so inconsistencies must be solved at query time:
   consistent query answering over the virtual global instance, here with
   the cautious-reasoning engine (no repair is ever materialized).

     dune exec examples/integration.exe *)

module Value = Relational.Value
module Instance = Relational.Instance
module Term = Ic.Term
module Q = Query.Qsyntax

let atom p ts = Ic.Patom.make p ts
let v = Term.var

let section title = Fmt.pr "@.== %s ==@." title

(* Source 1: the billing system's customers (id, city). *)
let source1 =
  [
    (1001, "toronto");
    (1002, "ottawa");
    (1003, "montreal");
  ]

(* Source 2: the support system's tickets (ticket, customer id). *)
let source2 = [ (501, 1001); (502, 1002); (503, 1099); (504, 1003) ]

(* Source 3: a second billing feed that disagrees with source 1. *)
let source3 = [ (1002, "gatineau") ]

let () =
  (* The global (virtual) instance: the union of the source extracts. *)
  let customer (id, city) = ("Customer", [ Value.int id; Value.str city ]) in
  let ticket (t, c) = ("Ticket", [ Value.int t; Value.int c ]) in
  let d =
    Instance.of_list
      (List.map customer source1 @ List.map ticket source2
     @ List.map customer source3)
  in
  (* Global constraints: customer ids are a key; every ticket references a
     known customer. *)
  let ics =
    Ic.Builder.key ~name_prefix:"customer_key" ~pred:"Customer" ~arity:2
      ~key:[ 1 ] ()
    @ [
        Ic.Builder.foreign_key ~name:"ticket_customer" ~child:"Ticket"
          ~child_arity:2 ~child_cols:[ 2 ] ~parent:"Customer" ~parent_arity:2
          ~parent_cols:[ 1 ] ();
      ]
  in

  section "virtual global instance (union of three sources)";
  print_endline
    (Relational.Pretty.instance
       ~schema:
         (Relational.Schema.of_list
            [ ("Customer", [ "ID"; "City" ]); ("Ticket", [ "Ticket"; "CustID" ]) ])
       d);

  section "global constraint violations";
  List.iter
    (fun viol -> Fmt.pr "%a@." Semantics.Nullsat.pp_violation viol)
    (Semantics.Nullsat.check d ics);
  Fmt.pr
    "(the key conflict comes from disagreeing sources; the dangling ticket \
     from an unknown customer — neither source can be fixed in place)@.";

  section "consistent answers by cautious reasoning (no repairs materialized)";
  let queries =
    [
      ( "cities",
        Q.make ~head:[ "id"; "city" ]
          (Q.Atom (atom "Customer" [ v "id"; v "city" ])) );
      ( "ticketed_customers",
        Q.make ~head:[ "c" ]
          (Q.Exists
             ( [ "t"; "city" ],
               Q.And
                 ( Q.Atom (atom "Ticket" [ v "t"; v "c" ]),
                   Q.Atom (atom "Customer" [ v "c"; v "city" ]) ) )) );
    ]
  in
  List.iter
    (fun (name, q) ->
      match Query.Progcqa.consistent_answers d ics q with
      | Error msg -> Fmt.pr "%s: error: %s@." name msg
      | Ok o ->
          let tuples s =
            Fmt.str "{%a}"
              Fmt.(list ~sep:(any ", ") Relational.Tuple.pp)
              (Relational.Tuple.Set.elements s)
          in
          Fmt.pr "%s:@.  certain:  %s@.  possible: %s@.  (%d stable models)@."
            name
            (tuples o.Query.Progcqa.consistent)
            (tuples o.Query.Progcqa.possible)
            o.Query.Progcqa.stable_models)
    queries;
  Fmt.pr
    "@.Customer 1002's city is uncertain (sources disagree); customer 1099's \
     ticket survives only in repairs that invent Customer(1099, null), so it \
     is possible but not certain.@."
