(* Benchmark harness: regenerates every experiment table (E1-E10, see
   EXPERIMENTS.md) and optionally runs the Bechamel micro-benchmarks.

     dune exec bench/main.exe            # all tables
     dune exec bench/main.exe -- --micro # tables + micro-benchmarks
     dune exec bench/main.exe -- E4 E5   # selected tables *)

let micro_tests () =
  let open Bechamel in
  let ex15 = Workload.Paperdb.example15 in
  let ex19 = Workload.Paperdb.example19 in
  let fk = Workload.Gen.fk_workload ~seed:9 ~n_parent:4 ~n_child:6 ~orphan_rate:0.3 ~null_rate:0.1 () in
  let check = Workload.Gen.check_workload ~seed:9 ~n:200 ~viol_rate:0.2 ~null_rate:0.2 () in
  let pg19 =
    match Core.Proggen.repair_program ex19.Workload.Paperdb.d ex19.Workload.Paperdb.ics with
    | Ok pg -> pg
    | Error m -> failwith m
  in
  let ground19 = Asp.Grounder.ground pg19.Core.Proggen.program in
  let query =
    Query.Qsyntax.make ~head:[ "id"; "code" ]
      (Query.Qsyntax.Atom
         (Ic.Patom.make "Course" [ Ic.Term.var "id"; Ic.Term.var "code" ]))
  in
  [
    (* E1: paper-example repair computation *)
    Test.make ~name:"E1.repairs.enumerate.ex15" (Staged.stage (fun () ->
        Repair.Enumerate.repairs ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics));
    Test.make ~name:"E1.repairs.program.ex19" (Staged.stage (fun () ->
        Core.Engine.repairs ex19.Workload.Paperdb.d ex19.Workload.Paperdb.ics));
    (* E2/E8: engines on a synthetic FK workload *)
    Test.make ~name:"E2.enumerate.fk" (Staged.stage (fun () ->
        Repair.Enumerate.repairs fk.Workload.Gen.d fk.Workload.Gen.ics));
    Test.make ~name:"E8.program.fk" (Staged.stage (fun () ->
        Core.Engine.repairs fk.Workload.Gen.d fk.Workload.Gen.ics));
    (* E4: solving the ground program with and without shifting *)
    Test.make ~name:"E4.solve.shifted" (Staged.stage (fun () ->
        Asp.Solver.stable_models (Asp.Shift.ground ground19)));
    Test.make ~name:"E4.solve.disjunctive" (Staged.stage (fun () ->
        Asp.Solver.stable_models ground19));
    (* E5: generation + grounding *)
    Test.make ~name:"E5.generate.width6" (Staged.stage (fun () ->
        Core.Proggen.repair_program (Workload.Gen.disjunctive_uic ~width:6).Workload.Gen.d
          (Workload.Gen.disjunctive_uic ~width:6).Workload.Gen.ics));
    (* E6: the satisfaction check itself on a wider instance *)
    Test.make ~name:"E6.nullsat.check200" (Staged.stage (fun () ->
        Semantics.Nullsat.check check.Workload.Gen.d check.Workload.Gen.ics));
    (* E7: CQA end-to-end *)
    Test.make ~name:"E7.cqa.ex15" (Staged.stage (fun () ->
        Query.Cqa.consistent_answers ex15.Workload.Paperdb.d
          ex15.Workload.Paperdb.ics query));
    (* E10: graph analysis *)
    Test.make ~name:"E10.depgraph.ex19" (Staged.stage (fun () ->
        Ic.Depgraph.is_ric_acyclic ex19.Workload.Paperdb.ics));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "\n--- micro-benchmarks (Bechamel, monotonic clock) ---";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.one (Analyze.ols ~bootstrap:0 ~r_square:false
                               ~predictors:[| Measure.run |]) instance raw with
          | ols -> (
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
              | _ -> Printf.printf "%-28s (no estimate)\n" name)
          | exception _ -> Printf.printf "%-28s (analysis failed)\n" name)
        results)
    (micro_tests ());
  flush stdout

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let micro = List.mem "--micro" args in
  let selected = List.filter (fun a -> a <> "--micro") args in
  let named =
    [ ("E1", List.nth Experiments.all 0); ("E2", List.nth Experiments.all 1);
      ("E3", List.nth Experiments.all 2); ("E4", List.nth Experiments.all 3);
      ("E5", List.nth Experiments.all 4); ("E6", List.nth Experiments.all 5);
      ("E7", List.nth Experiments.all 6); ("E8", List.nth Experiments.all 7);
      ("E9", List.nth Experiments.all 8); ("E10", List.nth Experiments.all 9);
      ("E11", List.nth Experiments.all 10); ("E12", List.nth Experiments.all 11);
      ("E13", List.nth Experiments.all 12); ("E14", List.nth Experiments.all 13) ]
  in
  print_endline
    "cqanull benchmark harness — reproduction tables for 'Semantically \
     Correct Query Answers in the Presence of Null Values' (EDBT 2006)";
  (match selected with
  | [] -> List.iter (fun (_, f) -> f ()) named
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n named with
          | Some f -> f ()
          | None -> Printf.eprintf "unknown table %s (E1..E14)\n" n)
        names);
  if micro then run_micro ()
