bench/table.ml: Buffer Char Float List Option Printf String Unix
