bench/table.ml: List Option Printf String Unix
