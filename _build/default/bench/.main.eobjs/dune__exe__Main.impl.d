bench/main.ml: Analyze Array Asp Bechamel Benchmark Core Experiments Hashtbl Ic List Measure Printf Query Repair Semantics Staged Sys Test Time Toolkit Workload
