bench/main.ml: Analyze Array Asp Bechamel Benchmark Core Experiments Hashtbl Ic In_channel List Measure Out_channel Printf Query Repair Semantics Staged Sys Table Test Time Toolkit Workload
