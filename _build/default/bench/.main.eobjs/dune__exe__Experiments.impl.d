bench/experiments.ml: Asp Core Ic List Printf Query Relational Repair Semantics Table Workload
