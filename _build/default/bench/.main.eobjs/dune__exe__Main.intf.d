bench/main.mli:
