(* Minimal fixed-width table printer for the experiment harness. *)

let print ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left
      (fun w row ->
        match List.nth_opt row c with
        | Some cell -> max w (String.length cell)
        | None -> w)
      0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  Printf.printf "\n--- %s ---\n" title;
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows;
  flush stdout

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let ms dt = Printf.sprintf "%.2f" (1000.0 *. dt)
