(* Minimal fixed-width table printer for the experiment harness. *)

let print ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left
      (fun w row ->
        match List.nth_opt row c with
        | Some cell -> max w (String.length cell)
        | None -> w)
      0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  Printf.printf "\n--- %s ---\n" title;
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows;
  flush stdout

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let ms dt = Printf.sprintf "%.2f" (1000.0 *. dt)

(* ------------------------------------------------------------------ *)
(* Minimal JSON support for the machine-readable perf baseline
   (BENCH_PR1.json).  The container has no JSON library, and the format we
   emit/validate is tiny, so both directions are hand-rolled here: [emit]
   writes a value, [parse] is a recursive-descent reader used by the
   --check-json self-test that keeps the baseline format from drifting. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit j =
  let buf = Buffer.create 1024 in
  let rec go indent j =
    let pad = String.make indent ' ' in
    match j with
    | Str s -> Buffer.add_string buf ("\"" ^ escape_string s ^ "\"")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Num f ->
        (* always carry a decimal point so the field reads back as float *)
        Buffer.add_string buf
          (if Float.is_integer f && Float.abs f < 1e15 then
             Printf.sprintf "%.1f" f
           else Printf.sprintf "%g" f)
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad ^ "  ");
            go (indent + 2) item)
          items;
        Buffer.add_string buf ("\n" ^ pad ^ "]")
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf
              (Printf.sprintf "%s  \"%s\": " pad (escape_string k));
            go (indent + 2) v)
          fields;
        Buffer.add_string buf ("\n" ^ pad ^ "}")
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Json_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | Some c -> Buffer.add_char buf c; advance (); go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.contains lit '.' || String.contains lit 'e'
       || String.contains lit 'E' then
      match float_of_string_opt lit with
      | Some f -> Num f
      | None -> fail "malformed number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "malformed literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "malformed literal"
    | _ -> fail "expected a JSON value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
