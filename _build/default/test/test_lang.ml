(* Tests for the surface language: lexer, parser, loader. *)

module Value = Relational.Value
module Instance = Relational.Instance
module Load = Lang.Load
module Q = Query.Qsyntax

let load s =
  match Load.of_string s with
  | Ok l -> l
  | Error msg -> Alcotest.failf "load failed: %s" msg

(* ------------------------------------------------------------------ *)

let example15_text =
  {|
  % Example 14/15 of the paper
  relation Course(id, code).
  relation Student(id, name).

  Course(21, c15).
  Course(34, c18).
  Student(21, ann).
  Student(45, paul).

  constraint ric: Course(I, C) -> Student(I, N).

  query students(I, N): Student(I, N).
  query has21: exists N. Student(21, N).
  |}

let test_example15_file () =
  let l = load example15_text in
  Alcotest.(check int) "4 facts" 4 (Instance.cardinal l.Load.instance);
  Alcotest.(check int) "1 constraint" 1 (List.length l.Load.ics);
  Alcotest.(check int) "2 queries" 2 (List.length l.Load.queries);
  Alcotest.(check bool) "constraint is RIC" true
    (Ic.Classify.is_ric (List.hd l.Load.ics));
  Alcotest.(check (option int)) "schema arity" (Some 2)
    (Relational.Schema.arity l.Load.schema "Course");
  (* end-to-end: repairs of the parsed scenario *)
  let reps = Repair.Enumerate.repairs l.Load.instance l.Load.ics in
  Alcotest.(check int) "two repairs" 2 (List.length reps)

let test_null_and_types () =
  let l = load {|
    P(null, 42, "hello world", foo, Bar).
  |} in
  match Instance.atoms l.Load.instance with
  | [ a ] ->
      let args = Relational.Atom.args a in
      Alcotest.(check bool) "null" true (Value.is_null args.(0));
      Alcotest.(check bool) "int" true (Value.equal args.(1) (Value.int 42));
      Alcotest.(check bool) "string" true
        (Value.equal args.(2) (Value.str "hello world"));
      Alcotest.(check bool) "ident" true (Value.equal args.(3) (Value.str "foo"));
      Alcotest.(check bool) "uident constant in fact" true
        (Value.equal args.(4) (Value.str "Bar"))
  | l -> Alcotest.failf "expected one atom, got %d" (List.length l)

let test_constraint_shapes () =
  let l =
    load
      {|
      relation R(a, b).
      relation S(a, b).
      relation Emp(i, n, s).
      constraint key: R(X, Y), R(X, Z) -> Y = Z.
      constraint fk: S(U, V) -> R(V, W).
      constraint chk: Emp(I, N, S) -> S > 100.
      constraint denial: R(X, X) -> false.
      constraint age: Emp(I, N, S), Emp(I2, N2, S2) -> S2 > S + 15.
      not_null R[1].
      |}
  in
  let classes = List.map Ic.Classify.classify l.Load.ics in
  Alcotest.(check (list string)) "classes"
    [ "UIC"; "RIC"; "UIC"; "UIC"; "UIC"; "NNC" ]
    (List.map (Fmt.str "%a" Ic.Classify.pp_cls) classes);
  Alcotest.(check bool) "check constraint" true (Ic.Classify.is_check (List.nth l.Load.ics 2));
  Alcotest.(check bool) "denial" true (Ic.Classify.is_denial (List.nth l.Load.ics 3))

let test_query_formulas () =
  let l =
    load
      {|
      relation P(a, b).
      relation T(a).
      query q1(X): exists Y. P(X, Y) & !T(X).
      query q2(X): exists Y. (P(X, Y) | T(X)) & X != 3.
      query q3: forall X. (!T(X) | exists Y. P(X, Y)).
      query q4(X): exists Y. P(X, Y) & isnull(Y).
      |}
  in
  Alcotest.(check int) "four queries" 4 (List.length l.Load.queries);
  let q3 = List.assoc "q3" l.Load.queries in
  Alcotest.(check bool) "q3 boolean" true (Q.is_boolean q3);
  (* evaluate q4 on a small instance *)
  let d = Instance.of_list [ ("P", [ Value.str "a"; Value.null ]); ("P", [ Value.str "b"; Value.str "c" ]) ] in
  let answers = Query.Qeval.answers d (List.assoc "q4" l.Load.queries) in
  Alcotest.(check int) "one null match" 1 (Relational.Tuple.Set.cardinal answers)

let test_errors_simple () =
  Alcotest.(check bool) "arity mismatch rejected" true
    (Result.is_error (Load.of_string "relation P(a).\nP(1, 2)."));
  Alcotest.(check bool) "parse error rejected" true
    (Result.is_error (Load.of_string "constraint : ->."));
  Alcotest.(check bool) "null in constraint rejected" true
    (Result.is_error (Load.of_string "constraint c: P(X) -> Q(null)."));
  Alcotest.(check bool) "unknown not_null relation" true
    (Result.is_error (Load.of_string "not_null R[1]."));
  Alcotest.(check bool) "not_null out of range" true
    (Result.is_error (Load.of_string "relation R(a).\nnot_null R[4]."));
  Alcotest.(check bool) "bad head var" true
    (Result.is_error (Load.of_string "relation P(a).\nquery q(X): P(Y)."));
  Alcotest.(check bool) "unknown query relation" true
    (Result.is_error (Load.of_string "query q(X): P(X)."));
  Alcotest.(check bool) "unterminated string" true
    (Result.is_error (Load.of_string "P(\"abc)."))

let test_roundtrip_paper_scenarios () =
  (* the surface file reproducing Example 19 parses into the same repairs *)
  let text =
    {|
    relation R(a, b).
    relation S(u, v).
    R(a, b).  R(a, c).
    S(e, f).  S(null, a).
    constraint key: R(X, Y), R(X, Z) -> Y = Z.
    constraint fk: S(U, V) -> R(V, W).
    not_null R[1].
    |}
  in
  let l = load text in
  let reps = Repair.Enumerate.repairs l.Load.instance l.Load.ics in
  Alcotest.(check int) "four repairs as in Example 19" 4 (List.length reps)

let test_lexer_edges () =
  let l = load "P(-5).\nQ(\"two words\", x').\n" in
  Alcotest.(check int) "two facts" 2 (Instance.cardinal l.Load.instance);
  (match Instance.atoms l.Load.instance with
  | atoms ->
      Alcotest.(check bool) "negative int parsed" true
        (List.exists
           (fun a -> Relational.Atom.pred a = "P"
                     && Value.equal (Relational.Atom.args a).(0) (Value.int (-5)))
           atoms));
  (* empty input *)
  let e = load "" in
  Alcotest.(check int) "empty file" 0 (Instance.cardinal e.Load.instance);
  (* comment at eof without newline *)
  let c = load "P(1). % trailing comment" in
  Alcotest.(check int) "comment at eof" 1 (Instance.cardinal c.Load.instance)

let test_query_comparisons () =
  let l =
    load
      {|
      relation P(a, b).
      query cmp(X, Y): P(X, Y) & X < Y.
      query shifted(X): exists Y. P(X, Y) & Y > X + 2.
      |}
  in
  let d = Instance.of_list [ ("P", [ Value.int 1; Value.int 2 ]); ("P", [ Value.int 5; Value.int 9 ]) ] in
  let answers name = Relational.Tuple.Set.cardinal (Query.Qeval.answers d (List.assoc name l.Load.queries)) in
  Alcotest.(check int) "both pairs ordered" 2 (answers "cmp");
  Alcotest.(check int) "offset comparison" 1 (answers "shifted")

let test_comments_and_whitespace () =
  let l = load "% comment\n# another\nP(1). % trailing\n" in
  Alcotest.(check int) "one fact" 1 (Instance.cardinal l.Load.instance)

(* ------------------------------------------------------------------ *)
(* Emit: surface-syntax serialization round-trips through Load *)

let check_roundtrip label (l : Load.loaded) =
  match Load.of_string (Lang.Emit.loaded l) with
  | Error msg -> Alcotest.failf "%s: reload failed: %s" label msg
  | Ok l' ->
      Alcotest.(check bool) (label ^ ": instance") true
        (Instance.equal l.Load.instance l'.Load.instance);
      Alcotest.(check bool) (label ^ ": constraints") true
        (List.equal Ic.Constr.equal l.Load.ics l'.Load.ics);
      Alcotest.(check int)
        (label ^ ": query count")
        (List.length l.Load.queries)
        (List.length l'.Load.queries)

let test_emit_roundtrip () =
  check_roundtrip "example15" (load example15_text);
  check_roundtrip "shapes"
    (load
       {|
       relation R(a, b).
       relation S(a, b).
       relation Emp(i, n, s).
       R(1, "two words").  R(null, x').
       constraint key: R(X, Y), R(X, Z) -> Y = Z.
       constraint fk: S(U, V) -> R(V, W).
       constraint chk: Emp(I, N, S) -> S > 100 | S = 0.
       constraint denial: R(X, X) -> false.
       not_null R[1].
       query q1(X): exists Y. R(X, Y) & !S(X, Y).
       query q2: forall X. (!Emp(X, X, X) | isnull(X)).
       query q3(X): exists Y. R(X, Y) & Y > X + 2.
       |})

let test_emit_values () =
  Alcotest.(check string) "null" "null" (Lang.Emit.value Value.null);
  Alcotest.(check string) "int" "-3" (Lang.Emit.value (Value.int (-3)));
  Alcotest.(check string) "bare" "abc" (Lang.Emit.value (Value.str "abc"));
  Alcotest.(check string) "keyword quoted" "\"query\"" (Lang.Emit.value (Value.str "query"));
  Alcotest.(check string) "capitalized quoted" "\"Ann\"" (Lang.Emit.value (Value.str "Ann"));
  Alcotest.(check string) "string null quoted" "\"null\"" (Lang.Emit.value (Value.str "null"));
  Alcotest.(check bool) "lowercase relation rejected" true
    (try
       ignore (Lang.Emit.fact (Relational.Atom.make "p" [ Value.int 1 ]));
       false
     with Invalid_argument _ -> true)

let test_emit_repair_is_consistent_file () =
  (* the CLI --save behaviour: an emitted repair re-checks as consistent *)
  let l = load example15_text in
  let reps = Repair.Enumerate.repairs l.Load.instance l.Load.ics in
  List.iter
    (fun r ->
      match Load.of_string (Lang.Emit.file ~ics:l.Load.ics r) with
      | Error m -> Alcotest.failf "reload: %s" m
      | Ok l' ->
          Alcotest.(check bool) "saved repair consistent" true
            (Semantics.Nullsat.consistent l'.Load.instance l'.Load.ics))
    reps

let () =
  Alcotest.run "lang"
    [
      ( "parser",
        [
          Alcotest.test_case "example 15 file" `Quick test_example15_file;
          Alcotest.test_case "values" `Quick test_null_and_types;
          Alcotest.test_case "constraint shapes" `Quick test_constraint_shapes;
          Alcotest.test_case "query formulas" `Quick test_query_formulas;
          Alcotest.test_case "errors" `Quick test_errors_simple;
          Alcotest.test_case "example 19 round trip" `Quick test_roundtrip_paper_scenarios;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "lexer edges" `Quick test_lexer_edges;
          Alcotest.test_case "query comparisons" `Quick test_query_comparisons;
          Alcotest.test_case "emit roundtrip" `Quick test_emit_roundtrip;
          Alcotest.test_case "emit values" `Quick test_emit_values;
          Alcotest.test_case "emit repairs" `Quick test_emit_repair_is_consistent_file;
        ] );
    ]
