The perf-baseline emitter writes well-formed JSON with the stable keys the
trajectory depends on, and its --check-json self-test accepts it
(micro-benchmark quota lowered so the cram run stays fast; row counts are
structural and quota-independent):

  $ cqanull-bench --json baseline.json --micro --quota 0.005 > /dev/null
  $ cqanull-bench --check-json baseline.json
  baseline.json: ok (10 micro rows, 4 solver rows)

Stable top-level keys, in order:

  $ grep -o '"\(schema\|tool\|unit\|micro\|solver\)"' baseline.json
  "schema"
  "tool"
  "unit"
  "micro"
  "solver"

The solver telemetry carries both engines for each E4 benchmark and every
counter field is numeric:

  $ grep -c '"engine": "counter"' baseline.json
  2
  $ grep -c '"engine": "naive"' baseline.json
  2
  $ grep -c '"rules_touched": [0-9]' baseline.json
  4

Malformed input is rejected:

  $ echo '{"schema": "cqanull-bench/1", "micro": [' > broken.json
  $ cqanull-bench --check-json broken.json
  broken.json: expected a JSON value at offset 41
  [1]
