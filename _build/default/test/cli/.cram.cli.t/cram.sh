  $ cqanull check example.cqa
  $ cqanull check --all-semantics example.cqa
  $ cqanull repairs example.cqa
  $ cqanull repairs --engine enumerate example.cqa | tail -n 1
  $ cqanull cqa example.cqa --query courses
  $ cqanull graph example.cqa | grep -E 'RIC-acyclic|bilateral|Theorem 5|insertion'
  $ cqanull export example.cqa | head -n 5
  $ cqanull export example.cqa -o prog.dlv
  $ cqanull solve prog.dlv | tail -n 1
  $ cqanull solve program.dlv
  $ cqanull solve --cautious program.dlv
  $ cqanull solve --brave program.dlv
  $ cqanull check badref.cqa
  $ cqanull repairs example.cqa --save rep > /dev/null
  $ cqanull check rep_1.cqa
  $ cqanull check rep_2.cqa
  $ cqanull cqa example.cqa --query courses --engine cautious | grep consistent
