  $ cqanull-bench --json baseline.json --micro --quota 0.005 > /dev/null
  $ cqanull-bench --check-json baseline.json
  $ grep -o '"\(schema\|tool\|unit\|micro\|solver\|decompose\)"' baseline.json
  $ grep -c '"engine": "counter"' baseline.json
  $ grep -c '"engine": "naive"' baseline.json
  $ grep -c '"rules_touched": [0-9]' baseline.json
  $ grep -c '"component_states": \[' baseline.json
  $ grep -c '"product_exact": "true"' baseline.json
  $ cqanull-bench --check-json ../../BENCH_PR1.json
  $ cqanull-bench --check-json ../../BENCH_PR2.json
  $ cqanull-bench --compare-json ../../BENCH_PR1.json ../../BENCH_PR2.json > compare.out
  $ tail -1 compare.out
  $ echo '{"schema": "cqanull-bench/1", "micro": [' > broken.json
  $ cqanull-bench --check-json broken.json
  $ echo '{"schema": "cqanull-bench/9", "tool": "x", "unit": "ns", "micro": [], "solver": []}' > badschema.json
  $ cqanull-bench --check-json badschema.json
