  $ cqanull-bench --json baseline.json --micro --quota 0.005 > /dev/null
  $ cqanull-bench --check-json baseline.json
  $ grep -o '"\(schema\|tool\|unit\|micro\|solver\)"' baseline.json
  $ grep -c '"engine": "counter"' baseline.json
  $ grep -c '"engine": "naive"' baseline.json
  $ grep -c '"rules_touched": [0-9]' baseline.json
  $ echo '{"schema": "cqanull-bench/1", "micro": [' > broken.json
  $ cqanull-bench --check-json broken.json
