(* Tests for query evaluation over nulls and consistent query answering
   (Definition 8, Theorems 2-3). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Instance = Relational.Instance
module Term = Ic.Term
module Patom = Ic.Patom
module Builtin = Ic.Builtin
module Constr = Ic.Constr
module Q = Query.Qsyntax
module Qeval = Query.Qeval
module Qsafe = Query.Qsafe
module Cqa = Query.Cqa

let v = Term.var
let atom p ts = Patom.make p ts
let vn = Value.null
let vs = Value.str
let vi = Value.int

let tuple_set = Alcotest.testable
    (fun ppf s -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Tuple.pp) (Tuple.Set.elements s))
    Tuple.Set.equal

let set_of l = Tuple.Set.of_list (List.map Tuple.make l)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let d0 =
  Instance.of_list
    [
      ("Student", [ vi 21; vs "Ann" ]);
      ("Student", [ vi 45; vs "Paul" ]);
      ("Student", [ vi 34; vn ]);
      ("Course", [ vi 21; vs "C15" ]);
    ]

let test_atom_query () =
  let q = Q.make ~head:[ "id"; "name" ] (Q.Atom (atom "Student" [ v "id"; v "name" ])) in
  Alcotest.check tuple_set "all students"
    (set_of [ [ vi 21; vs "Ann" ]; [ vi 45; vs "Paul" ]; [ vi 34; vn ] ])
    (Qeval.answers d0 q)

let test_projection_query () =
  let q = Q.make ~head:[ "id" ] (Q.Exists ([ "name" ], Q.Atom (atom "Student" [ v "id"; v "name" ]))) in
  Alcotest.check tuple_set "student ids"
    (set_of [ [ vi 21 ]; [ vi 45 ]; [ vi 34 ] ])
    (Qeval.answers d0 q)

let test_join_query () =
  let q =
    Q.make ~head:[ "name" ]
      (Q.Exists
         ( [ "id"; "code" ],
           Q.And
             ( Q.Atom (atom "Student" [ v "id"; v "name" ]),
               Q.Atom (atom "Course" [ v "id"; v "code" ]) ) ))
  in
  Alcotest.check tuple_set "enrolled names" (set_of [ [ vs "Ann" ] ]) (Qeval.answers d0 q)

let test_negation_query () =
  let q =
    Q.make ~head:[ "id" ]
      (Q.Exists
         ( [ "name" ],
           Q.And
             ( Q.Atom (atom "Student" [ v "id"; v "name" ]),
               Q.Not (Q.Exists ([ "code" ], Q.Atom (atom "Course" [ v "id"; v "code" ]))) ) ))
  in
  Alcotest.check tuple_set "students without courses"
    (set_of [ [ vi 45 ]; [ vi 34 ] ])
    (Qeval.answers d0 q)

let test_isnull_query () =
  let q =
    Q.make ~head:[ "id" ]
      (Q.Exists
         ( [ "name" ],
           Q.And
             ( Q.Atom (atom "Student" [ v "id"; v "name" ]),
               Q.IsNull (v "name") ) ))
  in
  Alcotest.check tuple_set "unknown names" (set_of [ [ vi 34 ] ]) (Qeval.answers d0 q)

let test_comparison_semantics () =
  let d = Instance.of_list [ ("P", [ vi 1; vn ]); ("P", [ vi 2; vi 5 ]) ] in
  let q sem =
    Qeval.answers ~semantics:sem d
      (Q.make ~head:[ "x" ]
         (Q.Exists
            ( [ "y" ],
              Q.And
                ( Q.Atom (atom "P" [ v "x"; v "y" ]),
                  Q.Builtin (Builtin.cmp Builtin.Lt (Builtin.evar "y") (Builtin.eint 10)) ) )))
  in
  (* under both semantics null < 10 is not satisfied *)
  Alcotest.check tuple_set "null < 10 never holds (constant)" (set_of [ [ vi 2 ] ])
    (q Qeval.NullAsConstant);
  Alcotest.check tuple_set "null < 10 never holds (sql)" (set_of [ [ vi 2 ] ])
    (q Qeval.SqlLike);
  (* equality with null differs: as a constant null = null holds *)
  let eq_null sem =
    Qeval.answers ~semantics:sem d
      (Q.make ~head:[ "x" ]
         (Q.Exists
            ( [ "y"; "x2"; "y2" ],
              Q.And
                ( Q.And
                    ( Q.Atom (atom "P" [ v "x"; v "y" ]),
                      Q.Atom (atom "P" [ v "x2"; v "y2" ]) ),
                  Q.And
                    ( Q.Builtin (Builtin.eq (v "y") (v "y2")),
                      Q.Builtin (Builtin.neq (v "x") (v "x2")) ) ) )))
  in
  Alcotest.check tuple_set "no cross pair (constant)" Tuple.Set.empty
    (eq_null Qeval.NullAsConstant);
  Alcotest.check tuple_set "no cross pair (sql)" Tuple.Set.empty (eq_null Qeval.SqlLike)

let test_nullaware_semantics () =
  (* Example 12's lesson inverted: under the compatible semantics a null
     never joins, while as-a-constant it does *)
  let d = Instance.of_list [ ("P", [ vs "a"; vn ]); ("Q", [ vn ]); ("Q", [ vs "c" ]) ] in
  let join_query =
    Q.make ~head:[ "x" ]
      (Q.Exists
         ( [ "y" ],
           Q.And (Q.Atom (atom "P" [ v "x"; v "y" ]), Q.Atom (atom "Q" [ v "y" ])) ))
  in
  Alcotest.check tuple_set "null joins as a constant" (set_of [ [ vs "a" ] ])
    (Qeval.answers ~semantics:Qeval.NullAsConstant d join_query);
  Alcotest.check tuple_set "null never joins (compatible)" Tuple.Set.empty
    (Qeval.answers ~semantics:Qeval.NullAware d join_query);
  (* a null in a non-join position is still returned *)
  let all_p = Q.make ~head:[ "x"; "y" ] (Q.Atom (atom "P" [ v "x"; v "y" ])) in
  Alcotest.check tuple_set "null returned" (set_of [ [ vs "a"; vn ] ])
    (Qeval.answers ~semantics:Qeval.NullAware d all_p);
  (* self-join within one atom: repeated variable must be non-null *)
  let d2 = Instance.of_list [ ("R", [ vn; vn ]); ("R", [ vs "b"; vs "b" ]) ] in
  let diag = Q.make ~head:[ "x" ] (Q.Atom (atom "R" [ v "x"; v "x" ])) in
  Alcotest.check tuple_set "diagonal as constant" (set_of [ [ vn ]; [ vs "b" ] ])
    (Qeval.answers ~semantics:Qeval.NullAsConstant d2 diag);
  Alcotest.check tuple_set "diagonal compatible" (set_of [ [ vs "b" ] ])
    (Qeval.answers ~semantics:Qeval.NullAware d2 diag);
  (* isnull on a single-occurrence variable still works *)
  let isnull_q =
    Q.make ~head:[ "x" ]
      (Q.Exists ([ "y" ], Q.And (Q.Atom (atom "P" [ v "x"; v "y" ]), Q.IsNull (v "y"))))
  in
  Alcotest.check tuple_set "isnull sanctioned" (set_of [ [ vs "a" ] ])
    (Qeval.answers ~semantics:Qeval.NullAware d isnull_q);
  (* comparisons with null are unknown *)
  let cmp_q =
    Q.make ~head:[ "x" ]
      (Q.Exists
         ( [ "y" ],
           Q.And
             ( Q.Atom (atom "P" [ v "x"; v "y" ]),
               Q.Builtin (Builtin.eq (v "y") (v "y")) ) ))
  in
  Alcotest.check tuple_set "null = null unknown under compatible" Tuple.Set.empty
    (Qeval.answers ~semantics:Qeval.NullAware d cmp_q);
  Alcotest.check tuple_set "null = null holds as constant" (set_of [ [ vs "a" ] ])
    (Qeval.answers ~semantics:Qeval.NullAsConstant d cmp_q)

let test_forall () =
  let d = Instance.of_list [ ("P", [ vs "a" ]); ("P", [ vs "b" ]); ("Q", [ vs "a" ]); ("Q", [ vs "b" ]) ] in
  let subset =
    Q.make ~head:[]
      (Q.Forall ([ "x" ], Q.Or (Q.Not (Q.Atom (atom "P" [ v "x" ])), Q.Atom (atom "Q" [ v "x" ]))))
  in
  Alcotest.(check bool) "P subset Q" true (Qeval.boolean d subset);
  let d' = Instance.add (Relational.Atom.make "P" [ vs "c" ]) d in
  Alcotest.(check bool) "P not subset Q" false (Qeval.boolean d' subset)

let test_query_validation () =
  Alcotest.(check bool) "bound head var rejected" true
    (try
       ignore (Q.make ~head:[ "x" ] (Q.Exists ([ "x" ], Q.Atom (atom "P" [ v "x" ]))));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "missing head var rejected" true
    (try
       ignore (Q.make ~head:[ "zz" ] (Q.Atom (atom "P" [ v "x" ])));
       false
     with Invalid_argument _ -> true);
  (* conj/disj unit elements *)
  Alcotest.(check bool) "empty conj is true" true
    (Qeval.boolean Instance.empty (Q.make ~head:[] (Q.conj [])));
  Alcotest.(check bool) "empty disj is false" false
    (Qeval.boolean Instance.empty (Q.make ~head:[] (Q.disj [])))

let test_progcqa_compile_union () =
  (* a union query compiles to one rule per disjunct *)
  let names = Core.Annot.Names.create () in
  let q =
    Q.make ~head:[ "x" ]
      (Q.Or (Q.Atom (atom "P" [ v "x" ]), Q.Atom (atom "T" [ v "x" ])))
  in
  match Query.Progcqa.compile names q with
  | Ok rules -> Alcotest.(check int) "two rules" 2 (List.length rules)
  | Error m -> Alcotest.failf "compile: %s" m

let test_progcqa_unsafe_rejected () =
  let names = Core.Annot.Names.create () in
  (* head variable occurring only under negation *)
  let q = Q.make ~head:[ "x" ] (Q.Or (Q.Atom (atom "P" [ v "x" ]), Q.Not (Q.Atom (atom "T" [ v "x" ])))) in
  Alcotest.(check bool) "unsafe disjunct rejected" true
    (Result.is_error (Query.Progcqa.compile names q))

(* ------------------------------------------------------------------ *)
(* Safety *)

let test_safety () =
  let safe = Q.make ~head:[ "x" ] (Q.Atom (atom "P" [ v "x" ])) in
  Alcotest.(check bool) "atom query safe" true (Qsafe.is_safe safe);
  let unsafe_neg = Q.make ~head:[ "x" ] (Q.And (Q.Atom (atom "P" [ v "y" ]), Q.Not (Q.Atom (atom "Q" [ v "x" ])))) in
  ignore unsafe_neg;
  (* head var restricted only under negation: unsafe *)
  Alcotest.(check bool) "negated head var unsafe" false
    (Qsafe.is_safe (Q.make ~head:[ "x" ] (Q.Or (Q.Atom (atom "P" [ v "x" ]), Q.Builtin (Builtin.eq (v "x") (v "x"))))));
  let guarded_forall =
    Q.make ~head:[]
      (Q.Forall ([ "x" ], Q.Or (Q.Not (Q.Atom (atom "P" [ v "x" ])), Q.Atom (atom "Q" [ v "x" ]))))
  in
  Alcotest.(check bool) "guarded forall safe" true (Qsafe.is_safe guarded_forall)

(* ------------------------------------------------------------------ *)
(* CQA on Example 14/15 *)

let ex15 = Workload.Paperdb.example15

let student_query =
  Q.make ~head:[ "id"; "name" ] (Q.Atom (atom "Student" [ v "id"; v "name" ]))

let course_query =
  Q.make ~head:[ "id"; "code" ] (Q.Atom (atom "Course" [ v "id"; v "code" ]))

let run_cqa ?method_ q =
  match Cqa.consistent_answers ?method_ ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics q with
  | Ok o -> o
  | Error msg -> Alcotest.failf "cqa error: %s" msg

let test_cqa_students () =
  let o = run_cqa student_query in
  (* the original students are in every repair; Student(34, null) only in
     the insertion repair *)
  Alcotest.check tuple_set "consistent students"
    (set_of [ [ vi 21; vs "Ann" ]; [ vi 45; vs "Paul" ] ])
    o.Cqa.consistent;
  Alcotest.check tuple_set "possible students"
    (set_of [ [ vi 21; vs "Ann" ]; [ vi 45; vs "Paul" ]; [ vi 34; vn ] ])
    o.Cqa.possible;
  Alcotest.(check int) "two repairs" 2 o.Cqa.repair_count

let test_cqa_courses () =
  let o = run_cqa course_query in
  (* Course(34, C18) is deleted in one repair: not a consistent answer *)
  Alcotest.check tuple_set "consistent courses" (set_of [ [ vi 21; vs "C15" ] ])
    o.Cqa.consistent;
  Alcotest.check tuple_set "standard answers keep the dirty tuple"
    (set_of [ [ vi 21; vs "C15" ]; [ vi 34; vs "C18" ] ])
    o.Cqa.standard

let test_cqa_methods_agree () =
  List.iter
    (fun q ->
      let a = run_cqa ~method_:Cqa.ModelTheoretic q in
      let b = run_cqa ~method_:Cqa.LogicProgram q in
      Alcotest.check tuple_set "methods agree (consistent)" a.Cqa.consistent b.Cqa.consistent;
      Alcotest.check tuple_set "methods agree (possible)" a.Cqa.possible b.Cqa.possible)
    [ student_query; course_query ]

let test_certain_boolean () =
  (* "is there a student with id 21?" holds in every repair *)
  let q21 =
    Q.make ~head:[] (Q.Exists ([ "n" ], Q.Atom (atom "Student" [ Term.int 21; v "n" ])))
  in
  let q34 =
    Q.make ~head:[] (Q.Exists ([ "n" ], Q.Atom (atom "Student" [ Term.int 34; v "n" ])))
  in
  let certain q =
    match Cqa.certain ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics q with
    | Ok b -> b
    | Error m -> Alcotest.failf "certain: %s" m
  in
  Alcotest.(check bool) "student 21 certain" true (certain q21);
  Alcotest.(check bool) "student 34 uncertain" false (certain q34)

let test_cqa_consistent_database () =
  (* on a consistent database CQA = standard answers *)
  let d = Instance.of_list [ ("Course", [ vi 21; vs "C15" ]); ("Student", [ vi 21; vs "Ann" ]) ] in
  match Cqa.consistent_answers d ex15.Workload.Paperdb.ics course_query with
  | Error m -> Alcotest.failf "cqa: %s" m
  | Ok o ->
      Alcotest.check tuple_set "consistent = standard" o.Cqa.standard o.Cqa.consistent;
      Alcotest.(check int) "one repair" 1 o.Cqa.repair_count

(* Example 19 CQA: S(null, a) survives every repair; R tuples are uncertain *)
let test_cqa_example19 () =
  let ex = Workload.Paperdb.example19 in
  let qs = Q.make ~head:[ "u"; "x" ] (Q.Atom (atom "S" [ v "u"; v "x" ])) in
  let qr = Q.make ~head:[ "x"; "y" ] (Q.Atom (atom "R" [ v "x"; v "y" ])) in
  match
    ( Cqa.consistent_answers ex.Workload.Paperdb.d ex.Workload.Paperdb.ics qs,
      Cqa.consistent_answers ex.Workload.Paperdb.d ex.Workload.Paperdb.ics qr )
  with
  | Ok os, Ok orr ->
      Alcotest.check tuple_set "S(null,a) certain" (set_of [ [ vn; vs "a" ] ])
        os.Cqa.consistent;
      Alcotest.check tuple_set "no consistent R answers" Tuple.Set.empty
        orr.Cqa.consistent;
      Alcotest.(check int) "four repairs" 4 os.Cqa.repair_count
  | Error m, _ | _, Error m -> Alcotest.failf "cqa: %s" m

(* ------------------------------------------------------------------ *)
(* CQA by cautious reasoning (Progcqa) *)

let cautious_outcome d ics q =
  match Query.Progcqa.consistent_answers d ics q with
  | Ok o -> o
  | Error msg -> Alcotest.failf "progcqa: %s" msg

let test_cautious_students () =
  let o = cautious_outcome ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics student_query in
  Alcotest.check tuple_set "cautious students"
    (set_of [ [ vi 21; vs "Ann" ]; [ vi 45; vs "Paul" ] ])
    o.Query.Progcqa.consistent;
  Alcotest.check tuple_set "brave students"
    (set_of [ [ vi 21; vs "Ann" ]; [ vi 45; vs "Paul" ]; [ vi 34; vn ] ])
    o.Query.Progcqa.possible;
  Alcotest.(check int) "two stable models" 2 o.Query.Progcqa.stable_models

let test_cautious_negation () =
  (* students with no course: negation compiled to 'not ... tss' *)
  let q =
    Q.make ~head:[ "i" ]
      (Q.Exists
         ( [ "n" ],
           Q.And
             ( Q.Atom (atom "Student" [ v "i"; v "n" ]),
               Q.Not (Q.Exists ([ "c" ], Q.Atom (atom "Course" [ v "i"; v "c" ]))) ) ))
  in
  (* negated existential is outside the fragment *)
  Alcotest.(check bool) "negated exists rejected" true
    (Result.is_error
       (Query.Progcqa.consistent_answers ex15.Workload.Paperdb.d
          ex15.Workload.Paperdb.ics q));
  (* but direct atom negation is in the fragment *)
  let q2 =
    Q.make ~head:[ "i"; "n" ]
      (Q.And
         ( Q.Atom (atom "Student" [ v "i"; v "n" ]),
           Q.Not (Q.Atom (atom "Course" [ v "i"; Term.str "C15" ])) ))
  in
  let o = cautious_outcome ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics q2 in
  Alcotest.check tuple_set "students not in C15"
    (set_of [ [ vi 45; vs "Paul" ] ])
    o.Query.Progcqa.consistent

let test_cautious_isnull () =
  let q =
    Q.make ~head:[ "i" ]
      (Q.Exists
         ( [ "n" ],
           Q.And (Q.Atom (atom "Student" [ v "i"; v "n" ]), Q.IsNull (v "n")) ))
  in
  let o = cautious_outcome ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics q in
  (* Student(34, null) exists only in the insertion repair: possible, not
     consistent *)
  Alcotest.check tuple_set "not cautious" Tuple.Set.empty o.Query.Progcqa.consistent;
  Alcotest.check tuple_set "but brave" (set_of [ [ vi 34 ] ]) o.Query.Progcqa.possible

let test_cautious_rejects_cyclic () =
  let ics =
    [
      Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
      Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "P" [ v "x"; v "z" ] ] ();
    ]
  in
  let q = Q.make ~head:[ "x" ] (Q.Exists ([ "y" ], Q.Atom (atom "P" [ v "x"; v "y" ]))) in
  Alcotest.(check bool) "cyclic rejected" true
    (Result.is_error (Query.Progcqa.consistent_answers Instance.empty ics q))

let test_cautious_forall_rejected () =
  let q =
    Q.make ~head:[]
      (Q.Forall ([ "x" ], Q.Or (Q.Not (Q.Atom (atom "T" [ v "x" ])), Q.Atom (atom "T" [ v "x" ]))))
  in
  Alcotest.(check bool) "forall rejected" true
    (Result.is_error
       (Query.Progcqa.consistent_answers ex15.Workload.Paperdb.d
          ex15.Workload.Paperdb.ics q))

let test_cautious_certain () =
  let q21 =
    Q.make ~head:[] (Q.Exists ([ "n" ], Q.Atom (atom "Student" [ Term.int 21; v "n" ])))
  in
  match Query.Progcqa.certain ex15.Workload.Paperdb.d ex15.Workload.Paperdb.ics q21 with
  | Ok b -> Alcotest.(check bool) "certain via cautious reasoning" true b
  | Error m -> Alcotest.failf "certain: %s" m

let test_cautious_via_cqa_method () =
  match
    Cqa.consistent_answers ~method_:Cqa.CautiousProgram ex15.Workload.Paperdb.d
      ex15.Workload.Paperdb.ics course_query
  with
  | Error m -> Alcotest.failf "cqa: %s" m
  | Ok o ->
      Alcotest.check tuple_set "consistent courses via CautiousProgram"
        (set_of [ [ vi 21; vs "C15" ] ])
        o.Cqa.consistent

(* ------------------------------------------------------------------ *)
(* Effort budgets surface as errors, not exceptions *)

let test_cqa_budget () =
  let d =
    Instance.of_list (List.init 8 (fun i -> ("Course", [ vi i; vs "c" ])))
  in
  let q = Q.make ~head:[ "i"; "c" ] (Q.Atom (atom "Course" [ v "i"; v "c" ])) in
  (match
     Cqa.consistent_answers ~method_:Cqa.ModelTheoretic ~max_effort:3 d
       ex15.Workload.Paperdb.ics q
   with
  | Error msg ->
      Alcotest.(check bool) "budget message" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected budget error");
  match
    Cqa.consistent_answers ~method_:Cqa.LogicProgram ~max_effort:2 d
      ex15.Workload.Paperdb.ics q
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected solver budget error"

(* ------------------------------------------------------------------ *)
(* Properties *)

let value_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'c')) ])

let inst_gen =
  QCheck.Gen.(
    let atom_gen =
      let* p, arity = oneofl [ ("P", 2); ("T", 1) ] in
      map (fun values -> Relational.Atom.make p values) (list_size (return arity) value_gen)
    in
    map Instance.of_atoms (list_size (int_range 0 5) atom_gen))

let scenario = [ Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] () ]

let pquery = Q.make ~head:[ "x" ] (Q.Exists ([ "y" ], Q.Atom (atom "P" [ v "x"; v "y" ])))

let prop_nullaware_agrees_nullfree =
  QCheck.Test.make ~name:"on null-free instances all query semantics agree" ~count:100
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      let d = Instance.filter (fun a -> not (Relational.Atom.has_null a)) d in
      let a = Qeval.answers ~semantics:Qeval.NullAsConstant d pquery in
      let b = Qeval.answers ~semantics:Qeval.SqlLike d pquery in
      let c = Qeval.answers ~semantics:Qeval.NullAware d pquery in
      Tuple.Set.equal a b && Tuple.Set.equal a c)

let prop_consistent_subset_possible =
  QCheck.Test.make ~name:"consistent ⊆ possible ⊆ union with standard" ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      match Cqa.consistent_answers ~method_:Cqa.ModelTheoretic d scenario pquery with
      | Error _ -> true
      | Ok o -> Tuple.Set.subset o.Cqa.consistent o.Cqa.possible)

let prop_methods_agree =
  QCheck.Test.make ~name:"CQA agrees across all three engines" ~count:40
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      match
        ( Cqa.consistent_answers ~method_:Cqa.ModelTheoretic d scenario pquery,
          Cqa.consistent_answers ~method_:Cqa.LogicProgram d scenario pquery,
          Cqa.consistent_answers ~method_:Cqa.CautiousProgram d scenario pquery )
      with
      | Ok a, Ok b, Ok c ->
          Tuple.Set.equal a.Cqa.consistent b.Cqa.consistent
          && Tuple.Set.equal a.Cqa.possible b.Cqa.possible
          && Tuple.Set.equal a.Cqa.consistent c.Cqa.consistent
          && Tuple.Set.equal a.Cqa.possible c.Cqa.possible
      | _ -> false)

let prop_consistent_on_consistent_db =
  QCheck.Test.make ~name:"consistent db: CQA = standard answers" ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      QCheck.assume (Semantics.Nullsat.consistent d scenario);
      match Cqa.consistent_answers ~method_:Cqa.ModelTheoretic d scenario pquery with
      | Error _ -> false
      | Ok o -> Tuple.Set.equal o.Cqa.consistent o.Cqa.standard)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "query"
    [
      ( "eval",
        [
          Alcotest.test_case "atom" `Quick test_atom_query;
          Alcotest.test_case "projection" `Quick test_projection_query;
          Alcotest.test_case "join" `Quick test_join_query;
          Alcotest.test_case "negation" `Quick test_negation_query;
          Alcotest.test_case "isnull" `Quick test_isnull_query;
          Alcotest.test_case "comparisons over null" `Quick test_comparison_semantics;
          Alcotest.test_case "compatible semantics (NullAware)" `Quick
            test_nullaware_semantics;
          Alcotest.test_case "forall" `Quick test_forall;
        ] );
      ( "safety",
        [
          Alcotest.test_case "safe-range" `Quick test_safety;
          Alcotest.test_case "validation" `Quick test_query_validation;
          Alcotest.test_case "compile union" `Quick test_progcqa_compile_union;
          Alcotest.test_case "compile unsafe" `Quick test_progcqa_unsafe_rejected;
        ] );
      ( "cqa",
        [
          Alcotest.test_case "students" `Quick test_cqa_students;
          Alcotest.test_case "courses" `Quick test_cqa_courses;
          Alcotest.test_case "methods agree" `Quick test_cqa_methods_agree;
          Alcotest.test_case "certain boolean" `Quick test_certain_boolean;
          Alcotest.test_case "consistent database" `Quick test_cqa_consistent_database;
          Alcotest.test_case "example 19" `Quick test_cqa_example19;
        ] );
      ( "cautious",
        [
          Alcotest.test_case "students" `Quick test_cautious_students;
          Alcotest.test_case "negation" `Quick test_cautious_negation;
          Alcotest.test_case "isnull" `Quick test_cautious_isnull;
          Alcotest.test_case "cyclic rejected" `Quick test_cautious_rejects_cyclic;
          Alcotest.test_case "forall rejected" `Quick test_cautious_forall_rejected;
          Alcotest.test_case "certain" `Quick test_cautious_certain;
          Alcotest.test_case "via Cqa method" `Quick test_cautious_via_cqa_method;
          Alcotest.test_case "effort budgets" `Quick test_cqa_budget;
        ] );
      ( "properties",
        qcheck
          [
            prop_nullaware_agrees_nullfree;
            prop_consistent_subset_possible;
            prop_methods_agree;
            prop_consistent_on_consistent_db;
          ] );
    ]
