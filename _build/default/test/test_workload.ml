(* Tests for the benchmark workload generators and the paper scenarios. *)

module Instance = Relational.Instance
module Gen = Workload.Gen
module Paperdb = Workload.Paperdb

let test_paper_scenarios () =
  (* every scenario with a reported repair count reproduces it, and the
     constraint sets are valid for the engines that tests use *)
  List.iter
    (fun (s : Paperdb.scenario) ->
      match s.Paperdb.expected_repairs with
      | None -> ()
      | Some n ->
          let reps = Repair.Enumerate.repairs s.Paperdb.d s.Paperdb.ics in
          Alcotest.(check int) s.Paperdb.label n (List.length reps))
    Paperdb.all

let test_fk_workload_deterministic () =
  let w1 = Gen.fk_workload ~seed:7 ~n_parent:5 ~n_child:8 ~orphan_rate:0.3 ~null_rate:0.2 () in
  let w2 = Gen.fk_workload ~seed:7 ~n_parent:5 ~n_child:8 ~orphan_rate:0.3 ~null_rate:0.2 () in
  Alcotest.(check bool) "same seed, same instance" true
    (Instance.equal w1.Gen.d w2.Gen.d);
  let w3 = Gen.fk_workload ~seed:8 ~n_parent:5 ~n_child:8 ~orphan_rate:0.3 ~null_rate:0.2 () in
  Alcotest.(check bool) "different seed, different instance" false
    (Instance.equal w1.Gen.d w3.Gen.d)

let test_fk_workload_shape () =
  let w = Gen.fk_workload ~seed:1 ~n_parent:10 ~n_child:20 ~orphan_rate:0.0 ~null_rate:0.0 () in
  Alcotest.(check int) "tuple count" 30 (Instance.cardinal w.Gen.d);
  (* no orphans, no nulls: consistent *)
  Alcotest.(check bool) "clean workload consistent" true
    (Semantics.Nullsat.consistent w.Gen.d w.Gen.ics)

let test_fk_workload_det_violations () =
  let w = Gen.fk_workload_det ~n_parent:4 ~n_child:10 ~orphans:3 ~null_refs:2 () in
  (* exactly the 3 orphans violate under |=_N (null refs are excused) *)
  Alcotest.(check int) "3 violations" 3
    (List.length (Semantics.Nullsat.check w.Gen.d w.Gen.ics));
  (* classic semantics additionally counts the null references *)
  let classic =
    List.length
      (List.concat_map (fun ic -> Semantics.Classic.violations w.Gen.d ic) w.Gen.ics)
  in
  Alcotest.(check int) "5 classic violations" 5 classic

let test_fd_workload () =
  let w = Gen.fd_workload ~seed:3 ~n:10 ~dup_rate:1.0 () in
  Alcotest.(check int) "all duplicated" 20 (Instance.cardinal w.Gen.d);
  (* every key has two conflicting values: 2^10 repairs would be the
     product; each violation pair counted twice by the checker *)
  Alcotest.(check int) "20 violation matches" 20
    (List.length (Semantics.Nullsat.check w.Gen.d w.Gen.ics))

let test_check_workload () =
  let w = Gen.check_workload ~seed:5 ~n:50 ~viol_rate:0.0 ~null_rate:0.0 () in
  Alcotest.(check bool) "no violations" true
    (Semantics.Nullsat.consistent w.Gen.d w.Gen.ics);
  let w' = Gen.check_workload ~seed:5 ~n:50 ~viol_rate:1.0 ~null_rate:0.0 () in
  Alcotest.(check int) "all violate" 50
    (List.length (Semantics.Nullsat.check w'.Gen.d w'.Gen.ics))

let test_chain_workload () =
  let w = Gen.chain_workload ~n:5 ~broken:2 () in
  (* the broken S tuples violate ic1; everything else is supported *)
  Alcotest.(check int) "2 violations" 2
    (List.length (Semantics.Nullsat.check w.Gen.d w.Gen.ics));
  Alcotest.(check bool) "RIC-acyclic" true (Ic.Depgraph.is_ric_acyclic w.Gen.ics)

let test_disjunctive_uic () =
  let w = Gen.disjunctive_uic ~width:4 in
  match w.Gen.ics with
  | [ Ic.Constr.Generic g ] ->
      Alcotest.(check int) "4 disjuncts" 4 (List.length g.Ic.Constr.cons)
  | _ -> Alcotest.fail "expected one generic constraint"

let test_bilateral_non_hcf () =
  let w = Gen.bilateral_loop ~seed:2 ~n:3 () in
  Alcotest.(check bool) "fails Theorem 5" false (Core.Hcfcheck.static_hcf w.Gen.ics)

let test_denial_hcf () =
  let w = Gen.denial_workload ~seed:2 ~n:5 ~viol_rate:0.5 () in
  Alcotest.(check bool) "denials satisfy Theorem 5" true
    (Core.Hcfcheck.static_hcf w.Gen.ics);
  Alcotest.(check bool) "denial is denial" true
    (Ic.Classify.is_denial (List.hd w.Gen.ics))

(* Example 7: with set semantics, a table cannot hold two copies of a row,
   so the FD representation of a primary key accepts what the bag-semantics
   index check of a DBMS would reject — the deviation the paper documents. *)
let test_example7_set_semantics () =
  let d =
    Instance.of_atoms
      [
        Relational.Atom.make "P" [ Relational.Value.str "a"; Relational.Value.str "b" ];
        Relational.Atom.make "P" [ Relational.Value.str "a"; Relational.Value.str "b" ];
      ]
  in
  Alcotest.(check int) "duplicate row collapses" 1 (Instance.cardinal d);
  let key = Ic.Builder.key ~pred:"P" ~arity:2 ~key:[ 1 ] () in
  Alcotest.(check bool) "FD satisfied (paper: 'we will assume D is consistent')"
    true
    (Semantics.Nullsat.consistent d key)

let () =
  Alcotest.run "workload"
    [
      ( "paper",
        [
          Alcotest.test_case "scenario repair counts" `Quick test_paper_scenarios;
          Alcotest.test_case "example 7 set semantics" `Quick test_example7_set_semantics;
        ] );
      ( "generators",
        [
          Alcotest.test_case "fk deterministic" `Quick test_fk_workload_deterministic;
          Alcotest.test_case "fk shape" `Quick test_fk_workload_shape;
          Alcotest.test_case "fk-det violations" `Quick test_fk_workload_det_violations;
          Alcotest.test_case "fd" `Quick test_fd_workload;
          Alcotest.test_case "check" `Quick test_check_workload;
          Alcotest.test_case "chain" `Quick test_chain_workload;
          Alcotest.test_case "disjunctive" `Quick test_disjunctive_uic;
          Alcotest.test_case "bilateral" `Quick test_bilateral_non_hcf;
          Alcotest.test_case "denial" `Quick test_denial_hcf;
        ] );
    ]
