(* Tests for the repair programs of Definition 9 and the correspondence of
   Theorem 4: the databases of the stable models of Pi(D, IC) are exactly
   the repairs of D. *)

module Value = Relational.Value
module Atom = Relational.Atom
module Instance = Relational.Instance
module Term = Ic.Term
module Patom = Ic.Patom
module Builtin = Ic.Builtin
module Constr = Ic.Constr
module Proggen = Core.Proggen
module Engine = Core.Engine
module Hcfcheck = Core.Hcfcheck
module Enumerate = Repair.Enumerate

let v = Term.var
let atom p ts = Patom.make p ts
let vn = Value.null
let vs = Value.str
let vi = Value.int

let instance = Alcotest.testable Instance.pp_inline Instance.equal

let check_repair_set name expected actual =
  let sort = List.sort Instance.compare in
  Alcotest.(check (list instance)) name (sort expected) (sort actual)

let engine_repairs ?variant d ics =
  match Engine.repairs ?variant d ics with
  | Ok reps -> reps
  | Error msg -> Alcotest.failf "engine error: %s" msg

(* Theorem 4 on a given scenario: program-based repairs = model-theoretic
   repairs. *)
let check_theorem4 name d ics =
  check_repair_set name (Enumerate.repairs d ics) (engine_repairs d ics)

(* ------------------------------------------------------------------ *)
(* Paper scenarios *)

let ex15_d =
  Instance.of_list
    [
      ("Course", [ vi 21; vs "C15" ]);
      ("Course", [ vi 34; vs "C18" ]);
      ("Student", [ vi 21; vs "Ann" ]);
      ("Student", [ vi 45; vs "Paul" ]);
    ]

let ex15_ric =
  Constr.generic
    ~ante:[ atom "Course" [ v "id"; v "code" ] ]
    ~cons:[ atom "Student" [ v "id"; v "name" ] ]
    ()

let test_theorem4_example15 () = check_theorem4 "example 15" ex15_d [ ex15_ric ]

let ex16_d = Instance.of_list [ ("Q", [ vs "a"; vs "b" ]); ("P", [ vs "a"; vs "c" ]) ]

let ex16_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "Q" [ v "x"; v "z" ] ] ();
    Constr.generic
      ~ante:[ atom "Q" [ v "x"; v "y" ] ]
      ~phi:[ Builtin.neq (v "y") (Term.str "b") ]
      ();
  ]

let test_theorem4_example16 () = check_theorem4 "example 16" ex16_d ex16_ics

let ex17_d =
  Instance.of_list
    [ ("P", [ vs "a"; vn ]); ("P", [ vs "b"; vs "c" ]); ("R", [ vs "a"; vs "b" ]) ]

let ex17_ric =
  Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "R" [ v "x"; v "z" ] ] ()

let test_theorem4_example17 () = check_theorem4 "example 17" ex17_d [ ex17_ric ]

(* Example 19/21/23: key + FK + NNC.  The program of Example 21 is Example
   19's; its stable models (Example 23) induce Example 19's four repairs. *)
let ex19_d =
  Instance.of_list
    [
      ("R", [ vs "a"; vs "b" ]);
      ("R", [ vs "a"; vs "c" ]);
      ("S", [ vs "e"; vs "f" ]);
      ("S", [ vn; vs "a" ]);
    ]

let ex19_ics =
  Ic.Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] ()
  @ [
      Ic.Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ] ~parent:"R"
        ~parent_arity:2 ~parent_cols:[ 1 ] ();
      Constr.not_null ~pred:"R" ~arity:2 ~pos:1 ();
    ]

let test_theorem4_example19 () =
  check_theorem4 "examples 19/21/23" ex19_d ex19_ics;
  (* both variants agree here *)
  check_repair_set "literal variant agrees on Example 19"
    (Enumerate.repairs ex19_d ex19_ics)
    (engine_repairs ~variant:Proggen.Literal ex19_d ex19_ics)

(* Example 18 is RIC-cyclic — outside Theorem 4's hypothesis — but the
   refined program still computes exactly the four repairs. *)
let ex18_d =
  Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("P", [ vn; vs "a" ]); ("T", [ vs "c" ]) ]

let ex18_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
    Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "P" [ v "y"; v "x" ] ] ();
  ]

let test_example18_cyclic () =
  (match Engine.run ex18_d ex18_ics with
  | Error msg -> Alcotest.failf "engine error: %s" msg
  | Ok report ->
      Alcotest.(check bool) "flagged RIC-cyclic" false report.Engine.ric_acyclic);
  check_theorem4 "example 18 (cyclic, refined)" ex18_d ex18_ics

(* A cyclic set where the RIC-inserted tuple has a non-null universal
   attribute feeding the UIC: the raw stable models include circularly
   supported deletion cascades that are not <=_D-minimal, which the
   engine's minimality filter removes (Theorem 4 covers acyclic sets
   only). *)
let census_ics =
  [
    Constr.generic ~ante:[ atom "H" [ v "x"; v "y" ] ] ~cons:[ atom "G" [ v "x" ] ] ();
    Constr.generic ~ante:[ atom "G" [ v "x" ] ] ~cons:[ atom "H" [ v "x"; v "z" ] ] ();
  ]

let test_cyclic_cascade_filtered () =
  let d =
    Instance.of_list
      [
        ("H", [ vs "rod"; vs "oak" ]);
        ("H", [ vn; vs "elm" ]);
        ("G", [ vs "rod" ]);
        ("G", [ vs "mary" ]);
      ]
  in
  check_theorem4 "census cyclic scenario" d census_ics;
  check_repair_set "exactly delete-mary or insert-household"
    [
      Instance.remove (Atom.make "G" [ vs "mary" ]) d;
      Instance.add (Atom.make "H" [ vs "mary"; vn ]) d;
    ]
    (engine_repairs d census_ics)

let prop_theorem4_cyclic =
  let value_gen =
    QCheck.Gen.(
      frequency
        [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'c')) ])
  in
  let inst_gen =
    QCheck.Gen.(
      let atom_gen =
        let* p, arity = oneofl [ ("H", 2); ("G", 1) ] in
        map (fun values -> Atom.make p values) (list_size (return arity) value_gen)
      in
      map Instance.of_atoms (list_size (int_range 0 4) atom_gen))
  in
  QCheck.Test.make ~name:"engine = Rep on cyclic scenarios" ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      let model_based = Enumerate.repairs ~max_states:100_000 d census_ics in
      let program_based = engine_repairs d census_ics in
      let sort = List.sort Instance.compare in
      List.equal Instance.equal (sort model_based) (sort program_based))

let test_consistent_database () =
  let d = Instance.of_list [ ("Course", [ vi 21; vs "C15" ]); ("Student", [ vi 21; vs "Ann" ]) ] in
  check_repair_set "consistent D: unique model = D" [ d ] (engine_repairs d [ ex15_ric ])

(* ------------------------------------------------------------------ *)
(* The Literal/Refined divergence (documented corner case) *)

let corner_d = Instance.of_list [ ("P", [ vs "a" ]); ("Q", [ vs "a"; vn ]) ]

let corner_ric =
  Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x"; v "y" ] ] ()

let test_corner_case () =
  (* D is consistent: Q(a, null) witnesses the RIC under |=_N *)
  Alcotest.(check bool) "consistent" true
    (Semantics.Nullsat.consistent corner_d [ corner_ric ]);
  check_repair_set "refined variant: exactly D" [ corner_d ]
    (engine_repairs ~variant:Proggen.Refined corner_d [ corner_ric ]);
  (* the literal Definition 9 program has a spurious deletion model at the
     stable-model level ... *)
  let raw_databases variant =
    match Proggen.repair_program ~variant corner_d [ corner_ric ] with
    | Error msg -> Alcotest.failf "generation failed: %s" msg
    | Ok pg ->
        let g = Asp.Grounder.ground pg.Proggen.program in
        Core.Extract.databases_of_models pg.Proggen.names
          (Asp.Solver.stable_models_atoms g)
  in
  let literal_raw = raw_databases Proggen.Literal in
  Alcotest.(check int) "literal raw models: spurious extra db" 2
    (List.length literal_raw);
  Alcotest.(check bool) "D among them" true
    (List.exists (Instance.equal corner_d) literal_raw);
  let refined_raw = raw_databases Proggen.Refined in
  Alcotest.(check int) "refined raw models: exactly D" 1 (List.length refined_raw);
  (* ... which the engine's minimality filter removes even for Literal *)
  check_repair_set "engine filters the spurious db" [ corner_d ]
    (engine_repairs ~variant:Proggen.Literal corner_d [ corner_ric ])

(* ------------------------------------------------------------------ *)
(* Program structure (Examples 21, 22) *)

let test_example21_structure () =
  match Proggen.repair_program ~variant:Proggen.Literal ex19_d ex19_ics with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok pg ->
      let text = Proggen.to_dlv pg in
      let contains sub =
        let n = String.length text and m = String.length sub in
        let rec go i =
          i + m <= n && (String.equal (String.sub text i m) sub || go (i + 1))
        in
        m = 0 || go 0
      in
      (* facts *)
      Alcotest.(check bool) "fact R(a,b)" true (contains "d_r(a,b).");
      Alcotest.(check bool) "fact S(null,a)" true (contains "d_s(null,a).");
      (* rule 2 for the key FD: disjunctive deletion advice *)
      Alcotest.(check bool) "FD rule heads" true
        (contains "d_r_a(X1,X2,fa) v d_r_a(X1,Y2,fa)");
      (* rule 3 for the FK: null insertion *)
      Alcotest.(check bool) "RIC insertion head" true (contains "d_r_a(X2,null,ta)");
      Alcotest.(check bool) "aux rule" true (contains "aux_");
      (* rule 4 for the NNC *)
      Alcotest.(check bool) "NNC rule" true (contains "X1 = null");
      (* rules 6-7 *)
      Alcotest.(check bool) "interpretation rule" true
        (contains "d_r_a(X1,X2,tss) :- d_r_a(X1,X2,ts), not d_r_a(X1,X2,fa).");
      Alcotest.(check bool) "program denial" true
        (contains ":- d_r_a(X1,X2,ta), d_r_a(X1,X2,fa).")

let test_example22_partitions () =
  (* P(x,y) -> R(x) \/ S(y): the Q'/Q'' expansion yields 2^2 = 4 rules *)
  let d = Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("P", [ vs "c"; vn ]) ] in
  let ics =
    [
      Constr.generic
        ~ante:[ atom "P" [ v "x"; v "y" ] ]
        ~cons:[ atom "R" [ v "x" ]; atom "S" [ v "y" ] ]
        ();
      Constr.not_null ~pred:"P" ~arity:2 ~pos:2 ();
    ]
  in
  match Proggen.repair_program d ics with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok pg ->
      let facts, ic_rules, bookkeeping = Proggen.rule_counts pg in
      Alcotest.(check int) "2 facts" 2 facts;
      (* 4 partition rules + 1 NNC rule *)
      Alcotest.(check int) "5 IC rules" 5 ic_rules;
      (* 3 predicates x 4 bookkeeping rules *)
      Alcotest.(check int) "12 bookkeeping rules" 12 bookkeeping;
      (* and the repairs make sense: P(c,null) deleted by the NNC; P(a,b)
         violation fixed by deletion or R/S insertion *)
      check_repair_set "example 22 repairs"
        [
          Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("R", [ vs "a" ]) ];
          Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("S", [ vs "b" ]) ];
          Instance.empty;
        ]
        (engine_repairs d ics)

(* Example 23 prints the four stable models of Example 21's program.  The
   distinguishing content of each model is its set of ta/fa advice atoms:
   M1 = {R(a,c) fa, R(f,null) ta}, M2 = {R(a,b) fa, R(f,null) ta},
   M3 = {R(a,c) fa, S(e,f) fa},   M4 = {R(a,b) fa, S(e,f) fa}. *)
let test_example23_stable_models () =
  match Proggen.repair_program ~variant:Proggen.Literal ex19_d ex19_ics with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok pg ->
      let g = Asp.Grounder.ground pg.Proggen.program in
      let models = Asp.Solver.stable_models_atoms g in
      Alcotest.(check int) "four stable models" 4 (List.length models);
      let advice model =
        List.filter_map
          (fun (ga : Asp.Ground.gatom) ->
            match Core.Annot.Names.rel_of_annotated pg.Proggen.names ga.Asp.Ground.gpred with
            | None -> None
            | Some rel -> (
                match List.rev ga.Asp.Ground.gargs with
                | ann :: rev_args -> (
                    match Core.Annot.annotation_of_const ann with
                    | Some Core.Annot.Ta ->
                        Some
                          (Fmt.str "%s(%s) ta" rel
                             (String.concat ","
                                (List.rev_map
                                   (fun c -> Fmt.str "%a" Asp.Syntax.pp_const c)
                                   rev_args)))
                    | Some Core.Annot.Fa ->
                        Some
                          (Fmt.str "%s(%s) fa" rel
                             (String.concat ","
                                (List.rev_map
                                   (fun c -> Fmt.str "%a" Asp.Syntax.pp_const c)
                                   rev_args)))
                    | _ -> None)
                | [] -> None))
          model
        |> List.sort compare
      in
      let got = List.sort compare (List.map advice models) in
      let expected =
        List.sort compare
          [
            [ "R(a,c) fa"; "R(f,null) ta" ];
            [ "R(a,b) fa"; "R(f,null) ta" ];
            [ "R(a,c) fa"; "S(e,f) fa" ];
            [ "R(a,b) fa"; "S(e,f) fa" ];
          ]
      in
      Alcotest.(check (list (list string))) "the advice sets of Example 23"
        expected got

(* ------------------------------------------------------------------ *)
(* Decomposition into independent components (Decompose) *)

let test_decompose_components () =
  let ics = [ ex15_ric ] @ ex16_ics in
  let comps = Core.Decompose.components ics in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let all_preds = List.concat_map snd comps |> List.sort_uniq compare in
  Alcotest.(check (list string)) "predicates covered"
    [ "Course"; "P"; "Q"; "Student" ] all_preds

let test_decompose_product () =
  (* ex15 and ex16 are over disjoint schemas: the union instance has the
     product of their repairs (2 x 2), plus an untouched spectator *)
  let d =
    Instance.union ex15_d
      (Instance.union ex16_d (Instance.of_list [ ("Spectator", [ vs "s" ]) ]))
  in
  let ics = [ ex15_ric ] @ ex16_ics in
  match Core.Decompose.repairs d ics with
  | Error m -> Alcotest.failf "decompose: %s" m
  | Ok (reps, stats) ->
      Alcotest.(check int) "component count" 2 stats.Core.Decompose.component_count;
      Alcotest.(check (list int)) "2 repairs each" [ 2; 2 ]
        (List.sort compare stats.Core.Decompose.repairs_per_component);
      Alcotest.(check int) "product of repairs" 4 (List.length reps);
      check_repair_set "matches the monolithic engine" (Enumerate.repairs d ics) reps;
      List.iter
        (fun r ->
          Alcotest.(check bool) "spectator preserved" true
            (Instance.mem (Atom.make "Spectator" [ vs "s" ]) r))
        reps

let test_decompose_single_component () =
  match Core.Decompose.repairs ex19_d ex19_ics with
  | Error m -> Alcotest.failf "decompose: %s" m
  | Ok (reps, stats) ->
      Alcotest.(check int) "one component" 1 stats.Core.Decompose.component_count;
      check_repair_set "same repairs" (Enumerate.repairs ex19_d ex19_ics) reps

let prop_decompose_agrees =
  let value_gen =
    QCheck.Gen.(
      frequency
        [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'b')) ])
  in
  let inst_gen =
    QCheck.Gen.(
      let atom_gen =
        let* p, arity = oneofl [ ("P", 2); ("T", 1); ("A", 1); ("B", 1) ] in
        map (fun values -> Atom.make p values) (list_size (return arity) value_gen)
      in
      map Instance.of_atoms (list_size (int_range 0 6) atom_gen))
  in
  let two_groups =
    [
      Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
      Constr.generic ~ante:[ atom "A" [ v "x" ] ] ~cons:[ atom "B" [ v "x" ] ] ();
    ]
  in
  QCheck.Test.make ~name:"decomposed repairs = monolithic repairs" ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      match Core.Decompose.repairs ~engine:`Enumerate d two_groups with
      | Error _ -> false
      | Ok (reps, stats) ->
          stats.Core.Decompose.component_count = 2
          &&
          let sort = List.sort Instance.compare in
          List.equal Instance.equal
            (sort (Enumerate.repairs d two_groups))
            (sort reps))

(* ------------------------------------------------------------------ *)
(* Null-propagation analysis (extended-paper item (b)) *)

let test_nullflow_positions () =
  (* Example 19: the FK inserts nulls at R[2]; D holds a null at S[1] *)
  let ins = Core.Nullflow.insertion_positions ex19_ics in
  Alcotest.(check (list (pair string int))) "insertion positions" [ ("R", 2) ] ins;
  let may = Core.Nullflow.may_null ex19_d ex19_ics in
  Alcotest.(check (list (pair string int))) "may-null positions"
    [ ("R", 2); ("S", 1) ] may;
  Alcotest.(check bool) "R[1] null-safe" true
    (Core.Nullflow.null_safe ex19_ics [ ("R", 1) ]);
  Alcotest.(check bool) "R[2] not null-safe" false
    (Core.Nullflow.null_safe ex19_ics [ ("R", 2) ])

let prop_nullflow_sound =
  (* every null appearing in any repair sits at a predicted position *)
  let value_gen =
    QCheck.Gen.(
      frequency
        [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'b')) ])
  in
  let inst_gen =
    QCheck.Gen.(
      let atom_gen =
        let* p, arity = oneofl [ ("R", 2); ("S", 2) ] in
        map (fun values -> Atom.make p values) (list_size (return arity) value_gen)
      in
      map Instance.of_atoms (list_size (int_range 0 5) atom_gen))
  in
  QCheck.Test.make ~name:"null-flow analysis covers every repair null" ~count:80
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen)
    (fun d ->
      let may = Core.Nullflow.may_null d ex19_ics in
      Enumerate.repairs ~max_states:100_000 d ex19_ics
      |> List.for_all (fun r ->
             Instance.fold
               (fun a ok ->
                 ok
                 &&
                 let args = Atom.args a in
                 let rec go i =
                   i >= Array.length args
                   || ((not (Value.is_null args.(i)))
                      || List.mem (Atom.pred a, i + 1) may)
                      && go (i + 1)
                 in
                 go 0)
               r true))

(* ------------------------------------------------------------------ *)
(* Section 6: bilateral predicates and the static HCF condition *)

let test_example24_bilateral () =
  (* IC = {T(x) -> exists y R(x,y), S(x,y) -> T(x)}: T is the only
     bilateral predicate *)
  let ics =
    [
      Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "R" [ v "x"; v "y" ] ] ();
      Constr.generic ~ante:[ atom "S" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
    ]
  in
  Alcotest.(check (list string)) "bilateral = {T}" [ "T" ]
    (Hcfcheck.bilateral_predicates ics);
  Alcotest.(check bool) "static HCF holds" true (Hcfcheck.static_hcf ics)

let test_theorem5_violation () =
  (* P(x,y) -> P(y,x): P is bilateral and occurs twice *)
  let ics =
    [ Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "P" [ v "y"; v "x" ] ] () ]
  in
  Alcotest.(check bool) "condition fails" false (Hcfcheck.static_hcf ics);
  (* and the ground program is indeed not HCF on a witness instance *)
  let d = Instance.of_list [ ("P", [ vs "a"; vs "b" ]) ] in
  match Proggen.repair_program d ics with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok pg ->
      let g = Asp.Grounder.ground pg.Proggen.program in
      Alcotest.(check bool) "ground program not HCF" false (Asp.Hcf.is_hcf g)

let test_sufficient_not_necessary () =
  (* P(x,a) -> P(x,b): the static condition fails but the ground program is
     HCF (the paper's remark after Theorem 5) *)
  let ics =
    [
      Constr.generic
        ~ante:[ atom "P" [ v "x"; Term.str "a" ] ]
        ~cons:[ atom "P" [ v "x"; Term.str "b" ] ]
        ();
    ]
  in
  Alcotest.(check bool) "static condition fails" false (Hcfcheck.static_hcf ics);
  let d = Instance.of_list [ ("P", [ vs "c"; vs "a" ]) ] in
  match Proggen.repair_program d ics with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok pg ->
      let g = Asp.Grounder.ground pg.Proggen.program in
      Alcotest.(check bool) "ground program HCF anyway" true (Asp.Hcf.is_hcf g)

let test_denials_hcf () =
  (* Corollary 1: denial constraints have no bilateral predicates *)
  let ics =
    [
      Ic.Builder.denial [ atom "P" [ v "x"; v "y" ]; atom "Q" [ v "y" ] ];
      Ic.Builder.denial [ atom "P" [ v "x"; v "x" ] ];
    ]
  in
  Alcotest.(check (list string)) "no bilateral" [] (Hcfcheck.bilateral_predicates ics);
  Alcotest.(check bool) "static HCF" true (Hcfcheck.static_hcf ics)

let test_engine_shift_agreement () =
  (* the shifted and unshifted pipelines agree on an HCF scenario *)
  match Engine.run ~shift:false ex15_d [ ex15_ric ], Engine.run ex15_d [ ex15_ric ] with
  | Ok unshifted, Ok shifted ->
      Alcotest.(check bool) "shifted flag" true shifted.Engine.shifted;
      Alcotest.(check bool) "unshifted flag" false unshifted.Engine.shifted;
      check_repair_set "same repairs" unshifted.Engine.repairs shifted.Engine.repairs
  | Error m, _ | _, Error m -> Alcotest.failf "engine error: %s" m

(* ------------------------------------------------------------------ *)
(* Annotation machinery *)

let test_annot_names_unique () =
  let names = Core.Annot.Names.create () in
  (* relations whose sanitized names collide pairwise *)
  let rels = [ "R"; "r"; "R_a"; "r_a"; "R!a" ] in
  let bases = List.map (Core.Annot.Names.base names) rels in
  let annotated = List.map (Core.Annot.Names.annotated names) rels in
  let all = bases @ annotated in
  Alcotest.(check int) "all generated names distinct"
    (List.length all)
    (List.length (List.sort_uniq compare all));
  (* and resolution is a proper inverse *)
  List.iter2
    (fun rel b ->
      Alcotest.(check (option string)) ("base of " ^ rel) (Some rel)
        (Core.Annot.Names.rel_of_base names b))
    rels bases;
  List.iter2
    (fun rel a ->
      Alcotest.(check (option string)) ("annotated of " ^ rel) (Some rel)
        (Core.Annot.Names.rel_of_annotated names a))
    rels annotated

let test_annot_values () =
  List.iter
    (fun value ->
      Alcotest.(check bool)
        (Fmt.str "roundtrip %a" Value.pp value)
        true
        (Value.equal value (Core.Annot.decode_value (Core.Annot.encode_value value))))
    [ Value.null; vi 42; vi (-7); vs "x"; vs "Ann"; vs "with space" ]

let test_extract_ignores_non_tss () =
  let names = Core.Annot.Names.create () in
  let base = Core.Annot.Names.base names "P" in
  let annotated = Core.Annot.Names.annotated names "P" in
  let model =
    [
      { Asp.Ground.gpred = base; gargs = [ Asp.Syntax.Sym "a" ] };
      { Asp.Ground.gpred = annotated; gargs = [ Asp.Syntax.Sym "a"; Asp.Syntax.Sym "ta" ] };
      { Asp.Ground.gpred = annotated; gargs = [ Asp.Syntax.Sym "b"; Asp.Syntax.Sym "tss" ] };
      { Asp.Ground.gpred = "aux_0"; gargs = [ Asp.Syntax.Sym "a" ] };
    ]
  in
  let db = Core.Extract.database_of_model names model in
  Alcotest.(check int) "only the tss atom" 1 (Instance.cardinal db);
  Alcotest.(check bool) "b extracted" true
    (Instance.mem (Atom.make "P" [ vs "b" ]) db)

let test_engine_empty () =
  match Engine.run Instance.empty [ ex15_ric ] with
  | Error m -> Alcotest.failf "engine: %s" m
  | Ok report ->
      Alcotest.(check int) "empty db: one empty repair" 1
        (List.length report.Engine.repairs);
      Alcotest.(check bool) "the repair is empty" true
        (Instance.is_empty (List.hd report.Engine.repairs))

(* ------------------------------------------------------------------ *)
(* Unsupported shapes *)

let test_general_existential_rejected () =
  let ic =
    Constr.generic
      ~ante:[ atom "A" [ v "x" ]; atom "B" [ v "x" ] ]
      ~cons:[ atom "C" [ v "x"; v "z" ] ]
      ()
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Proggen.repair_program Instance.empty [ ic ]))

let test_phi_offset_rejected () =
  let ic =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y" ]; atom "P" [ v "y"; v "z" ] ]
      ~phi:[ Builtin.cmp Builtin.Gt (Builtin.evar "z") (Builtin.shift (Builtin.evar "x") 15) ]
      ()
  in
  Alcotest.(check bool) "offset rejected" true
    (Result.is_error (Proggen.repair_program Instance.empty [ ic ]))

(* ------------------------------------------------------------------ *)
(* DLV export round-trip through the external-solver machinery *)

let test_dlv_roundtrip () =
  match Proggen.repair_program ex15_d [ ex15_ric ] with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok pg ->
      (* the exported text parses back atom-wise: simulate a DLV answer line
         by printing a model of the internal solver *)
      let g = Asp.Grounder.ground pg.Proggen.program in
      let models = Asp.Solver.stable_models_atoms g in
      Alcotest.(check int) "two stable models" 2 (List.length models);
      let line m =
        "{"
        ^ String.concat ", " (List.map (Fmt.str "%a" Asp.Ground.pp_gatom) m)
        ^ "}"
      in
      let reparsed = Asp.Extsolver.parse_dlv_output (String.concat "\n" (List.map line models)) in
      Alcotest.(check int) "reparsed" 2 (List.length reparsed);
      let dbs = Core.Extract.databases_of_models pg.Proggen.names reparsed in
      check_repair_set "round-tripped repairs" (Enumerate.repairs ex15_d [ ex15_ric ]) dbs

(* ------------------------------------------------------------------ *)
(* Theorem 4 as a property over random instances *)

let value_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'c')) ])

let inst_gen preds size =
  QCheck.Gen.(
    let atom_gen =
      let* p, arity = oneofl preds in
      map (fun values -> Atom.make p values) (list_size (return arity) value_gen)
    in
    map Instance.of_atoms (list_size (int_range 0 size) atom_gen))

let scenario_uic_ric =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
    Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "R" [ v "x"; v "z" ] ] ();
    Constr.not_null ~pred:"P" ~arity:2 ~pos:1 ();
  ]

let prop_theorem4_random =
  QCheck.Test.make ~name:"Theorem 4: program repairs = Rep(D, IC)" ~count:80
    (QCheck.make
       ~print:(Fmt.str "%a" Instance.pp_inline)
       (inst_gen [ ("P", 2); ("T", 1); ("R", 2) ] 5))
    (fun d ->
      let model_based = Enumerate.repairs ~max_states:100_000 d scenario_uic_ric in
      let program_based = engine_repairs d scenario_uic_ric in
      let sort = List.sort Instance.compare in
      List.equal Instance.equal (sort model_based) (sort program_based))

let scenario_fd_fk =
  Ic.Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] ()
  @ [
      Ic.Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ] ~parent:"R"
        ~parent_arity:2 ~parent_cols:[ 1 ] ();
    ]

let prop_theorem4_fd_fk =
  QCheck.Test.make ~name:"Theorem 4 on key+FK scenarios" ~count:60
    (QCheck.make
       ~print:(Fmt.str "%a" Instance.pp_inline)
       (inst_gen [ ("R", 2); ("S", 2) ] 4))
    (fun d ->
      let model_based = Enumerate.repairs ~max_states:100_000 d scenario_fd_fk in
      let program_based = engine_repairs d scenario_fd_fk in
      let sort = List.sort Instance.compare in
      List.equal Instance.equal (sort model_based) (sort program_based))

let prop_program_repairs_consistent =
  QCheck.Test.make ~name:"program repairs satisfy IC" ~count:80
    (QCheck.make
       ~print:(Fmt.str "%a" Instance.pp_inline)
       (inst_gen [ ("P", 2); ("T", 1); ("R", 2) ] 6))
    (fun d ->
      engine_repairs d scenario_uic_ric
      |> List.for_all (fun r -> Semantics.Nullsat.consistent r scenario_uic_ric))

(* Random acyclic constraint sets: predicates are ordered A(1), B(2), C(1),
   D(2) and every constraint points from a lower to a strictly higher
   predicate, so the dependency graph is a DAG and the set RIC-acyclic. *)
let random_ic_gen =
  let preds = [| ("A", 1); ("B", 2); ("C", 1); ("D", 2) |] in
  QCheck.Gen.(
    let* i = int_range 0 2 in
    let* j = int_range (i + 1) 3 in
    let name_i, arity_i = preds.(i) and name_j, arity_j = preds.(j) in
    let ante_vars = List.init arity_i (fun k -> v (Printf.sprintf "x%d" k)) in
    let* kind = if arity_j = 2 then int_range 0 2 else int_range 0 1 in
    match kind with
    | 0 ->
        (* NNC on the first attribute of the antecedent predicate *)
        return (Constr.not_null ~pred:name_i ~arity:arity_i ~pos:1 ())
    | 1 ->
        (* UIC: share the first variable, pad with repeats *)
        let cons_vars = List.init arity_j (fun _ -> v "x0") in
        return
          (Constr.generic
             ~ante:[ atom name_i ante_vars ]
             ~cons:[ atom name_j cons_vars ]
             ())
    | _ ->
        (* RIC: first attribute shared, second existential *)
        return
          (Constr.generic
             ~ante:[ atom name_i ante_vars ]
             ~cons:[ atom name_j [ v "x0"; v "zz" ] ]
             ()))

let random_scenario_gen =
  QCheck.Gen.(
    let value_gen =
      frequency
        [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'b')) ]
    in
    let atom_gen =
      let* p, arity = oneofl [ ("A", 1); ("B", 2); ("C", 1); ("D", 2) ] in
      map (fun values -> Atom.make p values) (list_size (return arity) value_gen)
    in
    let* ics = list_size (int_range 1 3) random_ic_gen in
    let* d = map Instance.of_atoms (list_size (int_range 0 5) atom_gen) in
    return (d, ics))

let prop_theorem4_random_ics =
  QCheck.Test.make ~name:"Theorem 4 on random acyclic IC sets" ~count:120
    (QCheck.make
       ~print:(fun (d, ics) ->
         Fmt.str "%a wrt {%s}" Instance.pp_inline d
           (String.concat "; " (List.map Constr.to_string ics)))
       random_scenario_gen)
    (fun (d, ics) ->
      QCheck.assume (Ic.Builder.non_conflicting ics = Ok ());
      QCheck.assume (Ic.Depgraph.is_ric_acyclic ics);
      let model_based = Enumerate.repairs ~max_states:200_000 d ics in
      let program_based = engine_repairs d ics in
      let sort = List.sort Instance.compare in
      List.equal Instance.equal (sort model_based) (sort program_based))

let prop_optimize_preserves_repairs =
  QCheck.Test.make ~name:"relevance pruning preserves the repairs" ~count:80
    (QCheck.make
       ~print:(fun (d, ics) ->
         Fmt.str "%a wrt {%s}" Instance.pp_inline d
           (String.concat "; " (List.map Constr.to_string ics)))
       random_scenario_gen)
    (fun (d, ics) ->
      QCheck.assume (Ic.Builder.non_conflicting ics = Ok ());
      QCheck.assume (Ic.Depgraph.is_ric_acyclic ics);
      let run optimize =
        match Proggen.repair_program ~optimize d ics with
        | Error _ -> None
        | Ok pg ->
            let g = Asp.Grounder.ground pg.Proggen.program in
            Some
              (List.sort Instance.compare
                 (Core.Extract.databases_of_models pg.Proggen.names
                    (Asp.Solver.stable_models_atoms g)))
      in
      match run false, run true with
      | Some a, Some b -> List.equal Instance.equal a b
      | None, None -> true
      | _ -> false)

let test_fireable () =
  (* S has data; the chain S -> Q -> R makes Q and R fireable; T is dead *)
  let d = Instance.of_list [ ("S", [ vs "a" ]) ] in
  let ics =
    [
      Constr.generic ~ante:[ atom "S" [ v "x" ] ] ~cons:[ atom "Q" [ v "x" ] ] ();
      Constr.generic ~ante:[ atom "Q" [ v "x" ] ] ~cons:[ atom "R" [ v "x" ] ] ();
      Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "U" [ v "x" ] ] ();
    ]
  in
  Alcotest.(check (list string)) "fireable closure" [ "Q"; "R"; "S" ]
    (Proggen.fireable_predicates d ics);
  match Proggen.repair_program ~optimize:true d ics with
  | Error m -> Alcotest.failf "generation: %s" m
  | Ok pg ->
      Alcotest.(check bool) "dead IC pruned" true
        (not
           (String.length (Proggen.to_dlv pg) > 0
           && String.split_on_char '\n' (Proggen.to_dlv pg)
              |> List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "d_t_")))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "theorem4",
        [
          Alcotest.test_case "example 15" `Quick test_theorem4_example15;
          Alcotest.test_case "example 16" `Quick test_theorem4_example16;
          Alcotest.test_case "example 17" `Quick test_theorem4_example17;
          Alcotest.test_case "examples 19/21/23" `Quick test_theorem4_example19;
          Alcotest.test_case "example 18 cyclic" `Quick test_example18_cyclic;
          Alcotest.test_case "cyclic cascade filtered" `Quick test_cyclic_cascade_filtered;
          Alcotest.test_case "consistent database" `Quick test_consistent_database;
          Alcotest.test_case "literal/refined corner case" `Quick test_corner_case;
        ] );
      ( "annot",
        [
          Alcotest.test_case "unique names" `Quick test_annot_names_unique;
          Alcotest.test_case "value roundtrip" `Quick test_annot_values;
          Alcotest.test_case "extract ignores non-tss" `Quick test_extract_ignores_non_tss;
          Alcotest.test_case "empty database" `Quick test_engine_empty;
          Alcotest.test_case "fireable predicates" `Quick test_fireable;
        ] );
      ( "program-structure",
        [
          Alcotest.test_case "example 21" `Quick test_example21_structure;
          Alcotest.test_case "example 22 partitions" `Quick test_example22_partitions;
          Alcotest.test_case "example 23 stable models" `Quick test_example23_stable_models;
          Alcotest.test_case "general existential rejected" `Quick
            test_general_existential_rejected;
          Alcotest.test_case "phi offset rejected" `Quick test_phi_offset_rejected;
          Alcotest.test_case "dlv round-trip" `Quick test_dlv_roundtrip;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "components" `Quick test_decompose_components;
          Alcotest.test_case "product" `Quick test_decompose_product;
          Alcotest.test_case "single component" `Quick test_decompose_single_component;
          Alcotest.test_case "null-flow positions" `Quick test_nullflow_positions;
        ] );
      ( "section6",
        [
          Alcotest.test_case "example 24 bilateral" `Quick test_example24_bilateral;
          Alcotest.test_case "theorem 5 violation" `Quick test_theorem5_violation;
          Alcotest.test_case "sufficient not necessary" `Quick
            test_sufficient_not_necessary;
          Alcotest.test_case "corollary 1 denials" `Quick test_denials_hcf;
          Alcotest.test_case "shift agreement" `Quick test_engine_shift_agreement;
        ] );
      ( "properties",
        qcheck
          [
            prop_theorem4_random;
            prop_theorem4_fd_fk;
            prop_theorem4_cyclic;
            prop_decompose_agrees;
            prop_theorem4_random_ics;
            prop_nullflow_sound;
            prop_optimize_preserves_repairs;
            prop_program_repairs_consistent;
          ] );
    ]
