test/test_decompose.ml: Alcotest Core Fmt Ic List Printf QCheck QCheck_alcotest Query Relational Repair Workload
