test/test_semantics.ml: Alcotest Fmt Ic List QCheck QCheck_alcotest Relational Result Semantics String
