test/test_ic.ml: Alcotest Ic List Option QCheck QCheck_alcotest Relational Result String
