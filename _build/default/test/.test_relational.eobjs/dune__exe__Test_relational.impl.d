test/test_relational.ml: Alcotest Fmt List QCheck QCheck_alcotest Relational Result String
