test/test_asp.ml: Alcotest Array Asp Filename Fmt Fun List Option Out_channel Printf QCheck QCheck_alcotest String Sys Unix
