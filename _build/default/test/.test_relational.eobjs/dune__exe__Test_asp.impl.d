test/test_asp.ml: Alcotest Asp Filename Fmt Fun List Option Out_channel Printf QCheck QCheck_alcotest String Sys Unix
