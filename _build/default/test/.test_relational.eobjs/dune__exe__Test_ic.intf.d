test/test_ic.mli:
