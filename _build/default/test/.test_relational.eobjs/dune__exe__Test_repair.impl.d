test/test_repair.ml: Alcotest Core Fmt Ic List QCheck QCheck_alcotest Relational Repair Result Semantics String
