test/test_workload.ml: Alcotest Core Ic List Relational Repair Semantics Workload
