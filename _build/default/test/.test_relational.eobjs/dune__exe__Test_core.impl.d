test/test_core.ml: Alcotest Array Asp Core Fmt Ic List Printf QCheck QCheck_alcotest Relational Repair Result Semantics String
