test/test_query.ml: Alcotest Core Fmt Ic List QCheck QCheck_alcotest Query Relational Result Semantics String Workload
