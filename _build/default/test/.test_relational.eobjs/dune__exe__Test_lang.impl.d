test/test_lang.ml: Alcotest Array Fmt Ic Lang List Query Relational Repair Result Semantics
