(* Tests for the constraint language: form (1), classification,
   relevant attributes (Definition 2), dependency graphs (Definition 1). *)

module Term = Ic.Term
module Patom = Ic.Patom
module Builtin = Ic.Builtin
module Constr = Ic.Constr
module Classify = Ic.Classify
module Relevant = Ic.Relevant
module Depgraph = Ic.Depgraph
module Builder = Ic.Builder

let v = Term.var
let atom p ts = Patom.make p ts

(* ------------------------------------------------------------------ *)
(* Construction and validation *)

let test_generic_validation () =
  Alcotest.check_raises "empty antecedent"
    (Invalid_argument "Constr.generic: empty antecedent (m >= 1 required)")
    (fun () -> ignore (Constr.generic ~ante:[] ()));
  (* phi variable not in antecedent *)
  Alcotest.(check bool) "phi var escape" true
    (try
       ignore
         (Constr.generic
            ~ante:[ atom "P" [ v "x" ] ]
            ~phi:[ Builtin.cmp Builtin.Gt (Builtin.evar "w") (Builtin.eint 0) ]
            ());
       false
     with Invalid_argument _ -> true);
  (* null constant forbidden *)
  Alcotest.(check bool) "null constant rejected" true
    (try
       ignore
         (Constr.generic ~ante:[ atom "P" [ Term.const Relational.Value.null ] ] ());
       false
     with Invalid_argument _ -> true);
  (* shared existential variables between consequent atoms *)
  Alcotest.(check bool) "shared existential rejected" true
    (try
       ignore
         (Constr.generic
            ~ante:[ atom "P" [ v "x" ] ]
            ~cons:[ atom "Q" [ v "x"; v "z" ]; atom "R" [ v "z" ] ]
            ());
       false
     with Invalid_argument _ -> true)

let test_vars () =
  match
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y" ] ]
      ~cons:[ atom "Q" [ v "x"; v "z" ] ]
      ()
  with
  | Constr.Generic g ->
      Alcotest.(check (list string)) "universal" [ "x"; "y" ] (Constr.universal_vars g);
      Alcotest.(check (list string)) "existential" [ "z" ] (Constr.existential_vars g)
  | Constr.NotNull _ -> Alcotest.fail "expected generic"

let test_not_null_range () =
  Alcotest.check_raises "position out of range"
    (Invalid_argument "Constr.not_null: position 3 out of range 1..2") (fun () ->
      ignore (Constr.not_null ~pred:"P" ~arity:2 ~pos:3 ()))

(* ------------------------------------------------------------------ *)
(* Classification (Example 1 and friends) *)

(* Example 1(a): P(x,y) /\ R(y,z,w) -> S(x) \/ z <> 2 \/ w <= y  (universal) *)
let ex1a =
  Constr.generic
    ~ante:[ atom "P" [ v "x"; v "y" ]; atom "R" [ v "y"; v "z"; v "w" ] ]
    ~cons:[ atom "S" [ v "x" ] ]
    ~phi:
      [
        Builtin.cmp Builtin.Neq (Builtin.evar "z") (Builtin.eint 2);
        Builtin.cmp Builtin.Leq (Builtin.evar "w") (Builtin.evar "y");
      ]
    ()

(* Example 1(b): P(x,y) -> exists z. R(x,y,z)  (referential) *)
let ex1b =
  Constr.generic
    ~ante:[ atom "P" [ v "x"; v "y" ] ]
    ~cons:[ atom "R" [ v "x"; v "y"; v "z" ] ]
    ()

let test_classify_examples () =
  Alcotest.(check bool) "1(a) UIC" true (Classify.is_uic ex1a);
  Alcotest.(check bool) "1(b) RIC" true (Classify.is_ric ex1b);
  Alcotest.(check bool) "NNC" true
    (Classify.is_nnc (Constr.not_null ~pred:"P" ~arity:2 ~pos:1 ()));
  let denial = Builder.denial [ atom "P" [ v "x" ]; atom "Q" [ v "x" ] ] in
  Alcotest.(check bool) "denial is denial" true (Classify.is_denial denial);
  Alcotest.(check bool) "denial is UIC" true (Classify.is_uic denial);
  let chk =
    Builder.check
      (atom "Emp" [ v "i"; v "n"; v "s" ])
      [ Builtin.cmp Builtin.Gt (Builtin.evar "s") (Builtin.eint 100) ]
  in
  Alcotest.(check bool) "check is check" true (Classify.is_check chk)

let test_classify_general_existential () =
  (* two antecedent atoms with an existential consequent: not form (3) *)
  let ic =
    Constr.generic
      ~ante:[ atom "P1" [ v "x"; v "y" ]; atom "P2" [ v "y"; v "u" ] ]
      ~cons:[ atom "Q" [ v "x"; v "u"; v "z" ] ]
      ()
  in
  Alcotest.(check bool) "general existential" true
    (Classify.classify ic = Classify.GeneralExistential);
  Alcotest.(check bool) "not supported by repair program" true
    (Result.is_error (Classify.supported_by_repair_program [ ic ]))

let test_builder_fd_key () =
  (* Example 19 key: R(x,y), R(x,z) -> y = z *)
  let fds = Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] () in
  Alcotest.(check int) "one FD" 1 (List.length fds);
  Alcotest.(check bool) "FD is UIC" true (Classify.is_uic (List.hd fds))

let test_builder_fk () =
  let fk =
    Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ] ~parent:"R"
      ~parent_arity:2 ~parent_cols:[ 1 ] ()
  in
  Alcotest.(check bool) "fk is RIC" true (Classify.is_ric fk);
  let full =
    Builder.inclusion ~from_pred:"S" ~from_arity:1 ~from_cols:[ 1 ] ~to_pred:"T"
      ~to_arity:1 ~to_cols:[ 1 ] ()
  in
  Alcotest.(check bool) "full inclusion is UIC" true (Classify.is_uic full)

(* ------------------------------------------------------------------ *)
(* Relevant attributes (Definition 2) *)

let check_attrs name ic expected =
  let attrs = Relevant.attributes ic in
  Alcotest.(check (list (pair string int))) name expected attrs

(* Example 10: psi : P(x,y,z) -> R(x,y); A = {P[1], P[2], R[1], R[2]} *)
let test_relevant_example10_psi () =
  let psi =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y"; v "z" ] ]
      ~cons:[ atom "R" [ v "x"; v "y" ] ]
      ()
  in
  check_attrs "A(psi)" psi [ ("P", 1); ("P", 2); ("R", 1); ("R", 2) ]

(* Example 10: gamma : P(x,y,z) /\ R(z,w) -> exists v. R(x,v) \/ w > 3;
   A = {P[1], R[1], P[3], R[2]} *)
let test_relevant_example10_gamma () =
  let gamma =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y"; v "z" ]; atom "R" [ v "z"; v "w" ] ]
      ~cons:[ atom "R" [ v "x"; v "vv" ] ]
      ~phi:[ Builtin.cmp Builtin.Gt (Builtin.evar "w") (Builtin.eint 3) ]
      ()
  in
  check_attrs "A(gamma)" gamma [ ("P", 1); ("P", 3); ("R", 1); ("R", 2) ]

(* Example 8: Person(x,y,z,w) /\ Person(z,s,t,u) -> u > w + 15;
   relevant attributes: Person[1], Person[3], Person[4]. *)
let test_relevant_example8 () =
  let ic =
    Constr.generic
      ~ante:
        [
          atom "Person" [ v "x"; v "y"; v "z"; v "w" ];
          atom "Person" [ v "z"; v "s"; v "t"; v "u" ];
        ]
      ~phi:
        [
          Builtin.cmp Builtin.Gt (Builtin.evar "u")
            (Builtin.shift (Builtin.evar "w") 15);
        ]
      ()
  in
  check_attrs "A(Example 8)" ic [ ("Person", 1); ("Person", 3); ("Person", 4) ]

(* Example 13: P(x,y) -> exists z. Q(x,z,z); A = {P[1], Q[1], Q[2], Q[3]} *)
let test_relevant_example13 () =
  let ic =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y" ] ]
      ~cons:[ atom "Q" [ v "x"; v "z"; v "z" ] ]
      ()
  in
  check_attrs "A(Example 13)" ic [ ("P", 1); ("Q", 1); ("Q", 2); ("Q", 3) ]

(* Constants are always relevant. *)
let test_relevant_constants () =
  let ic =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; Term.int 3 ] ]
      ~cons:[ atom "R" [ v "x" ] ]
      ()
  in
  check_attrs "constants relevant" ic [ ("P", 1); ("P", 2); ("R", 1) ]

(* A denial with no joins or constants has no relevant attributes. *)
let test_relevant_empty () =
  let ic = Builder.denial [ atom "P" [ v "x"; v "y" ] ] in
  check_attrs "denial: none" ic [];
  Alcotest.(check (list (pair string (list int)))) "positions keep pred"
    [ ("P", []) ] (Relevant.positions ic)

let test_relevant_universal_vars () =
  match ex1a with
  | Constr.Generic g ->
      Alcotest.(check (list string)) "IsNull candidates"
        [ "x"; "y"; "z"; "w" ]
        (Relevant.relevant_universal_vars g)
  | Constr.NotNull _ -> Alcotest.fail "generic expected"

let test_project_atom () =
  let psi =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y"; v "z" ] ]
      ~cons:[ atom "R" [ v "x"; v "y" ] ]
      ()
  in
  match psi with
  | Constr.Generic g ->
      let p = Relevant.project_atom psi (List.hd g.Constr.ante) in
      Alcotest.(check int) "P^A arity" 2 (Patom.arity p);
      Alcotest.(check (list string)) "P^A vars" [ "x"; "y" ] (Patom.vars p)
  | Constr.NotNull _ -> Alcotest.fail "generic expected"

(* ------------------------------------------------------------------ *)
(* Dependency graph (Definition 1, Examples 2-3, 24) *)

(* Example 2: ic1 : S(x) -> Q(x); ic2 : Q(x) -> R(x); ic3 : Q(x) -> ex y T(x,y) *)
let ic1 = Constr.generic ~ante:[ atom "S" [ v "x" ] ] ~cons:[ atom "Q" [ v "x" ] ] ()
let ic2 = Constr.generic ~ante:[ atom "Q" [ v "x" ] ] ~cons:[ atom "R" [ v "x" ] ] ()

let ic3 =
  Constr.generic ~ante:[ atom "Q" [ v "x" ] ] ~cons:[ atom "T" [ v "x"; v "y" ] ] ()

(* Example 3 addition: ic4 : T(x,y) -> R(y) *)
let ic4 =
  Constr.generic ~ante:[ atom "T" [ v "x"; v "y" ] ] ~cons:[ atom "R" [ v "y" ] ] ()

let test_depgraph_example2 () =
  let g = Depgraph.build [ ic1; ic2; ic3 ] in
  Alcotest.(check (list string)) "vertices" [ "Q"; "R"; "S"; "T" ]
    (Depgraph.vertices g);
  Alcotest.(check bool) "S->Q" true (Depgraph.has_edge g "S" "Q");
  Alcotest.(check bool) "Q->R" true (Depgraph.has_edge g "Q" "R");
  Alcotest.(check bool) "Q->T" true (Depgraph.has_edge g "Q" "T");
  Alcotest.(check bool) "no R->Q" false (Depgraph.has_edge g "R" "Q");
  Alcotest.(check int) "3 edges" 3 (List.length (Depgraph.edges g))

let test_contracted_example3 () =
  (* Without ic4: components {Q,R,S} and {T}; acyclic. *)
  let c = Depgraph.contract [ ic1; ic2; ic3 ] in
  Alcotest.(check int) "two component vertices" 2 (List.length c.Depgraph.cvertices);
  Alcotest.(check bool) "QRS merged" true
    (List.mem [ "Q"; "R"; "S" ] c.Depgraph.cvertices);
  Alcotest.(check bool) "T alone" true (List.mem [ "T" ] c.Depgraph.cvertices);
  Alcotest.(check bool) "RIC-acyclic" true (Depgraph.is_ric_acyclic [ ic1; ic2; ic3 ]);
  (* With ic4: all predicates merge; the RIC edge becomes a self-loop. *)
  let c' = Depgraph.contract [ ic1; ic2; ic3; ic4 ] in
  Alcotest.(check int) "single component" 1 (List.length c'.Depgraph.cvertices);
  Alcotest.(check bool) "not RIC-acyclic" false
    (Depgraph.is_ric_acyclic [ ic1; ic2; ic3; ic4 ]);
  Alcotest.(check bool) "cycle reported" true
    (Option.is_some (Depgraph.ric_cycle [ ic1; ic2; ic3; ic4 ]))

let test_uics_always_acyclic () =
  (* "As expected, a set of UICs is always RIC-acyclic", even a cyclic one. *)
  let u1 = Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x" ] ] () in
  let u2 = Constr.generic ~ante:[ atom "Q" [ v "x" ] ] ~cons:[ atom "P" [ v "x" ] ] () in
  Alcotest.(check bool) "UIC cycle is fine" true (Depgraph.is_ric_acyclic [ u1; u2 ])

let test_ric_cycle_example18 () =
  (* Example 18: P(x,y) -> T(x) and T(x) -> exists y. P(y,x): cyclic. *)
  let uic =
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ()
  in
  let ric =
    Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "P" [ v "y"; v "x" ] ] ()
  in
  Alcotest.(check bool) "cyclic" false (Depgraph.is_ric_acyclic [ uic; ric ])

let test_longer_ric_cycle () =
  (* a three-component RIC cycle: A -RIC-> B -RIC-> C -RIC-> A *)
  let ric p q =
    Constr.generic ~ante:[ atom p [ v "x" ] ] ~cons:[ atom q [ v "x"; v "z" ] ] ()
  in
  let uic p q =
    Constr.generic ~ante:[ atom p [ v "x"; v "y" ] ] ~cons:[ atom q [ v "x" ] ] ()
  in
  (* A(x) -> B2(x,z); B2 collapses to B via UIC; B(x) -> C2(x,z); ... *)
  let ics =
    [
      ric "A" "B2"; uic "B2" "B";
      ric "B" "C2"; uic "C2" "C";
      ric "C" "A2"; uic "A2" "A";
    ]
  in
  (match Depgraph.ric_cycle ics with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      Alcotest.(check bool) "cycle of length >= 3" true (List.length cycle >= 3));
  (* removing one RIC breaks it *)
  let acyclic = List.filter (fun ic -> not (Constr.equal ic (ric "C" "A2"))) ics in
  Alcotest.(check bool) "acyclic without the closing RIC" true
    (Depgraph.is_ric_acyclic acyclic)

let test_nnc_no_edges () =
  let nnc = Constr.not_null ~pred:"P" ~arity:2 ~pos:1 () in
  let g = Depgraph.build [ nnc ] in
  Alcotest.(check int) "no edges" 0 (List.length (Depgraph.edges g));
  Alcotest.(check (list string)) "vertex P" [ "P" ] (Depgraph.vertices g)

(* ------------------------------------------------------------------ *)
(* Non-conflict condition (Section 4 assumption, Example 20) *)

let test_non_conflicting () =
  (* Example 20: P(x) -> exists y. Q(x,y) with NOT NULL on Q[2]. *)
  let ric =
    Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x"; v "y" ] ] ()
  in
  let nnc_bad = Constr.not_null ~pred:"Q" ~arity:2 ~pos:2 () in
  let nnc_ok = Constr.not_null ~pred:"Q" ~arity:2 ~pos:1 () in
  Alcotest.(check bool) "conflict detected" true
    (Result.is_error (Builder.non_conflicting [ ric; nnc_bad ]));
  Alcotest.(check bool) "no conflict on universal position" true
    (Result.is_ok (Builder.non_conflicting [ ric; nnc_ok ]));
  Alcotest.(check bool) "keys+fk+checks always ok (Example 19)" true
    (Result.is_ok
       (Builder.non_conflicting
          (Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] ()
          @ [
              Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ]
                ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
              Constr.not_null ~pred:"R" ~arity:2 ~pos:1 ();
            ])))

(* ------------------------------------------------------------------ *)
(* Builtin evaluation *)

let test_builtin_eval () =
  let lookup = function
    | "x" -> Relational.Value.int 10
    | "y" -> Relational.Value.int 20
    | "n" -> Relational.Value.null
    | "s" -> Relational.Value.str "abc"
    | _ -> raise Not_found
  in
  let t b = Builtin.eval lookup b in
  Alcotest.(check bool) "10 < 20" true
    (t (Builtin.cmp Builtin.Lt (Builtin.evar "x") (Builtin.evar "y")));
  Alcotest.(check bool) "20 > 10+15 false" false
    (t (Builtin.cmp Builtin.Gt (Builtin.evar "y") (Builtin.shift (Builtin.evar "x") 15)));
  Alcotest.(check bool) "null = null (constant semantics)" true
    (t (Builtin.eq (Term.var "n") (Term.var "n")));
  Alcotest.(check bool) "null order comparison false" false
    (t (Builtin.cmp Builtin.Lt (Builtin.evar "n") (Builtin.evar "x")));
  Alcotest.(check bool) "string order" true
    (t (Builtin.cmp Builtin.Lt (Builtin.evar "s") (Builtin.econst (Relational.Value.str "abd"))));
  Alcotest.(check bool) "false atom" false (t Builtin.False);
  (* three-valued *)
  Alcotest.(check bool) "eval3 null -> unknown" true
    (Builtin.eval3 lookup (Builtin.eq (Term.var "n") (Term.var "x")) = None)

let test_builtin_negate () =
  let b = Builtin.cmp Builtin.Lt (Builtin.evar "x") (Builtin.evar "y") in
  let lookup = function
    | "x" -> Relational.Value.int 1
    | "y" -> Relational.Value.int 2
    | _ -> raise Not_found
  in
  Alcotest.(check bool) "negation flips" true
    (Builtin.eval lookup b <> Builtin.eval lookup (Builtin.negate b))

(* ------------------------------------------------------------------ *)
(* Properties *)

let op_gen =
  QCheck.Gen.oneofl
    Builtin.[ Eq; Neq; Lt; Leq; Gt; Geq ]

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Relational.Value.null);
        (3, map Relational.Value.int (int_range (-5) 5));
        (2, map (fun c -> Relational.Value.str (String.make 1 c)) (char_range 'a' 'c'));
      ])

let prop_negate_involutive =
  QCheck.Test.make ~name:"negate involutive on comparisons" ~count:200
    (QCheck.make op_gen) (fun op ->
      let b = Builtin.cmp op (Builtin.evar "x") (Builtin.evar "y") in
      Builtin.equal b (Builtin.negate (Builtin.negate b)))

let prop_negate_complements =
  QCheck.Test.make ~name:"b xor (negate b) under any assignment" ~count:500
    (QCheck.make QCheck.Gen.(triple op_gen value_gen value_gen))
    (fun (op, vx, vy) ->
      let lookup = function "x" -> vx | "y" -> vy | _ -> raise Not_found in
      let b = Builtin.cmp op (Builtin.evar "x") (Builtin.evar "y") in
      (* classical evaluation is two-valued, so negation complements except
         that order comparisons involving null or mixed kinds are false on
         both sides *)
      let pos = Builtin.eval lookup b and neg = Builtin.eval lookup (Builtin.negate b) in
      let same_kind =
        match vx, vy with
        | Relational.Value.Int _, Relational.Value.Int _ -> true
        | Relational.Value.Str _, Relational.Value.Str _ -> true
        | _ -> (match op with Builtin.Eq | Builtin.Neq -> Relational.Value.comparable vx vy | _ -> false)
      in
      if same_kind then pos <> neg else true)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ic"
    [
      ( "constr",
        [
          Alcotest.test_case "validation" `Quick test_generic_validation;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "not_null range" `Quick test_not_null_range;
        ] );
      ( "classify",
        [
          Alcotest.test_case "examples" `Quick test_classify_examples;
          Alcotest.test_case "general existential" `Quick
            test_classify_general_existential;
          Alcotest.test_case "fd/key builder" `Quick test_builder_fd_key;
          Alcotest.test_case "fk builder" `Quick test_builder_fk;
        ] );
      ( "relevant",
        [
          Alcotest.test_case "example 10 psi" `Quick test_relevant_example10_psi;
          Alcotest.test_case "example 10 gamma" `Quick test_relevant_example10_gamma;
          Alcotest.test_case "example 8" `Quick test_relevant_example8;
          Alcotest.test_case "example 13" `Quick test_relevant_example13;
          Alcotest.test_case "constants" `Quick test_relevant_constants;
          Alcotest.test_case "empty" `Quick test_relevant_empty;
          Alcotest.test_case "relevant universal vars" `Quick
            test_relevant_universal_vars;
          Alcotest.test_case "project atom" `Quick test_project_atom;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "example 2" `Quick test_depgraph_example2;
          Alcotest.test_case "example 3 contracted" `Quick test_contracted_example3;
          Alcotest.test_case "UICs acyclic" `Quick test_uics_always_acyclic;
          Alcotest.test_case "example 18 cyclic" `Quick test_ric_cycle_example18;
          Alcotest.test_case "NNC no edges" `Quick test_nnc_no_edges;
          Alcotest.test_case "three-hop RIC cycle" `Quick test_longer_ric_cycle;
        ] );
      ( "non-conflict",
        [ Alcotest.test_case "example 20" `Quick test_non_conflicting ] );
      ( "builtin",
        [
          Alcotest.test_case "eval" `Quick test_builtin_eval;
          Alcotest.test_case "negate" `Quick test_builtin_negate;
        ] );
      ("properties", qcheck [ prop_negate_involutive; prop_negate_complements ]);
    ]
