(* Tests for IC satisfaction semantics: the paper's |=_N (Definitions 4-5,
   Examples 4-13) and the baseline semantics it is compared against. *)

module Value = Relational.Value
module Instance = Relational.Instance
module Term = Ic.Term
module Patom = Ic.Patom
module Builtin = Ic.Builtin
module Constr = Ic.Constr
module Nullsat = Semantics.Nullsat
module Classic = Semantics.Classic
module Liberal = Semantics.Liberal
module Sqlmatch = Semantics.Sqlmatch
module Report = Semantics.Report

let v = Term.var
let atom p ts = Patom.make p ts
let vn = Value.null
let vs = Value.str
let vi = Value.int

let sat = Nullsat.satisfies
let sat_lit = Nullsat.satisfies_literal

(* ------------------------------------------------------------------ *)
(* Example 4: psi1 : P(x,y,z) -> R(y,z), D = {P(a,b,null)} *)

let ex4_d = Instance.of_list [ ("P", [ vs "a"; vs "b"; vn ]) ]

let ex4_psi1 =
  Constr.generic
    ~ante:[ atom "P" [ v "x"; v "y"; v "z" ] ]
    ~cons:[ atom "R" [ v "y"; v "z" ] ]
    ()

let ex4_psi2 =
  Constr.generic
    ~ante:[ atom "P" [ v "x"; v "y"; v "z" ] ]
    ~cons:[ atom "R" [ v "x"; v "y" ] ]
    ()

let test_example4 () =
  (* (a) liberal [10]: consistent, null anywhere in the tuple *)
  Alcotest.(check bool) "liberal psi1" true (Liberal.satisfies ex4_d ex4_psi1);
  Alcotest.(check bool) "liberal psi2" true (Liberal.satisfies ex4_d ex4_psi2);
  (* (b) the paper's semantics agrees with simple match on psi1: null in a
     relevant attribute (z at P[3]) *)
  Alcotest.(check bool) "|=_N psi1" true (sat ex4_d ex4_psi1);
  (* psi2's relevant attributes are P[1], P[2]: no null there, R(a,b) missing *)
  Alcotest.(check bool) "|=_N psi2 violated" false (sat ex4_d ex4_psi2);
  (* classic FO: both violated (null is just a constant, R is empty) *)
  Alcotest.(check bool) "classic psi1" false (Classic.satisfies ex4_d ex4_psi1);
  Alcotest.(check bool) "classic psi2" false (Classic.satisfies ex4_d ex4_psi2);
  (* SQL match semantics on the FK shape of psi1 *)
  (match Sqlmatch.fk_of_ric ex4_psi1 with
  | None -> Alcotest.fail "psi1 should be FK-shaped"
  | Some fk ->
      Alcotest.(check bool) "simple ok" true (Sqlmatch.satisfies Sqlmatch.Simple ex4_d fk);
      Alcotest.(check bool) "partial violated" false
        (Sqlmatch.satisfies Sqlmatch.Partial ex4_d fk);
      Alcotest.(check bool) "full violated" false
        (Sqlmatch.satisfies Sqlmatch.Full ex4_d fk));
  ()

(* ------------------------------------------------------------------ *)
(* Example 5: Course/Exp foreign key with simple match. *)

let ex5_d =
  Instance.of_list
    [
      ("Course", [ vs "CS27"; vi 21; vs "W04" ]);
      ("Course", [ vs "CS18"; vi 34; vn ]);
      ("Course", [ vs "CS50"; vn; vs "W05" ]);
      ("Exp", [ vi 21; vs "CS27"; vi 3 ]);
      ("Exp", [ vi 34; vs "CS18"; vn ]);
      ("Exp", [ vi 45; vs "CS32"; vi 2 ]);
    ]

(* forall x y z (Course(x,y,z) -> exists w Exp(y,x,w)) *)
let ex5_ric =
  Constr.generic
    ~ante:[ atom "Course" [ v "x"; v "y"; v "z" ] ]
    ~cons:[ atom "Exp" [ v "y"; v "x"; v "w" ] ]
    ()

let test_example5 () =
  Alcotest.(check bool) "DB2 accepts (simple match ~ |=_N)" true (sat ex5_d ex5_ric);
  Alcotest.(check bool) "literal Definition 4 agrees" true (sat_lit ex5_d ex5_ric);
  (* inserting Course(CS41, 18, null) is rejected: 18 has no Exp tuple *)
  let d' = Instance.add (Relational.Atom.make "Course" [ vs "CS41"; vi 18; vn ]) ex5_d in
  Alcotest.(check bool) "insertion rejected" false (sat d' ex5_ric);
  (* partial and full match reject the original database *)
  match Sqlmatch.fk_of_ric ex5_ric with
  | None -> Alcotest.fail "FK-shaped RIC expected"
  | Some fk ->
      Alcotest.(check bool) "partial rejects" false
        (Sqlmatch.satisfies Sqlmatch.Partial ex5_d fk);
      Alcotest.(check bool) "full rejects" false
        (Sqlmatch.satisfies Sqlmatch.Full ex5_d fk)

(* ------------------------------------------------------------------ *)
(* Example 6: single-row check constraint Emp(id,name,salary) -> salary > 100 *)

let ex6_ic =
  Constr.generic
    ~ante:[ atom "Emp" [ v "i"; v "n"; v "s" ] ]
    ~phi:[ Builtin.cmp Builtin.Gt (Builtin.evar "s") (Builtin.eint 100) ]
    ()

let test_example6 () =
  let d =
    Instance.of_list
      [ ("Emp", [ vi 32; vn; vi 1000 ]); ("Emp", [ vi 41; vs "Paul"; vn ]) ]
  in
  Alcotest.(check bool) "DB2 accepts" true (sat d ex6_ic);
  (* (32, null, 50) could not be inserted: salary 50 fails the check *)
  let d' = Instance.add (Relational.Atom.make "Emp" [ vi 32; vn; vi 50 ]) d in
  Alcotest.(check bool) "low salary violates" false (sat d' ex6_ic)

(* ------------------------------------------------------------------ *)
(* Example 8: multi-row check on Person. *)

let ex8_ic =
  Constr.generic
    ~ante:
      [
        atom "Person" [ v "x"; v "y"; v "z"; v "w" ];
        atom "Person" [ v "z"; v "s"; v "t"; v "u" ];
      ]
    ~phi:
      [ Builtin.cmp Builtin.Gt (Builtin.evar "u") (Builtin.shift (Builtin.evar "w") 15) ]
    ()

let test_example8 () =
  let d =
    Instance.of_list
      [
        ("Person", [ vs "Lee"; vs "Rod"; vs "Mary"; vi 27 ]);
        ("Person", [ vs "Rod"; vs "Joe"; vs "Tess"; vi 55 ]);
        ("Person", [ vs "Mary"; vs "Adam"; vs "Ann"; vn ]);
      ]
  in
  (* Lee-Mary join: u = null -> unknown -> consistent *)
  Alcotest.(check bool) "consistent (u = null)" true (sat d ex8_ic);
  Alcotest.(check bool) "literal agrees" true (sat_lit d ex8_ic);
  (* making Mary 30 would violate: 30 > 27 + 15 is false *)
  let d' =
    Instance.add
      (Relational.Atom.make "Person" [ vs "Mary"; vs "Adam"; vs "Ann"; vi 30 ])
      (Instance.remove (Relational.Atom.make "Person" [ vs "Mary"; vs "Adam"; vs "Ann"; vn ]) d)
  in
  Alcotest.(check bool) "age 30 violates" false (sat d' ex8_ic)

(* ------------------------------------------------------------------ *)
(* Example 9: Course(x,y,z) -> Employee(y,z); referenced side may hold null. *)

let test_example9 () =
  let d =
    Instance.of_list
      [ ("Course", [ vs "CS18"; vs "W04"; vi 34 ]); ("Employee", [ vs "W04"; vn ]) ]
  in
  let ic =
    Constr.generic
      ~ante:[ atom "Course" [ v "x"; v "y"; v "z" ] ]
      ~cons:[ atom "Employee" [ v "y"; v "z" ] ]
      ()
  in
  (* (W04, 34) provides more information than (W04, null): inconsistent *)
  Alcotest.(check bool) "inconsistent" false (sat d ic);
  Alcotest.(check bool) "literal agrees" false (sat_lit d ic)

(* ------------------------------------------------------------------ *)
(* Example 11 *)

let ex11_a =
  Constr.generic
    ~ante:[ atom "P" [ v "x"; v "y"; v "z" ] ]
    ~cons:[ atom "R" [ v "x"; v "y" ] ]
    ()

let ex11_b =
  Constr.generic
    ~ante:[ atom "T" [ v "x" ] ]
    ~cons:[ atom "P" [ v "x"; v "y"; v "z" ] ]
    ()

let ex11_d =
  Instance.of_list
    [
      ("P", [ vs "a"; vs "d"; vs "e" ]);
      ("P", [ vs "b"; vn; vs "g" ]);
      ("R", [ vs "a"; vs "d" ]);
      ("T", [ vs "b" ]);
    ]

let test_example11 () =
  Alcotest.(check bool) "(a) satisfied" true (sat ex11_d ex11_a);
  Alcotest.(check bool) "(b) satisfied" true (sat ex11_d ex11_b);
  Alcotest.(check bool) "(a) literal" true (sat_lit ex11_d ex11_a);
  Alcotest.(check bool) "(b) literal" true (sat_lit ex11_d ex11_b);
  (* adding P(f,d,null) violates (a): no R(f,d) *)
  let d' = Instance.add (Relational.Atom.make "P" [ vs "f"; vs "d"; vn ]) ex11_d in
  Alcotest.(check bool) "(a) violated after insert" false (sat d' ex11_a);
  Alcotest.(check bool) "(a) literal agrees" false (sat_lit d' ex11_a);
  (* the violation witness names the inserted tuple *)
  match Nullsat.violations d' ex11_a with
  | [ viol ] ->
      Alcotest.(check int) "one witness atom" 1 (List.length viol.Nullsat.matched);
      Alcotest.(check string) "witness tuple" "P(f, d, null)"
        (Relational.Atom.to_string (List.hd viol.Nullsat.matched))
  | l -> Alcotest.failf "expected exactly one violation, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Example 12: null participates in joins as an ordinary constant. *)

let ex12_ic =
  Constr.generic
    ~ante:[ atom "P1" [ v "x"; v "y"; v "w" ]; atom "P2" [ v "y"; v "z" ] ]
    ~cons:[ atom "Q" [ v "x"; v "z"; v "u" ] ]
    ()

let ex12_d =
  Instance.of_list
    [
      ("P1", [ vs "a"; vs "b"; vs "c" ]);
      ("P1", [ vs "d"; vn; vs "c" ]);
      ("P1", [ vs "b"; vs "e"; vn ]);
      ("P1", [ vn; vs "b"; vs "b" ]);
      ("P2", [ vs "b"; vs "a" ]);
      ("P2", [ vs "e"; vs "c" ]);
      ("P2", [ vs "d"; vn ]);
      ("P2", [ vn; vs "b" ]);
      ("Q", [ vs "a"; vs "a"; vs "c" ]);
      ("Q", [ vs "b"; vn; vs "c" ]);
      ("Q", [ vs "b"; vs "c"; vs "d" ]);
      ("Q", [ vn; vs "c"; vs "a" ]);
    ]

let test_example12 () =
  Alcotest.(check bool) "satisfied" true (sat ex12_d ex12_ic);
  Alcotest.(check bool) "literal agrees" true (sat_lit ex12_d ex12_ic);
  (* removing Q(b, null, c) breaks the (b, e, null)-(e, c) join's witness:
     P1(b,e,null), P2(e,c) needs Q(b,c,_): Q(b,c,d) still there -> fine;
     instead remove Q(b,c,d): P1(b,e,null) /\ P2(e,c) -> Q(b,c,u) now needs
     Q(b,c,_): gone -> violation *)
  let d' = Instance.remove (Relational.Atom.make "Q" [ vs "b"; vs "c"; vs "d" ]) ex12_d in
  Alcotest.(check bool) "violated after delete" false (sat d' ex12_ic);
  Alcotest.(check bool) "literal agrees after delete" false (sat_lit d' ex12_ic)

(* ------------------------------------------------------------------ *)
(* Example 13: existential with repeated variable. *)

let ex13_ic =
  Constr.generic
    ~ante:[ atom "P" [ v "x"; v "y" ] ]
    ~cons:[ atom "Q" [ v "x"; v "z"; v "z" ] ]
    ()

let test_example13 () =
  let d =
    Instance.of_list
      [ ("P", [ vs "a"; vs "b" ]); ("P", [ vn; vs "c" ]); ("Q", [ vs "a"; vn; vn ]) ]
  in
  Alcotest.(check bool) "satisfied (z = null witness)" true (sat d ex13_ic);
  Alcotest.(check bool) "literal agrees" true (sat_lit d ex13_ic);
  (* Q(a, null, b) would NOT witness the repeated z *)
  let d' =
    Instance.of_list
      [ ("P", [ vs "a"; vs "b" ]); ("Q", [ vs "a"; vn; vs "b" ]) ]
  in
  Alcotest.(check bool) "repetition enforced" false (sat d' ex13_ic);
  Alcotest.(check bool) "literal agrees on repetition" false (sat_lit d' ex13_ic)

(* ------------------------------------------------------------------ *)
(* NOT NULL-constraints (Definition 5) *)

let test_nnc () =
  let nnc = Constr.not_null ~pred:"R" ~arity:2 ~pos:1 () in
  let ok = Instance.of_list [ ("R", [ vs "a"; vn ]) ] in
  let bad = Instance.of_list [ ("R", [ vn; vs "a" ]) ] in
  Alcotest.(check bool) "null elsewhere fine" true (sat ok nnc);
  Alcotest.(check bool) "null at position violates" false (sat bad nnc);
  Alcotest.(check int) "one violation" 1 (List.length (Nullsat.violations bad nnc))

(* The paper's motivating correction over [10]: {P(b, null)} wrt
   P(x,y) -> R(x) must be inconsistent under |=_N but consistent under
   the liberal semantics. *)
let test_liberal_vs_nullsat () =
  let d = Instance.of_list [ ("P", [ vs "b"; vn ]) ] in
  let ic =
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "R" [ v "x" ] ] ()
  in
  Alcotest.(check bool) "|=_N violated" false (sat d ic);
  Alcotest.(check bool) "liberal satisfied" true (Liberal.satisfies d ic)

(* ------------------------------------------------------------------ *)
(* FK extraction shapes *)

let test_fk_of_ric_shapes () =
  (* multi-column FK *)
  let two_col =
    Constr.generic
      ~ante:[ atom "S" [ v "a"; v "b"; v "c" ] ]
      ~cons:[ atom "R" [ v "b"; v "a"; v "w" ] ]
      ()
  in
  (match Sqlmatch.fk_of_ric two_col with
  | Some fk ->
      Alcotest.(check (list int)) "child cols" [ 1; 2 ] fk.Sqlmatch.child_cols;
      Alcotest.(check (list int)) "parent cols" [ 2; 1 ] fk.Sqlmatch.parent_cols
  | None -> Alcotest.fail "expected FK shape");
  (* two antecedent atoms: not FK-shaped *)
  let join_ic =
    Constr.generic
      ~ante:[ atom "S" [ v "a" ]; atom "T" [ v "a" ] ]
      ~cons:[ atom "R" [ v "a"; v "w" ] ]
      ()
  in
  Alcotest.(check bool) "join antecedent rejected" true
    (Sqlmatch.fk_of_ric join_ic = None);
  (* repeated shared variable: rejected *)
  let repeated =
    Constr.generic
      ~ante:[ atom "S" [ v "a"; v "a" ] ]
      ~cons:[ atom "R" [ v "a"; v "w" ] ]
      ()
  in
  Alcotest.(check bool) "repeated variable rejected" true
    (Sqlmatch.fk_of_ric repeated = None);
  (* NNC rejected *)
  Alcotest.(check bool) "NNC rejected" true
    (Sqlmatch.fk_of_ric (Constr.not_null ~pred:"S" ~arity:1 ~pos:1 ()) = None)

let test_sqlmatch_all_null_partial () =
  let fk = { Sqlmatch.child = "S"; child_cols = [ 1; 2 ]; parent = "R"; parent_cols = [ 1; 2 ] } in
  let d = Instance.of_list [ ("S", [ vn; vn ]) ] in
  Alcotest.(check bool) "all-null child: partial satisfied" true
    (Sqlmatch.satisfies Sqlmatch.Partial d fk);
  Alcotest.(check bool) "all-null child: simple satisfied" true
    (Sqlmatch.satisfies Sqlmatch.Simple d fk);
  Alcotest.(check bool) "all-null child: full violated" false
    (Sqlmatch.satisfies Sqlmatch.Full d fk)

(* ------------------------------------------------------------------ *)
(* Admission checking (the DBMS update behaviour of Examples 5 and 6) *)

let test_admission_example5 () =
  (* inserting Course(CS41, 18, null): professor 18 unknown -> rejected *)
  let bad = Relational.Atom.make "Course" [ vs "CS41"; vi 18; vn ] in
  (match Nullsat.can_insert ex5_d [ ex5_ric ] bad with
  | Ok () -> Alcotest.fail "insertion should be rejected"
  | Error viol ->
      Alcotest.(check bool) "offending tuple named" true
        (List.exists (Relational.Atom.equal bad) viol.Nullsat.matched));
  (* a null professor passes simple match *)
  let ok = Relational.Atom.make "Course" [ vs "CS60"; vn; vs "W06" ] in
  Alcotest.(check bool) "null-professor insertion accepted" true
    (Result.is_ok (Nullsat.can_insert ex5_d [ ex5_ric ] ok));
  (* deleting a referenced Exp tuple orphans its course *)
  let exp21 = Relational.Atom.make "Exp" [ vi 21; vs "CS27"; vi 3 ] in
  Alcotest.(check bool) "delete referenced tuple rejected" true
    (Result.is_error (Nullsat.can_delete ex5_d [ ex5_ric ] exp21));
  (* deleting an unreferenced one is fine *)
  let exp45 = Relational.Atom.make "Exp" [ vi 45; vs "CS32"; vi 2 ] in
  Alcotest.(check bool) "delete unreferenced tuple accepted" true
    (Result.is_ok (Nullsat.can_delete ex5_d [ ex5_ric ] exp45))

let test_admission_example6 () =
  let d =
    Instance.of_list
      [ ("Emp", [ vi 32; vn; vi 1000 ]); ("Emp", [ vi 41; vs "Paul"; vn ]) ]
  in
  Alcotest.(check bool) "low salary rejected" true
    (Result.is_error
       (Nullsat.can_insert d [ ex6_ic ] (Relational.Atom.make "Emp" [ vi 7; vn; vi 50 ])));
  Alcotest.(check bool) "null salary accepted (unknown)" true
    (Result.is_ok
       (Nullsat.can_insert d [ ex6_ic ] (Relational.Atom.make "Emp" [ vi 8; vn; vn ])))

let test_violations_involving () =
  let d' = Instance.add (Relational.Atom.make "P" [ vs "f"; vs "d"; vn ]) ex11_d in
  let target = Relational.Atom.make "P" [ vs "f"; vs "d"; vn ] in
  Alcotest.(check int) "one violation involves the dirty tuple" 1
    (List.length (Nullsat.violations_involving d' [ ex11_a; ex11_b ] target));
  Alcotest.(check int) "clean tuple involves none" 0
    (List.length
       (Nullsat.violations_involving d' [ ex11_a; ex11_b ]
          (Relational.Atom.make "P" [ vs "a"; vs "d"; vs "e" ])))

(* ------------------------------------------------------------------ *)
(* Prepared existence probes agree with plain matching *)

let prop_prepared_exists_agrees =
  let value_gen =
    QCheck.Gen.(
      frequency
        [ (1, return vn); (4, map (fun c -> vs (String.make 1 c)) (char_range 'a' 'c')) ])
  in
  let gen =
    QCheck.Gen.(
      let atom_gen = map (fun values -> Relational.Atom.make "W" values) (list_size (return 2) value_gen) in
      pair
        (map Instance.of_atoms (list_size (int_range 0 8) atom_gen))
        (pair value_gen value_gen))
  in
  QCheck.Test.make ~name:"prepared_exists = exists_match" ~count:200
    (QCheck.make gen)
    (fun (d, (v1, v2)) ->
      let patom = atom "W" [ v "x"; v "y" ] in
      let prepared = Semantics.Assign.prepared_exists d ~bound:[ "x" ] patom in
      List.for_all
        (fun theta ->
          prepared theta = Semantics.Assign.exists_match d theta patom)
        [
          Semantics.Assign.of_list [ ("x", v1) ];
          Semantics.Assign.of_list [ ("x", v1); ("y", v2) ];
          Semantics.Assign.empty;
        ])

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report () =
  let rows = Report.compare_semantics ex4_d [ ex4_psi1 ] in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  let verdict s = List.assoc s row.Report.verdicts in
  Alcotest.(check bool) "|=_N ok" true (verdict Report.NullAware = Some true);
  Alcotest.(check bool) "classic violated" true (verdict Report.ClassicFo = Some false);
  Alcotest.(check bool) "partial violated" true (verdict Report.SqlPartial = Some false);
  let counts = Report.violation_counts ex4_d [ ex4_psi1 ] in
  Alcotest.(check int) "classic count 1" 1 (List.assoc Report.ClassicFo counts);
  Alcotest.(check int) "nullaware count 0" 0 (List.assoc Report.NullAware counts)

(* sql semantics do not apply to non-FK constraints *)
let test_report_na () =
  let rows = Report.compare_semantics ex4_d [ ex6_ic ] in
  let row = List.hd rows in
  Alcotest.(check bool) "sql n/a on check constraint" true
    (List.assoc Report.SqlSimple row.Report.verdicts = None)

(* ------------------------------------------------------------------ *)
(* Properties *)

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.null);
        (2, map Value.int (int_range 0 3));
        (3, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'c'));
      ])

let inst_gen preds =
  QCheck.Gen.(
    let atom_gen =
      let* p, arity = oneofl preds in
      map (fun vs -> Relational.Atom.make p vs) (list_size (return arity) value_gen)
    in
    map Instance.of_atoms (list_size (int_range 0 10) atom_gen))

(* ex13 restated over a predicate of its own so that every pool constraint
   agrees with pool_preds on arities (Definition 4 presupposes a fixed
   schema; projection would otherwise mask arity mismatches). *)
let ex13_pool_ic =
  Constr.generic
    ~ante:[ atom "U" [ v "x"; v "y" ] ]
    ~cons:[ atom "Q" [ v "x"; v "z"; v "z" ] ]
    ()

let constraint_pool =
  [
    ex4_psi1;
    ex4_psi2;
    ex11_a;
    ex11_b;
    ex12_ic;
    ex13_pool_ic;
    Constr.not_null ~pred:"P" ~arity:3 ~pos:1 ();
    ex8_ic;
  ]

let pool_preds =
  [ ("P", 3); ("R", 2); ("T", 1); ("P1", 3); ("P2", 2); ("Q", 3); ("U", 2); ("Person", 4) ]

let prop_direct_equals_literal =
  QCheck.Test.make ~name:"satisfies = satisfies_literal (Definition 4)" ~count:300
    (QCheck.make
       ~print:(fun (d, i) ->
         Fmt.str "%a / %s" Instance.pp_inline d
           (Constr.to_string (List.nth constraint_pool i)))
       QCheck.Gen.(pair (inst_gen pool_preds) (int_range 0 (List.length constraint_pool - 1))))
    (fun (d, i) ->
      let ic = List.nth constraint_pool i in
      sat d ic = sat_lit d ic)

let prop_null_free_classic_agrees =
  QCheck.Test.make ~name:"on null-free instances |=_N = classic FO" ~count:300
    (QCheck.make
       ~print:(fun (d, i) ->
         Fmt.str "%a / %s" Instance.pp_inline d
           (Constr.to_string (List.nth constraint_pool i)))
       QCheck.Gen.(pair (inst_gen pool_preds) (int_range 0 (List.length constraint_pool - 1))))
    (fun (d, i) ->
      let d = Instance.filter (fun a -> not (Relational.Atom.has_null a)) d in
      let ic = List.nth constraint_pool i in
      sat d ic = Classic.satisfies d ic)

let prop_liberal_weakest =
  QCheck.Test.make ~name:"classic |= implies |=_N implies liberal" ~count:300
    (QCheck.make
       ~print:(fun (d, i) ->
         Fmt.str "%a / %s" Instance.pp_inline d
           (Constr.to_string (List.nth constraint_pool i)))
       QCheck.Gen.(pair (inst_gen pool_preds) (int_range 0 (List.length constraint_pool - 1))))
    (fun (d, i) ->
      let ic = List.nth constraint_pool i in
      let c = Classic.satisfies d ic and n = sat d ic and l = Liberal.satisfies d ic in
      ((not c) || n) && ((not n) || l))

let prop_empty_consistent =
  QCheck.Test.make ~name:"the empty instance satisfies every IC" ~count:50
    (QCheck.make QCheck.Gen.(int_range 0 (List.length constraint_pool - 1)))
    (fun i -> sat Instance.empty (List.nth constraint_pool i))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "semantics"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "example 4" `Quick test_example4;
          Alcotest.test_case "example 5" `Quick test_example5;
          Alcotest.test_case "example 6" `Quick test_example6;
          Alcotest.test_case "example 8" `Quick test_example8;
          Alcotest.test_case "example 9" `Quick test_example9;
          Alcotest.test_case "example 11" `Quick test_example11;
          Alcotest.test_case "example 12" `Quick test_example12;
          Alcotest.test_case "example 13" `Quick test_example13;
        ] );
      ( "nnc",
        [
          Alcotest.test_case "definition 5" `Quick test_nnc;
          Alcotest.test_case "liberal vs |=_N" `Quick test_liberal_vs_nullsat;
        ] );
      ( "fk-shapes",
        [
          Alcotest.test_case "fk_of_ric" `Quick test_fk_of_ric_shapes;
          Alcotest.test_case "all-null partial" `Quick test_sqlmatch_all_null_partial;
        ] );
      ( "admission",
        [
          Alcotest.test_case "example 5 updates" `Quick test_admission_example5;
          Alcotest.test_case "example 6 updates" `Quick test_admission_example6;
          Alcotest.test_case "violations involving" `Quick test_violations_involving;
        ] );
      ( "report",
        [
          Alcotest.test_case "comparison" `Quick test_report;
          Alcotest.test_case "n/a entries" `Quick test_report_na;
        ] );
      ( "properties",
        qcheck
          [
            prop_prepared_exists_agrees;
            prop_direct_equals_literal;
            prop_null_free_classic_agrees;
            prop_liberal_weakest;
            prop_empty_consistent;
          ] );
    ]
