  $ cqanull repairs ../../scenarios/example15_course_student.cqa | tail -n 1
  $ cqanull repairs ../../scenarios/example18_cyclic.cqa | tail -n 1
  $ cqanull repairs ../../scenarios/example19_key_fk_nnc.cqa | tail -n 1
  $ cqanull repairs ../../scenarios/example20_conflicting_nnc.cqa --engine enumerate --repd 2>/dev/null | tail -n 1
  $ cqanull graph ../../scenarios/example18_cyclic.cqa | grep RIC-acyclic
