(* Tests for the repair semantics of Section 4 (Definitions 6-7,
   Examples 14-20, Proposition 1, Theorem 1). *)

module Value = Relational.Value
module Atom = Relational.Atom
module Instance = Relational.Instance
module Term = Ic.Term
module Patom = Ic.Patom
module Builtin = Ic.Builtin
module Constr = Ic.Constr
module Order = Repair.Order
module Enumerate = Repair.Enumerate
module Check = Repair.Check
module Repd = Repair.Repd
module Bruteforce = Repair.Bruteforce

let v = Term.var
let atom p ts = Patom.make p ts
let vn = Value.null
let vs = Value.str
let vi = Value.int

let instance = Alcotest.testable Instance.pp_inline Instance.equal

let check_repair_set name expected actual =
  let sort = List.sort Instance.compare in
  Alcotest.(check (list instance)) name (sort expected) (sort actual)

(* ------------------------------------------------------------------ *)
(* The <=_D order (Definition 6) *)

let test_order_example17 () =
  let d = Instance.of_list [ ("P", [ vs "a"; vn ]); ("P", [ vs "b"; vs "c" ]); ("R", [ vs "a"; vs "b" ]) ] in
  let d1 = Instance.add (Atom.make "R" [ vs "b"; vn ]) d in
  let d3 = Instance.add (Atom.make "R" [ vs "b"; vs "d" ]) d in
  Alcotest.(check bool) "null insertion preferred" true (Order.lt ~d d1 d3);
  Alcotest.(check bool) "not conversely" false (Order.leq ~d d3 d1)

let test_order_example16 () =
  let d = Instance.of_list [ ("Q", [ vs "a"; vs "b" ]); ("P", [ vs "a"; vs "c" ]) ] in
  let d1 = Instance.empty in
  let d2 = Instance.of_list [ ("P", [ vs "a"; vs "c" ]); ("Q", [ vs "a"; vn ]) ] in
  Alcotest.(check bool) "D2 not <= D1" false (Order.leq ~d d2 d1);
  Alcotest.(check bool) "D1 not <= D2" false (Order.leq ~d d1 d2)

let test_order_reflexive_on_delta () =
  (* Reflexivity requires the self-coverage disjunct of condition (b); see
     the discussion in Repair.Order. *)
  let d = Instance.of_list [ ("P", [ vs "a" ]) ] in
  let d' = Instance.of_list [ ("P", [ vs "a" ]); ("Q", [ vs "b"; vn ]) ] in
  Alcotest.(check bool) "reflexive" true (Order.leq ~d d' d');
  Alcotest.(check bool) "not strict with itself" false (Order.lt ~d d' d')

let test_order_junk_padding_beaten () =
  (* D ∪ {Q(a,null)} must beat D ∪ {Q(a,null), P(null)}: gratuitous all-null
     insertions are not repairs (cf. Example 15: "only two repairs"). *)
  let d = Instance.of_list [ ("P", [ vs "a" ]) ] in
  let good = Instance.add (Atom.make "Q" [ vs "a"; vn ]) d in
  let junk = Instance.add (Atom.make "P" [ vn ]) good in
  Alcotest.(check bool) "good < junk" true (Order.lt ~d good junk)

(* ------------------------------------------------------------------ *)
(* Example 14/15: Course-Student RIC repaired with null *)

let ex15_d =
  Instance.of_list
    [
      ("Course", [ vi 21; vs "C15" ]);
      ("Course", [ vi 34; vs "C18" ]);
      ("Student", [ vi 21; vs "Ann" ]);
      ("Student", [ vi 45; vs "Paul" ]);
    ]

let ex15_ric =
  Constr.generic
    ~ante:[ atom "Course" [ v "id"; v "code" ] ]
    ~cons:[ atom "Student" [ v "id"; v "name" ] ]
    ()

let test_example15 () =
  let repairs = Enumerate.repairs ex15_d [ ex15_ric ] in
  let repair1 = Instance.remove (Atom.make "Course" [ vi 34; vs "C18" ]) ex15_d in
  let repair2 = Instance.add (Atom.make "Student" [ vi 34; vn ]) ex15_d in
  check_repair_set "exactly the two repairs of Example 15" [ repair1; repair2 ] repairs

(* ------------------------------------------------------------------ *)
(* Example 16 *)

let ex16_d = Instance.of_list [ ("Q", [ vs "a"; vs "b" ]); ("P", [ vs "a"; vs "c" ]) ]

let ex16_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "Q" [ v "x"; v "z" ] ] ();
    Constr.generic
      ~ante:[ atom "Q" [ v "x"; v "y" ] ]
      ~phi:[ Builtin.neq (v "y") (Term.str "b") ]
      ();
  ]

let test_example16 () =
  let repairs = Enumerate.repairs ex16_d ex16_ics in
  let d1 = Instance.empty in
  let d2 = Instance.of_list [ ("P", [ vs "a"; vs "c" ]); ("Q", [ vs "a"; vn ]) ] in
  check_repair_set "two repairs" [ d1; d2 ] repairs

(* ------------------------------------------------------------------ *)
(* Example 17 *)

let test_example17 () =
  let d =
    Instance.of_list
      [ ("P", [ vs "a"; vn ]); ("P", [ vs "b"; vs "c" ]); ("R", [ vs "a"; vs "b" ]) ]
  in
  let ric =
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "R" [ v "x"; v "z" ] ] ()
  in
  let repairs = Enumerate.repairs d [ ric ] in
  let d1 = Instance.add (Atom.make "R" [ vs "b"; vn ]) d in
  let d2 = Instance.of_list [ ("P", [ vs "a"; vn ]); ("R", [ vs "a"; vs "b" ]) ] in
  check_repair_set "two repairs" [ d1; d2 ] repairs;
  (* R(b,d) insertion is consistent but not minimal *)
  let d3 = Instance.add (Atom.make "R" [ vs "b"; vs "d" ]) d in
  Alcotest.(check bool) "D3 consistent" true (Semantics.Nullsat.consistent d3 [ ric ]);
  Alcotest.(check bool) "D3 not a repair" false (Check.is_repair ~d ~ics:[ ric ] d3)

(* ------------------------------------------------------------------ *)
(* Example 18: RIC-cyclic set, still finitely many finite repairs *)

let ex18_d =
  Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("P", [ vn; vs "a" ]); ("T", [ vs "c" ]) ]

let ex18_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
    Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "P" [ v "y"; v "x" ] ] ();
  ]

let test_example18 () =
  let repairs = Enumerate.repairs ex18_d ex18_ics in
  let base = ex18_d in
  let d1 = Instance.add (Atom.make "P" [ vn; vs "c" ]) (Instance.add (Atom.make "T" [ vs "a" ]) base) in
  let d2 =
    Instance.of_list [ ("P", [ vs "a"; vs "b" ]); ("P", [ vn; vs "a" ]); ("T", [ vs "a" ]) ]
  in
  let d3 = Instance.of_list [ ("P", [ vn; vs "a" ]); ("T", [ vs "c" ]); ("P", [ vn; vs "c" ]) ] in
  let d4 = Instance.of_list [ ("P", [ vn; vs "a" ]) ] in
  check_repair_set "the four repairs of Example 18" [ d1; d2; d3; d4 ] repairs;
  (* D5 of the paper satisfies IC but is beaten by D1 *)
  let d5 =
    Instance.add (Atom.make "P" [ vs "c"; vs "c" ]) (Instance.add (Atom.make "T" [ vs "a" ]) base)
  in
  Alcotest.(check bool) "D5 consistent" true (Semantics.Nullsat.consistent d5 ex18_ics);
  Alcotest.(check bool) "D1 < D5" true (Order.lt ~d:ex18_d d1 d5)

(* ------------------------------------------------------------------ *)
(* Example 19: key + foreign key + NNC *)

let ex19_d =
  Instance.of_list
    [
      ("R", [ vs "a"; vs "b" ]);
      ("R", [ vs "a"; vs "c" ]);
      ("S", [ vs "e"; vs "f" ]);
      ("S", [ vn; vs "a" ]);
    ]

let ex19_ics =
  Ic.Builder.key ~pred:"R" ~arity:2 ~key:[ 1 ] ()
  @ [
      Ic.Builder.foreign_key ~child:"S" ~child_arity:2 ~child_cols:[ 2 ] ~parent:"R"
        ~parent_arity:2 ~parent_cols:[ 1 ] ();
      Constr.not_null ~pred:"R" ~arity:2 ~pos:1 ();
    ]

let test_example19 () =
  let repairs = Enumerate.repairs ex19_d ex19_ics in
  let rfnull = Atom.make "R" [ vs "f"; vn ] in
  let d1 =
    Instance.add rfnull (Instance.remove (Atom.make "R" [ vs "a"; vs "c" ]) ex19_d)
  in
  let d2 =
    Instance.add rfnull (Instance.remove (Atom.make "R" [ vs "a"; vs "b" ]) ex19_d)
  in
  let d3 = Instance.of_list [ ("R", [ vs "a"; vs "b" ]); ("S", [ vn; vs "a" ]) ] in
  let d4 = Instance.of_list [ ("R", [ vs "a"; vs "c" ]); ("S", [ vn; vs "a" ]) ] in
  check_repair_set "the four repairs of Example 19" [ d1; d2; d3; d4 ] repairs

(* ------------------------------------------------------------------ *)
(* Example 20: conflicting NNC *)

let ex20_d = Instance.of_list [ ("P", [ vs "a" ]); ("P", [ vs "b" ]); ("Q", [ vs "b"; vs "c" ]) ]

let ex20_ric =
  Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x"; v "y" ] ] ()

let ex20_nnc = Constr.not_null ~pred:"Q" ~arity:2 ~pos:2 ()

let test_example20 () =
  let ics = [ ex20_ric; ex20_nnc ] in
  Alcotest.(check int) "conflicting NNC detected" 1
    (List.length (Repd.conflicting_nncs ics));
  let repairs = Enumerate.repairs ex20_d ics in
  let deletion = Instance.of_list [ ("P", [ vs "b" ]); ("Q", [ vs "b"; vs "c" ]) ] in
  (* arbitrary-constant insertions over the finite universe {a, b, c} *)
  let insertion mu = Instance.add (Atom.make "Q" [ vs "a"; mu ]) ex20_d in
  check_repair_set "deletion + one insertion per universe constant"
    [ deletion; insertion (vs "a"); insertion (vs "b"); insertion (vs "c") ]
    repairs;
  (* Rep_d prefers the deletion repair *)
  let repairs_d = Repd.repairs_d ex20_d ics in
  check_repair_set "Rep_d keeps only the deletion repair" [ deletion ] repairs_d

let test_repd_coincides_when_non_conflicting () =
  let reps = Enumerate.repairs ex18_d ex18_ics in
  let reps_d = Repd.repairs_d ex18_d ex18_ics in
  check_repair_set "Rep = Rep_d without conflicting NNCs" reps reps_d

(* ------------------------------------------------------------------ *)
(* Proposition 1 and consistency of repairs *)

let test_consistent_instance_is_its_own_repair () =
  let d = Instance.of_list [ ("Course", [ vi 21; vs "C15" ]); ("Student", [ vi 21; vs "Ann" ]) ] in
  check_repair_set "consistent D repairs to itself" [ d ]
    (Enumerate.repairs d [ ex15_ric ])

let test_proposition1_domain () =
  let repairs = Enumerate.repairs ex18_d ex18_ics in
  let universe = Repair.Candidates.universe ex18_d ex18_ics in
  List.iter
    (fun r ->
      List.iter
        (fun value ->
          Alcotest.(check bool)
            (Fmt.str "%a within universe" Value.pp value)
            true
            (List.exists (Value.equal value) universe))
        (Instance.active_domain r))
    repairs

let test_repairs_nonempty () =
  (* Proposition 1(b): repairs always exist for non-conflicting sets *)
  List.iter
    (fun (d, ics) ->
      Alcotest.(check bool) "nonempty" true (Enumerate.repairs d ics <> []))
    [ (ex15_d, [ ex15_ric ]); (ex16_d, ex16_ics); (ex18_d, ex18_ics); (ex19_d, ex19_ics) ]

(* ------------------------------------------------------------------ *)
(* Theorem 1: repair checking *)

let test_check () =
  let repair1 = Instance.remove (Atom.make "Course" [ vi 34; vs "C18" ]) ex15_d in
  Alcotest.(check bool) "deletion repair accepted" true
    (Check.is_repair ~d:ex15_d ~ics:[ ex15_ric ] repair1);
  Alcotest.(check bool) "original instance rejected (inconsistent)" false
    (Check.is_repair ~d:ex15_d ~ics:[ ex15_ric ] ex15_d);
  (* over-deletion: consistent but not minimal *)
  let too_much = Instance.of_list [ ("Student", [ vi 21; vs "Ann" ]); ("Student", [ vi 45; vs "Paul" ]) ] in
  Alcotest.(check bool) "over-deletion rejected" false
    (Check.is_repair ~d:ex15_d ~ics:[ ex15_ric ] too_much);
  (* out-of-universe value *)
  let foreign = Instance.add (Atom.make "Student" [ vi 34; vs "Zoe" ]) ex15_d in
  Alcotest.(check bool) "Proposition 1 bound enforced" true
    (Result.is_error (Check.necessary_conditions ~d:ex15_d ~ics:[ ex15_ric ] foreign))

(* ------------------------------------------------------------------ *)
(* Cross-check against the brute-force reference on tiny instances *)

let test_bruteforce_ric () =
  (* P(x) -> exists y. Q(x,y) over the universe {a, null}: 6 base atoms. *)
  let d = Instance.of_list [ ("P", [ vs "a" ]) ] in
  let ics =
    [ Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "Q" [ v "x"; v "y" ] ] () ]
  in
  let brute = Bruteforce.repairs ~schema:[ ("P", 1); ("Q", 2) ] d ics in
  check_repair_set "enumerator = brute force (RIC)" brute (Enumerate.repairs d ics);
  check_repair_set "delete or null-insert"
    [ Instance.empty; Instance.add (Atom.make "Q" [ vs "a"; vn ]) d ]
    brute

let test_bruteforce_tiny_denial () =
  let d = Instance.of_list [ ("P", [ vs "a"; vs "a" ]); ("P", [ vs "a"; vs "b" ]) ] in
  let ics = [ Ic.Builder.denial [ atom "P" [ v "x"; v "x" ] ] ] in
  let brute = Bruteforce.repairs ~schema:[ ("P", 2) ] d ics in
  check_repair_set "denial repair" brute (Enumerate.repairs d ics);
  check_repair_set "exactly one repair"
    [ Instance.of_list [ ("P", [ vs "a"; vs "b" ]) ] ]
    (Enumerate.repairs d ics)

(* Random cross-check on unary schemas small enough for the power-set
   reference: universe at most {a, b, null}, base 6 atoms. *)
let tiny_value_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'b')) ])

let tiny_inst_gen =
  QCheck.Gen.(
    let atom_gen =
      let* p = oneofl [ "P"; "T" ] in
      map (fun value -> Atom.make p [ value ]) tiny_value_gen
    in
    map Instance.of_atoms (list_size (int_range 0 4) atom_gen))

let prop_bruteforce_agrees =
  QCheck.Test.make ~name:"enumerator = brute-force reference" ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) tiny_inst_gen)
    (fun d ->
      let ics =
        [ Constr.generic ~ante:[ atom "P" [ v "x" ] ] ~cons:[ atom "T" [ v "x" ] ] () ]
      in
      let sort = List.sort Instance.compare in
      let brute = Bruteforce.repairs ~schema:[ ("P", 1); ("T", 1) ] d ics in
      let enum = Enumerate.repairs d ics in
      List.equal Instance.equal (sort brute) (sort enum))

(* ------------------------------------------------------------------ *)
(* General existential constraints (Example 1(c) shape): outside the repair
   programs' fragment but handled by the model-theoretic engine *)

let test_general_existential_repairs () =
  (* S(x) -> exists y. (R(x, y) \/ T(x, y, y)) *)
  let ic =
    Constr.generic
      ~ante:[ atom "S" [ v "x" ] ]
      ~cons:[ atom "R" [ v "x"; v "y" ]; atom "T" [ v "x"; v "z"; v "z" ] ]
      ()
  in
  Alcotest.(check bool) "general existential" true
    (Ic.Classify.classify ic = Ic.Classify.GeneralExistential);
  let d = Instance.of_list [ ("S", [ vs "a" ]) ] in
  let repairs = Enumerate.repairs d [ ic ] in
  (* delete S(a), insert R(a, null), or insert T(a, null, null) *)
  check_repair_set "three repairs"
    [
      Instance.empty;
      Instance.add (Atom.make "R" [ vs "a"; vn ]) d;
      Instance.add (Atom.make "T" [ vs "a"; vn; vn ]) d;
    ]
    repairs;
  (* and the repair-program engine declines politely *)
  Alcotest.(check bool) "program engine rejects" true
    (Result.is_error (Core.Engine.repairs d [ ic ]))

let test_candidates_universe () =
  let d = Instance.of_list [ ("P", [ vs "a"; vn ]) ] in
  let ic =
    Constr.generic
      ~ante:[ atom "P" [ v "x"; v "y" ] ]
      ~phi:[ Builtin.neq (v "y") (Term.str "b") ]
      ()
  in
  let universe = Repair.Candidates.universe d [ ic ] in
  (* adom {a, null} ∪ const(IC) {b} ∪ {null} *)
  Alcotest.(check int) "universe size" 3 (List.length universe);
  Alcotest.(check bool) "null present" true
    (List.exists Value.is_null universe);
  Alcotest.(check bool) "constraint constant present" true
    (List.exists (Value.equal (vs "b")) universe);
  Alcotest.(check int) "non-null universe" 2
    (List.length (Repair.Candidates.universe_non_null d [ ic ]))

(* ------------------------------------------------------------------ *)
(* Budgets and exposed internals *)

let test_enumerate_budget () =
  (* a workload with many interacting violations blows a tiny state budget *)
  let d =
    Instance.of_list
      (List.init 6 (fun i -> ("Course", [ vi i; vs "c" ])))
  in
  Alcotest.(check bool) "budget raises" true
    (try
       ignore (Enumerate.repairs ~max_states:3 d [ ex15_ric ]);
       false
     with Enumerate.Budget_exceeded 3 -> true)

let test_consistent_states_superset () =
  let states = Enumerate.consistent_states ex15_d [ ex15_ric ] in
  let repairs = Enumerate.repairs ex15_d [ ex15_ric ] in
  Alcotest.(check bool) "every repair among the consistent states" true
    (List.for_all (fun r -> List.exists (Instance.equal r) states) repairs)

let test_fixes_exposed () =
  let universe = Repair.Candidates.universe ex15_d [ ex15_ric ] in
  match Semantics.Nullsat.check ex15_d [ ex15_ric ] with
  | [ viol ] ->
      let actions = Enumerate.fixes ~universe ~nnc_positions:[] ex15_d viol in
      Alcotest.(check int) "delete + null-insert" 2 (List.length actions);
      Alcotest.(check bool) "one deletion" true
        (List.exists (function Enumerate.Delete _ -> true | _ -> false) actions);
      Alcotest.(check bool) "one insertion" true
        (List.exists
           (function
             | Enumerate.Insert a -> Relational.Atom.has_null a
             | Enumerate.Delete _ -> false)
           actions)
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l)

let test_minimal_among_dedup () =
  let d = Instance.of_list [ ("P", [ vs "a" ]) ] in
  let x = Instance.of_list [ ("P", [ vs "a" ]); ("Q", [ vs "b" ]) ] in
  Alcotest.(check int) "duplicates removed" 1
    (List.length (Order.minimal_among ~d [ x; x; x ]))

(* ------------------------------------------------------------------ *)
(* Properties *)

let value_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Value.null); (4, map (fun c -> Value.str (String.make 1 c)) (char_range 'a' 'c')) ])

let inst_gen =
  QCheck.Gen.(
    let atom_gen =
      let* p, arity = oneofl [ ("P", 2); ("R", 2); ("T", 1) ] in
      map (fun vs -> Atom.make p vs) (list_size (return arity) value_gen)
    in
    map Instance.of_atoms (list_size (int_range 0 5) atom_gen))

let inst_arb = QCheck.make ~print:(Fmt.str "%a" Instance.pp_inline) inst_gen

let small_ics =
  [
    Constr.generic ~ante:[ atom "P" [ v "x"; v "y" ] ] ~cons:[ atom "T" [ v "x" ] ] ();
    Constr.generic ~ante:[ atom "T" [ v "x" ] ] ~cons:[ atom "R" [ v "x"; v "z" ] ] ();
  ]

let prop_check_accepts_exactly_repairs =
  QCheck.Test.make ~name:"is_repair accepts repairs and rejects perturbations"
    ~count:40 inst_arb (fun d ->
      let reps = Enumerate.repairs ~max_states:50_000 d small_ics in
      List.for_all (fun r -> Check.is_repair ~d ~ics:small_ics r) reps
      &&
      (* perturb each repair by dropping one atom: never again a repair of
         the same D unless it happens to equal another repair *)
      List.for_all
        (fun r ->
          List.for_all
            (fun a ->
              let r' = Instance.remove a r in
              (not (Check.is_repair ~d ~ics:small_ics r'))
              || List.exists (Instance.equal r') reps)
            (Instance.atoms r))
        reps)


let prop_repairs_consistent =
  QCheck.Test.make ~name:"every repair satisfies IC" ~count:60 inst_arb (fun d ->
      List.for_all
        (fun r -> Semantics.Nullsat.consistent r small_ics)
        (Enumerate.repairs ~max_states:50_000 d small_ics))

let prop_repairs_minimal =
  QCheck.Test.make ~name:"repairs are pairwise <=_D-incomparable" ~count:40 inst_arb
    (fun d ->
      let reps = Enumerate.repairs ~max_states:50_000 d small_ics in
      List.for_all
        (fun r1 -> List.for_all (fun r2 -> Instance.equal r1 r2 || not (Order.lt ~d r1 r2)) reps)
        reps)

let prop_consistent_fixpoint =
  QCheck.Test.make ~name:"consistent D has itself as only repair" ~count:60 inst_arb
    (fun d ->
      QCheck.assume (Semantics.Nullsat.consistent d small_ics);
      match Enumerate.repairs d small_ics with
      | [ r ] -> Instance.equal r d
      | _ -> false)

let prop_order_transitive =
  QCheck.Test.make ~name:"<=_D transitive on sampled triples" ~count:60
    (QCheck.make QCheck.Gen.(quad inst_gen inst_gen inst_gen inst_gen))
    (fun (d, a, b, c) ->
      if Order.leq ~d a b && Order.leq ~d b c then Order.leq ~d a c else true)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "repair"
    [
      ( "order",
        [
          Alcotest.test_case "example 17 preference" `Quick test_order_example17;
          Alcotest.test_case "example 16 incomparable" `Quick test_order_example16;
          Alcotest.test_case "reflexive" `Quick test_order_reflexive_on_delta;
          Alcotest.test_case "junk padding beaten" `Quick test_order_junk_padding_beaten;
        ] );
      ( "paper-examples",
        [
          Alcotest.test_case "example 15" `Quick test_example15;
          Alcotest.test_case "example 16" `Quick test_example16;
          Alcotest.test_case "example 17" `Quick test_example17;
          Alcotest.test_case "example 18 (cyclic)" `Quick test_example18;
          Alcotest.test_case "example 19" `Quick test_example19;
          Alcotest.test_case "example 20 (conflicting NNC)" `Quick test_example20;
          Alcotest.test_case "Rep_d = Rep when non-conflicting" `Quick
            test_repd_coincides_when_non_conflicting;
        ] );
      ( "proposition-1",
        [
          Alcotest.test_case "consistent fixpoint" `Quick
            test_consistent_instance_is_its_own_repair;
          Alcotest.test_case "domain bound" `Quick test_proposition1_domain;
          Alcotest.test_case "repairs nonempty" `Quick test_repairs_nonempty;
        ] );
      ("check", [ Alcotest.test_case "theorem 1 checker" `Quick test_check ]);
      ( "internals",
        [
          Alcotest.test_case "general existential" `Quick test_general_existential_repairs;
          Alcotest.test_case "candidates universe" `Quick test_candidates_universe;
          Alcotest.test_case "enumerate budget" `Quick test_enumerate_budget;
          Alcotest.test_case "consistent states superset" `Quick
            test_consistent_states_superset;
          Alcotest.test_case "fixes" `Quick test_fixes_exposed;
          Alcotest.test_case "minimal_among dedup" `Quick test_minimal_among_dedup;
        ] );
      ( "bruteforce",
        [
          Alcotest.test_case "RIC cross-check" `Quick test_bruteforce_ric;
          Alcotest.test_case "tiny denial" `Quick test_bruteforce_tiny_denial;
        ]
        @ qcheck [ prop_bruteforce_agrees ] );
      ( "properties",
        qcheck
          [
            prop_repairs_consistent;
            prop_check_accepts_exactly_repairs;
            prop_repairs_minimal;
            prop_consistent_fixpoint;
            prop_order_transitive;
          ] );
    ]
