lib/workload/paperdb.ml: Ic Relational
