lib/workload/gen.ml: Array Ic List Printf Random Relational
