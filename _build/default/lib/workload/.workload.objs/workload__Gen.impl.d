lib/workload/gen.ml: Ic List Printf Random Relational
