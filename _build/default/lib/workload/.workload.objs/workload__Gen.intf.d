lib/workload/gen.mli: Ic Relational
