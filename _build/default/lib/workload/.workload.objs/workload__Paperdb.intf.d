lib/workload/paperdb.mli: Ic Relational
