(** The paper's instances and constraint sets, shared by tests, examples and
    the benchmark harness. *)

type scenario = {
  label : string;
  d : Relational.Instance.t;
  ics : Ic.Constr.t list;
  expected_repairs : int option;
      (** number of repairs the paper reports, when it does *)
}

(** Course/Exp foreign key, simple match. *)
val example5 : scenario

(** Course/Student RIC, two repairs. *)
val example15 : scenario

(** RIC + non-generic check, two repairs. *)
val example16 : scenario

(** RIC over nulls, two repairs. *)
val example17 : scenario

(** RIC-cyclic set, four repairs. *)
val example18 : scenario

(** Key + foreign key + NNC, four repairs. *)
val example19 : scenario

(** Conflicting NNC (the Rep_d scenario). *)
val example20 : scenario

val all : scenario list
