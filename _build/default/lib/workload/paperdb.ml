module Instance = Relational.Instance
module Value = Relational.Value
module Constr = Ic.Constr

let v = Ic.Term.var
let atom p ts = Ic.Patom.make p ts
let vn = Value.null
let vs = Value.str
let vi = Value.int

type scenario = {
  label : string;
  d : Relational.Instance.t;
  ics : Ic.Constr.t list;
  expected_repairs : int option;
}

let example5 =
  {
    label = "example 5 (Course/Exp FK)";
    d =
      Instance.of_list
        [
          ("Course", [ vs "CS27"; vi 21; vs "W04" ]);
          ("Course", [ vs "CS18"; vi 34; vn ]);
          ("Course", [ vs "CS50"; vn; vs "W05" ]);
          ("Exp", [ vi 21; vs "CS27"; vi 3 ]);
          ("Exp", [ vi 34; vs "CS18"; vn ]);
          ("Exp", [ vi 45; vs "CS32"; vi 2 ]);
        ];
    ics =
      [
        Constr.generic ~name:"fk_course_exp"
          ~ante:[ atom "Course" [ v "x"; v "y"; v "z" ] ]
          ~cons:[ atom "Exp" [ v "y"; v "x"; v "w" ] ]
          ();
      ];
    expected_repairs = Some 1 (* consistent: the unique repair is D itself *);
  }

let example15 =
  {
    label = "example 14/15 (Course/Student RIC)";
    d =
      Instance.of_list
        [
          ("Course", [ vi 21; vs "C15" ]);
          ("Course", [ vi 34; vs "C18" ]);
          ("Student", [ vi 21; vs "Ann" ]);
          ("Student", [ vi 45; vs "Paul" ]);
        ];
    ics =
      [
        Constr.generic ~name:"ric_course_student"
          ~ante:[ atom "Course" [ v "id"; v "code" ] ]
          ~cons:[ atom "Student" [ v "id"; v "name" ] ]
          ();
      ];
    expected_repairs = Some 2;
  }

let example16 =
  {
    label = "example 16 (RIC + non-generic check)";
    d = Instance.of_list [ ("Q", [ vs "a"; vs "b" ]); ("P", [ vs "a"; vs "c" ]) ];
    ics =
      [
        Constr.generic ~name:"psi1"
          ~ante:[ atom "P" [ v "x"; v "y" ] ]
          ~cons:[ atom "Q" [ v "x"; v "z" ] ]
          ();
        Constr.generic ~name:"psi2"
          ~ante:[ atom "Q" [ v "x"; v "y" ] ]
          ~phi:[ Ic.Builtin.neq (v "y") (Ic.Term.str "b") ]
          ();
      ];
    expected_repairs = Some 2;
  }

let example17 =
  {
    label = "example 17 (RIC over nulls)";
    d =
      Instance.of_list
        [ ("P", [ vs "a"; vn ]); ("P", [ vs "b"; vs "c" ]); ("R", [ vs "a"; vs "b" ]) ];
    ics =
      [
        Constr.generic ~name:"ric"
          ~ante:[ atom "P" [ v "x"; v "y" ] ]
          ~cons:[ atom "R" [ v "x"; v "z" ] ]
          ();
      ];
    expected_repairs = Some 2;
  }

let example18 =
  {
    label = "example 18 (RIC-cyclic)";
    d =
      Instance.of_list
        [ ("P", [ vs "a"; vs "b" ]); ("P", [ vn; vs "a" ]); ("T", [ vs "c" ]) ];
    ics =
      [
        Constr.generic ~name:"uic"
          ~ante:[ atom "P" [ v "x"; v "y" ] ]
          ~cons:[ atom "T" [ v "x" ] ]
          ();
        Constr.generic ~name:"ric"
          ~ante:[ atom "T" [ v "x" ] ]
          ~cons:[ atom "P" [ v "y"; v "x" ] ]
          ();
      ];
    expected_repairs = Some 4;
  }

let example19 =
  {
    label = "example 19/21/23 (key + FK + NNC)";
    d =
      Instance.of_list
        [
          ("R", [ vs "a"; vs "b" ]);
          ("R", [ vs "a"; vs "c" ]);
          ("S", [ vs "e"; vs "f" ]);
          ("S", [ vn; vs "a" ]);
        ];
    ics =
      Ic.Builder.key ~name_prefix:"key_r" ~pred:"R" ~arity:2 ~key:[ 1 ] ()
      @ [
          Ic.Builder.foreign_key ~name:"fk_s_r" ~child:"S" ~child_arity:2
            ~child_cols:[ 2 ] ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
          Constr.not_null ~name:"nn_r1" ~pred:"R" ~arity:2 ~pos:1 ();
        ];
    expected_repairs = Some 4;
  }

let example20 =
  {
    label = "example 20 (conflicting NNC)";
    d =
      Instance.of_list
        [ ("P", [ vs "a" ]); ("P", [ vs "b" ]); ("Q", [ vs "b"; vs "c" ]) ];
    ics =
      [
        Constr.generic ~name:"ric"
          ~ante:[ atom "P" [ v "x" ] ]
          ~cons:[ atom "Q" [ v "x"; v "y" ] ]
          ();
        Constr.not_null ~name:"nn_q2" ~pred:"Q" ~arity:2 ~pos:2 ();
      ];
    expected_repairs = None (* 1 deletion + one per non-null universe value *);
  }

let all =
  [ example5; example15; example16; example17; example18; example19; example20 ]
