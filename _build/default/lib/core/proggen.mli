(** Generation of the repair programs [Pi(D, IC)] of Definition 9.

    Two variants of the RIC auxiliary rules (rules 3.) are provided:

    - [Literal] follows Definition 9 to the letter: one [aux] rule per
      existential variable [yi], each with the guard [yi != null].  An
      original witness whose existential attributes are {e all} null then
      never derives [aux], so the disjunctive rule fires and also offers the
      spurious deletion of the antecedent tuple: for
      [D = {P(a), Q(a, null)}] and [P(x) -> exists y. Q(x,y)] — a consistent
      database — the literal program has a stable model whose database is
      [{Q(a, null)}], which is not a repair.
    - [Refined] keeps the guard only where it is needed (to stop the
      program's own null-insertions from supporting [aux] and thereby
      destroying their own stability): one [aux] rule over the {e base}
      facts with no [yi != null] guards, plus one over [ta]-inserted atoms
      with all guards.  On instances that do not exercise the corner case
      the two variants compute the same repairs (property-tested).

    [Refined] is the default used by the repair engine; [Literal] is kept
    for fidelity and for exporting exactly the paper's program. *)

type variant = Literal | Refined

type t = {
  program : Asp.Syntax.program;
  names : Annot.Names.t;
  variant : variant;
  db_preds : (string * int) list;  (** database predicates with arities *)
}

val repair_program :
  ?variant:variant ->
  ?optimize:bool ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  (t, string) result
(** Fails when some constraint is existential but not a RIC of form (3)
    (Definition 9 covers UICs, RICs and NNCs), or on arity mismatches
    between the instance and the constraints.

    [optimize] (default false) applies the relevance pruning in the spirit
    of Caniupan & Bertossi [12]: the rules of a constraint whose antecedent
    mentions a predicate that can never hold a tuple — empty in [D] and
    not insertable through any (transitively) fireable constraint — are
    dropped, as are the bookkeeping rules of never-populated predicates.
    The stable models are unchanged (ablation bench E13; equivalence
    property-tested). *)

val fireable_predicates : Relational.Instance.t -> Ic.Constr.t list -> string list
(** Predicates that may hold a tuple in [D] or acquire one through repair
    insertions: the least fixpoint of "non-empty in D" under "consequent of
    a constraint whose antecedent predicates are all fireable". *)

val to_dlv : t -> string
(** The program in DLV concrete syntax (what the paper feeds to DLV [24]). *)

val to_clingo : t -> string

val rule_counts : t -> int * int * int
(** (facts, ic-rules, bookkeeping-rules) — used by bench table E5. *)
