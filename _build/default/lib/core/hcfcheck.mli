(** The static head-cycle-freeness condition of Section 6
    (Definition 11, Theorem 5).

    A predicate is {e bilateral} wrt [IC] when it occurs in the antecedent
    of some constraint and in the consequent of some (possibly the same)
    constraint.  If every constraint has at most one occurrence of a
    bilateral predicate, the repair program [Pi(D, IC)] is HCF for every
    instance [D] and can be shifted to a normal program, lowering CQA from
    Pi^p_2 to coNP (Corollary 1 makes this unconditional for denial
    constraints, which have no bilateral predicates at all).

    The condition is sufficient, not necessary (the paper's
    [P(x,a) -> P(x,b)] example); the engine therefore also consults the
    exact ground-level test {!Asp.Hcf.is_hcf}. *)

val bilateral_predicates : Ic.Constr.t list -> string list

val occurrences_of_bilateral : Ic.Constr.t list -> Ic.Constr.t -> int
(** Occurrences (with multiplicity) of bilateral predicates in one
    constraint. *)

val static_hcf : Ic.Constr.t list -> bool
(** Theorem 5's sufficient condition. *)

val offending : Ic.Constr.t list -> Ic.Constr.t option
(** A constraint with two or more bilateral-predicate occurrences. *)
