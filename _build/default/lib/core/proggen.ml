module S = Asp.Syntax
module Instance = Relational.Instance
module Constr = Ic.Constr
module Patom = Ic.Patom

type variant = Literal | Refined

type t = {
  program : S.program;
  names : Annot.Names.t;
  variant : variant;
  db_preds : (string * int) list;
}

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Predicates and arities *)

let collect_preds d ics =
  let tbl = Hashtbl.create 16 in
  let note pred arity =
    match Hashtbl.find_opt tbl pred with
    | None ->
        Hashtbl.replace tbl pred arity;
        Ok ()
    | Some a when a = arity -> Ok ()
    | Some a ->
        Error
          (Printf.sprintf "predicate %s used with arities %d and %d" pred a arity)
  in
  let* () =
    Instance.fold
      (fun atom acc ->
        let* () = acc in
        note (Relational.Atom.pred atom) (Relational.Atom.arity atom))
      d (Ok ())
  in
  let* () =
    List.fold_left
      (fun acc ic ->
        let* () = acc in
        match ic with
        | Constr.NotNull n -> note n.pred n.arity
        | Constr.Generic g ->
            List.fold_left
              (fun acc a ->
                let* () = acc in
                note (Patom.pred a) (Patom.arity a))
              (Ok ())
              (g.Constr.ante @ g.Constr.cons))
      (Ok ()) ics
  in
  Ok (Hashtbl.fold (fun p a acc -> (p, a) :: acc) tbl [] |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* Term translation *)

let asp_term = function
  | Ic.Term.Var x -> S.Var x
  | Ic.Term.Const v -> S.Const (Annot.encode_value v)

let base_atom names (a : Patom.t) =
  S.atom (Annot.Names.base names (Patom.pred a)) (List.map asp_term (Patom.terms a))

let annotated_atom names (a : Patom.t) ann =
  S.atom
    (Annot.Names.annotated names (Patom.pred a))
    (List.map asp_term (Patom.terms a) @ [ Annot.term_of_annotation ann ])

let not_null_builtin x = S.builtin S.Neq (S.Var x) Annot.null_term

(* negation of the built-in formula phi: phi is a disjunction, so the
   violation condition is the conjunction of the negated disjuncts *)
let negated_phi (g : Constr.generic) =
  let expr_term (e : Ic.Builtin.expr) =
    (* affine offsets are not expressible in the target language; constraints
       with offsets are rejected upstream *)
    match e.Ic.Builtin.base, e.Ic.Builtin.offset with
    | Ic.Term.Var x, 0 -> Ok (S.Var x)
    | Ic.Term.Const v, 0 -> Ok (S.Const (Annot.encode_value v))
    | Ic.Term.Const (Relational.Value.Int i), k -> Ok (S.Const (S.Num (i + k)))
    | _, _ -> Error "built-in offsets (e.g. x + 15) are not supported in repair programs"
  in
  let asp_op = function
    | Ic.Builtin.Eq -> S.Eq
    | Ic.Builtin.Neq -> S.Neq
    | Ic.Builtin.Lt -> S.Lt
    | Ic.Builtin.Leq -> S.Leq
    | Ic.Builtin.Gt -> S.Gt
    | Ic.Builtin.Geq -> S.Geq
  in
  List.fold_left
    (fun acc b ->
      let* acc = acc in
      match Ic.Builtin.negate b with
      | Ic.Builtin.False -> Error "negated false in phi"
      | Ic.Builtin.Cmp (op, l, r) ->
          let* lt = expr_term l in
          let* rt = expr_term r in
          Ok (S.builtin (asp_op op) lt rt :: acc)
      | exception Invalid_argument _ -> Error "cannot negate phi atom")
    (Ok []) g.Constr.phi
  |> Result.map List.rev

(* all subsets of a list (the Q' / Q'' partitions of Definition 9 rule 2) *)
let subsets l =
  List.fold_left (fun acc x -> acc @ List.map (fun s -> x :: s) acc) [ [] ] l

(* ------------------------------------------------------------------ *)
(* Rules 2: universal integrity constraints *)

let uic_rules names (g : Constr.generic) =
  let* phi_neg = negated_phi g in
  let relevant = Ic.Relevant.relevant_universal_vars g in
  let guards = List.map not_null_builtin relevant in
  let head =
    List.map (fun a -> annotated_atom names a Annot.Fa) g.Constr.ante
    @ List.map (fun a -> annotated_atom names a Annot.Ta) g.Constr.cons
  in
  let ante_ts = List.map (fun a -> annotated_atom names a Annot.Ts) g.Constr.ante in
  let rules =
    List.map
      (fun q' ->
        let q'' =
          List.filter (fun a -> not (List.exists (Patom.equal a) q')) g.Constr.cons
        in
        S.rule head
          ~body_pos:(ante_ts @ List.map (fun a -> annotated_atom names a Annot.Fa) q')
          ~body_neg:(List.map (base_atom names) q'')
          ~body_builtin:(guards @ phi_neg))
      (subsets g.Constr.cons)
  in
  Ok rules

(* ------------------------------------------------------------------ *)
(* Rules 3: referential integrity constraints *)

let ric_rules variant names idx (g : Constr.generic) =
  match g.Constr.ante, g.Constr.cons with
  | [ p ], [ q ] ->
      let existentials = Constr.existential_vars g in
      let shared =
        List.filter (fun x -> List.mem x (Patom.vars q)) (Patom.vars p)
      in
      let relevant = Ic.Relevant.relevant_universal_vars g in
      let guards = List.map not_null_builtin relevant in
      let aux_name = Annot.Names.aux names idx in
      let aux_head = S.atom aux_name (List.map (fun x -> S.Var x) shared) in
      let insertion_terms =
        List.map
          (fun t ->
            match t with
            | Ic.Term.Var x when List.mem x existentials -> Annot.null_term
            | t -> asp_term t)
          (Patom.terms q)
      in
      let insertion =
        S.atom
          (Annot.Names.annotated names (Patom.pred q))
          (insertion_terms @ [ Annot.term_of_annotation Annot.Ta ])
      in
      let main =
        S.rule
          [ annotated_atom names p Annot.Fa; insertion ]
          ~body_pos:[ annotated_atom names p Annot.Ts ]
          ~body_neg:[ S.atom aux_name (List.map (fun x -> S.Var x) shared) ]
          ~body_builtin:guards
      in
      let shared_guards = List.map not_null_builtin shared in
      let aux_rules =
        match variant with
        | Literal ->
            (* one rule per existential variable, each guarded yi != null *)
            List.map
              (fun yi ->
                S.rule [ aux_head ]
                  ~body_pos:[ annotated_atom names q Annot.Ts ]
                  ~body_neg:[ annotated_atom names q Annot.Fa ]
                  ~body_builtin:(shared_guards @ [ not_null_builtin yi ]))
              existentials
        | Refined ->
            (* original witnesses count whatever their existential
               attributes hold; inserted witnesses only with non-null ones
               (which stops the head insertion from supporting aux and
               undermining its own stability) *)
            [
              S.rule [ aux_head ]
                ~body_pos:[ base_atom names q ]
                ~body_neg:[ annotated_atom names q Annot.Fa ]
                ~body_builtin:shared_guards;
              S.rule [ aux_head ]
                ~body_pos:[ annotated_atom names q Annot.Ta ]
                ~body_builtin:
                  (shared_guards @ List.map not_null_builtin existentials);
            ]
      in
      Ok (main :: aux_rules)
  | _ -> Error "internal error: RIC with several atoms"

(* ------------------------------------------------------------------ *)

let nnc_rule names (pred, arity, pos) =
  let vars = List.init arity (fun i -> Printf.sprintf "x%d" (i + 1)) in
  let patom ann =
    S.atom
      (Annot.Names.annotated names pred)
      (List.map (fun x -> S.Var x) vars @ [ Annot.term_of_annotation ann ])
  in
  S.rule [ patom Annot.Fa ]
    ~body_pos:[ patom Annot.Ts ]
    ~body_builtin:[ S.builtin S.Eq (S.Var (List.nth vars (pos - 1))) Annot.null_term ]

let bookkeeping_rules names (pred, arity) =
  let vars = List.init arity (fun i -> S.Var (Printf.sprintf "x%d" (i + 1))) in
  let base = S.atom (Annot.Names.base names pred) vars in
  let ann a = S.atom (Annot.Names.annotated names pred) (vars @ [ Annot.term_of_annotation a ]) in
  [
    (* rules 5 *)
    S.rule [ ann Annot.Ts ] ~body_pos:[ base ];
    S.rule [ ann Annot.Ts ] ~body_pos:[ ann Annot.Ta ];
    (* rule 6 *)
    S.rule [ ann Annot.Tss ] ~body_pos:[ ann Annot.Ts ] ~body_neg:[ ann Annot.Fa ];
    (* rule 7 *)
    S.constraint_ ~body_pos:[ ann Annot.Ta; ann Annot.Fa ] ();
  ]

(* Least fixpoint of possibly-populated predicates: a predicate can hold a
   tuple if D gives it one, or if it occurs in the consequent of a
   constraint all of whose antecedent predicates can hold tuples (repair
   insertions only ever instantiate consequents of fired constraints). *)
let fireable_predicates d ics =
  let populated = ref (Instance.preds d) in
  let add p = if not (List.mem p !populated) then populated := p :: !populated in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ic ->
        match ic with
        | Constr.NotNull _ -> ()
        | Constr.Generic g ->
            let ante_ok =
              List.for_all (fun a -> List.mem (Patom.pred a) !populated) g.Constr.ante
            in
            if ante_ok then
              List.iter
                (fun a ->
                  let p = Patom.pred a in
                  if not (List.mem p !populated) then begin
                    add p;
                    changed := true
                  end)
                g.Constr.cons)
      ics
  done;
  List.sort String.compare !populated

let fact_of_atom names atom =
  S.fact
    (S.atom
       (Annot.Names.base names (Relational.Atom.pred atom))
       (Array.to_list
          (Array.map (fun v -> S.Const (Annot.encode_value v)) (Relational.Atom.args atom))))

let repair_program ?(variant = Refined) ?(optimize = false) d ics =
  let* () = Ic.Classify.supported_by_repair_program ics in
  let* db_preds = collect_preds d ics in
  let fireable = if optimize then fireable_predicates d ics else List.map fst db_preds in
  let ic_fireable ic =
    List.for_all (fun p -> List.mem p fireable) (Constr.ante_preds ic)
  in
  let ics = if optimize then List.filter ic_fireable ics else ics in
  let db_preds =
    if optimize then List.filter (fun (p, _) -> List.mem p fireable) db_preds
    else db_preds
  in
  let names = Annot.Names.create () in
  (* intern all predicate names first for deterministic naming *)
  List.iter (fun (p, _) -> ignore (Annot.Names.base names p)) db_preds;
  let facts = List.map (fact_of_atom names) (Instance.atoms d) in
  let* ic_rules =
    List.fold_left
      (fun acc (idx, ic) ->
        let* acc = acc in
        let* rules =
          match ic with
          | Constr.NotNull n -> Ok [ nnc_rule names (n.pred, n.arity, n.pos) ]
          | Constr.Generic g -> (
              match Ic.Classify.classify ic with
              | Ic.Classify.Uic -> uic_rules names g
              | Ic.Classify.Ric -> ric_rules variant names idx g
              | Ic.Classify.Nnc | Ic.Classify.GeneralExistential ->
                  Error "unsupported constraint shape")
        in
        Ok (acc @ rules))
      (Ok [])
      (List.mapi (fun i ic -> (i, ic)) ics)
  in
  let bookkeeping = List.concat_map (bookkeeping_rules names) db_preds in
  Ok { program = facts @ ic_rules @ bookkeeping; names; variant; db_preds }

let to_dlv t = Asp.Printer.program_to_string Asp.Printer.Dlv t.program
let to_clingo t = Asp.Printer.program_to_string Asp.Printer.Clingo t.program

let rule_counts t =
  let facts = List.length (List.filter S.is_fact t.program) in
  let bookkeeping = 4 * List.length t.db_preds in
  let total = List.length t.program in
  (facts, total - facts - bookkeeping, bookkeeping)
