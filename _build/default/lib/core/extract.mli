(** From stable models back to databases (Definition 10):
    [D_M] contains [P(a)] whenever the model holds [P(a)] annotated with
    [t**] (spelled [tss] in the generated programs). *)

val database_of_model :
  Annot.Names.t -> Asp.Ground.gatom list -> Relational.Instance.t

val databases_of_models :
  Annot.Names.t -> Asp.Ground.gatom list list -> Relational.Instance.t list
(** Distinct databases of the models, in deterministic order.  Two stable
    models may induce the same database (e.g. through forced but immaterial
    [ta] annotations); duplicates are removed. *)
