module Instance = Relational.Instance

let database_of_model names model =
  List.fold_left
    (fun acc (ga : Asp.Ground.gatom) ->
      match Annot.Names.rel_of_annotated names ga.Asp.Ground.gpred with
      | None -> acc
      | Some rel -> (
          match List.rev ga.Asp.Ground.gargs with
          | ann :: rev_args when Annot.annotation_of_const ann = Some Annot.Tss ->
              let values = List.rev_map Annot.decode_value rev_args in
              Instance.add (Relational.Atom.make rel values) acc
          | _ -> acc))
    Instance.empty model

let databases_of_models names models =
  let dbs = List.map (database_of_model names) models in
  let uniq =
    List.fold_left
      (fun acc db -> if List.exists (Instance.equal db) acc then acc else db :: acc)
      [] dbs
  in
  List.sort Instance.compare uniq
