(** Annotation constants and the encoding of database symbols into the ASP
    language.

    The repair programs of Definition 9 extend every database predicate with
    one extra attribute holding an annotation constant:

    - [ta]: the tuple is advised to be made true,
    - [fa]: advised to be made false,
    - [t*]: true or becomes true,
    - [t**]: true in the repair.

    Database values map to ASP constants with [null] as the distinguished
    symbol [null] (as in the paper, where the repair program treats [null]
    like any other constant and [IsNull(x)] becomes [x = null]). *)

type annotation = Ta | Fa | Ts | Tss

val const_of_annotation : annotation -> Asp.Syntax.const
val annotation_of_const : Asp.Syntax.const -> annotation option
val term_of_annotation : annotation -> Asp.Syntax.term

val null_const : Asp.Syntax.const
val null_term : Asp.Syntax.term

val encode_value : Relational.Value.t -> Asp.Syntax.const
val decode_value : Asp.Syntax.const -> Relational.Value.t
(** [decode_value (encode_value v) = v] for every value except the string
    ["null"], which is identified with the null constant (the surface
    syntax cannot produce it as a string). *)

(** Bidirectional mapping between database predicate names and the
    ASP-friendly names used in generated programs. *)
module Names : sig
  type t

  val create : unit -> t

  val base : t -> string -> string
  (** ASP predicate holding the database facts of a relation. *)

  val annotated : t -> string -> string
  (** ASP predicate carrying the extra annotation attribute. *)

  val aux : t -> int -> string
  (** The auxiliary predicate of the i-th RIC (rules 3 of Definition 9). *)

  val rel_of_base : t -> string -> string option
  val rel_of_annotated : t -> string -> string option
end
