lib/core/hcfcheck.ml: Ic List Option String
