lib/core/decompose.mli: Ic Relational
