lib/core/engine.mli: Asp Ic Proggen Relational
