lib/core/nullflow.mli: Ic Relational
