lib/core/extract.mli: Annot Asp Relational
