lib/core/proggen.mli: Annot Asp Ic Relational
