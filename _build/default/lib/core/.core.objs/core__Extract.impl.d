lib/core/extract.ml: Annot Asp List Relational
