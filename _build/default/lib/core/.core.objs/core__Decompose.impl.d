lib/core/decompose.ml: Array Engine Hashtbl Ic List Option Printf Relational Repair Result String
