lib/core/proggen.ml: Annot Array Asp Hashtbl Ic List Printf Relational Result String
