lib/core/nullflow.ml: Array Buffer Ic Int List Printf Relational String
