lib/core/annot.mli: Asp Relational
