lib/core/hcfcheck.mli: Ic
