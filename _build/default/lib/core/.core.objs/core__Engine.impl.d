lib/core/engine.ml: Asp Extract Hcfcheck Ic List Proggen Relational Repair Result
