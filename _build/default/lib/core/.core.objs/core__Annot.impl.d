lib/core/annot.ml: Asp Hashtbl Printf Relational String
