(** Static analysis of null propagation through repairs — the paper's
    extended-version item (b): "a more detailed analysis of the way
    null-values are propagated in a controlled manner, in such a way that
    no infinite loops are created".

    Repairs introduce nulls in exactly one way: a RIC
    [P(x) -> exists y Q(x', y)] inserts [Q(x'-values, null, ..., null)],
    putting fresh nulls at the existentially quantified positions of [Q]
    and copying values into the shared positions.  The copied values are
    always non-null (they come from the violating antecedent match, whose
    relevant variables are non-null by Definition 4), and UIC repairs only
    copy antecedent values into consequent positions — all relevant, hence
    non-null on violating matches.  Consequently:

    - the positions that may hold null in {e some} repair are exactly the
      positions holding null in [D] plus the existential positions of the
      RICs (one propagation step, no fixpoint needed — this is the formal
      content of "no infinite loops"); and
    - an inserted null can never re-trigger a constraint (it would have to
      sit at a relevant position of an antecedent match, where Definition 4
      grants the [IsNull] escape).

    The analysis below computes these position sets and is validated
    against actually computed repairs by property tests. *)

type position = string * int  (** predicate and 1-based attribute *)

val insertion_positions : Ic.Constr.t list -> position list
(** Positions where repairs may introduce fresh nulls: the existentially
    quantified positions of the RICs (and general existential constraints),
    sorted. *)

val may_null :
  Relational.Instance.t -> Ic.Constr.t list -> position list
(** Upper bound on the positions holding null in any repair of [D]:
    positions with a null in [D] plus {!insertion_positions}. *)

val null_safe : Ic.Constr.t list -> position list -> bool
(** Are all the given positions guaranteed null-free in every repair of
    every instance that is null-free at those positions?  True iff none of
    them is an insertion position. *)

val report : Relational.Instance.t -> Ic.Constr.t list -> string
(** Human-readable summary (used by the CLI's [graph] subcommand). *)
