let bilateral_predicates ics =
  let antes = List.concat_map Ic.Constr.ante_preds ics in
  let conss = List.concat_map Ic.Constr.cons_preds ics in
  List.filter (fun p -> List.mem p conss) antes
  |> List.sort_uniq String.compare

let occurrences_of_bilateral ics ic =
  let bilateral = bilateral_predicates ics in
  let atoms =
    match ic with
    | Ic.Constr.NotNull n -> [ n.pred ]
    | Ic.Constr.Generic g ->
        List.map Ic.Patom.pred (g.Ic.Constr.ante @ g.Ic.Constr.cons)
  in
  List.length (List.filter (fun p -> List.mem p bilateral) atoms)

let offending ics =
  List.find_opt (fun ic -> occurrences_of_bilateral ics ic >= 2) ics

let static_hcf ics = Option.is_none (offending ics)
