module S = Asp.Syntax
module Value = Relational.Value

type annotation = Ta | Fa | Ts | Tss

let annotation_name = function
  | Ta -> "ta"
  | Fa -> "fa"
  | Ts -> "ts"
  | Tss -> "tss"

let const_of_annotation a = S.Sym (annotation_name a)

let annotation_of_const = function
  | S.Sym "ta" -> Some Ta
  | S.Sym "fa" -> Some Fa
  | S.Sym "ts" -> Some Ts
  | S.Sym "tss" -> Some Tss
  | S.Sym _ | S.Num _ -> None

let term_of_annotation a = S.Const (const_of_annotation a)

let null_const = S.Sym "null"
let null_term = S.Const null_const

let encode_value = function
  | Value.Null -> null_const
  | Value.Int i -> S.Num i
  | Value.Str s -> S.Sym s

let decode_value = function
  | S.Num i -> Value.Int i
  | S.Sym "null" -> Value.Null
  | S.Sym s -> Value.Str s

module Names = struct
  type t = {
    base_of_rel : (string, string) Hashtbl.t;
    rel_of_base_tbl : (string, string) Hashtbl.t;
    rel_of_annotated_tbl : (string, string) Hashtbl.t;
  }

  let create () =
    {
      base_of_rel = Hashtbl.create 16;
      rel_of_base_tbl = Hashtbl.create 16;
      rel_of_annotated_tbl = Hashtbl.create 16;
    }

  let sanitize rel =
    let lowered = String.lowercase_ascii rel in
    let cleaned =
      String.map
        (function ('a' .. 'z' | '0' .. '9' | '_') as c -> c | _ -> '_')
        lowered
    in
    if cleaned = "" || match cleaned.[0] with 'a' .. 'z' -> false | _ -> true
    then "r_" ^ cleaned
    else cleaned

  let base t rel =
    match Hashtbl.find_opt t.base_of_rel rel with
    | Some b -> b
    | None ->
        let candidate = "d_" ^ sanitize rel in
        (* both the base name and its annotated sibling must be fresh wrt
           every name already handed out, in either role *)
        let taken name =
          Hashtbl.mem t.rel_of_base_tbl name
          || Hashtbl.mem t.rel_of_annotated_tbl name
        in
        let rec fresh c i =
          let name = if i = 0 then c else Printf.sprintf "%s_%d" c i in
          if taken name || taken (name ^ "_a") then fresh c (i + 1) else name
        in
        let b = fresh candidate 0 in
        Hashtbl.replace t.base_of_rel rel b;
        Hashtbl.replace t.rel_of_base_tbl b rel;
        Hashtbl.replace t.rel_of_annotated_tbl (b ^ "_a") rel;
        b

  let annotated t rel = base t rel ^ "_a"

  let aux _t i = Printf.sprintf "aux_%d" i

  let rel_of_base t name = Hashtbl.find_opt t.rel_of_base_tbl name
  let rel_of_annotated t name = Hashtbl.find_opt t.rel_of_annotated_tbl name
end
