type report = {
  repairs : Relational.Instance.t list;
  stable_model_count : int;
  ground_atoms : int;
  ground_rules : int;
  hcf : bool;
  static_hcf : bool;
  shifted : bool;
  ric_acyclic : bool;
  solver : Asp.Solver.stats;
}

let run ?variant ?optimize ?(shift = true) ?(solver = `Counter) ?max_decisions d
    ics =
  Result.map
    (fun (pg : Proggen.t) ->
      let ground = Asp.Grounder.ground pg.Proggen.program in
      let hcf = Asp.Hcf.is_hcf ground in
      let shifted = shift && hcf in
      let solvable = if shifted then Asp.Shift.ground ground else ground in
      let stats = Asp.Solver.new_stats () in
      let solve =
        match solver with
        | `Counter -> Asp.Solver.stable_models
        | `Naive -> Asp.Solver.stable_models_naive
      in
      let models =
        solve ?max_decisions ~stats solvable
        |> List.map (Asp.Ground.model_atoms solvable)
      in
      let extracted = Extract.databases_of_models pg.Proggen.names models in
      (* For RIC-acyclic IC the stable models are exactly the repairs
         (Theorem 4) and this filter is a no-op.  For cyclic sets the
         disjunctive rules can support deletion cascades circularly (a
         delete-advice on the RIC side firing the UIC rule and vice versa),
         producing stable models whose databases are consistent but not
         <=_D-minimal; filtering recovers Rep(D, IC). *)
      let repairs = Repair.Order.minimal_among ~d extracted in
      {
        repairs;
        stable_model_count = List.length models;
        ground_atoms = Asp.Ground.atom_count ground;
        ground_rules = Asp.Ground.rule_count ground;
        hcf;
        static_hcf = Hcfcheck.static_hcf ics;
        shifted;
        ric_acyclic = Ic.Depgraph.is_ric_acyclic ics;
        solver = stats;
      })
    (Proggen.repair_program ?variant ?optimize d ics)

let repairs ?variant ?optimize ?max_decisions ?(decompose = false) d ics =
  let monolithic () =
    Result.map (fun r -> r.repairs) (run ?variant ?optimize ?max_decisions d ics)
  in
  if not decompose then monolithic ()
  else
    let plan = Repair.Decompose.plan d ics in
    match plan.Repair.Decompose.components with
    | [] -> Ok [ d ]
    | components ->
        if not plan.Repair.Decompose.product_exact then
          (* per-component minimal repairs cannot be recombined exactly when
             cross-component <=_D covering is possible, and the program gives
             no access to non-minimal consistent states — stay monolithic *)
          monolithic ()
        else
          let rec traverse acc = function
            | [] ->
                Ok
                  (List.of_seq
                     (Repair.Decompose.product plan.Repair.Decompose.core
                        (List.rev acc)))
            | (c : Repair.Decompose.component) :: rest -> (
                let base =
                  Relational.Instance.union c.Repair.Decompose.sub
                    c.Repair.Decompose.support
                in
                match
                  Result.map
                    (fun r -> r.repairs)
                    (run ?variant ?optimize ?max_decisions base
                       c.Repair.Decompose.ics)
                with
                | Ok reps -> traverse (reps :: acc) rest
                | Error _ as e -> e)
          in
          traverse [] components
