type position = string * int

let compare_position (p, i) (q, j) =
  let c = String.compare p q in
  if c <> 0 then c else Int.compare i j

let insertion_positions ics =
  List.concat_map
    (fun ic ->
      match ic with
      | Ic.Constr.NotNull _ -> []
      | Ic.Constr.Generic g ->
          let zs = Ic.Constr.existential_vars g in
          List.concat_map
            (fun atom ->
              List.mapi (fun i t -> (i + 1, t)) (Ic.Patom.terms atom)
              |> List.filter_map (fun (pos, t) ->
                     match t with
                     | Ic.Term.Var x when List.mem x zs ->
                         Some (Ic.Patom.pred atom, pos)
                     | Ic.Term.Var _ | Ic.Term.Const _ -> None))
            g.Ic.Constr.cons)
    ics
  |> List.sort_uniq compare_position

let existing_null_positions d =
  Relational.Instance.fold
    (fun atom acc ->
      let args = Relational.Atom.args atom in
      let rec go i acc =
        if i >= Array.length args then acc
        else
          go (i + 1)
            (if Relational.Value.is_null args.(i) then
               (Relational.Atom.pred atom, i + 1) :: acc
             else acc)
      in
      go 0 acc)
    d []
  |> List.sort_uniq compare_position

let may_null d ics =
  List.sort_uniq compare_position
    (existing_null_positions d @ insertion_positions ics)

let null_safe ics positions =
  let ins = insertion_positions ics in
  List.for_all (fun p -> not (List.mem p ins)) positions

let report d ics =
  let pp_positions ps =
    match ps with
    | [] -> "none"
    | _ ->
        String.concat ", "
          (List.map (fun (p, i) -> Printf.sprintf "%s[%d]" p i) ps)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "null positions in D:            %s\n"
       (pp_positions (existing_null_positions d)));
  Buffer.add_string buf
    (Printf.sprintf "repair-insertion positions:     %s\n"
       (pp_positions (insertion_positions ics)));
  Buffer.add_string buf
    (Printf.sprintf "may hold null in some repair:   %s\n"
       (pp_positions (may_null d ics)));
  Buffer.add_string buf
    "(one propagation step suffices: inserted nulls sit at relevant\n\
     positions only through the IsNull escape, so they never re-trigger a\n\
     constraint — no infinite propagation)";
  Buffer.contents buf
