module Smap = Map.Make (String)

type attr = string * int

let compare_attr (p, i) (q, j) =
  let c = String.compare p q in
  if c <> 0 then c else Int.compare i j

(* Number of occurrences of each variable across the database atoms and the
   built-in formula of a generic constraint. *)
let occurrence_counts (g : Constr.generic) =
  let bump x m =
    Smap.update x (fun n -> Some (1 + Option.value ~default:0 n)) m
  in
  let from_atoms m =
    List.fold_left
      (fun m a ->
        List.fold_left
          (fun m t -> match t with Term.Var x -> bump x m | Term.Const _ -> m)
          m (Patom.terms a))
      m
      (g.Constr.ante @ g.Constr.cons)
  in
  let from_phi m =
    List.fold_left
      (fun m b -> List.fold_left (fun m x -> bump x m) m (Builtin.vars b))
      m g.Constr.phi
  in
  from_phi (from_atoms Smap.empty)

let attributes_generic g =
  let counts = occurrence_counts g in
  let relevant_term t =
    match t with
    | Term.Const _ -> true
    | Term.Var x -> Option.value ~default:0 (Smap.find_opt x counts) >= 2
  in
  let of_atom a =
    let pred = Patom.pred a in
    List.mapi (fun i t -> (i + 1, t)) (Patom.terms a)
    |> List.filter_map (fun (i, t) ->
           if relevant_term t then Some (pred, i) else None)
  in
  List.concat_map of_atom (g.Constr.ante @ g.Constr.cons)
  |> List.sort_uniq compare_attr

let attributes = function
  | Constr.Generic g -> attributes_generic g
  | Constr.NotNull n -> [ (n.pred, n.pos) ]

let positions ic =
  let attrs = attributes ic in
  let m =
    List.fold_left
      (fun m (p, i) ->
        Smap.update p
          (fun l -> Some (i :: Option.value ~default:[] l))
          m)
      Smap.empty attrs
  in
  (* ensure every predicate of the constraint is present, possibly with no
     relevant position (zero-ary projection) *)
  let m =
    List.fold_left
      (fun m p -> if Smap.mem p m then m else Smap.add p [] m)
      m (Constr.preds ic)
  in
  Smap.bindings m |> List.map (fun (p, l) -> (p, List.sort Int.compare l))

let relevant_universal_vars g =
  let counts = occurrence_counts g in
  Constr.universal_vars g
  |> List.filter (fun x -> Option.value ~default:0 (Smap.find_opt x counts) >= 2)

let project_atom ic a =
  let pos = positions ic in
  let keep = Relational.Projection.positions_for pos (Patom.pred a) in
  let terms = Patom.terms a in
  Patom.make (Patom.pred a) (List.map (fun i -> List.nth terms (i - 1)) keep)

let project_instance ic d =
  let restricted = Relational.Projection.restrict_to (Constr.preds ic) d in
  Relational.Projection.project_instance (positions ic) restricted
