(** Dependency graphs over database predicates and RIC-acyclicity
    (Definition 1, Examples 2-3).

    [G(IC)] has the predicates of [IC] as vertices and an edge [(P, Q)]
    whenever some constraint has [P] in its antecedent and [Q] in its
    consequent.  The contracted graph [GC(IC)] merges each connected
    component of [G(IC_U)] (the sub-graph induced by the universal
    constraints) into one vertex and keeps only the edges contributed by
    non-universal constraints (the RICs).  [IC] is RIC-acyclic iff [GC(IC)]
    has no (directed) cycle; self-loops count.

    Connected components of [G(IC_U)] are computed as weakly connected
    components.  On the unilaterally-connected graphs produced by UIC
    chains this coincides with the paper's notion and is otherwise a
    conservative over-approximation (it can only make RIC-acyclicity
    stricter, never accept a cyclic set). *)

type edge = { src : string; dst : string; via : Constr.t }

type t

val build : Constr.t list -> t
(** [G(IC)]. NNCs contribute their predicate as a vertex but no edges. *)

val vertices : t -> string list
val edges : t -> edge list
val has_edge : t -> string -> string -> bool

val uic_components : Constr.t list -> string list list
(** Connected components of [G(IC_U)], each sorted; singleton components for
    predicates that only occur in RICs/NNCs. *)

type contracted = {
  vertex_of : string -> string list;
      (** the merged component a predicate belongs to *)
  cvertices : string list list;
  cedges : (string list * string list * Constr.t) list;
}

val contract : Constr.t list -> contracted
(** [GC(IC)]. *)

val is_ric_acyclic : Constr.t list -> bool

val ric_cycle : Constr.t list -> string list list option
(** A directed cycle of [GC(IC)] as a list of component vertices, if any. *)

val pp : t Fmt.t
val pp_contracted : contracted Fmt.t
