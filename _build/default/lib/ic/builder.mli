(** Smart constructors for the constraint shapes of database practice, and
    the non-conflict condition of Section 4. *)

val denial : ?name:string -> Patom.t list -> Constr.t
(** [P1 /\ ... /\ Pm -> false]. *)

val check : ?name:string -> Patom.t -> Builtin.t list -> Constr.t
(** Single-row check constraint [P(x) -> phi] (Example 6). *)

val functional_dependency :
  ?name:string -> pred:string -> arity:int -> lhs:int list -> rhs:int -> unit ->
  Constr.t
(** [P(x), P(x') -> x_rhs = x'_rhs] whenever they agree on [lhs]; one
    implication with a single equality in the consequent (Section 2). *)

val key :
  ?name_prefix:string -> pred:string -> arity:int -> key:int list -> unit ->
  Constr.t list
(** Primary key as the FDs [key -> i] for every non-key position [i]
    (set semantics; the paper's bag-semantics caveat of Example 7 applies). *)

val inclusion :
  ?name:string ->
  from_pred:string -> from_arity:int -> from_cols:int list ->
  to_pred:string -> to_arity:int -> to_cols:int list -> unit -> Constr.t
(** Inclusion dependency [P[from_cols] ⊆ Q[to_cols]].  Full (a UIC) when
    [to_cols] covers all of [Q], partial (a RIC) otherwise.  Non-referenced
    positions of [Q] become existentially quantified. *)

val foreign_key :
  ?name:string ->
  child:string -> child_arity:int -> child_cols:int list ->
  parent:string -> parent_arity:int -> parent_cols:int list -> unit -> Constr.t
(** A foreign key is the partial inclusion dependency (a RIC) from the
    child columns to the parent columns. *)

val not_nulls : pred:string -> arity:int -> positions:int list -> Constr.t list

val non_conflicting : Constr.t list -> (unit, (Constr.t * Constr.t)) result
(** The Assumption of Section 4: no NOT NULL-constraint on an attribute that
    is existentially quantified in a constraint of form (1).  Returns the
    offending (NNC, IC) pair otherwise (cf. Example 20). *)
