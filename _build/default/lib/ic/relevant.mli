(** Relevant attributes of a constraint (Definition 2).

    [A(psi)] contains [R[i]] whenever a variable occurring at least twice in
    [psi] occurs at position [i] of predicate [R], or a constant occurs
    there.  Occurrences in the built-in formula [phi] count towards the
    occurrence total (so every variable of [phi] is relevant), but only
    positions inside database atoms enter [A(psi)].  Positions are
    per-predicate: a variable joining two occurrences of the same predicate
    contributes all its positions in both (Example 8). *)

type attr = string * int
(** [R[i]]: predicate name and 1-based position. *)

val attributes : Constr.t -> attr list
(** [A(psi)], sorted.  For a NOT NULL-constraint this is the constrained
    position (the constant [null] occurs there, by form (5)). *)

val positions : Constr.t -> Relational.Projection.positions
(** [A(psi)] grouped per predicate, positions ascending — the shape consumed
    by {!Relational.Projection.project_instance} to build [D^{A(psi)}]. *)

val relevant_universal_vars : Constr.generic -> string list
(** [A(psi) ∩ x]: the universally quantified variables standing at relevant
    positions — exactly those receiving an [IsNull] disjunct in the
    transformed formula (4). *)

val project_atom : Constr.t -> Patom.t -> Patom.t
(** [P^{A(psi)}(...)]: keep the atom's terms at the relevant positions of
    its predicate, ascending. *)

val project_instance : Constr.t -> Relational.Instance.t -> Relational.Instance.t
(** [D^{A(psi)}] (Definition 3), restricted to the predicates of [psi]. *)
