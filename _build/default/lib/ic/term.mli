(** Terms of the constraint language: variables and domain constants.

    Domain constants other than [null] may appear in constraints of form
    (1); [null] itself only ever appears through the [IsNull] predicate of
    NOT NULL-constraints (Definition 5). *)

type t = Var of string | Const of Relational.Value.t

val var : string -> t
val const : Relational.Value.t -> t
val int : int -> t
val str : string -> t

val is_var : t -> bool
val is_const : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val vars : t list -> string list
(** Variable names occurring in a term list, in order of first occurrence,
    deduplicated. *)
