lib/ic/term.mli: Fmt Map Relational Set
