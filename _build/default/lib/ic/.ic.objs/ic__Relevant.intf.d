lib/ic/relevant.mli: Constr Patom Relational
