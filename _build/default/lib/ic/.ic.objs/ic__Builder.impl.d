lib/ic/builder.ml: Builtin Constr List Option Patom Printf String Term
