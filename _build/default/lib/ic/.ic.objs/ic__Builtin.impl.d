lib/ic/builtin.ml: Fmt Int List Relational Stdlib String Term
