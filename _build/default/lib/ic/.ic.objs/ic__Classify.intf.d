lib/ic/classify.mli: Constr Fmt
