lib/ic/term.ml: Fmt List Map Relational Set String
