lib/ic/constr.ml: Builtin Fmt Int List Patom Printf Relational Result Set String Term
