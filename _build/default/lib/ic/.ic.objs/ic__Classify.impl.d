lib/ic/classify.ml: Constr Fmt List Printf
