lib/ic/constr.mli: Builtin Fmt Patom Set
