lib/ic/patom.mli: Fmt Relational Term
