lib/ic/relevant.ml: Builtin Constr Int List Map Option Patom Relational String Term
