lib/ic/patom.ml: Fmt List Relational String Term
