lib/ic/builder.mli: Builtin Constr Patom
