lib/ic/depgraph.ml: Classify Constr Fmt Hashtbl List Map Option Set String
