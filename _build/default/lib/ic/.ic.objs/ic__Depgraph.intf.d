lib/ic/depgraph.mli: Constr Fmt
