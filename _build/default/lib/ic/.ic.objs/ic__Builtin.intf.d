lib/ic/builtin.mli: Fmt Relational Term
