(** Predicate atoms [P(t1, ..., tn)] with variables and constants. *)

type t = { pred : string; terms : Term.t list }

val make : string -> Term.t list -> t
val pred : t -> string
val terms : t -> Term.t list
val arity : t -> int

val vars : t -> string list
(** Variables in order of first occurrence, deduplicated. *)

val positions_of : t -> Term.t -> int list
(** 1-based positions at which the term occurs in this atom. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val ground : (string -> Relational.Value.t) -> t -> Relational.Atom.t
(** Instantiate under an assignment of variables to values.
    @raise Not_found via the assignment function for unbound variables. *)
