let denial ?name ante = Constr.generic ?name ~ante ()

let check ?name atom phi = Constr.generic ?name ~ante:[ atom ] ~phi ()

let var_range prefix n = List.init n (fun i -> Term.var (Printf.sprintf "%s%d" prefix (i + 1)))

let functional_dependency ?name ~pred ~arity ~lhs ~rhs () =
  if rhs < 1 || rhs > arity then invalid_arg "Builder.functional_dependency: rhs out of range";
  if List.exists (fun i -> i < 1 || i > arity) lhs then
    invalid_arg "Builder.functional_dependency: lhs position out of range";
  let xs = var_range "x" arity in
  let ys =
    List.mapi
      (fun i _ ->
        let p = i + 1 in
        if List.mem p lhs then List.nth xs i else Term.var (Printf.sprintf "y%d" p))
      xs
  in
  let x_rhs = List.nth xs (rhs - 1) and y_rhs = List.nth ys (rhs - 1) in
  Constr.generic ?name
    ~ante:[ Patom.make pred xs; Patom.make pred ys ]
    ~phi:[ Builtin.eq x_rhs y_rhs ]
    ()

let key ?name_prefix ~pred ~arity ~key () =
  let non_key =
    List.init arity (fun i -> i + 1) |> List.filter (fun p -> not (List.mem p key))
  in
  List.map
    (fun rhs ->
      let name =
        Option.map (fun p -> Printf.sprintf "%s_%d" p rhs) name_prefix
      in
      functional_dependency ?name ~pred ~arity ~lhs:key ~rhs ())
    non_key

let inclusion ?name ~from_pred ~from_arity ~from_cols ~to_pred ~to_arity ~to_cols
    () =
  if List.length from_cols <> List.length to_cols then
    invalid_arg "Builder.inclusion: column lists must have equal length";
  if List.exists (fun i -> i < 1 || i > from_arity) from_cols then
    invalid_arg "Builder.inclusion: from-column out of range";
  if List.exists (fun i -> i < 1 || i > to_arity) to_cols then
    invalid_arg "Builder.inclusion: to-column out of range";
  let xs = var_range "x" from_arity in
  let pairing = List.combine to_cols from_cols in
  let to_terms =
    List.init to_arity (fun j ->
        let p = j + 1 in
        match List.assoc_opt p pairing with
        | Some from_col -> List.nth xs (from_col - 1)
        | None -> Term.var (Printf.sprintf "z%d" p))
  in
  Constr.generic ?name
    ~ante:[ Patom.make from_pred xs ]
    ~cons:[ Patom.make to_pred to_terms ]
    ()

let foreign_key ?name ~child ~child_arity ~child_cols ~parent ~parent_arity
    ~parent_cols () =
  inclusion ?name ~from_pred:child ~from_arity:child_arity ~from_cols:child_cols
    ~to_pred:parent ~to_arity:parent_arity ~to_cols:parent_cols ()

let not_nulls ~pred ~arity ~positions =
  List.map (fun pos -> Constr.not_null ~pred ~arity ~pos ()) positions

let non_conflicting ics =
  let find_conflict nnc =
    match nnc with
    | Constr.Generic _ -> None
    | Constr.NotNull n ->
        let conflicts_with ic =
          match ic with
          | Constr.NotNull _ -> None
          | Constr.Generic g ->
              let zs = Constr.existential_vars g in
              let bad_atom a =
                String.equal (Patom.pred a) n.pred
                &&
                match List.nth_opt (Patom.terms a) (n.pos - 1) with
                | Some (Term.Var x) -> List.mem x zs
                | Some (Term.Const _) | None -> false
              in
              if List.exists bad_atom g.Constr.cons then Some (nnc, ic) else None
        in
        List.find_map conflicts_with ics
  in
  match List.find_map find_conflict ics with
  | Some pair -> Error pair
  | None -> Ok ()
