(** Integrity constraints.

    The paper's general form (1) is

    [forall x. (P1(x1) /\ ... /\ Pm(xm)  ->  exists z. (Q1(y1,z1) \/ ... \/ Qn(yn,zn) \/ phi))]

    with [m >= 1], the [y_j] contained in the universally quantified
    variables [x], the existential variables [z] disjoint from [x] and not
    shared between distinct consequent atoms, and [phi] a disjunction of
    built-in atoms over variables of the antecedent.  NOT NULL-constraints
    (form (5)) carry the [IsNull] predicate and are represented apart. *)

type generic = {
  name : string option;  (** optional label, used in messages and reports *)
  ante : Patom.t list;   (** the conjunction [P1 ... Pm], m >= 1 *)
  cons : Patom.t list;   (** the disjunction [Q1 ... Qn], possibly empty *)
  phi : Builtin.t list;  (** the built-in disjunction [phi], possibly empty *)
}

type t =
  | Generic of generic
  | NotNull of { name : string option; pred : string; arity : int; pos : int }
      (** [forall x. (P(x) /\ IsNull(x_pos) -> false)], 1-based [pos]. *)

val generic :
  ?name:string -> ante:Patom.t list -> ?cons:Patom.t list ->
  ?phi:Builtin.t list -> unit -> t
(** Builds and validates a form-(1) constraint.
    @raise Invalid_argument when validation fails (see {!validate}). *)

val not_null : ?name:string -> pred:string -> arity:int -> pos:int -> unit -> t

val name : t -> string option
val label : t -> string
(** [name] when present, else a stable rendering of the constraint. *)

val preds : t -> string list
(** All database predicates mentioned, deduplicated, sorted. *)

val ante_preds : t -> string list
val cons_preds : t -> string list

val universal_vars : generic -> string list
(** [x]: variables of the antecedent, first-occurrence order. *)

val existential_vars : generic -> string list
(** [z]: consequent variables not occurring in the antecedent. *)

val existential_vars_of_atom : generic -> Patom.t -> string list

val validate : generic -> (unit, string) result
(** Checks the side conditions of form (1): non-empty antecedent; consequent
    constants never [null]; [phi] variables contained in the antecedent;
    existential variables not shared between distinct consequent atoms;
    consequent atoms' universal variables contained in the antecedent. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
