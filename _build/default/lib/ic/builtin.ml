module Value = Relational.Value

type expr = { base : Term.t; offset : int }

let evar x = { base = Term.var x; offset = 0 }
let econst v = { base = Term.const v; offset = 0 }
let eint i = { base = Term.int i; offset = 0 }
let shift e k = { e with offset = e.offset + k }

type op = Eq | Neq | Lt | Leq | Gt | Geq

type t = Cmp of op * expr * expr | False

let cmp op a b = Cmp (op, a, b)
let eq a b = Cmp (Eq, { base = a; offset = 0 }, { base = b; offset = 0 })
let neq a b = Cmp (Neq, { base = a; offset = 0 }, { base = b; offset = 0 })

let negate_op = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Geq
  | Leq -> Gt
  | Gt -> Leq
  | Geq -> Lt

let negate = function
  | Cmp (op, a, b) -> Cmp (negate_op op, a, b)
  | False -> invalid_arg "Builtin.negate: cannot negate false"

let expr_vars e = match e.base with Term.Var x -> [ x ] | Term.Const _ -> []

let vars = function
  | False -> []
  | Cmp (_, a, b) ->
      let vs = expr_vars a @ expr_vars b in
      List.sort_uniq String.compare vs

(* Evaluate an expression to a value; integer offsets fold into integer
   bases, a non-zero offset on a non-integer base yields [None]. *)
let eval_expr lookup e =
  let v = match e.base with Term.Const v -> v | Term.Var x -> lookup x in
  if e.offset = 0 then Some v
  else match v with Value.Int i -> Some (Value.Int (i + e.offset)) | _ -> None

let compare_values op u v =
  match op with
  | Eq -> Value.equal u v
  | Neq -> not (Value.equal u v)
  | Lt | Leq | Gt | Geq -> (
      let ordered c =
        match op with
        | Lt -> c < 0
        | Leq -> c <= 0
        | Gt -> c > 0
        | Geq -> c >= 0
        | Eq | Neq -> assert false
      in
      match u, v with
      | Value.Int i, Value.Int j -> ordered (Int.compare i j)
      | Value.Str s, Value.Str t -> ordered (String.compare s t)
      | _ -> false)

let eval lookup = function
  | False -> false
  | Cmp (op, a, b) -> (
      match eval_expr lookup a, eval_expr lookup b with
      | Some u, Some v -> compare_values op u v
      | _ -> false)

let eval3 lookup = function
  | False -> Some false
  | Cmp (op, a, b) -> (
      match eval_expr lookup a, eval_expr lookup b with
      | Some u, Some v ->
          if Value.is_null u || Value.is_null v then None
          else Some (compare_values op u v)
      | _ -> None)

let compare_expr a b =
  let c = Term.compare a.base b.base in
  if c <> 0 then c else Int.compare a.offset b.offset

let compare x y =
  match x, y with
  | False, False -> 0
  | False, Cmp _ -> -1
  | Cmp _, False -> 1
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c
      else
        let c = compare_expr a1 a2 in
        if c <> 0 then c else compare_expr b1 b2

let equal x y = compare x y = 0

let op_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let pp_op ppf op = Fmt.string ppf (op_string op)

let pp_expr ppf e =
  if e.offset = 0 then Term.pp ppf e.base
  else if e.offset > 0 then Fmt.pf ppf "%a + %d" Term.pp e.base e.offset
  else Fmt.pf ppf "%a - %d" Term.pp e.base (-e.offset)

let pp ppf = function
  | False -> Fmt.string ppf "false"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (op_string op) pp_expr b
