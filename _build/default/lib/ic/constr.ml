type generic = {
  name : string option;
  ante : Patom.t list;
  cons : Patom.t list;
  phi : Builtin.t list;
}

type t =
  | Generic of generic
  | NotNull of { name : string option; pred : string; arity : int; pos : int }

let universal_vars g = Term.vars (List.concat_map Patom.terms g.ante)

let existential_vars g =
  let xs = universal_vars g in
  Term.vars (List.concat_map Patom.terms g.cons)
  |> List.filter (fun v -> not (List.mem v xs))

let existential_vars_of_atom g a =
  let xs = universal_vars g in
  Patom.vars a |> List.filter (fun v -> not (List.mem v xs))

let validate g =
  let ( let* ) = Result.bind in
  let* () = if g.ante = [] then Error "empty antecedent (m >= 1 required)" else Ok () in
  let xs = universal_vars g in
  let* () =
    let bad =
      List.concat_map Builtin.vars g.phi
      |> List.filter (fun v -> not (List.mem v xs))
    in
    match bad with
    | [] -> Ok ()
    | v :: _ ->
        Error (Printf.sprintf "variable %s of phi does not appear in the antecedent" v)
  in
  let* () =
    let null_const t =
      match t with Term.Const v -> Relational.Value.is_null v | Term.Var _ -> false
    in
    if
      List.exists
        (fun a -> List.exists null_const (Patom.terms a))
        (g.ante @ g.cons)
    then Error "the constant null may not appear in a constraint of form (1)"
    else Ok ()
  in
  (* z_i and z_j disjoint for distinct consequent atoms *)
  let rec disjoint_exists seen = function
    | [] -> Ok ()
    | a :: rest ->
        let zs = existential_vars_of_atom g a in
        let shared = List.filter (fun v -> List.mem v seen) zs in
        if shared <> [] then
          Error
            (Printf.sprintf
               "existential variable %s shared between consequent atoms"
               (List.hd shared))
        else disjoint_exists (zs @ seen) rest
  in
  disjoint_exists [] g.cons

let generic ?name ~ante ?(cons = []) ?(phi = []) () =
  (* [false] is the unit of the disjunction phi: drop it. *)
  let phi = List.filter (fun b -> not (Builtin.equal b Builtin.False)) phi in
  let g = { name; ante; cons; phi } in
  match validate g with
  | Ok () -> Generic g
  | Error msg -> invalid_arg ("Constr.generic: " ^ msg)

let not_null ?name ~pred ~arity ~pos () =
  if pos < 1 || pos > arity then
    invalid_arg
      (Printf.sprintf "Constr.not_null: position %d out of range 1..%d" pos arity);
  NotNull { name; pred; arity; pos }

let name = function Generic g -> g.name | NotNull n -> n.name

let dedup_sorted l = List.sort_uniq String.compare l

let ante_preds = function
  | Generic g -> dedup_sorted (List.map Patom.pred g.ante)
  | NotNull n -> [ n.pred ]

let cons_preds = function
  | Generic g -> dedup_sorted (List.map Patom.pred g.cons)
  | NotNull _ -> []

let preds ic = dedup_sorted (ante_preds ic @ cons_preds ic)

let pp_generic ppf g =
  let pp_cons ppf () =
    let parts =
      List.map (fun a -> Fmt.str "%a" Patom.pp a) g.cons
      @ List.map (fun b -> Fmt.str "%a" Builtin.pp b) g.phi
    in
    match parts with
    | [] -> Fmt.string ppf "false"
    | _ -> Fmt.string ppf (String.concat " \\/ " parts)
  in
  let zs = existential_vars g in
  Fmt.pf ppf "%a -> %a%a"
    Fmt.(list ~sep:(any " /\\ ") Patom.pp)
    g.ante
    Fmt.(
      fun ppf -> function
        | [] -> ()
        | zs -> pf ppf "exists %a. " (list ~sep:sp string) zs)
    zs pp_cons ()

let pp ppf = function
  | Generic g -> pp_generic ppf g
  | NotNull n ->
      let var i = Printf.sprintf "x%d" i in
      let terms = List.init n.arity (fun i -> var (i + 1)) in
      Fmt.pf ppf "%s(%a) /\\ IsNull(%s) -> false" n.pred
        Fmt.(list ~sep:(any ", ") string)
        terms (var n.pos)

let to_string ic = Fmt.str "%a" pp ic

let label ic = match name ic with Some n -> n | None -> to_string ic

let compare a b =
  match a, b with
  | Generic g1, Generic g2 ->
      let c = List.compare Patom.compare g1.ante g2.ante in
      if c <> 0 then c
      else
        let c = List.compare Patom.compare g1.cons g2.cons in
        if c <> 0 then c else List.compare Builtin.compare g1.phi g2.phi
  | Generic _, NotNull _ -> -1
  | NotNull _, Generic _ -> 1
  | NotNull n1, NotNull n2 ->
      let c = String.compare n1.pred n2.pred in
      if c <> 0 then c
      else
        let c = Int.compare n1.arity n2.arity in
        if c <> 0 then c else Int.compare n1.pos n2.pos

let equal a b = compare a b = 0

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
