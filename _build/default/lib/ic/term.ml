type t = Var of string | Const of Relational.Value.t

let var x = Var x
let const v = Const v
let int i = Const (Relational.Value.int i)
let str s = Const (Relational.Value.str s)

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const u, Const v -> Relational.Value.equal u v
  | (Var _ | Const _), _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1
  | Const u, Const v -> Relational.Value.compare u v

let pp ppf = function
  | Var x -> Fmt.string ppf x
  | Const v -> Relational.Value.pp ppf v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let vars terms =
  let rec go seen acc = function
    | [] -> List.rev acc
    | Const _ :: rest -> go seen acc rest
    | Var x :: rest ->
        if List.mem x seen then go seen acc rest
        else go (x :: seen) (x :: acc) rest
  in
  go [] [] terms
