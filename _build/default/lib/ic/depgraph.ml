module Sset = Set.Make (String)
module Smap = Map.Make (String)

type edge = { src : string; dst : string; via : Constr.t }

type t = { verts : Sset.t; edge_list : edge list }

let edges_of_constraint ic =
  match ic with
  | Constr.NotNull _ -> []
  | Constr.Generic _ ->
      List.concat_map
        (fun src ->
          List.map (fun dst -> { src; dst; via = ic }) (Constr.cons_preds ic))
        (Constr.ante_preds ic)

let build ics =
  let verts =
    List.fold_left
      (fun s ic -> List.fold_left (fun s p -> Sset.add p s) s (Constr.preds ic))
      Sset.empty ics
  in
  let edge_list = List.concat_map edges_of_constraint ics in
  { verts; edge_list }

let vertices g = Sset.elements g.verts
let edges g = g.edge_list

let has_edge g src dst =
  List.exists (fun e -> String.equal e.src src && String.equal e.dst dst) g.edge_list

(* Union-find over predicate names. *)
let weak_components verts edge_list =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p when String.equal p x -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  Sset.iter (fun v -> Hashtbl.replace parent v v) verts;
  List.iter (fun e -> union e.src e.dst) edge_list;
  let groups = Hashtbl.create 16 in
  Sset.iter
    (fun v ->
      let r = find v in
      Hashtbl.replace groups r (v :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    verts;
  Hashtbl.fold (fun _ vs acc -> List.sort String.compare vs :: acc) groups []
  |> List.sort (List.compare String.compare)

let uic_components ics =
  let uics = List.filter Classify.is_uic ics in
  let all = build ics in
  let g_u = build uics in
  (* every predicate of IC is a vertex; predicates untouched by UICs form
     singleton components *)
  weak_components all.verts g_u.edge_list

type contracted = {
  vertex_of : string -> string list;
  cvertices : string list list;
  cedges : (string list * string list * Constr.t) list;
}

let contract ics =
  let comps = uic_components ics in
  let lookup = Hashtbl.create 16 in
  List.iter (fun c -> List.iter (fun p -> Hashtbl.replace lookup p c) c) comps;
  let vertex_of p =
    match Hashtbl.find_opt lookup p with Some c -> c | None -> [ p ]
  in
  let non_uic = List.filter (fun ic -> not (Classify.is_uic ic)) ics in
  let cedges =
    List.concat_map
      (fun ic ->
        List.map
          (fun e -> (vertex_of e.src, vertex_of e.dst, ic))
          (edges_of_constraint ic))
      non_uic
  in
  { vertex_of; cvertices = comps; cedges }

let has_cycle_from cedges =
  (* DFS over component vertices; components compared structurally. *)
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (s, d, _) ->
      Hashtbl.replace adj s (d :: Option.value ~default:[] (Hashtbl.find_opt adj s)))
    cedges;
  let color = Hashtbl.create 16 in
  let rec visit path v =
    match Hashtbl.find_opt color v with
    | Some `Done -> None
    | Some `Active ->
        (* [path] is most-recent-first and starts with [v] (the vertex just
           revisited); the cycle is [v] followed by its predecessors back to
           — excluding — the previous occurrence of [v] *)
        let rec until_v = function
          | [] -> []
          | y :: ys -> if y = v then [] else y :: until_v ys
        in
        (match path with
        | x :: rest when x = v -> Some (List.rev (v :: until_v rest))
        | _ -> Some [ v ])
    | None -> (
        Hashtbl.replace color v `Active;
        let succs = Option.value ~default:[] (Hashtbl.find_opt adj v) in
        let rec try_succs = function
          | [] ->
              Hashtbl.replace color v `Done;
              None
          | s :: rest -> (
              match visit (s :: path) s with
              | Some c -> Some c
              | None -> try_succs rest)
        in
        try_succs succs)
  in
  let starts = Hashtbl.fold (fun v _ acc -> v :: acc) adj [] in
  List.find_map (fun v -> visit [ v ] v) starts

let ric_cycle ics = has_cycle_from (contract ics).cedges

let is_ric_acyclic ics = Option.is_none (ric_cycle ics)

let pp ppf g =
  let pp_edge ppf e = Fmt.pf ppf "%s -> %s" e.src e.dst in
  Fmt.pf ppf "@[<v>vertices: %a@,edges:@,  %a@]"
    Fmt.(list ~sep:(any ", ") string)
    (vertices g)
    Fmt.(list ~sep:(any "@,  ") pp_edge)
    g.edge_list

let pp_component ppf c =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") string) c

let pp_contracted ppf c =
  let pp_edge ppf (s, d, _) =
    Fmt.pf ppf "%a -> %a" pp_component s pp_component d
  in
  Fmt.pf ppf "@[<v>vertices: %a@,edges:@,  %a@]"
    Fmt.(list ~sep:(any ", ") pp_component)
    c.cvertices
    Fmt.(list ~sep:(any "@,  ") pp_edge)
    c.cedges
