type t = { pred : string; terms : Term.t list }

let make pred terms = { pred; terms }
let pred a = a.pred
let terms a = a.terms
let arity a = List.length a.terms

let vars a = Term.vars a.terms

let positions_of a t =
  let rec go i acc = function
    | [] -> List.rev acc
    | u :: rest -> go (i + 1) (if Term.equal u t then i :: acc else acc) rest
  in
  go 1 [] a.terms

let equal a b =
  String.equal a.pred b.pred && List.equal Term.equal a.terms b.terms

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else List.compare Term.compare a.terms b.terms

let pp ppf a =
  Fmt.pf ppf "%s(%a)" a.pred Fmt.(list ~sep:(any ", ") Term.pp) a.terms

let ground lookup a =
  let value = function
    | Term.Const v -> v
    | Term.Var x -> lookup x
  in
  Relational.Atom.make a.pred (List.map value a.terms)
