(** Built-in atoms from [B]: comparisons over affine expressions, plus the
    propositional [false].

    The formula [phi] of a constraint of form (1) is a disjunction of these
    atoms.  Expressions are of the shape [term + offset] so that check
    constraints such as [u > w + 15] (Example 8) are expressible. *)

type expr = { base : Term.t; offset : int }

val evar : string -> expr
val econst : Relational.Value.t -> expr
val eint : int -> expr
val shift : expr -> int -> expr

type op = Eq | Neq | Lt | Leq | Gt | Geq

type t =
  | Cmp of op * expr * expr
  | False  (** the always-false propositional atom [false] in [B] *)

val cmp : op -> expr -> expr -> t
val eq : Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t

val negate : t -> t
(** Classical negation of a comparison; [negate False] is unrepresentable as
    a single atom and raises [Invalid_argument] (no constraint of form (1)
    needs it: the repair-program translation negates [phi], and [false]
    negates to an empty conjunction handled by the caller). *)

val vars : t -> string list

val eval : (string -> Relational.Value.t) -> t -> bool
(** Classical evaluation with [null] treated as any other constant: equality
    is structural ([null = null] holds), order comparisons between values of
    different kinds or involving [null] or non-integer offsets are false.
    Per Definition 4 this is only ever reached when every relevant variable
    is non-null, so the [null] corner cases are defensive. *)

val eval3 : (string -> Relational.Value.t) -> t -> bool option
(** SQL three-valued evaluation: [None] is [unknown] (any comparison with a
    [null] operand).  Used by the SQL-semantics baselines of Section 3. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val pp_op : op Fmt.t
