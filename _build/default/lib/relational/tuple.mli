(** Database tuples: finite sequences of constants in [U]. *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
val to_list : t -> Value.t list
val arity : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val has_null : t -> bool
(** True iff some position holds [null]. *)

val all_non_null : t -> bool

val project : int list -> t -> t
(** [project positions t] keeps the 1-based [positions], in the given order.
    This is the projection [Pi_A(t)] of Definition 3.
    @raise Invalid_argument if a position is out of range. *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
