module Smap = Map.Make (String)

type t = Tuple.Set.t Smap.t

let empty = Smap.empty
let is_empty d = Smap.for_all (fun _ ts -> Tuple.Set.is_empty ts) d

let add a d =
  let p = Atom.pred a and t = Atom.args a in
  let prev = Option.value ~default:Tuple.Set.empty (Smap.find_opt p d) in
  Smap.add p (Tuple.Set.add t prev) d

let remove a d =
  let p = Atom.pred a and t = Atom.args a in
  match Smap.find_opt p d with
  | None -> d
  | Some ts ->
      let ts = Tuple.Set.remove t ts in
      if Tuple.Set.is_empty ts then Smap.remove p d else Smap.add p ts d

let mem a d =
  match Smap.find_opt (Atom.pred a) d with
  | None -> false
  | Some ts -> Tuple.Set.mem (Atom.args a) ts

let of_atoms atoms = List.fold_left (fun d a -> add a d) empty atoms

let of_list l =
  of_atoms (List.map (fun (p, vs) -> Atom.make p vs) l)

let fold f d acc =
  Smap.fold
    (fun p ts acc ->
      Tuple.Set.fold (fun t acc -> f (Atom.of_tuple p t) acc) ts acc)
    d acc

let iter f d = fold (fun a () -> f a) d ()

let atoms d = List.rev (fold (fun a acc -> a :: acc) d [])
let atom_set d = fold Atom.Set.add d Atom.Set.empty

let filter f d =
  Smap.filter_map
    (fun p ts ->
      let ts = Tuple.Set.filter (fun t -> f (Atom.of_tuple p t)) ts in
      if Tuple.Set.is_empty ts then None else Some ts)
    d

let cardinal d = Smap.fold (fun _ ts n -> n + Tuple.Set.cardinal ts) d 0

let preds d =
  Smap.fold (fun p ts acc -> if Tuple.Set.is_empty ts then acc else p :: acc) d []
  |> List.rev

let tuples d p = Option.value ~default:Tuple.Set.empty (Smap.find_opt p d)

let merge_with op a b =
  Smap.merge
    (fun _ x y ->
      let x = Option.value ~default:Tuple.Set.empty x in
      let y = Option.value ~default:Tuple.Set.empty y in
      let r = op x y in
      if Tuple.Set.is_empty r then None else Some r)
    a b

let union = merge_with Tuple.Set.union
let diff = merge_with Tuple.Set.diff
let inter = merge_with Tuple.Set.inter
let symdiff a b = union (diff a b) (diff b a)

let subset a b =
  Smap.for_all (fun p ts -> Tuple.Set.subset ts (tuples b p)) a

(* The representation never stores an empty per-predicate set ([add] only
   grows sets, [remove]/[filter]/[merge_with] drop emptied keys), so the
   map comparison is a sound equality — no [atom_set] rebuild, no double
   [subset] scan.  This is the hot comparator behind state dedup in
   [Repair.Enumerate]. *)
let compare a b = Smap.compare Tuple.Set.compare a b

let equal a b = compare a b = 0

let active_domain d =
  let module Vset = Set.Make (Value) in
  let vs =
    fold
      (fun a acc -> Array.fold_left (fun acc v -> Vset.add v acc) acc (Atom.args a))
      d Vset.empty
  in
  Vset.elements vs

let active_domain_non_null d =
  List.filter (fun v -> not (Value.is_null v)) (active_domain d)

let null_count d =
  fold
    (fun a n ->
      Array.fold_left (fun n v -> if Value.is_null v then n + 1 else n) n
        (Atom.args a))
    d 0

let pp ppf d = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Atom.pp) (atoms d)

let pp_inline ppf d =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Atom.pp) (atoms d)
