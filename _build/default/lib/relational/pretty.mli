(** Tabular rendering of instances, in the style of the paper's examples. *)

val table : ?schema:Schema.t -> Instance.t -> string -> string
(** [table d rel] renders relation [rel] of [d] as an ASCII table.  Attribute
    headers come from [schema] when provided, else [c1..cn]. *)

val instance : ?schema:Schema.t -> Instance.t -> string
(** All relations of the instance, one table each. *)

val atoms_line : Instance.t -> string
(** [{P(a, b), Q(null)}] — the set-of-atoms rendering used for repairs. *)
