type t = Value.t array

let make vs = Array.of_list vs
let of_array a = a
let to_list = Array.to_list
let arity = Array.length

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let has_null t = Array.exists Value.is_null t
let all_non_null t = not (has_null t)

let project positions t =
  let n = Array.length t in
  let pick i =
    if i < 1 || i > n then
      invalid_arg
        (Printf.sprintf "Tuple.project: position %d out of range 1..%d" i n)
    else t.(i - 1)
  in
  Array.of_list (List.map pick positions)

let pp ppf t =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
