type t = { pred : string; args : Tuple.t }

let make pred vs = { pred; args = Tuple.make vs }
let of_tuple pred args = { pred; args }
let pred a = a.pred
let args a = a.args
let arity a = Tuple.arity a.args

let equal a b = String.equal a.pred b.pred && Tuple.equal a.args b.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Tuple.compare a.args b.args

let has_null a = Tuple.has_null a.args

let pp ppf a =
  Fmt.pf ppf "%s(%a)" a.pred Fmt.(array ~sep:(any ", ") Value.pp) a.args

let to_string a = Fmt.str "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
