module Smap = Map.Make (String)

type relation = { name : string; attrs : string list }

type t = relation Smap.t

let empty = Smap.empty

let add_relation s ~name ~attrs =
  if String.equal name "" then invalid_arg "Schema.add_relation: empty name";
  if Smap.mem name s then
    invalid_arg (Printf.sprintf "Schema.add_relation: duplicate relation %s" name);
  Smap.add name { name; attrs } s

let relation s name = Smap.find_opt name s
let arity s name = Option.map (fun r -> List.length r.attrs) (relation s name)
let mem s name = Smap.mem name s
let relations s = List.map snd (Smap.bindings s)
let names s = List.map fst (Smap.bindings s)

let attr_position s rel attr =
  match relation s rel with
  | None -> None
  | Some r ->
      let rec go i = function
        | [] -> None
        | a :: rest -> if String.equal a attr then Some i else go (i + 1) rest
      in
      go 1 r.attrs

let attr_name s rel i =
  match relation s rel with
  | None -> None
  | Some r -> List.nth_opt r.attrs (i - 1)

let of_list l =
  List.fold_left (fun s (name, attrs) -> add_relation s ~name ~attrs) empty l

let check_atom s a =
  match arity s (Atom.pred a) with
  | None -> Error (Printf.sprintf "unknown relation %s" (Atom.pred a))
  | Some n when n = Atom.arity a -> Ok ()
  | Some n ->
      Error
        (Printf.sprintf "relation %s expects arity %d, got %d" (Atom.pred a) n
           (Atom.arity a))

let check_instance s d =
  Instance.fold
    (fun a acc -> match acc with Error _ -> acc | Ok () -> check_atom s a)
    d (Ok ())

let pp_relation ppf r =
  Fmt.pf ppf "%s(%a)" r.name Fmt.(list ~sep:(any ", ") string) r.attrs

let pp ppf s =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_relation) (relations s)
