(** Projections of instances onto relevant attributes (Definition 3).

    For a set [A] of attribute positions (given per predicate), [D^A] is the
    instance [{P^A(Pi_A(t)) | P(t) in D}].  Predicates keep their names:
    [P^A] has the positions of [A] for [P], in ascending order.  A predicate
    with no position in [A] projects to a zero-ary marker tuple, so that the
    antecedent of the transformed constraint (4) can still be evaluated. *)

type positions = (string * int list) list
(** Per-predicate 1-based positions, ascending. *)

val positions_for : positions -> string -> int list
(** Positions recorded for a predicate ([[]] if none). *)

val project_tuple : int list -> Tuple.t -> Tuple.t

val project_instance : positions -> Instance.t -> Instance.t
(** [D^A].  Predicates of [D] not mentioned in [A] at all are kept with all
    their positions (they are irrelevant to the constraint and are never
    consulted, but keeping them total keeps the operation schema-stable). *)

val restrict_to : string list -> Instance.t -> Instance.t
(** Keep only the given predicates. *)
