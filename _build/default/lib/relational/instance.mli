(** Database instances: finite sets of ground database atoms.

    Following the paper (and deviating from SQL's bag semantics exactly as
    discussed around Example 7), an instance is a {e set} of atoms. *)

type t

val empty : t
val is_empty : t -> bool

val add : Atom.t -> t -> t
val remove : Atom.t -> t -> t
val mem : Atom.t -> t -> bool

val of_atoms : Atom.t list -> t
val of_list : (string * Value.t list) list -> t
val atoms : t -> Atom.t list
val atom_set : t -> Atom.Set.t

val cardinal : t -> int
val preds : t -> string list
(** Predicates with at least one tuple, sorted. *)

val tuples : t -> string -> Tuple.Set.t
(** Tuples of one relation (empty set if none). *)

val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Atom.t -> unit) -> t -> unit
val filter : (Atom.t -> bool) -> t -> t

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val symdiff : t -> t -> t
(** The symmetric difference [Delta(D, D')] used to compare instances with
    their repairs (Section 4). *)

val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val active_domain : t -> Value.t list
(** All constants occurring in the instance, [null] included if present,
    sorted and deduplicated. *)

val active_domain_non_null : t -> Value.t list

val null_count : t -> int
(** Number of null occurrences across all tuples. *)

val pp : t Fmt.t
(** One atom per line, sorted — stable output for tests and goldens. *)

val pp_inline : t Fmt.t
(** [{A(1), B(2, null)}] on one line. *)
