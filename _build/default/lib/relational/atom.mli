(** Ground database atoms [P(c1, ..., cn)]. *)

type t = { pred : string; args : Tuple.t }

val make : string -> Value.t list -> t
val of_tuple : string -> Tuple.t -> t
val pred : t -> string
val args : t -> Tuple.t
val arity : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val has_null : t -> bool

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
