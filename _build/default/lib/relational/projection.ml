type positions = (string * int list) list

let positions_for pos p =
  match List.assoc_opt p pos with Some l -> l | None -> []

let project_tuple = Tuple.project

let project_instance pos d =
  Instance.fold
    (fun a acc ->
      let p = Atom.pred a in
      match List.assoc_opt p pos with
      | None -> Instance.add a acc
      | Some positions ->
          Instance.add (Atom.of_tuple p (Tuple.project positions (Atom.args a))) acc)
    d Instance.empty

let restrict_to preds d =
  Instance.filter (fun a -> List.mem (Atom.pred a) preds) d
