let headers schema rel arity =
  match Option.bind schema (fun s -> Schema.relation s rel) with
  | Some r when List.length r.Schema.attrs = arity -> r.Schema.attrs
  | Some _ | None -> List.init arity (fun i -> Printf.sprintf "c%d" (i + 1))

let render_rows rel header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun n r -> max n (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun w r -> match List.nth_opt r c with
        | Some s -> max w (String.length s)
        | None -> w)
      1 all
  in
  let widths = List.init ncols width in
  let line r =
    let cells =
      List.mapi
        (fun c w ->
          let s = Option.value ~default:"" (List.nth_opt r c) in
          s ^ String.make (w - String.length s) ' ')
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (rel ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let table ?schema d rel =
  let tuples = Tuple.Set.elements (Instance.tuples d rel) in
  let arity = match tuples with [] -> 0 | t :: _ -> Tuple.arity t in
  let header = headers schema rel arity in
  let rows =
    List.map (fun t -> List.map Value.to_string (Tuple.to_list t)) tuples
  in
  render_rows rel header rows

let instance ?schema d =
  String.concat "\n\n" (List.map (table ?schema d) (Instance.preds d))

let atoms_line d = Fmt.str "%a" Instance.pp_inline d
