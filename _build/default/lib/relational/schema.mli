(** Relational schemas [Sigma = (U, R, B)].

    A schema fixes the database predicates [R], each with a finite ordered
    set of attributes.  The domain [U] is implicit (all of {!Value.t}) and
    the built-ins [B] live in the constraint language ({!Ic.Formula}). *)

type relation = {
  name : string;
  attrs : string list;  (** ordered attribute names; length = arity *)
}

type t

val empty : t

val add_relation : t -> name:string -> attrs:string list -> t
(** @raise Invalid_argument on duplicate relation name or empty name. *)

val relation : t -> string -> relation option
val arity : t -> string -> int option
val mem : t -> string -> bool
val relations : t -> relation list
val names : t -> string list

val attr_position : t -> string -> string -> int option
(** [attr_position s rel attr] is the 1-based position of [attr] in [rel]. *)

val attr_name : t -> string -> int -> string option
(** [attr_name s rel i] is the name of the attribute [rel[i]] (1-based). *)

val of_list : (string * string list) list -> t

val check_atom : t -> Atom.t -> (unit, string) result
(** Validates predicate existence and arity. *)

val check_instance : t -> Instance.t -> (unit, string) result

val pp : t Fmt.t
