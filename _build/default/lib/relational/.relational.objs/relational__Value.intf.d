lib/relational/value.mli: Fmt
