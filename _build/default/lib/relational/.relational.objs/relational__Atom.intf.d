lib/relational/atom.mli: Fmt Map Set Tuple Value
