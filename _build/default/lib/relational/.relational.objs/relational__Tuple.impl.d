lib/relational/tuple.ml: Array Fmt Int List Map Printf Set Value
