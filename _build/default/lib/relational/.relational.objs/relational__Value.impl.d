lib/relational/value.ml: Fmt Hashtbl Int String
