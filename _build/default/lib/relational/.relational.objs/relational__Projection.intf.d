lib/relational/projection.mli: Instance Tuple
