lib/relational/instance.ml: Array Atom Fmt List Map Option Set String Tuple Value
