lib/relational/schema.mli: Atom Fmt Instance
