lib/relational/projection.ml: Atom Instance List Tuple
