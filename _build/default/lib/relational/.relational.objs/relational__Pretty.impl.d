lib/relational/pretty.ml: Buffer Fmt Instance List Option Printf Schema String Tuple Value
