lib/relational/pretty.mli: Instance Schema
