lib/relational/schema.ml: Atom Fmt Instance List Map Option Printf String
