lib/relational/atom.ml: Fmt Map Set String Tuple Value
