lib/relational/instance.mli: Atom Fmt Tuple Value
