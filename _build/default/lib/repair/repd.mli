(** The deletion-preferring repair class [Rep_d(D, IC)] (end of Section 4).

    When [IC] contains NOT NULL-constraints that conflict with existential
    positions of other constraints (Example 20), [Rep(D, IC)] recovers the
    arbitrary-constant repairs of [2].  [Rep_d] discards those of them that
    are beaten, in [<=_D], by a repair of [IC] without the conflicting
    NNCs — in effect preferring tuple deletions over insertions of
    arbitrary non-null constants.  For non-conflicting [IC] the two classes
    coincide (property-tested). *)

val conflicting_nncs : Ic.Constr.t list -> Ic.Constr.t list
(** The NNCs constraining an existentially quantified attribute of some
    constraint of form (1). *)

val repairs_d :
  ?max_states:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** [Rep_d(D, IC)] = repairs of [IC] not strictly beaten by any repair of
    [IC] minus its conflicting NNCs. *)
