let conflicting_nncs ics =
  List.filter
    (fun nnc ->
      match nnc with
      | Ic.Constr.Generic _ -> false
      | Ic.Constr.NotNull n ->
          List.exists
            (fun ic ->
              match ic with
              | Ic.Constr.NotNull _ -> false
              | Ic.Constr.Generic g ->
                  let zs = Ic.Constr.existential_vars g in
                  List.exists
                    (fun a ->
                      String.equal (Ic.Patom.pred a) n.pred
                      &&
                      match List.nth_opt (Ic.Patom.terms a) (n.pos - 1) with
                      | Some (Ic.Term.Var x) -> List.mem x zs
                      | Some (Ic.Term.Const _) | None -> false)
                    g.Ic.Constr.cons)
            ics)
    ics

let repairs_d ?max_states d ics =
  let reps = Enumerate.repairs ?max_states d ics in
  match conflicting_nncs ics with
  | [] -> reps
  | conflicting ->
      let ic' =
        List.filter
          (fun ic -> not (List.exists (Ic.Constr.equal ic) conflicting))
          ics
      in
      let reps' = Enumerate.repairs ?max_states d ic' in
      List.filter
        (fun r -> not (List.exists (fun r' -> Order.lt ~d r' r) reps'))
        reps
