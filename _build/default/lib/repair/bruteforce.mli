(** Brute-force reference implementation of Definition 7 for cross-checking
    the conflict-driven enumerator on tiny instances.

    Enumerates {e every} instance over the Proposition-1 universe (all
    subsets of all ground atoms), keeps the consistent ones and filters by
    [<=_D]-minimality.  Doubly exponential in practice — guarded by
    [max_base_atoms]. *)

exception Too_large of int
(** Raised when the ground-atom base exceeds the guard. *)

val repairs :
  ?max_base_atoms:int ->
  schema:(string * int) list ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** [schema] lists every predicate with its arity (insertions may involve
    predicates absent from [D]).  Default guard: 20 base atoms. *)
