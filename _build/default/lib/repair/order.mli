(** The repair preference order [<=_D] of Definition 6.

    [D' <=_D D''] iff (a) every null-free atom of [Delta(D, D')] belongs to
    [Delta(D, D'')], and (b) every atom of [Delta(D, D')] containing nulls
    either belongs to [Delta(D, D'')] itself, or some atom of
    [Delta(D, D'') \ Delta(D, D')] has the same predicate and agrees with it
    on all its non-null positions.  (The paper writes the nulls in the last
    positions for presentation only; the condition is positional.)

    The "belongs to [Delta(D, D'')] itself" disjunct in (b) is not spelled
    out in the paper's Definition 6, but it is forced by the examples:
    without it [<=_D] is not reflexive, and instances padded with gratuitous
    all-null tuples (e.g. [D ∪ {Student(34, null), Student(null, null)}] in
    Example 14's scenario) would be incomparable to the intended repairs and
    Example 15 would not have "only two repairs".  With it, [<=_D] is a
    preorder and the paper's Examples 15-20 come out exactly as printed
    (see test/test_repair.ml).

    Intuitively, an instance that differs from [D] by a null-padded tuple is
    preferred over one that differs by the same tuple padded with arbitrary
    constants (Example 17: [R(b, null)] beats every [R(b, d)]). *)

val leq : d:Relational.Instance.t -> Relational.Instance.t -> Relational.Instance.t -> bool
(** [leq ~d d' d''] is [D' <=_D D'']. *)

val lt : d:Relational.Instance.t -> Relational.Instance.t -> Relational.Instance.t -> bool
(** Strict: [leq d' d''] and not [leq d'' d']. *)

val minimal_among :
  d:Relational.Instance.t -> Relational.Instance.t list -> Relational.Instance.t list
(** The [<=_D]-minimal elements of a finite set of instances (duplicates
    removed first).  Minimality is component-local when the candidates'
    symmetric differences split over disjoint atom sets with no
    cross-covering ({!matches_non_null_positions}), which is what lets
    {!Decompose} filter per component instead of over the cross product. *)

val matches_non_null_positions : Relational.Atom.t -> Relational.Atom.t -> bool
(** Does the second atom agree with the first on every non-null position of
    the first (same predicate and arity required)?  This is the covering
    test of condition (b) of [<=_D]; {!Decompose} uses it to decide whether
    per-component minimality implies global minimality. *)

val delta : Relational.Instance.t -> Relational.Instance.t -> Relational.Instance.t
(** [Delta(D, D')], the symmetric difference. *)
