lib/repair/check.mli: Ic Relational
