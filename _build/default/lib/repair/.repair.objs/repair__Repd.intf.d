lib/repair/repd.mli: Ic Relational
