lib/repair/actions.ml: Fmt Hashtbl Ic List Option Relational Semantics
