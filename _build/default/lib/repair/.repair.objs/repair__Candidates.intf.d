lib/repair/candidates.mli: Ic Relational
