lib/repair/enumerate.ml: Candidates Fmt Ic List Option Order Relational Semantics Set
