lib/repair/enumerate.ml: Actions Candidates Decompose Ic List Order Relational Semantics Set
