lib/repair/enumerate.ml: Candidates Fmt Hashtbl Ic List Option Order Relational Semantics Set
