lib/repair/enumerate.mli: Actions Decompose Fmt Ic Relational Semantics
