lib/repair/enumerate.mli: Fmt Ic Relational Semantics
