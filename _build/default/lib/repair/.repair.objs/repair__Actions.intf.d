lib/repair/actions.mli: Fmt Ic Relational Semantics
