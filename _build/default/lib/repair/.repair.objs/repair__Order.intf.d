lib/repair/order.mli: Relational
