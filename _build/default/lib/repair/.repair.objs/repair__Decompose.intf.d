lib/repair/decompose.mli: Ic Relational Seq
