lib/repair/repd.ml: Enumerate Ic List Order String
