lib/repair/order.ml: Array List Relational String
