lib/repair/candidates.ml: Ic List Relational Set
