lib/repair/decompose.ml: Actions Candidates Hashtbl Ic List Option Order Relational Semantics Seq
