lib/repair/bruteforce.mli: Ic Relational
