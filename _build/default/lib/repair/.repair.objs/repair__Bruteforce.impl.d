lib/repair/bruteforce.ml: Array Candidates List Order Relational Semantics
