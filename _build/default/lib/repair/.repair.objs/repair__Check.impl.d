lib/repair/check.ml: Candidates Enumerate Fmt List Order Relational Result Semantics
