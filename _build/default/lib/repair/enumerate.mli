(** Exact computation of [Rep(D, IC)] (Definition 7) by conflict-driven
    search.

    Starting from [D], every inconsistent state branches on the local fixes
    of {e all} of its violations: deleting one of the matched antecedent
    tuples, or inserting one consequent witness with [null] at the
    existentially quantified positions (the repair actions of the logic
    programs of Definition 9).  Branching on every violation (not just the
    first) matters for completeness: an insertion made for one constraint
    can be the only witness resolving another constraint's violation in
    some repair.  When a NOT NULL-constraint forbids [null] at an
    existential position (a {e conflicting} NNC, Example 20), the insertion
    instead ranges over the non-null universe of Proposition 1 — recovering
    the arbitrary-constant repairs of [2] restricted to that finite
    universe.  Consistent states are collected and filtered by
    [<=_D]-minimality.

    The search space is finite (states are sets of atoms over the universe
    of Proposition 1) so the procedure terminates even for RIC-cyclic
    constraint sets (Example 18).  Worst-case exponential, as CQA is
    Pi^p_2-complete (Theorem 3). *)

exception Budget_exceeded of int

type action = Delete of Relational.Atom.t | Insert of Relational.Atom.t

val pp_action : action Fmt.t

val fixes :
  universe:Relational.Value.t list ->
  nnc_positions:(string * int) list ->
  Relational.Instance.t ->
  Semantics.Nullsat.violation ->
  action list
(** The local fixes of one violation (exposed for tests and for the
    explanation CLI). *)

val repairs :
  ?max_states:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** [Rep(D, IC)].  Deterministic order.  A consistent [D] yields [[D]].
    @raise Budget_exceeded when more than [max_states] (default [200_000])
    distinct states are explored. *)

val consistent_states :
  ?max_states:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** All consistent states reached by the search, before minimality
    filtering (exposed for the <=_D property tests). *)
