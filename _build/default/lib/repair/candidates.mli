(** The finite universe within which repairs live (Proposition 1):
    [adom(D) ∪ const(IC) ∪ {null}]. *)

val constants_of_ics : Ic.Constr.t list -> Relational.Value.t list
(** [const(IC)]: constants appearing in the constraints (database atoms and
    built-in expressions), sorted, deduplicated. *)

val universe :
  Relational.Instance.t -> Ic.Constr.t list -> Relational.Value.t list
(** [adom(D) ∪ const(IC) ∪ {null}], sorted. *)

val universe_non_null :
  Relational.Instance.t -> Ic.Constr.t list -> Relational.Value.t list

val all_atoms :
  schema:(string * int) list -> Relational.Value.t list -> Relational.Atom.t list
(** Every ground atom over the given predicates/arities and value universe.
    Exponential — reference/brute-force use only. *)
