module Instance = Relational.Instance
module Value = Relational.Value

let necessary_conditions ~d ~ics d' =
  let ( let* ) = Result.bind in
  let* () =
    match Semantics.Nullsat.check d' ics with
    | [] -> Ok ()
    | v :: _ ->
        Error (Fmt.str "not consistent: %a" Semantics.Nullsat.pp_violation v)
  in
  let universe = Candidates.universe d ics in
  let outside =
    List.filter
      (fun v -> not (List.exists (Value.equal v) universe))
      (Instance.active_domain d')
  in
  match outside with
  | [] -> Ok ()
  | v :: _ ->
      Error
        (Fmt.str
           "value %a lies outside adom(D) ∪ const(IC) ∪ {null} (Proposition 1)"
           Value.pp v)

let explain ?max_states ~d ~ics d' =
  let ( let* ) = Result.bind in
  let* () = necessary_conditions ~d ~ics d' in
  let reps = Enumerate.repairs ?max_states d ics in
  if List.exists (Instance.equal d') reps then Ok ()
  else
    match List.find_opt (fun r -> Order.lt ~d r d') reps with
    | Some r ->
        Error
          (Fmt.str "not <=_D-minimal: beaten by the repair %a"
             Instance.pp_inline r)
    | None ->
        Error
          (Fmt.str
             "consistent but not a repair: not reachable as a <=_D-minimal \
              consistent instance of D")

let is_repair ?max_states ~d ~ics d' =
  Result.is_ok (explain ?max_states ~d ~ics d')
