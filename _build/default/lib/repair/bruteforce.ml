module Instance = Relational.Instance

exception Too_large of int

let repairs ?(max_base_atoms = 20) ~schema d ics =
  let universe = Candidates.universe d ics in
  let base = Candidates.all_atoms ~schema universe in
  (* the original atoms must be part of the base even if their predicate is
     missing from [schema] *)
  let base =
    List.fold_left
      (fun acc a -> if List.exists (Relational.Atom.equal a) acc then acc else a :: acc)
      base (Instance.atoms d)
  in
  let n = List.length base in
  if n > max_base_atoms then raise (Too_large n);
  let arr = Array.of_list base in
  let consistent = ref [] in
  let total = 1 lsl n in
  for mask = 0 to total - 1 do
    let inst = ref Instance.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then inst := Instance.add arr.(i) !inst
    done;
    if Semantics.Nullsat.consistent !inst ics then
      consistent := !inst :: !consistent
  done;
  Order.minimal_among ~d (List.rev !consistent)
