module Value = Relational.Value
module Vset = Set.Make (Value)

let constants_of_term acc = function
  | Ic.Term.Const v -> Vset.add v acc
  | Ic.Term.Var _ -> acc

let constants_of_expr acc (e : Ic.Builtin.expr) =
  constants_of_term acc e.Ic.Builtin.base

let constants_of_builtin acc = function
  | Ic.Builtin.False -> acc
  | Ic.Builtin.Cmp (_, a, b) -> constants_of_expr (constants_of_expr acc a) b

let constants_of_ic acc = function
  | Ic.Constr.NotNull _ -> acc
  | Ic.Constr.Generic g ->
      let acc =
        List.fold_left
          (fun acc atom ->
            List.fold_left constants_of_term acc (Ic.Patom.terms atom))
          acc
          (g.Ic.Constr.ante @ g.Ic.Constr.cons)
      in
      List.fold_left constants_of_builtin acc g.Ic.Constr.phi

let constants_of_ics ics =
  Vset.elements (List.fold_left constants_of_ic Vset.empty ics)

let universe d ics =
  let s =
    List.fold_left
      (fun s v -> Vset.add v s)
      (Vset.of_list (Relational.Instance.active_domain d))
      (constants_of_ics ics)
  in
  Vset.elements (Vset.add Value.null s)

let universe_non_null d ics =
  List.filter (fun v -> not (Value.is_null v)) (universe d ics)

let all_atoms ~schema values =
  let rec tuples n =
    if n = 0 then [ [] ]
    else
      let rest = tuples (n - 1) in
      List.concat_map (fun v -> List.map (fun t -> v :: t) rest) values
  in
  List.concat_map
    (fun (pred, arity) ->
      List.map (fun t -> Relational.Atom.make pred t) (tuples arity))
    schema
