(** Repair checking (Theorem 1: coNP-complete).

    [is_repair] decides whether a given instance is a repair of [D] wrt
    [IC] by combining the cheap necessary conditions (consistency, schema
    compatibility, active-domain containment of Proposition 1) with
    membership in the enumerated repair set. *)

val necessary_conditions :
  d:Relational.Instance.t ->
  ics:Ic.Constr.t list ->
  Relational.Instance.t ->
  (unit, string) result
(** Consistency wrt [|=_N] and the Proposition-1 domain bound; [Error]
    carries the reason for rejection. *)

val is_repair :
  ?max_states:int ->
  d:Relational.Instance.t ->
  ics:Ic.Constr.t list ->
  Relational.Instance.t ->
  bool

val explain :
  ?max_states:int ->
  d:Relational.Instance.t ->
  ics:Ic.Constr.t list ->
  Relational.Instance.t ->
  (unit, string) result
(** Like {!is_repair} but with a human-readable reason on failure (used by
    the CLI). *)
