module Value = Relational.Value

let is_lower_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false)
       s

let is_upper_ident s =
  s <> ""
  && (match s.[0] with 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false)
       s

let keywords = [ "relation"; "constraint"; "not_null"; "query"; "exists"; "forall"; "isnull"; "false"; "null" ]

let value = function
  | Value.Null -> "null"
  | Value.Int i -> string_of_int i
  | Value.Str s ->
      if is_lower_ident s && not (List.mem s keywords) then s
      else "\"" ^ s ^ "\""

let check_relation_name name =
  if not (is_upper_ident name) then
    invalid_arg
      (Printf.sprintf
         "Emit: relation name %S is not expressible in the surface syntax \
          (capitalized identifier required)"
         name)

let fact atom =
  let pred = Relational.Atom.pred atom in
  check_relation_name pred;
  Printf.sprintf "%s(%s)." pred
    (String.concat ", "
       (List.map value (Relational.Tuple.to_list (Relational.Atom.args atom))))

let instance d =
  String.concat "\n" (List.map fact (Relational.Instance.atoms d))

let relation (r : Relational.Schema.relation) =
  check_relation_name r.Relational.Schema.name;
  let attr i a = if is_lower_ident a || is_upper_ident a then a else Printf.sprintf "c%d" (i + 1) in
  Printf.sprintf "relation %s(%s)." r.Relational.Schema.name
    (String.concat ", " (List.mapi attr r.Relational.Schema.attrs))

(* Variables must be distinct capitalized identifiers; build a per-item
   renaming that capitalizes and disambiguates. *)
let var_renaming vars =
  let taken = Hashtbl.create 8 in
  List.map
    (fun x ->
      let base =
        let c = String.capitalize_ascii x in
        if is_upper_ident c then c else "V" ^ string_of_int (Hashtbl.length taken)
      in
      let rec fresh c i =
        let candidate = if i = 0 then c else Printf.sprintf "%s%d" c i in
        if Hashtbl.mem taken candidate then fresh c (i + 1) else candidate
      in
      let name = fresh base 0 in
      Hashtbl.replace taken name ();
      (x, name))
    vars

let term rename = function
  | Ic.Term.Var x -> List.assoc x rename
  | Ic.Term.Const v -> value v

let patom rename a =
  check_relation_name (Ic.Patom.pred a);
  Printf.sprintf "%s(%s)" (Ic.Patom.pred a)
    (String.concat ", " (List.map (term rename) (Ic.Patom.terms a)))

let expr rename (e : Ic.Builtin.expr) =
  let base = term rename e.Ic.Builtin.base in
  if e.Ic.Builtin.offset = 0 then base
  else if e.Ic.Builtin.offset > 0 then Printf.sprintf "%s + %d" base e.Ic.Builtin.offset
  else Printf.sprintf "%s - %d" base (-e.Ic.Builtin.offset)

let op_string = function
  | Ic.Builtin.Eq -> "="
  | Ic.Builtin.Neq -> "!="
  | Ic.Builtin.Lt -> "<"
  | Ic.Builtin.Leq -> "<="
  | Ic.Builtin.Gt -> ">"
  | Ic.Builtin.Geq -> ">="

let builtin rename = function
  | Ic.Builtin.False -> "false"
  | Ic.Builtin.Cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (expr rename l) (op_string op) (expr rename r)

let constraint_name name =
  match name with
  | Some n when is_lower_ident n && not (List.mem n keywords) -> " " ^ n
  | Some n when is_upper_ident n -> " " ^ n
  | _ -> ""

let constraint_ = function
  | Ic.Constr.NotNull n -> Printf.sprintf "not_null %s[%d]." n.pred n.pos
  | Ic.Constr.Generic g ->
      let vars =
        Ic.Term.vars
          (List.concat_map Ic.Patom.terms (g.Ic.Constr.ante @ g.Ic.Constr.cons))
      in
      let rename = var_renaming vars in
      let ante = String.concat ", " (List.map (patom rename) g.Ic.Constr.ante) in
      let parts =
        List.map (patom rename) g.Ic.Constr.cons
        @ List.map (builtin rename) g.Ic.Constr.phi
      in
      let cons = match parts with [] -> "false" | _ -> String.concat " | " parts in
      Printf.sprintf "constraint%s: %s -> %s."
        (constraint_name g.Ic.Constr.name)
        ante cons

(* Query formulas: precedence levels — 0 quantifier body, 1 disjunction,
   2 conjunction, 3 atoms/negation. *)
let query_formula rename f =
  let rec go level f =
    let wrap needed s = if level > needed then "(" ^ s ^ ")" else s in
    match f with
    | Query.Qsyntax.Atom a -> patom rename a
    | Query.Qsyntax.Builtin b -> builtin rename b
    | Query.Qsyntax.IsNull t -> Printf.sprintf "isnull(%s)" (term rename t)
    | Query.Qsyntax.Not f -> "!" ^ go 3 f
    | Query.Qsyntax.And (f1, f2) -> wrap 2 (go 2 f1 ^ " & " ^ go 2 f2)
    | Query.Qsyntax.Or (f1, f2) -> wrap 1 (go 1 f1 ^ " | " ^ go 1 f2)
    | Query.Qsyntax.Exists (xs, f) ->
        wrap 0
          (Printf.sprintf "exists %s. %s"
             (String.concat " " (List.map (fun x -> List.assoc x rename) xs))
             (go 0 f))
    | Query.Qsyntax.Forall (xs, f) ->
        wrap 0
          (Printf.sprintf "forall %s. %s"
             (String.concat " " (List.map (fun x -> List.assoc x rename) xs))
             (go 0 f))
  in
  go 0 f

let rec formula_vars f =
  match f with
  | Query.Qsyntax.Atom a -> Ic.Patom.vars a
  | Query.Qsyntax.Builtin b -> Ic.Builtin.vars b
  | Query.Qsyntax.IsNull (Ic.Term.Var x) -> [ x ]
  | Query.Qsyntax.IsNull (Ic.Term.Const _) -> []
  | Query.Qsyntax.And (f1, f2) | Query.Qsyntax.Or (f1, f2) ->
      formula_vars f1 @ formula_vars f2
  | Query.Qsyntax.Not f -> formula_vars f
  | Query.Qsyntax.Exists (xs, f) | Query.Qsyntax.Forall (xs, f) -> xs @ formula_vars f

let query name (q : Query.Qsyntax.t) =
  let vars =
    List.sort_uniq String.compare (q.Query.Qsyntax.head @ formula_vars q.Query.Qsyntax.body)
  in
  let rename = var_renaming vars in
  let head =
    match q.Query.Qsyntax.head with
    | [] -> ""
    | head ->
        Printf.sprintf "(%s)"
          (String.concat ", " (List.map (fun x -> List.assoc x rename) head))
  in
  let qname = if is_lower_ident name && not (List.mem name keywords) then name else "q" in
  Printf.sprintf "query %s%s: %s." qname head
    (query_formula rename q.Query.Qsyntax.body)

let file ?schema ?(ics = []) ?(queries = []) d =
  let decls =
    match schema with
    | None -> []
    | Some s -> List.map relation (Relational.Schema.relations s)
  in
  let sections =
    [
      decls;
      [ instance d ];
      List.map constraint_ ics;
      List.map (fun (n, q) -> query n q) queries;
    ]
    |> List.concat
    |> List.filter (fun s -> s <> "")
  in
  String.concat "\n" sections ^ "\n"

let loaded (l : Load.loaded) =
  file ~schema:l.Load.schema ~ics:l.Load.ics ~queries:l.Load.queries l.Load.instance
