(** Loading and validating surface files. *)

type loaded = {
  schema : Relational.Schema.t;
  instance : Relational.Instance.t;
  ics : Ic.Constr.t list;
  queries : (string * Query.Qsyntax.t) list;
}

val of_items : Surface.file -> (loaded, string) result
(** Validates arities against the declared (or inferred) schema, builds the
    constraints through {!Ic.Constr.generic} (so all form-(1) side
    conditions are enforced) and names queries. *)

val of_string : string -> (loaded, string) result
(** Parse then load; lexer/parser errors are rendered with positions. *)

val of_file : string -> (loaded, string) result
