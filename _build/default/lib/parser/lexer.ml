type token =
  | IDENT of string
  | UIDENT of string
  | STRING of string
  | INT of int
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | SEMI
  | ARROW
  | PIPE
  | AMP
  | BANG
  | EQ | NEQ | LT | LEQ | GT | GEQ
  | PLUS | MINUS
  | EOF

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let pp_token ppf t =
  Fmt.string ppf
    (match t with
    | IDENT s -> s
    | UIDENT s -> s
    | STRING s -> Printf.sprintf "%S" s
    | INT i -> string_of_int i
    | LPAREN -> "(" | RPAREN -> ")"
    | LBRACKET -> "[" | RBRACKET -> "]"
    | COMMA -> "," | DOT -> "." | COLON -> ":" | SEMI -> ";"
    | ARROW -> "->" | PIPE -> "|" | AMP -> "&" | BANG -> "!"
    | EQ -> "=" | NEQ -> "!=" | LT -> "<" | LEQ -> "<=" | GT -> ">" | GEQ -> ">="
    | PLUS -> "+" | MINUS -> "-"
    | EOF -> "<eof>")

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit token = tokens := { token; line = !line; col = !col } :: !tokens in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if input.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let error msg = raise (Lex_error (msg, !line, !col)) in
  while !i < n do
    let c = input.[!i] in
    match c with
    | ' ' | '\t' | '\r' | '\n' -> advance 1
    | '%' | '#' ->
        while !i < n && input.[!i] <> '\n' do
          advance 1
        done
    | '(' -> emit LPAREN; advance 1
    | ')' -> emit RPAREN; advance 1
    | '[' -> emit LBRACKET; advance 1
    | ']' -> emit RBRACKET; advance 1
    | ',' -> emit COMMA; advance 1
    | '.' -> emit DOT; advance 1
    | ':' -> emit COLON; advance 1
    | ';' -> emit SEMI; advance 1
    | '|' -> emit PIPE; advance 1
    | '&' -> emit AMP; advance 1
    | '+' -> emit PLUS; advance 1
    | '=' -> emit EQ; advance 1
    | '~' -> emit BANG; advance 1
    | '!' ->
        if !i + 1 < n && input.[!i + 1] = '=' then begin emit NEQ; advance 2 end
        else begin emit BANG; advance 1 end
    | '<' ->
        if !i + 1 < n && input.[!i + 1] = '=' then begin emit LEQ; advance 2 end
        else if !i + 1 < n && input.[!i + 1] = '>' then begin emit NEQ; advance 2 end
        else begin emit LT; advance 1 end
    | '>' ->
        if !i + 1 < n && input.[!i + 1] = '=' then begin emit GEQ; advance 2 end
        else begin emit GT; advance 1 end
    | '-' ->
        if !i + 1 < n && input.[!i + 1] = '>' then begin emit ARROW; advance 2 end
        else begin emit MINUS; advance 1 end
    | '"' ->
        let start = !i + 1 in
        let j = ref start in
        while !j < n && input.[!j] <> '"' do
          incr j
        done;
        if !j >= n then error "unterminated string literal"
        else begin
          emit (STRING (String.sub input start (!j - start)));
          advance (!j - !i + 1)
        end
    | '0' .. '9' ->
        let start = !i in
        let j = ref !i in
        while !j < n && match input.[!j] with '0' .. '9' -> true | _ -> false do
          incr j
        done;
        emit (INT (int_of_string (String.sub input start (!j - start))));
        advance (!j - start)
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        let j = ref !i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input start (!j - start) in
        let token =
          match word.[0] with
          | 'A' .. 'Z' -> UIDENT word
          | _ -> IDENT word
        in
        emit token;
        advance (!j - start)
    | c -> error (Printf.sprintf "unexpected character %C" c)
  done;
  emit EOF;
  List.rev !tokens
