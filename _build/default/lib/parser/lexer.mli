(** Tokenizer for the surface language (see {!Parser} for the grammar). *)

type token =
  | IDENT of string    (** lowercase identifier: constant or keyword *)
  | UIDENT of string   (** capitalized identifier: variable or relation *)
  | STRING of string   (** double-quoted constant *)
  | INT of int
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | SEMI
  | ARROW          (** -> *)
  | PIPE           (** | *)
  | AMP            (** & *)
  | BANG           (** ! *)
  | EQ | NEQ | LT | LEQ | GT | GEQ
  | PLUS | MINUS
  | EOF

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int

val tokenize : string -> located list
(** Comments run from [%] or [#] to end of line.
    @raise Lex_error on an unexpected character or unterminated string. *)

val pp_token : token Fmt.t
