lib/parser/load.mli: Ic Query Relational Surface
