lib/parser/emit.mli: Ic Load Query Relational
