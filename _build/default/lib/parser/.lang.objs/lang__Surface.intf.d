lib/parser/surface.mli: Fmt Ic Query Relational
