lib/parser/load.ml: Ic In_channel Lexer List Parser Printf Query Relational Result Surface
