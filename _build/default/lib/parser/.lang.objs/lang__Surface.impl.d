lib/parser/surface.ml: Fmt Ic List Query Relational String
