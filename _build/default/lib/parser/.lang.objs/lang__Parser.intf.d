lib/parser/parser.mli: Surface
