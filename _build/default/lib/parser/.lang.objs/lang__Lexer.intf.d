lib/parser/lexer.mli: Fmt
