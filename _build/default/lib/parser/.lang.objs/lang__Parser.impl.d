lib/parser/parser.ml: Fmt Ic Lexer List Query Relational Surface
