lib/parser/emit.ml: Hashtbl Ic List Load Printf Query Relational String
