lib/parser/lexer.ml: Fmt List Printf String
