(** Serializing databases, constraints and queries back to the surface
    syntax of {!Parser} — the inverse of {!Load}.

    Round-trip guarantee (tested): for any loaded file [l],
    [Load.of_string (file l)] succeeds with an equal instance, equal
    constraints and equal queries.  Values that would not re-read as
    themselves (capitalized words, keywords, strings with spaces or
    symbols) are double-quoted. *)

val value : Relational.Value.t -> string

val fact : Relational.Atom.t -> string

val instance : Relational.Instance.t -> string
(** One fact per line, sorted. *)

val relation : Relational.Schema.relation -> string

val constraint_ : Ic.Constr.t -> string

val query : string -> Query.Qsyntax.t -> string

val file :
  ?schema:Relational.Schema.t ->
  ?ics:Ic.Constr.t list ->
  ?queries:(string * Query.Qsyntax.t) list ->
  Relational.Instance.t ->
  string
(** A complete surface file: relation declarations, facts, constraints,
    queries. *)

val loaded : Load.loaded -> string
