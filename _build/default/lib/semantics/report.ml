type semantics = NullAware | ClassicFo | Liberal10 | SqlSimple | SqlPartial | SqlFull

let all = [ NullAware; ClassicFo; Liberal10; SqlSimple; SqlPartial; SqlFull ]

let pp_semantics ppf s =
  Fmt.string ppf
    (match s with
    | NullAware -> "|=_N"
    | ClassicFo -> "classic"
    | Liberal10 -> "liberal[10]"
    | SqlSimple -> "sql-simple"
    | SqlPartial -> "sql-partial"
    | SqlFull -> "sql-full")

let sql_mode = function
  | SqlSimple -> Some Sqlmatch.Simple
  | SqlPartial -> Some Sqlmatch.Partial
  | SqlFull -> Some Sqlmatch.Full
  | NullAware | ClassicFo | Liberal10 -> None

let satisfies sem d ic =
  match sem with
  | NullAware -> Some (Nullsat.satisfies d ic)
  | ClassicFo -> Some (Classic.satisfies d ic)
  | Liberal10 -> Some (Liberal.satisfies d ic)
  | SqlSimple | SqlPartial | SqlFull -> (
      match sql_mode sem, Sqlmatch.fk_of_ric ic with
      | Some mode, Some fk -> Some (Sqlmatch.satisfies mode d fk)
      | _ -> None)

type row = { ic : Ic.Constr.t; verdicts : (semantics * bool option) list }

let compare_semantics d ics =
  List.map
    (fun ic -> { ic; verdicts = List.map (fun s -> (s, satisfies s d ic)) all })
    ics

let violation_count sem d ic =
  match sem with
  | NullAware -> Some (List.length (Nullsat.violations d ic))
  | ClassicFo -> Some (List.length (Classic.violations d ic))
  | Liberal10 -> Some (List.length (Liberal.violations d ic))
  | SqlSimple | SqlPartial | SqlFull -> (
      match sql_mode sem, Sqlmatch.fk_of_ric ic with
      | Some mode, Some fk -> Some (List.length (Sqlmatch.violations mode d fk))
      | _ -> None)

let violation_counts d ics =
  List.map
    (fun sem ->
      let n =
        List.fold_left
          (fun n ic -> n + Option.value ~default:0 (violation_count sem d ic))
          0 ics
      in
      (sem, n))
    all

let pp_row ppf r =
  let pp_verdict ppf (s, v) =
    Fmt.pf ppf "%a=%s" pp_semantics s
      (match v with Some true -> "ok" | Some false -> "VIOLATED" | None -> "n/a")
  in
  Fmt.pf ppf "@[<h>%s: %a@]" (Ic.Constr.label r.ic)
    Fmt.(list ~sep:(any "  ") pp_verdict)
    r.verdicts
