module Value = Relational.Value

type fk = {
  child : string;
  child_cols : int list;
  parent : string;
  parent_cols : int list;
}

let fk_of_ric ic =
  match ic with
  | Ic.Constr.NotNull _ -> None
  | Ic.Constr.Generic g -> (
      match g.Ic.Constr.ante, g.Ic.Constr.cons, g.Ic.Constr.phi with
      | [ p ], [ q ], [] ->
          let shared =
            List.filter (fun x -> List.mem x (Ic.Patom.vars q)) (Ic.Patom.vars p)
          in
          let positions_in atom x =
            Ic.Patom.positions_of atom (Ic.Term.var x)
          in
          let exception Not_fk in
          (try
             let pairs =
               List.map
                 (fun x ->
                   match positions_in p x, positions_in q x with
                   | [ i ], [ j ] -> (i, j)
                   | _ -> raise Not_fk)
                 shared
             in
             if pairs = [] then None
             else
               Some
                 {
                   child = Ic.Patom.pred p;
                   child_cols = List.map fst pairs;
                   parent = Ic.Patom.pred q;
                   parent_cols = List.map snd pairs;
                 }
           with Not_fk -> None)
      | _ -> None)

type mode = Simple | Partial | Full

let child_values fk t = List.map (fun i -> t.(i - 1)) fk.child_cols

let parent_matches d fk ~match_null vals =
  let parents = Relational.Instance.tuples d fk.parent in
  Relational.Tuple.Set.exists
    (fun pt ->
      List.for_all2
        (fun j v ->
          if Value.is_null v && not match_null then true
          else Value.equal pt.(j - 1) v)
        fk.parent_cols vals)
    parents

let tuple_ok mode d fk t =
  let vals = child_values fk t in
  let any_null = List.exists Value.is_null vals in
  let all_null_match = parent_matches d fk ~match_null:true vals in
  let all_null = List.for_all Value.is_null vals in
  match mode with
  | Simple -> any_null || all_null_match
  | Partial -> all_null || parent_matches d fk ~match_null:false vals
  | Full -> (not any_null) && all_null_match

let violations mode d fk =
  Relational.Tuple.Set.fold
    (fun t acc -> if tuple_ok mode d fk t then acc else t :: acc)
    (Relational.Instance.tuples d fk.child)
    []

let satisfies mode d fk = violations mode d fk = []

let pp_mode ppf m =
  Fmt.string ppf
    (match m with Simple -> "simple" | Partial -> "partial" | Full -> "full")
