lib/semantics/sqlmatch.mli: Fmt Ic Relational
