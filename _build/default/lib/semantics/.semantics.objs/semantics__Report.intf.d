lib/semantics/report.mli: Fmt Ic Relational
