lib/semantics/liberal.ml: Assign Ic List Nullsat Relational
