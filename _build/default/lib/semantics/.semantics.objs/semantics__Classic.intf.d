lib/semantics/classic.mli: Ic Nullsat Relational
