lib/semantics/classic.ml: Assign Ic List Nullsat
