lib/semantics/report.ml: Classic Fmt Ic Liberal List Nullsat Option Sqlmatch
