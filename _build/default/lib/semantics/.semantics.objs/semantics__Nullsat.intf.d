lib/semantics/nullsat.mli: Assign Fmt Ic Relational
