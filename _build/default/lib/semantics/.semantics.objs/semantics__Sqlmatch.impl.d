lib/semantics/sqlmatch.ml: Array Fmt Ic List Relational
