lib/semantics/assign.ml: Array Fmt Hashtbl Ic Lazy List Map Option Relational String
