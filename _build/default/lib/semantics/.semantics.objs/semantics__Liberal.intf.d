lib/semantics/liberal.mli: Ic Nullsat Relational
