lib/semantics/assign.mli: Fmt Ic Relational
