lib/semantics/nullsat.ml: Array Assign Fmt Ic List Option Relational String
