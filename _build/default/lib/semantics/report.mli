(** Side-by-side comparison of the satisfaction semantics of Section 3. *)

type semantics = NullAware | ClassicFo | Liberal10 | SqlSimple | SqlPartial | SqlFull

val all : semantics list
val pp_semantics : semantics Fmt.t

val satisfies :
  semantics -> Relational.Instance.t -> Ic.Constr.t -> bool option
(** [None] when the semantics does not apply to the constraint (the SQL
    match semantics are defined for foreign-key-shaped RICs only). *)

type row = {
  ic : Ic.Constr.t;
  verdicts : (semantics * bool option) list;
}

val compare_semantics : Relational.Instance.t -> Ic.Constr.t list -> row list

val violation_counts :
  Relational.Instance.t -> Ic.Constr.t list -> (semantics * int) list
(** Total number of constraint violations per applicable semantics (used by
    bench table E6). *)

val pp_row : row Fmt.t
