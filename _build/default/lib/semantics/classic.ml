let generic_violations d g ic =
  let matches = Assign.join_with_witness d Assign.empty g.Ic.Constr.ante in
  List.filter_map
    (fun (theta, witness) ->
      if Nullsat.consequent_holds d g theta then None
      else Some { Nullsat.ic; theta; matched = witness })
    matches

let violations d ic =
  match ic with
  | Ic.Constr.Generic g -> generic_violations d g ic
  | Ic.Constr.NotNull _ -> Nullsat.violations d ic

let satisfies d ic = violations d ic = []
let consistent d ics = List.for_all (satisfies d) ics
