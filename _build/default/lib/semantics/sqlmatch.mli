(** The three SQL:2003 match semantics for referential constraints
    (Section 3, Examples 4-5): simple match (the one commercial DBMSs
    implement), partial match and full match. *)

type fk = {
  child : string;
  child_cols : int list;   (** referencing positions, 1-based *)
  parent : string;
  parent_cols : int list;  (** referenced positions, 1-based, same length *)
}

val fk_of_ric : Ic.Constr.t -> fk option
(** Extract the foreign-key shape from an inclusion dependency: child
    columns are the positions of the antecedent variables reused in the
    consequent, parent columns their positions there.  Works for RICs of
    form (3) (partial inclusion) and for single-atom UICs (full inclusion,
    as in Example 4).  [None] if the constraint has several antecedent or
    consequent atoms, a built-in part, no shared variables, or reuses a
    shared variable more than once on either side. *)

type mode = Simple | Partial | Full

val tuple_ok : mode -> Relational.Instance.t -> fk -> Relational.Tuple.t -> bool
(** Is a child tuple acceptable?
    - [Simple]: some referencing value is [null], or a parent tuple matches
      all referencing values exactly.
    - [Partial]: a parent tuple matches all non-null referencing values.
    - [Full]: all referencing values are non-null and a parent tuple matches
      them all. *)

val satisfies : mode -> Relational.Instance.t -> fk -> bool

val violations : mode -> Relational.Instance.t -> fk -> Relational.Tuple.t list

val pp_mode : mode Fmt.t
