(** The liberal null semantics of [10] (Bravo & Bertossi, CASCON 2004):
    a tuple containing a null value {e anywhere} never causes an
    inconsistency, relevant attribute or not (discussion around Example 4
    and after Definition 4).

    Under this semantics [{P(b, null)}] satisfies [P(x,y) -> R(x)] even
    though the null is irrelevant to the constraint — the behaviour the
    paper's [|=_N] corrects. *)

val satisfies : Relational.Instance.t -> Ic.Constr.t -> bool
val violations : Relational.Instance.t -> Ic.Constr.t -> Nullsat.violation list
val consistent : Relational.Instance.t -> Ic.Constr.t list -> bool
