(** Classical first-order IC satisfaction, with [null] treated as an
    ordinary constant and no special escape for it.

    This is the notion of [2] that the paper departs from; it serves as a
    baseline, and on null-free instances it coincides with [|=_N]
    (remark after Definition 4 — property-tested). *)

val satisfies : Relational.Instance.t -> Ic.Constr.t -> bool
(** For a NOT NULL-constraint this is the same classical check as
    [|=_N] (Definition 5). *)

val violations : Relational.Instance.t -> Ic.Constr.t -> Nullsat.violation list
val consistent : Relational.Instance.t -> Ic.Constr.t list -> bool
