type backend = Internal | Dlv of string | Clingo of string

let which exe =
  let paths = String.split_on_char ':' (try Sys.getenv "PATH" with Not_found -> "") in
  List.find_map
    (fun dir ->
      let p = Filename.concat dir exe in
      if Sys.file_exists p then Some p else None)
    (List.filter (fun d -> d <> "") paths)

let detect () =
  match which "dlv" with
  | Some p -> Dlv p
  | None -> ( match which "clingo" with Some p -> Clingo p | None -> Internal)

let backend_name = function
  | Internal -> "internal"
  | Dlv p -> "dlv (" ^ p ^ ")"
  | Clingo p -> "clingo (" ^ p ^ ")"

(* ------------------------------------------------------------------ *)
(* Answer-set output parsing *)

let parse_const s =
  let s = String.trim s in
  if s = "" then None
  else if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    Some (Syntax.Sym (Scanf.unescaped (String.sub s 1 (String.length s - 2))))
  else
    match int_of_string_opt s with
    | Some i -> Some (Syntax.Num i)
    | None -> Some (Syntax.Sym s)

(* split at top-level commas, respecting double quotes and parentheses (the
   same splitter serves atom argument lists and whole answer-set lines) *)
let split_args s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let in_quote = ref false in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '"' ->
          in_quote := not !in_quote;
          Buffer.add_char buf c
      | '(' when not !in_quote ->
          incr depth;
          Buffer.add_char buf c
      | ')' when not !in_quote ->
          decr depth;
          Buffer.add_char buf c
      | ',' when (not !in_quote) && !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let parse_atom s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None ->
      if s = "" then None else Some { Ground.gpred = s; gargs = [] }
  | Some i ->
      if String.length s < i + 2 || s.[String.length s - 1] <> ')' then None
      else
        let pred = String.sub s 0 i in
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        let args = List.map parse_const (split_args inner) in
        if List.for_all Option.is_some args then
          Some { Ground.gpred = pred; gargs = List.map Option.get args }
        else None

let sort_model m = List.sort_uniq Ground.compare_gatom m

let parse_dlv_output out =
  String.split_on_char '\n' out
  |> List.filter_map (fun line ->
         let line = String.trim line in
         let n = String.length line in
         if n >= 2 && line.[0] = '{' && line.[n - 1] = '}' then
           let inner = String.sub line 1 (n - 2) in
           let atoms =
             if String.trim inner = "" then []
             else List.filter_map parse_atom (split_args inner)
           in
           Some (sort_model atoms)
         else None)

let parse_clingo_output out =
  let lines = String.split_on_char '\n' out in
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest when String.length line >= 7 && String.sub line 0 7 = "Answer:" -> (
        match rest with
        | atoms_line :: rest' ->
            let atoms =
              String.split_on_char ' ' atoms_line
              |> List.filter_map (fun s ->
                     if String.trim s = "" then None else parse_atom s)
            in
            go (sort_model atoms :: acc) rest'
        | [] -> List.rev acc)
    | _ :: rest -> go acc rest
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* Running *)

let run_command cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents buf, status)

let internal_solve ?limit program =
  let g = Grounder.ground program in
  Solver.stable_models_atoms ?limit g |> List.map sort_model

let solve ?backend ?limit program =
  let backend = match backend with Some b -> b | None -> detect () in
  let external_result =
    match backend with
    | Internal -> None
    | Dlv bin -> (
        let file = Filename.temp_file "cqanull" ".dlv" in
        Printer.to_file Printer.Dlv file program;
        let n = match limit with Some l -> string_of_int l | None -> "0" in
        let cmd = Printf.sprintf "%s -silent -n=%s %s 2>/dev/null" bin n (Filename.quote file) in
        match run_command cmd with
        | out, Unix.WEXITED 0 -> Some (parse_dlv_output out)
        | _ -> None
        | exception _ -> None)
    | Clingo bin -> (
        let file = Filename.temp_file "cqanull" ".lp" in
        Printer.to_file Printer.Clingo file program;
        let n = match limit with Some l -> string_of_int l | None -> "0" in
        let cmd = Printf.sprintf "%s %s %s 2>/dev/null" bin n (Filename.quote file) in
        match run_command cmd with
        (* clingo exits 10/30 for SAT, 20 for UNSAT *)
        | out, Unix.WEXITED (10 | 20 | 30) -> Some (parse_clingo_output out)
        | _ -> None
        | exception _ -> None)
  in
  let models =
    match external_result with
    | Some models -> models
    | None -> internal_solve ?limit program
  in
  List.sort (List.compare Ground.compare_gatom) models
