(** The shift transformation [sh(Pi)] (Section 6): a head-cycle-free
    disjunctive program has the same stable models as the normal program
    obtained by replacing each disjunctive rule

    [p1 v ... v pn :- body]

    by the [n] rules [pi :- body, not p1, ..., not p(i-1), not p(i+1), ...,
    not pn].  Applying it to a non-HCF program is unsound (stable models can
    be lost) — callers are expected to check {!Hcf.is_hcf} first. *)

val program : Syntax.program -> Syntax.program
(** Syntactic shift of a (possibly non-ground) program. *)

val ground : Ground.t -> Ground.t
(** Shift of a ground program (shares the atom table shape but renumbers
    nothing: atom ids are preserved). *)
