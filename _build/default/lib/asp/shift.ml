let shift_rule (r : Syntax.rule) =
  match r.Syntax.head with
  | [] | [ _ ] -> [ r ]
  | head ->
      List.map
        (fun h ->
          let others = List.filter (fun h' -> not (Syntax.equal_atom h h')) head in
          {
            r with
            Syntax.head = [ h ];
            body_neg = r.Syntax.body_neg @ others;
          })
        head

let program p = List.concat_map shift_rule p

let ground g =
  let g' = Ground.create () in
  (* preserve atom ids by re-interning in order *)
  for i = 0 to Ground.atom_count g - 1 do
    ignore (Ground.intern g' (Ground.atom_of g i))
  done;
  Array.iter
    (fun (r : Ground.grule) ->
      match Array.length r.Ground.ghead with
      | 0 | 1 -> Ground.add_rule g' r
      | _ ->
          (* one disjunct per shifted rule, the others negated; the head
             and negative-body lists are converted once per rule, not once
             per disjunct *)
          let head = Array.to_list r.Ground.ghead in
          let gneg = Array.to_list r.Ground.gneg in
          List.iter
            (fun h ->
              let others = List.filter (fun h' -> h' <> h) head in
              let neg =
                Array.of_list (List.sort_uniq Int.compare (others @ gneg))
              in
              Ground.add_rule g'
                { Ground.ghead = [| h |]; gpos = r.Ground.gpos; gneg = neg })
            head)
    (Ground.rules g);
  (* shifting is always followed by solving: build the occurrence index of
     the result eagerly so it is not charged to the first propagation *)
  ignore (Ground.index g');
  g'
