(** Abstract syntax of disjunctive logic programs with negation as failure
    and comparison built-ins — the language of the repair programs of
    Definition 9, as accepted by DLV [24] and clingo.

    A rule is

    [h1 v ... v hk :- p1, ..., pm, not n1, ..., not nl, c1, ..., cj.]

    with [k = 0] encoding a (program) integrity constraint and
    [m = l = j = 0] a fact. *)

type const = Sym of string | Num of int

val sym : string -> const
val num : int -> const
val compare_const : const -> const -> int
val equal_const : const -> const -> bool
val pp_const : const Fmt.t

type term = Var of string | Const of const

val var : string -> term
val csym : string -> term
val cnum : int -> term
val pp_term : term Fmt.t
val equal_term : term -> term -> bool

type atom = { pred : string; args : term list }

val atom : string -> term list -> atom
val atom_vars : atom -> string list
val pp_atom : atom Fmt.t
val equal_atom : atom -> atom -> bool
val compare_atom : atom -> atom -> int

type cmp_op = Eq | Neq | Lt | Leq | Gt | Geq

type builtin = { op : cmp_op; lhs : term; rhs : term }

val builtin : cmp_op -> term -> term -> builtin
val builtin_vars : builtin -> string list
val eval_builtin : cmp_op -> const -> const -> bool
(** Total order: numbers before symbols, numerically / lexicographically
    within a kind (DLV's built-in ordering on the combined universe). *)

val pp_builtin : builtin Fmt.t

type rule = {
  head : atom list;
  body_pos : atom list;
  body_neg : atom list;
  body_builtin : builtin list;
}

val rule :
  ?body_pos:atom list -> ?body_neg:atom list -> ?body_builtin:builtin list ->
  atom list -> rule

val fact : atom -> rule
val constraint_ :
  ?body_pos:atom list -> ?body_neg:atom list -> ?body_builtin:builtin list ->
  unit -> rule

val rule_vars : rule -> string list
val is_fact : rule -> bool
val is_constraint : rule -> bool
val is_disjunctive : rule -> bool
val pp_rule : rule Fmt.t

type program = rule list

val pp_program : program Fmt.t
val predicates : program -> (string * int) list
(** All predicates with arities, sorted, deduplicated. *)
