lib/asp/printer.ml: Fun List Printf String Syntax
