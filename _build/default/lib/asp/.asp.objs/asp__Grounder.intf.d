lib/asp/grounder.mli: Ground Syntax
