lib/asp/safety.ml: Fmt List String Syntax
