lib/asp/hcf.ml: Array Ground List Option
