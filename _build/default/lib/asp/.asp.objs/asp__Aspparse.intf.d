lib/asp/aspparse.mli: Printer Syntax
