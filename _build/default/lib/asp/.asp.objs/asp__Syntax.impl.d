lib/asp/syntax.ml: Fmt Int List String
