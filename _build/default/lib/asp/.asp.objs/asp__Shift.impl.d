lib/asp/shift.ml: Array Ground Int List Syntax
