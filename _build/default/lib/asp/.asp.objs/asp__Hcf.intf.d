lib/asp/hcf.mli: Ground
