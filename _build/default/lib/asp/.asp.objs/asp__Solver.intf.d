lib/asp/solver.mli: Fmt Ground
