lib/asp/shift.mli: Ground Syntax
