lib/asp/extsolver.ml: Buffer Filename Ground Grounder List Option Printer Printf Scanf Solver String Syntax Sys Unix
