lib/asp/extsolver.mli: Ground Syntax
