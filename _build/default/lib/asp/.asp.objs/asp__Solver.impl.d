lib/asp/solver.ml: Array Fmt Ground Int List Queue Set
