lib/asp/solver.ml: Array Fmt Ground Hashtbl Int List Set
