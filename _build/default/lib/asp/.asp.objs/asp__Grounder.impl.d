lib/asp/grounder.ml: Array Ground Hashtbl Int List Option Printf Safety Set Syntax
