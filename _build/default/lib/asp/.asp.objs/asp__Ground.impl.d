lib/asp/ground.ml: Array Fmt Hashtbl List String Syntax
