lib/asp/printer.mli: Syntax
