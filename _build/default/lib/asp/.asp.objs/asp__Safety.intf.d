lib/asp/safety.mli: Syntax
