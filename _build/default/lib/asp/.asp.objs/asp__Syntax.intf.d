lib/asp/syntax.mli: Fmt
