lib/asp/aspparse.ml: In_channel List Printer Printf Scanf String Syntax
