lib/asp/ground.mli: Fmt Syntax
