exception Budget_exceeded of int

type stats = {
  mutable decisions : int;
  mutable propagations : int;
  mutable candidates : int;
  mutable minimality_checks : int;
}

let new_stats () =
  { decisions = 0; propagations = 0; candidates = 0; minimality_checks = 0 }

let pp_stats ppf s =
  Fmt.pf ppf "decisions=%d propagations=%d candidates=%d minimality_checks=%d"
    s.decisions s.propagations s.candidates s.minimality_checks

(* Assignment values *)
let unk = 0
let tru = 1
let fls = 2

module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Gelfond-Lifschitz reduct and stability checking *)

let reduct rules m_set =
  rules
  |> Array.to_list
  |> List.filter_map (fun (r : Ground.grule) ->
         if Array.exists (fun x -> Iset.mem x m_set) r.Ground.gneg then None
         else Some (r.Ground.ghead, r.Ground.gpos))

(* Least model of the definite part of a positive reduct (all heads
   singletons; empty heads are constraints and must have unsatisfied
   bodies). *)
let normal_reduct_stable reduct_rules m_set =
  let derived = Hashtbl.create 64 in
  let changed = ref true in
  let holds x = Hashtbl.mem derived x in
  while !changed do
    changed := false;
    List.iter
      (fun (head, pos) ->
        match head with
        | [| h |] ->
            if (not (holds h)) && Array.for_all holds pos then begin
              Hashtbl.add derived h ();
              changed := true
            end
        | _ -> ())
      reduct_rules
  done;
  let lfp = Hashtbl.fold (fun x () acc -> Iset.add x acc) derived Iset.empty in
  Iset.equal lfp m_set

(* Search for a model of the positive reduct properly contained in M.
   Clauses range over the atoms of M only: a reduct rule with some positive
   body atom outside M is vacuously satisfied by any M' ⊆ M, and head atoms
   outside M are false in any such M'. *)
let exists_smaller_model ?stats reduct_rules m_set =
  (match stats with Some s -> s.minimality_checks <- s.minimality_checks + 1 | None -> ());
  let atoms = Array.of_list (Iset.elements m_set) in
  let n = Array.length atoms in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i x -> Hashtbl.replace index x i) atoms;
  let clauses =
    List.filter_map
      (fun (head, pos) ->
        if Array.for_all (fun p -> Iset.mem p m_set) pos then
          let head_in =
            Array.to_list head
            |> List.filter_map (fun h -> Hashtbl.find_opt index h)
          in
          let pos_in = Array.to_list pos |> List.map (Hashtbl.find index) in
          (* clause: one of head_in true, or one of pos_in false *)
          Some (Array.of_list head_in, Array.of_list pos_in)
        else None)
      reduct_rules
  in
  let value = Array.make n unk in
  let trail = ref [] in
  let assign i v =
    value.(i) <- v;
    trail := i :: !trail
  in
  let undo_to mark =
    let rec go () =
      if !trail != mark then
        match !trail with
        | [] -> ()
        | i :: rest ->
            value.(i) <- unk;
            trail := rest;
            go ()
    in
    go ()
  in
  let exception Conflict in
  let exception Found in
  (* propagate all clauses once; returns true if any assignment was made *)
  let propagate_once () =
    let progress = ref false in
    List.iter
      (fun (head, pos) ->
        let satisfied =
          Array.exists (fun h -> value.(h) = tru) head
          || Array.exists (fun p -> value.(p) = fls) pos
        in
        if not satisfied then begin
          let unassigned = ref [] in
          Array.iter (fun h -> if value.(h) = unk then unassigned := `H h :: !unassigned) head;
          Array.iter (fun p -> if value.(p) = unk then unassigned := `P p :: !unassigned) pos;
          match !unassigned with
          | [] -> raise Conflict
          | [ `H h ] ->
              assign h tru;
              progress := true
          | [ `P p ] ->
              assign p fls;
              progress := true
          | _ -> ()
        end)
      clauses;
    !progress
  in
  let propagate () = while propagate_once () do () done in
  let all_satisfied () =
    List.for_all
      (fun (head, pos) ->
        Array.exists (fun h -> value.(h) = tru) head
        || Array.exists (fun p -> value.(p) = fls) pos)
      clauses
  in
  let proper () =
    (* with unassigned atoms completed to false: proper subset iff some atom
       is false or unassigned *)
    Array.exists (fun v -> v <> tru) value
  in
  let rec search () =
    let mark = !trail in
    (try
       propagate ();
       if all_satisfied () then begin
         if proper () then raise Found
       end
       else begin
         (* branch on an unassigned atom of an unsatisfied clause *)
         let pick =
           List.find_map
             (fun (head, pos) ->
               let satisfied =
                 Array.exists (fun h -> value.(h) = tru) head
                 || Array.exists (fun p -> value.(p) = fls) pos
               in
               if satisfied then None
               else
                 let cand = ref None in
                 Array.iter (fun h -> if !cand = None && value.(h) = unk then cand := Some h) head;
                 Array.iter (fun p -> if !cand = None && value.(p) = unk then cand := Some p) pos;
                 !cand)
             clauses
         in
         match pick with
         | None -> ()
         | Some i ->
             let mark2 = !trail in
             assign i fls;
             search ();
             undo_to mark2;
             assign i tru;
             search ();
             undo_to mark2
       end
     with Conflict -> ());
    undo_to mark
  in
  try
    search ();
    false
  with Found -> true

let is_stable_in rules ?stats m =
  let m_set = Iset.of_list m in
  (* M must classically satisfy every rule *)
  let models_rule (r : Ground.grule) =
    Array.exists (fun h -> Iset.mem h m_set) r.Ground.ghead
    || Array.exists (fun p -> not (Iset.mem p m_set)) r.Ground.gpos
    || Array.exists (fun x -> Iset.mem x m_set) r.Ground.gneg
  in
  Array.for_all models_rule rules
  &&
  let red = reduct rules m_set in
  let normal = List.for_all (fun (h, _) -> Array.length h <= 1) red in
  if normal then normal_reduct_stable red m_set
  else
    (* constraints of the reduct are classically satisfied by M; minimality
       is the remaining question *)
    not (exists_smaller_model ?stats red m_set)

let is_stable_model g m = is_stable_in (Ground.rules g) m

(* ------------------------------------------------------------------ *)
(* Enumeration of stable models *)

let stable_models ?limit ?(max_decisions = 10_000_000) ?(support_propagation = true)
    ?stats g =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let rules = Ground.rules g in
  let n = Ground.atom_count g in
  let value = Array.make n unk in
  (* supporting rules per atom: a stable model cannot hold an atom whose
     every head-rule has a classically false body *)
  let supporters = Array.make n [] in
  Array.iter
    (fun (r : Ground.grule) ->
      Array.iter (fun h -> supporters.(h) <- r :: supporters.(h)) r.Ground.ghead)
    rules;
  (* atoms in no head are false in every stable model *)
  for i = 0 to n - 1 do
    if supporters.(i) = [] then value.(i) <- fls
  done;
  let trail = ref [] in
  let assign i v =
    value.(i) <- v;
    trail := i :: !trail;
    stats.propagations <- stats.propagations + 1
  in
  let undo_to mark =
    let rec go () =
      if !trail != mark then
        match !trail with
        | [] -> ()
        | i :: rest ->
            value.(i) <- unk;
            trail := rest;
            go ()
    in
    go ()
  in
  let exception Conflict in
  let exception Done in
  let models = ref [] in
  let count = ref 0 in
  let rule_satisfied (r : Ground.grule) =
    Array.exists (fun h -> value.(h) = tru) r.Ground.ghead
    || Array.exists (fun p -> value.(p) = fls) r.Ground.gpos
    || Array.exists (fun x -> value.(x) = tru) r.Ground.gneg
  in
  let propagate_once () =
    let progress = ref false in
    Array.iter
      (fun (r : Ground.grule) ->
        if not (rule_satisfied r) then begin
          let unassigned = ref [] in
          let note kind i = unassigned := (kind, i) :: !unassigned in
          Array.iter (fun h -> if value.(h) = unk then note `T h) r.Ground.ghead;
          Array.iter (fun p -> if value.(p) = unk then note `F p) r.Ground.gpos;
          Array.iter (fun x -> if value.(x) = unk then note `T x) r.Ground.gneg;
          match !unassigned with
          | [] -> raise Conflict
          | [ (`T, i) ] ->
              assign i tru;
              progress := true
          | [ (`F, i) ] ->
              assign i fls;
              progress := true
          | _ -> ()
        end)
      rules;
    !progress
  in
  (* support propagation: for every true atom, some rule with it in the
     head must keep a body that can still become classically true; when a
     single such rule remains, its body is forced.  (Sound for stable
     models: if every supporter of a true atom had a false body, removing
     the atom would still model the reduct, contradicting minimality.) *)
  let body_false (r : Ground.grule) =
    Array.exists (fun p -> value.(p) = fls) r.Ground.gpos
    || Array.exists (fun x -> value.(x) = tru) r.Ground.gneg
  in
  let support_once () =
    let progress = ref false in
    for i = 0 to n - 1 do
      if value.(i) = tru then begin
        match List.filter (fun r -> not (body_false r)) supporters.(i) with
        | [] -> raise Conflict
        | [ r ] ->
            Array.iter
              (fun p ->
                if value.(p) = unk then begin
                  assign p tru;
                  progress := true
                end)
              r.Ground.gpos;
            Array.iter
              (fun x ->
                if value.(x) = unk then begin
                  assign x fls;
                  progress := true
                end)
              r.Ground.gneg
        | _ -> ()
      end
    done;
    !progress
  in
  let propagate () =
    let continue_ = ref true in
    while !continue_ do
      let a = propagate_once () in
      let b = support_propagation && support_once () in
      continue_ := a || b
    done
  in
  let pick_branch () =
    let cand = ref None in
    (try
       Array.iter
         (fun (r : Ground.grule) ->
           if (not (rule_satisfied r)) && !cand = None then begin
             Array.iter
               (fun h -> if !cand = None && value.(h) = unk then cand := Some h)
               r.Ground.ghead;
             Array.iter
               (fun p -> if !cand = None && value.(p) = unk then cand := Some p)
               r.Ground.gpos;
             Array.iter
               (fun x -> if !cand = None && value.(x) = unk then cand := Some x)
               r.Ground.gneg;
             if !cand <> None then raise Exit
           end)
         rules
     with Exit -> ());
    !cand
  in
  let record_candidate () =
    stats.candidates <- stats.candidates + 1;
    let m = ref [] in
    for i = n - 1 downto 0 do
      if value.(i) = tru then m := i :: !m
    done;
    let m = !m in
    if is_stable_in rules ~stats m then begin
      models := m :: !models;
      incr count;
      match limit with Some l when !count >= l -> raise Done | _ -> ()
    end
  in
  let rec search () =
    let mark = !trail in
    (try
       propagate ();
       match pick_branch () with
       | None -> record_candidate ()
       | Some i ->
           stats.decisions <- stats.decisions + 1;
           if stats.decisions > max_decisions then
             raise (Budget_exceeded max_decisions);
           let mark2 = !trail in
           assign i fls;
           search ();
           undo_to mark2;
           assign i tru;
           search ();
           undo_to mark2
     with Conflict -> ());
    undo_to mark
  in
  (try search () with Done -> ());
  (* deterministic order: sort models *)
  List.sort (List.compare Int.compare) !models

let stable_models_atoms ?limit ?max_decisions ?stats g =
  stable_models ?limit ?max_decisions ?stats g
  |> List.map (fun m -> Ground.model_atoms g m)

let cautious ?max_decisions g =
  match stable_models ?max_decisions g with
  | [] -> []
  | m :: rest ->
      List.fold_left
        (fun acc model -> List.filter (fun x -> List.mem x model) acc)
        m rest

let brave ?max_decisions g =
  List.sort_uniq Int.compare (List.concat (stable_models ?max_decisions g))
