(** Rule safety: every variable occurring in the head, in a negated body
    literal or in a built-in must also occur in a positive body atom.
    Safety guarantees domain-independent grounding. *)

val check_rule : Syntax.rule -> (unit, string) result
val check : Syntax.program -> (unit, string) result
val unsafe_vars : Syntax.rule -> string list
