(** Head-cycle-freeness of ground disjunctive programs [8] (Section 6).

    The dependency graph of a ground program has its atoms as vertices and
    an edge from [A] to [B] whenever some rule has [A] positive in the body
    and [B] in the head.  The program is head-cycle-free (HCF) iff no
    directed cycle passes through two atoms in the head of the same rule —
    equivalently, no rule has two head atoms in the same strongly connected
    component. *)

val sccs : Ground.t -> int array
(** Map from atom id to SCC id. *)

val is_hcf : Ground.t -> bool

val offending_rule : Ground.t -> Ground.grule option
(** A rule with two head atoms on a common cycle, if any. *)
