(** External answer-set solver driver.

    The paper runs its repair programs on the DLV system [24].  This driver
    shells out to [dlv] (or [clingo]) when one is installed, exporting the
    program in the corresponding dialect and parsing the printed answer
    sets; when neither binary is present it falls back to the internal
    grounder + solver, so the library works in sealed environments.  The
    output parsers are exposed for testing without the binaries. *)

type backend = Internal | Dlv of string | Clingo of string

val detect : unit -> backend
(** First of [dlv], [clingo] found on PATH, else [Internal]. *)

val backend_name : backend -> string

val parse_atom : string -> Ground.gatom option
(** Parse [pred] or [pred(c1,...,cn)] with numeric, bare-symbol or
    double-quoted constants. *)

val parse_dlv_output : string -> Ground.gatom list list
(** Answer sets from DLV's [{a, b(1)}] lines. *)

val parse_clingo_output : string -> Ground.gatom list list
(** Answer sets from clingo's [Answer: n] / atom-line output. *)

val solve :
  ?backend:backend -> ?limit:int -> Syntax.program -> Ground.gatom list list
(** Answer sets of the program, sorted within each model and across models.
    Falls back to the internal solver if the external invocation fails. *)
