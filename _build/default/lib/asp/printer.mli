(** Concrete-syntax output for external solvers.

    [Dlv] prints disjunction as [v] (the DLV system [24] the paper used);
    [Clingo] prints it as [|] and is accepted by clingo/gringo. *)

type dialect = Dlv | Clingo

val rule_to_string : dialect -> Syntax.rule -> string
val program_to_string : dialect -> Syntax.program -> string
val to_file : dialect -> string -> Syntax.program -> unit

val escape_const : Syntax.const -> string
(** ASP constant spelling: lowercased/quoted symbols, verbatim numbers.
    Symbols that are not valid bare ASP constants are single-quoted. *)
