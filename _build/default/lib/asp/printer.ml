type dialect = Dlv | Clingo

let bare_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let escape_const = function
  | Syntax.Num i -> string_of_int i
  | Syntax.Sym s -> if bare_ok s then s else "\"" ^ String.escaped s ^ "\""

let term_to_string = function
  | Syntax.Var x -> String.capitalize_ascii x
  | Syntax.Const c -> escape_const c

let atom_to_string (a : Syntax.atom) =
  match a.Syntax.args with
  | [] -> a.Syntax.pred
  | args ->
      Printf.sprintf "%s(%s)" a.Syntax.pred
        (String.concat "," (List.map term_to_string args))

let op_to_string = function
  | Syntax.Eq -> "="
  | Syntax.Neq -> "!="
  | Syntax.Lt -> "<"
  | Syntax.Leq -> "<="
  | Syntax.Gt -> ">"
  | Syntax.Geq -> ">="

let builtin_to_string (b : Syntax.builtin) =
  Printf.sprintf "%s %s %s" (term_to_string b.Syntax.lhs)
    (op_to_string b.Syntax.op)
    (term_to_string b.Syntax.rhs)

let rule_to_string dialect (r : Syntax.rule) =
  let disj = match dialect with Dlv -> " v " | Clingo -> " | " in
  let head = String.concat disj (List.map atom_to_string r.Syntax.head) in
  let body =
    List.map atom_to_string r.Syntax.body_pos
    @ List.map (fun a -> "not " ^ atom_to_string a) r.Syntax.body_neg
    @ List.map builtin_to_string r.Syntax.body_builtin
  in
  match r.Syntax.head, body with
  | [], _ -> Printf.sprintf ":- %s." (String.concat ", " body)
  | _, [] -> head ^ "."
  | _ -> Printf.sprintf "%s :- %s." head (String.concat ", " body)

let program_to_string dialect p =
  String.concat "\n" (List.map (rule_to_string dialect) p) ^ "\n"

let to_file dialect path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (program_to_string dialect p))
