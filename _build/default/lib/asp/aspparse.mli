(** Parser for the DLV/clingo concrete syntax emitted by {!Printer} —
    closes the loop with external solvers and lets the CLI solve hand-written
    programs.

    Accepted grammar (a practical common subset of both dialects):
    {v
    rule     := [head] [":-" body] "."
    head     := atom (("v" | "|" | ";") atom)*
    body     := lit ("," lit)*
    lit      := ["not"] atom | term op term
    atom     := ident ["(" term ("," term)* ")"]
    term     := VARIABLE | integer | ident | "quoted string"
    op       := = | != | <> | < | <= | > | >=
    v}
    [%] and [#] start line comments ([#show] etc. directives are skipped).
    Identifiers beginning with an uppercase letter or [_] are variables. *)

exception Parse_error of string * int

val parse : string -> Syntax.program
(** @raise Parse_error with a line number on malformed input. *)

val parse_file : string -> Syntax.program

val roundtrip : Printer.dialect -> Syntax.program -> Syntax.program
(** [parse (Printer.program_to_string dialect p)] — used by tests. *)
