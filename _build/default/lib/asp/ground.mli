(** Ground programs: atoms interned to dense integer ids. *)

type gatom = { gpred : string; gargs : Syntax.const list }

val pp_gatom : gatom Fmt.t
val compare_gatom : gatom -> gatom -> int

type grule = {
  ghead : int array;  (** empty = integrity constraint *)
  gpos : int array;
  gneg : int array;
}

type t

val create : unit -> t
val intern : t -> gatom -> int
val find : t -> gatom -> int option
val atom_of : t -> int -> gatom
val atom_count : t -> int
val add_rule : t -> grule -> unit
val rules : t -> grule array
val rule_count : t -> int

val pp_rule : t -> grule Fmt.t
val pp : t Fmt.t

val model_atoms : t -> int list -> gatom list
(** Resolve a set of atom ids into ground atoms, sorted. *)
