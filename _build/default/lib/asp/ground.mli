(** Ground programs: atoms interned to dense integer ids. *)

type gatom = { gpred : string; gargs : Syntax.const list }

val pp_gatom : gatom Fmt.t
val compare_gatom : gatom -> gatom -> int

type grule = {
  ghead : int array;  (** empty = integrity constraint *)
  gpos : int array;
  gneg : int array;
}

type index = {
  idx_rules : grule array;  (** the rules, in insertion order *)
  head_occ : int array array;
      (** [head_occ.(a)] lists the indexes into [idx_rules] of the rules
          mentioning atom [a] in their head, one entry {e per occurrence}
          (an atom repeated in one head contributes repeated entries, so
          occurrence counts and the solver's per-rule counters agree) *)
  pos_occ : int array array;  (** same, for positive-body occurrences *)
  neg_occ : int array array;  (** same, for negative-body occurrences *)
}
(** Occurrence index of a ground program: which rules mention atom [a]
    where.  Built once per program and shared by every solver pass over it
    (unit propagation, support propagation, reduct construction). *)

type t

val create : unit -> t
val intern : t -> gatom -> int
val find : t -> gatom -> int option
val atom_of : t -> int -> gatom
val atom_count : t -> int
val add_rule : t -> grule -> unit
val rules : t -> grule array
val rule_count : t -> int

val index : t -> index
(** The occurrence index, built on first use and cached; adding a rule or
    interning a new atom invalidates the cache.  [idx_rules] is shared with
    the cached index, so callers must not mutate it. *)

val pp_rule : t -> grule Fmt.t
val pp : t Fmt.t

val model_atoms : t -> int list -> gatom list
(** Resolve a set of atom ids into ground atoms, sorted. *)
