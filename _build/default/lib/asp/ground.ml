type gatom = { gpred : string; gargs : Syntax.const list }

let pp_gatom ppf a =
  match a.gargs with
  | [] -> Fmt.string ppf a.gpred
  | args ->
      Fmt.pf ppf "%s(%a)" a.gpred Fmt.(list ~sep:(any ",") Syntax.pp_const) args

let compare_gatom a b =
  let c = String.compare a.gpred b.gpred in
  if c <> 0 then c else List.compare Syntax.compare_const a.gargs b.gargs

type grule = { ghead : int array; gpos : int array; gneg : int array }

type index = {
  idx_rules : grule array;
  head_occ : int array array;
  pos_occ : int array array;
  neg_occ : int array array;
}

type t = {
  ids : (gatom, int) Hashtbl.t;
  mutable names : gatom array;
  mutable next : int;
  mutable rule_list : grule list;
  mutable nrules : int;
  mutable idx : index option;
}

let create () =
  { ids = Hashtbl.create 256; names = Array.make 256 { gpred = ""; gargs = [] };
    next = 0; rule_list = []; nrules = 0; idx = None }

let intern t a =
  match Hashtbl.find_opt t.ids a with
  | Some i -> i
  | None ->
      let i = t.next in
      if i >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) a in
        Array.blit t.names 0 bigger 0 (Array.length t.names);
        t.names <- bigger
      end;
      t.names.(i) <- a;
      Hashtbl.add t.ids a i;
      t.next <- i + 1;
      t.idx <- None;
      i

let find t a = Hashtbl.find_opt t.ids a
let atom_of t i = t.names.(i)
let atom_count t = t.next

let add_rule t r =
  t.rule_list <- r :: t.rule_list;
  t.nrules <- t.nrules + 1;
  t.idx <- None

let rules t = Array.of_list (List.rev t.rule_list)
let rule_count t = t.nrules

(* Occurrence lists are built by a counting pass followed by a fill pass,
   so each per-atom array is allocated exactly once at its final size.  An
   atom occurring k times in one rule contributes k entries — the solver's
   counters are occurrence counts, and the two must agree. *)
let build_index t =
  let rs = rules t in
  let n = atom_count t in
  let count_h = Array.make n 0
  and count_p = Array.make n 0
  and count_n = Array.make n 0 in
  Array.iter
    (fun r ->
      Array.iter (fun a -> count_h.(a) <- count_h.(a) + 1) r.ghead;
      Array.iter (fun a -> count_p.(a) <- count_p.(a) + 1) r.gpos;
      Array.iter (fun a -> count_n.(a) <- count_n.(a) + 1) r.gneg)
    rs;
  let alloc counts = Array.init n (fun a -> Array.make counts.(a) 0) in
  let head_occ = alloc count_h
  and pos_occ = alloc count_p
  and neg_occ = alloc count_n in
  let fill_h = Array.make n 0
  and fill_p = Array.make n 0
  and fill_n = Array.make n 0 in
  Array.iteri
    (fun ri r ->
      Array.iter
        (fun a -> head_occ.(a).(fill_h.(a)) <- ri; fill_h.(a) <- fill_h.(a) + 1)
        r.ghead;
      Array.iter
        (fun a -> pos_occ.(a).(fill_p.(a)) <- ri; fill_p.(a) <- fill_p.(a) + 1)
        r.gpos;
      Array.iter
        (fun a -> neg_occ.(a).(fill_n.(a)) <- ri; fill_n.(a) <- fill_n.(a) + 1)
        r.gneg)
    rs;
  { idx_rules = rs; head_occ; pos_occ; neg_occ }

let index t =
  match t.idx with
  | Some idx -> idx
  | None ->
      let idx = build_index t in
      t.idx <- Some idx;
      idx

let pp_rule t ppf r =
  let atoms l = Array.to_list (Array.map (atom_of t) l) in
  let head = atoms r.ghead and pos = atoms r.gpos and neg = atoms r.gneg in
  let body =
    List.map (Fmt.str "%a" pp_gatom) pos
    @ List.map (Fmt.str "not %a" pp_gatom) neg
  in
  match head, body with
  | [], _ -> Fmt.pf ppf ":- %s." (String.concat ", " body)
  | _, [] -> Fmt.pf ppf "%a." Fmt.(list ~sep:(any " v ") pp_gatom) head
  | _ ->
      Fmt.pf ppf "%a :- %s."
        Fmt.(list ~sep:(any " v ") pp_gatom)
        head (String.concat ", " body)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf r -> pp_rule t ppf r))
    (List.rev t.rule_list)

let model_atoms t ids =
  List.sort compare_gatom (List.map (atom_of t) ids)
