exception Parse_error of string * int

type token =
  | TIdent of string      (* lowercase identifier *)
  | TVar of string        (* capitalized identifier or _x *)
  | TInt of int
  | TStr of string
  | TLparen | TRparen | TComma | TDot
  | TIf                   (* :- *)
  | TDisj                 (* v, |, ; *)
  | TNot
  | TOp of Syntax.cmp_op
  | TEof

let tokenize input =
  let n = String.length input in
  let line = ref 1 in
  let tokens = ref [] in
  let i = ref 0 in
  let emit t = tokens := (t, !line) :: !tokens in
  let error msg = raise (Parse_error (msg, !line)) in
  let is_ident_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
    | _ -> false
  in
  while !i < n do
    (match input.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '%' | '#' ->
        while !i < n && input.[!i] <> '\n' do
          incr i
        done
    | '(' -> emit TLparen; incr i
    | ')' -> emit TRparen; incr i
    | ',' -> emit TComma; incr i
    | '.' -> emit TDot; incr i
    | ';' | '|' -> emit TDisj; incr i
    | ':' ->
        if !i + 1 < n && input.[!i + 1] = '-' then begin
          emit TIf;
          i := !i + 2
        end
        else error "expected ':-'"
    | '=' -> emit (TOp Syntax.Eq); incr i
    | '!' ->
        if !i + 1 < n && input.[!i + 1] = '=' then begin
          emit (TOp Syntax.Neq);
          i := !i + 2
        end
        else error "expected '!='"
    | '<' ->
        if !i + 1 < n && input.[!i + 1] = '=' then begin
          emit (TOp Syntax.Leq);
          i := !i + 2
        end
        else if !i + 1 < n && input.[!i + 1] = '>' then begin
          emit (TOp Syntax.Neq);
          i := !i + 2
        end
        else begin
          emit (TOp Syntax.Lt);
          incr i
        end
    | '>' ->
        if !i + 1 < n && input.[!i + 1] = '=' then begin
          emit (TOp Syntax.Geq);
          i := !i + 2
        end
        else begin
          emit (TOp Syntax.Gt);
          incr i
        end
    | '"' ->
        let start = !i + 1 in
        let j = ref start in
        while !j < n && input.[!j] <> '"' do
          if input.[!j] = '\n' then incr line;
          incr j
        done;
        if !j >= n then error "unterminated string";
        emit (TStr (Scanf.unescaped (String.sub input start (!j - start))));
        i := !j + 1
    | '-' | '0' .. '9' ->
        let start = !i in
        if input.[!i] = '-' then incr i;
        let j = ref !i in
        while !j < n && match input.[!j] with '0' .. '9' -> true | _ -> false do
          incr j
        done;
        if !j = !i then error "expected digits";
        emit (TInt (int_of_string (String.sub input start (!j - start))));
        i := !j
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        let j = ref !i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input start (!j - start) in
        i := !j;
        (match word with
        | "v" -> emit TDisj
        | "not" -> emit TNot
        | _ ->
            (match word.[0] with
            | 'A' .. 'Z' | '_' -> emit (TVar word)
            | _ -> emit (TIdent word)))
    | c -> error (Printf.sprintf "unexpected character %C" c));
  done;
  emit TEof;
  List.rev !tokens

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (TEof, 0) | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg =
  let _, line = peek st in
  raise (Parse_error (msg, line))

let parse_term st =
  match fst (peek st) with
  | TVar x ->
      advance st;
      Syntax.Var (String.capitalize_ascii x)
  | TInt i ->
      advance st;
      Syntax.cnum i
  | TIdent s ->
      advance st;
      Syntax.csym s
  | TStr s ->
      advance st;
      Syntax.csym s
  | _ -> error st "expected a term"

let parse_atom_from st name =
  match fst (peek st) with
  | TLparen ->
      advance st;
      let rec args acc =
        let t = parse_term st in
        match fst (peek st) with
        | TComma ->
            advance st;
            args (t :: acc)
        | TRparen ->
            advance st;
            List.rev (t :: acc)
        | _ -> error st "expected ',' or ')'"
      in
      Syntax.atom name (args [])
  | _ -> Syntax.atom name []

(* a body literal: atom, negated atom, or comparison *)
type blit =
  | BPos of Syntax.atom
  | BNeg of Syntax.atom
  | BCmp of Syntax.builtin

let parse_body_lit st =
  match fst (peek st) with
  | TNot -> (
      advance st;
      match fst (peek st) with
      | TIdent name ->
          advance st;
          BNeg (parse_atom_from st name)
      | _ -> error st "expected atom after 'not'")
  | TIdent name -> (
      advance st;
      let atom = parse_atom_from st name in
      (* a zero-ary "atom" followed by a comparison operator is actually a
         constant operand — not produced by our printer, reject *)
      match fst (peek st), atom.Syntax.args with
      | TOp op, [] ->
          advance st;
          let rhs = parse_term st in
          BCmp (Syntax.builtin op (Syntax.csym atom.Syntax.pred) rhs)
      | _ -> BPos atom)
  | TVar _ | TInt _ | TStr _ -> (
      let lhs = parse_term st in
      match fst (peek st) with
      | TOp op ->
          advance st;
          let rhs = parse_term st in
          BCmp (Syntax.builtin op lhs rhs)
      | _ -> error st "expected comparison operator")
  | _ -> error st "expected a body literal"

let parse_rule st =
  (* head *)
  let rec head acc =
    match fst (peek st) with
    | TIdent name -> (
        advance st;
        let a = parse_atom_from st name in
        match fst (peek st) with
        | TDisj ->
            advance st;
            head (a :: acc)
        | _ -> List.rev (a :: acc))
    | _ -> error st "expected head atom"
  in
  let head_atoms =
    match fst (peek st) with TIf -> [] | _ -> head []
  in
  let body =
    match fst (peek st) with
    | TIf -> (
        advance st;
        (* tolerate the degenerate ':- .' our printer emits for an
           always-violated constraint with an empty body *)
        match fst (peek st) with
        | TDot -> []
        | _ ->
            let rec lits acc =
              let l = parse_body_lit st in
              match fst (peek st) with
              | TComma ->
                  advance st;
                  lits (l :: acc)
              | _ -> List.rev (l :: acc)
            in
            lits [])
    | _ -> []
  in
  (match fst (peek st) with
  | TDot -> advance st
  | _ -> error st "expected '.'");
  let pos = List.filter_map (function BPos a -> Some a | _ -> None) body in
  let neg = List.filter_map (function BNeg a -> Some a | _ -> None) body in
  let cmp = List.filter_map (function BCmp b -> Some b | _ -> None) body in
  Syntax.rule head_atoms ~body_pos:pos ~body_neg:neg ~body_builtin:cmp

let parse input =
  let st = { toks = tokenize input } in
  let rec rules acc =
    match fst (peek st) with
    | TEof -> List.rev acc
    | _ -> rules (parse_rule st :: acc)
  in
  rules []

let parse_file path =
  parse (In_channel.with_open_text path In_channel.input_all)

let roundtrip dialect p = parse (Printer.program_to_string dialect p)
