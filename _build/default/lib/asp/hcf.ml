(* Iterative Tarjan SCC over the ground dependency graph. *)
let sccs g =
  let n = Ground.atom_count g in
  let adj = Array.make n [] in
  Array.iter
    (fun (r : Ground.grule) ->
      Array.iter
        (fun p -> Array.iter (fun h -> adj.(p) <- h :: adj.(p)) r.Ground.ghead)
        r.Ground.gpos)
    (Ground.rules g);
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    low.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let c = !next_comp in
      incr next_comp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- c;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  comp

let offending_rule g =
  let comp = sccs g in
  let bad (r : Ground.grule) =
    let h = r.Ground.ghead in
    let len = Array.length h in
    let rec pairs i j =
      if i >= len then false
      else if j >= len then pairs (i + 1) (i + 2)
      else comp.(h.(i)) = comp.(h.(j)) || pairs i (j + 1)
    in
    len > 1 && pairs 0 1
  in
  Array.find_opt bad (Ground.rules g)

let is_hcf g = Option.is_none (offending_rule g)
