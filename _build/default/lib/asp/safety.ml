let unsafe_vars (r : Syntax.rule) =
  let safe = List.concat_map Syntax.atom_vars r.Syntax.body_pos in
  let used =
    List.concat_map Syntax.atom_vars (r.Syntax.head @ r.Syntax.body_neg)
    @ List.concat_map Syntax.builtin_vars r.Syntax.body_builtin
  in
  List.sort_uniq String.compare
    (List.filter (fun v -> not (List.mem v safe)) used)

let check_rule r =
  match unsafe_vars r with
  | [] -> Ok ()
  | vs ->
      Error
        (Fmt.str "unsafe variable(s) %s in rule: %a" (String.concat ", " vs)
           Syntax.pp_rule r)

let check p =
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> check_rule r)
    (Ok ()) p
