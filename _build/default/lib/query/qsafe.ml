let inter a b = List.filter (fun x -> List.mem x b) a
let union a b = List.sort_uniq String.compare (a @ b)

(* Variables certainly bound to database values when the formula holds. *)
let rec range_restricted_vars = function
  | Qsyntax.Atom a -> Ic.Patom.vars a
  | Qsyntax.Builtin _ | Qsyntax.IsNull _ -> []
  | Qsyntax.And (f, g) -> union (range_restricted_vars f) (range_restricted_vars g)
  | Qsyntax.Or (f, g) -> inter (range_restricted_vars f) (range_restricted_vars g)
  | Qsyntax.Not _ -> []
  | Qsyntax.Exists (xs, f) | Qsyntax.Forall (xs, f) ->
      List.filter (fun v -> not (List.mem v xs)) (range_restricted_vars f)

(* Every quantifier must restrict its variables: existentials positively,
   universals through the standard rewriting forall x. f == ~exists x. ~f
   (we require the variables of a Forall to be restricted in ~f). *)
let rec quantifiers_safe = function
  | Qsyntax.Atom _ | Qsyntax.Builtin _ | Qsyntax.IsNull _ -> true
  | Qsyntax.And (f, g) | Qsyntax.Or (f, g) -> quantifiers_safe f && quantifiers_safe g
  | Qsyntax.Not f -> quantifiers_safe f
  | Qsyntax.Exists (xs, f) ->
      quantifiers_safe f
      && List.for_all (fun x -> List.mem x (range_restricted_vars f)) xs
  | Qsyntax.Forall (xs, f) ->
      quantifiers_safe f
      &&
      let restricted_in_negation =
        match f with
        | Qsyntax.Or (Qsyntax.Not g, _) | Qsyntax.Or (_, Qsyntax.Not g) ->
            (* the common guarded shape: forall x. (~P(x) \/ psi) *)
            range_restricted_vars g
        | Qsyntax.Not g -> range_restricted_vars g
        | _ -> []
      in
      List.for_all (fun x -> List.mem x restricted_in_negation) xs

let is_safe (q : Qsyntax.t) =
  let rr = range_restricted_vars q.Qsyntax.body in
  List.for_all (fun x -> List.mem x rr) q.Qsyntax.head
  && quantifiers_safe q.Qsyntax.body

let check q =
  if is_safe q then Ok ()
  else
    Error
      (Fmt.str
         "query %a is not safe-range: evaluation falls back to active-domain \
          semantics"
         Qsyntax.pp q)
