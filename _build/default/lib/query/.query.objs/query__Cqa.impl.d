lib/query/cqa.ml: Asp Core Fmt List Printf Progcqa Qeval Qsyntax Relational Repair Result
