lib/query/cqa.ml: Asp Core Fmt Ic List Option Printf Progcqa Qeval Qsyntax Relational Repair Result Seq
