lib/query/qsafe.mli: Qsyntax
