lib/query/qsafe.ml: Fmt Ic List Qsyntax String
