lib/query/qsyntax.mli: Fmt Ic
