lib/query/progcqa.mli: Asp Core Ic Qsyntax Relational
