lib/query/qeval.ml: Hashtbl Ic Lazy List Option Qsyntax Relational Semantics Set
