lib/query/cqa.mli: Fmt Ic Qeval Qsyntax Relational
