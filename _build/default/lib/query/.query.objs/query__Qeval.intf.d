lib/query/qeval.mli: Qsyntax Relational Semantics
