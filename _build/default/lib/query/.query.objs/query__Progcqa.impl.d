lib/query/progcqa.ml: Asp Core Ic List Option Printf Qsyntax Relational Result String
