lib/query/qsyntax.ml: Fmt Ic List Printf String
