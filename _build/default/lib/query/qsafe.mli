(** Safe-range analysis [32].

    The paper assumes queries are {e safe}, a syntactic guarantee of domain
    independence.  We implement the standard safe-range check: every free
    variable of the query, and every quantified variable, must be range
    restricted by a positive database atom within its scope.  The evaluator
    ({!Qeval}) ranges quantifiers over the active domain, which computes the
    standard semantics exactly for safe queries. *)

val range_restricted_vars : Qsyntax.formula -> string list
(** Variables guaranteed bound to the active domain by the formula itself. *)

val is_safe : Qsyntax.t -> bool

val check : Qsyntax.t -> (unit, string) result
