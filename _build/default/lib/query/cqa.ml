module Tuple = Relational.Tuple

type method_ = ModelTheoretic | LogicProgram | CautiousProgram

type outcome = {
  consistent : Tuple.Set.t;
  possible : Tuple.Set.t;
  standard : Tuple.Set.t;
  repair_count : int;
}

let repairs_of method_ max_effort d ics =
  match method_ with
  | CautiousProgram -> assert false
  | ModelTheoretic -> (
      match Repair.Enumerate.repairs ?max_states:max_effort d ics with
      | reps -> Ok reps
      | exception Repair.Enumerate.Budget_exceeded n ->
          Error (Printf.sprintf "repair search budget (%d states) exceeded" n))
  | LogicProgram -> (
      match Core.Engine.repairs ?max_decisions:max_effort d ics with
      | Ok reps -> Ok reps
      | Error _ as e -> e
      | exception Asp.Solver.Budget_exceeded n ->
          Error (Printf.sprintf "solver budget (%d decisions) exceeded" n))

let consistent_answers ?(method_ = LogicProgram) ?semantics ?max_effort d ics q =
  match method_ with
  | CautiousProgram ->
      Result.map
        (fun (o : Progcqa.outcome) ->
          {
            consistent = o.Progcqa.consistent;
            possible = o.Progcqa.possible;
            standard = Qeval.answers ?semantics d q;
            repair_count = o.Progcqa.stable_models;
          })
        (Progcqa.consistent_answers ?max_decisions:max_effort d ics q)
  | ModelTheoretic | LogicProgram ->
  Result.map
    (fun repairs ->
      let answer_sets = List.map (fun r -> Qeval.answers ?semantics r q) repairs in
      let consistent =
        match answer_sets with
        | [] -> Tuple.Set.empty
        | s :: rest -> List.fold_left Tuple.Set.inter s rest
      in
      let possible = List.fold_left Tuple.Set.union Tuple.Set.empty answer_sets in
      {
        consistent;
        possible;
        standard = Qeval.answers ?semantics d q;
        repair_count = List.length repairs;
      })
    (repairs_of method_ max_effort d ics)

let certain ?method_ ?semantics ?max_effort d ics q =
  if not (Qsyntax.is_boolean q) then Error "certain: query has head variables"
  else
    Result.map
      (fun o -> Tuple.Set.mem (Tuple.make []) o.consistent)
      (consistent_answers ?method_ ?semantics ?max_effort d ics
         { q with Qsyntax.head = [] })

let pp_outcome ppf o =
  let pp_set ppf s =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ", ") Tuple.pp)
      (Tuple.Set.elements s)
  in
  Fmt.pf ppf "@[<v>consistent: %a@,possible:   %a@,standard:   %a@,repairs:    %d@]"
    pp_set o.consistent pp_set o.possible pp_set o.standard o.repair_count
