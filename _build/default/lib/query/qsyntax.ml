type formula =
  | Atom of Ic.Patom.t
  | Builtin of Ic.Builtin.t
  | IsNull of Ic.Term.t
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of string list * formula
  | Forall of string list * formula

type t = { name : string option; head : string list; body : formula }

let rec free_vars = function
  | Atom a -> Ic.Patom.vars a
  | Builtin b -> Ic.Builtin.vars b
  | IsNull (Ic.Term.Var x) -> [ x ]
  | IsNull (Ic.Term.Const _) -> []
  | And (f, g) | Or (f, g) ->
      let l = free_vars f @ free_vars g in
      List.sort_uniq String.compare l
  | Not f -> free_vars f
  | Exists (xs, f) | Forall (xs, f) ->
      List.filter (fun v -> not (List.mem v xs)) (free_vars f)

let rec bound_vars = function
  | Atom _ | Builtin _ | IsNull _ -> []
  | And (f, g) | Or (f, g) -> bound_vars f @ bound_vars g
  | Not f -> bound_vars f
  | Exists (xs, f) | Forall (xs, f) -> xs @ bound_vars f

let make ?name ~head body =
  let fv = free_vars body in
  let bv = bound_vars body in
  List.iter
    (fun x ->
      if List.mem x bv then
        invalid_arg (Printf.sprintf "Query.make: head variable %s is bound in the body" x);
      if not (List.mem x fv) then
        invalid_arg (Printf.sprintf "Query.make: head variable %s does not occur in the body" x))
    head;
  { name; head; body }

let truth = Builtin (Ic.Builtin.eq (Ic.Term.int 0) (Ic.Term.int 0))
let falsity = Builtin Ic.Builtin.False

let conj = function
  | [] -> truth
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> falsity
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let is_boolean q = q.head = []

let rec atoms = function
  | Atom a -> [ a ]
  | Builtin _ | IsNull _ -> []
  | And (f, g) | Or (f, g) -> atoms f @ atoms g
  | Not f -> atoms f
  | Exists (_, f) | Forall (_, f) -> atoms f

let preds q =
  List.sort_uniq String.compare (List.map Ic.Patom.pred (atoms q.body))

let rec pp_formula ppf = function
  | Atom a -> Ic.Patom.pp ppf a
  | Builtin b -> Ic.Builtin.pp ppf b
  | IsNull t -> Fmt.pf ppf "IsNull(%a)" Ic.Term.pp t
  | And (f, g) -> Fmt.pf ppf "(%a /\\ %a)" pp_formula f pp_formula g
  | Or (f, g) -> Fmt.pf ppf "(%a \\/ %a)" pp_formula f pp_formula g
  | Not f -> Fmt.pf ppf "~%a" pp_formula f
  | Exists (xs, f) ->
      Fmt.pf ppf "exists %a. %a" Fmt.(list ~sep:sp string) xs pp_formula f
  | Forall (xs, f) ->
      Fmt.pf ppf "forall %a. %a" Fmt.(list ~sep:sp string) xs pp_formula f

let pp ppf q =
  match q.head with
  | [] -> pp_formula ppf q.body
  | head ->
      Fmt.pf ppf "{(%a) | %a}" Fmt.(list ~sep:(any ", ") string) head pp_formula q.body
