(** First-order queries over the database schema.

    Queries are first-order formulas over database atoms and built-in
    comparisons; a query has a list of free head variables ([[]] for a
    boolean query).  Example 14's "which students exist?" is
    [{head = ["id"; "name"]; body = Atom (Student(id, name))}]. *)

type formula =
  | Atom of Ic.Patom.t
  | Builtin of Ic.Builtin.t
  | IsNull of Ic.Term.t
      (** the [IsNull] predicate of Section 3 — the sanctioned way to test
          for null in a query, since [= null] would be unknown *)
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of string list * formula
  | Forall of string list * formula

type t = { name : string option; head : string list; body : formula }

val make : ?name:string -> head:string list -> formula -> t
(** @raise Invalid_argument if a head variable is bound in the body or does
    not occur in it. *)

val conj : formula list -> formula
(** Conjunction; [conj [] ] is the true formula (encoded as a tautology). *)

val disj : formula list -> formula

val free_vars : formula -> string list
val is_boolean : t -> bool

val atoms : formula -> Ic.Patom.t list
val preds : t -> string list

val pp_formula : formula Fmt.t
val pp : t Fmt.t
