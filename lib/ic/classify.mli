(** Syntactic classification of constraints into the paper's classes. *)

type cls =
  | Uic  (** universal IC, form (2): no existential variables *)
  | Ric  (** referential IC, form (3): [P(x) -> exists y. Q(x', y)] *)
  | Nnc  (** NOT NULL-constraint, form (5) *)
  | GeneralExistential
      (** form (1) with existential variables but not of form (3); outside
          the scope of the repair programs of Definition 9 *)

val classify : Constr.t -> cls

val is_uic : Constr.t -> bool
val is_ric : Constr.t -> bool
val is_nnc : Constr.t -> bool

val is_denial : Constr.t -> bool
(** [P1 /\ ... /\ Pm -> false]: empty consequent and empty [phi]. *)

val is_check : Constr.t -> bool
(** Single-row check constraint: one antecedent atom, no consequent atoms,
    non-empty [phi] (Example 6). *)

val is_deletion_only : Constr.t -> bool
(** Every minimal fix of a violation is a deletion: [Generic] with an
    empty consequent (denials, checks, FDs rewritten as denials) and
    NOT NULL-constraints.  A [Generic] with consequent atoms can also be
    fixed by a null-insertion ({!Repair.Actions}), so it is excluded. *)

val is_full_inclusion : Constr.t -> bool
(** [P(x) -> Q(y)] with one atom on each side and no existentials. *)

val supported_by_repair_program : Constr.t list -> (unit, string) result
(** Definition 9 covers UICs, RICs and NNCs only. *)

val pp_cls : cls Fmt.t
