type cls = Uic | Ric | Nnc | GeneralExistential

let classify = function
  | Constr.NotNull _ -> Nnc
  | Constr.Generic g -> (
      match Constr.existential_vars g with
      | [] -> Uic
      | _ :: _ -> (
          match g.ante, g.cons, g.phi with
          | [ _ ], [ _ ], [] -> Ric
          | _ -> GeneralExistential))

let is_uic ic = classify ic = Uic
let is_ric ic = classify ic = Ric
let is_nnc ic = classify ic = Nnc

let is_denial = function
  | Constr.Generic { cons = []; phi = []; _ } -> true
  | Constr.Generic _ | Constr.NotNull _ -> false

let is_check = function
  | Constr.Generic { ante = [ _ ]; cons = []; phi = _ :: _; _ } -> true
  | Constr.Generic _ | Constr.NotNull _ -> false

let is_deletion_only = function
  | Constr.Generic { cons = []; _ } | Constr.NotNull _ -> true
  | Constr.Generic _ -> false

let is_full_inclusion = function
  | Constr.Generic ({ ante = [ _ ]; cons = [ _ ]; phi = []; _ } as g) ->
      Constr.existential_vars g = []
  | Constr.Generic _ | Constr.NotNull _ -> false

let supported_by_repair_program ics =
  let unsupported =
    List.filter (fun ic -> classify ic = GeneralExistential) ics
  in
  match unsupported with
  | [] -> Ok ()
  | ic :: _ ->
      Error
        (Printf.sprintf
           "constraint '%s' has existential quantifiers but is not a RIC of \
            form (3); Definition 9 repair programs cover UICs, RICs and NNCs \
            only (use the model-theoretic repair engine instead)"
           (Constr.label ic))

let pp_cls ppf c =
  Fmt.string ppf
    (match c with
    | Uic -> "UIC"
    | Ric -> "RIC"
    | Nnc -> "NNC"
    | GeneralExistential -> "general-existential")
