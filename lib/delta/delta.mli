(** Update batches over database instances.

    A delta is an ordered batch of tuple insertions and deletions — the
    update language of the incremental session engine ({!Session}).  Deltas
    are applied left to right, so a batch may insert and later delete the
    same atom (the pair cancels); {!effective} reports the {e net} effect
    against a concrete instance, which is what the incremental violation
    and plan maintenance consume (in the spirit of update reasoning over
    indefinite databases, Caroprese et al.). *)

type op =
  | Insert of Relational.Atom.t
  | Delete of Relational.Atom.t

type t = op list
(** Applied left to right. *)

val empty : t
val insert : Relational.Atom.t -> op
val delete : Relational.Atom.t -> op
val atom : op -> Relational.Atom.t

val apply : t -> Relational.Instance.t -> Relational.Instance.t
(** Instances are sets, so inserting a present atom and deleting an absent
    one are no-ops. *)

val preds : t -> string list
(** Predicates mentioned by the batch, deduplicated, sorted. *)

val effective :
  t -> Relational.Instance.t ->
  Relational.Atom.t list * Relational.Atom.t list
(** [effective delta d] is [(inserted, deleted)]: the atoms of
    [apply delta d] absent from [d], and the atoms of [d] absent from
    [apply delta d].  Cancelling pairs and redundant operations (inserting
    a present atom, deleting an absent one) disappear; both lists are in
    the instance's sorted atom order. *)

val pp : t Fmt.t
val pp_op : op Fmt.t
