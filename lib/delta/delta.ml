module Atom = Relational.Atom
module Instance = Relational.Instance

type op = Insert of Atom.t | Delete of Atom.t

type t = op list

let empty = []
let insert a = Insert a
let delete a = Delete a
let atom = function Insert a | Delete a -> a

let apply ops d =
  List.fold_left
    (fun d -> function
      | Insert a -> Instance.add a d
      | Delete a -> Instance.remove a d)
    d ops

let preds ops =
  List.sort_uniq String.compare (List.map (fun op -> Atom.pred (atom op)) ops)

let effective ops d =
  let d' = apply ops d in
  (Instance.atoms (Instance.diff d' d), Instance.atoms (Instance.diff d d'))

let pp_op ppf = function
  | Insert a -> Fmt.pf ppf "+%a" Atom.pp a
  | Delete a -> Fmt.pf ppf "-%a" Atom.pp a

let pp ppf ops = Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_op) ops
