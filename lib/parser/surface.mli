(** Parsed surface items, before schema validation ({!Load}). *)

type item =
  | Relation of string * string list  (** name, attribute names *)
  | Fact of string * Relational.Value.t list
  | Constraint of {
      name : string option;
      ante : Ic.Patom.t list;
      cons : Ic.Patom.t list;
      phi : Ic.Builtin.t list;
    }
  | NotNull of string * int
  | Query of string * string list * Query.Qsyntax.formula
      (** name, head variables, body *)
  | Insert of string * Relational.Value.t list
      (** update statement: add the tuple after the initial instance is
          built (applied in file order — see {!Load.final_instance}) *)
  | Delete of string * Relational.Value.t list
      (** update statement: remove the tuple (a no-op if absent) *)

type file = item list

val pp_item : item Fmt.t
