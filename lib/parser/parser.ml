exception Parse_error of string * int * int

type state = { mutable tokens : Lexer.located list }

let peek st =
  match st.tokens with
  | [] -> { Lexer.token = Lexer.EOF; line = 0; col = 0 }
  | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let error st msg =
  let t = peek st in
  raise
    (Parse_error
       (Fmt.str "%s (found '%a')" msg Lexer.pp_token t.Lexer.token, t.Lexer.line, t.Lexer.col))

let expect st token msg =
  if (peek st).Lexer.token = token then advance st else error st msg

let expect_dot st = expect st Lexer.DOT "expected '.'"

(* ------------------------------------------------------------------ *)
(* Common pieces *)

let parse_value st =
  match (peek st).Lexer.token with
  | Lexer.INT i ->
      advance st;
      Relational.Value.int i
  | Lexer.MINUS ->
      advance st;
      (match (peek st).Lexer.token with
      | Lexer.INT i ->
          advance st;
          Relational.Value.int (-i)
      | _ -> error st "expected integer after '-'")
  | Lexer.IDENT "null" ->
      advance st;
      Relational.Value.null
  | Lexer.IDENT s | Lexer.UIDENT s ->
      advance st;
      Relational.Value.str s
  | Lexer.STRING s ->
      advance st;
      Relational.Value.str s
  | _ -> error st "expected a constant"

(* a term in a constraint or query: capitalized = variable *)
let parse_term st =
  match (peek st).Lexer.token with
  | Lexer.UIDENT x ->
      advance st;
      Ic.Term.var x
  | Lexer.INT i ->
      advance st;
      Ic.Term.int i
  | Lexer.MINUS ->
      advance st;
      (match (peek st).Lexer.token with
      | Lexer.INT i ->
          advance st;
          Ic.Term.int (-i)
      | _ -> error st "expected integer after '-'")
  | Lexer.IDENT "null" -> error st "null may not appear in constraints or queries (use isnull or not_null)"
  | Lexer.IDENT s ->
      advance st;
      Ic.Term.str s
  | Lexer.STRING s ->
      advance st;
      Ic.Term.str s
  | _ -> error st "expected a term"

let parse_term_list st =
  expect st Lexer.LPAREN "expected '('";
  let rec go acc =
    let t = parse_term st in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
        advance st;
        go (t :: acc)
    | Lexer.RPAREN ->
        advance st;
        List.rev (t :: acc)
    | _ -> error st "expected ',' or ')'"
  in
  go []

let parse_atom st name =
  Ic.Patom.make name (parse_term_list st)

let cmp_op_of_token = function
  | Lexer.EQ -> Some Ic.Builtin.Eq
  | Lexer.NEQ -> Some Ic.Builtin.Neq
  | Lexer.LT -> Some Ic.Builtin.Lt
  | Lexer.LEQ -> Some Ic.Builtin.Leq
  | Lexer.GT -> Some Ic.Builtin.Gt
  | Lexer.GEQ -> Some Ic.Builtin.Geq
  | _ -> None

(* expr := term [ (+|-) INT ] *)
let parse_expr st =
  let base = parse_term st in
  match (peek st).Lexer.token with
  | Lexer.PLUS ->
      advance st;
      (match (peek st).Lexer.token with
      | Lexer.INT i ->
          advance st;
          Ic.Builtin.shift { Ic.Builtin.base; offset = 0 } i
      | _ -> error st "expected integer offset")
  | Lexer.MINUS ->
      advance st;
      (match (peek st).Lexer.token with
      | Lexer.INT i ->
          advance st;
          Ic.Builtin.shift { Ic.Builtin.base; offset = 0 } (-i)
      | _ -> error st "expected integer offset")
  | _ -> { Ic.Builtin.base; offset = 0 }

let parse_comparison st lhs =
  match cmp_op_of_token (peek st).Lexer.token with
  | Some op ->
      advance st;
      let rhs = parse_expr st in
      Ic.Builtin.cmp op lhs rhs
  | None -> error st "expected a comparison operator"

(* ------------------------------------------------------------------ *)
(* Constraints *)

let parse_constraint_body st =
  (* conjunction of atoms *)
  let rec go acc =
    match (peek st).Lexer.token with
    | Lexer.UIDENT name ->
        advance st;
        let a = parse_atom st name in
        (match (peek st).Lexer.token with
        | Lexer.COMMA ->
            advance st;
            go (a :: acc)
        | _ -> List.rev (a :: acc))
    | _ -> error st "expected a relation atom in the antecedent"
  in
  go []

let parse_consequent st =
  (* |-separated atoms and comparisons, or false *)
  if (peek st).Lexer.token = Lexer.IDENT "false" then begin
    advance st;
    ([], [])
  end
  else
    let rec go atoms builtins =
      let atoms, builtins =
        match (peek st).Lexer.token with
        | Lexer.UIDENT name -> (
            advance st;
            (* relation atom or a comparison starting with a variable *)
            match (peek st).Lexer.token with
            | Lexer.LPAREN -> (parse_atom st name :: atoms, builtins)
            | _ ->
                let lhs = { Ic.Builtin.base = Ic.Term.var name; offset = 0 } in
                let lhs =
                  match (peek st).Lexer.token with
                  | Lexer.PLUS ->
                      advance st;
                      (match (peek st).Lexer.token with
                      | Lexer.INT i ->
                          advance st;
                          Ic.Builtin.shift lhs i
                      | _ -> error st "expected integer offset")
                  | _ -> lhs
                in
                (atoms, parse_comparison st lhs :: builtins))
        | _ ->
            let lhs = parse_expr st in
            (atoms, parse_comparison st lhs :: builtins)
      in
      match (peek st).Lexer.token with
      | Lexer.PIPE ->
          advance st;
          go atoms builtins
      | _ -> (List.rev atoms, List.rev builtins)
    in
    go [] []

(* ------------------------------------------------------------------ *)
(* Queries *)

let rec parse_formula st = parse_disj st

and parse_disj st =
  let f = parse_conj st in
  match (peek st).Lexer.token with
  | Lexer.PIPE ->
      advance st;
      Query.Qsyntax.Or (f, parse_disj st)
  | _ -> f

and parse_conj st =
  let f = parse_unary st in
  match (peek st).Lexer.token with
  | Lexer.AMP ->
      advance st;
      Query.Qsyntax.And (f, parse_conj st)
  | Lexer.COMMA ->
      advance st;
      Query.Qsyntax.And (f, parse_conj st)
  | _ -> f

and parse_unary st =
  match (peek st).Lexer.token with
  | Lexer.BANG ->
      advance st;
      Query.Qsyntax.Not (parse_unary st)
  | Lexer.LPAREN ->
      advance st;
      let f = parse_formula st in
      expect st Lexer.RPAREN "expected ')'";
      f
  | Lexer.IDENT ("exists" | "forall") ->
      let quant = match (peek st).Lexer.token with
        | Lexer.IDENT q -> q
        | _ -> assert false
      in
      advance st;
      let rec vars acc =
        match (peek st).Lexer.token with
        | Lexer.UIDENT x ->
            advance st;
            vars (x :: acc)
        | Lexer.DOT ->
            advance st;
            List.rev acc
        | _ -> error st "expected variables then '.'"
      in
      let xs = vars [] in
      if xs = [] then error st "quantifier binds no variables";
      let f = parse_formula st in
      if quant = "exists" then Query.Qsyntax.Exists (xs, f)
      else Query.Qsyntax.Forall (xs, f)
  | Lexer.IDENT "isnull" ->
      advance st;
      expect st Lexer.LPAREN "expected '('";
      let t = parse_term st in
      expect st Lexer.RPAREN "expected ')'";
      Query.Qsyntax.IsNull t
  | Lexer.UIDENT name -> (
      advance st;
      match (peek st).Lexer.token with
      | Lexer.LPAREN -> Query.Qsyntax.Atom (parse_atom st name)
      | _ ->
          let lhs = { Ic.Builtin.base = Ic.Term.var name; offset = 0 } in
          Query.Qsyntax.Builtin (parse_comparison st lhs))
  | Lexer.INT _ | Lexer.STRING _ | Lexer.IDENT _ | Lexer.MINUS ->
      let lhs = parse_expr st in
      Query.Qsyntax.Builtin (parse_comparison st lhs)
  | _ -> error st "expected a formula"

(* ------------------------------------------------------------------ *)
(* Items *)

let parse_relation st =
  match (peek st).Lexer.token with
  | Lexer.UIDENT name ->
      advance st;
      expect st Lexer.LPAREN "expected '('";
      let rec attrs acc =
        match (peek st).Lexer.token with
        | Lexer.IDENT a | Lexer.UIDENT a ->
            advance st;
            (match (peek st).Lexer.token with
            | Lexer.COMMA ->
                advance st;
                attrs (a :: acc)
            | Lexer.RPAREN ->
                advance st;
                List.rev (a :: acc)
            | _ -> error st "expected ',' or ')'")
        | _ -> error st "expected attribute name"
      in
      let a = attrs [] in
      expect_dot st;
      Surface.Relation (name, a)
  | _ -> error st "expected relation name"

(* the shared tail of facts and update statements: "(v, ..., v)." *)
let parse_value_list st =
  expect st Lexer.LPAREN "expected '('";
  let rec values acc =
    let v = parse_value st in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
        advance st;
        values (v :: acc)
    | Lexer.RPAREN ->
        advance st;
        List.rev (v :: acc)
    | _ -> error st "expected ',' or ')'"
  in
  let vs = values [] in
  expect_dot st;
  vs

let parse_fact st name = Surface.Fact (name, parse_value_list st)

let parse_update st kind =
  match (peek st).Lexer.token with
  | Lexer.UIDENT name ->
      advance st;
      let vs = parse_value_list st in
      if kind = `Insert then Surface.Insert (name, vs)
      else Surface.Delete (name, vs)
  | _ -> error st "expected relation name"

let parse_constraint st =
  let name =
    match (peek st).Lexer.token with
    | Lexer.IDENT n when n <> "false" ->
        advance st;
        Some n
    | Lexer.UIDENT n ->
        advance st;
        Some n
    | _ -> None
  in
  expect st Lexer.COLON "expected ':' after constraint";
  let ante = parse_constraint_body st in
  expect st Lexer.ARROW "expected '->'";
  let cons, phi = parse_consequent st in
  expect_dot st;
  Surface.Constraint { name; ante; cons; phi }

let parse_not_null st =
  match (peek st).Lexer.token with
  | Lexer.UIDENT rel ->
      advance st;
      expect st Lexer.LBRACKET "expected '['";
      (match (peek st).Lexer.token with
      | Lexer.INT pos ->
          advance st;
          expect st Lexer.RBRACKET "expected ']'";
          expect_dot st;
          Surface.NotNull (rel, pos)
      | _ -> error st "expected position")
  | _ -> error st "expected relation name"

let parse_query st =
  match (peek st).Lexer.token with
  | Lexer.IDENT name | Lexer.UIDENT name ->
      advance st;
      let head =
        match (peek st).Lexer.token with
        | Lexer.LPAREN ->
            advance st;
            let rec vars acc =
              match (peek st).Lexer.token with
              | Lexer.UIDENT x ->
                  advance st;
                  (match (peek st).Lexer.token with
                  | Lexer.COMMA ->
                      advance st;
                      vars (x :: acc)
                  | Lexer.RPAREN ->
                      advance st;
                      List.rev (x :: acc)
                  | _ -> error st "expected ',' or ')'")
              | Lexer.RPAREN ->
                  advance st;
                  List.rev acc
              | _ -> error st "expected variable"
            in
            vars []
        | _ -> []
      in
      expect st Lexer.COLON "expected ':'";
      let body = parse_formula st in
      expect_dot st;
      Surface.Query (name, head, body)
  | _ -> error st "expected query name"

let parse_located input =
  let st = { tokens = Lexer.tokenize input } in
  let rec items acc =
    let line = (peek st).Lexer.line in
    let located item = (line, item) in
    match (peek st).Lexer.token with
    | Lexer.EOF -> List.rev acc
    | Lexer.IDENT "relation" ->
        advance st;
        items (located (parse_relation st) :: acc)
    | Lexer.IDENT "constraint" ->
        advance st;
        items (located (parse_constraint st) :: acc)
    | Lexer.IDENT "not_null" ->
        advance st;
        items (located (parse_not_null st) :: acc)
    | Lexer.IDENT "query" ->
        advance st;
        items (located (parse_query st) :: acc)
    | Lexer.IDENT "insert" ->
        advance st;
        items (located (parse_update st `Insert) :: acc)
    | Lexer.IDENT "delete" ->
        advance st;
        items (located (parse_update st `Delete) :: acc)
    | Lexer.UIDENT name ->
        advance st;
        items (located (parse_fact st name) :: acc)
    | _ ->
        error st
          "expected an item (relation, fact, constraint, not_null, query, \
           insert, delete)"
  in
  items []

let parse input = List.map snd (parse_located input)
