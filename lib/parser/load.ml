module Schema = Relational.Schema
module Instance = Relational.Instance

type loaded = {
  schema : Schema.t;
  instance : Instance.t;
  ics : Ic.Constr.t list;
  queries : (string * Query.Qsyntax.t) list;
  updates : Delta.op list;
}

let ( let* ) = Result.bind

let default_attrs n = List.init n (fun i -> Printf.sprintf "c%d" (i + 1))

let note_arity schema rel arity =
  match Schema.arity schema rel with
  | None -> Ok (Schema.add_relation schema ~name:rel ~attrs:(default_attrs arity))
  | Some a when a = arity -> Ok schema
  | Some a ->
      Error (Printf.sprintf "relation %s has arity %d but is used with %d atoms" rel a arity)

(* The core load over line-located items.  [where line msg] renders a
   semantic error at the item starting on [line] — the file-aware entry
   points prefix "file:line:" so a fuzzer-minimized repro (or any scenario
   in the conformance corpus) points at the offending item. *)
let of_located_items ~where litems =
  let locate line r = Result.map_error (where line) r in
  (* pass 1: schema (declared and inferred) *)
  let* schema =
    List.fold_left
      (fun acc (line, item) ->
        let* schema = acc in
        locate line
          (match item with
          | Surface.Relation (name, attrs) ->
              if Schema.mem schema name then
                Error (Printf.sprintf "relation %s declared twice" name)
              else Ok (Schema.add_relation schema ~name ~attrs)
          | Surface.Fact (name, values)
          | Surface.Insert (name, values)
          | Surface.Delete (name, values) ->
              note_arity schema name (List.length values)
          | Surface.Constraint { ante; cons; _ } ->
              List.fold_left
                (fun acc a ->
                  let* schema = acc in
                  note_arity schema (Ic.Patom.pred a) (Ic.Patom.arity a))
                (Ok schema) (ante @ cons)
          | Surface.NotNull _ | Surface.Query _ -> Ok schema))
      (Ok Schema.empty) litems
  in
  (* pass 2: build everything; update statements are collected in file
     order, not folded into the instance (see [final_instance]) *)
  let* instance, rev_ics, rev_queries, rev_updates =
    List.fold_left
      (fun acc (line, item) ->
        let* instance, ics, queries, updates = acc in
        locate line
          (match item with
          | Surface.Relation _ -> Ok (instance, ics, queries, updates)
          | Surface.Fact (name, values) ->
              Ok
                ( Instance.add (Relational.Atom.make name values) instance,
                  ics, queries, updates )
          | Surface.Insert (name, values) ->
              Ok
                ( instance, ics, queries,
                  Delta.insert (Relational.Atom.make name values) :: updates )
          | Surface.Delete (name, values) ->
              Ok
                ( instance, ics, queries,
                  Delta.delete (Relational.Atom.make name values) :: updates )
          | Surface.Constraint { name; ante; cons; phi } -> (
              match Ic.Constr.generic ?name ~ante ~cons ~phi () with
              | ic -> Ok (instance, ic :: ics, queries, updates)
              | exception Invalid_argument msg -> Error msg)
          | Surface.NotNull (rel, pos) -> (
              match Schema.arity schema rel with
              | None -> Error (Printf.sprintf "not_null on unknown relation %s" rel)
              | Some arity -> (
                  match Ic.Constr.not_null ~pred:rel ~arity ~pos () with
                  | ic -> Ok (instance, ic :: ics, queries, updates)
                  | exception Invalid_argument msg -> Error msg))
          | Surface.Query (name, head, body) -> (
              match Query.Qsyntax.make ~name ~head body with
              | q -> Ok (instance, ics, (line, name, q) :: queries, updates)
              | exception Invalid_argument msg -> Error msg)))
      (Ok (Instance.empty, [], [], []))
      litems
  in
  (* validate query atoms against the schema *)
  let* () =
    List.fold_left
      (fun acc (line, name, q) ->
        let* () = acc in
        locate line
          (List.fold_left
             (fun acc atom ->
               let* () = acc in
               match Schema.arity schema (Ic.Patom.pred atom) with
               | None ->
                   Error
                     (Printf.sprintf "query %s mentions unknown relation %s" name
                        (Ic.Patom.pred atom))
               | Some a when a = Ic.Patom.arity atom -> Ok ()
               | Some a ->
                   Error
                     (Printf.sprintf "query %s uses %s with arity %d, expected %d" name
                        (Ic.Patom.pred atom) (Ic.Patom.arity atom) a))
             (Ok ())
             (Query.Qsyntax.atoms q.Query.Qsyntax.body)))
      (Ok ()) rev_queries
  in
  Ok
    {
      schema;
      instance;
      ics = List.rev rev_ics;
      queries = List.rev_map (fun (_, name, q) -> (name, q)) rev_queries;
      updates = List.rev rev_updates;
    }

let of_items items =
  (* positionless entry point (kept for programmatic item lists): errors
     are rendered exactly as before the located loader existed *)
  of_located_items
    ~where:(fun _ msg -> msg)
    (List.map (fun item -> (0, item)) items)

let final_instance l = Delta.apply l.updates l.instance

let where_of_file file line msg =
  match file with
  | Some f -> Printf.sprintf "%s:%d: %s" f line msg
  | None -> Printf.sprintf "line %d: %s" line msg

let of_string ?file input =
  let at line col msg =
    match file with
    | Some f -> Printf.sprintf "%s:%d:%d: %s" f line col msg
    | None -> Printf.sprintf "%d:%d: %s" line col msg
  in
  match Parser.parse_located input with
  | litems -> of_located_items ~where:(where_of_file file) litems
  | exception Parser.Parse_error (msg, line, col) ->
      Error (at line col (Printf.sprintf "parse error: %s" msg))
  | exception Lexer.Lex_error (msg, line, col) ->
      Error (at line col (Printf.sprintf "lexical error: %s" msg))

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string ~file:path contents
  | exception Sys_error msg -> Error msg
