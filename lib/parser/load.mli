(** Loading and validating surface files. *)

type loaded = {
  schema : Relational.Schema.t;
  instance : Relational.Instance.t;
      (** the facts alone — update statements are {e not} folded in *)
  ics : Ic.Constr.t list;
  queries : (string * Query.Qsyntax.t) list;
  updates : Delta.op list;
      (** [insert]/[delete] statements, in file order *)
}

val of_items : Surface.file -> (loaded, string) result
(** Validates arities against the declared (or inferred) schema, builds the
    constraints through {!Ic.Constr.generic} (so all form-(1) side
    conditions are enforced) and names queries. *)

val of_string : string -> (loaded, string) result
(** Parse then load; lexer/parser errors are rendered with positions. *)

val of_file : string -> (loaded, string) result

val final_instance : loaded -> Relational.Instance.t
(** The instance after applying the file's update statements in order
    ([Delta.apply updates instance]) — what the one-shot CLI commands
    operate on; the session CLI instead starts from [instance] and replays
    [updates] through the session engine. *)
