(** Loading and validating surface files. *)

type loaded = {
  schema : Relational.Schema.t;
  instance : Relational.Instance.t;
      (** the facts alone — update statements are {e not} folded in *)
  ics : Ic.Constr.t list;
  queries : (string * Query.Qsyntax.t) list;
  updates : Delta.op list;
      (** [insert]/[delete] statements, in file order *)
}

val of_items : Surface.file -> (loaded, string) result
(** Validates arities against the declared (or inferred) schema, builds the
    constraints through {!Ic.Constr.generic} (so all form-(1) side
    conditions are enforced) and names queries. *)

val of_string : ?file:string -> string -> (loaded, string) result
(** Parse then load.  Lexer/parser errors are rendered with
    ["line:col:"] positions and semantic (load) errors with the
    ["line:"] of the offending item; [file] prefixes both with the file
    name ("file:line:col:" / "file:line:"), without it semantic errors
    read ["line N: ..."]. *)

val of_file : string -> (loaded, string) result
(** {!of_string} with [~file:path], so every load error names the file
    and the line of the offending item — a fuzzer-minimized repro (or any
    conformance scenario) can be opened at the failure. *)

val final_instance : loaded -> Relational.Instance.t
(** The instance after applying the file's update statements in order
    ([Delta.apply updates instance]) — what the one-shot CLI commands
    operate on; the session CLI instead starts from [instance] and replays
    [updates] through the session engine. *)
