(** Recursive-descent parser for the surface language.

    {v
    % schema (optional: relations are otherwise inferred from facts)
    relation Course(code, id, term).

    % facts: every argument is a constant (null, integer, identifier,
    % capitalized word or "quoted string")
    Course(cs27, 21, w04).
    Course(cs50, null, w05).

    % constraints: capitalized identifiers are variables, everything else
    % constants; variables occurring only in the consequent are
    % existentially quantified; the consequent is a |-separated disjunction
    % of atoms and comparisons, or the keyword false
    constraint fk: Course(X, Y, Z) -> Exp(Y, X, W).
    constraint key_r: R(X, Y), R(X, Z) -> Y = Z.
    constraint pos: Emp(I, N, S) -> S > 100.
    constraint no_self: E(X, X) -> false.

    % NOT NULL-constraint on an attribute position (1-based)
    not_null R[1].

    % queries: & | ! exists forall isnull(), comparisons; quantifiers
    % extend as far right as possible
    query enrolled(X): exists Y Z. Course(X, Y, Z).
    query certain_pair: exists X. Course(X, 21, w04).

    % update statements: applied to the instance in file order, after the
    % facts (the session engine also accepts them line by line)
    insert Course(cs99, 33, w06).
    delete Course(cs50, null, w05).
    v} *)

exception Parse_error of string * int * int

val parse : string -> Surface.file
(** @raise Parse_error / Lexer.Lex_error with position information. *)

val parse_located : string -> (int * Surface.item) list
(** {!parse}, with the 1-based line each item starts on — the loader
    threads these into its semantic error messages.
    @raise Parse_error / Lexer.Lex_error with position information. *)
