type item =
  | Relation of string * string list
  | Fact of string * Relational.Value.t list
  | Constraint of {
      name : string option;
      ante : Ic.Patom.t list;
      cons : Ic.Patom.t list;
      phi : Ic.Builtin.t list;
    }
  | NotNull of string * int
  | Query of string * string list * Query.Qsyntax.formula
  | Insert of string * Relational.Value.t list
  | Delete of string * Relational.Value.t list

type file = item list

let pp_item ppf = function
  | Relation (name, attrs) ->
      Fmt.pf ppf "relation %s(%a)." name Fmt.(list ~sep:(any ", ") string) attrs
  | Fact (name, values) ->
      Fmt.pf ppf "%s(%a)." name Fmt.(list ~sep:(any ", ") Relational.Value.pp) values
  | Constraint { name; ante; cons; phi } ->
      let parts =
        List.map (Fmt.str "%a" Ic.Patom.pp) cons
        @ List.map (Fmt.str "%a" Ic.Builtin.pp) phi
      in
      Fmt.pf ppf "constraint%a: %a -> %s."
        Fmt.(option (fun ppf -> pf ppf " %s"))
        name
        Fmt.(list ~sep:(any ", ") Ic.Patom.pp)
        ante
        (match parts with [] -> "false" | _ -> String.concat " | " parts)
  | NotNull (rel, pos) -> Fmt.pf ppf "not_null %s[%d]." rel pos
  | Query (name, head, body) ->
      Fmt.pf ppf "query %s(%a): %a." name
        Fmt.(list ~sep:(any ", ") string)
        head Query.Qsyntax.pp_formula body
  | Insert (name, values) ->
      Fmt.pf ppf "insert %s(%a)." name
        Fmt.(list ~sep:(any ", ") Relational.Value.pp)
        values
  | Delete (name, values) ->
      Fmt.pf ppf "delete %s(%a)." name
        Fmt.(list ~sep:(any ", ") Relational.Value.pp)
        values
