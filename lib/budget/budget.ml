type limits = {
  max_decisions : int option;
  max_states : int option;
  timeout_ms : int option;
}

let unlimited = { max_decisions = None; max_states = None; timeout_ms = None }

let make ?max_decisions ?max_states ?timeout_ms () =
  { max_decisions; max_states; timeout_ms }

type exhausted = Decisions of int | States of int | Deadline of int

let message = function
  | Decisions n -> Printf.sprintf "solver budget (%d decisions) exceeded" n
  | States n -> Printf.sprintf "repair search budget (%d states) exceeded" n
  | Deadline ms -> Printf.sprintf "deadline (%d ms) exceeded" ms

let pp_exhausted ppf e = Fmt.string ppf (message e)

type tier = Direct | Shifted | Disjunctive | Enumerated

let tier_name = function
  | Direct -> "direct"
  | Shifted -> "shifted"
  | Disjunctive -> "disjunctive"
  | Enumerated -> "enumerate"

let tier_index = function
  | Direct -> 0
  | Shifted -> 1
  | Disjunctive -> 2
  | Enumerated -> 3

let pp_tier ppf t = Fmt.string ppf (tier_name t)

type worker = {
  w_decisions : int Atomic.t;
  w_states : int Atomic.t;
  w_components : int Atomic.t;
}

type stats = {
  decisions : int Atomic.t;
  states : int Atomic.t;
  components_solved : int Atomic.t;
  elapsed_ms : int Atomic.t;
  conflicts : int Atomic.t;
  learned : int Atomic.t;
  restarts : int Atomic.t;
  backjump_len : int Atomic.t;
  phase_saved : int Atomic.t;
  routed : int Atomic.t array;  (* indexed by [tier_index] *)
  mutable degradations : (string * string) list;  (* reverse emission order *)
  mutable workers : worker array;
}

let new_stats () =
  {
    decisions = Atomic.make 0;
    states = Atomic.make 0;
    components_solved = Atomic.make 0;
    elapsed_ms = Atomic.make 0;
    conflicts = Atomic.make 0;
    learned = Atomic.make 0;
    restarts = Atomic.make 0;
    backjump_len = Atomic.make 0;
    phase_saved = Atomic.make 0;
    routed = Array.init 4 (fun _ -> Atomic.make 0);
    degradations = [];
    workers = [||];
  }

let new_worker () =
  {
    w_decisions = Atomic.make 0;
    w_states = Atomic.make 0;
    w_components = Atomic.make 0;
  }

(* Per-worker slots: slot 0 is the coordinating domain, slots 1..jobs the
   pool workers.  Installed before any pool is created (single-threaded),
   so the non-atomic [workers] field is published to the workers by the
   happens-before edge of Domain.spawn. *)
let set_workers s jobs = s.workers <- Array.init (jobs + 1) (fun _ -> new_worker ())

(* Which slot the current domain ticks into.  Pool workers are assigned
   their slot by the engines' pool-init hook; the coordinating domain keeps
   the default slot 0. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)
let set_worker_slot i = Domain.DLS.set slot_key i

let bump_worker sel s =
  match s.workers with
  | [||] -> ()
  | ws ->
      let i = Domain.DLS.get slot_key in
      if i >= 0 && i < Array.length ws then Atomic.incr (sel ws.(i))

let pp_stats ppf s =
  Fmt.pf ppf "decisions=%d states=%d components_solved=%d elapsed_ms=%d"
    (Atomic.get s.decisions) (Atomic.get s.states)
    (Atomic.get s.components_solved) (Atomic.get s.elapsed_ms)

let routed s t = Atomic.get s.routed.(tier_index t)

let routed_total s =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 s.routed

let degradations s = List.rev s.degradations

let pp_routed ppf s =
  Fmt.pf ppf "direct=%d shifted=%d disjunctive=%d enumerate=%d"
    (routed s Direct) (routed s Shifted) (routed s Disjunctive)
    (routed s Enumerated)

let pp_degradations ppf s =
  List.iter
    (fun (stage, msg) -> Fmt.pf ppf "degraded[%s]: %s@." stage msg)
    (degradations s)

let pp_workers ppf s =
  (* slot 0 (the coordinator) is folded into the global line; the per-pool
     slots 1..jobs get one line each *)
  Array.iteri
    (fun i w ->
      if i > 0 then
        Fmt.pf ppf "  worker %d: decisions=%d states=%d components=%d@." i
          (Atomic.get w.w_decisions) (Atomic.get w.w_states)
          (Atomic.get w.w_components))
    s.workers

type ctl = {
  lim : limits;
  sink : stats;
  started : float;
  deadline : float option;  (* absolute, seconds since the epoch *)
}

exception Exhausted of exhausted

let start ?stats lim =
  let now = Unix.gettimeofday () in
  {
    lim;
    sink = (match stats with Some s -> s | None -> new_stats ());
    started = now;
    deadline =
      Option.map (fun ms -> now +. (float_of_int ms /. 1000.)) lim.timeout_ms;
  }

let stats t = t.sink
let limits t = t.lim

(* Round up to a started millisecond so a finished run never reports 0 —
   the counters in the bench baseline are guarded to be non-zero. *)
let elapsed_ms t =
  let ms = (Unix.gettimeofday () -. t.started) *. 1000. in
  max 1 (int_of_float (Float.ceil ms))

let finish t = Atomic.set t.sink.elapsed_ms (elapsed_ms t)

let exhaust t e =
  finish t;
  raise (Exhausted e)

let check_deadline t =
  match t.deadline with
  | Some dl when Unix.gettimeofday () > dl ->
      exhaust t (Deadline (Option.value ~default:0 t.lim.timeout_ms))
  | _ -> ()

let remaining_ms t =
  Option.map
    (fun dl ->
      max 0 (int_of_float (Float.ceil ((dl -. Unix.gettimeofday ()) *. 1000.))))
    t.deadline

let guard f = try f () with Exhausted e -> Error (message e)

let tick_decision t =
  let n = Atomic.fetch_and_add t.sink.decisions 1 + 1 in
  bump_worker (fun w -> w.w_decisions) t.sink;
  (match t.lim.max_decisions with
  | Some m when n > m -> exhaust t (Decisions m)
  | _ -> ());
  check_deadline t

let tick_state t =
  let n = Atomic.fetch_and_add t.sink.states 1 + 1 in
  bump_worker (fun w -> w.w_states) t.sink;
  (match t.lim.max_states with
  | Some m when n > m -> exhaust t (States m)
  | _ -> ());
  check_deadline t

(* CDCL checkpoints.  Conflicts are the natural deadline granularity of the
   learning search (decisions can be thousands of conflicts apart under
   heavy propagation); the remaining counters are pure telemetry. *)
let tick_conflict t =
  Atomic.incr t.sink.conflicts;
  check_deadline t

let note_learned t = Atomic.incr t.sink.learned
let note_restart t = Atomic.incr t.sink.restarts

let note_backjump t len =
  ignore (Atomic.fetch_and_add t.sink.backjump_len len)

let note_phase_saved t = Atomic.incr t.sink.phase_saved

let search_total s =
  Atomic.get s.conflicts + Atomic.get s.learned + Atomic.get s.restarts
  + Atomic.get s.backjump_len + Atomic.get s.phase_saved

let pp_search ppf s =
  Fmt.pf ppf "conflicts=%d learned=%d restarts=%d backjump_len=%d phase_saved=%d"
    (Atomic.get s.conflicts) (Atomic.get s.learned) (Atomic.get s.restarts)
    (Atomic.get s.backjump_len) (Atomic.get s.phase_saved)

let note_component t = Atomic.incr t.sink.components_solved

let note_worker_component t = bump_worker (fun w -> w.w_components) t.sink

let note_route t tier = Atomic.incr t.sink.routed.(tier_index tier)

(* Degradation notes are emitted by the deterministic merge/fallback steps
   of the engines (coordinator only, never a pool worker), so the plain
   mutable list needs no synchronization. *)
let note_degraded t ~stage msg =
  t.sink.degradations <- (stage, msg) :: t.sink.degradations
