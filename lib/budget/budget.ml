type limits = {
  max_decisions : int option;
  max_states : int option;
  timeout_ms : int option;
}

let unlimited = { max_decisions = None; max_states = None; timeout_ms = None }

let make ?max_decisions ?max_states ?timeout_ms () =
  { max_decisions; max_states; timeout_ms }

type exhausted = Decisions of int | States of int | Deadline of int

let message = function
  | Decisions n -> Printf.sprintf "solver budget (%d decisions) exceeded" n
  | States n -> Printf.sprintf "repair search budget (%d states) exceeded" n
  | Deadline ms -> Printf.sprintf "deadline (%d ms) exceeded" ms

let pp_exhausted ppf e = Fmt.string ppf (message e)

type stats = {
  mutable decisions : int;
  mutable states : int;
  mutable components_solved : int;
  mutable elapsed_ms : int;
}

let new_stats () =
  { decisions = 0; states = 0; components_solved = 0; elapsed_ms = 0 }

let pp_stats ppf s =
  Fmt.pf ppf "decisions=%d states=%d components_solved=%d elapsed_ms=%d"
    s.decisions s.states s.components_solved s.elapsed_ms

type ctl = {
  lim : limits;
  sink : stats;
  started : float;
  deadline : float option;  (* absolute, seconds since the epoch *)
}

exception Exhausted of exhausted

let start ?stats lim =
  let now = Unix.gettimeofday () in
  {
    lim;
    sink = (match stats with Some s -> s | None -> new_stats ());
    started = now;
    deadline =
      Option.map (fun ms -> now +. (float_of_int ms /. 1000.)) lim.timeout_ms;
  }

let stats t = t.sink
let limits t = t.lim

(* Round up to a started millisecond so a finished run never reports 0 —
   the counters in the bench baseline are guarded to be non-zero. *)
let elapsed_ms t =
  let ms = (Unix.gettimeofday () -. t.started) *. 1000. in
  max 1 (int_of_float (Float.ceil ms))

let finish t = t.sink.elapsed_ms <- elapsed_ms t

let exhaust t e =
  finish t;
  raise (Exhausted e)

let check_deadline t =
  match t.deadline with
  | Some dl when Unix.gettimeofday () > dl ->
      exhaust t (Deadline (Option.value ~default:0 t.lim.timeout_ms))
  | _ -> ()

let tick_decision t =
  t.sink.decisions <- t.sink.decisions + 1;
  (match t.lim.max_decisions with
  | Some m when t.sink.decisions > m -> exhaust t (Decisions m)
  | _ -> ());
  check_deadline t

let tick_state t =
  t.sink.states <- t.sink.states + 1;
  (match t.lim.max_states with
  | Some m when t.sink.states > m -> exhaust t (States m)
  | _ -> ());
  check_deadline t

let note_component t = t.sink.components_solved <- t.sink.components_solved + 1
