(** Unified resource budgets for the CQA engines.

    CQA under null-based repairs is Pi^p_2-complete (Theorem 3), so every
    engine in this repository runs under a budget.  This module is the one
    place those budgets are defined: a {!limits} record combines the state
    limit of the model-theoretic repair search ({!Repair.Enumerate}), the
    decision limit of the stable-model solver ({!Asp.Solver}) and a
    wall-clock deadline, and a running {!ctl} carries the limits together
    with per-stage consumption counters ({!stats}).

    The contract with the engines is:

    - budget-checked loops (solver decisions, grounder instantiation,
      repair-search states, per-component solves) call the [tick_*]
      checkpoints, which raise {!Exhausted} the moment a limit is hit;
    - {e no public engine API lets that exception escape} — every engine
      converts it to [Error (message e)] or, on the decomposed paths, to a
      partial result carrying the {!exhausted} marker for the components
      already solved (the polynomial-fallback shape of Laurent & Spyratos:
      when the full problem is too expensive, return the certified part).

    A [ctl] is shared across the stages of one engine run (and across the
    per-component solves of a decomposed run), so the limits are global to
    the run while each stage's consumption accumulates into one {!stats}
    record.

    The counters are {e domain-safe}: all consumption fields are
    [Atomic.t], so the per-component solves of a decomposed run may tick
    the same [ctl] concurrently from the worker domains of a
    {!Parallel.Pool} ([--jobs N]).  Exhaustion on a worker raises
    {!Exhausted} on that worker; the engines catch it inside the worker
    task, turn it into a value, and merge deterministically — the
    no-exception-escape contract is unchanged.  Optional per-worker
    consumption slots ({!set_workers}) attribute the ticks to the domain
    that made them for [--stats]. *)

type limits = {
  max_decisions : int option;  (** solver branch points, across the run *)
  max_states : int option;     (** repair-search states, across the run *)
  timeout_ms : int option;     (** wall-clock deadline, from {!start} *)
}

val unlimited : limits

val make :
  ?max_decisions:int -> ?max_states:int -> ?timeout_ms:int -> unit -> limits
(** Omitted fields are unlimited. *)

type exhausted =
  | Decisions of int  (** the decision limit that was hit *)
  | States of int     (** the state limit that was hit *)
  | Deadline of int   (** the deadline ([timeout_ms]) that passed *)

val message : exhausted -> string
(** The user-facing error string, matching the engines' historical
    formats: ["solver budget (%d decisions) exceeded"],
    ["repair search budget (%d states) exceeded"],
    ["deadline (%d ms) exceeded"]. *)

val pp_exhausted : exhausted Fmt.t

type tier =
  | Direct
      (** repair-less polynomial computation ({!Route.Direct}): deletion-only
          constraint slice with null-free, complete-multipartite conflicts *)
  | Shifted
      (** repair program statically head-cycle-free (Theorem 5), solved as a
          shifted normal program (Corollary 1 regime) *)
  | Disjunctive
      (** repair program without the static HCF guarantee: full disjunctive
          stable-model search *)
  | Enumerated
      (** outside Definition 9's program classes: model-theoretic
          state-space enumeration ({!Repair.Enumerate}) *)
(** The routing tiers of the [Auto] CQA method, cheapest first.  The type
    lives here (not in [lib/route]) so the per-tier consumption counters
    below need no dependency on the routing layer. *)

val tier_name : tier -> string
(** ["direct"], ["shifted"], ["disjunctive"], ["enumerate"]. *)

val pp_tier : tier Fmt.t

type worker = {
  w_decisions : int Atomic.t;
  w_states : int Atomic.t;
  w_components : int Atomic.t;
}
(** One per-worker consumption slot (see {!set_workers}). *)

type stats = {
  decisions : int Atomic.t;         (** solver branch points explored *)
  states : int Atomic.t;            (** repair-search states visited *)
  components_solved : int Atomic.t; (** decomposed components completed *)
  elapsed_ms : int Atomic.t;
      (** wall-clock of the run, rounded up to a started millisecond;
          written by {!finish} (and on exhaustion), [0] while running *)
  conflicts : int Atomic.t;
      (** falsified clauses hit by the CDCL solver ({!tick_conflict});
          all five CDCL counters stay 0 under the [`Dpll] search mode *)
  learned : int Atomic.t;   (** nogoods added by conflict analysis *)
  restarts : int Atomic.t;  (** Luby restarts taken *)
  backjump_len : int Atomic.t;
      (** total decision levels undone by non-chronological backjumps *)
  phase_saved : int Atomic.t;
      (** VSIDS decisions that re-tried a saved true polarity
          ({!note_phase_saved}) *)
  routed : int Atomic.t array;
      (** components classified per routing {!tier} (read through
          {!routed}); all zero outside the [Auto] method *)
  mutable degradations : (string * string) list;
      (** routed-degradation notes, in reverse emission order (read through
          {!degradations}); written by coordinator-side fallback steps only *)
  mutable workers : worker array;
      (** per-worker slots, [[||]] unless {!set_workers} installed them;
          slot 0 is the coordinating domain, slots 1..jobs the pool
          workers *)
}

val new_stats : unit -> stats

val set_workers : stats -> int -> unit
(** [set_workers s jobs] installs [jobs + 1] per-worker slots (slot 0 for
    the coordinating domain).  Must be called before any worker domain is
    spawned — the engines' pool-init hooks then claim slots 1..jobs with
    {!set_worker_slot}. *)

val set_worker_slot : int -> unit
(** Assign the calling domain's stats slot (domain-local; default 0).
    Called from {!Parallel.Pool}'s [init] hook by the decomposed
    engines. *)

val pp_stats : stats Fmt.t
(** The global line: [decisions=… states=… components_solved=…
    elapsed_ms=…]. *)

val routed : stats -> tier -> int
(** Components dispatched to [tier] by the routing layer. *)

val routed_total : stats -> int
(** Components dispatched across all tiers ([0] outside [Auto]). *)

val degradations : stats -> (string * string) list
(** Routed-degradation notes [(stage, message)] in emission order —
    every place an engine silently substituted a cheaper-but-sound
    strategy for the requested one. *)

val pp_routed : stats Fmt.t
(** The routing line: [direct=… shifted=… disjunctive=… enumerate=…].
    Printed by the CLI only when {!routed_total} is non-zero, so the
    historical [--stats] output is unchanged outside [Auto]. *)

val pp_degradations : stats Fmt.t
(** One ["degraded[stage]: message"] line per note (nothing when no
    degradation occurred). *)

val pp_workers : stats Fmt.t
(** One ["  worker i: …"] line per pool slot (nothing when
    {!set_workers} was never called). *)

type ctl
(** A started budget: limits, the absolute deadline and the stats sink. *)

exception Exhausted of exhausted
(** Raised by the checkpoints below.  Internal to the engines: every
    public API catches it and returns [Error]/a partial outcome. *)

val start : ?stats:stats -> limits -> ctl
(** Start the clock.  [stats] (fresh by default) receives the counters;
    pass an existing record to surface them (e.g. for [--stats]). *)

val stats : ctl -> stats
val limits : ctl -> limits

val elapsed_ms : ctl -> int
(** Milliseconds since {!start}, rounded up (never [0]). *)

val tick_decision : ctl -> unit
(** Count one solver decision; checks the decision limit and the
    deadline.  @raise Exhausted when either is hit. *)

val tick_state : ctl -> unit
(** Count one repair-search state; checks the state limit and the
    deadline.  @raise Exhausted when either is hit. *)

val check_deadline : ctl -> unit
(** Deadline check alone — for loops with no natural counter (grounder
    instantiation, decomposition planning).  @raise Exhausted on
    deadline. *)

val tick_conflict : ctl -> unit
(** Count one CDCL conflict and check the deadline — conflicts are the
    natural deadline granularity of the learning search, whose decisions
    can be thousands of conflicts apart under heavy propagation.  No count
    limit: the decision limit stays the only search-size bound, so [`Dpll]
    and [`Cdcl] runs exhaust comparably.  @raise Exhausted on deadline. *)

val note_learned : ctl -> unit
(** Count one learned nogood.  Never raises. *)

val note_restart : ctl -> unit
(** Count one Luby restart.  Never raises. *)

val note_backjump : ctl -> int -> unit
(** Accumulate the length (decision levels undone) of one
    non-chronological backjump.  Never raises. *)

val note_phase_saved : ctl -> unit
(** Count one VSIDS decision that re-used a saved true polarity (phase
    saving).  Never raises. *)

val search_total : stats -> int
(** Sum of the five CDCL counters — non-zero iff a CDCL search ran. *)

val pp_search : stats Fmt.t
(** The CDCL line:
    [conflicts=… learned=… restarts=… backjump_len=… phase_saved=…].
    Printed by the CLI only when {!search_total} is non-zero, so [--stats]
    output is unchanged under [`Dpll]. *)

val remaining_ms : ctl -> int option
(** Milliseconds until the deadline, never negative; [None] without one.
    Lets a serving loop report how much of a per-request deadline a
    request had left. *)

val guard : (unit -> ('a, string) result) -> ('a, string) result
(** [guard f] extends the no-exception-escape contract to callers outside
    the engines: an {!Exhausted} escaping [f] (e.g. from a code path a
    serving loop drives directly) becomes [Error (message e)] instead of
    killing the loop.  Any other exception still propagates — the serving
    loop's own catch-all owns those. *)

val note_component : ctl -> unit
(** Count one decomposed component solved to completion {e and kept in
    the outcome}.  Called by the deterministic merge step (never by a
    worker), so the counter is identical across [--jobs] settings.  Never
    raises. *)

val note_worker_component : ctl -> unit
(** Attribute one completed component solve to the calling domain's
    per-worker slot (no-op without {!set_workers}).  Called by the solve
    itself — under exhaustion a worker may complete a component the merge
    later degrades, so the per-worker slots attribute {e work done} while
    [components_solved] counts {e results kept}.  Never raises. *)

val note_route : ctl -> tier -> unit
(** Count one component dispatched to [tier].  Called by the routing
    layer's classification step (coordinator only).  Never raises. *)

val note_degraded : ctl -> stage:string -> string -> unit
(** Record a routed-degradation note: [stage] names the engine step that
    degraded, the message says what was substituted and why.  Called by
    the deterministic merge/fallback steps only (never by a pool
    worker).  Never raises. *)

val finish : ctl -> unit
(** Record the elapsed wall-clock into the stats.  Idempotent. *)
