(** Blocking buffered line I/O over a file descriptor, shared by the
    server and client sides of the wire. *)

type t

val create : Unix.file_descr -> t

val read_line :
  ?max_line:int -> t -> [ `Line of string | `Overflow | `Eof ]
(** Next '\n'-terminated line (the '\n' and a trailing '\r' stripped).
    A line longer than [max_line] (default 1 MiB) is discarded — never
    buffered — and reported as [`Overflow].  EOF after a partial line
    yields that line first, then [`Eof]; retries on [EINTR].  Other
    [Unix.Unix_error]s propagate (the connection loop owns them). *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying on short writes and [EINTR]. *)
