(** The session line protocol, shared by the stdin REPL
    ([cqanull session]) and the socket server ([cqanull serve]).

    One {!exec} call turns one request line into one {!reply}.

    {b Hardening contract} (the serving-loop extension of {!Budget}'s
    no-exception-escape contract): {!exec} never raises.  Parse errors,
    schema violations, unknown commands, budget trips and unexpected
    exceptions inside a request all become protocol-level ["error: ..."]
    replies, so a bad request can never kill the loop it runs under.
    Reply texts are byte-identical to the PR 5 REPL's stdout for the same
    requests (pinned by [test/cli/session.t]). *)

type env = {
  schema : Relational.Schema.t;  (** for insert/delete schema checks *)
  queries : (string * Query.Qsyntax.t) list;  (** named queries *)
}

type config = {
  engine : Session.engine;
  jobs : int;  (** worker domains per request (REPL); servers pass [1] *)
  capacity : int;  (** private-cache capacity; ignored with [cache] *)
  timeout_ms : int option;  (** per-request deadline *)
  want_stats : bool;  (** budget counters appended to each reply *)
  allow_load : bool;  (** [load FILE] permitted (REPL yes, server no) *)
  max_line : int;  (** request lines longer than this are rejected *)
  cache : Session.Cache.t option;  (** shared component cache, if any *)
  extra_stats : (Format.formatter -> unit) option;
      (** appended to the [stats] reply — the server adds the global
          cache line here *)
}

val default_max_line : int
(** 1 MiB. *)

val repl_config :
  ?engine:Session.engine ->
  ?jobs:int ->
  ?timeout_ms:int ->
  ?want_stats:bool ->
  ?capacity:int ->
  unit ->
  config
(** The REPL's configuration: loads allowed, private cache, default line
    limit, no extra stats. *)

val env_of_loaded : Lang.Load.loaded -> env

type t
(** Protocol state: one session (or none yet) plus its environment. *)

type reply = { text : string; quit : bool }
(** [text] is the full reply (possibly empty, every line
    '\n'-terminated); [quit] signals the peer asked to end the
    conversation. *)

val create : config -> t

val session : t -> Session.t option
(** The live session, once a database is loaded or attached. *)

val attach :
  ?violations:Semantics.Nullsat.violation list ->
  t ->
  base:Relational.Instance.t ->
  ics:Ic.Constr.t list ->
  env ->
  Session.t
(** Install a session over [base] directly — the server path, where every
    connection starts from the shared base instance and [violations] was
    computed once for all of them. *)

val exec : t -> string -> reply
(** Serve one request line.  Never raises. *)

val load : t -> string -> reply
(** [load t path] loads a surface file exactly like the [load] command
    (regardless of [allow_load] — this is the trusted startup path). *)

val oversized : t -> reply
(** The reply for a line the transport already discarded as oversized
    (see {!Wire.read_line}), matching {!exec}'s in-band length check. *)
