(* A lock-step client for the framed server wire: send one request line,
   read the reply up to its "." frame.  Used by `cqanull connect` and the
   bench replay driver. *)

type t = { fd : Unix.file_descr; wire : Wire.t }

let connect ?(retry_ms = 0) addr =
  let deadline = Unix.gettimeofday () +. (float_of_int retry_ms /. 1000.) in
  let rec go () =
    let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd addr with
    | () -> Ok { fd; wire = Wire.create fd }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (* the server may still be binding: retry within the budget *)
        if Unix.gettimeofday () < deadline then begin
          Thread.delay 0.02;
          go ()
        end
        else Error (Unix.error_message e)
  in
  go ()

let request t line =
  match Wire.write_all t.fd (line ^ "\n") with
  | exception Unix.Unix_error _ -> Error `Closed
  | () ->
      let buf = Buffer.create 256 in
      let rec read () =
        match Wire.read_line ~max_line:max_int t.wire with
        | `Line "." -> Ok (Buffer.contents buf)
        | `Line l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n';
            read ()
        | `Overflow -> read ()
        | `Eof -> Error `Closed
        | exception Unix.Unix_error _ -> Error `Closed
      in
      read ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
