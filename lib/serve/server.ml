(* The concurrent session server: one process, one shared read-only base
   instance, one process-global component cache, N independent sessions.

   Concurrency model: the accept loop runs on the calling domain and
   spawns one lightweight [Thread] per connection (threads share the
   domain and release it on blocking I/O, so thousands of mostly-idle
   connections are cheap); every request's compute is dispatched through
   [Parallel.Pool.run] onto the [jobs] worker domains, so CPU-bound work
   parallelizes across cores while I/O concurrency stays thread-cheap.
   Server sessions are created with [jobs = 1]: a request already runs on
   a pool worker, and a worker calling back into its own pool would
   deadlock once all workers block waiting (see {!Parallel.Pool.run}).

   Every reply is followed by a frame line containing a single ".", so
   clients can run lock-step request/reply without knowing how many lines
   a reply has. *)

type config = {
  engine : Session.engine;
  jobs : int;  (* worker domains shared by all connections *)
  cache_capacity : int;
  timeout_ms : int option;  (* per-request deadline *)
  want_stats : bool;
  max_line : int;
}

type t = {
  cfg : config;
  base : Relational.Instance.t;
  ics : Ic.Constr.t list;
  violations : Semantics.Nullsat.violation list;  (* computed once *)
  env : Protocol.env;
  cache : Session.Cache.t;
  pool : Parallel.Pool.t;
  connections : int Atomic.t;
  requests : int Atomic.t;
  active : int Atomic.t;
  stop : bool Atomic.t;
  listener : Unix.file_descr option Atomic.t;
}

type stats = {
  connections : int;
  requests : int;
  active : int;
  cache : Session.Cache.stats;
}

let create cfg ~base ~ics env =
  {
    cfg;
    base;
    ics;
    violations =
      Semantics.Nullsat.canonical_violations (Semantics.Nullsat.check base ics);
    env;
    cache = Session.Cache.create ~capacity:cfg.cache_capacity;
    pool = Parallel.Pool.create ~jobs:cfg.jobs ();
    connections = Atomic.make 0;
    requests = Atomic.make 0;
    active = Atomic.make 0;
    stop = Atomic.make false;
    listener = Atomic.make None;
  }

let stats (t : t) : stats =
  {
    connections = Atomic.get t.connections;
    requests = Atomic.get t.requests;
    active = Atomic.get t.active;
    cache = Session.Cache.stats t.cache;
  }

let cache (t : t) = t.cache
let violations t = t.violations

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "@[<h>server: connections=%d requests=%d active=%d@]@.%a"
    s.connections s.requests s.active Session.Cache.pp_stats s.cache

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    match Atomic.get t.listener with
    | Some fd -> (
        (* wake the accept loop: shutting down the listening socket makes
           a blocked accept fail immediately (close alone may not) *)
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ()

let stopping t = Atomic.get t.stop

let protocol_config t =
  {
    Protocol.engine = t.cfg.engine;
    jobs = 1;  (* requests already run on a pool worker *)
    capacity = t.cfg.cache_capacity;
    timeout_ms = t.cfg.timeout_ms;
    want_stats = t.cfg.want_stats;
    allow_load = false;
    max_line = t.cfg.max_line;
    cache = Some t.cache;
    extra_stats =
      Some
        (fun ppf ->
          Fmt.pf ppf "%a@." Session.Cache.pp_stats (Session.Cache.stats t.cache));
  }

let frame = ".\n"

let handle_conn (t : t) cfd =
  Atomic.incr t.connections;
  Atomic.incr t.active;
  let finally () =
    (try Unix.close cfd with Unix.Unix_error _ -> ());
    Atomic.decr t.active
  in
  let serve () =
    let wire = Wire.create cfd in
    let p = Protocol.create (protocol_config t) in
    ignore
      (Protocol.attach ~violations:t.violations p ~base:t.base ~ics:t.ics
         t.env);
    let send (r : Protocol.reply) = Wire.write_all cfd (r.text ^ frame) in
    let rec loop () =
      match Wire.read_line ~max_line:t.cfg.max_line wire with
      | `Eof -> ()
      | `Overflow ->
          Atomic.incr t.requests;
          send (Protocol.oversized p);
          loop ()
      | `Line line ->
          Atomic.incr t.requests;
          if String.trim line = "shutdown" then begin
            send { Protocol.text = "shutting down\n"; quit = true };
            request_stop t
          end
          else
            let reply =
              Parallel.Pool.run t.pool (fun () -> Protocol.exec p line)
            in
            send reply;
            if reply.Protocol.quit then () else loop ()
    in
    loop ()
  in
  (* a dying connection (EPIPE, reset, anything) takes only itself down *)
  (try serve () with _ -> ());
  finally ()

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 128;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, port)

let run t fd =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Atomic.set t.listener (Some fd);
  if Atomic.get t.stop then ()  (* stopped before we started listening *)
  else begin
    let rec accept_loop () =
      if not (Atomic.get t.stop) then
        match Unix.accept ~cloexec:true fd with
        | cfd, _ ->
            ignore
              (Thread.create
                 (fun () -> try handle_conn t cfd with _ -> ())
                 ());
            accept_loop ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
            accept_loop ()
        | exception Unix.Unix_error (_, _, _) ->
            (* listener gone: either [request_stop] shut it down or the
               socket died under us — stop serving either way *)
            ()
    in
    accept_loop ()
  end;
  Atomic.set t.stop true;
  (* drain in-flight connections before tearing the pool down *)
  while Atomic.get t.active > 0 do
    Thread.delay 0.005
  done;
  Parallel.Pool.close t.pool;
  try Unix.close fd with Unix.Unix_error _ -> ()
