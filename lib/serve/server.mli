(** The concurrent session server behind [cqanull serve]: one process,
    one shared read-only base instance, one process-global component
    cache ({!Session.Cache}), N independent sessions with O(delta)
    per-session overlays.

    Concurrency model: one lightweight thread per connection for I/O (the
    accept loop spawns them), one shared {!Parallel.Pool} of [jobs]
    worker domains for request compute ({!Parallel.Pool.run}).  Server
    sessions run with [jobs = 1] — a request already executes on a pool
    worker, and calling back into the same pool would deadlock.

    Wire framing: the server speaks the {!Protocol} line protocol and
    terminates every reply with a frame line containing a single ["."],
    so clients run lock-step request/reply without knowing how many lines
    a reply has.  The extra command [shutdown] stops the whole server
    (replying ["shutting down"]); [quit] ends only that connection. *)

type config = {
  engine : Session.engine;
  jobs : int;  (** worker domains shared by all connections *)
  cache_capacity : int;  (** process-global component cache, in entries *)
  timeout_ms : int option;  (** per-request deadline *)
  want_stats : bool;  (** budget counters appended to each reply *)
  max_line : int;
}

type t

type stats = {
  connections : int;  (** accepted, lifetime *)
  requests : int;  (** request lines served, lifetime *)
  active : int;  (** connections currently open *)
  cache : Session.Cache.stats;
}

val create :
  config ->
  base:Relational.Instance.t ->
  ics:Ic.Constr.t list ->
  Protocol.env ->
  t
(** Builds the shared state: base violations are computed once here and
    reused by every session; the worker pool spawns immediately. *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path (unlinking any stale
    socket file first). *)

val listen_tcp : int -> Unix.file_descr * int
(** Bind and listen on loopback TCP; returns the actual port (useful with
    port [0]). *)

val run : t -> Unix.file_descr -> unit
(** Serve the listening socket until a [shutdown] request (or
    {!request_stop}); then drain in-flight connections, close the worker
    pool and the listener.  Ignores [SIGPIPE] — a vanished client must
    not kill the process. *)

val request_stop : t -> unit
(** Ask {!run} to stop accepting and wind down.  Thread-safe,
    idempotent. *)

val stopping : t -> bool
val stats : t -> stats

val violations : t -> Semantics.Nullsat.violation list
(** The shared base instance's canonical violations (computed once by
    {!create}). *)

val cache : t -> Session.Cache.t
val pp_stats : stats Fmt.t
