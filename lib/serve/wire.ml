(* Blocking buffered line I/O over a raw file descriptor — the server and
   client sides of the wire share it so framing bugs cannot diverge.

   Lines are '\n'-terminated; a trailing '\r' is stripped (telnet
   friendliness).  A line longer than [max_line] is discarded — including
   across reads — and reported as [`Overflow] instead of buffering
   unboundedly, so a hostile peer cannot balloon the process. *)

type t = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  pending : Buffer.t;  (* received bytes of the current, unterminated line *)
  lines : string Queue.t;  (* complete lines not yet handed out *)
  mutable dropping : bool;  (* discarding an oversized line until its '\n' *)
  mutable overflows : int;  (* oversized lines pending report *)
  mutable eof : bool;
}

let create fd =
  {
    fd;
    chunk = Bytes.create 8192;
    pending = Buffer.create 256;
    lines = Queue.create ();
    dropping = false;
    overflows = 0;
    eof = false;
  }

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* Fold [chunk[0..n)] into the line queue, enforcing [max_line]. *)
let ingest t ~max_line n =
  for i = 0 to n - 1 do
    let c = Bytes.get t.chunk i in
    if c = '\n' then
      if t.dropping then begin
        t.dropping <- false;
        t.overflows <- t.overflows + 1
      end
      else begin
        Queue.push (strip_cr (Buffer.contents t.pending)) t.lines;
        Buffer.clear t.pending
      end
    else if not t.dropping then
      if Buffer.length t.pending >= max_line then begin
        Buffer.clear t.pending;
        t.dropping <- true
      end
      else Buffer.add_char t.pending c
  done

let read_line ?(max_line = 1 lsl 20) t =
  let rec next () =
    if not (Queue.is_empty t.lines) then `Line (Queue.pop t.lines)
    else if t.overflows > 0 then begin
      t.overflows <- t.overflows - 1;
      `Overflow
    end
    else if t.eof then `Eof
    else
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 ->
          t.eof <- true;
          (* EOF mid-command: the unterminated tail still counts as a line,
             matching [In_channel.input_line] on a final line without '\n' *)
          if t.dropping then begin
            t.dropping <- false;
            t.overflows <- t.overflows + 1
          end
          else if Buffer.length t.pending > 0 then begin
            Queue.push (strip_cr (Buffer.contents t.pending)) t.lines;
            Buffer.clear t.pending
          end;
          next ()
      | n ->
          ingest t ~max_line n;
          next ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
  in
  next ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
