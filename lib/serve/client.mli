(** A lock-step client for the framed server wire ({!Server}): send one
    request line, read the reply up to its ["."] frame. *)

type t

val connect : ?retry_ms:int -> Unix.sockaddr -> (t, string) result
(** Connect, retrying for up to [retry_ms] milliseconds (default [0]: one
    attempt) — covers the race against a server still binding its
    socket. *)

val request : t -> string -> (string, [ `Closed ]) result
(** [request t line] sends [line] and returns the reply text (every line
    '\n'-terminated, frame excluded; [Ok ""] for an empty reply).
    [`Closed] when the server hung up before the frame. *)

val close : t -> unit
