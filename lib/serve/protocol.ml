(* The session line protocol, shared by the stdin REPL (`cqanull session`)
   and the socket server (`cqanull serve`).

   One [exec] call turns one request line into one reply string.  The
   hardening contract (the serving-loop extension of [Budget]'s
   no-exception-escape contract): no input line and no failure inside a
   request may raise out of [exec] — parse errors, schema errors, budget
   trips and even unexpected exceptions all become protocol-level
   ["error: ..."] replies, so a single bad request can never kill the
   loop it runs under.  Replies are rendered into a buffer formatter with
   the same margin as the REPL's [std_formatter], so the server's replies
   are byte-identical to the REPL's output for the same requests. *)

type env = {
  schema : Relational.Schema.t;
  queries : (string * Query.Qsyntax.t) list;
}

type config = {
  engine : Session.engine;
  jobs : int;
  capacity : int;
  timeout_ms : int option;  (* per-request deadline *)
  want_stats : bool;
  allow_load : bool;  (* REPL yes; server sessions share one base *)
  max_line : int;
  cache : Session.Cache.t option;  (* shared component cache, if any *)
  extra_stats : (Format.formatter -> unit) option;
      (* appended to the `stats` reply — the server adds the global cache
         line here *)
}

let default_max_line = 1 lsl 20

let repl_config ?(engine = Session.Program) ?(jobs = 1) ?timeout_ms
    ?(want_stats = false) ?(capacity = 256) () =
  {
    engine;
    jobs;
    capacity;
    timeout_ms;
    want_stats;
    allow_load = true;
    max_line = default_max_line;
    cache = None;
    extra_stats = None;
  }

type t = {
  cfg : config;
  (* (session, environment) once a database is in; commands before that
     are answered with an error instead of crashing the loop *)
  mutable state : (Session.t * env) option;
}

type reply = { text : string; quit : bool }

let create cfg = { cfg; state = None }
let session t = Option.map fst t.state
let env_of_loaded (l : Lang.Load.loaded) =
  { schema = l.Lang.Load.schema; queries = l.Lang.Load.queries }

let attach ?violations t ~base ~ics env =
  let s =
    Session.create ~engine:t.cfg.engine ~jobs:t.cfg.jobs
      ~capacity:t.cfg.capacity ?cache:t.cfg.cache ?violations base ics
  in
  t.state <- Some (s, env);
  s

(* ------------------------------------------------------------------ *)
(* Per-request budget plumbing, as in the one-shot subcommands: one budget
   per request, stats printed on demand. *)

let start_budget t =
  if t.cfg.timeout_ms = None && not t.cfg.want_stats then None
  else
    let stats = Budget.new_stats () in
    if t.cfg.want_stats && t.cfg.jobs > 1 then
      Budget.set_workers stats t.cfg.jobs;
    Some (Budget.start ~stats (Budget.make ?timeout_ms:t.cfg.timeout_ms ()))

let report_budget t ppf budget =
  match budget with
  | None -> ()
  | Some b ->
      Budget.finish b;
      if t.cfg.want_stats then begin
        let stats = Budget.stats b in
        Fmt.pf ppf "stats: %a@." Budget.pp_stats stats;
        if Budget.routed_total stats > 0 then
          Fmt.pf ppf "routed: %a@." Budget.pp_routed stats;
        Fmt.pf ppf "%a" Budget.pp_degradations stats;
        Fmt.pf ppf "%a" Budget.pp_workers stats
      end

(* ------------------------------------------------------------------ *)
(* Request handlers.  The reply text of every path below is the PR 5 REPL's,
   verbatim (pinned by test/cli/session.t). *)

let print_repairs ppf d repairs =
  List.iteri
    (fun i r ->
      Fmt.pf ppf "repair %d: %a@." (i + 1) Relational.Instance.pp_inline r;
      Fmt.pf ppf "  delta: %a@." Relational.Instance.pp_inline
        (Relational.Instance.symdiff d r))
    repairs;
  Fmt.pf ppf "%d repair(s)@." (List.length repairs)

let loaded_line ppf path s (l : Lang.Load.loaded) =
  Fmt.pf ppf
    "loaded %s: %d tuples, %d constraints, %d queries, %d violation(s)@." path
    (Relational.Instance.cardinal (Session.instance s))
    (List.length l.Lang.Load.ics)
    (List.length l.Lang.Load.queries)
    (List.length (Session.violations s))

let load_file t ppf path =
  match Lang.Load.of_file path with
  | Error msg -> Fmt.pf ppf "error: %s@." msg
  | Ok l ->
      let s = attach t ~base:l.Lang.Load.instance ~ics:l.Lang.Load.ics
          (env_of_loaded l)
      in
      (* the file's own update statements replay through the engine, so a
         later `stats` already shows their delta counters *)
      if l.Lang.Load.updates <> [] then Session.apply s l.Lang.Load.updates;
      loaded_line ppf path s l

let with_session t ppf f =
  match t.state with
  | None -> Fmt.pf ppf "error: no database loaded (use: load FILE)@."
  | Some (s, env) -> f s env

(* updates are parsed by the surface parser itself: the whole line is an
   `insert`/`delete` item (the trailing dot is optional here) *)
let do_update t ppf line =
  with_session t ppf (fun s env ->
      let line = String.trim line in
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '.' then
          line
        else line ^ "."
      in
      match Lang.Parser.parse line with
      | exception Lang.Parser.Parse_error (msg, _, col) ->
          Fmt.pf ppf "error: parse error at column %d: %s@." col msg
      | exception Lang.Lexer.Lex_error (msg, _, col) ->
          Fmt.pf ppf "error: lexical error at column %d: %s@." col msg
      | items -> (
          let op_of = function
            | Lang.Surface.Insert (name, vs) ->
                Some (Delta.insert (Relational.Atom.make name vs))
            | Lang.Surface.Delete (name, vs) ->
                Some (Delta.delete (Relational.Atom.make name vs))
            | _ -> None
          in
          match List.map op_of items with
          | ops when List.for_all Option.is_some ops && ops <> [] -> (
              let ops = List.filter_map Fun.id ops in
              let bad =
                List.find_opt
                  (fun op ->
                    Result.is_error
                      (Relational.Schema.check_atom env.schema (Delta.atom op)))
                  ops
              in
              match bad with
              | Some op ->
                  Fmt.pf ppf "error: %s@."
                    (Result.fold ~ok:(fun () -> "") ~error:Fun.id
                       (Relational.Schema.check_atom env.schema (Delta.atom op)))
              | None ->
                  Session.apply s ops;
                  Fmt.pf ppf "ok: %d tuples, %d violation(s)@."
                    (Relational.Instance.cardinal (Session.instance s))
                    (List.length (Session.violations s)))
          | _ -> Fmt.pf ppf "error: expected insert/delete statement(s)@."))

let do_repairs t ppf =
  with_session t ppf (fun s _ ->
      let budget = start_budget t in
      (match Budget.guard (fun () -> Session.repairs ?budget s) with
      | Error msg -> Fmt.pf ppf "error: %s@." msg
      | Ok reps -> print_repairs ppf (Session.instance s) reps);
      report_budget t ppf budget)

let do_cqa t ppf rest =
  with_session t ppf (fun s env ->
      let arg = String.trim rest in
      let resolved =
        match List.assoc_opt arg env.queries with
        | Some q -> Ok (arg, q)
        | None when String.contains arg ':' -> (
            (* inline query declaration, e.g. cqa q(X): P(X). *)
            let text =
              "query "
              ^
              if String.length arg > 0 && arg.[String.length arg - 1] = '.'
              then arg
              else arg ^ "."
            in
            match Lang.Parser.parse text with
            | [ Lang.Surface.Query (name, head, body) ] -> (
                match Query.Qsyntax.make ~name ~head body with
                | q -> Ok (name, q)
                | exception Invalid_argument msg -> Error msg)
            | _ -> Error "expected a single query"
            | exception Lang.Parser.Parse_error (msg, _, col) ->
                Error (Printf.sprintf "parse error at column %d: %s" col msg)
            | exception Lang.Lexer.Lex_error (msg, _, col) ->
                Error (Printf.sprintf "lexical error at column %d: %s" col msg)
            )
        | None ->
            Error
              (Printf.sprintf
                 "no query named %s (declare it in the file or pass name(X): \
                  body)"
                 arg)
      in
      match resolved with
      | Error msg -> Fmt.pf ppf "error: %s@." msg
      | Ok (name, q) ->
          Fmt.pf ppf "query %s: %a@." name Query.Qsyntax.pp q;
          let budget = start_budget t in
          (match Budget.guard (fun () -> Session.cqa ?budget s q) with
          | Error msg -> Fmt.pf ppf "  error: %s@." msg
          | Ok outcome -> Fmt.pf ppf "%a@." Query.Cqa.pp_outcome outcome);
          report_budget t ppf budget)

let do_check t ppf =
  with_session t ppf (fun s _ ->
      match Session.violations s with
      | [] ->
          Fmt.pf ppf "consistent (%d tuples, %d constraints)@."
            (Relational.Instance.cardinal (Session.instance s))
            (List.length (Session.constraints s))
      | violations ->
          List.iter
            (fun v -> Fmt.pf ppf "%a@." Semantics.Nullsat.pp_violation v)
            violations;
          Fmt.pf ppf "%d violation(s)@." (List.length violations))

let do_stats t ppf =
  with_session t ppf (fun s _ ->
      Fmt.pf ppf "%a@." Session.pp_stats (Session.stats s);
      match t.cfg.extra_stats with Some extra -> extra ppf | None -> ())

let known_commands t =
  if t.cfg.allow_load then
    "load, insert, delete, cqa, repairs, check, stats, quit"
  else "insert, delete, cqa, repairs, check, stats, quit"

let run_line t ppf line =
  if String.length line > t.cfg.max_line then begin
    Fmt.pf ppf "error: line exceeds %d bytes@." t.cfg.max_line;
    false
  end
  else
    let line = String.trim line in
    if line = "" || line.[0] = '%' then false
    else
      let cmd, rest =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i ->
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
      in
      match cmd with
      | "quit" | "exit" -> true
      | "load" when t.cfg.allow_load ->
          load_file t ppf (String.trim rest);
          false
      | "load" ->
          Fmt.pf ppf
            "error: load is disabled here (the server owns the base \
             database)@.";
          false
      | "insert" | "delete" ->
          do_update t ppf line;
          false
      | "cqa" ->
          do_cqa t ppf rest;
          false
      | "repairs" ->
          do_repairs t ppf;
          false
      | "check" ->
          do_check t ppf;
          false
      | "stats" ->
          do_stats t ppf;
          false
      | _ ->
          Fmt.pf ppf "error: unknown command '%s' (%s)@." cmd
            (known_commands t);
          false

let with_buffer f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let quit = f ppf in
  Format.pp_print_flush ppf ();
  { text = Buffer.contents buf; quit }

let exec t line =
  with_buffer (fun ppf ->
      match run_line t ppf line with
      | quit -> quit
      | exception Budget.Exhausted e ->
          (* belt and braces: [Budget.guard] wraps the request bodies, but
             the contract must hold even for a path that slips through *)
          Fmt.pf ppf "error: %s@." (Budget.message e);
          false
      | exception e ->
          Fmt.pf ppf "error: internal: %s@." (Printexc.to_string e);
          false)

let load t path = with_buffer (fun ppf -> load_file t ppf path; false)

let oversized t =
  with_buffer (fun ppf ->
      Fmt.pf ppf "error: line exceeds %d bytes@." t.cfg.max_line;
      false)
