(** First-UIP conflict analysis, VSIDS branching activities and the Luby
    restart sequence — the learning half of the CDCL search mode of
    {!Solver} (the propagation half is {!Watch}). *)

type t
(** Analysis state over a fixed atom universe: per-atom activities and the
    resolution scratch marks. *)

val create : int -> t

val activity : t -> int -> float
(** Current VSIDS activity of an atom; the branching heuristic picks the
    unassigned atom maximizing it. *)

val save_phase : t -> int -> bool -> unit
(** Remember the polarity an atom held when it was unassigned (phase
    saving): the next VSIDS decision on it re-tries that polarity, so work
    proven about a subtree survives restarts and long backjumps. *)

val phase : t -> int -> bool
(** The saved polarity (false until {!save_phase} stores true). *)

val bump : t -> int -> unit
(** Add the current increment to an atom's activity (rescaling everything
    near overflow). *)

val decay : t -> unit
(** Age all activities by growing the increment — one float op per
    conflict. *)

val luby : int -> int
(** The reluctant-doubling sequence [1 1 2 1 1 2 4 ...], 1-indexed;
    restart [i] fires after [base * luby i] conflicts. *)

val analyze : t -> Watch.t -> int array -> int array * int
(** [analyze t w conflict] — 1UIP resolution of [conflict], a clause whose
    literals are all false under [w]'s assignment with at least one at the
    current decision level (which must be positive).  Returns the learned
    clause (asserting literal at index 0, a deepest remaining literal at
    index 1, level-0 literals dropped) and the backjump level.  Bumps every
    resolved-over atom. *)
