(** Two-watched-literal clause database with a level-tagged trail — the
    propagation core of the CDCL search mode of {!Solver}.

    Literals are ints: atom [a] is [2a] positive, [2a + 1] negative;
    complementation is [lxor 1].  The database owns the assignment (value,
    decision level and reason clause per atom), the trail of assigned-true
    literals, and the watch lists; {!Solver} layers branching, support
    propagation and model enumeration on top, {!Learn} the 1UIP conflict
    analysis.

    Unlike the counter engine, assigning an atom costs O(1) here and only
    {!propagate} walks clauses — and only the clauses watching a literal
    that actually became false.  Clauses added mid-search (learned nogoods,
    materialized support reasons) are watched on their asserting literal
    and one currently-false literal; after deep backjumps their unit
    detection can weaken until re-touched, which the CDCL driver
    compensates with its support re-scan — full falsifications are always
    caught, so no spurious model can slip through. *)

type t

val unk : int
val tru : int
val fls : int

val create : int -> t
(** [create n] — a database over atoms [0 .. n-1], no clauses, level 0. *)

val atom_count : t -> int

val atom_value : t -> int -> int
(** Current value of an atom: {!unk}, {!tru} or {!fls}. *)

val lit_value : t -> int -> int
val lit_is_true : t -> int -> bool
val lit_is_false : t -> int -> bool

val level_of : t -> int -> int
(** Decision level at which the atom was assigned (meaningful only while
    assigned). *)

val reason_of : t -> int -> int
(** Reason clause id of the atom's assignment, or [-1] for decisions and
    unassigned atoms. *)

val decision_level : t -> int
val trail_size : t -> int

val trail_lit : t -> int -> int
(** [trail_lit t i] — the [i]-th assigned-true literal, assignment order. *)

val clause_lits : t -> int -> int array
(** The literal array of a clause id.  Shared, mutated by {!propagate}
    (watch reordering); the literal at index 0 of a reason clause is the
    literal it propagated, stable while that literal stays assigned. *)

val add_clause : t -> int array -> int
(** Store a clause and watch its first two literals; returns its id.  The
    caller guarantees the array is non-empty, duplicate-free and not
    tautological.  Length-1 clauses get no watches — enqueue their literal
    explicitly.  Mid-search additions must place the literal about to be
    enqueued at index 0 and a currently-false literal at index 1. *)

val push_level : t -> unit
(** Open a new decision level (call before enqueueing the decision). *)

val enqueue : t -> reason:int -> int -> bool
(** Make a literal true at the current level with the given reason clause
    ([-1] for a decision).  Returns [false] iff the literal is already
    false — the caller turns that into a conflict.  Already-true is a
    no-op. *)

val propagate : t -> int
(** Run watched-literal unit propagation to fixpoint from the trail
    frontier.  Returns a conflict clause id, or [-1]. *)

val backjump : t -> int -> on_undo:(int -> unit) -> unit
(** [backjump t lvl ~on_undo] pops the trail down to (and keeping) level
    [lvl]; [on_undo] sees each popped literal before its atom is cleared,
    newest first.  Resets the propagation frontier. *)

val touched : t -> int
(** Cumulative clauses visited by {!propagate} — the CDCL side of the
    [rules_touched] statistic. *)
