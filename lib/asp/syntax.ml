type const = Sym of string | Num of int

let sym s = Sym s
let num i = Num i

let compare_const a b =
  match a, b with
  | Num i, Num j -> Int.compare i j
  | Num _, Sym _ -> -1
  | Sym _, Num _ -> 1
  | Sym s, Sym t -> String.compare s t

let equal_const a b = compare_const a b = 0

let pp_const ppf = function
  | Sym s -> Fmt.string ppf s
  | Num i -> Fmt.int ppf i

type term = Var of string | Const of const

let var x = Var x
let csym s = Const (Sym s)
let cnum i = Const (Num i)

let pp_term ppf = function
  | Var x -> Fmt.string ppf x
  | Const c -> pp_const ppf c

let equal_term a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const c, Const d -> equal_const c d
  | (Var _ | Const _), _ -> false

type atom = { pred : string; args : term list }

let atom pred args = { pred; args }

let term_vars = function Var x -> [ x ] | Const _ -> []

(* Order-preserving dedup.  Hashtbl membership instead of List.mem: rule
   bodies over wide atoms make this O(n) where the list scan was O(n²). *)
let dedup l =
  match l with
  | [] | [ _ ] -> l
  | _ ->
      let seen = Hashtbl.create 16 in
      List.filter
        (fun x ->
          if Hashtbl.mem seen x then false
          else begin
            Hashtbl.add seen x ();
            true
          end)
        l

let atom_vars a = dedup (List.concat_map term_vars a.args)

let pp_atom ppf a =
  match a.args with
  | [] -> Fmt.string ppf a.pred
  | args -> Fmt.pf ppf "%s(%a)" a.pred Fmt.(list ~sep:(any ", ") pp_term) args

let compare_term a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1
  | Const c, Const d -> compare_const c d

let compare_atom a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else List.compare compare_term a.args b.args

let equal_atom a b = compare_atom a b = 0

type cmp_op = Eq | Neq | Lt | Leq | Gt | Geq

type builtin = { op : cmp_op; lhs : term; rhs : term }

let builtin op lhs rhs = { op; lhs; rhs }

let builtin_vars b = dedup (term_vars b.lhs @ term_vars b.rhs)

let eval_builtin op a b =
  let c = compare_const a b in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Leq -> c <= 0
  | Gt -> c > 0
  | Geq -> c >= 0

let op_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let pp_builtin ppf b =
  Fmt.pf ppf "%a %s %a" pp_term b.lhs (op_string b.op) pp_term b.rhs

type rule = {
  head : atom list;
  body_pos : atom list;
  body_neg : atom list;
  body_builtin : builtin list;
}

let rule ?(body_pos = []) ?(body_neg = []) ?(body_builtin = []) head =
  { head; body_pos; body_neg; body_builtin }

let fact a = rule [ a ]

let constraint_ ?body_pos ?body_neg ?body_builtin () =
  rule ?body_pos ?body_neg ?body_builtin []

let rule_vars r =
  dedup
    (List.concat_map atom_vars (r.head @ r.body_pos @ r.body_neg)
    @ List.concat_map builtin_vars r.body_builtin)

let is_fact r =
  r.body_pos = [] && r.body_neg = [] && r.body_builtin = []
  && match r.head with [ _ ] -> true | _ -> false

let is_constraint r = r.head = []
let is_disjunctive r = List.length r.head > 1

let pp_rule ppf r =
  let pp_body ppf () =
    let parts =
      List.map (Fmt.str "%a" pp_atom) r.body_pos
      @ List.map (Fmt.str "not %a" pp_atom) r.body_neg
      @ List.map (Fmt.str "%a" pp_builtin) r.body_builtin
    in
    Fmt.string ppf (String.concat ", " parts)
  in
  match r.head, (r.body_pos, r.body_neg, r.body_builtin) with
  | [], _ -> Fmt.pf ppf ":- %a." pp_body ()
  | head, ([], [], []) ->
      Fmt.pf ppf "%a." Fmt.(list ~sep:(any " v ") pp_atom) head
  | head, _ ->
      Fmt.pf ppf "%a :- %a."
        Fmt.(list ~sep:(any " v ") pp_atom)
        head pp_body ()

type program = rule list

let pp_program ppf p = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_rule) p

let predicates p =
  let of_atom a = (a.pred, List.length a.args) in
  List.concat_map
    (fun r -> List.map of_atom (r.head @ r.body_pos @ r.body_neg))
    p
  |> List.sort_uniq compare
