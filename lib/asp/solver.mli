(** Stable-model enumeration for ground disjunctive programs
    (Gelfond-Lifschitz semantics [18]).

    Two search engines share the entry point, selected by [?search]:

    - [`Cdcl] (the default): conflict-driven clause learning over the
      classical clause view — two-watched-literal propagation ({!Watch}),
      first-UIP learned nogoods with non-chronological backjumping
      ({!Learn}), VSIDS branching and Luby restarts.  Support propagation
      is materialized as clauses so its inferences participate in conflict
      analysis; models are enumerated by analyzing each found model's
      complement clause like a conflict, so restarts never repeat models.
    - [`Dpll]: the counter-based chronological engine described below —
      kept as the propagation-only differential oracle and for the bench
      tables' before/after comparisons.

    Both enumerate every total model of the program, completing each
    all-rules-satisfied partial assignment with false (sound: an unassigned
    atom set to true in a stable model would be unsupported).  Every
    candidate model [M] is then verified stable:

    - for a {e normal} candidate program (every head a singleton) the
      Gelfond-Lifschitz reduct [P^M] is definite and [M] is stable iff it
      equals the least model of [P^M] (computed by Dowling-Gallier
      counting);
    - for a disjunctive program the reduct is positive-disjunctive, and
      stability means [<=]-minimality: a secondary search looks for a model
      of the reduct properly contained in [M] (this sub-problem is the
      coNP-hard part of the Pi^p_2-completeness of the semantics [16]).

    Propagation is {e counter-based}: the occurrence index of the ground
    program ({!Ground.index}) maps each atom to the rules mentioning it,
    every rule keeps occurrence counters over the current assignment
    (#true-head, #unassigned-head, #false-pos, ...), and each assignment
    updates only the counters of the rules in the assigned atom's
    occurrence lists, feeding a worklist of rules to re-examine.
    Backtracking replays the same per-occurrence updates in reverse off the
    trail.  Support propagation keeps a live-supporter count per atom
    instead of re-filtering supporter lists.  See DESIGN.md, "Solver
    architecture", for the counter invariants.

    Atoms that occur in no rule head are fixed to false up front — they are
    unsupported in every stable model. *)

exception Budget_exceeded of int

type stats = {
  mutable decisions : int;       (** branch points explored *)
  mutable propagations : int;    (** literals forced by unit propagation *)
  mutable candidates : int;      (** total models reaching the stability check *)
  mutable minimality_checks : int;  (** disjunctive minimality sub-searches *)
  mutable queue_pushes : int;
      (** worklist insertions (rules and support-check atoms); always 0 for
          the sweep-based {!stable_models_naive} *)
  mutable rules_touched : int;
      (** rules examined by unit/support propagation: queue pops plus
          supporter-list scans for the counter engine, one per rule per
          sweep (plus supporter-list lengths) for the naive engine — the
          before/after metric of the occurrence-index rewrite *)
  mutable conflicts : int;
      (** falsified clauses hit by the CDCL engine (0 under [`Dpll]) *)
  mutable learned : int;  (** nogoods added by conflict analysis *)
  mutable restarts : int;  (** Luby restarts taken *)
  mutable backjump_len : int;
      (** total decision levels undone by non-chronological backjumps —
          divide by [learned] for the mean jump length *)
  mutable phase_saved : int;
      (** VSIDS decisions that re-used a saved true polarity (phase
          saving): each counted decision re-tried the polarity the atom
          held when a backjump or restart unassigned it, instead of the
          engine's default false *)
}

type search = [ `Cdcl | `Dpll ]
(** Search engine selector — see the module preamble. *)

val stable_models :
  ?budget:Budget.ctl -> ?limit:int -> ?max_decisions:int ->
  ?support_propagation:bool -> ?search:search -> ?stats:stats -> Ground.t ->
  int list list
(** All stable models as sorted lists of atom ids; [limit] caps how many are
    returned, [max_decisions] (default [10_000_000]) bounds the search.
    [budget] is the run-global budget: every decision also ticks it (and
    under [`Cdcl] every conflict checks the deadline), so a shared decision
    limit and the wall-clock deadline are enforced across the stages of an
    engine run (the per-call [max_decisions] bound remains local to this
    search).  [search] (default [`Cdcl]) selects the engine; both return
    the same model list.  [support_propagation] (default true) enables the
    supportedness propagation described above; disabling it is only useful
    for the ablation bench (table E12) — the result is identical, the
    search exponentially wider.
    @raise Budget_exceeded when the local bound is hit.
    @raise Budget.Exhausted when [budget] trips; public engine APIs catch
    both and return [Error] — see {!Budget}. *)

val stable_models_naive :
  ?budget:Budget.ctl -> ?limit:int -> ?max_decisions:int ->
  ?support_propagation:bool -> ?stats:stats -> Ground.t -> int list list
(** The sweep-based reference implementation (full rule-array re-scan per
    propagation pass, supporter-list re-filtering per true atom).  Same
    arguments, same result as {!stable_models} — kept as the differential
    oracle for the property tests and the baseline of the E4 before/after
    numbers.  Not used on any production path. *)

val stable_models_atoms :
  ?budget:Budget.ctl -> ?limit:int -> ?max_decisions:int -> ?search:search ->
  ?stats:stats -> Ground.t -> Ground.gatom list list
(** {!stable_models} with atoms resolved, each model sorted. *)

val is_stable_model : Ground.t -> int list -> bool
(** Is the given set of atom ids a stable model?  (Used by tests and by the
    answer-set validation of the external-solver driver.) *)

val new_stats : unit -> stats
val pp_stats : stats Fmt.t

val pp_search_stats : stats Fmt.t
(** The CDCL counters:
    [conflicts=… learned=… restarts=… backjump_len=… phase_saved=…]
    (all zero after a [`Dpll] run). *)

val cautious :
  ?budget:Budget.ctl -> ?max_decisions:int -> ?search:search ->
  ?stats:stats -> Ground.t -> int list
(** Atoms true in every stable model, ascending (empty if there is no
    stable model — by convention of cautious reasoning over an inconsistent
    program every atom is a consequence, but the repair setting guarantees
    models whenever [IC] is non-conflicting, so we return the intersection
    of an empty family as the empty list and let callers decide). *)

val brave :
  ?budget:Budget.ctl -> ?max_decisions:int -> ?search:search ->
  ?stats:stats -> Ground.t -> int list
(** Atoms true in at least one stable model, ascending. *)
