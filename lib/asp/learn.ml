(* First-UIP conflict analysis, VSIDS branching activities and the Luby
   restart sequence for the CDCL search mode of Solver.

   [analyze] resolves the conflict clause backwards along the trail,
   expanding the reason clause of each current-level literal until exactly
   one current-level literal remains (the first unique implication point).
   Level-0 literals are dropped: everything assigned at level 0 holds in
   every remaining stable model (input units, unsupported-atom fixings and
   nogoods asserted there), so the resolvent stays sound without them. *)

type t = {
  act : float array;  (* per-atom VSIDS activity *)
  seen : bool array;  (* analysis scratch, clean between calls *)
  mutable inc : float;  (* current bump amount *)
  phase : bool array;
      (* last polarity each atom was assigned before being undone; false
         (the engine's default polarity) until an atom is first unassigned
         while true, so saving is behavior-neutral up to that point *)
}

let create n =
  {
    act = Array.make (max n 1) 0.;
    seen = Array.make (max n 1) false;
    inc = 1.0;
    phase = Array.make (max n 1) false;
  }

let activity t a = t.act.(a)
let save_phase t a v = t.phase.(a) <- v
let phase t a = t.phase.(a)

let bump t a =
  t.act.(a) <- t.act.(a) +. t.inc;
  if t.act.(a) > 1e100 then begin
    (* rescale everything to keep the ordering and dodge overflow *)
    Array.iteri (fun i v -> t.act.(i) <- v *. 1e-100) t.act;
    t.inc <- t.inc *. 1e-100
  end

(* Dividing the increment instead of multiplying every activity is the
   standard exponential-decay trick: one float op per conflict. *)
let decay t = t.inc <- t.inc /. 0.95

(* Reluctant-doubling sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (1-indexed);
   restart intervals scale with it so short runs dominate but arbitrarily
   long runs still happen. *)
let rec luby i =
  (* find k with 2^k - 1 = i (then luby = 2^(k-1)), else recurse *)
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* [analyze t w conflict] — 1UIP resolution of a clause whose literals are
   all false under [w]'s assignment, at least one at the current decision
   level (which must be positive).  Returns the learned clause (asserting
   literal at index 0, a deepest remaining literal at index 1) and the
   backjump level.  Bumps the activity of every resolved-over atom. *)
let analyze t w conflict =
  let dl = Watch.decision_level w in
  let learned = ref [] in
  let pathc = ref 0 in
  let p = ref (-1) in
  let idx = ref (Watch.trail_size w - 1) in
  let clause = ref conflict in
  let first = ref true in
  let continue_ = ref true in
  while !continue_ do
    (* skip index 0 of a reason clause: it is the pivot [p] itself *)
    let start = if !first then 0 else 1 in
    let lits = !clause in
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = q lsr 1 in
      if (not t.seen.(v)) && Watch.level_of w v > 0 then begin
        t.seen.(v) <- true;
        bump t v;
        if Watch.level_of w v >= dl then incr pathc
        else learned := q :: !learned
      end
    done;
    first := false;
    (* next pivot: the most recent trail literal marked seen — necessarily
       at the current level while [pathc] > 0 *)
    while not t.seen.(Watch.trail_lit w !idx lsr 1) do decr idx done;
    let pl = Watch.trail_lit w !idx in
    decr idx;
    t.seen.(pl lsr 1) <- false;
    decr pathc;
    p := pl;
    if !pathc > 0 then clause := Watch.clause_lits w (Watch.reason_of w (pl lsr 1))
    else continue_ := false
  done;
  let out = Array.of_list ((!p lxor 1) :: List.rev !learned) in
  Array.iter (fun q -> t.seen.(q lsr 1) <- false) out;
  (* backjump level: deepest level below [dl] among the kept literals; move
     one literal of that level to index 1 so the clause watches it *)
  let bj = ref 0 and bi = ref (-1) in
  for i = 1 to Array.length out - 1 do
    let lv = Watch.level_of w (out.(i) lsr 1) in
    if lv > !bj then begin
      bj := lv;
      bi := i
    end
  done;
  if !bi > 1 then begin
    let tmp = out.(1) in
    out.(1) <- out.(!bi);
    out.(!bi) <- tmp
  end;
  (out, !bj)
