(** Intelligent grounding of safe programs.

    Computes a fixpoint over-approximation of the derivable ground atoms
    (treating every disjunct of a head as derivable and ignoring negation),
    instantiating rules by matching their positive bodies against that set
    and evaluating built-ins eagerly.  Negative body literals over atoms
    that can never be derived are dropped as trivially true; rules whose
    built-ins fail are dropped entirely.

    The result is equivalent, for stable-model computation, to grounding
    over the full Herbrand base, but only mentions atoms with at least one
    potential derivation. *)

exception Unsafe of string

val ground : ?budget:Budget.ctl -> Syntax.program -> Ground.t
(** [budget] contributes its wall-clock deadline to the instantiation
    loops (grounding has no decision/state counter of its own).
    @raise Unsafe if some rule is not safe.
    @raise Budget.Exhausted on deadline; engine APIs convert it to
    [Error]. *)

val ground_stats : Ground.t -> string
(** One-line summary: #atoms, #rules (used in bench table E5). *)
