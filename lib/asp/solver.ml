exception Budget_exceeded of int

type stats = {
  mutable decisions : int;
  mutable propagations : int;
  mutable candidates : int;
  mutable minimality_checks : int;
  mutable queue_pushes : int;
  mutable rules_touched : int;
  mutable conflicts : int;
  mutable learned : int;
  mutable restarts : int;
  mutable backjump_len : int;
  mutable phase_saved : int;
}

let new_stats () =
  { decisions = 0; propagations = 0; candidates = 0; minimality_checks = 0;
    queue_pushes = 0; rules_touched = 0; conflicts = 0; learned = 0;
    restarts = 0; backjump_len = 0; phase_saved = 0 }

let pp_stats ppf s =
  Fmt.pf ppf
    "decisions=%d propagations=%d candidates=%d minimality_checks=%d \
     queue_pushes=%d rules_touched=%d"
    s.decisions s.propagations s.candidates s.minimality_checks s.queue_pushes
    s.rules_touched

let pp_search_stats ppf s =
  Fmt.pf ppf "conflicts=%d learned=%d restarts=%d backjump_len=%d phase_saved=%d"
    s.conflicts s.learned s.restarts s.backjump_len s.phase_saved

type search = [ `Cdcl | `Dpll ]

(* Assignment values *)
let unk = 0
let tru = 1
let fls = 2

module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Gelfond-Lifschitz reduct and stability checking.

   Membership in the candidate M is tested through a dense bool array
   rather than a balanced set — every hot path below probes it per literal
   occurrence. *)

let reduct rules in_m =
  rules
  |> Array.to_list
  |> List.filter_map (fun (r : Ground.grule) ->
         if Array.exists (fun x -> in_m.(x)) r.Ground.gneg then None
         else Some (r.Ground.ghead, r.Ground.gpos))

(* Least model of the definite part of a positive reduct, by
   Dowling-Gallier counting: each rule keeps the number of its not yet
   derived positive occurrences, and deriving an atom decrements the
   counter of every rule occurrence of that atom; a rule fires when its
   counter hits zero.  Empty heads are constraints and must have
   unsatisfied bodies (M classically satisfies them, and we only accept
   when the least model equals M).  Derivation of any atom outside M
   refutes equality immediately. *)
let normal_reduct_stable ~n reduct_rules in_m m_size =
  let rules_arr = Array.of_list reduct_rules in
  let nr = Array.length rules_arr in
  let remaining = Array.make nr 0 in
  let pocc = Array.make n [] in
  Array.iteri
    (fun ri (_, pos) ->
      remaining.(ri) <- Array.length pos;
      Array.iter (fun p -> pocc.(p) <- ri :: pocc.(p)) pos)
    rules_arr;
  let derived = Array.make n false in
  let count = ref 0 in
  let inside = ref true in
  let q = Queue.create () in
  let derive h =
    if not derived.(h) then begin
      derived.(h) <- true;
      if in_m.(h) then incr count else inside := false;
      List.iter
        (fun ri ->
          remaining.(ri) <- remaining.(ri) - 1;
          if remaining.(ri) = 0 then Queue.add ri q)
        pocc.(h)
    end
  in
  Array.iteri (fun ri _ -> if remaining.(ri) = 0 then Queue.add ri q) rules_arr;
  while !inside && not (Queue.is_empty q) do
    let ri = Queue.pop q in
    match fst rules_arr.(ri) with [| h |] -> derive h | _ -> ()
  done;
  !inside && !count = m_size

(* Search for a model of the positive reduct properly contained in M.
   Clauses range over the atoms of M only: a reduct rule with some positive
   body atom outside M is vacuously satisfied by any M' ⊆ M, and head atoms
   outside M are false in any such M'.

   The sub-search runs the same counter machinery as the main solver:
   per-clause (#true-head, #unassigned-head, #false-pos, #unassigned-pos)
   counters, occurrence lists over the local atom indexes, a worklist of
   clauses to re-examine, and a satisfied-clause count so the "all clauses
   satisfied" test is O(1). *)
let exists_smaller_model ?stats ~n reduct_rules in_m m_list =
  (match stats with
  | Some s -> s.minimality_checks <- s.minimality_checks + 1
  | None -> ());
  let atoms = Array.of_list m_list in
  let nm = Array.length atoms in
  let local = Array.make n (-1) in
  Array.iteri (fun i x -> local.(x) <- i) atoms;
  let clauses =
    List.filter_map
      (fun (head, pos) ->
        if Array.for_all (fun p -> in_m.(p)) pos then
          let head_in =
            Array.to_list head
            |> List.filter_map (fun h -> if in_m.(h) then Some local.(h) else None)
            |> Array.of_list
          in
          let pos_in = Array.map (fun p -> local.(p)) pos in
          (* clause: one of head_in true, or one of pos_in false *)
          Some (head_in, pos_in)
        else None)
      reduct_rules
    |> Array.of_list
  in
  let nc = Array.length clauses in
  let head_true = Array.make nc 0 in
  let head_unk = Array.make nc 0 in
  let pos_false = Array.make nc 0 in
  let pos_unk = Array.make nc 0 in
  let hocc = Array.make nm [] in
  let pocc = Array.make nm [] in
  Array.iteri
    (fun c (head, pos) ->
      head_unk.(c) <- Array.length head;
      pos_unk.(c) <- Array.length pos;
      Array.iter (fun h -> hocc.(h) <- c :: hocc.(h)) head;
      Array.iter (fun p -> pocc.(p) <- c :: pocc.(p)) pos)
    clauses;
  let satisfied c = head_true.(c) > 0 || pos_false.(c) > 0 in
  let n_sat = ref 0 in
  let n_true = ref 0 in
  let value = Array.make nm unk in
  let q = Queue.create () in
  let inq = Array.make nc false in
  let push c =
    if (not inq.(c)) && not (satisfied c) then begin
      inq.(c) <- true;
      Queue.add c q
    end
  in
  let clear_queue () =
    Queue.iter (fun c -> inq.(c) <- false) q;
    Queue.clear q
  in
  let trail = ref [] in
  let assign i v =
    value.(i) <- v;
    trail := i :: !trail;
    if v = tru then incr n_true;
    List.iter
      (fun c ->
        let was = satisfied c in
        head_unk.(c) <- head_unk.(c) - 1;
        if v = tru then head_true.(c) <- head_true.(c) + 1;
        if (not was) && satisfied c then incr n_sat;
        push c)
      hocc.(i);
    List.iter
      (fun c ->
        let was = satisfied c in
        pos_unk.(c) <- pos_unk.(c) - 1;
        if v = fls then pos_false.(c) <- pos_false.(c) + 1;
        if (not was) && satisfied c then incr n_sat;
        push c)
      pocc.(i)
  in
  let unassign i =
    let v = value.(i) in
    value.(i) <- unk;
    if v = tru then decr n_true;
    List.iter
      (fun c ->
        let was = satisfied c in
        head_unk.(c) <- head_unk.(c) + 1;
        if v = tru then head_true.(c) <- head_true.(c) - 1;
        if was && not (satisfied c) then decr n_sat)
      hocc.(i);
    List.iter
      (fun c ->
        let was = satisfied c in
        pos_unk.(c) <- pos_unk.(c) + 1;
        if v = fls then pos_false.(c) <- pos_false.(c) - 1;
        if was && not (satisfied c) then decr n_sat)
      pocc.(i)
  in
  let undo_to mark =
    let rec go () =
      if !trail != mark then
        match !trail with
        | [] -> ()
        | i :: rest ->
            trail := rest;
            unassign i;
            go ()
    in
    go ()
  in
  let exception Conflict in
  let exception Found in
  let process c =
    inq.(c) <- false;
    if not (satisfied c) then
      match head_unk.(c) + pos_unk.(c) with
      | 0 -> raise Conflict
      | 1 ->
          let head, pos = clauses.(c) in
          if head_unk.(c) > 0 then
            Array.iter (fun h -> if value.(h) = unk then assign h tru) head
          else Array.iter (fun p -> if value.(p) = unk then assign p fls) pos
      | _ -> ()
  in
  let propagate () = while not (Queue.is_empty q) do process (Queue.pop q) done in
  let pick_branch () =
    let res = ref None in
    (try
       for c = 0 to nc - 1 do
         if not (satisfied c) then begin
           let head, pos = clauses.(c) in
           Array.iter (fun h -> if !res = None && value.(h) = unk then res := Some h) head;
           Array.iter (fun p -> if !res = None && value.(p) = unk then res := Some p) pos;
           if !res <> None then raise Exit
         end
       done
     with Exit -> ());
    !res
  in
  let rec search () =
    let mark = !trail in
    (try
       propagate ();
       if !n_sat = nc then begin
         (* with unassigned atoms completed to false: proper subset iff
            some atom is false or unassigned *)
         if !n_true < nm then raise Found
       end
       else begin
         match pick_branch () with
         | None -> ()
         | Some i ->
             let mark2 = !trail in
             assign i fls;
             search ();
             undo_to mark2;
             assign i tru;
             search ();
             undo_to mark2
       end
     with Conflict -> clear_queue ());
    undo_to mark
  in
  try
    for c = 0 to nc - 1 do push c done;
    search ();
    false
  with Found -> true

let is_stable_in ~n rules ?stats m =
  let in_m = Array.make n false in
  List.iter (fun a -> in_m.(a) <- true) m;
  (* M must classically satisfy every rule *)
  let models_rule (r : Ground.grule) =
    Array.exists (fun h -> in_m.(h)) r.Ground.ghead
    || Array.exists (fun p -> not in_m.(p)) r.Ground.gpos
    || Array.exists (fun x -> in_m.(x)) r.Ground.gneg
  in
  Array.for_all models_rule rules
  &&
  let red = reduct rules in_m in
  let normal = List.for_all (fun (h, _) -> Array.length h <= 1) red in
  if normal then normal_reduct_stable ~n red in_m (List.length m)
  else
    (* constraints of the reduct are classically satisfied by M; minimality
       is the remaining question *)
    not (exists_smaller_model ?stats ~n red in_m m)

let is_stable_model g m = is_stable_in ~n:(Ground.atom_count g) (Ground.rules g) m

(* ------------------------------------------------------------------ *)
(* Enumeration of stable models: counter-based propagation engine.

   Per rule, six occurrence counters track the current assignment:
   #true-head, #unassigned-head, #false-pos, #unassigned-pos, #true-neg,
   #unassigned-neg.  A rule is classically satisfied iff
   true-head + false-pos + true-neg > 0, and unit iff unsatisfied with
   exactly one unassigned occurrence.  Assigning an atom updates only the
   counters of the rules in its occurrence lists (Ground.index) and pushes
   those rules on a worklist; backtracking reverses the same per-occurrence
   updates off the trail, so restore costs what the assignment cost.

   Support propagation keeps, per atom, a live-supporter count: the number
   of head occurrences of the atom in rules whose body is not yet
   classically false.  Bodies die (and revive on backtrack) at the
   0 <-> >0 transitions of #false-pos + #true-neg; a true atom whose count
   hits 0 is a conflict, and at 1 the single remaining supporter's body is
   forced, exactly like the sweep-based reference solver. *)

let stable_models_dpll ?budget ?limit ?(max_decisions = 10_000_000)
    ?(support_propagation = true) ?stats g =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let { Ground.idx_rules = rules; head_occ; pos_occ; neg_occ } = Ground.index g in
  let nr = Array.length rules in
  let n = Ground.atom_count g in
  let value = Array.make n unk in
  let head_true = Array.make nr 0 in
  let head_unk = Array.make nr 0 in
  let pos_false = Array.make nr 0 in
  let pos_unk = Array.make nr 0 in
  let neg_true = Array.make nr 0 in
  let neg_unk = Array.make nr 0 in
  let body_dead = Array.make nr false in
  let live_supp = Array.make n 0 in
  Array.iteri
    (fun ri (r : Ground.grule) ->
      head_unk.(ri) <- Array.length r.Ground.ghead;
      pos_unk.(ri) <- Array.length r.Ground.gpos;
      neg_unk.(ri) <- Array.length r.Ground.gneg)
    rules;
  for a = 0 to n - 1 do
    live_supp.(a) <- Array.length head_occ.(a)
  done;
  let satisfied ri =
    head_true.(ri) > 0 || pos_false.(ri) > 0 || neg_true.(ri) > 0
  in
  let rule_q = Queue.create () in
  let rule_inq = Array.make nr false in
  let supp_q = Queue.create () in
  let supp_inq = Array.make n false in
  let push_rule ri =
    if (not rule_inq.(ri)) && not (satisfied ri) then begin
      rule_inq.(ri) <- true;
      Queue.add ri rule_q;
      stats.queue_pushes <- stats.queue_pushes + 1
    end
  in
  let push_supp a =
    if support_propagation && not supp_inq.(a) then begin
      supp_inq.(a) <- true;
      Queue.add a supp_q;
      stats.queue_pushes <- stats.queue_pushes + 1
    end
  in
  let clear_queues () =
    Queue.iter (fun ri -> rule_inq.(ri) <- false) rule_q;
    Queue.clear rule_q;
    Queue.iter (fun a -> supp_inq.(a) <- false) supp_q;
    Queue.clear supp_q
  in
  (* body liveness transitions, forward (kill) and on undo (revive) *)
  let sync_dead ri =
    let dead = pos_false.(ri) > 0 || neg_true.(ri) > 0 in
    if dead <> body_dead.(ri) then begin
      body_dead.(ri) <- dead;
      let delta = if dead then -1 else 1 in
      Array.iter
        (fun h ->
          live_supp.(h) <- live_supp.(h) + delta;
          if dead && value.(h) = tru then push_supp h)
        rules.(ri).Ground.ghead
    end
  in
  let trail = ref [] in
  let assign a v =
    value.(a) <- v;
    trail := a :: !trail;
    stats.propagations <- stats.propagations + 1;
    Array.iter
      (fun ri ->
        head_unk.(ri) <- head_unk.(ri) - 1;
        if v = tru then head_true.(ri) <- head_true.(ri) + 1;
        push_rule ri)
      head_occ.(a);
    Array.iter
      (fun ri ->
        pos_unk.(ri) <- pos_unk.(ri) - 1;
        if v = fls then begin
          pos_false.(ri) <- pos_false.(ri) + 1;
          sync_dead ri
        end;
        push_rule ri)
      pos_occ.(a);
    Array.iter
      (fun ri ->
        neg_unk.(ri) <- neg_unk.(ri) - 1;
        if v = tru then begin
          neg_true.(ri) <- neg_true.(ri) + 1;
          sync_dead ri
        end;
        push_rule ri)
      neg_occ.(a);
    if v = tru then push_supp a
  in
  let unassign a =
    let v = value.(a) in
    value.(a) <- unk;
    Array.iter
      (fun ri ->
        head_unk.(ri) <- head_unk.(ri) + 1;
        if v = tru then head_true.(ri) <- head_true.(ri) - 1)
      head_occ.(a);
    Array.iter
      (fun ri ->
        pos_unk.(ri) <- pos_unk.(ri) + 1;
        if v = fls then begin
          pos_false.(ri) <- pos_false.(ri) - 1;
          sync_dead ri
        end)
      pos_occ.(a);
    Array.iter
      (fun ri ->
        neg_unk.(ri) <- neg_unk.(ri) + 1;
        if v = tru then begin
          neg_true.(ri) <- neg_true.(ri) - 1;
          sync_dead ri
        end)
      neg_occ.(a)
  in
  let undo_to mark =
    let rec go () =
      if !trail != mark then
        match !trail with
        | [] -> ()
        | a :: rest ->
            trail := rest;
            unassign a;
            go ()
    in
    go ()
  in
  let exception Conflict in
  let exception Done in
  let models = ref [] in
  let count = ref 0 in
  let process_rule ri =
    rule_inq.(ri) <- false;
    stats.rules_touched <- stats.rules_touched + 1;
    if not (satisfied ri) then
      match head_unk.(ri) + pos_unk.(ri) + neg_unk.(ri) with
      | 0 -> raise Conflict
      | 1 ->
          let r = rules.(ri) in
          if head_unk.(ri) > 0 then
            Array.iter (fun h -> if value.(h) = unk then assign h tru) r.Ground.ghead
          else if pos_unk.(ri) > 0 then
            Array.iter (fun p -> if value.(p) = unk then assign p fls) r.Ground.gpos
          else
            Array.iter (fun x -> if value.(x) = unk then assign x tru) r.Ground.gneg
      | _ -> ()
  in
  let process_supp a =
    supp_inq.(a) <- false;
    if value.(a) = tru then
      match live_supp.(a) with
      | 0 -> raise Conflict
      | 1 ->
          let occ = head_occ.(a) in
          stats.rules_touched <- stats.rules_touched + Array.length occ;
          let found = ref (-1) in
          Array.iter (fun ri -> if !found = -1 && not body_dead.(ri) then found := ri) occ;
          if !found >= 0 then begin
            let r = rules.(!found) in
            Array.iter (fun p -> if value.(p) = unk then assign p tru) r.Ground.gpos;
            Array.iter (fun x -> if value.(x) = unk then assign x fls) r.Ground.gneg
          end
      | _ -> ()
  in
  let propagate () =
    while not (Queue.is_empty rule_q && Queue.is_empty supp_q) do
      if not (Queue.is_empty rule_q) then process_rule (Queue.pop rule_q)
      else process_supp (Queue.pop supp_q)
    done
  in
  let pick_branch () =
    let res = ref None in
    (try
       for ri = 0 to nr - 1 do
         if not (satisfied ri) then begin
           let r = rules.(ri) in
           Array.iter
             (fun h -> if !res = None && value.(h) = unk then res := Some h)
             r.Ground.ghead;
           Array.iter
             (fun p -> if !res = None && value.(p) = unk then res := Some p)
             r.Ground.gpos;
           Array.iter
             (fun x -> if !res = None && value.(x) = unk then res := Some x)
             r.Ground.gneg;
           if !res <> None then raise Exit
         end
       done
     with Exit -> ());
    !res
  in
  let record_candidate () =
    stats.candidates <- stats.candidates + 1;
    let m = ref [] in
    for i = n - 1 downto 0 do
      if value.(i) = tru then m := i :: !m
    done;
    let m = !m in
    if is_stable_in ~n rules ~stats m then begin
      models := m :: !models;
      incr count;
      match limit with Some l when !count >= l -> raise Done | _ -> ()
    end
  in
  let rec search () =
    let mark = !trail in
    (try
       propagate ();
       match pick_branch () with
       | None -> record_candidate ()
       | Some i ->
           stats.decisions <- stats.decisions + 1;
           if stats.decisions > max_decisions then
             raise (Budget_exceeded max_decisions);
           (match budget with Some b -> Budget.tick_decision b | None -> ());
           let mark2 = !trail in
           assign i fls;
           search ();
           undo_to mark2;
           assign i tru;
           search ();
           undo_to mark2
     with Conflict -> clear_queues ());
    undo_to mark
  in
  (try
     (* seed the worklist with every rule (facts become units, an empty
        constraint conflicts immediately) and fix atoms occurring in no
        head to false — they are unsupported in every stable model *)
     for ri = 0 to nr - 1 do
       push_rule ri
     done;
     for a = 0 to n - 1 do
       if Array.length head_occ.(a) = 0 then assign a fls
     done;
     search ()
   with Done -> ());
  (* deterministic order: sort models *)
  List.sort (List.compare Int.compare) !models

(* ------------------------------------------------------------------ *)
(* Conflict-driven clause learning engine.

   The search runs over the same classical clause view of the rules (some
   head true, some positive body atom false, or some negative body atom
   true), but propagation is two-watched-literal (Watch), conflicts are
   analyzed to a first-UIP learned nogood (Learn) with non-chronological
   backjumping, branching follows VSIDS activities with false-first
   polarity, and Luby-scheduled restarts reset the trail without losing
   learned clauses.

   Support propagation is kept from the counter engine — per rule a
   body-death count, per atom a live-supporter count — but its inferences
   are materialized as clauses so conflict analysis can resolve over them:
   when a true atom [a] is down to one live supporter, each forced body
   literal [l] gets the reason clause [l | ~a | w1 | ... | wk] where the
   [wi] re-assert a currently-true body-falsifying witness of each other
   supporter; at zero live supporters the same clause without [l] is the
   conflict.  These clauses (like the supportedness inference itself) are
   sound for stable models though not classical consequences, so the
   engine's learned nogoods may prune classical models that could never be
   stable — every candidate still passes [is_stable_in], and the
   differential suite pins the model sets to the other engines.

   Enumeration is blocking-clause-free: a total assignment that survives
   propagation is a candidate; its full complement clause is analyzed like
   a conflict, so the learned resolvent (falsified by exactly this
   assignment among the remaining ones) both blocks the model and backjumps
   the search.  Restarts are safe because those resolvents persist.

   Decisions made after every original clause is already satisfied merely
   complete the assignment with false (the counter engine completes such
   candidates for free), so they are not counted against [max_decisions]
   or the budget. *)

let stable_models_cdcl ?budget ?limit ?(max_decisions = 10_000_000)
    ?(support_propagation = true) ?stats g =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let { Ground.idx_rules = rules; head_occ; pos_occ; neg_occ } = Ground.index g in
  let n = Ground.atom_count g in
  let nr = Array.length rules in
  let w = Watch.create n in
  let lrn = Learn.create n in
  let exception Empty_clause in
  let exception Done in
  (* scratch literal marks for dedupe/tautology tests *)
  let mark = Array.make (max (2 * n) 1) false in
  let clause_of_rule (r : Ground.grule) =
    let buf = ref [] in
    let add l =
      if not mark.(l) then begin
        mark.(l) <- true;
        buf := l :: !buf
      end
    in
    Array.iter (fun h -> add (2 * h)) r.Ground.ghead;
    Array.iter (fun p -> add ((2 * p) + 1)) r.Ground.gpos;
    Array.iter (fun x -> add (2 * x)) r.Ground.gneg;
    let lits = Array.of_list (List.rev !buf) in
    let taut = Array.exists (fun l -> mark.(l lxor 1)) lits in
    Array.iter (fun l -> mark.(l) <- false) lits;
    if taut then None
    else if Array.length lits = 0 then raise Empty_clause
    else Some lits
  in
  (* satisfaction tracking over the original clauses only: completion-time
     detection ("every rule already satisfied") needs it, learned clauses
     are excluded on purpose *)
  let lit_occ = Array.make (max (2 * n) 1) [] in
  let units = ref [] in
  let n_orig = ref 0 in
  let build () =
    Array.iter
      (fun r ->
        match clause_of_rule r with
        | None -> ()
        | Some lits ->
            let ci = !n_orig in
            incr n_orig;
            Array.iter (fun l -> lit_occ.(l) <- ci :: lit_occ.(l)) lits;
            let cid = Watch.add_clause w lits in
            if Array.length lits = 1 then units := (lits.(0), cid) :: !units)
      rules
  in
  let sat_cnt = ref [||] in
  let n_sat = ref 0 in
  (* support state: body-death counts per rule, live-supporter counts per
     atom, and a worklist of atoms to re-examine *)
  let dead_cnt = Array.make (max nr 1) 0 in
  let live_supp = Array.make (max n 1) 0 in
  for a = 0 to n - 1 do
    live_supp.(a) <- Array.length head_occ.(a)
  done;
  let supp_q = Queue.create () in
  let supp_inq = Array.make (max n 1) false in
  let push_supp a =
    if support_propagation && not supp_inq.(a) then begin
      supp_inq.(a) <- true;
      Queue.add a supp_q;
      stats.queue_pushes <- stats.queue_pushes + 1
    end
  in
  let clear_supp () =
    Queue.iter (fun a -> supp_inq.(a) <- false) supp_q;
    Queue.clear supp_q
  in
  let bump_dead ri =
    dead_cnt.(ri) <- dead_cnt.(ri) + 1;
    if dead_cnt.(ri) = 1 then
      Array.iter
        (fun h ->
          live_supp.(h) <- live_supp.(h) - 1;
          if Watch.atom_value w h = tru then push_supp h)
        rules.(ri).Ground.ghead
  in
  let drop_dead ri =
    dead_cnt.(ri) <- dead_cnt.(ri) - 1;
    if dead_cnt.(ri) = 0 then
      Array.iter
        (fun h -> live_supp.(h) <- live_supp.(h) + 1)
        rules.(ri).Ground.ghead
  in
  (* counter maintenance trails the Watch trail through [shead]; the scan
     runs before any backjump, so undo always reverses scanned entries *)
  let shead = ref 0 in
  let scan_trail () =
    while !shead < Watch.trail_size w do
      let l = Watch.trail_lit w !shead in
      incr shead;
      stats.propagations <- stats.propagations + 1;
      let a = l lsr 1 in
      if l land 1 = 0 then begin
        Array.iter bump_dead neg_occ.(a);
        push_supp a
      end
      else Array.iter bump_dead pos_occ.(a);
      List.iter
        (fun ci ->
          !sat_cnt.(ci) <- !sat_cnt.(ci) + 1;
          if !sat_cnt.(ci) = 1 then incr n_sat)
        lit_occ.(l)
    done
  in
  let on_undo l =
    let a = l lsr 1 in
    Learn.save_phase lrn a (l land 1 = 0);
    if l land 1 = 0 then Array.iter drop_dead neg_occ.(a)
    else Array.iter drop_dead pos_occ.(a);
    List.iter
      (fun ci ->
        !sat_cnt.(ci) <- !sat_cnt.(ci) - 1;
        if !sat_cnt.(ci) = 0 then decr n_sat)
      lit_occ.(l)
  in
  let backjump_to lvl =
    clear_supp ();
    Watch.backjump w lvl ~on_undo;
    shead := Watch.trail_size w;
    (* mid-search clauses can lose unit detection across a backjump (see
       Watch); re-seeding the worklist restores the support inferences *)
    if support_propagation then
      for a = 0 to n - 1 do
        if Watch.atom_value w a = tru && live_supp.(a) <= 1 then push_supp a
      done
  in
  (* [~a] plus one currently-true body-falsifying witness, complemented,
     per dead supporter of [a] other than [skip]; deduped, all false *)
  let support_guard a skip =
    let acc = ref [] in
    let add l =
      if not mark.(l) then begin
        mark.(l) <- true;
        acc := l :: !acc
      end
    in
    add ((2 * a) + 1);
    Array.iter
      (fun ri ->
        if ri <> skip && dead_cnt.(ri) > 0 then begin
          let r = rules.(ri) in
          let wl = ref (-1) in
          Array.iter
            (fun p -> if !wl = -1 && Watch.atom_value w p = fls then wl := 2 * p)
            r.Ground.gpos;
          Array.iter
            (fun x ->
              if !wl = -1 && Watch.atom_value w x = tru then wl := (2 * x) + 1)
            r.Ground.gneg;
          if !wl >= 0 then add !wl
        end)
      head_occ.(a);
    let lits = List.rev !acc in
    List.iter (fun l -> mark.(l) <- false) lits;
    lits
  in
  let process_supp a =
    supp_inq.(a) <- false;
    if Watch.atom_value w a <> tru then `Ok
    else
      match live_supp.(a) with
      | 0 -> `Conflict (Array.of_list (support_guard a (-1)))
      | 1 ->
          let found = ref (-1) in
          Array.iter
            (fun ri -> if !found = -1 && dead_cnt.(ri) = 0 then found := ri)
            head_occ.(a);
          stats.rules_touched <- stats.rules_touched + Array.length head_occ.(a);
          if !found < 0 then `Ok
          else begin
            let r = rules.(!found) in
            let guard = support_guard a !found in
            let force l =
              if Watch.lit_value w l = unk then begin
                let lits = Array.of_list (l :: guard) in
                let cid = Watch.add_clause w lits in
                ignore (Watch.enqueue w ~reason:cid l)
              end
            in
            Array.iter (fun p -> force (2 * p)) r.Ground.gpos;
            Array.iter (fun x -> force ((2 * x) + 1)) r.Ground.gneg;
            `Ok
          end
      | _ -> `Ok
  in
  (* unit propagation and support inference to mutual fixpoint; returns the
     conflict clause's literals, or None *)
  let rec propagate_all () =
    let confl = Watch.propagate w in
    scan_trail ();
    if confl >= 0 then Some (Watch.clause_lits w confl)
    else if Queue.is_empty supp_q then None
    else begin
      let conflict = ref None in
      let acted = ref false in
      while (not !acted) && !conflict = None && not (Queue.is_empty supp_q) do
        match process_supp (Queue.pop supp_q) with
        | `Conflict c -> conflict := Some c
        | `Ok -> if Watch.trail_size w > !shead then acted := true
      done;
      match !conflict with Some c -> Some c | None -> propagate_all ()
    end
  in
  (* Learn from a falsified clause (a real conflict or the complement of a
     just-recorded candidate), backjump, assert.  Raises [Done] when the
     clause is violated at level 0 — the search space is exhausted. *)
  let handle_nogood ~conflict clits =
    if conflict then begin
      stats.conflicts <- stats.conflicts + 1;
      match budget with Some b -> Budget.tick_conflict b | None -> ()
    end;
    let maxlev =
      Array.fold_left (fun m l -> max m (Watch.level_of w (l lsr 1))) 0 clits
    in
    if maxlev = 0 then raise Done;
    if maxlev < Watch.decision_level w then backjump_to maxlev;
    let learned, bj = Learn.analyze lrn w clits in
    Learn.decay lrn;
    let jump = Watch.decision_level w - bj in
    stats.learned <- stats.learned + 1;
    stats.backjump_len <- stats.backjump_len + jump;
    (match budget with
    | Some b ->
        Budget.note_learned b;
        Budget.note_backjump b jump
    | None -> ());
    backjump_to bj;
    let cid = Watch.add_clause w learned in
    ignore (Watch.enqueue w ~reason:cid learned.(0))
  in
  let models = ref [] in
  let count = ref 0 in
  let record_candidate () =
    stats.candidates <- stats.candidates + 1;
    (match budget with Some b -> Budget.check_deadline b | None -> ());
    let m = ref [] in
    for a = n - 1 downto 0 do
      if Watch.atom_value w a = tru then m := a :: !m
    done;
    let m = !m in
    if is_stable_in ~n rules ~stats m then begin
      models := m :: !models;
      incr count;
      match limit with Some l when !count >= l -> raise Done | _ -> ()
    end
  in
  (* completion-aware branching: while some original clause is unsatisfied,
     decide by VSIDS activity; once all are satisfied, the remaining
     decisions just complete the assignment with false *)
  let pick () =
    if !n_sat = !n_orig then begin
      let a = ref (-1) in
      (try
         for i = 0 to n - 1 do
           if Watch.atom_value w i = unk then begin
             a := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !a < 0 then `Total else `Decide (!a, true)
    end
    else begin
      let best = ref (-1) in
      let besta = ref neg_infinity in
      for i = 0 to n - 1 do
        if Watch.atom_value w i = unk && Learn.activity lrn i > !besta then begin
          best := i;
          besta := Learn.activity lrn i
        end
      done;
      if !best < 0 then `Total else `Decide (!best, false)
    end
  in
  let restart_base = 64 in
  let luby_i = ref 1 in
  let threshold = ref (restart_base * Learn.luby 1) in
  let conflicts_since = ref 0 in
  (try
     build ();
     sat_cnt := Array.make (max !n_orig 1) 0;
     (* level-0 seeds: atoms in no rule head are unsupported in every
        stable model; input unit clauses assert themselves.  A failed
        enqueue is a root-level contradiction — no models. *)
     for a = 0 to n - 1 do
       if Array.length head_occ.(a) = 0 then
         if not (Watch.enqueue w ~reason:(-1) ((2 * a) + 1)) then raise Done
     done;
     List.iter
       (fun (l, cid) ->
         if not (Watch.enqueue w ~reason:cid l) then raise Done)
       !units;
     while true do
       match propagate_all () with
       | Some clits ->
           incr conflicts_since;
           handle_nogood ~conflict:true clits
       | None ->
           if !conflicts_since >= !threshold && Watch.decision_level w > 0
           then begin
             stats.restarts <- stats.restarts + 1;
             (match budget with Some b -> Budget.note_restart b | None -> ());
             conflicts_since := 0;
             incr luby_i;
             threshold := restart_base * Learn.luby !luby_i;
             backjump_to 0
           end
           else begin
             match pick () with
             | `Decide (a, completion) ->
                 if not completion then begin
                   stats.decisions <- stats.decisions + 1;
                   if stats.decisions > max_decisions then
                     raise (Budget_exceeded max_decisions);
                   match budget with
                   | Some b -> Budget.tick_decision b
                   | None -> ()
                 end;
                 Watch.push_level w;
                 (* completion decisions must stay false (sound for stable
                    models); only real branch points consult the saved
                    phase *)
                 let l =
                   if (not completion) && Learn.phase lrn a then begin
                     stats.phase_saved <- stats.phase_saved + 1;
                     (match budget with
                     | Some b -> Budget.note_phase_saved b
                     | None -> ());
                     2 * a
                   end
                   else (2 * a) + 1
                 in
                 ignore (Watch.enqueue w ~reason:(-1) l)
             | `Total ->
                 record_candidate ();
                 if Watch.decision_level w = 0 then raise Done;
                 let blocking =
                   Array.init n (fun a ->
                       if Watch.atom_value w a = tru then (2 * a) + 1
                       else 2 * a)
                 in
                 handle_nogood ~conflict:false blocking
           end
     done
   with
  | Done -> ()
  | Empty_clause -> ());
  List.sort (List.compare Int.compare) !models

let stable_models ?budget ?limit ?max_decisions ?support_propagation
    ?(search = `Cdcl) ?stats g =
  (match search with
  | `Dpll -> stable_models_dpll
  | `Cdcl -> stable_models_cdcl)
    ?budget ?limit ?max_decisions ?support_propagation ?stats g

(* ------------------------------------------------------------------ *)
(* Sweep-based reference solver.

   The pre-index implementation, kept verbatim as a differential-testing
   oracle (the qcheck property in test_asp.ml asserts model-set equality
   against it) and as the baseline of the E4/E12 before/after numbers.
   Unit propagation re-scans the whole rule array to fixpoint after every
   assignment; support propagation re-filters every true atom's supporter
   list.  [rules_touched] counts those per-rule visits, which is what the
   occurrence-list engine above is measured against. *)

let stable_models_naive ?budget ?limit ?(max_decisions = 10_000_000)
    ?(support_propagation = true) ?stats g =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let rules = Ground.rules g in
  let n = Ground.atom_count g in
  let value = Array.make n unk in
  (* supporting rules per atom: a stable model cannot hold an atom whose
     every head-rule has a classically false body *)
  let supporters = Array.make n [] in
  Array.iter
    (fun (r : Ground.grule) ->
      Array.iter (fun h -> supporters.(h) <- r :: supporters.(h)) r.Ground.ghead)
    rules;
  (* atoms in no head are false in every stable model *)
  for i = 0 to n - 1 do
    if supporters.(i) = [] then value.(i) <- fls
  done;
  let trail = ref [] in
  let assign i v =
    value.(i) <- v;
    trail := i :: !trail;
    stats.propagations <- stats.propagations + 1
  in
  let undo_to mark =
    let rec go () =
      if !trail != mark then
        match !trail with
        | [] -> ()
        | i :: rest ->
            value.(i) <- unk;
            trail := rest;
            go ()
    in
    go ()
  in
  let exception Conflict in
  let exception Done in
  let models = ref [] in
  let count = ref 0 in
  let rule_satisfied (r : Ground.grule) =
    Array.exists (fun h -> value.(h) = tru) r.Ground.ghead
    || Array.exists (fun p -> value.(p) = fls) r.Ground.gpos
    || Array.exists (fun x -> value.(x) = tru) r.Ground.gneg
  in
  let propagate_once () =
    let progress = ref false in
    Array.iter
      (fun (r : Ground.grule) ->
        stats.rules_touched <- stats.rules_touched + 1;
        if not (rule_satisfied r) then begin
          let unassigned = ref [] in
          let note kind i = unassigned := (kind, i) :: !unassigned in
          Array.iter (fun h -> if value.(h) = unk then note `T h) r.Ground.ghead;
          Array.iter (fun p -> if value.(p) = unk then note `F p) r.Ground.gpos;
          Array.iter (fun x -> if value.(x) = unk then note `T x) r.Ground.gneg;
          match !unassigned with
          | [] -> raise Conflict
          | [ (`T, i) ] ->
              assign i tru;
              progress := true
          | [ (`F, i) ] ->
              assign i fls;
              progress := true
          | _ -> ()
        end)
      rules;
    !progress
  in
  (* support propagation: for every true atom, some rule with it in the
     head must keep a body that can still become classically true; when a
     single such rule remains, its body is forced.  (Sound for stable
     models: if every supporter of a true atom had a false body, removing
     the atom would still model the reduct, contradicting minimality.) *)
  let body_false (r : Ground.grule) =
    Array.exists (fun p -> value.(p) = fls) r.Ground.gpos
    || Array.exists (fun x -> value.(x) = tru) r.Ground.gneg
  in
  let support_once () =
    let progress = ref false in
    for i = 0 to n - 1 do
      if value.(i) = tru then begin
        stats.rules_touched <- stats.rules_touched + List.length supporters.(i);
        match List.filter (fun r -> not (body_false r)) supporters.(i) with
        | [] -> raise Conflict
        | [ r ] ->
            Array.iter
              (fun p ->
                if value.(p) = unk then begin
                  assign p tru;
                  progress := true
                end)
              r.Ground.gpos;
            Array.iter
              (fun x ->
                if value.(x) = unk then begin
                  assign x fls;
                  progress := true
                end)
              r.Ground.gneg
        | _ -> ()
      end
    done;
    !progress
  in
  let propagate () =
    let continue_ = ref true in
    while !continue_ do
      let a = propagate_once () in
      let b = support_propagation && support_once () in
      continue_ := a || b
    done
  in
  let pick_branch () =
    let cand = ref None in
    (try
       Array.iter
         (fun (r : Ground.grule) ->
           if (not (rule_satisfied r)) && !cand = None then begin
             Array.iter
               (fun h -> if !cand = None && value.(h) = unk then cand := Some h)
               r.Ground.ghead;
             Array.iter
               (fun p -> if !cand = None && value.(p) = unk then cand := Some p)
               r.Ground.gpos;
             Array.iter
               (fun x -> if !cand = None && value.(x) = unk then cand := Some x)
               r.Ground.gneg;
             if !cand <> None then raise Exit
           end)
         rules
     with Exit -> ());
    !cand
  in
  let record_candidate () =
    stats.candidates <- stats.candidates + 1;
    let m = ref [] in
    for i = n - 1 downto 0 do
      if value.(i) = tru then m := i :: !m
    done;
    let m = !m in
    if is_stable_in ~n rules ~stats m then begin
      models := m :: !models;
      incr count;
      match limit with Some l when !count >= l -> raise Done | _ -> ()
    end
  in
  let rec search () =
    let mark = !trail in
    (try
       propagate ();
       match pick_branch () with
       | None -> record_candidate ()
       | Some i ->
           stats.decisions <- stats.decisions + 1;
           if stats.decisions > max_decisions then
             raise (Budget_exceeded max_decisions);
           (match budget with Some b -> Budget.tick_decision b | None -> ());
           let mark2 = !trail in
           assign i fls;
           search ();
           undo_to mark2;
           assign i tru;
           search ();
           undo_to mark2
     with Conflict -> ());
    undo_to mark
  in
  (try search () with Done -> ());
  (* deterministic order: sort models *)
  List.sort (List.compare Int.compare) !models

let stable_models_atoms ?budget ?limit ?max_decisions ?search ?stats g =
  stable_models ?budget ?limit ?max_decisions ?search ?stats g
  |> List.map (fun m -> Ground.model_atoms g m)

(* Cautious/brave consequences over the already-sorted model list, by set
   intersection/union instead of the quadratic List.mem filters. *)

let cautious ?budget ?max_decisions ?search ?stats g =
  match stable_models ?budget ?max_decisions ?search ?stats g with
  | [] -> []
  | m :: rest ->
      Iset.elements
        (List.fold_left
           (fun acc model -> Iset.inter acc (Iset.of_list model))
           (Iset.of_list m) rest)

let brave ?budget ?max_decisions ?search ?stats g =
  Iset.elements
    (List.fold_left
       (fun acc model -> Iset.union acc (Iset.of_list model))
       Iset.empty (stable_models ?budget ?max_decisions ?search ?stats g))
