exception Unsafe of string

module Gset = Set.Make (struct
  type t = Ground.gatom

  let compare = Ground.compare_gatom
end)

type subst = (string * Syntax.const) list

let subst_term (s : subst) = function
  | Syntax.Const c -> Some c
  | Syntax.Var x -> List.assoc_opt x s

let unify_args (s : subst) (terms : Syntax.term list) (args : Syntax.const list) =
  let rec go s = function
    | [], [] -> Some s
    | t :: ts, c :: cs -> (
        match t with
        | Syntax.Const d ->
            if Syntax.equal_const c d then go s (ts, cs) else None
        | Syntax.Var x -> (
            match List.assoc_opt x s with
            | Some d -> if Syntax.equal_const c d then go s (ts, cs) else None
            | None -> go ((x, c) :: s) (ts, cs)))
    | _ -> None
  in
  go s (terms, args)

let eval_builtins s (builtins : Syntax.builtin list) =
  List.for_all
    (fun (b : Syntax.builtin) ->
      match subst_term s b.Syntax.lhs, subst_term s b.Syntax.rhs with
      | Some l, Some r -> Syntax.eval_builtin b.Syntax.op l r
      | _ -> false)
    builtins

let ground_atom s (a : Syntax.atom) =
  let arg t =
    match subst_term s t with
    | Some c -> c
    | None -> invalid_arg "Grounder: unbound variable in safe rule"
  in
  { Ground.gpred = a.Syntax.pred; gargs = List.map arg a.Syntax.args }

(* Enumerate all substitutions matching the positive body against the
   currently-possible atoms, then call [emit]. *)
let match_body ~tuples_of (r : Syntax.rule) emit =
  let rec go s = function
    | [] -> if eval_builtins s r.Syntax.body_builtin then emit s
    | (a : Syntax.atom) :: rest ->
        List.iter
          (fun args ->
            match unify_args s a.Syntax.args args with
            | Some s' -> go s' rest
            | None -> ())
          (tuples_of a.Syntax.pred)
  in
  go [] r.Syntax.body_pos

let ground ?budget (program : Syntax.program) =
  (match Safety.check program with
  | Ok () -> ()
  | Error msg -> raise (Unsafe msg));
  (* The instantiation loops carry no decision or state counter, so the
     budget contributes only its wall-clock deadline — probed every 256
     body matches to keep the clock read off the per-match path. *)
  let match_tick = ref 0 in
  let tick () =
    match budget with
    | None -> ()
    | Some b ->
        incr match_tick;
        if !match_tick land 255 = 0 then Budget.check_deadline b
  in
  (* possible-atom fixpoint *)
  let by_pred : (string, Syntax.const list list) Hashtbl.t = Hashtbl.create 64 in
  let possible = ref Gset.empty in
  let tuples_of p = Option.value ~default:[] (Hashtbl.find_opt by_pred p) in
  let add_possible (a : Ground.gatom) =
    if Gset.mem a !possible then false
    else begin
      possible := Gset.add a !possible;
      Hashtbl.replace by_pred a.Ground.gpred (a.Ground.gargs :: tuples_of a.Ground.gpred);
      true
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Syntax.rule) ->
        match_body ~tuples_of r (fun s ->
            tick ();
            List.iter
              (fun h ->
                if add_possible (ground_atom s h) then changed := true)
              r.Syntax.head))
      program
  done;
  (* final instantiation pass *)
  let g = Ground.create () in
  let seen_rules = Hashtbl.create 256 in
  List.iter
    (fun (r : Syntax.rule) ->
      match_body ~tuples_of r (fun s ->
          tick ();
          let head = List.map (fun h -> Ground.intern g (ground_atom s h)) r.Syntax.head in
          let pos = List.map (fun a -> Ground.intern g (ground_atom s a)) r.Syntax.body_pos in
          let neg =
            List.filter_map
              (fun a ->
                let ga = ground_atom s a in
                if Gset.mem ga !possible then Some (Ground.intern g ga) else None)
              r.Syntax.body_neg
          in
          let norm l = List.sort_uniq Int.compare l in
          let head = norm head and pos = norm pos and neg = norm neg in
          (* a rule whose head intersects its positive body is a tautology *)
          if not (List.exists (fun h -> List.mem h pos) head) then begin
            let key = (head, pos, neg) in
            if not (Hashtbl.mem seen_rules key) then begin
              Hashtbl.add seen_rules key ();
              Ground.add_rule g
                {
                  Ground.ghead = Array.of_list head;
                  gpos = Array.of_list pos;
                  gneg = Array.of_list neg;
                }
            end
          end))
    program;
  g

let ground_stats g =
  Printf.sprintf "%d ground atoms, %d ground rules" (Ground.atom_count g)
    (Ground.rule_count g)
