(** DIMACS-CNF and SMT-LIB 2 export of a ground program's classical clause
    view, with shape validators.

    Both dialects serialize the clause theory the internal solvers
    propagate over — per rule, some head atom true, some positive body atom
    false, or some negative body atom true.  The stable-model conditions
    (supportedness, minimality) are {e not} encoded: every stable model
    satisfies the export, but not conversely.  The files are for
    cross-checking propagation-level behavior with off-the-shelf SAT/SMT
    solvers and for sizing comparisons — not a drop-in answer-set
    pipeline (that is {!Printer}'s DLV/clingo job). *)

val to_dimacs : Format.formatter -> Ground.t -> unit
(** DIMACS CNF: atom id [a] becomes variable [a + 1]; a leading comment
    block maps every variable back to its pretty-printed ground atom. *)

val to_smtlib : Format.formatter -> Ground.t -> unit
(** SMT-LIB 2 ([QF_UF]): one [Bool] constant per atom (quoted symbol
    [|p(c1,c2)|]), one [assert]ed disjunction per rule, then
    [(check-sat)]. *)

val validate_dimacs : string -> (int * int, string) result
(** Shape-check a DIMACS file: exactly one [p cnf V C] header before any
    clause, every clause 0-terminated with literals in [1..V] (negated
    allowed), and exactly [C] clauses.  Returns [(V, C)]. *)

val validate_smtlib : string -> (int, string) result
(** Shape-check an SMT-LIB file: balanced parentheses outside
    [|...|]-quoted symbols, string literals and [;] comments, and no
    top-level tokens outside an s-expression.  Returns the number of
    top-level s-expressions. *)
