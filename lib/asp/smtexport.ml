(* Classical-clause exporters: DIMACS CNF and SMT-LIB 2.

   Both dialects serialize the classical clause view of a ground program —
   per rule, some head atom true, some positive body atom false, or some
   negative body atom true — i.e. exactly the constraint theory the
   internal solvers (Solver, Watch) propagate over.  The stable-model
   conditions (supportedness, minimality) are NOT encoded: a satisfying
   assignment of the export is a classical model of the program, of which
   the stable models are a subset.  The files are meant for cross-checking
   propagation-level behavior with off-the-shelf SAT/SMT solvers and for
   sizing comparisons, not for answer-set solving.

   DIMACS: atom id [a] (0-based) becomes variable [a + 1]; a comment block
   maps variables back to atom names.  Tautological rule clauses are kept
   (as DIMACS tolerates them) but deduplicated literal-wise, matching what
   the solvers feed their clause databases.  A rule with no literals at all
   cannot arise from the grounder (a ground integrity constraint with empty
   body would be one); should it, the export emits the empty clause — the
   standard unsatisfiable-clause spelling.

   SMT-LIB: one Bool constant per atom, named [|p(c1,c2)|] (the pretty
   printed ground atom inside SMT-LIB quoted-symbol bars, which admit any
   character except [|] and [\] — the atom syntax produces neither), one
   [assert] per rule as a disjunction, then [check-sat].

   The validators re-parse exporter output shape-wise: the DIMACS one
   checks the header against the actual clause count and every literal
   against the declared variable range; the SMT-LIB one checks
   s-expression well-formedness (balanced parens outside quoted symbols
   and string literals, no stray closer, no trailing garbage).  They
   accept any conforming file, not just our own output, and are what the
   [--validate] CLI flag and the cram suite drive. *)

let clause_lits (r : Ground.grule) =
  (* positive occurrence of atom [a] is [2a], negative [2a + 1] — the
     encoding shared with Watch; deduped, insertion order *)
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      acc := l :: !acc
    end
  in
  Array.iter (fun h -> add (2 * h)) r.Ground.ghead;
  Array.iter (fun p -> add ((2 * p) + 1)) r.Ground.gpos;
  Array.iter (fun x -> add (2 * x)) r.Ground.gneg;
  List.rev !acc

let atom_name g a = Fmt.str "%a" Ground.pp_gatom (Ground.atom_of g a)

let to_dimacs ppf g =
  let n = Ground.atom_count g in
  let rules = Ground.rules g in
  Fmt.pf ppf "c classical clause view of the ground program@.";
  Fmt.pf ppf "c (models of the CNF include all stable models)@.";
  for a = 0 to n - 1 do
    Fmt.pf ppf "c var %d = %s@." (a + 1) (atom_name g a)
  done;
  Fmt.pf ppf "p cnf %d %d@." n (Array.length rules);
  Array.iter
    (fun r ->
      List.iter
        (fun l ->
          let v = (l lsr 1) + 1 in
          Fmt.pf ppf "%d " (if l land 1 = 0 then v else -v))
        (clause_lits r);
      Fmt.pf ppf "0@.")
    rules

let to_smtlib ppf g =
  let n = Ground.atom_count g in
  Fmt.pf ppf "; classical clause view of the ground program@.";
  Fmt.pf ppf "(set-logic QF_UF)@.";
  for a = 0 to n - 1 do
    Fmt.pf ppf "(declare-const |%s| Bool)@." (atom_name g a)
  done;
  Array.iter
    (fun r ->
      let pp_lit ppf l =
        let name = atom_name g (l lsr 1) in
        if l land 1 = 0 then Fmt.pf ppf "|%s|" name
        else Fmt.pf ppf "(not |%s|)" name
      in
      match clause_lits r with
      | [] -> Fmt.pf ppf "(assert false)@."
      | [ l ] -> Fmt.pf ppf "(assert %a)@." pp_lit l
      | lits ->
          Fmt.pf ppf "(assert (or %a))@." (Fmt.list ~sep:Fmt.sp pp_lit) lits)
    (Ground.rules g);
  Fmt.pf ppf "(check-sat)@."

(* ------------------------------------------------------------------ *)
(* Validators *)

let validate_dimacs s =
  let lines = String.split_on_char '\n' s in
  let header = ref None in
  let clauses = ref 0 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let check_clause vars line =
    match List.rev (String.split_on_char ' ' (String.trim line)) with
    | exception _ -> fail "unreadable clause line"
    | [] | [ "" ] -> fail "blank clause line"
    | last :: rest ->
        if last <> "0" then fail (Fmt.str "clause not 0-terminated: %S" line);
        List.iter
          (fun tok ->
            match int_of_string_opt tok with
            | None -> fail (Fmt.str "bad literal %S" tok)
            | Some 0 -> fail "literal 0 inside clause"
            | Some l ->
                if abs l > vars then
                  fail (Fmt.str "literal %d out of range 1..%d" l vars))
          rest;
        incr clauses
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then
        match !header with
        | Some _ -> fail "duplicate header"
        | None -> (
            match String.split_on_char ' ' line with
            | [ "p"; "cnf"; v; c ] -> (
                match (int_of_string_opt v, int_of_string_opt c) with
                | Some v, Some c when v >= 0 && c >= 0 -> header := Some (v, c)
                | _ -> fail "malformed header counts")
            | _ -> fail (Fmt.str "malformed header %S" line))
      else
        match !header with
        | None -> fail "clause before header"
        | Some (v, _) -> check_clause v line)
    lines;
  match (!err, !header) with
  | Some msg, _ -> Error msg
  | None, None -> Error "no header"
  | None, Some (v, c) ->
      if c <> !clauses then
        Error (Fmt.str "header declares %d clauses, found %d" c !clauses)
      else Ok (v, c)

let validate_smtlib s =
  let len = String.length s in
  let depth = ref 0 in
  let exprs = ref 0 in
  let i = ref 0 in
  let err = ref None in
  let fail msg =
    if !err = None then err := Some msg;
    i := len
  in
  while !i < len do
    (match s.[!i] with
    | ';' -> while !i < len && s.[!i] <> '\n' do incr i done
    | '(' ->
        if !depth = 0 then incr exprs;
        incr depth
    | ')' ->
        decr depth;
        if !depth < 0 then fail "unbalanced ')'"
    | '|' ->
        incr i;
        while !i < len && s.[!i] <> '|' do incr i done;
        if !i >= len then fail "unterminated quoted symbol"
    | '"' ->
        incr i;
        while !i < len && s.[!i] <> '"' do incr i done;
        if !i >= len then fail "unterminated string literal"
    | c ->
        if !depth = 0 && not (c = ' ' || c = '\t' || c = '\n' || c = '\r')
        then fail (Fmt.str "top-level token outside any s-expression: %c" c));
    incr i
  done;
  match !err with
  | Some msg -> Error msg
  | None ->
      if !depth <> 0 then Error "unbalanced '('"
      else if !exprs = 0 then Error "no s-expressions"
      else Ok !exprs
