(* Two-watched-literal clause database with a level-tagged trail.

   Literals are ints: atom [a] appears positively as [2a] and negatively as
   [2a + 1]; complementation is [lxor 1].  The database owns the assignment
   (value/level/reason per atom), the trail of assigned-true literals in
   assignment order, and the per-literal watch lists; clients layer search
   and conflict analysis on top (Solver, Learn).

   Watch discipline (Minisat-style): every clause of length >= 2 watches its
   first two literals; the watch list of literal [l] holds the clauses
   watching [l], visited when [l] becomes false.  A visited clause either
   re-watches a non-false literal, is satisfied through its other watch,
   propagates its other watch as a unit, or is the conflict.  Clauses added
   mid-search (materialized support reasons, learned nogoods) watch their
   asserting literal and one currently-false literal; a backjump can
   temporarily weaken their unit detection, which the solver compensates by
   re-scanning its support worklist — soundness is unaffected because any
   full falsification of a clause still lands on a watched literal. *)

(* Assignment values, shared with Solver: 0 unknown, 1 true, 2 false. *)
let unk = 0
let tru = 1
let fls = 2

type t = {
  n : int;  (* atoms *)
  value : int array;  (* per atom *)
  level : int array;  (* per atom; meaningful while assigned *)
  reason : int array;  (* per atom: clause id, or -1 for decisions/none *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  watch_a : int array array;  (* per literal: clause ids, first watch_n live *)
  watch_n : int array;
  trail : int array;  (* assigned-true literals, assignment order *)
  mutable trail_n : int;
  mutable qhead : int;  (* propagation frontier into [trail] *)
  level_ix : int array;  (* trail index where each decision level starts *)
  mutable dl : int;  (* current decision level *)
  mutable touched : int;  (* clauses visited by propagation *)
}

let create n =
  {
    n;
    value = Array.make (max n 1) unk;
    level = Array.make (max n 1) 0;
    reason = Array.make (max n 1) (-1);
    clauses = Array.make 16 [||];
    n_clauses = 0;
    watch_a = Array.make (max (2 * n) 1) [||];
    watch_n = Array.make (max (2 * n) 1) 0;
    trail = Array.make (max n 1) 0;
    trail_n = 0;
    qhead = 0;
    level_ix = Array.make (n + 2) 0;
    dl = 0;
    touched = 0;
  }

let atom_count t = t.n
let atom_value t a = t.value.(a)
let level_of t a = t.level.(a)
let reason_of t a = t.reason.(a)
let decision_level t = t.dl
let trail_size t = t.trail_n
let trail_lit t i = t.trail.(i)
let clause_lits t c = t.clauses.(c)
let touched t = t.touched

let lit_value t l =
  let v = t.value.(l lsr 1) in
  if v = unk then unk
  else if (l land 1 = 0) = (v = tru) then tru
  else fls

let lit_is_true t l = lit_value t l = tru
let lit_is_false t l = lit_value t l = fls

let watch_add t l c =
  let n = t.watch_n.(l) in
  let a = t.watch_a.(l) in
  let a =
    if n < Array.length a then a
    else begin
      let a' = Array.make (max 4 (2 * n)) 0 in
      Array.blit a 0 a' 0 n;
      t.watch_a.(l) <- a';
      a'
    end
  in
  a.(n) <- c;
  t.watch_n.(l) <- n + 1

(* The caller guarantees [lits] is non-empty, duplicate-free and not
   tautological.  Unit clauses get no watches: the caller enqueues their
   literal (at level 0 for input units).  For clauses added mid-search the
   caller places the literal about to be enqueued at index 0 and a
   currently-false literal at index 1. *)
let add_clause t lits =
  let ci = t.n_clauses in
  if ci = Array.length t.clauses then begin
    let c' = Array.make (2 * ci) [||] in
    Array.blit t.clauses 0 c' 0 ci;
    t.clauses <- c'
  end;
  t.clauses.(ci) <- lits;
  t.n_clauses <- ci + 1;
  if Array.length lits >= 2 then begin
    watch_add t lits.(0) ci;
    watch_add t lits.(1) ci
  end;
  ci

let push_level t =
  t.dl <- t.dl + 1;
  t.level_ix.(t.dl) <- t.trail_n

(* Make [l] true.  Returns [false] iff [l] is already false (the caller
   turns that into a conflict on [reason]); enqueueing an already-true
   literal is a no-op. *)
let enqueue t ~reason l =
  match lit_value t l with
  | v when v = tru -> true
  | v when v = fls -> false
  | _ ->
      let a = l lsr 1 in
      t.value.(a) <- (if l land 1 = 0 then tru else fls);
      t.level.(a) <- t.dl;
      t.reason.(a) <- reason;
      t.trail.(t.trail_n) <- l;
      t.trail_n <- t.trail_n + 1;
      true

(* Propagate to fixpoint.  Returns the conflict clause id, or -1. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let flit = p lxor 1 in
    (* [flit] just became false: visit its watchers *)
    let ws = t.watch_a.(flit) in
    let n = t.watch_n.(flit) in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = ws.(!i) in
      incr i;
      t.touched <- t.touched + 1;
      let lits = t.clauses.(ci) in
      if lits.(0) = flit then begin
        lits.(0) <- lits.(1);
        lits.(1) <- flit
      end;
      if lit_is_true t lits.(0) then begin
        ws.(!keep) <- ci;
        incr keep
      end
      else begin
        let len = Array.length lits in
        let k = ref 2 in
        while !k < len && lit_is_false t lits.(!k) do incr k done;
        if !k < len then begin
          (* re-watch a non-false literal *)
          lits.(1) <- lits.(!k);
          lits.(!k) <- flit;
          watch_add t lits.(1) ci
        end
        else begin
          ws.(!keep) <- ci;
          incr keep;
          if lit_is_false t lits.(0) then begin
            (* conflict: keep the unvisited suffix watched *)
            while !i < n do
              ws.(!keep) <- ws.(!i);
              incr keep;
              incr i
            done;
            confl := ci;
            t.qhead <- t.trail_n
          end
          else ignore (enqueue t ~reason:ci lits.(0))
        end
      end
    done;
    t.watch_n.(flit) <- !keep
  done;
  !confl

(* Undo down to (and keeping) [lvl].  [on_undo] sees each popped literal
   before its atom is cleared, newest first. *)
let backjump t lvl ~on_undo =
  if t.dl > lvl then begin
    let bound = t.level_ix.(lvl + 1) in
    while t.trail_n > bound do
      t.trail_n <- t.trail_n - 1;
      let l = t.trail.(t.trail_n) in
      on_undo l;
      let a = l lsr 1 in
      t.value.(a) <- unk;
      t.reason.(a) <- -1
    done;
    t.dl <- lvl;
    t.qhead <- t.trail_n
  end
