(** Conflict-component decomposition of the repair search.

    Repairs are local: every repair action either deletes a tuple matched
    by some violation or inserts a consequent witness for one, and the
    cascade a fix can trigger stays inside the set of atoms reachable from
    the original violations through shared antecedent matches.  The repair
    set therefore factorizes — [Rep(D, IC)] is the cross product of the
    repairs of independent {e conflict components} over the fixed untouched
    core, and its cost collapses from the product of per-component search
    spaces to their sum.

    The conflict graph's nodes are ground atoms: the tuples matched by the
    violations of [D] plus every insertion candidate of their fixes.  Its
    edges come from a closure over {e potential violations} (antecedent
    matches that could fire in some search state): a potential violation
    linked to an active atom — through its antecedent, a deletable
    consequent witness, or an insertion candidate — merges all its atoms
    into one class.  This covers the two cascade directions: an inserted
    atom joining core tuples into a fresh violation, and a deletion
    orphaning core tuples that relied on the deleted atom as a witness.
    Connected components are computed by union-find.

    Caveats mirrored from the semantics: under a {e conflicting} NNC
    (Example 20) insertion candidates range over the whole non-null
    universe, which can merge otherwise unrelated components — [Rep_d]
    ({!Repd}) avoids this by preferring deletions, and decomposition keeps
    the same universe so either reading stays exact.  When a null-carrying
    atom of one component can cover an atom of another under condition (b)
    of [<=_D] ([product_exact = false]), per-component minimality no longer
    implies global minimality and callers must fall back to filtering the
    recombined product. *)

type component = {
  atoms : Relational.Atom.Set.t;
      (** every atom the component's search can touch (present tuples and
          insertion candidates) *)
  sub : Relational.Instance.t;  (** [atoms ∩ D]: the component's slice *)
  support : Relational.Instance.t;
      (** inert core witnesses that must be present in the search instance
          so permanently-satisfied constraints stay satisfied *)
  ics : Ic.Constr.t list;  (** constraints whose predicates meet the component *)
}

type plan = {
  core : Relational.Instance.t;  (** tuples no repair action can touch *)
  components : component list;   (** deterministic order; [[]] iff [D] is consistent *)
  universe : Relational.Value.t list;
      (** Proposition 1's universe of the {e full} instance — per-component
          searches must use it, not their slice's, so conflicting-NNC
          insertions range identically to the monolithic search *)
  nnc_positions : (string * int) list;
  product_exact : bool;
      (** no cross-component [<=_D] covering is possible: products of
          locally minimal repairs are exactly the globally minimal ones *)
}

val plan : ?budget:Budget.ctl -> Relational.Instance.t -> Ic.Constr.t list -> plan
(** [budget] contributes its wall-clock deadline to the closure fixpoints
    (planning has no decision/state counter of its own).
    @raise Budget.Exhausted on deadline; engine APIs convert it to
    [Error]. *)

val fingerprint :
  ?universe:Relational.Value.t list ->
  ?nnc_positions:(string * int) list ->
  component ->
  string
(** Stable content fingerprint of everything a per-component solve depends
    on: the component's tuples ([sub] and [support] — order-independent,
    instances are sets), its constraint list (order-sensitive: the searches
    traverse it in order), and optionally the plan-global [universe] and
    [nnc_positions] (pass them for the model-theoretic search, whose
    insertion candidates range over them; the logic-program engine
    regenerates its candidates from the slice and does not take them).
    Equal fingerprints mean the solve would produce identical results —
    the key of the session engine's component cache ({!Session}). *)

val refresh :
  plan ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  inserted:Relational.Atom.t list ->
  deleted:Relational.Atom.t list ->
  violations_unchanged:bool ->
  plan option
(** [refresh p d' ics ~inserted ~deleted ~violations_unchanged] reuses the
    plan [p] (computed for the pre-update instance) for the updated
    instance [d'] when the update provably cannot change the partition:
    the violation set is unchanged, no delta atom lies in any component's
    atoms or support, no delta predicate is mentioned by a constraint
    touching the active/support region, and the universe of Proposition 1
    is unchanged.  Under those conditions the cold plan of [d'] is [p]
    with the delta folded into the untouched core — returned as [Some];
    [None] means the caller must re-plan.  [inserted]/[deleted] are the
    net effect as in {!Semantics.Nullsat.check_delta}. *)

val product :
  Relational.Instance.t ->
  Relational.Instance.t list list ->
  Relational.Instance.t Seq.t
(** [product base choices] lazily enumerates [base ∪ c1 ∪ ... ∪ cn] for
    every way of picking one instance per choice list — the cross-product
    recombination of per-component repairs over the core. *)

val count_product : int list -> int
(** Product of per-component repair counts (the factored [repair_count]). *)
