module Atom = Relational.Atom
module Instance = Relational.Instance
module Value = Relational.Value

let delta = Instance.symdiff

(* Does [b] agree with [a] on every non-null position of [a]?  Same
   predicate and arity are required. *)
let matches_non_null_positions a b =
  String.equal (Atom.pred a) (Atom.pred b)
  && Atom.arity a = Atom.arity b
  &&
  let ta = Atom.args a and tb = Atom.args b in
  let rec go i =
    i >= Array.length ta
    || ((Value.is_null ta.(i) || Value.equal ta.(i) tb.(i)) && go (i + 1))
  in
  go 0

let leq ~d d' d'' =
  let delta' = delta d d' and delta'' = delta d d'' in
  Instance.fold
    (fun a ok ->
      ok
      &&
      if not (Atom.has_null a) then Instance.mem a delta''
      else
        Instance.mem a delta''
        || Instance.fold
             (fun b found ->
               found
               || (matches_non_null_positions a b && not (Instance.mem b delta')))
             delta'' false)
    delta' true

let lt ~d d' d'' = leq ~d d' d'' && not (leq ~d d'' d')

let minimal_among ~d candidates =
  (* Dedup through the ordered comparator instead of pairwise [equal] scans:
     [Instance.compare] is a cheap map comparison, and sorting keeps the
     result deterministic for callers that print repair lists. *)
  let uniq = List.sort_uniq Instance.compare candidates in
  List.filter
    (fun x -> not (List.exists (fun y -> lt ~d y x) uniq))
    uniq
