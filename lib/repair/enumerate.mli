(** Exact computation of [Rep(D, IC)] (Definition 7) by conflict-driven
    search.

    Starting from [D], every inconsistent state branches on the local fixes
    of {e all} of its violations: deleting one of the matched antecedent
    tuples, or inserting one consequent witness with [null] at the
    existentially quantified positions (the repair actions of the logic
    programs of Definition 9).  Branching on every violation (not just the
    first) matters for completeness: an insertion made for one constraint
    can be the only witness resolving another constraint's violation in
    some repair.  When a NOT NULL-constraint forbids [null] at an
    existential position (a {e conflicting} NNC, Example 20), the insertion
    instead ranges over the non-null universe of Proposition 1 — recovering
    the arbitrary-constant repairs of [2] restricted to that finite
    universe.  Consistent states are collected and filtered by
    [<=_D]-minimality.

    The search space is finite (states are sets of atoms over the universe
    of Proposition 1) so the procedure terminates even for RIC-cyclic
    constraint sets (Example 18).  Worst-case exponential, as CQA is
    Pi^p_2-complete (Theorem 3).  [repairs ~decompose:true] fights the
    exponent by splitting the search along the conflict components of
    {!Decompose} and recombining per-component repairs by cross product:
    k independent conflict clusters cost the {e sum} of their searches
    instead of the product. *)

exception Budget_exceeded of int

type action = Actions.action =
  | Delete of Relational.Atom.t
  | Insert of Relational.Atom.t

val pp_action : action Fmt.t

val fixes :
  universe:Relational.Value.t list ->
  nnc_positions:(string * int) list ->
  Relational.Instance.t ->
  Semantics.Nullsat.violation ->
  action list
(** The local fixes of one violation (exposed for tests and for the
    explanation CLI); see {!Actions.fixes}. *)

val search :
  ?budget:Budget.ctl ->
  ?max_states:int ->
  ?universe:Relational.Value.t list ->
  ?nnc_positions:(string * int) list ->
  ?explored:int ref ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** All consistent states reached from [D], before minimality filtering.
    [universe] and [nnc_positions] default to the instance's own
    (Proposition 1); per-component searches pass the {e global} ones from a
    {!Decompose.plan} so insertion candidates match the monolithic search.
    [explored] is reset to [0] and then counts distinct visited states.
    [budget] is the run-global budget: every state also ticks it, so a
    shared state limit and the wall-clock deadline are enforced across the
    per-component searches of one run.
    @raise Budget_exceeded when more than [max_states] (default [200_000])
    distinct states are explored.
    @raise Budget.Exhausted when [budget] trips; public engine APIs catch
    both and return [Error] — see {!Budget}. *)

val repairs :
  ?budget:Budget.ctl ->
  ?max_states:int ->
  ?decompose:bool ->
  ?jobs:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** [Rep(D, IC)].  Deterministic order.  A consistent [D] yields [[D]].
    With [~decompose:true] (default [false]) the search runs independently
    per conflict component and the results are recombined — same repair
    set, per {!Decompose}'s exactness analysis.  [jobs] (default [1])
    solves the components on that many {!Parallel.Pool} worker domains;
    the recombination is a deterministic ordered merge, so the repair list
    is byte-identical across [jobs] settings (it only applies with
    [~decompose:true]).
    @raise Budget_exceeded when more than [max_states] (default [200_000])
    distinct states are explored (per component when decomposing).
    @raise Budget.Exhausted when [budget] trips; this function promises the
    full repair set and cannot degrade gracefully — use {!decomposed} (or
    the engines of {!Query.Cqa}) for partial outcomes. *)

val consistent_states :
  ?budget:Budget.ctl ->
  ?max_states:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Relational.Instance.t list
(** [search] under its historical name (exposed for the <=_D property
    tests). *)

type decomposed = {
  plan : Decompose.plan;
  minimal : Relational.Instance.t list list;
      (** locally [<=_D]-minimal repairs per component, in [plan.components]
          order, each relative to the component's [sub ∪ support] *)
  states : Relational.Instance.t list list;
      (** all consistent states per component *)
  explored : int list;  (** states explored per component *)
  exhausted : Budget.exhausted option;
      (** [Some _] when a budget tripped mid-run: the longest fully-solved
          prefix (in plan order) carries its true repairs, the remaining
          components degrade to their unrepaired base slice
          ([sub ∪ support]) as sole entry — partial, but the work already
          done is preserved *)
}

val decomposed :
  ?budget:Budget.ctl ->
  ?max_states:int ->
  ?jobs:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  decomposed
(** Plan and solve every conflict component, without recombining — the
    building block for decomposed CQA ({!Query.Cqa}) and for the
    benchmark's decomposition counters.  Never raises on exhaustion:
    budget trips (state limit, decision limit, deadline — including the
    legacy [max_states] bound) are reported through the [exhausted]
    marker with the solved prefix intact.

    [jobs > 1] solves the components concurrently on a {!Parallel.Pool}.
    Determinism contract: without a tripped limit the result is
    bit-identical to [jobs = 1] (independent searches, ordered merge).
    On exhaustion the merge applies the sequential {e prefix rule} —
    results are scanned in plan order and everything from the first
    failed component on degrades, even components another worker had
    already solved — so the partial shape matches the sequential
    engine's; which exact component trips first can differ when a shared
    limit is hit mid-run by concurrent consumers. *)
