(** Repair actions: the local fixes of one violation (the repair actions of
    the logic programs of Definition 9) and their ground instantiation.

    Shared by the monolithic state-space search ({!Enumerate}) and the
    conflict-component planner ({!Decompose}), which both need to know
    exactly which atoms a violation's fixes can touch. *)

type action = Delete of Relational.Atom.t | Insert of Relational.Atom.t

val pp_action : action Fmt.t

val nnc_positions_of : Ic.Constr.t list -> (string * int) list
(** NOT NULL-constrained positions as (predicate, 1-based position) pairs. *)

val insertions :
  universe:Relational.Value.t list ->
  nnc_positions:(string * int) list ->
  Semantics.Assign.t ->
  Ic.Patom.t ->
  Relational.Atom.t list
(** Ground instantiations of a consequent atom under the antecedent
    assignment: existential positions take [null], positions under a
    conflicting NNC range over the non-null universe (Example 20). *)

val dedup_actions : action list -> action list
(** First occurrence wins. *)

val fixes :
  universe:Relational.Value.t list ->
  nnc_positions:(string * int) list ->
  Relational.Instance.t ->
  Semantics.Nullsat.violation ->
  action list
(** The local fixes of one violation: delete a matched antecedent tuple or
    insert one consequent witness not already present. *)

val apply : Relational.Instance.t -> action -> Relational.Instance.t
