module Atom = Relational.Atom
module Instance = Relational.Instance
module Value = Relational.Value
module Nullsat = Semantics.Nullsat

type action = Delete of Atom.t | Insert of Atom.t

let pp_action ppf = function
  | Delete a -> Fmt.pf ppf "delete %a" Atom.pp a
  | Insert a -> Fmt.pf ppf "insert %a" Atom.pp a

(* NOT NULL-constrained positions, as (predicate, position) pairs. *)
let nnc_positions_of ics =
  List.filter_map
    (function
      | Ic.Constr.NotNull n -> Some (n.pred, n.pos)
      | Ic.Constr.Generic _ -> None)
    ics

(* Ground instantiations of a consequent atom under the antecedent
   assignment [theta].  Existential positions take [null]; positions under a
   conflicting NNC range over the non-null universe instead. *)
let insertions ~universe ~nnc_positions theta atom =
  let pred = Ic.Patom.pred atom in
  let terms = Ic.Patom.terms atom in
  let non_null_universe = List.filter (fun v -> not (Value.is_null v)) universe in
  (* Collect the distinct existential variables together with whether any of
     their positions is NOT NULL-constrained. *)
  let existentials =
    List.mapi (fun i t -> (i + 1, t)) terms
    |> List.filter_map (fun (pos, t) ->
           match t with
           | Ic.Term.Const _ -> None
           | Ic.Term.Var x ->
               if Option.is_some (Semantics.Assign.find theta x) then None
               else Some (x, List.mem (pred, pos) nnc_positions))
  in
  let existentials =
    (* deduplicate per variable, a variable is constrained if any of its
       positions is *)
    List.fold_left
      (fun acc (x, constrained) ->
        match List.assoc_opt x acc with
        | None -> (x, constrained) :: acc
        | Some c ->
            (x, c || constrained) :: List.remove_assoc x acc)
      [] existentials
    |> List.rev
  in
  let rec assignments theta = function
    | [] -> [ theta ]
    | (x, constrained) :: rest ->
        let choices = if constrained then non_null_universe else [ Value.null ] in
        List.concat_map
          (fun v ->
            match Semantics.Assign.bind theta x v with
            | Some theta' -> assignments theta' rest
            | None -> [])
          choices
  in
  List.map
    (fun theta' -> Ic.Patom.ground (Semantics.Assign.lookup_exn theta') atom)
    (assignments theta existentials)

(* Deduplicate actions, first occurrence wins, through an action-keyed
   table — the List.mem scans this replaces were quadratic in the number of
   candidate actions per state. *)
let dedup_actions actions =
  let seen : (action, unit) Hashtbl.t = Hashtbl.create 16 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    actions

let fixes ~universe ~nnc_positions d (v : Nullsat.violation) =
  let deletions = List.map (fun a -> Delete a) v.Nullsat.matched in
  let inserts =
    match v.Nullsat.ic with
    | Ic.Constr.NotNull _ -> []
    | Ic.Constr.Generic g ->
        List.concat_map
          (fun atom ->
            insertions ~universe ~nnc_positions v.Nullsat.theta atom
            |> List.filter (fun a -> not (Instance.mem a d))
            |> List.map (fun a -> Insert a))
          g.Ic.Constr.cons
  in
  (* deduplicate deletions (the same tuple can match several antecedent
     atoms) *)
  dedup_actions (deletions @ inserts)

let apply d = function
  | Delete a -> Instance.remove a d
  | Insert a -> Instance.add a d
