module Atom = Relational.Atom
module Instance = Relational.Instance
module Nullsat = Semantics.Nullsat

exception Budget_exceeded of int

type action = Actions.action = Delete of Atom.t | Insert of Atom.t

let pp_action = Actions.pp_action
let fixes = Actions.fixes

module Iset = Set.Make (struct
  type t = Instance.t

  let compare = Instance.compare
end)

let search ?budget ?(max_states = 200_000) ?universe ?nnc_positions ?explored d
    ics =
  (* The universe and NNC positions are instance-global (Proposition 1):
     per-component sub-searches receive the full instance's, already
     computed once by the planner, instead of refolding the active domain
     for every component. *)
  let universe =
    match universe with Some u -> u | None -> Candidates.universe d ics
  in
  let nnc_positions =
    match nnc_positions with
    | Some n -> n
    | None -> Actions.nnc_positions_of ics
  in
  let seen = ref Iset.empty in
  let consistent = ref [] in
  let count = match explored with Some r -> r := 0; r | None -> ref 0 in
  (* violations are tracked per constraint and recomputed only for the
     constraints mentioning the predicate an action touched — a constraint's
     violations depend solely on the tuples of its own predicates *)
  let rec explore state per_ic =
    if not (Iset.mem state !seen) then begin
      seen := Iset.add state !seen;
      incr count;
      if !count > max_states then raise (Budget_exceeded max_states);
      (match budget with Some b -> Budget.tick_state b | None -> ());
      match List.concat_map snd per_ic with
      | [] -> consistent := state :: !consistent
      | violations ->
          (* branch on the fixes of EVERY current violation: an insertion
             made for one constraint can be the only way another
             constraint's violation is resolved in some repair (e.g. a UIC
             consequent witnessing a RIC), so restricting to the first
             violation's own actions would lose repairs *)
          let actions =
            Actions.dedup_actions
              (List.concat_map
                 (Actions.fixes ~universe ~nnc_positions state)
                 violations)
          in
          List.iter
            (fun act ->
              let state' = Actions.apply state act in
              let touched =
                match act with Delete a | Insert a -> Atom.pred a
              in
              let per_ic' =
                List.map
                  (fun (ic, vs) ->
                    if List.mem touched (Ic.Constr.preds ic) then
                      (ic, Nullsat.violations state' ic)
                    else (ic, vs))
                  per_ic
              in
              explore state' per_ic')
            actions
    end
  in
  explore d (List.map (fun ic -> (ic, Nullsat.violations d ic)) ics);
  List.rev !consistent

let consistent_states ?budget ?max_states d ics = search ?budget ?max_states d ics

(* ------------------------------------------------------------------ *)
(* Conflict-component decomposition (see Decompose) *)

type decomposed = {
  plan : Decompose.plan;
  minimal : Instance.t list list;
  states : Instance.t list list;
  explored : int list;
  exhausted : Budget.exhausted option;
}

let decomposed ?budget ?max_states ?(jobs = 1) d ics =
  let plan = Decompose.plan ?budget d ics in
  let component_base (c : Decompose.component) =
    Instance.union c.Decompose.sub c.Decompose.support
  in
  (* One component's search, with the expected exceptions boxed into a
     result — on a worker domain nothing may escape the task. *)
  let solve_one (c : Decompose.component) =
    let base = component_base c in
    let counter = ref 0 in
    match
      search ?budget ?max_states ~universe:plan.Decompose.universe
        ~nnc_positions:plan.Decompose.nnc_positions ~explored:counter base
        c.Decompose.ics
    with
    | states ->
        (match budget with
        | Some b -> Budget.note_worker_component b
        | None -> ());
        (* Minimality is component-local: the symmetric differences of
           two recombined repairs split by component, so filtering each
           component's states against its own base replaces the cross
           product's quadratic filter by per-component ones. *)
        Ok (Order.minimal_among ~d:base states, states, !counter)
    | exception Budget_exceeded n -> Error (Budget.States n)
    | exception Budget.Exhausted e -> Error e
  in
  (* On exhaustion the longest fully-solved prefix (in plan order) is kept
     and the remaining components degrade to their unrepaired base slice —
     graceful degradation instead of discarding the work, with the
     [exhausted] marker making the partiality explicit.  The prefix rule is
     what makes the parallel path deterministic: the merge scans results in
     plan order, exactly like the sequential traversal, so which worker
     failed first never shows. *)
  let merge results components =
    let rec scan acc = function
      | [] -> (List.rev acc, None)
      | (Ok r, _) :: rest ->
          (match budget with Some b -> Budget.note_component b | None -> ());
          scan (r :: acc) rest
      | (Error e, _) :: _ as remaining ->
          let filler =
            List.map
              (fun (_, c) ->
                let base = component_base c in
                ([ base ], [ base ], 0))
              remaining
          in
          (List.rev_append acc filler, Some e)
    in
    scan [] (List.combine results components)
  in
  let components = plan.Decompose.components in
  let solved, exhausted =
    if jobs <= 1 || List.length components <= 1 then
      (* sequential path: solve in plan order, stop at the first trip (the
         remaining components are never searched — no budget is spent past
         the exhaustion point, exactly the historical behavior) *)
      let rec seq acc = function
        | [] -> merge (List.rev acc) components
        | c :: rest -> (
            match solve_one c with
            | Ok _ as r -> seq (r :: acc) rest
            | Error _ as r ->
                merge (List.rev_append acc (r :: List.map (fun _ -> r) rest))
                  components)
      in
      seq [] components
    else
      let results =
        Parallel.Pool.with_pool ~jobs
          ~init:(fun w -> Budget.set_worker_slot (w + 1))
          (fun pool -> Parallel.Pool.map pool solve_one components)
      in
      merge results components
  in
  {
    plan;
    minimal = List.map (fun (m, _, _) -> m) solved;
    states = List.map (fun (_, s, _) -> s) solved;
    explored = List.map (fun (_, _, e) -> e) solved;
    exhausted;
  }

let repairs ?budget ?max_states ?(decompose = false) ?(jobs = 1) d ics =
  if not decompose then
    Order.minimal_among ~d (search ?budget ?max_states d ics)
  else
    let r = decomposed ?budget ?max_states ~jobs d ics in
    (* [repairs] promises the full repair set, so a partial decomposition
       cannot be returned here — re-raise and let the result-returning
       engines (Cqa, Engine) do the graceful degradation. *)
    (match r.exhausted with
    | Some (Budget.States n) -> raise (Budget_exceeded n)
    | Some e -> raise (Budget.Exhausted e)
    | None -> ());
    match r.plan.Decompose.components with
    | [] -> [ d ]
    | _ ->
        if r.plan.Decompose.product_exact then
          List.of_seq (Decompose.product r.plan.Decompose.core r.minimal)
        else
          (* Cross-component covering could beat a product of locally
             minimal repairs (or keep a locally non-minimal component in a
             global repair), so recombine the consistent states and filter
             globally — still cheaper than the monolithic search, which
             explores the product state space instead of recombining it. *)
          Order.minimal_among ~d
            (List.of_seq (Decompose.product r.plan.Decompose.core r.states))
