module Atom = Relational.Atom
module Instance = Relational.Instance
module Value = Relational.Value
module Assign = Semantics.Assign
module Nullsat = Semantics.Nullsat

type component = {
  atoms : Atom.Set.t;
  sub : Instance.t;
  support : Instance.t;
  ics : Ic.Constr.t list;
}

type plan = {
  core : Instance.t;
  components : component list;
  universe : Value.t list;
  nnc_positions : (string * int) list;
  product_exact : bool;
}

(* ------------------------------------------------------------------ *)
(* Union-find over ground atoms.  An absent key is its own singleton
   class. *)

type uf = (Atom.t, Atom.t) Hashtbl.t

let uf_create () : uf = Hashtbl.create 64

let rec uf_find (uf : uf) a =
  match Hashtbl.find_opt uf a with
  | None -> a
  | Some p when Atom.equal p a -> a
  | Some p ->
      let r = uf_find uf p in
      Hashtbl.replace uf a r;
      r

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if not (Atom.equal ra rb) then Hashtbl.replace uf ra rb

let uf_merge_all uf = function
  | [] -> ()
  | a :: rest -> List.iter (uf_union uf a) rest

(* ------------------------------------------------------------------ *)
(* Potential violations.

   A potential violation (pv) of a generic constraint is an antecedent
   match over [d_ext] (the instance extended with every insertion candidate
   discovered so far) whose relevant universal variables are null-free and
   whose built-in disjunction does not hold — i.e. a match that becomes an
   actual violation in any search state containing its antecedent atoms and
   none of its consequent witnesses.  Dropping the consequent-existence
   check is what makes the analysis state-independent: a witness present in
   [d] may be deleted mid-search, an absent one may be inserted. *)

let phi_holds g theta =
  let lookup x = Assign.lookup_exn theta x in
  List.exists (Ic.Builtin.eval lookup) g.Ic.Constr.phi

let null_escape g =
  let relevant = Ic.Relevant.relevant_universal_vars g in
  fun theta ->
    List.exists
      (fun x ->
        match Assign.find theta x with
        | Some v -> Value.is_null v
        | None -> false)
      relevant

(* Ground consequent atoms of [g] present in [d_ext] under [theta]
   (existential positions match any value). *)
let cons_witnesses d_ext g theta =
  List.concat_map
    (fun c ->
      Assign.atom_matches d_ext theta c
      |> List.map (fun theta' -> Ic.Patom.ground (Assign.lookup_exn theta') c))
    g.Ic.Constr.cons

let iter_pvs d_ext ics ~f =
  List.iter
    (function
      | Ic.Constr.NotNull _ -> ()
      | Ic.Constr.Generic g ->
          let escape = null_escape g in
          Assign.iter_join_with_witness d_ext Assign.empty g.Ic.Constr.ante
            ~f:(fun theta witness ->
              if not (escape theta || phi_holds g theta) then f g theta witness))
    ics

(* ------------------------------------------------------------------ *)
(* The conflict-component plan.

   Seeds are the actual violations of [d]: their matched tuples and every
   ground insertion candidate of their fixes form one class.  The closure
   then repeatedly scans the potential violations of [d_ext]:

   - a pv with a consequent witness in the untouched core can never fire
     (the witness is never deleted) — it is skipped;
   - otherwise a pv is {e live} if some antecedent atom is already active,
     or some consequent witness is (deleting that witness fires the pv).
     All its antecedent atoms, witnesses and insertion candidates join one
     class and become active — this is how a cascade drags core tuples into
     a component (inserting R(a) can fire R(x),T(x) -> false against a core
     T(a); deleting Q(a) for one constraint can orphan a core P(a) under
     P(x) -> Q(x)).

   After the active set stabilizes, a second fixpoint collects {e support}
   atoms: a pv whose antecedent is entirely active-or-support but which is
   permanently satisfied by a core witness needs that witness present in
   the component's search instance, or the per-component search would see
   a spurious violation.  Support atoms are inert — no live pv mentions
   them, so no repair action ever touches them. *)

let plan ?budget d ics =
  (* Planning carries no decision/state counter, so the budget contributes
     its wall-clock deadline, probed once per fixpoint round. *)
  let tick () =
    match budget with Some b -> Budget.check_deadline b | None -> ()
  in
  let universe = Candidates.universe d ics in
  let nnc_positions = Actions.nnc_positions_of ics in
  let uf = uf_create () in
  let active = ref Atom.Set.empty in
  let d_ext = ref d in
  let activate nodes =
    let fresh =
      List.filter (fun a -> not (Atom.Set.mem a !active)) nodes
    in
    List.iter
      (fun a ->
        active := Atom.Set.add a !active;
        if not (Instance.mem a !d_ext) then d_ext := Instance.add a !d_ext)
      fresh;
    uf_merge_all uf nodes;
    fresh <> []
  in
  (* Seeds: the actual violations of d. *)
  List.iter
    (fun ic ->
      List.iter
        (fun (v : Nullsat.violation) ->
          let inserts =
            match v.Nullsat.ic with
            | Ic.Constr.NotNull _ -> []
            | Ic.Constr.Generic g ->
                List.concat_map
                  (Actions.insertions ~universe ~nnc_positions v.Nullsat.theta)
                  g.Ic.Constr.cons
          in
          ignore (activate (v.Nullsat.matched @ inserts)))
        (Nullsat.violations d ic))
    ics;
  (* Closure of the active set under cascades. *)
  let changed = ref (not (Atom.Set.is_empty !active)) in
  while !changed do
    tick ();
    changed := false;
    let snapshot = !d_ext in
    iter_pvs snapshot ics ~f:(fun g theta witness ->
        let witnesses = cons_witnesses snapshot g theta in
        let is_core a = Instance.mem a d && not (Atom.Set.mem a !active) in
        if not (List.exists is_core witnesses) then begin
          let live =
            List.exists (fun a -> Atom.Set.mem a !active) witness
            || witnesses <> []
          in
          if live then begin
            let inserts =
              List.concat_map
                (Actions.insertions ~universe ~nnc_positions theta)
                g.Ic.Constr.cons
            in
            if activate (witness @ witnesses @ inserts) then changed := true
          end
        end)
  done;
  (* Support: core witnesses keeping otherwise-matchable pvs satisfied. *)
  let support = ref Instance.empty in
  let support_changed = ref true in
  while !support_changed do
    tick ();
    support_changed := false;
    iter_pvs !d_ext ics ~f:(fun g theta witness ->
        let matchable =
          List.for_all
            (fun a -> Atom.Set.mem a !active || Instance.mem a !support)
            witness
        in
        if matchable then
          let witnesses = cons_witnesses !d_ext g theta in
          let core_witness =
            List.find_opt
              (fun a -> Instance.mem a d && not (Atom.Set.mem a !active))
              witnesses
          in
          match core_witness with
          | Some w when not (Instance.mem w !support) ->
              support := Instance.add w !support;
              support_changed := true
          | _ -> ())
  done;
  (* Extract components in a deterministic order. *)
  let classes : (Atom.t, Atom.Set.t) Hashtbl.t = Hashtbl.create 16 in
  Atom.Set.iter
    (fun a ->
      let r = uf_find uf a in
      let prev =
        Option.value ~default:Atom.Set.empty (Hashtbl.find_opt classes r)
      in
      Hashtbl.replace classes r (Atom.Set.add a prev))
    !active;
  let components =
    Hashtbl.fold (fun _ atoms acc -> atoms :: acc) classes []
    |> List.sort (fun a b -> Atom.compare (Atom.Set.min_elt a) (Atom.Set.min_elt b))
    |> List.map (fun atoms ->
           let preds =
             Atom.Set.fold
               (fun a acc ->
                 if List.mem (Atom.pred a) acc then acc else Atom.pred a :: acc)
               atoms []
           in
           let ics =
             List.filter
               (fun ic ->
                 List.exists (fun p -> List.mem p preds) (Ic.Constr.preds ic))
               ics
           in
           {
             atoms;
             sub =
               Atom.Set.fold
                 (fun a acc -> if Instance.mem a d then Instance.add a acc else acc)
                 atoms Instance.empty;
             support = !support;
             ics;
           })
  in
  let core = Instance.filter (fun a -> not (Atom.Set.mem a !active)) d in
  (* Product exactness: per-component minimality implies global minimality
     unless a null-carrying atom of one component could cover (condition
     (b) of <=_D) an atom of another — only then can a cross product of
     locally minimal repairs be beaten through cross-component covering. *)
  let product_exact =
    let tagged =
      List.concat
        (List.mapi
           (fun i c -> List.map (fun a -> (i, a)) (Atom.Set.elements c.atoms))
           components)
    in
    let by_pred : (string, (int * Atom.t) list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (i, a) ->
        let p = Atom.pred a in
        Hashtbl.replace by_pred p
          ((i, a) :: Option.value ~default:[] (Hashtbl.find_opt by_pred p)))
      tagged;
    (* Candidate covers of a null-carrying atom must agree with it on every
       non-null position, so within each predicate group a posting index
       keyed by (position, value) narrows the candidates to atoms sharing
       the probe value at the atom's first non-null position — replacing the
       pairwise scan of the whole group.  A fully-null atom constrains no
       position and falls back to the group. *)
    let exception Not_exact in
    try
      Hashtbl.iter
        (fun _ group ->
          let posting : (int * Value.t, (int * Atom.t) list) Hashtbl.t =
            Hashtbl.create 32
          in
          List.iter
            (fun (j, b) ->
              Array.iteri
                (fun p v ->
                  Hashtbl.replace posting (p, v)
                    ((j, b)
                    :: Option.value ~default:[] (Hashtbl.find_opt posting (p, v))))
                (Atom.args b))
            group;
          List.iter
            (fun (i, a) ->
              if Atom.has_null a then begin
                let args = Atom.args a in
                let probe =
                  let rec go p =
                    if p >= Array.length args then None
                    else if Value.is_null args.(p) then go (p + 1)
                    else Some p
                  in
                  go 0
                in
                let candidates =
                  match probe with
                  | Some p ->
                      Option.value ~default:[]
                        (Hashtbl.find_opt posting (p, args.(p)))
                  | None -> group
                in
                if
                  List.exists
                    (fun (j, b) ->
                      i <> j && Order.matches_non_null_positions a b)
                    candidates
                then raise Not_exact
              end)
            group)
        by_pred;
      true
    with Not_exact -> false
  in
  { core; components; universe; nnc_positions; product_exact }

(* ------------------------------------------------------------------ *)
(* Content fingerprints and incremental plan maintenance (the session
   engine's cache key and fast path). *)

(* Instances digest through the symbol table's {e canonical strings}
   ([Symtab.to_string], i.e. [Value.to_string] of the decoded value) —
   never through physical codes, which depend on interning order and so
   differ across sessions and processes.  Content-addressing is what lets
   identical components hit the session cache cross-session. *)
let render_instance buf inst =
  Instance.iter
    (fun a ->
      Buffer.add_string buf (Relational.Atom.pred a);
      Buffer.add_char buf '(';
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Relational.Symtab.to_string (Relational.Symtab.intern v)))
        (Relational.Atom.args a);
      Buffer.add_string buf ")\n")
    inst

let fingerprint ?(universe = []) ?(nnc_positions = []) c =
  let buf = Buffer.create 256 in
  (* instances are sets iterated in sorted order, so the rendering — hence
     the digest — is independent of tuple order *)
  render_instance buf c.sub;
  Buffer.add_string buf "\x00support\x00";
  render_instance buf c.support;
  Buffer.add_string buf "\x00ics\x00";
  (* constraint order is part of the content: the per-component searches
     traverse the constraint list in order, so two orderings are distinct
     solves even over the same set *)
  List.iter
    (fun ic ->
      Buffer.add_string buf (Ic.Constr.to_string ic);
      Buffer.add_char buf '\n')
    c.ics;
  Buffer.add_string buf "\x00universe\x00";
  List.iter
    (fun v ->
      Buffer.add_string buf (Value.to_string v);
      Buffer.add_char buf '\n')
    universe;
  Buffer.add_string buf "\x00nnc\x00";
  List.iter
    (fun (p, i) -> Buffer.add_string buf (Printf.sprintf "%s[%d]\n" p i))
    nnc_positions;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let refresh p d' ics ~inserted ~deleted ~violations_unchanged =
  (* Sound reuse of the whole partition.  The closure of [plan] is a
     monotone fixpoint seeded by the actual violations; with (1) the same
     violation set, (2) the same universe (so the same insertion
     candidates), (3) no delta atom inside any component's atoms or
     support, and (4) no delta predicate mentioned by any constraint that
     touches the active/support region, no rule application of the cold
     fixpoint on the new instance can differ: the first new activation
     would need a potential violation joining a delta atom with an active
     or support atom, and such a pv's constraint mentions both a region
     predicate and a delta predicate — excluded by (4).  The same argument
     keeps the support fixpoint's witness choices fixed.  Under the four
     conditions the cold plan of the new instance is the old plan with the
     delta folded into the untouched core. *)
  if not violations_unchanged then None
  else
    let delta = inserted @ deleted in
    let in_closure a =
      List.exists
        (fun c -> Atom.Set.mem a c.atoms || Instance.mem a c.support)
        p.components
    in
    if List.exists in_closure delta then None
    else
      let region_preds =
        List.sort_uniq String.compare
          (List.concat_map
             (fun c ->
               Atom.Set.fold (fun a acc -> Atom.pred a :: acc) c.atoms []
               @ Instance.fold (fun a acc -> Atom.pred a :: acc) c.support [])
             p.components)
      in
      let relevant_preds =
        List.concat_map
          (fun ic ->
            let preds = Ic.Constr.preds ic in
            if List.exists (fun pr -> List.mem pr region_preds) preds then
              preds
            else [])
          ics
        |> List.sort_uniq String.compare
      in
      let delta_preds =
        List.sort_uniq String.compare (List.map Atom.pred delta)
      in
      if List.exists (fun pr -> List.mem pr relevant_preds) delta_preds then
        None
      else if
        not (List.equal Value.equal (Candidates.universe d' ics) p.universe)
      then None
      else
        let core =
          List.fold_left
            (fun core a -> Instance.add a core)
            (List.fold_left
               (fun core a -> Instance.remove a core)
               p.core deleted)
            inserted
        in
        Some { p with core }

(* ------------------------------------------------------------------ *)
(* Lazy recombination *)

let product base choices =
  let rec go acc = function
    | [] -> Seq.return acc
    | cs :: rest ->
        Seq.concat_map (fun c -> go (Instance.union acc c) rest) (List.to_seq cs)
  in
  go base choices

let count_product counts = List.fold_left (fun n c -> n * c) 1 counts
