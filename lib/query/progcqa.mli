(** Consistent query answering as cautious reasoning over the repair
    program — the paper's computational method ("consistent query answering
    amounts to doing cautious or certain reasoning from logic programs under
    the stable model semantics", Section 1).

    The query is compiled to rules [ans(x) :- lits] over the [t**]-annotated
    predicates of [Pi(D, IC)] and appended to the program; the consistent
    answers are the cautious consequences of the combined program on [ans],
    the possible answers its brave consequences.  No repair is ever
    materialized.

    Supported query fragment: unions of conjunctions of (possibly negated)
    atoms, comparisons and [IsNull], with existential quantification —
    i.e. safe non-recursive Datalog with negation.  Universal quantifiers
    and negated existentials are rejected (use the repair-materializing
    engines of {!Cqa}).  The constraint set must be RIC-acyclic: that is
    Theorem 4's hypothesis, and for cyclic sets the stable models
    over-approximate the repairs, making cautious reasoning incomplete. *)

val compile :
  Core.Annot.Names.t -> Qsyntax.t -> (Asp.Syntax.rule list, string) result
(** The query rules, with head predicate [ans].  Fails on unsupported
    shapes and on unsafe rules (e.g. a head variable occurring only under
    negation). *)

type outcome = {
  consistent : Relational.Tuple.Set.t;  (** cautious consequences *)
  possible : Relational.Tuple.Set.t;    (** brave consequences *)
  stable_models : int;
}

val consistent_answers :
  ?variant:Core.Proggen.variant ->
  ?budget:Budget.ctl ->
  ?search:Asp.Solver.search ->
  ?max_decisions:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Qsyntax.t ->
  (outcome, string) result
(** [budget] bounds grounding and solving under the shared run budget;
    exhaustion of it or of the local [max_decisions] yields [Error], never
    an exception.  [search] picks the solver's search mode
    ({!Asp.Solver.search}, default [`Cdcl]). *)

val certain :
  ?variant:Core.Proggen.variant ->
  ?budget:Budget.ctl ->
  ?search:Asp.Solver.search ->
  ?max_decisions:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Qsyntax.t ->
  (bool, string) result
(** Definition 8 for boolean queries, by cautious reasoning. *)
