module Value = Relational.Value
module Instance = Relational.Instance
module Assign = Semantics.Assign

type semantics = NullAsConstant | SqlLike | NullAware

let query_constants body =
  let rec go = function
    | Qsyntax.Atom a ->
        List.filter_map
          (function Ic.Term.Const v -> Some v | Ic.Term.Var _ -> None)
          (Ic.Patom.terms a)
    | Qsyntax.Builtin (Ic.Builtin.Cmp (_, l, r)) ->
        List.filter_map
          (fun (e : Ic.Builtin.expr) ->
            match e.Ic.Builtin.base with
            | Ic.Term.Const v -> Some v
            | Ic.Term.Var _ -> None)
          [ l; r ]
    | Qsyntax.Builtin Ic.Builtin.False -> []
    | Qsyntax.IsNull (Ic.Term.Const v) -> [ v ]
    | Qsyntax.IsNull (Ic.Term.Var _) -> []
    | Qsyntax.And (f, g) | Qsyntax.Or (f, g) -> go f @ go g
    | Qsyntax.Not f -> go f
    | Qsyntax.Exists (_, f) | Qsyntax.Forall (_, f) -> go f
  in
  go body

let domain d body =
  let module Vset = Set.Make (Value) in
  Vset.elements
    (Vset.union
       (Vset.of_list (Instance.active_domain d))
       (Vset.of_list (query_constants body)))

let eval_builtin semantics theta b =
  let lookup x = Assign.lookup_exn theta x in
  match semantics with
  | NullAsConstant -> Ic.Builtin.eval lookup b
  | SqlLike | NullAware -> (
      match Ic.Builtin.eval3 lookup b with Some v -> v | None -> false)

(* Variables occurring at least twice in the body's atoms, or at all in a
   comparison — the query analogue of Definition 2's relevant variables. *)
let join_vars formula =
  let tbl = Hashtbl.create 16 in
  let bump x =
    Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x))
  in
  let rec go = function
    | Qsyntax.Atom a ->
        List.iter
          (function Ic.Term.Var x -> bump x | Ic.Term.Const _ -> ())
          (Ic.Patom.terms a)
    | Qsyntax.Builtin b -> List.iter (fun x -> bump x; bump x) (Ic.Builtin.vars b)
    | Qsyntax.IsNull _ -> ()
    | Qsyntax.And (f, g) | Qsyntax.Or (f, g) -> go f; go g
    | Qsyntax.Not f -> go f
    | Qsyntax.Exists (_, f) | Qsyntax.Forall (_, f) -> go f
  in
  go formula;
  Hashtbl.fold (fun x n acc -> if n >= 2 then x :: acc else acc) tbl []

let holds ?(semantics = NullAsConstant) d theta formula =
  let dom = lazy (domain d formula) in
  let joins = lazy (join_vars formula) in
  let atom_holds theta a =
    match semantics with
    | NullAsConstant | SqlLike -> Assign.exists_match d theta a
    | NullAware ->
        (* a match may not bind a join variable to null *)
        Assign.atom_matches d theta a
        |> List.exists (fun theta' ->
               List.for_all
                 (fun t ->
                   match t with
                   | Ic.Term.Const _ -> true
                   | Ic.Term.Var x ->
                       (not (List.mem x (Lazy.force joins)))
                       ||
                       (match Assign.find theta' x with
                       | Some v -> not (Value.is_null v)
                       | None -> true))
                 (Ic.Patom.terms a))
  in
  let rec go theta = function
    | Qsyntax.Atom a -> atom_holds theta a
    | Qsyntax.Builtin b -> eval_builtin semantics theta b
    | Qsyntax.IsNull t -> (
        match Assign.value_of_term theta t with
        | Some v -> Value.is_null v
        | None -> invalid_arg "Qeval: unbound variable under IsNull")
    | Qsyntax.And (f, g) -> go theta f && go theta g
    | Qsyntax.Or (f, g) -> go theta f || go theta g
    | Qsyntax.Not f -> not (go theta f)
    | Qsyntax.Exists (xs, f) -> exists_assign theta xs f
    | Qsyntax.Forall (xs, f) -> not (exists_assign_not theta xs f)
  and exists_assign theta xs f =
    match xs with
    | [] -> go theta f
    | x :: rest ->
        List.exists
          (fun v ->
            match Assign.bind theta x v with
            | Some theta' -> exists_assign theta' rest f
            | None -> false)
          (Lazy.force dom)
  and exists_assign_not theta xs f =
    match xs with
    | [] -> not (go theta f)
    | x :: rest ->
        List.exists
          (fun v ->
            match Assign.bind theta x v with
            | Some theta' -> exists_assign_not theta' rest f
            | None -> false)
          (Lazy.force dom)
  in
  go theta formula

(* all free variables of the body are enumerated (non-head free variables
   are implicitly existentially quantified); the answer projects to the
   head *)
let answers_enum ?semantics d (q : Qsyntax.t) =
  let dom = domain d q.Qsyntax.body in
  let free = Qsyntax.free_vars q.Qsyntax.body in
  let rec enumerate theta = function
    | [] ->
        if holds ?semantics d theta q.Qsyntax.body then
          [ Relational.Tuple.make (List.map (Assign.lookup_exn theta) q.Qsyntax.head) ]
        else []
    | x :: rest ->
        List.concat_map
          (fun v ->
            match Assign.bind theta x v with
            | Some theta' -> enumerate theta' rest
            | None -> [])
          dom
  in
  Relational.Tuple.Set.of_list (enumerate Assign.empty free)

(* Join-driven evaluation for the factorizable fragment (positive
   existential conjunctive bodies whose every variable occurs in a
   database atom, {!Qsafe.factorizable}): instead of enumerating the
   active domain to the power of the free variables — O(|adom|^k),
   infeasible beyond toy instances — enumerate the antecedent-style join
   of the body's atoms through the instance's hash indexes and filter with
   the built-ins / [IsNull]s.  Equivalent to {!answers_enum} on this
   fragment: every satisfying domain assignment must match all atoms (the
   body conjoins them), so it is produced by the join, and join bindings
   draw from tuple values, hence from the domain.  Repeated variable names
   under nested quantifiers collapse to equality in both evaluators
   ([Assign.bind] refuses conflicting rebinds). *)
let answers_join semantics d (q : Qsyntax.t) =
  let atoms = Qsyntax.atoms q.Qsyntax.body in
  let builtins = ref [] and isnulls = ref [] in
  let rec collect = function
    | Qsyntax.Atom _ -> ()
    | Qsyntax.Builtin b -> builtins := b :: !builtins
    | Qsyntax.IsNull t -> isnulls := t :: !isnulls
    | Qsyntax.And (f, g) ->
        collect f;
        collect g
    | Qsyntax.Exists (_, f) -> collect f
    | Qsyntax.Or _ | Qsyntax.Not _ | Qsyntax.Forall _ ->
        invalid_arg "Qeval.answers_join: not factorizable"
  in
  collect q.Qsyntax.body;
  let builtins = !builtins and isnulls = !isnulls in
  let acc = ref Relational.Tuple.Set.empty in
  Assign.iter_join_with_witness d Assign.empty atoms ~f:(fun theta _ ->
      if
        List.for_all (fun b -> eval_builtin semantics theta b) builtins
        && List.for_all
             (fun t ->
               match Assign.value_of_term theta t with
               | Some v -> Value.is_null v
               | None -> invalid_arg "Qeval: unbound variable under IsNull")
             isnulls
      then
        acc :=
          Relational.Tuple.Set.add
            (Relational.Tuple.make
               (List.map (Assign.lookup_exn theta) q.Qsyntax.head))
            !acc);
  !acc

let answers ?semantics d (q : Qsyntax.t) =
  match semantics with
  | Some NullAware -> answers_enum ?semantics d q
  | (None | Some NullAsConstant | Some SqlLike) when
      Qsafe.factorizable q.Qsyntax.body ->
      answers_join (Option.value ~default:NullAsConstant semantics) d q
  | _ -> answers_enum ?semantics d q

let boolean ?semantics d q =
  if not (Qsyntax.is_boolean q) then
    invalid_arg "Qeval.boolean: query has head variables";
  holds ?semantics d Assign.empty q.Qsyntax.body
