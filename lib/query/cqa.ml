module Tuple = Relational.Tuple
module Instance = Relational.Instance

type method_ = ModelTheoretic | LogicProgram | CautiousProgram | Auto

(* The two repair-materializing engines as their own type: the dispatch on
   [CautiousProgram] happens exactly once, in [consistent_answers], so the
   repair-materializing helpers below cannot be reached with it — the
   former [assert false] arms are unrepresentable. *)
type materializer = Enumerator | ProgramEngine

type outcome = {
  consistent : Tuple.Set.t;
  possible : Tuple.Set.t;
  standard : Tuple.Set.t;
  repair_count : int;
  exhausted : Budget.exhausted option;
}

let repairs_of mat ?budget max_effort d ics =
  match mat with
  | Enumerator -> (
      match Repair.Enumerate.repairs ?budget ?max_states:max_effort d ics with
      | reps -> Ok reps
      | exception Repair.Enumerate.Budget_exceeded n ->
          Error (Budget.message (Budget.States n))
      | exception Budget.Exhausted e -> Error (Budget.message e))
  | ProgramEngine -> Core.Engine.repairs ?budget ?max_decisions:max_effort d ics

let outcome_of_answer_sets ?exhausted standard repair_count answer_sets =
  let consistent =
    match answer_sets with
    | [] -> Tuple.Set.empty
    | s :: rest -> List.fold_left Tuple.Set.inter s rest
  in
  let possible = List.fold_left Tuple.Set.union Tuple.Set.empty answer_sets in
  { consistent; possible; standard; repair_count; exhausted }

let outcome_of_repairs ?semantics ~standard q repairs =
  outcome_of_answer_sets standard (List.length repairs)
    (List.map (fun r -> Qeval.answers ?semantics r q) repairs)

(* ------------------------------------------------------------------ *)
(* Decomposed CQA (Repair.Decompose).

   The per-component answer algebra requires the factorizable query
   fragment of {!Qsafe.shape} (positive existential conjunctive, every
   variable in a database atom): answers are then insensitive to atoms of
   predicates the query does not mention. *)

let component_preds (c : Repair.Decompose.component) =
  Relational.Atom.Set.fold
    (fun a acc ->
      let p = Relational.Atom.pred a in
      if List.mem p acc then acc else p :: acc)
    c.Repair.Decompose.atoms []

(* Per-component repair lists (locally <=_D-minimal), plus the consistent
   states needed for the inexact-product fallback when the model-theoretic
   engine is in use.  Exhaustion mid-run keeps the solved prefix (the
   unsolved components degrade to their base slice) with the marker. *)
let solve_components mat ?budget ?(jobs = 1) max_effort d ics
    (plan : Repair.Decompose.plan) =
  match mat with
  | Enumerator ->
      let r =
        Repair.Enumerate.decomposed ?budget ?max_states:max_effort ~jobs d ics
      in
      (* the degraded filler components of a partial outcome are the ones
         with zero explored states (a real search explores >= 1) *)
      let completed =
        List.length (List.filter (fun n -> n > 0) r.Repair.Enumerate.explored)
      in
      Ok
        ( r.Repair.Enumerate.minimal,
          Some r.Repair.Enumerate.states,
          completed,
          r.Repair.Enumerate.exhausted )
  | ProgramEngine ->
      Result.map
        (fun (r : Core.Engine.components_result) ->
          (r.Core.Engine.solved, None, r.Core.Engine.completed,
           r.Core.Engine.exhausted))
        (Core.Engine.solve_components ?budget ?max_decisions:max_effort ~jobs
           plan)

(* The factorized answer combination over already-solved components: the
   common tail of decomposed CQA here and of the session engine's cached
   path ({!Session}) — sharing it is what makes session answers
   byte-identical to a cold decomposed run by construction. *)
let factorized_outcome ?semantics ?(jobs = 1) ?states ?exhausted ~plan
    ~minimal ~standard (q : Qsyntax.t) =
  let core = plan.Repair.Decompose.core in
  let components = plan.Repair.Decompose.components in
  let d = Instance.union core (List.fold_left Instance.union Instance.empty
                                 (List.map (fun (c : Repair.Decompose.component) ->
                                      c.Repair.Decompose.sub) components)) in
  let counts = List.map List.length minimal in
  let repair_count = Repair.Decompose.count_product counts in
  let eval r = Qeval.answers ?semantics r q in
  let full_repairs () =
    if plan.Repair.Decompose.product_exact then
      List.of_seq (Repair.Decompose.product core minimal)
    else
      (* model-theoretic engine: recombine the consistent
         states and filter globally *)
      Repair.Order.minimal_among ~d
        (List.of_seq
           (Repair.Decompose.product core (Option.get states)))
  in
  let shape = Qsafe.shape q in
  if
    (not plan.Repair.Decompose.product_exact)
    || shape = Qsafe.Opaque
    || List.exists (fun l -> l = []) minimal
  then
    (* evaluate over the recombined repair list; still
       profits from the per-component search *)
    let reps = full_repairs () in
    outcome_of_answer_sets ?exhausted standard
      (List.length reps) (List.map eval reps)
  else
    let qpreds = Qsyntax.preds q in
    let relevant =
      List.filter
        (fun (c, _) ->
          List.exists
            (fun p -> List.mem p qpreds)
            (component_preds c))
        (List.combine components minimal)
    in
    match relevant with
    | [] ->
        (* no component touches a query predicate: every
           repair has exactly D's tuples there *)
        { consistent = standard; possible = standard;
          standard; repair_count; exhausted }
    | _ -> (
        match shape with
        | Qsafe.Opaque -> assert false (* excluded above *)
        | Qsafe.Single ->
            (* single-atom query: answers are additive
               over components, so Inter_choices
               (A ∪ Union_i B_i) = Union_i Inter_c
               (A ∪ B_i,c) — per-component intersections
               and unions suffice *)
            let eval_component (_, reps) =
              let sets =
                List.map
                  (fun r -> eval (Instance.union core r))
                  reps
              in
              ( List.fold_left Tuple.Set.inter
                  (List.hd sets) (List.tl sets),
                List.fold_left Tuple.Set.union
                  Tuple.Set.empty sets )
            in
            (* the per-component answer algebra is as
               independent as the solves: evaluate each
               component's answer sets on the pool too *)
            let per_component =
              if jobs <= 1 || List.length relevant <= 1
              then List.map eval_component relevant
              else
                Parallel.Pool.with_pool ~jobs
                  ~init:(fun w ->
                    Budget.set_worker_slot (w + 1))
                  (fun pool ->
                    Parallel.Pool.map pool eval_component
                      relevant)
            in
            {
              consistent =
                List.fold_left
                  (fun acc (i, _) -> Tuple.Set.union acc i)
                  Tuple.Set.empty per_component;
              possible =
                List.fold_left
                  (fun acc (_, u) -> Tuple.Set.union acc u)
                  Tuple.Set.empty per_component;
              standard;
              repair_count;
              exhausted;
            }
        | Qsafe.Join ->
            (* join query: answers can join atoms across
               components — recombine, but only over the
               components that mention a query
               predicate *)
            let sets =
              Seq.map eval
                (Repair.Decompose.product core
                   (List.map snd relevant))
            in
            let consistent, possible =
              match sets () with
              | Seq.Nil ->
                  (Tuple.Set.empty, Tuple.Set.empty)
              | Seq.Cons (s, rest) ->
                  Seq.fold_left
                    (fun (i, u) s ->
                      ( Tuple.Set.inter i s,
                        Tuple.Set.union u s ))
                    (s, s) rest
            in
            { consistent; possible; standard; repair_count;
              exhausted })

let decomposed_outcome mat ?budget ?semantics ?(jobs = 1) max_effort d ics
    (q : Qsyntax.t) =
  let standard = Qeval.answers ?semantics d q in
  match Repair.Decompose.plan ?budget d ics with
  | exception Budget.Exhausted e -> Error (Budget.message e)
  | plan -> (
      match plan.Repair.Decompose.components with
      | [] ->
          (* consistent instance: the only repair is D itself *)
          Ok
            {
              consistent = standard;
              possible = standard;
              standard;
              repair_count = 1;
              exhausted = None;
            }
      | _
        when (not plan.Repair.Decompose.product_exact) && mat = ProgramEngine
        ->
          (* the logic-program engine only yields per-component minimal
             repairs, which cannot be recombined exactly here — stay
             monolithic, and say so in the stats instead of degrading
             invisibly *)
          (match budget with
          | Some b ->
              Budget.note_degraded b ~stage:"decompose"
                "inexact component product (cross-component null covering): \
                 logic-program engine computed monolithic repairs instead"
          | None -> ());
          Result.map
            (outcome_of_repairs ?semantics ~standard q)
            (repairs_of mat ?budget max_effort d ics)
      | _ ->
          Result.bind (solve_components mat ?budget ~jobs max_effort d ics plan)
            (fun (minimal, states, completed, exhausted) ->
              match exhausted with
              | Some e when completed = 0 ->
                  (* nothing was solved: there is no partial work to
                     return *)
                  Error (Budget.message e)
              | _ ->
                  Ok
                    (factorized_outcome ?semantics ~jobs ?states ?exhausted
                       ~plan ~minimal ~standard q)))

(* ------------------------------------------------------------------ *)
(* Routed CQA: the [Auto] method.

   Every conflict component is classified by {!Route.Tier} and solved on
   the cheapest sound engine: the repair-less direct computation
   ({!Route.Direct}), the repair program (statically-HCF components run it
   shifted — {!Core.Engine} consults {!Asp.Shift} internally), or the
   model-theoretic enumeration as last resort.  The merge follows the
   decomposed engines' prefix rule, so partial outcomes under exhaustion
   have the same shape as a cold decomposed run. *)

type routed_solved =
  | Rsolved of Instance.t list
  | Rtrip of Budget.exhausted
  | Rerr of string

let routed_solve ?budget ?(jobs = 1) max_effort (plan : Repair.Decompose.plan)
    =
  let verdicts = Route.Tier.plan plan in
  (match budget with
  | Some b ->
      List.iter
        (fun (v : Route.Tier.verdict) -> Budget.note_route b v.Route.Tier.tier)
        verdicts
  | None -> ());
  let solve_one ((c : Repair.Decompose.component), (v : Route.Tier.verdict)) =
    let base = Instance.union c.Repair.Decompose.sub c.Repair.Decompose.support in
    match v.Route.Tier.tier with
    | Budget.Direct -> (
        let a = Option.get v.Route.Tier.direct in
        match Route.Direct.minimal_repairs ?budget a with
        | reps ->
            (match budget with
            | Some b -> Budget.note_worker_component b
            | None -> ());
            Rsolved reps
        | exception Budget.Exhausted e -> Rtrip e)
    | Budget.Shifted | Budget.Disjunctive -> (
        match
          Core.Engine.solve_components ?budget ?max_decisions:max_effort
            { plan with Repair.Decompose.components = [ c ] }
        with
        | Error msg -> Rerr msg
        | Ok { Core.Engine.exhausted = Some e; _ } -> Rtrip e
        | Ok { Core.Engine.solved = [ reps ]; _ } -> Rsolved reps
        | Ok _ -> assert false)
    | Budget.Enumerated -> (
        match
          Repair.Enumerate.search ?budget ?max_states:max_effort
            ~universe:plan.Repair.Decompose.universe
            ~nnc_positions:plan.Repair.Decompose.nnc_positions base
            c.Repair.Decompose.ics
        with
        | states ->
            (match budget with
            | Some b -> Budget.note_worker_component b
            | None -> ());
            Rsolved (Repair.Order.minimal_among ~d:base states)
        | exception Repair.Enumerate.Budget_exceeded n ->
            Rtrip (Budget.States n)
        | exception Budget.Exhausted e -> Rtrip e)
  in
  let tasks = List.combine plan.Repair.Decompose.components verdicts in
  let results =
    if jobs <= 1 || List.length tasks <= 1 then
      (* sequential: stop at the first trip so no budget is spent past it *)
      let rec seq acc stopped = function
        | [] -> List.rev acc
        | task :: rest ->
            if stopped then seq (`Unsolved :: acc) stopped rest
            else
              let r = solve_one task in
              let stopped =
                match r with Rsolved _ -> stopped | _ -> true
              in
              seq (`Run r :: acc) stopped rest
      in
      seq [] false tasks
    else
      Parallel.Pool.with_pool ~jobs
        ~init:(fun w -> Budget.set_worker_slot (w + 1))
        (fun pool ->
          Parallel.Pool.map pool (fun task -> `Run (solve_one task)) tasks)
  in
  (* prefix-rule merge, in plan order: everything from the first trip on
     degrades to its unrepaired base slice *)
  let rec scan minimal completed = function
    | [] -> Ok (List.rev minimal, completed, None)
    | (`Run (Rsolved reps), (_, v)) :: rest ->
        (* the program tiers run through Core.Engine, which notes kept
           components itself *)
        (match (budget, v.Route.Tier.tier) with
        | Some b, (Budget.Direct | Budget.Enumerated) ->
            Budget.note_component b
        | _ -> ());
        scan (reps :: minimal) (completed + 1) rest
    | (`Run (Rerr m), _) :: _ -> Error m
    | ((`Run (Rtrip _) | `Unsolved), _) :: _ as remaining ->
        let ex =
          match remaining with
          | (`Run (Rtrip ex), _) :: _ -> ex
          | _ -> assert false
        in
        let degraded =
          List.map
            (fun (_, (c, _)) ->
              [ Instance.union c.Repair.Decompose.sub c.Repair.Decompose.support ])
            remaining
        in
        Ok (List.rev_append minimal degraded, completed, Some ex)
  in
  scan [] 0 (List.combine results tasks)

let routed_outcome ?budget ?semantics ?(jobs = 1) max_effort d ics
    (q : Qsyntax.t) =
  let standard = Qeval.answers ?semantics d q in
  match Repair.Decompose.plan ?budget d ics with
  | exception Budget.Exhausted e -> Error (Budget.message e)
  | plan -> (
      match plan.Repair.Decompose.components with
      | [] ->
          Ok
            {
              consistent = standard;
              possible = standard;
              standard;
              repair_count = 1;
              exhausted = None;
            }
      | components when not plan.Repair.Decompose.product_exact ->
          (* cross-component null covering: per-component minimal repairs
             do not recombine exactly, so no per-tier dispatch is sound —
             route the whole plan to the decomposed enumeration, which
             re-filters the recombined states globally *)
          (match budget with
          | Some b ->
              Budget.note_degraded b ~stage:"route"
                "inexact component product (cross-component null covering): \
                 whole plan routed to decomposed enumeration";
              List.iter
                (fun _ -> Budget.note_route b Budget.Enumerated)
                components
          | None -> ());
          decomposed_outcome Enumerator ?budget ?semantics ~jobs max_effort d
            ics q
      | _ ->
          Result.bind (routed_solve ?budget ~jobs max_effort plan)
            (fun (minimal, completed, exhausted) ->
              match exhausted with
              | Some e when completed = 0 -> Error (Budget.message e)
              | _ ->
                  Ok
                    (factorized_outcome ?semantics ~jobs ?exhausted ~plan
                       ~minimal ~standard q)))

let consistent_answers ?(method_ = LogicProgram) ?semantics ?budget ?max_effort
    ?(decompose = false) ?jobs d ics q =
  match method_ with
  | Auto ->
      (* routing always decomposes (per-component verdicts); ~decompose
         is implied *)
      ignore decompose;
      routed_outcome ?budget ?semantics ?jobs max_effort d ics q
  | CautiousProgram ->
      if decompose then
        Error
          "the cautious-program method cannot decompose: it materializes no \
           per-component repairs to recombine; use the model-theoretic or \
           logic-program engine with ~decompose, or drop ~decompose"
      else
        Result.map
          (fun (o : Progcqa.outcome) ->
            {
              consistent = o.Progcqa.consistent;
              possible = o.Progcqa.possible;
              standard = Qeval.answers ?semantics d q;
              repair_count = o.Progcqa.stable_models;
              exhausted = None;
            })
          (Progcqa.consistent_answers ?budget ?max_decisions:max_effort d ics q)
  | ModelTheoretic | LogicProgram ->
      let mat =
        if method_ = ModelTheoretic then Enumerator else ProgramEngine
      in
      if decompose then
        decomposed_outcome mat ?budget ?semantics ?jobs max_effort d ics q
      else
        Result.map
          (fun repairs ->
            let answer_sets =
              List.map (fun r -> Qeval.answers ?semantics r q) repairs
            in
            outcome_of_answer_sets
              (Qeval.answers ?semantics d q)
              (List.length repairs) answer_sets)
          (repairs_of mat ?budget max_effort d ics)

let certain ?method_ ?semantics ?budget ?max_effort ?decompose ?jobs d ics q =
  if not (Qsyntax.is_boolean q) then Error "certain: query has head variables"
  else
    Result.map
      (fun o -> Tuple.Set.mem (Tuple.make []) o.consistent)
      (consistent_answers ?method_ ?semantics ?budget ?max_effort ?decompose
         ?jobs d ics
         { q with Qsyntax.head = [] })

let pp_outcome ppf o =
  let pp_set ppf s =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ", ") Tuple.pp)
      (Tuple.Set.elements s)
  in
  Fmt.pf ppf "@[<v>consistent: %a@,possible:   %a@,standard:   %a@,repairs:    %d%a@]"
    pp_set o.consistent pp_set o.possible pp_set o.standard o.repair_count
    Fmt.(option (fun ppf e -> pf ppf "@,partial:    %a" Budget.pp_exhausted e))
    o.exhausted
