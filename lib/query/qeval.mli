(** Query evaluation over instances with null values.

    Quantifiers range over the active domain of the instance (plus the
    constants of the query), which coincides with the standard semantics for
    safe queries ({!Qsafe}).

    Three query-answering semantics [|=q_N] are provided (the paper leaves
    the choice open — Section 4, discussion after Definition 8 — and
    announces a compatible semantics for the extended version):

    - [NullAsConstant]: classical first-order evaluation with [null] an
      ordinary constant — equality with [null] holds only for [null]
      itself, and [null] joins with [null].  This matches the way the
      repair programs treat [null].
    - [SqlLike]: atoms still match structurally, but built-in comparisons
      involving [null] are unknown (never satisfied — nor is their
      negation), in the spirit of SQL's three-valued logic.  [IsNull]
      remains the sanctioned null test.
    - [NullAware]: the semantics {e compatible with the IC satisfaction of
      Section 3}, our realization of the paper's future-work item (a).  In
      analogy with Definition 2's relevant attributes, a variable occurring
      more than once in the query body (a join variable, including
      repetition inside one atom) or inside a comparison is {e relevant}:
      an atom only matches if its relevant variables are bound to non-null
      values (a null never joins, exactly as "in a DBMS there will never be
      a join between a null and another value"), and comparisons involving
      null are unknown.  Nulls can still be {e returned} through
      single-occurrence and head positions, and [IsNull] remains the
      sanctioned test.

    All run in polynomial time in the size of the instance for a fixed
    query, as the paper assumes. *)

type semantics = NullAsConstant | SqlLike | NullAware

val holds :
  ?semantics:semantics ->
  Relational.Instance.t ->
  Semantics.Assign.t ->
  Qsyntax.formula ->
  bool

val answers :
  ?semantics:semantics ->
  Relational.Instance.t ->
  Qsyntax.t ->
  Relational.Tuple.Set.t
(** Head-variable bindings satisfying the query body.  For a boolean query
    the result is either empty or the singleton empty tuple.

    Factorizable bodies ({!Qsafe.factorizable}) under [NullAsConstant] or
    [SqlLike] are evaluated by joining the body's atoms through the
    instance's hash indexes and filtering with built-ins/[IsNull] —
    linear-ish in the matching tuples instead of [|adom|^k] — which is what
    makes consistent answers over millions of tuples feasible; the
    active-domain enumeration remains for the general fragment and is the
    property-tested reference. *)

val boolean :
  ?semantics:semantics -> Relational.Instance.t -> Qsyntax.t -> bool
