(** Consistent query answering (Definition 8).

    A tuple is a {e consistent answer} to a query on [D] wrt [IC] iff it is
    an answer in {e every} repair of [D]; a boolean query is consistently
    [yes] iff it holds in every repair.  Repairs can come from the
    model-theoretic enumerator of Section 4 ({!Repair.Enumerate}) or from
    the stable models of the repair program of Section 5 ({!Core.Engine}) —
    Theorem 4 makes them interchangeable, which is property-tested.

    CQA for first-order queries under this semantics is decidable
    (Theorem 2) and Pi^p_2-complete (Theorem 3); both engines are
    worst-case exponential accordingly. *)

type method_ =
  | ModelTheoretic
      (** materialize [Rep(D, IC)] with {!Repair.Enumerate} and evaluate the
          query in every repair *)
  | LogicProgram
      (** materialize the repairs from the stable models of [Pi(D, IC)]
          ({!Core.Engine}) and evaluate the query in every repair *)
  | CautiousProgram
      (** no materialization: compile the query into the program and take
          cautious/brave consequences ({!Progcqa}); requires RIC-acyclic
          constraints and the Datalog-with-negation query fragment, and
          fixes the query semantics to [NullAsConstant] *)
  | Auto
      (** route every conflict component to the cheapest sound engine
          ({!Route.Tier}): the repair-less direct computation
          ({!Route.Direct}) for deletion-only null-free components, the
          repair program (run shifted when statically HCF — Theorem 5 /
          Corollary 1) where Definition 9 applies, and model-theoretic
          enumeration as last resort.  Always decomposes ([~decompose] is
          implied); answers are identical to the other materializing
          methods.  Per-tier dispatch counters land in the budget's
          {!Budget.stats} ([routed]), degradations (e.g. an inexact
          component product forcing whole-plan enumeration) in its
          [degradations] notes. *)

type outcome = {
  consistent : Relational.Tuple.Set.t;  (** answers in every repair *)
  possible : Relational.Tuple.Set.t;    (** answers in some repair *)
  standard : Relational.Tuple.Set.t;    (** answers in D itself *)
  repair_count : int;
      (** number of repairs, or of stable models for [CautiousProgram] *)
  exhausted : Budget.exhausted option;
      (** [Some _] only on a decomposed run whose budget tripped after at
          least one component was solved: the answer sets recombine the
          true repairs of the solved components with the {e unrepaired}
          base slice of the remaining ones — a partial outcome, preserved
          rather than discarded.  [None] everywhere else; exhaustion before
          any useful work is an [Error]. *)
}

val consistent_answers :
  ?method_:method_ ->
  ?semantics:Qeval.semantics ->
  ?budget:Budget.ctl ->
  ?max_effort:int ->
  ?decompose:bool ->
  ?jobs:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Qsyntax.t ->
  (outcome, string) result
(** [max_effort] bounds the repair search (states for the model-theoretic
    engine, solver decisions for the logic-program and cautious engines;
    per component when decomposing).  [budget] is the shared run budget
    ({!Budget.start}): its limits and wall-clock deadline are enforced
    across grounding, solving and state search, and its [stats] record the
    per-stage counters.  Exhaustion never escapes as an exception: it is an
    [Error], or on decomposed runs a partial outcome (see [exhausted]).

    [decompose] (default [false]) repairs each conflict component of
    {!Repair.Decompose} independently and factorizes the answer
    computation: for positive existential conjunctive queries whose
    variables all occur in database atoms, single-atom bodies take
    per-component intersections/unions (answers are additive over
    components) and join bodies recombine only the components mentioning a
    query predicate; other queries are evaluated over the recombined repair
    list, which still profits from the per-component search.
    [repair_count] is the product of per-component counts.  The result is
    the same outcome as the monolithic computation.  [CautiousProgram]
    materializes no per-component repairs, so [~decompose:true] with it is
    a (clearly worded) [Error], not a silent fallback.

    [jobs] (default [1]) solves the conflict components — and, on the
    factorized single-atom path, evaluates their answer sets — on that
    many {!Parallel.Pool} worker domains.  Only decomposed runs
    parallelize; the recombination is a deterministic ordered merge, so
    the outcome is identical across [jobs] settings (see
    {!Repair.Enumerate.decomposed} for the contract under exhaustion). *)

val outcome_of_repairs :
  ?semantics:Qeval.semantics ->
  standard:Relational.Tuple.Set.t ->
  Qsyntax.t ->
  Relational.Instance.t list ->
  outcome
(** Evaluate the query in every repair of a materialized list and fold the
    answer sets: [consistent] is their intersection, [possible] their
    union.  The monolithic tail of both materializing methods, exposed for
    the session engine's whole-instance fallback. *)

val factorized_outcome :
  ?semantics:Qeval.semantics ->
  ?jobs:int ->
  ?states:Relational.Instance.t list list ->
  ?exhausted:Budget.exhausted ->
  plan:Repair.Decompose.plan ->
  minimal:Relational.Instance.t list list ->
  standard:Relational.Tuple.Set.t ->
  Qsyntax.t ->
  outcome
(** The factorized answer combination over already-solved components:
    [minimal] lists each component's minimal repairs in [plan] order
    (non-empty — a budget-tripped component contributes its unrepaired
    base slice, with [exhausted] set).  [states] must carry the full
    consistent state lists when [plan.product_exact] is [false] and the
    repairs came from the model-theoretic search (the recombined product
    is re-filtered globally).  This is the exact answer algebra of
    [consistent_answers ~decompose:true] after its per-component solves;
    the session engine calls it on cached solves, which is what makes
    session answers byte-identical to a cold run. *)

val certain :
  ?method_:method_ ->
  ?semantics:Qeval.semantics ->
  ?budget:Budget.ctl ->
  ?max_effort:int ->
  ?decompose:bool ->
  ?jobs:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Qsyntax.t ->
  (bool, string) result
(** Definition 8 for boolean queries: [yes] iff the query holds in every
    repair. *)

val pp_outcome : outcome Fmt.t
