(** Repair-less polynomial CQA, after Laurent & Spyratos.

    When {e every} conflict component of the instance is accepted by
    {!Route.Direct} (deletion-only constraints, null-free binary
    complete-multipartite conflicts — the shape FD and denial workloads
    induce) and the component product is exact, certain answers are
    computed without ever running a repair search: minimal repairs are
    read off per component in polynomial time and combined by the
    factorized answer algebra of {!Cqa.factorized_outcome}.

    This is the standalone API of the [Auto] method's cheapest tier; use
    [Cqa.consistent_answers ~method_:Auto] to fall back to the other
    engines per component instead of failing.  Answers are identical to
    the materializing methods on the instances this accepts (the repair
    lists themselves are byte-identical to the enumerate engine's,
    property-tested in [test_route.ml]). *)

val applicable :
  Relational.Instance.t -> Ic.Constr.t list -> (unit, string) result
(** [Ok ()] iff every conflict component is in the direct fragment and
    the component product is exact; [Error reason] names the first
    obstacle. *)

val consistent_answers :
  ?semantics:Qeval.semantics ->
  ?budget:Budget.ctl ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Qsyntax.t ->
  (Cqa.outcome, string) result
(** The full outcome (consistent/possible/standard answers and the exact
    repair count) in polynomial time.  [Error] when {!applicable} fails —
    never a silent fallback.  [budget] contributes its deadline; no
    states or decisions are ever ticked. *)

val certain :
  ?semantics:Qeval.semantics ->
  ?budget:Budget.ctl ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  Qsyntax.t ->
  (bool, string) result
(** Definition 8 for boolean queries, directly. *)
