let inter a b = List.filter (fun x -> List.mem x b) a
let union a b = List.sort_uniq String.compare (a @ b)

(* Variables certainly bound to database values when the formula holds. *)
let rec range_restricted_vars = function
  | Qsyntax.Atom a -> Ic.Patom.vars a
  | Qsyntax.Builtin _ | Qsyntax.IsNull _ -> []
  | Qsyntax.And (f, g) -> union (range_restricted_vars f) (range_restricted_vars g)
  | Qsyntax.Or (f, g) -> inter (range_restricted_vars f) (range_restricted_vars g)
  | Qsyntax.Not _ -> []
  | Qsyntax.Exists (xs, f) | Qsyntax.Forall (xs, f) ->
      List.filter (fun v -> not (List.mem v xs)) (range_restricted_vars f)

(* Every quantifier must restrict its variables: existentials positively,
   universals through the standard rewriting forall x. f == ~exists x. ~f
   (we require the variables of a Forall to be restricted in ~f). *)
let rec quantifiers_safe = function
  | Qsyntax.Atom _ | Qsyntax.Builtin _ | Qsyntax.IsNull _ -> true
  | Qsyntax.And (f, g) | Qsyntax.Or (f, g) -> quantifiers_safe f && quantifiers_safe g
  | Qsyntax.Not f -> quantifiers_safe f
  | Qsyntax.Exists (xs, f) ->
      quantifiers_safe f
      && List.for_all (fun x -> List.mem x (range_restricted_vars f)) xs
  | Qsyntax.Forall (xs, f) ->
      quantifiers_safe f
      &&
      let restricted_in_negation =
        match f with
        | Qsyntax.Or (Qsyntax.Not g, _) | Qsyntax.Or (_, Qsyntax.Not g) ->
            (* the common guarded shape: forall x. (~P(x) \/ psi) *)
            range_restricted_vars g
        | Qsyntax.Not g -> range_restricted_vars g
        | _ -> []
      in
      List.for_all (fun x -> List.mem x restricted_in_negation) xs

let is_safe (q : Qsyntax.t) =
  let rr = range_restricted_vars q.Qsyntax.body in
  List.for_all (fun x -> List.mem x rr) q.Qsyntax.head
  && quantifiers_safe q.Qsyntax.body

let check q =
  if is_safe q then Ok ()
  else
    Error
      (Fmt.str
         "query %a is not safe-range: evaluation falls back to active-domain \
          semantics"
         Qsyntax.pp q)

(* ------------------------------------------------------------------ *)
(* Query shape for decomposed/routed CQA.

   The per-component answer algebra needs the query's answers to be
   insensitive to atoms of predicates it does not mention — including
   through the active domain the evaluator enumerates variables over.  The
   syntactic fragment below guarantees it: positive existential
   conjunctive bodies (no negation, no universal quantifier, no
   disjunction) in which every variable occurs in a database atom, so that
   every binding is witnessed by matched tuples and built-ins/IsNull only
   filter them. *)

let rec formula_vars = function
  | Qsyntax.Atom a ->
      List.filter_map
        (function Ic.Term.Var x -> Some x | Ic.Term.Const _ -> None)
        (Ic.Patom.terms a)
  | Qsyntax.Builtin b -> Ic.Builtin.vars b
  | Qsyntax.IsNull (Ic.Term.Var x) -> [ x ]
  | Qsyntax.IsNull (Ic.Term.Const _) -> []
  | Qsyntax.And (f, g) | Qsyntax.Or (f, g) -> formula_vars f @ formula_vars g
  | Qsyntax.Not f | Qsyntax.Exists (_, f) | Qsyntax.Forall (_, f) ->
      formula_vars f

let factorizable body =
  let rec positive_conjunctive = function
    | Qsyntax.Atom _ | Qsyntax.Builtin _ | Qsyntax.IsNull _ -> true
    | Qsyntax.And (f, g) -> positive_conjunctive f && positive_conjunctive g
    | Qsyntax.Exists (_, f) -> positive_conjunctive f
    | Qsyntax.Or _ | Qsyntax.Not _ | Qsyntax.Forall _ -> false
  in
  positive_conjunctive body
  &&
  let atom_vars =
    List.concat_map
      (fun a ->
        List.filter_map
          (function Ic.Term.Var x -> Some x | Ic.Term.Const _ -> None)
          (Ic.Patom.terms a))
      (Qsyntax.atoms body)
  in
  List.for_all (fun x -> List.mem x atom_vars) (formula_vars body)

type shape = Single | Join | Opaque

let shape (q : Qsyntax.t) =
  if not (factorizable q.Qsyntax.body) then Opaque
  else
    match Qsyntax.atoms q.Qsyntax.body with [ _ ] -> Single | _ -> Join

let pp_shape ppf s =
  Fmt.string ppf
    (match s with Single -> "single" | Join -> "join" | Opaque -> "opaque")
