(** Safe-range analysis [32].

    The paper assumes queries are {e safe}, a syntactic guarantee of domain
    independence.  We implement the standard safe-range check: every free
    variable of the query, and every quantified variable, must be range
    restricted by a positive database atom within its scope.  The evaluator
    ({!Qeval}) ranges quantifiers over the active domain, which computes the
    standard semantics exactly for safe queries. *)

val range_restricted_vars : Qsyntax.formula -> string list
(** Variables guaranteed bound to the active domain by the formula itself. *)

val is_safe : Qsyntax.t -> bool

val check : Qsyntax.t -> (unit, string) result

val factorizable : Qsyntax.formula -> bool
(** Positive existential conjunctive body whose variables all occur in
    database atoms: answers are insensitive to atoms of unmentioned
    predicates, the precondition of the per-component answer algebra of
    decomposed and routed CQA ({!Cqa}). *)

type shape =
  | Single  (** factorizable with one body atom: answers are additive over
                conflict components (per-component intersections/unions) *)
  | Join    (** factorizable with several body atoms: recombine only the
                components mentioning a query predicate *)
  | Opaque  (** not factorizable: evaluate over the recombined repairs *)

val shape : Qsyntax.t -> shape
(** The query-shape verdict the decomposed answer algebra branches on. *)

val pp_shape : shape Fmt.t
