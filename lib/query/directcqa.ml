module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Decompose = Repair.Decompose

let applicable_verdicts (plan : Decompose.plan) =
  if not plan.Decompose.product_exact then
    Error
      "direct CQA needs an exact component product; cross-component null \
       covering makes per-component minimality insufficient (use the \
       model-theoretic engine)"
  else
    let verdicts = Route.Tier.plan plan in
    match
      List.find_opt
        (fun (v : Route.Tier.verdict) -> v.Route.Tier.tier <> Budget.Direct)
        verdicts
    with
    | Some v ->
        Error
          (Printf.sprintf
             "a conflict component is outside the direct fragment: %s"
             v.Route.Tier.reason)
    | None -> Ok verdicts

let applicable d ics =
  match Decompose.plan d ics with
  | exception Budget.Exhausted e -> Error (Budget.message e)
  | plan -> Result.map (fun _ -> ()) (applicable_verdicts plan)

let consistent_answers ?semantics ?budget d ics q =
  let standard = Qeval.answers ?semantics d q in
  match Decompose.plan ?budget d ics with
  | exception Budget.Exhausted e -> Error (Budget.message e)
  | plan -> (
      match applicable_verdicts plan with
      | Error msg -> Error msg
      | Ok verdicts -> (
          match plan.Decompose.components with
          | [] ->
              Ok
                {
                  Cqa.consistent = standard;
                  possible = standard;
                  standard;
                  repair_count = 1;
                  exhausted = None;
                }
          | _ -> (
              match
                List.map
                  (fun (v : Route.Tier.verdict) ->
                    Route.Direct.minimal_repairs ?budget
                      (Option.get v.Route.Tier.direct))
                  verdicts
              with
              | minimal ->
                  Ok
                    (Cqa.factorized_outcome ?semantics ~plan ~minimal ~standard
                       q)
              | exception Budget.Exhausted e -> Error (Budget.message e))))

let certain ?semantics ?budget d ics q =
  if not (Qsyntax.is_boolean q) then Error "certain: query has head variables"
  else
    Result.map
      (fun (o : Cqa.outcome) -> Tuple.Set.mem (Tuple.make []) o.Cqa.consistent)
      (consistent_answers ?semantics ?budget d ics
         { q with Qsyntax.head = [] })
