module S = Asp.Syntax
module Term = Ic.Term
module Patom = Ic.Patom
module Builtin = Ic.Builtin

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* DNF normalization with capture-avoiding renaming of bound variables *)

type lit =
  | LPos of Patom.t
  | LNeg of Patom.t
  | LCmp of Builtin.t
  | LIsNull of Term.t
  | LNotNull of Term.t

(* The renaming counter is threaded through [dnf_pos]/[dnf_neg] as explicit
   state (created per [compile] call) — a global ref here would leak
   counter state between compilations and make [compile] non-reentrant. *)
let fresh counter x =
  incr counter;
  Printf.sprintf "qv_%s_%d" x !counter

let rename_term env = function
  | Term.Var x -> Term.Var (Option.value ~default:x (List.assoc_opt x env))
  | Term.Const _ as t -> t

let rename_atom env a = Patom.make (Patom.pred a) (List.map (rename_term env) (Patom.terms a))

let rename_expr env (e : Builtin.expr) =
  { e with Builtin.base = rename_term env e.Builtin.base }

let rename_builtin env = function
  | Builtin.False -> Builtin.False
  | Builtin.Cmp (op, l, r) -> Builtin.Cmp (op, rename_expr env l, rename_expr env r)

(* cross product of two DNFs (conjunction) *)
let cross a b = List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b) a

let rec dnf_pos counter env = function
  | Qsyntax.Atom a -> Ok [ [ LPos (rename_atom env a) ] ]
  | Qsyntax.Builtin b -> (
      match rename_builtin env b with
      | Builtin.False -> Ok [] (* false: empty disjunction *)
      | b -> Ok [ [ LCmp b ] ])
  | Qsyntax.IsNull t -> Ok [ [ LIsNull (rename_term env t) ] ]
  | Qsyntax.And (f, g) ->
      let* df = dnf_pos counter env f in
      let* dg = dnf_pos counter env g in
      Ok (cross df dg)
  | Qsyntax.Or (f, g) ->
      let* df = dnf_pos counter env f in
      let* dg = dnf_pos counter env g in
      Ok (df @ dg)
  | Qsyntax.Not f -> dnf_neg counter env f
  | Qsyntax.Exists (xs, f) ->
      let env' = List.map (fun x -> (x, fresh counter x)) xs @ env in
      dnf_pos counter env' f
  | Qsyntax.Forall _ ->
      Error "universal quantification is outside the cautious-reasoning query fragment"

(* DNF of the negation of the formula *)
and dnf_neg counter env = function
  | Qsyntax.Atom a -> Ok [ [ LNeg (rename_atom env a) ] ]
  | Qsyntax.Builtin b -> (
      match rename_builtin env b with
      | Builtin.False -> Ok [ [] ] (* not false = true: one empty conjunct *)
      | b -> Ok [ [ LCmp (Builtin.negate b) ] ])
  | Qsyntax.IsNull t -> Ok [ [ LNotNull (rename_term env t) ] ]
  | Qsyntax.And (f, g) ->
      let* df = dnf_neg counter env f in
      let* dg = dnf_neg counter env g in
      Ok (df @ dg)
  | Qsyntax.Or (f, g) ->
      let* df = dnf_neg counter env f in
      let* dg = dnf_neg counter env g in
      Ok (cross df dg)
  | Qsyntax.Not f -> dnf_pos counter env f
  | Qsyntax.Forall (xs, f) ->
      (* not (forall x. f) = exists x. not f *)
      let env' = List.map (fun x -> (x, fresh counter x)) xs @ env in
      dnf_neg counter env' f
  | Qsyntax.Exists _ ->
      Error
        "negated existential quantification is outside the cautious-reasoning \
         query fragment"

(* ------------------------------------------------------------------ *)
(* Rule construction over the annotated predicates *)

let asp_term = function
  | Term.Var x -> S.Var x
  | Term.Const v -> S.Const (Core.Annot.encode_value v)

let asp_expr (e : Builtin.expr) =
  match e.Builtin.base, e.Builtin.offset with
  | Term.Var x, 0 -> Ok (S.Var x)
  | Term.Const v, 0 -> Ok (S.Const (Core.Annot.encode_value v))
  | Term.Const (Relational.Value.Int i), k -> Ok (S.Const (S.Num (i + k)))
  | _ -> Error "built-in offsets are not supported in query rules"

let asp_op = function
  | Builtin.Eq -> S.Eq
  | Builtin.Neq -> S.Neq
  | Builtin.Lt -> S.Lt
  | Builtin.Leq -> S.Leq
  | Builtin.Gt -> S.Gt
  | Builtin.Geq -> S.Geq

let tss_atom names a =
  S.atom
    (Core.Annot.Names.annotated names (Patom.pred a))
    (List.map asp_term (Patom.terms a) @ [ Core.Annot.term_of_annotation Core.Annot.Tss ])

let answer_pred = "ans"

let rule_of_conjunct names head conjunct =
  let* pos, neg, builtins =
    List.fold_left
      (fun acc l ->
        let* pos, neg, builtins = acc in
        match l with
        | LPos a -> Ok (tss_atom names a :: pos, neg, builtins)
        | LNeg a -> Ok (pos, tss_atom names a :: neg, builtins)
        | LCmp (Builtin.Cmp (op, l, r)) ->
            let* lt = asp_expr l in
            let* rt = asp_expr r in
            Ok (pos, neg, S.builtin (asp_op op) lt rt :: builtins)
        | LCmp Builtin.False -> Error "false literal in conjunct"
        | LIsNull t ->
            Ok (pos, neg, S.builtin S.Eq (asp_term t) Core.Annot.null_term :: builtins)
        | LNotNull t ->
            Ok (pos, neg, S.builtin S.Neq (asp_term t) Core.Annot.null_term :: builtins))
      (Ok ([], [], []))
      conjunct
  in
  let rule =
    S.rule
      [ S.atom answer_pred (List.map (fun x -> S.Var x) head) ]
      ~body_pos:(List.rev pos) ~body_neg:(List.rev neg)
      ~body_builtin:(List.rev builtins)
  in
  let* () =
    Result.map_error
      (fun msg -> "query not safe for cautious reasoning: " ^ msg)
      (Asp.Safety.check_rule rule)
  in
  Ok rule

let compile names (q : Qsyntax.t) =
  let counter = ref 0 in
  let* conjuncts = dnf_pos counter [] q.Qsyntax.body in
  let* rules =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* r = rule_of_conjunct names q.Qsyntax.head c in
        Ok (r :: acc))
      (Ok []) conjuncts
  in
  Ok (List.rev rules)

(* ------------------------------------------------------------------ *)
(* Cautious/brave answering *)

type outcome = {
  consistent : Relational.Tuple.Set.t;
  possible : Relational.Tuple.Set.t;
  stable_models : int;
}

let answers_in_model model =
  List.filter_map
    (fun (ga : Asp.Ground.gatom) ->
      if String.equal ga.Asp.Ground.gpred answer_pred then
        Some (Relational.Tuple.make (List.map Core.Annot.decode_value ga.Asp.Ground.gargs))
      else None)
    model

let consistent_answers ?variant ?budget ?search ?max_decisions d ics
    (q : Qsyntax.t) =
  let* () =
    if Ic.Depgraph.is_ric_acyclic ics then Ok ()
    else
      Error
        "cautious reasoning requires a RIC-acyclic constraint set (Theorem 4); \
         use the repair-materializing engines instead"
  in
  let* pg = Core.Proggen.repair_program ?variant d ics in
  let* query_rules = compile pg.Core.Proggen.names q in
  let program = pg.Core.Proggen.program @ query_rules in
  (* grounding and solving both consume budget; exhaustion of either the
     local [max_decisions] or the shared [budget] is an [Error] here, never
     an escaping exception *)
  match
    let ground = Asp.Grounder.ground ?budget program in
    let solvable =
      if Asp.Hcf.is_hcf ground then Asp.Shift.ground ground else ground
    in
    Asp.Solver.stable_models_atoms ?budget ?max_decisions ?search solvable
  with
  | exception Asp.Solver.Budget_exceeded n ->
      Error (Budget.message (Budget.Decisions n))
  | exception Budget.Exhausted e -> Error (Budget.message e)
  | [] -> Error "the repair program has no stable models (conflicting ICs?)"
  | models ->
      let answer_sets =
        List.map (fun m -> Relational.Tuple.Set.of_list (answers_in_model m)) models
      in
      let consistent =
        match answer_sets with
        | [] -> Relational.Tuple.Set.empty
        | s :: rest -> List.fold_left Relational.Tuple.Set.inter s rest
      in
      let possible =
        List.fold_left Relational.Tuple.Set.union Relational.Tuple.Set.empty answer_sets
      in
      Ok { consistent; possible; stable_models = List.length models }

let certain ?variant ?budget ?search ?max_decisions d ics q =
  if not (Qsyntax.is_boolean q) then Error "certain: query has head variables"
  else
    Result.map
      (fun o -> Relational.Tuple.Set.mem (Relational.Tuple.make []) o.consistent)
      (consistent_answers ?variant ?budget ?search ?max_decisions d ics q)
