type t = Null | Int of int | Str of string

let null = Null
let int i = Int i
let str s = Str s

let is_null = function Null -> true | Int _ | Str _ -> false

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int i, Int j -> Int.equal i j
  | Str s, Str t -> String.equal s t
  | (Null | Int _ | Str _), _ -> false

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int i, Int j -> Int.compare i j
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str s, Str t -> String.compare s t

(* Constructor-tagged, allocation-free: the former [Hashtbl.hash (tag, v)]
   boxed a fresh tuple per call on the hottest instance-indexing path.
   [Hashtbl.hash] on an immediate int and on a string allocates nothing;
   the odd multiplier keeps Int and Str images from colliding
   systematically.  Agrees with [equal] by construction: equal values have
   the same constructor and payload, hence the same image. *)
let hash = function
  | Null -> 0
  | Int i -> Hashtbl.hash i * 3 + 1
  | Str s -> Hashtbl.hash s * 3 + 2

let comparable a b = not (is_null a || is_null b)

let to_string = function
  | Null -> "null"
  | Int i -> string_of_int i
  | Str s -> s

let pp ppf v = Fmt.string ppf (to_string v)

let of_string s =
  if String.equal s "null" then Null
  else match int_of_string_opt s with Some i -> Int i | None -> Str s
