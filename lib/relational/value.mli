(** Database values.

    The database domain [U] of the paper contains ordinary constants and the
    distinguished constant [null].  Following Section 3 of the paper, [null]
    is a first-class element of the domain: inside repair programs and the
    satisfaction checks of Definition 4 it is treated "as any other
    constant", while the predicate [IsNull] (here {!is_null}) is the only
    sanctioned way to test for it — the built-in equality [c = null] of SQL
    would evaluate to [unknown], so we never expose it. *)

type t =
  | Null          (** the single SQL-style null constant *)
  | Int of int    (** integer constants *)
  | Str of string (** uninterpreted string constants *)

val null : t
val int : int -> t
val str : string -> t

val is_null : t -> bool

val equal : t -> t -> bool
(** Structural equality, with [null] equal only to [null] (the unique-names
    assumption does not apply to [null], but structural identity is what the
    repair machinery of Section 5 needs: "null is treated as any other
    constant in U"). *)

val compare : t -> t -> int
(** Total order used by the set/map containers: [Null < Int _ < Str _]. *)

val hash : t -> int
(** Allocation-free and coherent with {!equal}: [equal a b] implies
    [hash a = hash b] (property-tested). *)

val comparable : t -> t -> bool
(** [comparable a b] is false iff either side is [null]; built-in comparison
    predicates over incomparable values evaluate to [unknown] and thus never
    raise an inconsistency (Section 3, Example 6). *)

val pp : t Fmt.t
val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string} for surface syntax: ["null"] maps to [Null],
    decimal literals to [Int], everything else to [Str]. *)
